package main

// errno-completeness: RPC dispatch switches must stay in agreement with
// the protocol's declared errno sets.
//
// internal/wire/errno.go declares, per operation ("barrier.enter",
// "kvs.get", ...), the errno values that operation is allowed to return
// (wire.OpErrnos). This pass checks every request-dispatch switch —
// a switch whose tag is <msg>.Method() on a wire.Message — that emits
// at least one errno somewhere in its clauses:
//
//   - the switch must have a default clause: an unknown method must get
//     an explicit error response (ENOSYS), not silence.
//   - the set of constant case methods must match exactly one declared
//     service in wire.OpErrnos; a dispatch whose method set matches no
//     service is serving operations the protocol table does not know.
//   - every operation the table declares for that service must appear
//     as a case: a declared op with no dispatch arm is dead protocol.
//   - each clause may only emit errnos declared for its operation(s).
//     Emission is computed transitively through same-package callees
//     (the summary layer), so a handler that delegates to a helper is
//     charged with the helper's errnos. Non-constant emissions are
//     given the benefit of the doubt; default-clause bodies are exempt
//     (the ENOSYS fallback is the point of the default).
//
// The wire package itself is exempt (it declares the table), and so is
// any build without a wire.OpErrnos declaration in a loaded package —
// the pass degrades to a no-op rather than inventing a table.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"sort"
	"strings"
)

const errnoCompletenessName = "errno-completeness"

var errnoCompletenessPass = Pass{
	Name: errnoCompletenessName,
	Doc:  "check RPC dispatch switches against the declared wire.OpErrnos table",
	Run:  runErrnoCompleteness,
}

// opErrnoTable is the folded wire.OpErrnos declaration: op string ->
// allowed errno values, plus a value -> Errno* constant name reverse map
// for messages.
type opErrnoTable struct {
	ops   map[string]map[int64]bool
	names map[int64]string
}

// loadOpErrnos folds the OpErrnos declaration out of the loaded package
// named "wire" (real module or fixture corpus alike). Returns nil when
// no loaded wire package declares one.
func loadOpErrnos(l *Loader) *opErrnoTable {
	for _, wp := range l.pkgs {
		if wp.Types.Name() != "wire" || wp.Types.Scope().Lookup("OpErrnos") == nil {
			continue
		}
		t := &opErrnoTable{ops: map[string]map[int64]bool{}, names: map[int64]string{}}
		for _, f := range wp.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for i, name := range vs.Names {
					if name.Name != "OpErrnos" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, el := range cl.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						tv, ok := wp.Info.Types[kv.Key]
						if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
							continue
						}
						op := constant.StringVal(tv.Value)
						set := map[int64]bool{}
						if vals, ok := kv.Value.(*ast.CompositeLit); ok {
							for _, ve := range vals.Elts {
								if etv, ok := wp.Info.Types[ve]; ok && etv.Value != nil {
									if v, exact := constant.Int64Val(constant.ToInt(etv.Value)); exact {
										set[v] = true
									}
								}
							}
						}
						t.ops[op] = set
					}
				}
				return true
			})
		}
		if len(t.ops) == 0 {
			continue
		}
		// Reverse-map the package's Errno* constants for messages.
		scope := wp.Types.Scope()
		for _, nm := range scope.Names() {
			if !strings.HasPrefix(nm, "Errno") {
				continue
			}
			if c, ok := scope.Lookup(nm).(interface{ Val() constant.Value }); ok {
				if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
					if prev, seen := t.names[v]; !seen || nm < prev {
						t.names[v] = nm
					}
				}
			}
		}
		return t
	}
	return nil
}

func (t *opErrnoTable) errnoName(v int64) string {
	if nm, ok := t.names[v]; ok {
		return nm
	}
	return fmt.Sprintf("errno %d", v)
}

// services returns the sorted set of service prefixes the table declares.
func (t *opErrnoTable) services() []string {
	set := map[string]bool{}
	for op := range t.ops {
		if i := strings.IndexByte(op, '.'); i > 0 {
			set[op[:i]] = true
		}
	}
	return sortedKeys(set)
}

func runErrnoCompleteness(l *Loader, p *Package) []Finding {
	if p.Types.Name() == "wire" {
		return nil // the table's own package
	}
	table := loadOpErrnos(l)
	if table == nil {
		return nil
	}
	c := &completeChecker{l: l, p: p, ix: indexOf(p), table: table}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok {
				c.checkSwitch(sw)
			}
			return true
		})
	}
	return c.findings
}

type completeChecker struct {
	l        *Loader
	p        *Package
	ix       *pkgIndex
	table    *opErrnoTable
	findings []Finding
}

func (c *completeChecker) report(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pass: errnoCompletenessName,
		Pos:  c.l.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// isMethodDispatch reports whether sw switches on <msg>.Method() for a
// wire.Message receiver.
func (c *completeChecker) isMethodDispatch(sw *ast.SwitchStmt) bool {
	ce, ok := ast.Unparen(sw.Tag).(*ast.CallExpr)
	if !ok || len(ce.Args) != 0 {
		return false
	}
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok || se.Sel.Name != "Method" {
		return false
	}
	return isWireMessagePtr(c.p.Info.TypeOf(se.X))
}

// clauseInfo is one case clause's folded methods and emitted errnos.
type clauseInfo struct {
	clause    *ast.CaseClause
	methods   []string            // constant-folded case strings
	allConst  bool                // every case expression folded
	isDefault bool
	emitted   map[int64]token.Pos // errno value -> first emission site
	via       map[int64]string    // errno value -> provenance
}

func (c *completeChecker) checkSwitch(sw *ast.SwitchStmt) {
	if sw.Body == nil || !c.isMethodDispatch(sw) {
		return
	}
	var clauses []*clauseInfo
	hasDefault := false
	emitsAny := false
	for _, s := range sw.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		info := &clauseInfo{clause: cc, allConst: true,
			emitted: map[int64]token.Pos{}, via: map[int64]string{}}
		if cc.List == nil {
			info.isDefault = true
			hasDefault = true
		}
		for _, e := range cc.List {
			if tv, ok := c.p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				info.methods = append(info.methods, constant.StringVal(tv.Value))
			} else {
				info.allConst = false
			}
		}
		c.collectEmitted(cc, info)
		if len(info.emitted) > 0 {
			emitsAny = true
		}
		clauses = append(clauses, info)
	}
	if !emitsAny {
		return // not an error-responding dispatch; out of scope
	}

	if !hasDefault {
		c.report(sw.Pos(), "request dispatch switch has no default clause; unknown methods need an explicit ErrnoNoSys response")
	}

	// Infer the service: the one whose declared ops cover every constant
	// case method. A dotted case string is matched as a full op key.
	var methods []string
	allConst := true
	for _, info := range clauses {
		if info.isDefault {
			continue
		}
		methods = append(methods, info.methods...)
		allConst = allConst && info.allConst
	}
	if len(methods) == 0 {
		return
	}
	var matches []string
	for _, svc := range c.table.services() {
		ok := true
		for _, m := range methods {
			if _, declared := c.table.ops[c.opKey(svc, m)]; !declared {
				ok = false
				break
			}
		}
		if ok {
			matches = append(matches, svc)
		}
	}
	if len(matches) == 0 {
		c.report(sw.Pos(), "dispatch methods [%s] match no service declared in wire.OpErrnos",
			strings.Join(methods, " "))
		return
	}
	if len(matches) > 1 {
		return // ambiguous method set; nothing safe to check
	}
	svc := matches[0]

	// Coverage: every op the table declares for this service needs an
	// arm. Skipped when some case failed to fold (a dynamic topic could
	// be the missing arm).
	if allConst {
		caseSet := map[string]bool{}
		for _, m := range methods {
			caseSet[c.opKey(svc, m)] = true
		}
		var missing []string
		for op := range c.table.ops {
			if strings.HasPrefix(op, svc+".") && !caseSet[op] {
				missing = append(missing, op)
			}
		}
		sort.Strings(missing)
		for _, op := range missing {
			c.report(sw.Pos(), "declared op %s has no case in this dispatch switch", op)
		}
	}

	// Per-clause: emitted errnos must be declared for the clause's ops.
	for _, info := range clauses {
		if info.isDefault || !info.allConst || len(info.emitted) == 0 {
			continue
		}
		declared := map[int64]bool{}
		for _, m := range info.methods {
			for v := range c.table.ops[c.opKey(svc, m)] {
				declared[v] = true
			}
		}
		var bad []int64
		for v := range info.emitted {
			if !declared[v] {
				bad = append(bad, v)
			}
		}
		sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
		for _, v := range bad {
			op := c.opKey(svc, info.methods[0])
			c.report(info.emitted[v], "%s handler can emit %s (%s); not declared in wire.OpErrnos[%q]",
				op, c.table.errnoName(v), info.via[v], op)
		}
	}
}

// opKey resolves a case string to a table key: dotted strings are full
// op names already, bare ones get the service prefix.
func (c *completeChecker) opKey(svc, method string) string {
	if strings.Contains(method, ".") {
		return method
	}
	return svc + "." + method
}

// collectEmitted gathers the errnos a clause body can emit: direct
// builder calls (constant-folded) and same-package callees via the
// summary layer. Function literals inside the clause are included —
// a handler that responds from a spawned goroutine still emits.
func (c *completeChecker) collectEmitted(cc *ast.CaseClause, info *clauseInfo) {
	record := func(v int64, pos token.Pos, via string) {
		if _, seen := info.emitted[v]; !seen {
			info.emitted[v] = pos
			info.via[v] = via
		}
	}
	for _, s := range cc.Body {
		ast.Inspect(s, func(n ast.Node) bool {
			ce, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(ce.Fun)
			if idx, isBuilder := errnoBuilders[name]; isBuilder {
				if len(ce.Args) > idx {
					if v, ok := c.ix.constInt(ce.Args[idx]); ok {
						record(v, ce.Args[idx].Pos(), errnoArgName(ce.Args[idx]))
					}
					// Non-constant errnum: benefit of the doubt (the
					// errno-discipline pass polices raw values).
				}
				return true
			}
			if callee := c.ix.calleeDecl(ce.Fun); callee != nil {
				sub := c.ix.errnoEmitted(callee)
				for v, via := range sub.values {
					record(v, ce.Pos(), via+" via "+callee.Name.Name)
				}
			}
			return true
		})
	}
}
