// Package goroutine holds fixtures for the goroutine-lifecycle pass.
package goroutine

import "time"

// spawnUntied launches a literal with no shutdown channel, WaitGroup,
// or channel rendezvous: nothing can ever stop or observe it.
func spawnUntied(f func()) {
	go func() { // BAD
		for {
			f()
		}
	}()
}

// pollForever has only a timer, which is not a lifecycle tie.
func pollForever(f func() bool) {
	go func() { // BAD
		for !f() {
			time.Sleep(time.Millisecond)
		}
	}()
}
