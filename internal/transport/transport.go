// Package transport provides reliable, in-order, framed message
// connections for the CMB overlay planes.
//
// Two transports are offered, mirroring the paper's prototype which used
// ØMQ over TCP and shared memory: a TCP transport with length-prefixed
// framing and a session-key handshake, and an in-process transport built
// on unbounded queues for single-process simulated sessions. Both deliver
// wire.Messages reliably and in order, which is the property the CMB's
// event-plane consistency argument depends on.
package transport

import (
	"errors"
	"io"
	"sync"

	"fluxgo/internal/wire"
)

// Conn is a bidirectional, reliable, in-order message connection.
// Send never blocks on peer backpressure (sends are queued), so broker
// event loops cannot deadlock on mutual sends. Recv blocks until a
// message arrives or the connection closes, returning io.EOF on close.
type Conn interface {
	// Send enqueues m for delivery to the peer.
	Send(m *wire.Message) error
	// Recv returns the next message from the peer, blocking as needed.
	Recv() (*wire.Message, error)
	// PeerIdentity returns the identity string the peer presented at
	// connection setup. Brokers use it for route-stack entries.
	PeerIdentity() string
	// Close tears the connection down. Pending unreceived messages are
	// discarded and the peer's Recv returns io.EOF.
	Close() error
}

// ErrClosed is returned by Send on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Counter is the minimal metering sink a connection reports into; it is
// satisfied by *obs.Counter without the transport importing obs.
type Counter interface {
	Add(n uint64)
}

// Metered is implemented by connections that can report per-link
// traffic counters. The broker wires registry counters in when it
// attaches the link; connections run unmetered until then.
type Metered interface {
	// SetMeter installs the sinks: bytesSent/bytesRecv count framed
	// bytes on the wire (length prefixes included), framesCoalesced
	// counts frames that shared a flush with a preceding frame (i.e.
	// syscalls saved by write coalescing).
	SetMeter(bytesSent, bytesRecv, framesCoalesced Counter)
}

// FrameSender is implemented by connections that can ship an
// already-encoded, reference-counted frame (see wire.Frame). The broker
// fans an event out by handing each frame-capable child one reference
// (SendFrame(f.Retain())); the connection releases that reference once
// the shared bytes are on its wire. Connections that move pointers
// without encoding (plain pipes) deliberately do not implement it —
// building a frame for them would add a marshal they never pay today.
type FrameSender interface {
	// SendFrame enqueues the frame's encoded bytes for delivery,
	// consuming the caller's reference (success or failure).
	SendFrame(f *wire.Frame) error
}

// outItem is one queued unit: either an owned message (released by the
// consumer after encoding) or one reference on a shared frame (released
// after its bytes are written). Keeping both in a single queue preserves
// the per-link FIFO between fanned-out events and routed messages.
type outItem struct {
	m *wire.Message
	f *wire.Frame
}

// release settles the item's ownership without delivering it: the
// dropped-on-close path of a hard queue teardown.
func (it outItem) release() {
	if it.m != nil {
		it.m.Release()
	}
	if it.f != nil {
		it.f.Release()
	}
}

// queue is an unbounded FIFO of messages with close semantics.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []outItem
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push takes ownership of the item: on success the queue's consumer
// settles it, and a rejected push (closed queue) settles it here, so
// pooled messages and frame references cannot leak on send/close races.
func (q *queue) push(it outItem) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		it.release()
		return ErrClosed
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	return nil
}

// pop blocks until an item is available or the queue is closed and
// drained, in which case it returns io.EOF.
func (q *queue) pop() (outItem, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return outItem{}, io.EOF
	}
	it := q.items[0]
	q.items[0] = outItem{}
	q.items = q.items[1:]
	return it, nil
}

// tryPop returns the next item without blocking. ok is false when the
// queue is momentarily empty or closed-and-drained.
func (q *queue) tryPop() (outItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return outItem{}, false
	}
	it := q.items[0]
	q.items[0] = outItem{}
	q.items = q.items[1:]
	return it, true
}

// close marks the queue closed. If drain is false pending items are
// dropped so readers observe EOF immediately.
func (q *queue) close(drain bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	if !drain {
		// Dropped messages may be pooled and armed, and dropped frames
		// hold a reference; settle them so a hard close does not leak
		// the pool's buffers.
		for _, it := range q.items {
			it.release()
		}
		q.items = nil
	}
	q.cond.Broadcast()
}

func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// pipeConn is one end of an in-process connection.
type pipeConn struct {
	send   *queue // messages we produce, peer consumes
	recv   *queue // messages peer produced, we consume
	peerID string
}

// Pipe returns a connected pair of in-process Conns. aID and bID are the
// identities the respective ends present: the Conn returned first reports
// PeerIdentity() == bID, and vice versa. Messages sent on one end are
// delivered in order on the other; delivery survives the sender closing
// (already-sent messages drain before EOF).
func Pipe(aID, bID string) (Conn, Conn) {
	ab := newQueue()
	ba := newQueue()
	a := &pipeConn{send: ab, recv: ba, peerID: bID}
	b := &pipeConn{send: ba, recv: ab, peerID: aID}
	return a, b
}

func (c *pipeConn) Send(m *wire.Message) error {
	return c.send.push(outItem{m: m})
}

func (c *pipeConn) Recv() (*wire.Message, error) {
	it, err := c.recv.pop()
	if err != nil {
		return nil, err
	}
	return it.m, nil
}

func (c *pipeConn) PeerIdentity() string { return c.peerID }

func (c *pipeConn) Close() error {
	// Let in-flight messages to the peer drain, but unblock our readers.
	c.send.close(true)
	c.recv.close(false)
	return nil
}

// codecConn wraps a Conn, passing every sent message through the wire
// codec (marshal + unmarshal). The in-proc transport otherwise moves
// pointers, which would hide the per-hop cost of moving bytes; the codec
// pipe restores a copy cost proportional to message size so value-size
// effects (Figs. 2–3 of the paper) are visible in simulated sessions.
type codecConn struct {
	Conn
}

func (c codecConn) Send(m *wire.Message) error {
	// Send consumes m, success or failure: the broker may have handed it
	// off, in which case an early return without Release leaks the
	// pooled buffer (and the codec pipe is exactly the config used by
	// large simulated sessions, where the leak compounds per hop).
	b, err := wire.Marshal(m)
	if err != nil {
		m.Release()
		return err
	}
	dup, err := wire.Unmarshal(b)
	if err != nil {
		m.Release()
		return err
	}
	if err := c.Conn.Send(dup); err != nil {
		m.Release()
		return err
	}
	// The duplicate now carries the message; recycle the original if the
	// broker handed it off (no-op otherwise).
	m.Release()
	return nil
}

// SendFrame delivers an encode-once event frame across the codec pipe:
// the shared encode replaces this end's per-child Marshal, and the
// mandatory per-receiver decode (each rank must own its copy) is the
// honest remaining cost. The caller's reference is consumed.
func (c codecConn) SendFrame(f *wire.Frame) error {
	dup, err := wire.Unmarshal(f.Bytes())
	if err != nil {
		f.Release()
		return err
	}
	if err := c.Conn.Send(dup); err != nil {
		f.Release()
		return err
	}
	f.Release()
	return nil
}

// CodecPipe is Pipe with per-hop serialization cost (see codecConn).
func CodecPipe(aID, bID string) (Conn, Conn) {
	a, b := Pipe(aID, bID)
	return codecConn{a}, codecConn{b}
}
