package session

import (
	"context"
	"testing"
	"time"

	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// collectSpans gathers one trace's spans from every rank of the session.
func collectSpans(s *Session, id uint64) []obs.Span {
	var spans []obs.Span
	for r := 0; r < s.Size(); r++ {
		if b := s.Broker(r); b != nil {
			spans = append(spans, b.Traces().Snapshot(id)...)
		}
	}
	return spans
}

// TestTraceSpansPerHop drives one cmb.pub request from the deepest rank
// of a 3-level tree and asserts the trace records exactly one span per
// hop: the request climbing 6 -> 2 -> 0, the response descending
// 0 -> 2 -> 6, and the resulting event applied at every rank, all
// chained by hop number under one trace id.
func TestTraceSpansPerHop(t *testing.T) {
	const size = 7 // binary tree, 3 levels: 0 | 1 2 | 3 4 5 6
	s, err := New(Options{Size: size, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	h := s.Handle(6)
	defer h.Close()

	// cmb.pub from a leaf forwards toward the root at every level (only
	// the root sequences events), exercising the full request path.
	resp, err := h.RPC(wire.TopicPub, wire.NodeidAny,
		map[string]any{"topic": "trace.test", "payload": map[string]int{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.TraceID
	if id == 0 {
		t.Fatal("response carries no trace id")
	}

	// The response has arrived, so the request/response chain is
	// complete; event fan-out to the other ranks is asynchronous.
	var events int
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		events = 0
		for _, sp := range collectSpans(s, id) {
			if sp.Kind == "event" {
				events++
			}
		}
		if events == size {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if events != size {
		t.Fatalf("event applied at %d ranks, want %d", events, size)
	}

	spans := collectSpans(s, id)
	reqHops := map[int]uint8{}  // rank -> hop
	respHops := map[int]uint8{} // rank -> hop
	for _, sp := range spans {
		if sp.Trace != id {
			t.Fatalf("span from wrong trace: %+v", sp)
		}
		switch sp.Kind {
		case "request":
			reqHops[sp.Rank] = sp.Hop
		case "response":
			respHops[sp.Rank] = sp.Hop
		}
	}
	wantReq := map[int]uint8{6: 1, 2: 2, 0: 3}
	wantResp := map[int]uint8{0: 4, 2: 5, 6: 6}
	for rank, hop := range wantReq {
		if reqHops[rank] != hop {
			t.Errorf("request span at rank %d: hop %d, want %d (all: %v)",
				rank, reqHops[rank], hop, reqHops)
		}
	}
	for rank, hop := range wantResp {
		if respHops[rank] != hop {
			t.Errorf("response span at rank %d: hop %d, want %d (all: %v)",
				rank, respHops[rank], hop, respHops)
		}
	}
	if len(reqHops) != 3 || len(respHops) != 3 {
		t.Errorf("request spans at ranks %v and response spans at ranks %v, want exactly {6,2,0} and {0,2,6}",
			reqHops, respHops)
	}

	// The same chain must be reachable over the wire, the way flux trace
	// reads it: cmb.trace at a rank returns that rank's spans only.
	tresp, err := h.RPC(wire.TopicTrace, wire.NodeidAny, map[string]uint64{"id": id})
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Rank  int        `json:"rank"`
		Spans []obs.Span `json:"spans"`
	}
	if err := tresp.UnpackJSON(&body); err != nil {
		t.Fatal(err)
	}
	if body.Rank != 6 || len(body.Spans) != 3 { // request + response + event
		t.Fatalf("cmb.trace at rank 6 returned rank=%d spans=%d, want rank=6 spans=3",
			body.Rank, len(body.Spans))
	}
}

// TestTraceRecordsHostUnreach drops a leaf's parent mid-RPC and asserts
// the synthesized EHOSTUNREACH failure lands in the trace as an
// errno-bearing response span chained to the original request.
func TestTraceRecordsHostUnreach(t *testing.T) {
	const size = 7
	s, err := New(Options{Size: size, Arity: 2, FaultInjection: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ch := s.Chaos()

	h := s.Handle(6)
	defer h.Close()

	// Crash rank 2 (rank 6's parent) silently: requests through it hang
	// inflight. Then sever it: rank 6 sees the link die and must fail
	// its inflight requests with EHOSTUNREACH.
	ch.Crash(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The outcome does not matter (retry may even succeed after
		// re-parenting); the trace must record the failed hop either way.
		_, _ = h.RPCContext(ctx, wire.TopicPub, wire.NodeidAny,
			map[string]any{"topic": "trace.chaos", "payload": map[string]int{}})
	}()
	time.Sleep(100 * time.Millisecond) // let the request land inflight at rank 6
	ch.Sever(2)

	var failed *obs.Span
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && failed == nil {
		for _, sp := range s.Broker(6).Traces().Snapshot(0) {
			if sp.Errnum == wire.ErrnoHostUnreach && sp.Kind == "response" {
				sp := sp
				failed = &sp
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if failed == nil {
		t.Fatal("no EHOSTUNREACH response span recorded at rank 6")
	}
	if failed.Trace == 0 {
		t.Fatalf("failure span has no trace id: %+v", failed)
	}
	// The failure chains onto the original request span at this rank.
	var reqSeen bool
	for _, sp := range s.Broker(6).Traces().Snapshot(failed.Trace) {
		if sp.Kind == "request" && sp.Hop == failed.Parent {
			reqSeen = true
		}
	}
	if !reqSeen {
		t.Fatalf("no request span at hop %d precedes the failure span %+v",
			failed.Parent, failed)
	}
	<-done
}
