package main

// log-discipline: internal packages must log through the broker's log
// plane (obs.Logger / Handle.Log), never through the stdlib log
// package. A raw log.Printf writes to a process-global sink that the
// telemetry plane cannot see: the record never reaches the rank's ring,
// is never forwarded upstream, and is invisible to flux dmesg and the
// flight recorder. Test files are exempt (the loader skips them), as is
// everything outside internal/ (commands talk to a terminal, not a
// session).
//
// Detection resolves the imported package through the type info, so an
// aliased import (stdlog "log") is caught and a local identifier named
// "log" is not.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

const logDisciplineName = "log-discipline"

var logDisciplinePass = Pass{
	Name: logDisciplineName,
	Doc:  "flag stdlib log calls in internal packages; use the broker log plane",
	Run:  runLogDiscipline,
}

func runLogDiscipline(l *Loader, p *Package) []Finding {
	if !strings.Contains(p.Path, "/internal/") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "log" {
				return true
			}
			out = append(out, Finding{
				Pass: logDisciplineName,
				Pos:  l.Fset.Position(call.Pos()),
				Msg: fmt.Sprintf("stdlib log.%s bypasses the log plane; use obs.Logger / Handle.Log",
					sel.Sel.Name),
			})
			return true
		})
	}
	return out
}
