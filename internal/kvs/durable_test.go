package kvs

import (
	"fmt"
	"testing"

	"fluxgo/internal/cas"
	"fluxgo/internal/session"
)

// newDurableSession starts a session whose kvs instances are backed by
// the disk tier under dir (shared base; each rank gets its own subdir).
func newDurableSession(t testing.TB, size, arity int, dir string, fs cas.FS) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size:    size,
		Arity:   arity,
		Modules: []session.ModuleFactory{Factory(ModuleConfig{Dir: dir, FS: fs})},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDurableKVSSurvivesSessionRestart commits through one session,
// tears the whole session down, and verifies a fresh session over the
// same directory resumes the master's root, version, and every value.
func TestDurableKVSSurvivesSessionRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := newDurableSession(t, 3, 2, dir, nil)
	c := client(t, s1, 0)
	for i := 1; i <= 5; i++ {
		if err := c.Put(fmt.Sprintf("job.%d.state", i), "complete"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	ver, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2 := newDurableSession(t, 3, 2, dir, nil)
	defer s2.Close()
	c2 := client(t, s2, 0)
	gotVer, err := c2.GetVersion()
	if err != nil {
		t.Fatalf("getversion after restart: %v", err)
	}
	if gotVer < ver {
		t.Fatalf("recovered version %d < committed %d", gotVer, ver)
	}
	for i := 1; i <= 5; i++ {
		var state string
		if err := c2.Get(fmt.Sprintf("job.%d.state", i), &state); err != nil {
			t.Fatalf("get job.%d.state after restart: %v", i, err)
		}
		if state != "complete" {
			t.Fatalf("job.%d.state = %q after restart", i, state)
		}
	}
	// The recovered master must keep committing from where it left off.
	if err := c2.Put("post.restart", true); err != nil {
		t.Fatal(err)
	}
	newVer, err := c2.Commit()
	if err != nil {
		t.Fatalf("commit after restart: %v", err)
	}
	if newVer <= gotVer {
		t.Fatalf("post-restart commit version %d did not advance past %d", newVer, gotVer)
	}
}

// TestDurableKVSCheckpointRPC exercises the kvs.checkpoint and
// kvs.storage methods end to end.
func TestDurableKVSCheckpointRPC(t *testing.T) {
	dir := t.TempDir()
	s := newDurableSession(t, 3, 2, dir, nil)
	defer s.Close()
	c := client(t, s, 1)
	if err := c.Put("ckpt.key", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	h := s.Handle(0)
	defer h.Close()
	resp, err := h.RPC("kvs.checkpoint", 0, struct{}{})
	if err != nil {
		t.Fatalf("kvs.checkpoint: %v", err)
	}
	var cp struct {
		Pack    string `json:"pack"`
		Objects int    `json:"objects"`
	}
	if err := resp.UnpackJSON(&cp); err != nil {
		t.Fatal(err)
	}
	if cp.Pack == "" || cp.Objects == 0 {
		t.Fatalf("checkpoint response %+v", cp)
	}

	resp, err = h.RPC("kvs.storage", 0, struct{}{})
	if err != nil {
		t.Fatalf("kvs.storage: %v", err)
	}
	var st struct {
		Storage struct {
			Checkpoints uint64 `json:"Checkpoints"`
			PackSeq     uint64 `json:"PackSeq"`
		} `json:"storage"`
	}
	if err := resp.UnpackJSON(&st); err != nil {
		t.Fatal(err)
	}
	if st.Storage.Checkpoints == 0 || st.Storage.PackSeq == 0 {
		t.Fatalf("storage stats %+v", st.Storage)
	}
}

// TestDurableKVSCheckpointCadence verifies CheckpointEvery folds the
// WAL automatically.
func TestDurableKVSCheckpointCadence(t *testing.T) {
	dir := t.TempDir()
	s, err := session.New(session.Options{
		Size:    1,
		Arity:   2,
		Modules: []session.ModuleFactory{Factory(ModuleConfig{Dir: dir, CheckpointEvery: 2})},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := client(t, s, 0)
	for i := 0; i < 5; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	h := s.Handle(0)
	defer h.Close()
	resp, err := h.RPC("kvs.storage", 0, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Storage struct {
			Checkpoints uint64 `json:"Checkpoints"`
		} `json:"storage"`
	}
	if err := resp.UnpackJSON(&st); err != nil {
		t.Fatal(err)
	}
	if st.Storage.Checkpoints != 2 { // 5 commits / every 2
		t.Fatalf("Checkpoints = %d after 5 commits with CheckpointEvery=2, want 2", st.Storage.Checkpoints)
	}
}

// TestDurableKVSNoTierErrors verifies checkpoint/storage respond ENOSYS
// on a memory-only instance.
func TestDurableKVSNoTierErrors(t *testing.T) {
	s := newKVSSession(t, 1, 2)
	h := s.Handle(0)
	defer h.Close()
	if _, err := h.RPC("kvs.checkpoint", 0, struct{}{}); err == nil {
		t.Fatal("checkpoint succeeded without a durable tier")
	}
	if _, err := h.RPC("kvs.storage", 0, struct{}{}); err == nil {
		t.Fatal("storage succeeded without a durable tier")
	}
}
