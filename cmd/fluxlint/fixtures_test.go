package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureLoader returns a loader rooted at the fixture corpus, which is
// a miniature module ("fixture.example") mirroring the shapes the
// passes discriminate on.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	return NewLoader("fixture.example", dir)
}

func loadFixture(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	p, err := l.Load("fixture.example/" + name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return p
}

// badLines returns the 1-based line numbers in file carrying a trailing
// "// BAD" marker.
func badLines(t *testing.T, file string) map[int]bool {
	t.Helper()
	b, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("read %s: %v", file, err)
	}
	lines := map[int]bool{}
	for i, ln := range strings.Split(string(b), "\n") {
		if strings.Contains(ln, "// BAD") {
			lines[i+1] = true
		}
	}
	if len(lines) == 0 {
		t.Fatalf("%s has no // BAD markers; fixture is not testing anything", file)
	}
	return lines
}

// checkPassFixture runs a single pass over one fixture package and
// asserts that findings land exactly on the // BAD lines of bad.go and
// nowhere else (in particular: none in good.go).
func checkPassFixture(t *testing.T, pass Pass, pkgName string) {
	t.Helper()
	l := fixtureLoader(t)
	p := loadFixture(t, l, pkgName)
	want := badLines(t, filepath.Join(p.Dir, "bad.go"))

	seen := map[int]bool{}
	for _, f := range pass.Run(l, p) {
		if filepath.Base(f.Pos.Filename) != "bad.go" {
			t.Errorf("finding outside bad.go: %s", f)
			continue
		}
		if !want[f.Pos.Line] {
			t.Errorf("unexpected finding at unmarked line: %s", f)
			continue
		}
		seen[f.Pos.Line] = true
	}
	for line := range want {
		if !seen[line] {
			t.Errorf("%s: no %s finding at bad.go:%d (marked // BAD)", pkgName, pass.Name, line)
		}
	}
}

func TestLockAcrossBlockFixture(t *testing.T) {
	checkPassFixture(t, lockAcrossBlockPass, "lockblock")
}

func TestGoroutineLifecycleFixture(t *testing.T) {
	checkPassFixture(t, goroutineLifecyclePass, "goroutine")
}

func TestErrnoDisciplineFixture(t *testing.T) {
	checkPassFixture(t, errnoDisciplinePass, "errno")
}

func TestEpochDisciplineFixture(t *testing.T) {
	checkPassFixture(t, epochDisciplinePass, "epoch")
}

func TestWireHygieneFixture(t *testing.T) {
	checkPassFixture(t, wireHygienePass, "wirehyg")
}

func TestDeadlinePropagationFixture(t *testing.T) {
	checkPassFixture(t, deadlinePropagationPass, "deadline")
}

func TestFsyncDisciplineFixture(t *testing.T) {
	checkPassFixture(t, fsyncDisciplinePass, "fsync")
}

func TestPoolOwnershipFixture(t *testing.T) {
	checkPassFixture(t, poolOwnershipPass, "poolown")
}

func TestErrnoCompletenessFixture(t *testing.T) {
	checkPassFixture(t, errnoCompletenessPass, "errnocomplete")
}

func TestLogDisciplineFixture(t *testing.T) {
	checkPassFixture(t, logDisciplinePass, "internal/logdisc")
}
