package transport

import (
	"io"
	"math/rand"
	"sync"
	"time"

	"fluxgo/internal/wire"
)

// Faults describes the failure behaviour injected on the *outbound*
// direction of one Faulty endpoint. Both endpoints of a link are wrapped
// by the chaos controller, so inbound faults on one side are expressed
// as outbound faults on the peer.
//
// Delay and Jitter are applied by a serial delivery pump, so injected
// latency never reorders messages: the FIFO property the overlay planes
// depend on is preserved under every fault combination.
type Faults struct {
	// Drop is the probability in [0, 1] that a sent message is silently
	// discarded.
	Drop float64
	// Dup is the probability in [0, 1] that a sent message is delivered
	// twice (the duplicate is a deep copy, so route mutations never
	// alias).
	Dup float64
	// Delay is a fixed extra latency added to every delivery.
	Delay time.Duration
	// Jitter adds a uniformly random extra latency in [0, Jitter).
	Jitter time.Duration
	// Blackhole simulates a crashed peer or a network partition: sends
	// are swallowed, inbound traffic is discarded, and — crucially — a
	// peer close is NOT surfaced as EOF. The reader blocks in silence
	// exactly as a TCP endpoint does when the remote host dies without
	// sending FIN, until the wrapper itself is closed (the analogue of a
	// failure detector severing the link).
	Blackhole bool
}

// faultyItem is one staged outbound delivery.
type faultyItem struct {
	m   *wire.Message
	due time.Time
}

// Faulty wraps a Conn with controllable fault injection. It implements
// Conn; see Faults for the failure model. A Faulty is safe for
// concurrent use and faults may be changed at any time with SetFaults.
type Faulty struct {
	inner Conn

	mu       sync.Mutex
	cond     *sync.Cond
	f        Faults
	rng      *rand.Rand
	staged   []faultyItem
	closed   bool
	closedCh chan struct{}
}

// NewFaulty wraps inner in a fault injector with no faults configured.
// seed makes the drop/dup/jitter decisions reproducible.
func NewFaulty(inner Conn, seed int64) *Faulty {
	c := &Faulty{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed)),
		closedCh: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.pump()
	return c
}

// SetFaults replaces the endpoint's fault configuration.
func (c *Faulty) SetFaults(f Faults) {
	c.mu.Lock()
	c.f = f
	c.mu.Unlock()
}

// Faults returns the current fault configuration.
func (c *Faulty) Faults() Faults {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f
}

// Send stages m for delivery, applying drop/dup/delay faults. Faulted
// sends still report success: a lossy link looks healthy to the sender,
// which is the point.
func (c *Faulty) Send(m *wire.Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	f := c.f
	if f.Drop > 0 && c.rng.Float64() < f.Drop {
		c.mu.Unlock()
		return nil // dropped on the floor
	}
	delay := f.Delay
	if f.Jitter > 0 {
		delay += time.Duration(c.rng.Int63n(int64(f.Jitter)))
	}
	due := time.Now().Add(delay)
	c.staged = append(c.staged, faultyItem{m: m, due: due})
	if f.Dup > 0 && c.rng.Float64() < f.Dup {
		c.staged = append(c.staged, faultyItem{m: m.Copy(), due: due})
	}
	c.cond.Signal()
	c.mu.Unlock()
	return nil
}

// pump delivers staged messages in order, honouring per-message due
// times. Blackhole is re-checked at delivery time so a crash also
// swallows messages staged before it.
func (c *Faulty) pump() {
	for {
		c.mu.Lock()
		for len(c.staged) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.staged = nil
			c.mu.Unlock()
			return
		}
		it := c.staged[0]
		c.staged[0] = faultyItem{}
		c.staged = c.staged[1:]
		c.mu.Unlock()

		if wait := time.Until(it.due); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-c.closedCh:
				t.Stop()
				return
			}
		}
		c.mu.Lock()
		blackhole := c.f.Blackhole
		c.mu.Unlock()
		if !blackhole {
			//fluxlint:ignore errno-discipline fault-injected delivery is best effort; inner close surfaces via Recv
			c.inner.Send(it.m)
		}
	}
}

// Recv returns the next inbound message. Under Blackhole, inbound
// messages are discarded and a peer close is absorbed: Recv blocks until
// the wrapper itself is closed, then returns io.EOF — modelling a peer
// that died silently until a failure detector tears the link down.
func (c *Faulty) Recv() (*wire.Message, error) {
	for {
		m, err := c.inner.Recv()
		c.mu.Lock()
		blackhole := c.f.Blackhole
		closed := c.closed
		c.mu.Unlock()
		if err != nil {
			if closed {
				return nil, io.EOF
			}
			if blackhole {
				<-c.closedCh // silence until severed
				return nil, io.EOF
			}
			return nil, err
		}
		if blackhole {
			continue // swallowed
		}
		return m, nil
	}
}

// PeerIdentity delegates to the wrapped connection.
func (c *Faulty) PeerIdentity() string { return c.inner.PeerIdentity() }

// Close tears the endpoint down: staged messages are discarded, blocked
// readers return io.EOF, and the wrapped connection is closed.
func (c *Faulty) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	c.cond.Broadcast()
	c.mu.Unlock()
	return c.inner.Close()
}
