# fluxgo build/test entry points.
#
# `make check` is the gate: vet plus the full test suite under the race
# detector, including the chaos soak at its short default duration.
# Lengthen the soak (and pin a fault schedule) via the env vars the soak
# test reads, e.g.:
#
#   CHAOS_SOAK=30s CHAOS_SEED=42 make chaos

GO ?= go

.PHONY: build test check chaos vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: vet
	$(GO) test -race ./...

# Longer fault-injection soak; honours CHAOS_SOAK / CHAOS_SEED.
chaos:
	$(GO) test -race -run 'TestChaosSoak' -v ./internal/session/
