package kvs

import (
	"sync"

	"fluxgo/internal/cas"
)

// flightGroup collapses duplicate concurrent fault-ins of the same
// content ref: the first goroutine to ask for a missing ref becomes its
// leader and fetches it upstream; everyone else who asks while the
// fetch is in flight waits on the leader's result instead of issuing a
// redundant upstream round-trip. Refs are content-addressed, so every
// waiter is satisfied by whichever fetch completes — this is pure
// de-duplication, with no staleness hazard.
//
// A hand-rolled implementation (mutex + map + channel) is used because
// the module only needs begin/finish semantics and the repo takes no
// external dependencies.
type flightGroup struct {
	mu sync.Mutex
	m  map[cas.Ref]*flight
}

// flight is one in-progress fault. done is closed by the leader after
// the object is in the local store (err == nil) or the fetch failed.
type flight struct {
	done chan struct{}
	err  error
}

// begin registers interest in ref. leader is true when the caller must
// fetch the object and later call finish; otherwise the returned flight
// is an existing fetch the caller can wait on.
func (g *flightGroup) begin(ref cas.Ref) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = map[cas.Ref]*flight{}
	}
	if f, ok := g.m[ref]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[ref] = f
	return f, true
}

// finish resolves ref's flight with err and wakes every waiter. Only
// the leader returned by begin may call it, exactly once.
func (g *flightGroup) finish(ref cas.Ref, err error) {
	g.mu.Lock()
	f := g.m[ref]
	delete(g.m, ref)
	g.mu.Unlock()
	f.err = err
	close(f.done)
}
