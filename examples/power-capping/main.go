// Site-wide power capping with the generalized resource model: power is
// a consumable resource pooled at the node, rack, and cluster levels
// (the paper's "dynamic power capping at the level of systems, compute
// racks, and/or nodes"), and the scheduler co-schedules compute nodes
// against every cap along each node's ancestry. A file-system bandwidth
// pool shows the same mechanism preventing the overlapping-I/O-burst
// problem the paper's introduction describes.
//
//	go run ./examples/power-capping
package main

import (
	"fmt"
	"log"

	"fluxgo"
	"fluxgo/internal/resource"
)

func main() {
	// 2 racks x 4 nodes. Node cap 800 W; rack cap 2500 W (so at most
	// three 700 W nodes per rack); cluster cap 4000 W (at most five
	// 700 W nodes overall); 10 GB/s shared parallel file system.
	cluster, err := fluxgo.BuildCluster(fluxgo.ClusterSpec{
		Name: "center", Racks: 2, NodesPerRack: 4,
		SocketsPerNode: 2, CoresPerSocket: 8,
		NodePowerW: 800, RackPowerW: 2500, ClusterPowerW: 4000,
		FilesystemBW: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool := resource.NewPool(cluster)

	// Hungry jobs at 700 W per node: the multi-level caps admit exactly
	// five nodes, spread across racks by the rack caps.
	granted := 0
	for j := 0; ; j++ {
		id := fmt.Sprintf("hot-%d", j)
		alloc, err := pool.Allocate(id, fluxgo.Request{Nodes: 1, PowerWPerNod: 700})
		if err != nil {
			fmt.Printf("job %s refused: %v\n", id, err)
			break
		}
		granted++
		fmt.Printf("job %s granted node %s\n", id, alloc.Nodes[0].Path())
	}
	fmt.Printf("=> %d x 700 W jobs admitted under the caps\n\n", granted)
	for _, rack := range cluster.FindAll(resource.TypeRack) {
		pw := rack.Find("power")
		fmt.Printf("%s power: %.0f / %.0f W\n", rack.Path(), pw.Used(), pw.Capacity)
	}
	cpw := cluster.Find("power")
	fmt.Printf("%s power: %.0f / %.0f W\n\n", cluster.Path(), cpw.Used(), cpw.Capacity)

	// A low-power job still fits: capping is per-watt, not per node count.
	if _, err := pool.Allocate("cool-1", fluxgo.Request{Nodes: 1, PowerWPerNod: 150}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("low-power job (150 W/node) admitted alongside")

	// I/O-intensive jobs are co-scheduled against the shared file system:
	// two 6 GB/s bursts cannot overlap on a 10 GB/s file system.
	if _, err := pool.Allocate("io-1", fluxgo.Request{Nodes: 1, FilesystemBW: 6000}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("io-1 granted 6 GB/s of file-system bandwidth")
	if _, err := pool.Allocate("io-2", fluxgo.Request{Nodes: 1, FilesystemBW: 6000}); err != nil {
		fmt.Printf("io-2 deferred (no overlapping burst): %v\n", err)
	}
	pool.Release("io-1")
	if _, err := pool.Allocate("io-2", fluxgo.Request{Nodes: 1, FilesystemBW: 6000}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("io-2 granted after io-1 completed")
}
