// Package poolown holds fixtures for the pool-ownership pass: the
// pooled wire.Message lifecycle (Handoff / Release / Detach) plus the
// payload-retention rule relocated from wire-hygiene.
package poolown

import (
	"errors"

	"fixture.example/wire"
)

var errBoom = errors.New("boom")

func send(m *wire.Message)   {}
func record(m *wire.Message) {}
func encode(m *wire.Message) error { return nil }

func touchAfterHandoff(m *wire.Message) {
	m.Handoff()
	send(m)          // the one sanctioned consumption
	m.Topic = "late" // BAD
}

func touchBeforeConsume(m *wire.Message) {
	m.Handoff()
	m.Seq = 9 // BAD
}

func secondPass(m *wire.Message) {
	m.Handoff()
	send(m)
	send(m) // BAD
}

func doubleRelease(m *wire.Message) {
	m.Release()
	m.Release() // BAD
}

func useAfterRelease(m *wire.Message) string {
	m.Release()
	return m.Topic // BAD
}

func releaseAfterHandoff(m *wire.Message) {
	m.Handoff()
	send(m)
	m.Release() // BAD
}

func leakOnError(m *wire.Message, fail bool) error {
	record(m)
	if fail {
		return errBoom // BAD
	}
	m.Release()
	return nil
}

func leakOnEarlyReturn(m *wire.Message) error {
	if err := encode(m); err != nil {
		return err // BAD
	}
	m.Release()
	return nil
}

// Refcounted frame lifecycle: each reference obliges exactly one
// Release, and a bare frame handed to SendFrame is released by the
// sender — the caller's reference is gone.

type frameSink struct{}

func (s *frameSink) SendFrame(f *wire.Frame) error {
	f.Release()
	return nil
}

func doubleReleaseFrame(f *wire.Frame) {
	f.Release()
	f.Release() // BAD
}

func useFrameAfterRelease(f *wire.Frame) []byte {
	f.Release()
	return f.Bytes() // BAD
}

func retainAfterRelease(f *wire.Frame) *wire.Frame {
	f.Release()
	return f.Retain() // BAD
}

func releaseAfterHandout(s *frameSink, f *wire.Frame) {
	s.SendFrame(f)
	f.Release() // BAD
}

func handOutTwice(s *frameSink, f *wire.Frame) {
	s.SendFrame(f)
	s.SendFrame(f) // BAD
}

func frameLeakOnError(s *frameSink, f *wire.Frame, fail bool) error {
	s.SendFrame(f.Retain())
	if fail {
		return errBoom // BAD
	}
	f.Release()
	return nil
}

// Payload-retention shapes: each stores a handler message's payload
// into storage that outlives the call, without detaching the message.

type holder struct{ data []byte }

var stash = map[string][]byte{}

var backlog [][]byte

func retainField(h *holder, m *wire.Message) {
	h.data = m.Payload // BAD
}

func retainMap(m *wire.Message) {
	stash[m.Topic] = m.Payload // BAD
}

func retainAppend(m *wire.Message) {
	backlog = append(backlog, m.Payload) // BAD
}

func retainInLit(h *holder) {
	fn := func(m *wire.Message) {
		h.data = m.Payload // BAD
	}
	fn(nil)
}
