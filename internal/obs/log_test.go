package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestLogRingAppendSnapshot(t *testing.T) {
	r := NewLogRing(4, 100)
	for i := 0; i < 6; i++ {
		r.Append(Record{TimeNS: int64(i + 1), Level: LevelInfo, Msg: fmt.Sprintf("m%d", i)})
	}
	recs := r.Snapshot(LogFilter{})
	if len(recs) != 4 {
		t.Fatalf("snapshot len = %d, want 4 (ring capacity)", len(recs))
	}
	// Oldest two were overwritten; arrival order preserved.
	for i, rec := range recs {
		if want := fmt.Sprintf("m%d", i+2); rec.Msg != want {
			t.Errorf("recs[%d].Msg = %q, want %q", i, rec.Msg, want)
		}
		if rec.Seq != uint64(i+3) {
			t.Errorf("recs[%d].Seq = %d, want %d", i, rec.Seq, i+3)
		}
		if rec.BootNS != 100 {
			t.Errorf("recs[%d].BootNS = %d, want 100", i, rec.BootNS)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if r.LastSeq() != 6 {
		t.Errorf("LastSeq = %d, want 6", r.LastSeq())
	}
}

func TestLogRingPreservesForwardedStamps(t *testing.T) {
	r := NewLogRing(8, 999)
	// A forwarded record arrives with its origin seq and boot intact.
	r.Append(Record{Seq: 42, BootNS: 7, TimeNS: 1, Rank: 3, Msg: "forwarded"})
	recs := r.Snapshot(LogFilter{})
	if len(recs) != 1 || recs[0].Seq != 42 || recs[0].BootNS != 7 {
		t.Fatalf("forwarded record = %+v, want Seq=42 BootNS=7", recs)
	}
}

func TestLogFilter(t *testing.T) {
	r := NewLogRing(16, 1)
	r.Append(Record{TimeNS: 10, Level: LevelDebug, Msg: "d"})
	r.Append(Record{TimeNS: 20, Level: LevelWarn, Msg: "w"})
	r.Append(Record{TimeNS: 30, Level: LevelErr, Msg: "e"})
	r.Append(Record{TimeNS: 40, Level: LevelInfo, Msg: "i"})

	warns := r.Snapshot(LogFilter{MaxLevel: LevelWarn})
	if len(warns) != 2 || warns[0].Msg != "w" || warns[1].Msg != "e" {
		t.Fatalf("MaxLevel=warn snapshot = %+v", warns)
	}
	since := r.Snapshot(LogFilter{SinceSeq: 2})
	if len(since) != 2 || since[0].Msg != "e" {
		t.Fatalf("SinceSeq=2 snapshot = %+v", since)
	}
	sinceT := r.Snapshot(LogFilter{SinceNS: 25})
	if len(sinceT) != 2 || sinceT[0].Msg != "e" {
		t.Fatalf("SinceNS=25 snapshot = %+v", sinceT)
	}
	newest := r.Snapshot(LogFilter{Max: 1})
	if len(newest) != 1 || newest[0].Msg != "i" {
		t.Fatalf("Max=1 snapshot = %+v", newest)
	}
}

func TestLoggerLevelsAndGate(t *testing.T) {
	ring := NewLogRing(16, 1)
	l := NewLogger(ring, 5)
	l.SetEpochFn(func() uint32 { return 9 })
	var now int64
	l.SetNow(func() int64 { now++; return now })

	l.SetVerbosity(LevelWarn)
	if l.Enabled(LevelDebug) {
		t.Fatal("debug enabled above verbosity gate")
	}
	l.Debugf("sub", "dropped %d", 1)
	l.Warnf("sub", "kept %d", 2)
	l.Errorf("sub", "kept %d", 3)
	recs := ring.Snapshot(LogFilter{})
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (debug gated)", len(recs))
	}
	if recs[0].Msg != "kept 2" || recs[0].Level != LevelWarn || recs[0].Rank != 5 || recs[0].Epoch != 9 {
		t.Fatalf("warn record = %+v", recs[0])
	}
}

func TestLoggerMirrorAndCounter(t *testing.T) {
	ring := NewLogRing(16, 1)
	l := NewLogger(ring, 0)
	var mirrored []Record
	l.SetMirror(func(r Record) { mirrored = append(mirrored, r) })
	reg := NewRegistry()
	c := reg.Counter("recs")
	l.SetCounter(c)
	l.LogT(LevelNotice, "s", 77, "msg")
	if len(mirrored) != 1 || mirrored[0].Trace != 77 || mirrored[0].Seq != 1 {
		t.Fatalf("mirror saw %+v", mirrored)
	}
	if c.Load() != 1 {
		t.Fatalf("counter = %d, want 1", c.Load())
	}
}

func TestNilLoggerAndRing(t *testing.T) {
	var l *Logger
	l.Warnf("sub", "must not panic")
	l.SetVerbosity(LevelErr)
	if l.Enabled(LevelErr) {
		t.Fatal("nil logger claims enabled")
	}
	var r *LogRing
	if r.Append(Record{}) != 0 || r.Snapshot(LogFilter{}) != nil || r.Len() != 0 {
		t.Fatal("nil ring misbehaved")
	}
}

// TestLogRingConcurrent hammers a ring and its logger from many
// goroutines while snapshots run — the -race harness for the log plane.
func TestLogRingConcurrent(t *testing.T) {
	ring := NewLogRing(128, 1)
	l := NewLogger(ring, 1)
	l.SetEpochFn(func() uint32 { return 3 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Warnf("sub", "g%d i%d", g, i)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ring.Snapshot(LogFilter{MaxLevel: LevelWarn})
				ring.Len()
				ring.LastSeq()
			}
		}()
	}
	wg.Wait()
	if got := ring.LastSeq(); got != 1600 {
		t.Fatalf("LastSeq = %d, want 1600", got)
	}
	if got := ring.Len(); got != 128 {
		t.Fatalf("Len = %d, want 128", got)
	}
}

// TestTraceBufferConcurrent does the same for the span ring.
func TestTraceBufferConcurrent(t *testing.T) {
	tb := NewTraceBuffer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tb.Append(Span{Trace: uint64(g + 1), Rank: g, StartNS: int64(i)})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tb.Snapshot(0)
				tb.Len()
			}
		}()
	}
	wg.Wait()
	if tb.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tb.Len())
	}
}

func TestMergeAndDedupeRecords(t *testing.T) {
	a := []Record{
		{Seq: 1, TimeNS: 10, Rank: 0, BootNS: 1, Msg: "a1"},
		{Seq: 2, TimeNS: 30, Rank: 0, BootNS: 1, Msg: "a2"},
	}
	b := []Record{
		{Seq: 1, TimeNS: 20, Rank: 1, BootNS: 1, Msg: "b1"},
		{Seq: 2, TimeNS: 30, Rank: 0, BootNS: 1, Msg: "a2"}, // dup of a2 via forwarding
		{Seq: 1, TimeNS: 40, Rank: 0, BootNS: 9, Msg: "a1-reborn"},
	}
	merged := MergeRecords(a, b)
	if len(merged) != 5 {
		t.Fatalf("merged len = %d, want 5", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].TimeNS < merged[i-1].TimeNS {
			t.Fatalf("merge not time-ordered: %+v", merged)
		}
	}
	deduped := DedupeRecords(merged)
	if len(deduped) != 4 {
		t.Fatalf("deduped len = %d, want 4: %+v", len(deduped), deduped)
	}
	// Same (rank, seq) under a different boot survives (restart case).
	found := false
	for _, r := range deduped {
		if r.Msg == "a1-reborn" {
			found = true
		}
	}
	if !found {
		t.Fatal("restart-incarnation record was wrongly deduped")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]int{
		"err": LevelErr, "error": LevelErr, "warn": LevelWarn, "warning": LevelWarn,
		"notice": LevelNotice, "info": LevelInfo, "debug": LevelDebug, "5": 5,
	} {
		got, ok := ParseLevel(s)
		if !ok || got != want {
			t.Errorf("ParseLevel(%q) = %d,%v want %d", s, got, ok, want)
		}
	}
	for _, s := range []string{"", "loud", "5x"} {
		if _, ok := ParseLevel(s); ok {
			t.Errorf("ParseLevel(%q) unexpectedly ok", s)
		}
	}
	if LevelName(LevelWarn) != "warn" || LevelName(42) != "level42" {
		t.Error("LevelName mapping broken")
	}
}
