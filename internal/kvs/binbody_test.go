package kvs

import (
	"bytes"
	"testing"

	"fluxgo/internal/session"
	"fluxgo/internal/wire"
)

// TestBinBodyRoundTrip checks every binary-coded kvs body survives an
// encode/decode cycle, and that the same decoder accepts the JSON form —
// the sniff that makes codec v3 a pure encoder-side opt-in.
func TestBinBodyRoundTrip(t *testing.T) {
	put := putBody{Key: "a.b", Ref: "deadbeef", Data: []byte{1, 2, 3, 0xB3}}
	msg := &wire.Message{Payload: []byte(put.bin())}
	got, err := decodePutBody(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != put.Key || got.Ref != put.Ref || !bytes.Equal(got.Data, put.Data) {
		t.Fatalf("putBody round trip: got %+v, want %+v", got, put)
	}

	load := loadBody{Ref: "aa", Refs: []string{"bb", "cc"}}
	msg = &wire.Message{Payload: []byte(load.bin())}
	gotLoad, err := decodeLoadBody(msg)
	if err != nil {
		t.Fatal(err)
	}
	if gotLoad.Ref != load.Ref || len(gotLoad.Refs) != 2 || gotLoad.Refs[1] != "cc" {
		t.Fatalf("loadBody round trip: got %+v, want %+v", gotLoad, load)
	}

	resp := loadResp{Data: []byte("xyz"), Objects: map[string][]byte{"k1": {9}, "k2": {8, 7}}}
	msg = &wire.Message{Payload: []byte(resp.bin())}
	gotResp, err := decodeLoadResp(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotResp.Data, resp.Data) || len(gotResp.Objects) != 2 ||
		!bytes.Equal(gotResp.Objects["k2"], []byte{8, 7}) {
		t.Fatalf("loadResp round trip: got %+v, want %+v", gotResp, resp)
	}

	// JSON forms hit the same decoders through the sniff-miss path.
	jm, err := wire.NewRequest("kvs.put", wire.NodeidAny, put)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := decodePutBody(jm)
	if err != nil {
		t.Fatal(err)
	}
	if gotJSON.Key != put.Key || !bytes.Equal(gotJSON.Data, put.Data) {
		t.Fatalf("putBody JSON decode: got %+v, want %+v", gotJSON, put)
	}

	// A truncated binary body fails loudly rather than yielding zeroes.
	trunc := []byte(put.bin())[:3]
	if _, err := decodePutBody(&wire.Message{Payload: trunc}); err == nil {
		t.Fatal("truncated binary body decoded without error")
	}
}

// binKVSSession is newKVSSession with binary bodies negotiated on.
func binKVSSession(t testing.TB, size, arity int) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size:         size,
		Arity:        arity,
		Codec:        true,
		BinaryBodies: true,
		Modules:      []session.ModuleFactory{Factory(ModuleConfig{})},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestBinaryBodiesEndToEnd runs the put/commit/get/load cycle across a
// codec-linked tree with every broker speaking binary bodies.
func TestBinaryBodiesEndToEnd(t *testing.T) {
	s := binKVSSession(t, 7, 2)
	w := client(t, s, 6) // leaf: puts and loads traverse two slave levels
	if err := w.Put("bin.key", "hello"); err != nil {
		t.Fatal(err)
	}
	ver, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	r := client(t, s, 5)
	if err := r.WaitVersion(ver); err != nil {
		t.Fatal(err)
	}
	var got string
	if err := r.Get("bin.key", &got); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("bin.key = %q, want %q", got, "hello")
	}
}

// TestBinaryBodiesCrossVersionLinks mixes encodings on one tree: some
// brokers emit binary bodies, others plain JSON. Decoders sniff, and
// responses follow the request's encoding, so every pairing on a parent
// <-> child link — binary->JSON, JSON->binary — must interoperate.
func TestBinaryBodiesCrossVersionLinks(t *testing.T) {
	s := binKVSSession(t, 3, 2)
	// Rank 1 reverts to JSON: its requests to the binary root arrive as
	// JSON (sniff-miss), and the root's responses to it come back JSON
	// (response follows request). Rank 2 stays binary against the same
	// root, exercising the opposite pairing concurrently.
	s.Broker(1).SetBinaryBodies(false)

	wj := client(t, s, 1) // JSON writer under binary master
	if err := wj.Put("cross.j", 11); err != nil {
		t.Fatal(err)
	}
	verJ, err := wj.Commit()
	if err != nil {
		t.Fatal(err)
	}
	wb := client(t, s, 2) // binary writer under binary master
	if err := wb.Put("cross.b", 22); err != nil {
		t.Fatal(err)
	}
	verB, err := wb.Commit()
	if err != nil {
		t.Fatal(err)
	}

	// Cross-reads: the JSON rank faults in the binary rank's object and
	// vice versa (kvs.load over both encodings).
	ver := verJ
	if verB > ver {
		ver = verB
	}
	var got int
	if err := wj.WaitVersion(ver); err != nil {
		t.Fatal(err)
	}
	if err := wj.Get("cross.b", &got); err != nil {
		t.Fatal(err)
	}
	if got != 22 {
		t.Fatalf("cross.b at JSON rank = %d, want 22", got)
	}
	if err := wb.WaitVersion(ver); err != nil {
		t.Fatal(err)
	}
	if err := wb.Get("cross.j", &got); err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("cross.j at binary rank = %d, want 11", got)
	}
}
