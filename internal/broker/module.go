package broker

import (
	"fmt"
	"time"

	"fluxgo/internal/wire"
)

// Module is a comms module — the paper's loadable service plugin. A
// module is loaded into a broker's address space and exchanges messages
// with it over in-memory mailboxes.
//
// Recv is called on a single dedicated goroutine per module instance, in
// arrival order, with requests addressed to the module's service name
// and events matching its subscriptions. Recv may block (for example on
// Handle.RPC to an upstream module instance); further messages simply
// queue. Events are shared and must be treated as read-only.
type Module interface {
	// Name is the service name: requests with topic "<name>.*" are
	// dispatched to this module.
	Name() string
	// Subscriptions returns event-topic prefixes the module wants.
	Subscriptions() []string
	// Init is called once, before any Recv, with the module's Handle.
	Init(h *Handle) error
	// Recv processes one request or subscribed event.
	Recv(msg *wire.Message)
	// Shutdown is called once after the last Recv.
	Shutdown()
}

// IdleBatcher is an optional Module extension. When implemented, Idle is
// called on the module goroutine each time the module's inbox drains,
// i.e. after a burst of messages has been processed with nothing queued
// behind it. Modules use this to aggregate upstream traffic — the tree
// "data reductions ... aggregating and retransmitting upstream requests
// between instances of a comms module" from the paper. Batching is a
// performance heuristic only; correctness must not depend on where batch
// boundaries fall.
type IdleBatcher interface {
	Idle()
}

// moduleRunner drives one loaded module instance.
type moduleRunner struct {
	mod   Module
	subs  []string
	inbox *ShardedMailbox[*wire.Message]
	h     *Handle
	done  chan struct{}
}

// LoadModule loads a comms module into the broker, giving it a Handle
// for outbound operations. The paper's "module loaded at a configurable
// tree depth" policy is realized by the session choosing which ranks to
// call LoadModule on.
func (b *Broker) LoadModule(m Module) error {
	// One inbox lane per dispatch shard: shards deliver into their own
	// lane, so a hot module never head-of-line-blocks dispatch itself.
	r := &moduleRunner{
		mod:   m,
		subs:  m.Subscriptions(),
		inbox: NewShardedMailbox[*wire.Message](b.nshards),
		done:  make(chan struct{}),
	}
	r.h = b.NewHandle()
	if err := m.Init(r.h); err != nil {
		r.h.Close()
		r.inbox.CloseNow()
		return err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		r.h.Close()
		r.inbox.CloseNow()
		return errShutdown
	}
	b.modules[m.Name()] = r
	b.publishModulesLocked()
	b.mu.Unlock()
	go r.run()
	return nil
}

// UnloadModule stops and removes a loaded comms module. Already-queued
// requests drain through the module first (with a grace period);
// subsequent requests for the service route upstream (or fail at the
// root). Together with LoadModule this enables live software upgrades of
// a service, one of the paper's system requirements: unload the old
// instance, load the new one, while the broker and its other services
// keep running.
func (b *Broker) UnloadModule(name string) error {
	b.mu.Lock()
	r, ok := b.modules[name]
	if ok {
		delete(b.modules, name)
		b.publishModulesLocked()
	}
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("broker: no module %q loaded", name)
	}
	// Graceful first: the registry entry is gone so nothing new arrives;
	// let the module answer what is already queued, then shut down. If it
	// wedges (e.g. parked in an RPC that will never complete), fail its
	// handle to force the drain.
	r.inbox.Close()
	select {
	case <-r.done:
	case <-time.After(2 * time.Second):
		r.h.Close()
		<-r.done
	}
	return nil
}

// HasModule reports whether a module with the given service name is
// loaded at this broker.
func (b *Broker) HasModule(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.modules[name]
	return ok
}

func (r *moduleRunner) run() {
	defer close(r.done)
	idler, _ := r.mod.(IdleBatcher)
	out := r.inbox.Out()
	for m := range out {
		r.mod.Recv(m)
	inner:
		for {
			select {
			case m2, ok := <-out:
				if !ok {
					break inner
				}
				r.mod.Recv(m2)
			default:
				break inner
			}
		}
		if idler != nil {
			idler.Idle()
		}
	}
	r.mod.Shutdown()
	r.h.Close()
}

// stop closes the module's inbox (pending messages are discarded) and
// waits for Recv to finish.
func (r *moduleRunner) stop() {
	r.inbox.CloseNow()
	// The module may be blocked in Recv on an RPC; its handle is failed
	// by broker shutdown which unblocks it.
	<-r.done
}
