package clock

import (
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := Real()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real().Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestRealTimerFires(t *testing.T) {
	c := Real()
	timer := c.NewTimer(time.Millisecond)
	select {
	case <-timer.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real timer did not fire")
	}
}

func TestRealTimerStop(t *testing.T) {
	c := Real()
	timer := c.NewTimer(time.Hour)
	if !timer.Stop() {
		t.Fatal("Stop() on pending timer returned false")
	}
}

func TestManualNowAdvances(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", m.Now(), start)
	}
	m.Advance(3 * time.Second)
	want := start.Add(3 * time.Second)
	if !m.Now().Equal(want) {
		t.Fatalf("after Advance, Now() = %v, want %v", m.Now(), want)
	}
}

func TestManualTimerFiresOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	timer := m.NewTimer(10 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("timer fired before Advance")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("timer fired too early")
	default:
	}
	m.Advance(time.Second)
	select {
	case now := <-timer.C():
		want := time.Unix(10, 0)
		if !now.Equal(want) {
			t.Fatalf("timer fired at %v, want %v", now, want)
		}
	default:
		t.Fatal("timer did not fire after full Advance")
	}
}

func TestManualTimerZeroDurationFiresImmediately(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	timer := m.NewTimer(0)
	select {
	case <-timer.C():
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
}

func TestManualTimerStopPreventsFire(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	timer := m.NewTimer(time.Second)
	if !timer.Stop() {
		t.Fatal("Stop() returned false on pending timer")
	}
	m.Advance(2 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if timer.Stop() {
		t.Fatal("second Stop() returned true")
	}
}

func TestManualTimersFireInOrder(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	t3 := m.NewTimer(3 * time.Second)
	t1 := m.NewTimer(1 * time.Second)
	t2 := m.NewTimer(2 * time.Second)
	m.Advance(5 * time.Second)
	read := func(timer Timer) time.Time {
		select {
		case v := <-timer.C():
			return v
		default:
			t.Fatal("timer did not fire")
			return time.Time{}
		}
	}
	v1, v2, v3 := read(t1), read(t2), read(t3)
	if !v1.Before(v2) || !v2.Before(v3) {
		t.Fatalf("timers fired out of order: %v %v %v", v1, v2, v3)
	}
}

func TestManualSince(t *testing.T) {
	m := NewManual(time.Unix(100, 0))
	mark := m.Now()
	m.Advance(42 * time.Second)
	if got := m.Since(mark); got != 42*time.Second {
		t.Fatalf("Since = %v, want 42s", got)
	}
}

func TestTickerDeliversTicks(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tk := NewTicker(m, time.Second)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		// Each Advance fires the pending timer; the ticker goroutine then
		// re-arms. Poll Advance until the tick lands to avoid racing the
		// goroutine's re-arm.
		deadline := time.After(5 * time.Second)
		got := false
		for !got {
			m.Advance(time.Second)
			select {
			case <-tk.C:
				got = true
			case <-deadline:
				t.Fatalf("tick %d never delivered", i)
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	tk := NewTicker(Real(), time.Hour)
	tk.Stop()
	tk.Stop() // must not panic
}

func TestTickerPanicsOnNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive interval")
		}
	}()
	NewTicker(Real(), 0)
}
