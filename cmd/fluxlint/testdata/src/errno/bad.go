// Package errno holds fixtures for the errno-discipline pass.
package errno

import (
	"fixture.example/fakes"
	"fixture.example/wire"
)

// notConvention is named outside the Errno*/err* conventions, so using
// it as an errnum is flagged as untraceable.
const notConvention = 71

func rawLiteral(h *fakes.Handle, m *wire.Message) error {
	return h.RespondError(m, 22, "invalid argument") // BAD
}

func rawConverted(m *wire.Message) error {
	return &wire.RPCError{Topic: m.Topic, Errnum: int32(38), Msg: "not implemented"} // BAD
}

func rawInBuilder(m *wire.Message) *wire.Message {
	return wire.NewErrorResponse(m, 108, "shutting down") // BAD
}

func unconventionalConst(h *fakes.Handle, m *wire.Message) error {
	return h.RespondError(m, notConvention, "protocol error") // BAD
}

func droppedResults(h *fakes.Handle, c *fakes.Conn, m *wire.Message) {
	h.RPC("kvs.get", 0, nil)           // BAD
	_, _ = h.RPC("kvs.get", 0, nil)    // BAD
	go h.PublishEvent("job.done", nil) // BAD
	c.Send(m)                          // BAD
	_ = c.Send(m)                      // BAD
}

func deferredDrop(h *fakes.Handle) {
	defer h.PublishEvent("job.done", nil) // BAD
}
