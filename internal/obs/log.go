package obs

// The log plane: structured, bounded, rank-local rings of log records
// with a leveled Logger front end. Every broker owns one LogRing; the
// broker and its comms modules log through a Logger instead of ad-hoc
// printf, so records carry rank, membership epoch, severity, subsystem,
// and (when available) the trace id of the message being handled.
// Records at warn or worse are batch-forwarded up the overlay tree on
// each heartbeat — the TBON aggregation behind flux dmesg — while debug
// chatter stays rank-local and dies with the ring.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Severity levels, syslog-numbered (lower is more severe) to match the
// log comms module's wire protocol: a record's Level is comparable
// across the log plane and the "log" service without translation.
const (
	LevelErr    = 3
	LevelWarn   = 4
	LevelNotice = 5
	LevelInfo   = 6
	LevelDebug  = 7
)

// LevelName returns the conventional short name of a severity.
func LevelName(level int) string {
	switch level {
	case LevelErr:
		return "err"
	case LevelWarn:
		return "warn"
	case LevelNotice:
		return "notice"
	case LevelInfo:
		return "info"
	case LevelDebug:
		return "debug"
	default:
		return fmt.Sprintf("level%d", level)
	}
}

// ParseLevel maps a level name (or decimal number) to its severity;
// ok is false for unknown names.
func ParseLevel(s string) (level int, ok bool) {
	switch s {
	case "err", "error":
		return LevelErr, true
	case "warn", "warning":
		return LevelWarn, true
	case "notice":
		return LevelNotice, true
	case "info":
		return LevelInfo, true
	case "debug":
		return LevelDebug, true
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if s == "" {
		return 0, false
	}
	return n, true
}

// Record is one structured log entry. Seq is assigned by the origin
// ring and is monotone per (rank, boot): together with BootNS it lets
// an aggregator dedupe records that arrive both by dmesg gather and by
// heartbeat forwarding, across broker restarts.
type Record struct {
	Seq    uint64 `json:"seq"`
	TimeNS int64  `json:"time_ns"`
	BootNS int64  `json:"boot_ns,omitempty"` // origin broker incarnation
	Rank   int    `json:"rank"`
	Epoch  uint32 `json:"epoch"` // membership epoch when logged
	Level  int    `json:"level"`
	Sub    string `json:"sub"` // subsystem: cmb, kvs, mon, session, ...
	Trace  uint64 `json:"trace,omitempty"`
	Msg    string `json:"msg"`
}

// DefaultLogRecords is the default ring capacity of a broker's log
// ring: deep enough that a flight-recorder dump captures the run-up to
// a fault, bounded so a log storm cannot take the process down.
const DefaultLogRecords = 2048

// LogFilter selects records out of a ring snapshot. The zero value
// selects everything.
type LogFilter struct {
	MaxLevel int    // keep records with Level <= MaxLevel; 0 keeps all
	SinceSeq uint64 // keep records with Seq > SinceSeq
	SinceNS  int64  // keep records with TimeNS > SinceNS
	Max      int    // keep only the newest Max records; 0 keeps all
}

func (f LogFilter) keeps(r Record) bool {
	if f.MaxLevel != 0 && r.Level > f.MaxLevel {
		return false
	}
	if r.Seq <= f.SinceSeq {
		return false
	}
	if r.TimeNS <= f.SinceNS {
		return false
	}
	return true
}

// LogRing is a bounded ring of records. Append overwrites the oldest
// record once full; a nil ring drops everything. All methods are safe
// for concurrent use.
type LogRing struct {
	mu      sync.Mutex
	recs    []Record
	next    int
	full    bool
	seq     uint64
	boot    int64
	dropped uint64
}

// NewLogRing creates a ring holding up to capacity records. bootNS
// stamps every record with the owning broker's incarnation time (unix
// nanos); capacity <= 0 yields a ring that records nothing.
func NewLogRing(capacity int, bootNS int64) *LogRing {
	r := &LogRing{boot: bootNS}
	if capacity > 0 {
		r.recs = make([]Record, capacity)
	}
	return r
}

// Append stores one record, assigning its Seq (and BootNS when unset —
// forwarded records keep their origin stamps). Returns the assigned or
// preserved sequence number.
func (r *LogRing) Append(rec Record) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	if rec.Seq == 0 {
		r.seq++
		rec.Seq = r.seq
	}
	if rec.BootNS == 0 {
		rec.BootNS = r.boot
	}
	if len(r.recs) == 0 {
		r.dropped++
		r.mu.Unlock()
		return rec.Seq
	}
	if r.full {
		r.dropped++
	}
	r.recs[r.next] = rec
	r.next++
	if r.next == len(r.recs) {
		r.next = 0
		r.full = true
	}
	seq := rec.Seq
	r.mu.Unlock()
	return seq
}

// Snapshot returns the buffered records in arrival order, filtered.
func (r *LogRing) Snapshot(f LogFilter) []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Record
	keep := func(rec Record) {
		if rec.TimeNS != 0 && f.keeps(rec) {
			out = append(out, rec)
		}
	}
	if r.full {
		for _, rec := range r.recs[r.next:] {
			keep(rec)
		}
	}
	for _, rec := range r.recs[:r.next] {
		keep(rec)
	}
	r.mu.Unlock()
	if f.Max > 0 && len(out) > f.Max {
		out = out[len(out)-f.Max:]
	}
	return out
}

// Len reports how many records are currently buffered.
func (r *LogRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.recs)
	}
	return r.next
}

// LastSeq returns the most recently assigned sequence number.
func (r *LogRing) LastSeq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped reports how many records were overwritten or discarded.
func (r *LogRing) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Logger is the leveled front end to a LogRing. The verbosity gate is a
// single atomic load and records below it cost nothing — no format, no
// allocation — which is what keeps logging off the broker's hot path.
// A nil Logger drops everything, so callers never need a nil check.
type Logger struct {
	ring      *LogRing
	rank      int
	verbosity atomic.Int32
	epochFn   func() uint32
	now       func() int64
	mirror    func(Record)
	records   *Counter
}

// NewLogger wraps ring for the given rank, recording everything up to
// LevelDebug by default.
func NewLogger(ring *LogRing, rank int) *Logger {
	l := &Logger{ring: ring, rank: rank, now: func() int64 { return time.Now().UnixNano() }}
	l.verbosity.Store(LevelDebug)
	return l
}

// SetVerbosity caps recording: records with Level > v are dropped at
// the gate.
func (l *Logger) SetVerbosity(v int) {
	if l != nil {
		l.verbosity.Store(int32(v))
	}
}

// SetEpochFn installs the membership-epoch source stamped onto records.
func (l *Logger) SetEpochFn(f func() uint32) {
	if l != nil {
		l.epochFn = f
	}
}

// SetNow overrides the wall-clock source (tests, simulated clocks).
func (l *Logger) SetNow(f func() int64) {
	if l != nil && f != nil {
		l.now = f
	}
}

// SetMirror tees every recorded record to f — how a broker keeps its
// Config.Log sink (test logs, stderr) fed from the same call sites.
func (l *Logger) SetMirror(f func(Record)) {
	if l != nil {
		l.mirror = f
	}
}

// SetCounter attaches a records-recorded obs counter.
func (l *Logger) SetCounter(c *Counter) {
	if l != nil {
		l.records = c
	}
}

// Ring exposes the backing ring (dmesg, flight recorder).
func (l *Logger) Ring() *LogRing {
	if l == nil {
		return nil
	}
	return l.ring
}

// Enabled reports whether a record at level would be kept. Callers with
// expensive-to-build messages should gate on it.
func (l *Logger) Enabled(level int) bool {
	return l != nil && int32(level) <= l.verbosity.Load()
}

// LogT records one entry at the given severity, tagged with a trace id
// (0 for none). Below-verbosity calls return before formatting.
func (l *Logger) LogT(level int, sub string, trace uint64, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	var epoch uint32
	if l.epochFn != nil {
		epoch = l.epochFn()
	}
	rec := Record{
		TimeNS: l.now(),
		Rank:   l.rank,
		Epoch:  epoch,
		Level:  level,
		Sub:    sub,
		Trace:  trace,
		Msg:    msg,
	}
	rec.Seq = l.ring.Append(rec)
	rec.BootNS = l.ring.bootNS()
	if l.records != nil {
		l.records.Inc()
	}
	if l.mirror != nil {
		l.mirror(rec)
	}
}

func (r *LogRing) bootNS() int64 {
	if r == nil {
		return 0
	}
	return r.boot
}

// Log records one entry at the given severity.
func (l *Logger) Log(level int, sub, format string, args ...any) {
	l.LogT(level, sub, 0, format, args...)
}

// Errorf records at LevelErr.
func (l *Logger) Errorf(sub, format string, args ...any) {
	l.LogT(LevelErr, sub, 0, format, args...)
}

// Warnf records at LevelWarn.
func (l *Logger) Warnf(sub, format string, args ...any) {
	l.LogT(LevelWarn, sub, 0, format, args...)
}

// Noticef records at LevelNotice.
func (l *Logger) Noticef(sub, format string, args ...any) {
	l.LogT(LevelNotice, sub, 0, format, args...)
}

// Infof records at LevelInfo.
func (l *Logger) Infof(sub, format string, args ...any) {
	l.LogT(LevelInfo, sub, 0, format, args...)
}

// Debugf records at LevelDebug.
func (l *Logger) Debugf(sub, format string, args ...any) {
	l.LogT(LevelDebug, sub, 0, format, args...)
}

// MergeRecords time-orders the concatenation of per-rank record slices
// (each already in arrival order) — the reduce step of a dmesg gather.
func MergeRecords(slices ...[]Record) []Record {
	total := 0
	for _, s := range slices {
		total += len(s)
	}
	out := make([]Record, 0, total)
	for _, s := range slices {
		out = append(out, s...)
	}
	sortRecords(out)
	return out
}

// sortRecords orders by wall time, breaking ties by rank then seq.
func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.TimeNS != b.TimeNS {
			return a.TimeNS < b.TimeNS
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Seq < b.Seq
	})
}

// DedupeRecords removes records sharing (rank, boot, seq) — duplicates
// arise when a record reaches the root both by heartbeat forwarding and
// by a dmesg gather. Input order is preserved for the survivors.
func DedupeRecords(recs []Record) []Record {
	type key struct {
		rank int
		boot int64
		seq  uint64
	}
	seen := make(map[key]bool, len(recs))
	out := recs[:0]
	for _, r := range recs {
		k := key{r.Rank, r.BootNS, r.Seq}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}
