package wire

import (
	"bufio"
	"encoding/hex"
	"os"
	"reflect"
	"strings"
	"testing"
)

// fixtureFrames loads the committed v3 golden frames (regenerate with
// testdata/gen.go after a deliberate codec change).
func fixtureFrames(t testing.TB) [][]byte {
	t.Helper()
	f, err := os.Open("testdata/frames_v3.hex")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var frames [][]byte
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b, err := hex.DecodeString(line)
		if err != nil {
			t.Fatalf("bad fixture line %q: %v", line, err)
		}
		frames = append(frames, b)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no fixture frames")
	}
	return frames
}

// TestWireCompatFixtures pins the v3 frame format: every committed
// frame decodes, re-encodes to the identical bytes, and decodes the
// same through the pooled path.
func TestWireCompatFixtures(t *testing.T) {
	for i, frame := range fixtureFrames(t) {
		m, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("frame %d: Unmarshal: %v", i, err)
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("frame %d: Marshal: %v", i, err)
		}
		if !reflect.DeepEqual(out, frame) {
			t.Fatalf("frame %d: re-encode mismatch\n got %x\nwant %x", i, out, frame)
		}
		buf := GetBuf(len(frame))
		copy(buf, frame)
		pm, err := UnmarshalPooled(buf)
		if err != nil {
			t.Fatalf("frame %d: UnmarshalPooled: %v", i, err)
		}
		if pm.Type != m.Type || pm.Topic != m.Topic || pm.Nodeid != m.Nodeid ||
			pm.Seq != m.Seq || pm.Errnum != m.Errnum || pm.Epoch != m.Epoch ||
			!reflect.DeepEqual(pm.Route, m.Route) ||
			string(pm.Payload) != string(m.Payload) ||
			pm.TraceID != m.TraceID || pm.Parent != m.Parent || pm.Hops != m.Hops {
			t.Fatalf("frame %d: pooled decode differs from plain decode", i)
		}
		pm.Handoff()
		pm.Release()
	}
}

// TestDetachSurvivesBufferReuse pins the aliasing contract: a pooled
// message's payload aliases the receive buffer until Detach copies it
// out, after which recycling and overwriting the buffer must not be
// visible through the message.
func TestDetachSurvivesBufferReuse(t *testing.T) {
	src := &Message{Type: Request, Topic: "a.b", Payload: []byte("payload-before")}
	frame, err := Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	buf := GetBuf(len(frame))
	copy(buf, frame)
	m, err := UnmarshalPooled(buf)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-Detach the payload aliases the receive buffer (zero-copy).
	buf[len(buf)-1] = 'X'
	if string(m.Payload) != "payload-beforX" {
		t.Fatalf("payload does not alias receive buffer: %q", m.Payload)
	}
	buf[len(buf)-1] = 'e'

	m.Detach()
	// Simulate the transport recycling and clobbering the buffer.
	for i := range buf {
		buf[i] = 0xAA
	}
	PutBuf(buf)
	if string(m.Payload) != "payload-before" {
		t.Fatalf("Detach()ed payload corrupted by buffer reuse: %q", m.Payload)
	}
	// After Detach the message is GC-owned; Release must be a no-op and
	// must not recycle anything.
	m.Release()
	if string(m.Payload) != "payload-before" {
		t.Fatalf("Release after Detach touched the message: %q", m.Payload)
	}
}

// TestReleaseRecyclesAndZeroes exercises the pooled lifecycle: an armed
// release wipes the message, and a released message obtained again from
// Get starts zeroed.
func TestReleaseRecyclesAndZeroes(t *testing.T) {
	frame, err := Marshal(&Message{Type: Request, Topic: "kvs.load",
		Route: []string{"h:1", "t:rank:0"}, Payload: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}
	buf := GetBuf(len(frame))
	copy(buf, frame)
	m, err := UnmarshalPooled(buf)
	if err != nil {
		t.Fatal(err)
	}
	m.Handoff()
	m.Release()
	if m.Topic != "" || m.Payload != nil || m.Route != nil || m.armed || m.buf != nil {
		t.Fatalf("Release left state behind: %+v", m)
	}
	// A second Release without re-arming is a no-op in normal builds
	// (and panics under -tags debuglock; see pool_debug_test.go).
	got := Get()
	if got.Topic != "" || got.Payload != nil || len(got.Route) != 0 || got.armed || got.buf != nil {
		t.Fatalf("Get returned dirty message: %+v", got)
	}
}

// TestUnreleasedMessagesAreSafe: messages that are never armed —
// events fanned out to many links, module-delivered requests — must be
// completely unaffected by Release.
func TestUnreleasedMessagesAreSafe(t *testing.T) {
	frame, err := Marshal(&Message{Type: Event, Topic: "hb", Payload: []byte("ev")})
	if err != nil {
		t.Fatal(err)
	}
	buf := GetBuf(len(frame))
	copy(buf, frame)
	m, err := UnmarshalPooled(buf)
	if err != nil {
		t.Fatal(err)
	}
	m.Release() // not armed: no-op
	if m.Topic != "hb" || string(m.Payload) != "ev" {
		t.Fatalf("Release on unarmed message mutated it: %+v", m)
	}
}

// FuzzUnmarshal fuzzes the decoder round trip: any input that decodes
// must re-encode and decode again to the same message, through both the
// plain and pooled paths.
func FuzzUnmarshal(f *testing.F) {
	for _, frame := range fixtureFrames(f) {
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{magic, version, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("re-encode of decodable input failed: %v", err)
		}
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip diverged:\n m=%+v\nm2=%+v", m, m2)
		}
		buf := GetBuf(len(data))
		copy(buf, data)
		pm, err := UnmarshalPooled(buf)
		if err != nil {
			t.Fatalf("pooled decode disagrees with plain decode: %v", err)
		}
		if pm.Topic != m.Topic || !reflect.DeepEqual(pm.Route, m.Route) ||
			string(pm.Payload) != string(m.Payload) {
			t.Fatal("pooled decode content differs from plain decode")
		}
		pm.Handoff()
		pm.Release()
	})
}
