package broker

import (
	"sync"
	"testing"

	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// BenchmarkRouteHop measures a request forwarded through a child broker
// to its parent (route push, upstream handoff, builtin dispatch at the
// root, and the response hop back) — the unit of work interior brokers
// repeat per message on the fan-in path.
func BenchmarkRouteHop(b *testing.B) {
	root, err := New(Config{Rank: 0, Size: 2})
	if err != nil {
		b.Fatal(err)
	}
	root.Start()
	defer root.Shutdown()

	child, err := New(Config{Rank: 1, Size: 2})
	if err != nil {
		b.Fatal(err)
	}
	child.Start()
	defer child.Shutdown()

	up, down := transport.Pipe("rank:1", "rank:0")
	child.AttachConn(LinkParentTree, up)
	root.AttachConn(LinkChildTree, down)

	h := child.NewHandle()
	defer h.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RPC("cmb.ping", wire.NodeidUpstream, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteHopContended is BenchmarkRouteHop with 8 concurrent
// flows (one handle each), the workload the sharded dispatch pipeline
// exists for: distinct flows hash to distinct shards, so their requests
// route in parallel instead of serializing on one loop.
func BenchmarkRouteHopContended(b *testing.B) {
	root, err := New(Config{Rank: 0, Size: 2})
	if err != nil {
		b.Fatal(err)
	}
	root.Start()
	defer root.Shutdown()

	child, err := New(Config{Rank: 1, Size: 2})
	if err != nil {
		b.Fatal(err)
	}
	child.Start()
	defer child.Shutdown()

	up, down := transport.Pipe("rank:1", "rank:0")
	child.AttachConn(LinkParentTree, up)
	root.AttachConn(LinkChildTree, down)

	const flows = 8
	handles := make([]*Handle, flows)
	for i := range handles {
		handles[i] = child.NewHandle()
		defer handles[i].Close()
	}
	per := (b.N + flows - 1) / flows
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, h := range handles {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := h.RPC("cmb.ping", wire.NodeidUpstream, nil); err != nil {
					b.Error(err)
					return
				}
			}
		}(h)
	}
	wg.Wait()
}
