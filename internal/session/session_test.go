package session

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/wire"
)

func newSession(t *testing.T, size, arity int, mods ...ModuleFactory) *Session {
	t.Helper()
	s, err := New(Options{Size: size, Arity: arity, Modules: mods})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestSessionWireupFig1 validates the comms-session wire-up of Fig. 1:
// every rank is reachable over the rank-addressed ring plane, and
// tree-routed pings reach the root with a hop count matching tree depth.
func TestSessionWireupFig1(t *testing.T) {
	s := newSession(t, 7, 2)
	h := s.Handle(3)
	defer h.Close()

	// Ring reachability: ping every concrete rank.
	for target := 0; target < 7; target++ {
		resp, err := h.RPC("cmb.ping", uint32(target), map[string]string{"pad": "p"})
		if err != nil {
			t.Fatalf("ping rank %d: %v", target, err)
		}
		var body struct {
			Rank int `json:"rank"`
		}
		if err := resp.UnpackJSON(&body); err != nil {
			t.Fatal(err)
		}
		if body.Rank != target {
			t.Fatalf("ping answered by rank %d, want %d", body.Rank, target)
		}
	}
}

func TestTreeInfoParents(t *testing.T) {
	s := newSession(t, 7, 2)
	for r := 0; r < 7; r++ {
		h := s.Handle(r)
		resp, err := h.RPC("cmb.info", uint32(r), nil)
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			Rank, Size, Arity, Parent int
		}
		resp.UnpackJSON(&info)
		if info.Parent != s.Tree().Parent(r) {
			t.Fatalf("rank %d parent %d, want %d", r, info.Parent, s.Tree().Parent(r))
		}
		h.Close()
	}
}

// TestEventTotalOrder verifies the event plane's session-wide total
// order: every rank observes the same event sequence.
func TestEventTotalOrder(t *testing.T) {
	const size, events = 15, 40
	s := newSession(t, size, 2)

	type rankEvents struct {
		rank int
		seqs []uint64
	}
	results := make(chan rankEvents, size)
	ready := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := s.Handle(r)
			defer h.Close()
			sub, err := h.Subscribe("torder")
			if err != nil {
				t.Error(err)
				return
			}
			<-ready
			var seqs []uint64
			for len(seqs) < events {
				select {
				case ev := <-sub.Chan():
					seqs = append(seqs, ev.Seq)
				case <-time.After(10 * time.Second):
					t.Errorf("rank %d: timed out after %d events", r, len(seqs))
					return
				}
			}
			results <- rankEvents{r, seqs}
		}(r)
	}

	// Publish from several different ranks concurrently.
	time.Sleep(10 * time.Millisecond) // let subscriptions register
	close(ready)
	var pwg sync.WaitGroup
	for p := 0; p < 4; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			h := s.Handle(p * 3)
			defer h.Close()
			for i := 0; i < events/4; i++ {
				if _, err := h.PublishEvent("torder.ev", map[string]int{"p": p, "i": i}); err != nil {
					t.Errorf("publish: %v", err)
				}
			}
		}(p)
	}
	pwg.Wait()
	wg.Wait()
	close(results)

	var ref []uint64
	for re := range results {
		if ref == nil {
			ref = re.seqs
			for i := 1; i < len(ref); i++ {
				if ref[i] <= ref[i-1] {
					t.Fatalf("rank %d saw non-increasing seqs", re.rank)
				}
			}
			continue
		}
		for i := range ref {
			if re.seqs[i] != ref[i] {
				t.Fatalf("rank %d event %d seq %d, other rank saw %d",
					re.rank, i, re.seqs[i], ref[i])
			}
		}
	}
}

// countModule counts <name>.add requests at each rank and aggregates the
// count upstream — a miniature of the tree reductions comms modules use.
type countModule struct {
	h *broker.Handle
}

func (m *countModule) Name() string            { return "count" }
func (m *countModule) Subscriptions() []string { return nil }
func (m *countModule) Init(h *broker.Handle) error {
	m.h = h
	return nil
}
func (m *countModule) Shutdown() {}

func (m *countModule) Recv(msg *wire.Message) {
	switch msg.Method() {
	case "where":
		m.h.Respond(msg, map[string]int{"rank": m.h.Rank()})
	default:
		m.h.RespondError(msg, broker.ErrnoNoSys, "unknown")
	}
}

// TestUpstreamFirstMatch: a request routed with NodeidAny is served by
// the first rank (walking upward) with the module loaded — the paper's
// "routed upstream in the tree to the first comms module that matches".
func TestUpstreamFirstMatch(t *testing.T) {
	// Load "count" only at ranks with depth <= 1 (0,1,2 in a 7-rank tree).
	factory := func(rank, size int) broker.Module {
		if rank <= 2 {
			return &countModule{}
		}
		return nil
	}
	s := newSession(t, 7, 2, factory)

	cases := []struct{ from, servedBy int }{
		{3, 1}, {4, 1}, {5, 2}, {6, 2}, {1, 1}, {0, 0},
	}
	for _, c := range cases {
		h := s.Handle(c.from)
		resp, err := h.RPC("count.where", wire.NodeidAny, nil)
		if err != nil {
			t.Fatalf("from %d: %v", c.from, err)
		}
		var body struct {
			Rank int `json:"rank"`
		}
		resp.UnpackJSON(&body)
		if body.Rank != c.servedBy {
			t.Errorf("request from %d served by %d, want %d", c.from, body.Rank, c.servedBy)
		}
		h.Close()
	}
}

// TestNodeidUpstreamSkipsLocal: NodeidUpstream must skip the local
// instance and match the parent's.
func TestNodeidUpstreamSkipsLocal(t *testing.T) {
	all := func(rank, size int) broker.Module { return &countModule{} }
	s := newSession(t, 7, 2, all)
	h := s.Handle(5)
	defer h.Close()
	resp, err := h.RPC("count.where", wire.NodeidUpstream, nil)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Rank int `json:"rank"`
	}
	resp.UnpackJSON(&body)
	if body.Rank != 2 {
		t.Fatalf("upstream request from 5 served by %d, want 2 (parent)", body.Rank)
	}
}

func TestPublishFromLeafReachesRoot(t *testing.T) {
	s := newSession(t, 7, 2)
	rootH := s.Handle(0)
	defer rootH.Close()
	sub, err := rootH.Subscribe("leafev")
	if err != nil {
		t.Fatal(err)
	}
	leafH := s.Handle(6)
	defer leafH.Close()
	seq, err := leafH.PublishEvent("leafev.hello", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Chan():
		if ev.Seq != seq {
			t.Fatalf("root saw seq %d, publisher got %d", ev.Seq, seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event not delivered at root")
	}
}

// TestSelfHealingReparent kills an interior broker and verifies its
// children re-attach to the grandparent and continue to receive events
// with no gaps.
func TestSelfHealingReparent(t *testing.T) {
	s := newSession(t, 7, 2)

	h3 := s.Handle(3) // child of rank 1
	defer h3.Close()
	sub, err := h3.Subscribe("heal")
	if err != nil {
		t.Fatal(err)
	}
	h0 := s.Handle(0)
	defer h0.Close()

	if _, err := h0.PublishEvent("heal.before", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Chan():
	case <-time.After(5 * time.Second):
		t.Fatal("pre-failure event not delivered")
	}

	s.Kill(1) // interior node: parent of ranks 3 and 4

	// Wait for re-parenting to complete.
	deadline := time.After(10 * time.Second)
	for s.Broker(3).ParentRank() != 0 {
		select {
		case <-deadline:
			t.Fatalf("rank 3 never re-parented (parent=%d)", s.Broker(3).ParentRank())
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Events published after the failure must still arrive, in order.
	for i := 0; i < 5; i++ {
		if _, err := h0.PublishEvent("heal.after", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	var last uint64
	for i := 0; i < 5; i++ {
		select {
		case ev := <-sub.Chan():
			if ev.Topic != "heal.after" {
				t.Fatalf("unexpected topic %s", ev.Topic)
			}
			if ev.Seq <= last {
				t.Fatalf("event order violated after failover")
			}
			last = ev.Seq
		case <-time.After(10 * time.Second):
			t.Fatalf("post-failover event %d not delivered", i)
		}
	}

	// RPC path through the new parent also works.
	resp, err := h3.RPC("cmb.ping", wire.NodeidAny, nil)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Rank int `json:"rank"`
	}
	resp.UnpackJSON(&body)
	if st := s.Broker(3).Stats(); st.Reparents != 1 {
		t.Fatalf("reparents = %d, want 1", st.Reparents)
	}
}

func TestReparentCascade(t *testing.T) {
	// Kill rank 1 then rank 2: children of both must land on rank 0.
	s := newSession(t, 15, 2)
	s.Kill(1)
	s.Kill(2)
	deadline := time.After(10 * time.Second)
	for _, r := range []int{3, 4, 5, 6} {
		for s.Broker(r).ParentRank() != 0 {
			select {
			case <-deadline:
				t.Fatalf("rank %d parent = %d, want 0", r, s.Broker(r).ParentRank())
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
	// Descendants deeper in the tree keep their (live) parents.
	if got := s.Broker(7).ParentRank(); got != 3 {
		t.Fatalf("rank 7 parent = %d, want 3", got)
	}
	h := s.Handle(7)
	defer h.Close()
	if _, err := h.RPC("cmb.ping", wire.NodeidAny, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKillIdempotentAndAlive(t *testing.T) {
	s := newSession(t, 3, 2)
	if !s.Alive(1) {
		t.Fatal("fresh broker not alive")
	}
	s.Kill(1)
	s.Kill(1)
	if s.Alive(1) {
		t.Fatal("killed broker still alive")
	}
}

func TestLargeSessionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large session in -short mode")
	}
	const size = 256
	s := newSession(t, size, 2)
	h := s.Handle(size - 1)
	defer h.Close()
	if _, err := h.RPC("cmb.ping", wire.NodeidAny, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := h.Subscribe("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.PublishEvent("smoke.e", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Chan():
	case <-time.After(10 * time.Second):
		t.Fatal("event not delivered at deep leaf")
	}
}

func TestSessionArityValidation(t *testing.T) {
	if _, err := New(Options{Size: 0}); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestRingFullCircle(t *testing.T) {
	s := newSession(t, 5, 2)
	// From rank 3, ping rank 2: requires wrapping 3->4->0->1->2.
	h := s.Handle(3)
	defer h.Close()
	resp, err := h.RPC("cmb.ping", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Rank int `json:"rank"`
		Hops int `json:"hops"`
	}
	resp.UnpackJSON(&body)
	if body.Rank != 2 {
		t.Fatalf("served by %d, want 2", body.Rank)
	}
	// Route stack: 1 entry for the origin handle + 1 per ring arrival.
	if body.Hops != 5 {
		t.Fatalf("hops = %d, want 5 (handle + 4 ring hops)", body.Hops)
	}
}

// TestEventResyncAfterReparent verifies no event is lost or duplicated
// across a failover even when events are published while the orphan is
// detached: the resync protocol replays the gap from the new parent's
// history, and sequence-number dedup drops any overlap.
func TestEventResyncAfterReparent(t *testing.T) {
	s := newSession(t, 7, 2)
	h3 := s.Handle(3)
	defer h3.Close()
	sub, err := h3.Subscribe("rs")
	if err != nil {
		t.Fatal(err)
	}
	h0 := s.Handle(0)
	defer h0.Close()

	// A burst of events race the failover: kill rank 1 (parent of 3)
	// while publishing.
	const events = 30
	go func() {
		for i := 0; i < events; i++ {
			h0.PublishEvent("rs.burst", map[string]int{"i": i})
		}
	}()
	time.Sleep(time.Millisecond)
	s.Kill(1)

	var got []int
	deadline := time.After(20 * time.Second)
	for len(got) < events {
		select {
		case ev := <-sub.Chan():
			var body struct {
				I int `json:"i"`
			}
			if err := ev.UnpackJSON(&body); err != nil {
				t.Fatal(err)
			}
			got = append(got, body.I)
		case <-deadline:
			t.Fatalf("only %d/%d events after failover: %v", len(got), events, got)
		}
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event stream corrupted at %d: %v", i, got)
		}
	}
	if dups := s.Broker(3).Stats().EventsDuplicate; dups > 0 {
		t.Logf("resync dropped %d duplicate events (expected behaviour)", dups)
	}
}

func TestCodecSessionWorks(t *testing.T) {
	s, err := New(Options{Size: 7, Codec: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handle(6)
	defer h.Close()
	resp, err := h.RPC("cmb.ping", wire.NodeidAny, map[string]string{"pad": "codec"})
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Pad string `json:"pad"`
	}
	resp.UnpackJSON(&body)
	if body.Pad != "codec" {
		t.Fatalf("pad %q through codec pipes", body.Pad)
	}
}

func TestManyConcurrentRPCs(t *testing.T) {
	s := newSession(t, 7, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 7*50)
	for r := 0; r < 7; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := s.Handle(r)
			defer h.Close()
			for i := 0; i < 50; i++ {
				if _, err := h.RPC("cmb.ping", wire.NodeidAny, map[string]int{"i": i}); err != nil {
					errs <- fmt.Errorf("rank %d rpc %d: %w", r, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
