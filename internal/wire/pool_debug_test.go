//go:build debuglock

package wire

import "testing"

// TestDoubleReleasePanics: under the debuglock build, releasing a
// message twice without re-arming must panic instead of silently
// no-opping, mirroring the lock-order checker's policy for mutexes.
func TestDoubleReleasePanics(t *testing.T) {
	m := Get()
	m.Topic = "x"
	m.Handoff()
	m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic under debuglock")
		}
	}()
	m.Release()
}
