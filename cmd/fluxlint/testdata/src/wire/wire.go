// Package wire is a miniature of the real module's wire package: just
// enough named constants and message shapes for the fixture packages to
// exercise every fluxlint rule. Detection keys on the package name
// "wire" and the type names Message/Type, so the passes treat this
// fixture exactly like the real thing.
package wire

// Type is the wire message type.
type Type uint8

const (
	Request Type = iota
	Response
	Event
	Control
)

// Service and control-plane topic constants.
const (
	ServiceCMB  = "cmb"
	TopicPing   = "cmb.ping"
	TopicResync = "cmb.resync"
	TopicStats  = "cmb.stats"
)

// Errno constants (the protocol error table).
const (
	ErrnoInval    int32 = 22
	ErrnoNoSys    int32 = 38
	ErrnoProto    int32 = 71
	ErrnoHostDown int32 = 112
	ErrnoTimedOut int32 = 110
	ErrnoStale    int32 = 116
)

// OpErrnos declares, per request operation, the errnos its handler may
// emit — the table the errno-completeness pass checks dispatch switches
// against. The echo service exists only for the fixture corpus.
var OpErrnos = map[string][]int32{
	TopicPing:   {ErrnoInval},
	TopicStats:  {},
	"echo.run":  {ErrnoInval, ErrnoProto},
	"echo.stop": {ErrnoInval},
}

// Message is the unit of wire traffic. Payload may alias a pooled
// receive buffer on decoded messages; Detach copies it out.
type Message struct {
	Type    Type
	Topic   string
	Seq     uint64
	Epoch   uint32
	Data    []byte
	Payload []byte

	armed bool
}

// Method returns the method part of a dotted service.method topic.
func (m *Message) Method() string {
	for i := len(m.Topic) - 1; i >= 0; i-- {
		if m.Topic[i] == '.' {
			return m.Topic[i+1:]
		}
	}
	return m.Topic
}

// Handoff arms m: ownership moves to whichever component m is handed
// to next, and the sender must not touch it afterwards.
func (m *Message) Handoff() { m.armed = true }

// Release returns m to the pool (a no-op unless armed). The caller must
// not use m afterwards.
func (m *Message) Release() { *m = Message{} }

// Detach copies Payload out of the receive buffer so it survives
// buffer reuse, and returns m for chaining.
func (m *Message) Detach() *Message {
	m.Payload = append([]byte(nil), m.Payload...)
	return m
}

// Frame is a miniature of the real refcounted encode-once frame: one
// encoded message shared by every fan-out target, each reference
// obliging exactly one Release. Detection keys on the package name
// "wire" and the type name Frame.
type Frame struct {
	refs int32
	buf  []byte
	msg  *Message
}

// NewFrame encodes m once; the returned frame holds one reference owned
// by the caller.
func NewFrame(m *Message) (*Frame, error) {
	return &Frame{refs: 1, buf: m.Data, msg: m}, nil
}

// Retain mints an additional reference and returns f for chaining.
func (f *Frame) Retain() *Frame {
	f.refs++
	return f
}

// Release drops one reference; the caller must not use f afterwards.
func (f *Frame) Release() { f.refs-- }

// Bytes returns the shared encoded frame.
func (f *Frame) Bytes() []byte { return f.buf }

// Msg returns the decoded message the frame was encoded from.
func (f *Frame) Msg() *Message { return f.msg }

// RPCError is a decoded error response.
type RPCError struct {
	Topic  string
	Errnum int32
	Msg    string
}

func (e *RPCError) Error() string { return e.Msg }

// NewErrorResponse builds an error response for m.
func NewErrorResponse(m *Message, errnum int32, msg string) *Message {
	return &Message{Type: Response, Topic: m.Topic, Seq: m.Seq, Data: []byte(msg)}
}
