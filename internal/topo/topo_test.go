package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(0, 2); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewTree(4, 0); err == nil {
		t.Error("arity 0 accepted")
	}
	if _, err := NewTree(1, 1); err != nil {
		t.Errorf("minimal tree rejected: %v", err)
	}
}

func TestBinaryTreeShape(t *testing.T) {
	tr, _ := NewTree(7, 2)
	cases := []struct {
		rank, parent int
		children     []int
	}{
		{0, -1, []int{1, 2}},
		{1, 0, []int{3, 4}},
		{2, 0, []int{5, 6}},
		{3, 1, nil},
		{6, 2, nil},
	}
	for _, c := range cases {
		if got := tr.Parent(c.rank); got != c.parent {
			t.Errorf("Parent(%d) = %d, want %d", c.rank, got, c.parent)
		}
		kids := tr.Children(c.rank)
		if len(kids) != len(c.children) {
			t.Errorf("Children(%d) = %v, want %v", c.rank, kids, c.children)
			continue
		}
		for i := range kids {
			if kids[i] != c.children[i] {
				t.Errorf("Children(%d) = %v, want %v", c.rank, kids, c.children)
			}
		}
	}
}

func TestPartialLastLevel(t *testing.T) {
	tr, _ := NewTree(6, 2) // rank 2 has only child 5
	kids := tr.Children(2)
	if len(kids) != 1 || kids[0] != 5 {
		t.Fatalf("Children(2) = %v, want [5]", kids)
	}
}

func TestUnaryTreeIsChain(t *testing.T) {
	tr, _ := NewTree(5, 1)
	for r := 1; r < 5; r++ {
		if tr.Parent(r) != r-1 {
			t.Fatalf("Parent(%d) = %d in chain", r, tr.Parent(r))
		}
	}
	if tr.Height() != 4 {
		t.Fatalf("Height = %d, want 4", tr.Height())
	}
}

func TestDepthAndHeight(t *testing.T) {
	tr, _ := NewTree(15, 2) // perfect binary tree of height 3
	if tr.Depth(0) != 0 || tr.Depth(1) != 1 || tr.Depth(7) != 3 || tr.Depth(14) != 3 {
		t.Fatalf("depths: %d %d %d %d", tr.Depth(0), tr.Depth(1), tr.Depth(7), tr.Depth(14))
	}
	if tr.Height() != 3 {
		t.Fatalf("Height = %d, want 3", tr.Height())
	}
}

func TestIsLeaf(t *testing.T) {
	tr, _ := NewTree(7, 2)
	for r := 0; r < 7; r++ {
		want := r >= 3
		if got := tr.IsLeaf(r); got != want {
			t.Errorf("IsLeaf(%d) = %v, want %v", r, got, want)
		}
	}
}

func TestInSubtreeAndChildToward(t *testing.T) {
	tr, _ := NewTree(15, 2)
	if !tr.InSubtree(1, 9) { // 9 -> 4 -> 1
		t.Error("9 should be in subtree of 1")
	}
	if tr.InSubtree(2, 9) {
		t.Error("9 should not be in subtree of 2")
	}
	if !tr.InSubtree(3, 3) {
		t.Error("rank should be in its own subtree")
	}
	if got := tr.ChildToward(1, 9); got != 4 {
		t.Errorf("ChildToward(1,9) = %d, want 4", got)
	}
	if got := tr.ChildToward(0, 14); got != 2 {
		t.Errorf("ChildToward(0,14) = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("ChildToward with target outside subtree did not panic")
		}
	}()
	tr.ChildToward(2, 3)
}

func TestPathToRoot(t *testing.T) {
	tr, _ := NewTree(15, 2)
	path := tr.PathToRoot(11) // 11 -> 5 -> 2 -> 0
	want := []int{11, 5, 2, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

// Property: parent/children are mutually consistent for arbitrary shapes.
func TestTreeInvariantsQuick(t *testing.T) {
	f := func(sizeRaw, arityRaw uint8) bool {
		size := int(sizeRaw%200) + 1
		arity := int(arityRaw%8) + 1
		tr, err := NewTree(size, arity)
		if err != nil {
			return false
		}
		seen := 0
		for r := 0; r < size; r++ {
			for _, c := range tr.Children(r) {
				if tr.Parent(c) != r {
					return false
				}
				if tr.Depth(c) != tr.Depth(r)+1 {
					return false
				}
				seen++
			}
			if p := tr.Parent(r); p >= 0 {
				found := false
				for _, c := range tr.Children(p) {
					if c == r {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		// Every rank except the root is someone's child exactly once.
		return seen == size-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRing(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("ring size 0 accepted")
	}
	r, _ := NewRing(5)
	if r.Next(4) != 0 || r.Prev(0) != 4 {
		t.Fatalf("wraparound: Next(4)=%d Prev(0)=%d", r.Next(4), r.Prev(0))
	}
	if r.Distance(1, 4) != 3 || r.Distance(4, 1) != 2 || r.Distance(2, 2) != 0 {
		t.Fatalf("distances wrong: %d %d %d",
			r.Distance(1, 4), r.Distance(4, 1), r.Distance(2, 2))
	}
}

func TestRingWalkCoversAllRanks(t *testing.T) {
	r, _ := NewRing(8)
	seen := map[int]bool{}
	rank := 3
	for i := 0; i < 8; i++ {
		seen[rank] = true
		rank = r.Next(rank)
	}
	if len(seen) != 8 || rank != 3 {
		t.Fatalf("ring walk did not cover ring: %v end=%d", seen, rank)
	}
}

// TestTreePropertyCrossCheck is the randomized consistency suite for
// the pure tree arithmetic: over arbitrary sizes and arities it
// cross-checks the O(1) closed-form Depth against a parent-chain walk,
// Height against the maximum walked depth, and InSubtree/ChildToward
// against their from-first-principles definitions.
func TestTreePropertyCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	walkDepth := func(tr Tree, r int) int {
		d := 0
		for r > 0 {
			r = tr.Parent(r)
			d++
		}
		return d
	}
	for iter := 0; iter < 200; iter++ {
		size := rng.Intn(3000) + 1
		arity := rng.Intn(9) + 1
		tr, err := NewTree(size, arity)
		if err != nil {
			t.Fatalf("NewTree(%d,%d): %v", size, arity, err)
		}

		ranks := []int{0, size - 1, size / 2}
		for j := 0; j < 20; j++ {
			ranks = append(ranks, rng.Intn(size))
		}
		for _, r := range ranks {
			if got, want := tr.Depth(r), walkDepth(tr, r); got != want {
				t.Fatalf("size=%d arity=%d: Depth(%d) = %d, walk says %d", size, arity, r, got, want)
			}
			if got, want := tr.IsLeaf(r), len(tr.Children(r)) == 0; got != want {
				t.Fatalf("size=%d arity=%d: IsLeaf(%d) = %v, Children = %v", size, arity, r, got, tr.Children(r))
			}
			for _, c := range tr.Children(r) {
				if tr.Parent(c) != r {
					t.Fatalf("size=%d arity=%d: Parent(Children(%d)) mismatch at %d", size, arity, r, c)
				}
			}
		}
		// The last BFS rank is always on the deepest level.
		if got, want := tr.Height(), walkDepth(tr, size-1); got != want {
			t.Fatalf("size=%d arity=%d: Height = %d, walk says %d", size, arity, got, want)
		}

		for j := 0; j < 50; j++ {
			a, b := rng.Intn(size), rng.Intn(size)
			want := false
			for x := b; x >= 0; x = tr.Parent(x) {
				if x == a {
					want = true
					break
				}
			}
			if got := tr.InSubtree(a, b); got != want {
				t.Fatalf("size=%d arity=%d: InSubtree(%d,%d) = %v, walk says %v", size, arity, a, b, got, want)
			}
			if want && a != b {
				c := tr.ChildToward(a, b)
				if tr.Parent(c) != a || !tr.InSubtree(c, b) {
					t.Fatalf("size=%d arity=%d: ChildToward(%d,%d) = %d inconsistent", size, arity, a, b, c)
				}
			}
		}
	}
}

// TestViewMembership covers the dynamic-membership view: tombstones,
// growth at the high end, live-parent and live-ring traversal.
func TestViewMembership(t *testing.T) {
	tr, _ := NewTree(7, 2)
	v := NewView(tr)
	if v.LiveCount() != 7 || !v.Live(3) {
		t.Fatalf("fresh view: count=%d live(3)=%v", v.LiveCount(), v.Live(3))
	}
	if !v.Leave(1) || v.Leave(1) {
		t.Fatal("Leave(1) idempotence broken")
	}
	if v.Live(1) || !v.Left(1) || v.LiveCount() != 6 {
		t.Fatalf("tombstone not applied: live=%v left=%v count=%d", v.Live(1), v.Left(1), v.LiveCount())
	}
	// 3's parent 1 is gone; nearest live ancestor is the root.
	if p := v.LiveParent(3); p != 0 {
		t.Fatalf("LiveParent(3) = %d, want 0", p)
	}
	if first := v.Grow(2); first != 7 || v.Size() != 9 || !v.Live(8) {
		t.Fatalf("Grow: first=%d size=%d live(8)=%v", first, v.Size(), v.Live(8))
	}
	// Ring traversal skips the tombstone in both directions.
	if n := v.NextLive(0); n != 2 {
		t.Fatalf("NextLive(0) = %d, want 2", n)
	}
	if p := v.PrevLive(2); p != 0 {
		t.Fatalf("PrevLive(2) = %d, want 0", p)
	}
	if n := v.NextLive(8); n != 0 {
		t.Fatalf("NextLive(8) = %d, want 0 (wraparound)", n)
	}
	if got := v.Tombstones(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Tombstones = %v, want [1]", got)
	}
	if got := v.LiveRanks(); len(got) != 8 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("LiveRanks = %v", got)
	}
	// A single-survivor ring has no live neighbours.
	solo := NewView(Tree{Size: 2, Arity: 2})
	solo.Leave(1)
	if solo.NextLive(0) != -1 || solo.PrevLive(0) != -1 {
		t.Fatal("solo ring should have no live neighbour")
	}
}
