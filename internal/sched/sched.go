// Package sched implements Flux's scheduling layer: pluggable policies
// (FCFS and EASY backfill), a discrete-event simulator for evaluating
// them, and hierarchical multi-level scheduling in which a parent
// scheduler leases resource subsets to concurrently running child
// schedulers — the scheduler parallelism the paper argues the job
// hierarchy model enables. A centralized single-level configuration
// serves as the traditional-paradigm baseline for ablation.
package sched

import (
	"fmt"
	"sort"
	"time"

	"fluxgo/internal/resource"
)

// State is a job's scheduling state.
type State int

// Job states.
const (
	StatePending State = iota
	StateRunning
	StateComplete
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateComplete:
		return "complete"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is the scheduler's view of one job. Times are virtual offsets from
// simulation start.
type Job struct {
	ID       string
	Req      resource.Request
	Duration time.Duration
	Submit   time.Duration

	Start time.Duration
	End   time.Duration
	State State
}

// Wait returns the job's queueing delay (valid once started).
func (j *Job) Wait() time.Duration { return j.Start - j.Submit }

// Policy decides which queued jobs to start now.
type Policy interface {
	Name() string
	// Pick returns the jobs to start, in order. queue is sorted by
	// submit time and contains only pending jobs whose submit time has
	// arrived. running lists currently running jobs (for reservations).
	Pick(queue, running []*Job, pool *resource.Pool, now time.Duration) []*Job
}

// FCFS is strict first-come-first-served: jobs start in arrival order
// and the queue head blocks everything behind it.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Policy.
func (FCFS) Pick(queue, running []*Job, pool *resource.Pool, now time.Duration) []*Job {
	var picks []*Job
	for _, j := range queue {
		if !pool.CanAllocate(j.Req) {
			break // strict: the head blocks
		}
		// Tentatively hold the nodes so later picks see them consumed.
		if _, err := pool.Allocate("tentative-"+j.ID, j.Req); err != nil {
			break
		}
		picks = append(picks, j)
	}
	for _, j := range picks {
		pool.Release("tentative-" + j.ID)
	}
	return picks
}

// EASY is FCFS with EASY backfilling: when the queue head cannot start,
// a reservation is computed for it and later jobs may jump ahead if they
// do not delay that reservation.
type EASY struct{}

// Name implements Policy.
func (EASY) Name() string { return "easy" }

// Pick implements Policy.
func (EASY) Pick(queue, running []*Job, pool *resource.Pool, now time.Duration) []*Job {
	var picks []*Job
	var holds []string
	hold := func(j *Job) bool {
		id := "tentative-" + j.ID
		if _, err := pool.Allocate(id, j.Req); err != nil {
			return false
		}
		holds = append(holds, id)
		picks = append(picks, j)
		return true
	}
	defer func() {
		for _, id := range holds {
			pool.Release(id)
		}
	}()

	i := 0
	for ; i < len(queue); i++ {
		if !hold(queue[i]) {
			break
		}
	}
	if i >= len(queue) {
		return picks
	}
	head := queue[i]

	// Compute the head's reservation: walk running jobs — including those
	// started in this very round — by end time until enough nodes would
	// be free. freeNow counts nodes not in use by running jobs or
	// tentative holds.
	freeNow := pool.FreeNodes()
	needed := head.Req.Nodes - freeNow
	byEnd := append([]*Job(nil), running...)
	for _, j := range picks {
		byEnd = append(byEnd, &Job{Req: j.Req, End: now + j.Duration})
	}
	sort.Slice(byEnd, func(a, b int) bool { return byEnd[a].End < byEnd[b].End })
	shadow := time.Duration(-1)
	released := 0
	for _, r := range byEnd {
		released += r.Req.Nodes
		if released >= needed {
			shadow = r.End
			break
		}
	}
	if shadow < 0 {
		// Even draining everything never frees enough matching nodes
		// (constraints); nothing sensible to reserve, so no backfill
		// beyond what already started.
		return picks
	}
	// extraNodes: nodes beyond the head's need that are free during the
	// shadow window.
	extra := freeNow + released - head.Req.Nodes

	// Backfill: later jobs may start now if they finish before the shadow
	// time, or if they fit in the extra nodes.
	for _, j := range queue[i+1:] {
		fitsWindow := now+j.Duration <= shadow
		fitsExtra := j.Req.Nodes <= extra
		if !fitsWindow && !fitsExtra {
			continue
		}
		if hold(j) {
			if !fitsWindow {
				extra -= j.Req.Nodes
			}
		}
	}
	return picks
}

// Metrics summarizes one simulated schedule.
type Metrics struct {
	Policy      string
	Completed   int
	Makespan    time.Duration
	AvgWait     time.Duration
	MaxWait     time.Duration
	Utilization float64 // node-seconds used / (nodes × makespan)
	Decisions   int     // policy invocations (scheduler work)
}

// Simulate runs jobs through pool under policy in virtual time and
// returns schedule metrics. Jobs are mutated in place (Start/End/State).
// It is the fixed-membership special case of SimulateElastic.
func Simulate(pool *resource.Pool, policy Policy, jobs []*Job) (Metrics, error) {
	return SimulateElastic(pool, policy, jobs, nil)
}
