package model

import (
	"math"
	"testing"
	"time"
)

func TestConsumerLatency(t *testing.T) {
	T := 10 * time.Millisecond
	if got := ConsumerLatency(1, T); got != 0 {
		t.Fatalf("C=1 latency %v", got)
	}
	if got := ConsumerLatency(2, T); got != T {
		t.Fatalf("C=2 latency %v, want %v", got, T)
	}
	// Every doubling adds exactly T(G).
	l4 := ConsumerLatency(4, T)
	l8 := ConsumerLatency(8, T)
	if l8-l4 != T {
		t.Fatalf("doubling step %v, want %v", l8-l4, T)
	}
}

func TestFitReplicateTimeExact(t *testing.T) {
	T := 7 * time.Millisecond
	consumers := []int{2, 4, 8, 16, 32}
	lat := make([]time.Duration, len(consumers))
	for i, c := range consumers {
		lat[i] = ConsumerLatency(c, T)
	}
	got, err := FitReplicateTime(consumers, lat)
	if err != nil {
		t.Fatal(err)
	}
	if d := got - T; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("fit %v, want %v", got, T)
	}
	if r2 := RSquared(consumers, lat, got); r2 < 0.999 {
		t.Fatalf("R² = %f on exact data", r2)
	}
}

func TestFitReplicateTimeNoisy(t *testing.T) {
	T := 5 * time.Millisecond
	consumers := []int{2, 4, 8, 16}
	lat := make([]time.Duration, len(consumers))
	for i, c := range consumers {
		noise := time.Duration((i%2)*2-1) * 200 * time.Microsecond
		lat[i] = ConsumerLatency(c, T) + noise
	}
	got, err := FitReplicateTime(consumers, lat)
	if err != nil {
		t.Fatal(err)
	}
	if got < 4*time.Millisecond || got > 6*time.Millisecond {
		t.Fatalf("noisy fit %v far from %v", got, T)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitReplicateTime(nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := FitReplicateTime([]int{2}, []time.Duration{1, 2}); err == nil {
		t.Fatal("mismatched series accepted")
	}
	if _, err := FitReplicateTime([]int{1}, []time.Duration{0}); err == nil {
		t.Fatal("series with no usable points accepted")
	}
}

func TestGrowthRatio(t *testing.T) {
	// Constant G (g=1): ratio of k/(k-1) levels -> approaches 1, the
	// logarithmic regime.
	r := GrowthRatio(10, 1)
	if math.Abs(r-10.0/9.0) > 1e-9 {
		t.Fatalf("g=1 ratio %f", r)
	}
	// G doubling with scale (g=2): ratio approaches 2 — latency doubles
	// per doubling, the paper's linear-growth prediction.
	r = GrowthRatio(20, 2)
	if math.Abs(r-2.0) > 0.01 {
		t.Fatalf("g=2 ratio %f, want ~2", r)
	}
	if GrowthRatio(0, 2) != 1 {
		t.Fatal("zero doublings ratio != 1")
	}
	if GrowthRatio(1, 2) != 2 {
		t.Fatalf("first doubling ratio %f", GrowthRatio(1, 2))
	}
}

func TestRSquaredDegenerate(t *testing.T) {
	if RSquared(nil, nil, time.Millisecond) != 0 {
		t.Fatal("empty R² != 0")
	}
	// Identical observations: ssTot = 0 -> defined as 1.
	if RSquared([]int{2, 2}, []time.Duration{5, 5}, 5) != 1 {
		t.Fatal("constant-series R² != 1")
	}
}
