package main

// wire-hygiene: wire-protocol identifiers must round-trip through the
// declared constants of the wire package, not through scattered
// literals that drift apart silently.
//
//   - String literals spelling the CMB service name ("cmb") or a
//     cmb.* control topic are flagged outside the wire package itself:
//     use wire.ServiceCMB / wire.Topic*. Prose mentioning "cmb: ..."
//     in error text does not match the topic shape and passes.
//   - Integer literals used as a wire message type — in the Type field
//     of a wire.Message composite literal or a wire.Type(n) conversion
//     — are flagged: use wire.Request/Response/Event/Control.
//   - A message payload escaping its handler is flagged: in a function
//     taking a *wire.Message parameter, assigning that parameter's
//     .Payload into a struct field or map entry, or appending it (as an
//     element) to a slice, retains memory that may alias a pooled
//     receive buffer — recycled the moment the message is released. The
//     handler must call Detach() on the message (anywhere in the same
//     function) to sever the alias; copying the bytes out with
//     append(dst, m.Payload...) is also fine and not flagged.
//
// Detection keys on the package *name* "wire" and type names Message /
// Type, so the pass works identically against the real module and the
// test fixture corpus.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
)

const wireHygieneName = "wire-hygiene"

var wireHygienePass = Pass{
	Name: wireHygieneName,
	Doc:  "flag raw wire topic strings and message-type integers",
	Run:  runWireHygiene,
}

// cmbTopicShape matches the service name itself or a dotted cmb topic.
var cmbTopicShape = regexp.MustCompile(`^cmb(\.[a-z][a-z0-9_]*)+$`)

func runWireHygiene(l *Loader, p *Package) []Finding {
	if p.Types.Name() == "wire" {
		return nil // the wire package is where the constants live
	}
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pass: wireHygieneName,
			Pos:  l.Fset.Position(pos),
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		// Struct tags are string literals too; exclude them.
		tags := map[*ast.BasicLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.Field); ok && fd.Tag != nil {
				tags[fd.Tag] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind != token.STRING || tags[n] {
					return true
				}
				s, err := strconv.Unquote(n.Value)
				if err != nil {
					return true
				}
				//fluxlint:ignore wire-hygiene the pass must spell the service name to detect it
				if s == "cmb" || cmbTopicShape.MatchString(s) {
					report(n.Pos(), "raw wire string %q; use the wire package constant", s)
				}
			case *ast.CompositeLit:
				if named, ok := derefNamed(p.Info.TypeOf(n)); ok &&
					named.Obj().Name() == "Message" && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Name() == "wire" {
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Type" {
							if bl, ok := kv.Value.(*ast.BasicLit); ok && bl.Kind == token.INT {
								report(bl.Pos(), "raw message type %s; use a wire.Type constant", bl.Value)
							}
						}
					}
				}
			case *ast.CallExpr:
				// wire.Type(3)-style conversion of a literal.
				if len(n.Args) != 1 {
					return true
				}
				bl, ok := n.Args[0].(*ast.BasicLit)
				if !ok || bl.Kind != token.INT {
					return true
				}
				if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
					if named, ok := derefNamed(tv.Type); ok &&
						named.Obj().Name() == "Type" && named.Obj().Pkg() != nil &&
						named.Obj().Pkg().Name() == "wire" {
						report(bl.Pos(), "raw message type %s; use a wire.Type constant", bl.Value)
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, checkPayloadRetention(l, p, n.Type.Params, n.Body)...)
				}
			case *ast.FuncLit:
				out = append(out, checkPayloadRetention(l, p, n.Type.Params, n.Body)...)
			}
			return true
		})
	}
	return out
}

// isWireMessagePtr reports whether t is *wire.Message (matched by
// package and type name, like the rest of the pass).
func isWireMessagePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := derefNamed(ptr.Elem())
	return ok && named.Obj().Name() == "Message" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "wire"
}

// checkPayloadRetention flags a handler's message payload escaping into
// longer-lived storage without a Detach() call. params/body are one
// function's signature and body (declaration or literal).
func checkPayloadRetention(l *Loader, p *Package, params *ast.FieldList, body *ast.BlockStmt) []Finding {
	if params == nil {
		return nil
	}
	// The handler's *wire.Message parameters, by object identity.
	msgs := map[types.Object]bool{}
	for _, fd := range params.List {
		for _, name := range fd.Names {
			if obj := p.Info.Defs[name]; obj != nil && isWireMessagePtr(obj.Type()) {
				msgs[obj] = true
			}
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	// payloadOf returns the message parameter e reads .Payload from, or
	// nil: the shape is <param>.Payload with <param> one of msgs.
	payloadOf := func(e ast.Expr) types.Object {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Payload" {
			return nil
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := p.Info.Uses[id]; obj != nil && msgs[obj] {
			return obj
		}
		return nil
	}
	// A Detach() call on a parameter anywhere in the body vouches for
	// every retention of that parameter's payload.
	detached := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Detach" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && msgs[obj] {
				detached[obj] = true
			}
		}
		return true
	})
	var out []Finding
	report := func(pos token.Pos) {
		out = append(out, Finding{
			Pass: wireHygieneName,
			Pos:  l.Fset.Position(pos),
			Msg:  "message payload retained past the handler; call Detach() before storing it (pooled receive buffers are recycled on release)",
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				obj := payloadOf(rhs)
				if obj == nil || detached[obj] {
					continue
				}
				if i >= len(n.Lhs) {
					continue // f() multi-value; payload cannot appear here
				}
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					// A struct field or map/slice slot outlives the call.
					report(rhs.Pos())
				}
			}
		case *ast.CallExpr:
			// append(s, m.Payload) retains the slice header; the
			// spread form append(dst, m.Payload...) copies bytes out
			// and is fine.
			if id, ok := n.Fun.(*ast.Ident); !ok || id.Name != "append" ||
				n.Ellipsis != token.NoPos || len(n.Args) == 0 {
				return true
			}
			for _, arg := range n.Args[1:] {
				if obj := payloadOf(arg); obj != nil && !detached[obj] {
					report(arg.Pos())
				}
			}
		}
		return true
	})
	return out
}
