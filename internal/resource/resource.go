// Package resource implements Flux's generalized resource model: an
// extensible, typed, hierarchical graph covering any kind of resource
// and its relationships — compute (cluster/rack/node/socket/core) as
// well as consumable scalars such as power, file-system bandwidth, and
// memory — so scheduling decisions can be made against many resource
// types instead of the traditional flat node list.
package resource

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Type classifies a resource vertex. The set is open: any string is a
// valid type, which is what makes the model extensible.
type Type string

// Common resource types.
const (
	TypeCluster    Type = "cluster"
	TypeRack       Type = "rack"
	TypeNode       Type = "node"
	TypeSocket     Type = "socket"
	TypeCore       Type = "core"
	TypeMemory     Type = "memory"
	TypePower      Type = "power"
	TypeBandwidth  Type = "bandwidth"
	TypeFilesystem Type = "filesystem"
)

// Resource is one vertex of the resource graph. Structural resources
// (cluster, rack, node, core) have unit capacity and children; pool
// resources (power, bandwidth, memory) are consumable scalars attached
// anywhere in the hierarchy, enabling multi-level constraints such as
// per-rack power caps under a cluster-wide cap.
type Resource struct {
	Type       Type              `json:"type"`
	Name       string            `json:"name"`
	Capacity   float64           `json:"capacity,omitempty"` // consumable pools only
	Properties map[string]string `json:"properties,omitempty"`
	Children   []*Resource       `json:"children,omitempty"`

	parent *Resource
	used   float64 // pool consumption
	owner  string  // structural allocation owner ("" = free)
}

// New creates a resource vertex.
func New(t Type, name string) *Resource {
	return &Resource{Type: t, Name: name}
}

// NewScalar creates a consumable scalar resource (power, bandwidth, ...).
func NewScalar(t Type, name string, capacity float64) *Resource {
	return &Resource{Type: t, Name: name, Capacity: capacity}
}

// AddChild links child under r and returns child for chaining.
func (r *Resource) AddChild(child *Resource) *Resource {
	child.parent = r
	r.Children = append(r.Children, child)
	return child
}

// Parent returns the vertex above r, or nil at the graph root.
func (r *Resource) Parent() *Resource { return r.parent }

// Path returns the slash-separated path from the graph root to r.
func (r *Resource) Path() string {
	if r.parent == nil {
		return r.Name
	}
	return r.parent.Path() + "/" + r.Name
}

// Walk visits r and its descendants pre-order; returning false from fn
// prunes the subtree below the current vertex.
func (r *Resource) Walk(fn func(*Resource) bool) {
	if !fn(r) {
		return
	}
	for _, c := range r.Children {
		c.Walk(fn)
	}
}

// FindAll returns all descendants (including r) of the given type.
func (r *Resource) FindAll(t Type) []*Resource {
	var out []*Resource
	r.Walk(func(x *Resource) bool {
		if x.Type == t {
			out = append(out, x)
		}
		return true
	})
	return out
}

// Find returns the descendant with the given path relative to r
// (excluding r's own name), or nil.
func (r *Resource) Find(path string) *Resource {
	if path == "" {
		return r
	}
	parts := strings.SplitN(path, "/", 2)
	for _, c := range r.Children {
		if c.Name == parts[0] {
			if len(parts) == 1 {
				return c
			}
			return c.Find(parts[1])
		}
	}
	return nil
}

// Count returns the number of descendants (including r) of type t.
func (r *Resource) Count(t Type) int { return len(r.FindAll(t)) }

// pool helpers ---------------------------------------------------------

// poolOf returns the child pool of type t directly under r, or nil.
func (r *Resource) poolOf(t Type) *Resource {
	for _, c := range r.Children {
		if c.Type == t && c.Capacity > 0 {
			return c
		}
	}
	return nil
}

// Available returns a pool's remaining capacity.
func (r *Resource) Available() float64 { return r.Capacity - r.used }

// Used returns a pool's current consumption.
func (r *Resource) Used() float64 { return r.used }

// Owner returns the allocation owning a structural resource, or "".
func (r *Resource) Owner() string { return r.owner }

// reserve consumes amount from the pools of type t along r's ancestry
// (node, rack, cluster, ...), enforcing every level's cap. On failure
// nothing is consumed and the limiting pool is reported.
func reserveAncestry(r *Resource, t Type, amount float64) error {
	if amount <= 0 {
		return nil
	}
	var pools []*Resource
	for v := r; v != nil; v = v.parent {
		if p := v.poolOf(t); p != nil {
			pools = append(pools, p)
		}
	}
	for _, p := range pools {
		if p.Available() < amount {
			return fmt.Errorf("resource: %s pool at %s has %.0f of %.0f needed",
				t, p.Path(), p.Available(), amount)
		}
	}
	for _, p := range pools {
		p.used += amount
	}
	return nil
}

// releaseAncestry returns amount to the pools of type t along r's
// ancestry.
func releaseAncestry(r *Resource, t Type, amount float64) {
	if amount <= 0 {
		return
	}
	for v := r; v != nil; v = v.parent {
		if p := v.poolOf(t); p != nil {
			p.used -= amount
			if p.used < 0 {
				p.used = 0
			}
		}
	}
}

// Clone returns a deep copy of the subgraph with allocation state
// (owner, pool consumption) reset. Instances use clones to hand a child
// its own independent view of granted resources.
func (r *Resource) Clone() *Resource {
	c := &Resource{Type: r.Type, Name: r.Name, Capacity: r.Capacity}
	if r.Properties != nil {
		c.Properties = make(map[string]string, len(r.Properties))
		for k, v := range r.Properties {
			c.Properties[k] = v
		}
	}
	for _, child := range r.Children {
		c.AddChild(child.Clone())
	}
	return c
}

// MarshalJSON serializes the subgraph (structure and capacities), used
// to enumerate resources into the KVS.
func (r *Resource) MarshalJSON() ([]byte, error) {
	type plain Resource
	return json.Marshal((*plain)(r))
}

// UnmarshalJSON restores a subgraph and rewires parent pointers.
func (r *Resource) UnmarshalJSON(data []byte) error {
	type plain Resource
	if err := json.Unmarshal(data, (*plain)(r)); err != nil {
		return err
	}
	var rewire func(*Resource)
	rewire = func(v *Resource) {
		for _, c := range v.Children {
			c.parent = v
			rewire(c)
		}
	}
	rewire(r)
	return nil
}

// ClusterSpec describes a regular cluster to build.
type ClusterSpec struct {
	Name           string
	Racks          int
	NodesPerRack   int
	SocketsPerNode int
	CoresPerSocket int
	MemMBPerNode   float64
	// Power caps at each level (0 disables that level's pool) — the
	// paper's "dynamic power capping at the level of systems, compute
	// racks, and/or nodes".
	ClusterPowerW float64
	RackPowerW    float64
	NodePowerW    float64
	// FilesystemBW adds a cluster-level shared file-system bandwidth pool
	// (MB/s), the paper's motivating site-wide shared resource.
	FilesystemBW float64
}

// BuildCluster constructs a regular cluster resource graph.
func BuildCluster(spec ClusterSpec) (*Resource, error) {
	if spec.Racks < 1 || spec.NodesPerRack < 1 || spec.SocketsPerNode < 1 || spec.CoresPerSocket < 1 {
		return nil, fmt.Errorf("resource: cluster spec must have >= 1 of each structural level")
	}
	cluster := New(TypeCluster, spec.Name)
	if spec.ClusterPowerW > 0 {
		cluster.AddChild(NewScalar(TypePower, "power", spec.ClusterPowerW))
	}
	if spec.FilesystemBW > 0 {
		fs := cluster.AddChild(New(TypeFilesystem, "lustre"))
		fs.AddChild(NewScalar(TypeBandwidth, "bandwidth", spec.FilesystemBW))
	}
	node := 0
	for ri := 0; ri < spec.Racks; ri++ {
		rack := cluster.AddChild(New(TypeRack, fmt.Sprintf("rack%d", ri)))
		if spec.RackPowerW > 0 {
			rack.AddChild(NewScalar(TypePower, "power", spec.RackPowerW))
		}
		for ni := 0; ni < spec.NodesPerRack; ni++ {
			n := rack.AddChild(New(TypeNode, fmt.Sprintf("node%d", node)))
			node++
			if spec.NodePowerW > 0 {
				n.AddChild(NewScalar(TypePower, "power", spec.NodePowerW))
			}
			if spec.MemMBPerNode > 0 {
				n.AddChild(NewScalar(TypeMemory, "memory", spec.MemMBPerNode))
			}
			for si := 0; si < spec.SocketsPerNode; si++ {
				sock := n.AddChild(New(TypeSocket, fmt.Sprintf("socket%d", si)))
				for ci := 0; ci < spec.CoresPerSocket; ci++ {
					sock.AddChild(New(TypeCore, fmt.Sprintf("core%d", ci)))
				}
			}
		}
	}
	return cluster, nil
}
