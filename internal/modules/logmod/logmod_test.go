package logmod

import (
	"strings"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/session"
)

// syncBuffer is a goroutine-safe strings.Builder.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newSession(t *testing.T, size int, cfg Config) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size:    size,
		Modules: []session.ModuleFactory{Factory(cfg)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitFor polls cond until true or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestLogReachesRootSink(t *testing.T) {
	sink := &syncBuffer{}
	s := newSession(t, 7, Config{Sink: sink})
	h := s.Handle(5)
	defer h.Close()
	if err := Log(h, "test", LevelErr, "disk on fire: %s", "sda1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "entry at root sink", func() bool {
		return strings.Contains(sink.String(), "disk on fire: sda1")
	})
	if !strings.Contains(sink.String(), "[5]") {
		t.Fatalf("sink line missing origin rank: %q", sink.String())
	}
}

func TestDebugFilteredFromSink(t *testing.T) {
	sink := &syncBuffer{}
	s := newSession(t, 3, Config{Sink: sink, ForwardLevel: LevelInfo})
	h := s.Handle(2)
	defer h.Close()
	Log(h, "t", LevelDebug, "noisy debug detail")
	Log(h, "t", LevelInfo, "important info")
	waitFor(t, "info entry", func() bool {
		return strings.Contains(sink.String(), "important info")
	})
	if strings.Contains(sink.String(), "noisy debug detail") {
		t.Fatal("debug entry leaked past the severity filter")
	}
}

func TestDumpLocalRing(t *testing.T) {
	s := newSession(t, 3, Config{})
	h := s.Handle(1)
	defer h.Close()
	for i := 0; i < 5; i++ {
		Log(h, "ring", LevelDebug, "entry %d", i)
	}
	waitFor(t, "local ring entries", func() bool {
		entries, err := Dump(h, 1, 0)
		return err == nil && len(entries) == 5
	})
	// Count-limited dump returns the most recent entries.
	entries, err := Dump(h, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Message != "entry 4" {
		t.Fatalf("limited dump = %+v", entries)
	}
}

func TestRingWrapsAround(t *testing.T) {
	// Rank 0's dump returns the sink history, so exercise the circular
	// buffer at rank 1 of a 2-rank session with forwarding disabled.
	s2 := newSession(t, 2, Config{RingSize: 4, ForwardLevel: LevelEmerg})
	h2 := s2.Handle(1)
	defer h2.Close()
	for i := 0; i < 10; i++ {
		Log(h2, "wrap", LevelDebug, "m%d", i)
	}
	waitFor(t, "rank 1 ring wrap", func() bool {
		entries, err := Dump(h2, 1, 0)
		if err != nil || len(entries) != 4 {
			return false
		}
		return entries[0].Message == "m6" && entries[3].Message == "m9"
	})
}

func TestFaultEventDumpsRings(t *testing.T) {
	// Debug entries normally never reach the root; after a fault event
	// the circular buffers are dumped upstream for context.
	sink := &syncBuffer{}
	s := newSession(t, 7, Config{Sink: sink, ForwardLevel: LevelEmerg})
	h := s.Handle(6)
	defer h.Close()
	Log(h, "ctx", LevelDebug, "pre-fault context from leaf")
	waitFor(t, "entry in leaf ring", func() bool {
		entries, err := Dump(h, 6, 0)
		return err == nil && len(entries) == 1
	})
	if strings.Contains(sink.String(), "pre-fault") {
		t.Fatal("debug entry reached sink before fault")
	}
	if err := Fault(h); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fault dump at root", func() bool {
		return strings.Contains(sink.String(), "pre-fault context from leaf")
	})
}

func TestRootDumpReturnsSunkEntries(t *testing.T) {
	s := newSession(t, 7, Config{})
	h := s.Handle(3)
	defer h.Close()
	Log(h, "a", LevelErr, "one")
	Log(h, "a", LevelErr, "two")
	waitFor(t, "root history", func() bool {
		entries, err := Dump(h, 0, 0)
		return err == nil && len(entries) >= 2
	})
}
