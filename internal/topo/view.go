package topo

import "sort"

// View is a dynamic membership view over the overlay rank space: a
// k-ary Tree whose size can grow at the high end and whose departed
// ranks are tombstoned rather than renumbered. BFS indices are stable
// for a rank's whole life — growth appends fresh ranks, a leave only
// marks its rank — so the pure Tree arithmetic keeps working and the
// membership epoch protocol never has to rewrite routes.
//
// A View is not safe for concurrent use; holders guard it with their
// own lock (the broker under b.mu, the session under s.mu).
type View struct {
	tree Tree
	left map[int]bool // tombstoned ranks
}

// NewView returns a membership view initially covering tree with every
// rank live.
func NewView(tree Tree) *View {
	return &View{tree: tree, left: make(map[int]bool)}
}

// Tree returns the current nominal shape. Its Size counts tombstoned
// ranks too: it is the rank-space bound, not the live population.
func (v *View) Tree() Tree { return v.tree }

// Size returns the current rank-space size (tombstones included).
func (v *View) Size() int { return v.tree.Size }

// Grow extends the rank space by n fresh ranks and returns the first
// new rank. Tombstoned ranks are never reused.
func (v *View) Grow(n int) int {
	first := v.tree.Size
	v.tree.Size += n
	return first
}

// Leave tombstones rank, reporting whether it was live.
func (v *View) Leave(rank int) bool {
	if !v.tree.Valid(rank) || v.left[rank] {
		return false
	}
	v.left[rank] = true
	return true
}

// Live reports whether rank is a current, non-departed member.
func (v *View) Live(rank int) bool {
	return v.tree.Valid(rank) && !v.left[rank]
}

// Left reports whether rank has departed (tombstoned).
func (v *View) Left(rank int) bool { return v.left[rank] }

// LiveCount returns the number of live ranks.
func (v *View) LiveCount() int { return v.tree.Size - len(v.left) }

// LiveRanks returns the live ranks in ascending order.
func (v *View) LiveRanks() []int {
	ranks := make([]int, 0, v.LiveCount())
	for r := 0; r < v.tree.Size; r++ {
		if !v.left[r] {
			ranks = append(ranks, r)
		}
	}
	return ranks
}

// LiveParent returns the nearest live ancestor of rank in the tree, or
// -1 when rank is the root or every ancestor has departed.
func (v *View) LiveParent(rank int) int {
	for p := v.tree.Parent(rank); p >= 0; p = v.tree.Parent(p) {
		if !v.left[p] {
			return p
		}
	}
	return -1
}

// NextLive returns the first live rank after rank on the ring (skipping
// tombstones), or -1 when rank is the only live rank.
func (v *View) NextLive(rank int) int {
	for i, r := 0, rank; i < v.tree.Size; i++ {
		r = (r + 1) % v.tree.Size
		if r == rank {
			return -1
		}
		if !v.left[r] {
			return r
		}
	}
	return -1
}

// PrevLive returns the first live rank before rank on the ring, or -1
// when rank is the only live rank.
func (v *View) PrevLive(rank int) int {
	for i, r := 0, rank; i < v.tree.Size; i++ {
		r = (r - 1 + v.tree.Size) % v.tree.Size
		if r == rank {
			return -1
		}
		if !v.left[r] {
			return r
		}
	}
	return -1
}

// Tombstones returns the departed ranks in ascending order.
func (v *View) Tombstones() []int {
	out := make([]int, 0, len(v.left))
	for r := range v.left {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
