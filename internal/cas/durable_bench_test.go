package cas

import (
	"fmt"
	"testing"

	"fluxgo/internal/clock"
)

// BenchmarkWALAppend measures the write-through framing path: one
// record into the OS page cache (no fsync per append — that cost is
// Commit's, measured below via checkpoint/commit cadence).
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	w, _, err := OpenWAL(DirFS(), dir+"/wal.log")
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer w.Close()
	payload := make([]byte, 1024)
	b.SetBytes(int64(len(payload) + walOverhead))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(recObject, payload); err != nil {
			b.Fatalf("append: %v", err)
		}
	}
}

// BenchmarkCheckpoint packs a 1024-object store image to disk with
// full fsync + atomic rename per iteration.
func BenchmarkCheckpoint(b *testing.B) {
	dir := b.TempDir()
	d, err := OpenDurable(nil, dir, clock.Real())
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer d.Close()
	for i := 0; i < 1024; i++ {
		d.Store().PutRaw(valueObj(fmt.Sprintf("object-%d-with-some-payload-bytes", i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Checkpoint(); err != nil {
			b.Fatalf("checkpoint: %v", err)
		}
	}
}

// BenchmarkColdRestore measures recovery: open a tier holding a
// 1024-object pack plus a 128-record WAL tail and replay it all.
func BenchmarkColdRestore(b *testing.B) {
	dir := b.TempDir()
	d, err := OpenDurable(nil, dir, clock.Real())
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	var root Ref
	for i := 0; i < 1024; i++ {
		root = d.Store().PutRaw(valueObj(fmt.Sprintf("packed-object-%d-with-payload", i)))
	}
	if err := d.Commit(root, 1); err != nil {
		b.Fatalf("commit: %v", err)
	}
	if _, err := d.Checkpoint(); err != nil {
		b.Fatalf("checkpoint: %v", err)
	}
	for i := 0; i < 128; i++ {
		root = d.Store().PutRaw(valueObj(fmt.Sprintf("wal-tail-object-%d", i)))
	}
	if err := d.Commit(root, 2); err != nil {
		b.Fatalf("commit 2: %v", err)
	}
	if err := d.Close(); err != nil {
		b.Fatalf("close: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d2, err := OpenDurable(nil, dir, clock.Real())
		if err != nil {
			b.Fatalf("restore: %v", err)
		}
		if st := d2.Stats(); st.RecoveredObjects != 1024+128 {
			b.Fatalf("recovered %d objects", st.RecoveredObjects)
		}
		if err := d2.Close(); err != nil {
			b.Fatalf("close: %v", err)
		}
	}
}
