// Package mpisim implements MPI-style collectives over the Flux KVS and
// barrier modules, demonstrating the paper's claim that the per-job
// backbone communication network "supports well-known bootstrap
// interfaces for distributed programs including many MPI
// implementations": after a PMI-style bootstrap, a run-time can build
// its collectives from KVS puts, fences, and gets alone.
//
// The collectives here are the textbook KVS formulations (publish,
// fence, read), not performance-optimized algorithms; their cost is the
// KAP access patterns of the paper's Section V.
package mpisim

import (
	"encoding/json"
	"fmt"

	"fluxgo/internal/broker"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/barrier"
)

// Comm is one process's communicator over a jobid-scoped KVS namespace.
type Comm struct {
	h     *broker.Handle
	kc    *kvs.Client
	jobid string
	rank  int
	size  int
	seq   int
}

// NewComm creates rank's communicator for an nprocs-wide job.
func NewComm(h *broker.Handle, jobid string, rank, size int) (*Comm, error) {
	if size < 1 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpisim: rank %d outside communicator of size %d", rank, size)
	}
	return &Comm{h: h, kc: kvs.NewClient(h), jobid: jobid, rank: rank, size: size}, nil
}

// Rank returns this process's rank in the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// next advances the collective epoch; all processes call collectives in
// the same order (MPI semantics), so epochs align.
func (c *Comm) next() int {
	c.seq++
	return c.seq
}

func (c *Comm) key(seq, rank int, name string) string {
	return fmt.Sprintf("mpi.%s.c%d.%d.%s", c.jobid, seq, rank, name)
}

// Barrier blocks until every rank of the communicator has entered.
func (c *Comm) Barrier() error {
	seq := c.next()
	return barrier.Enter(c.h, fmt.Sprintf("mpi.%s.bar.%d", c.jobid, seq), c.size)
}

// Bcast distributes root's value to every rank: out must be a pointer.
// The root passes its value in v; other ranks' v is ignored.
func (c *Comm) Bcast(root int, v any, out any) error {
	if root < 0 || root >= c.size {
		return fmt.Errorf("mpisim: bcast root %d out of range", root)
	}
	seq := c.next()
	if c.rank == root {
		if err := c.kc.Put(c.key(seq, root, "bcast"), v); err != nil {
			return err
		}
	}
	if _, err := c.kc.Fence(fmt.Sprintf("mpi.%s.bcast.%d", c.jobid, seq), c.size); err != nil {
		return err
	}
	return c.kc.Get(c.key(seq, root, "bcast"), out)
}

// Allgather publishes each rank's value and returns all values in rank
// order as raw JSON.
func (c *Comm) Allgather(v any) ([]json.RawMessage, error) {
	seq := c.next()
	if err := c.kc.Put(c.key(seq, c.rank, "ag"), v); err != nil {
		return nil, err
	}
	if _, err := c.kc.Fence(fmt.Sprintf("mpi.%s.ag.%d", c.jobid, seq), c.size); err != nil {
		return nil, err
	}
	out := make([]json.RawMessage, c.size)
	for r := 0; r < c.size; r++ {
		raw, err := c.kc.GetRaw(c.key(seq, r, "ag"))
		if err != nil {
			return nil, fmt.Errorf("mpisim: allgather read rank %d: %w", r, err)
		}
		out[r] = raw
	}
	return out, nil
}

// Op is a reduction operator over float64.
type Op func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMin Op = func(a, b float64) float64 {
		if b < a {
			return b
		}
		return a
	}
	OpMax Op = func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	}
)

// Allreduce reduces each rank's contribution with op and returns the
// result, identical at every rank.
func (c *Comm) Allreduce(v float64, op Op) (float64, error) {
	all, err := c.Allgather(v)
	if err != nil {
		return 0, err
	}
	var acc float64
	for i, raw := range all {
		var x float64
		if err := json.Unmarshal(raw, &x); err != nil {
			return 0, err
		}
		if i == 0 {
			acc = x
			continue
		}
		acc = op(acc, x)
	}
	return acc, nil
}

// Gather returns all values at the root (nil slice elsewhere).
func (c *Comm) Gather(root int, v any) ([]json.RawMessage, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("mpisim: gather root %d out of range", root)
	}
	seq := c.next()
	if err := c.kc.Put(c.key(seq, c.rank, "g"), v); err != nil {
		return nil, err
	}
	if _, err := c.kc.Fence(fmt.Sprintf("mpi.%s.g.%d", c.jobid, seq), c.size); err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	out := make([]json.RawMessage, c.size)
	for r := 0; r < c.size; r++ {
		raw, err := c.kc.GetRaw(c.key(seq, r, "g"))
		if err != nil {
			return nil, err
		}
		out[r] = raw
	}
	return out, nil
}

// Scatter distributes root's per-rank values; each rank receives its
// element into out. values is only read at the root and must have
// exactly Size elements.
func (c *Comm) Scatter(root int, values []any, out any) error {
	if root < 0 || root >= c.size {
		return fmt.Errorf("mpisim: scatter root %d out of range", root)
	}
	seq := c.next()
	if c.rank == root {
		if len(values) != c.size {
			return fmt.Errorf("mpisim: scatter needs %d values, got %d", c.size, len(values))
		}
		for r, v := range values {
			if err := c.kc.Put(c.key(seq, r, "sc"), v); err != nil {
				return err
			}
		}
	}
	if _, err := c.kc.Fence(fmt.Sprintf("mpi.%s.sc.%d", c.jobid, seq), c.size); err != nil {
		return err
	}
	return c.kc.Get(c.key(seq, c.rank, "sc"), out)
}
