package debuglock

import (
	"sync"
	"testing"
)

// TestMutexBasics exercises the Mutex in whichever build mode is
// active: plain mutual exclusion must hold, and consistently ordered
// nested acquisition must never panic.
func TestMutexBasics(t *testing.T) {
	var a, b Mutex
	a.SetClass("test.a")
	b.SetClass("test.b")

	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				a.Lock()
				b.Lock()
				counter++
				b.Unlock()
				a.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8*200 {
		t.Fatalf("counter = %d, want %d", counter, 8*200)
	}
}

func TestGID(t *testing.T) {
	if g := gid(); g <= 0 {
		t.Fatalf("gid() = %d, want > 0", g)
	}
	got := make(chan int64, 1)
	go func() { got <- gid() }()
	if other := <-got; other == gid() || other <= 0 {
		t.Fatalf("goroutine ids not distinct/positive: %d vs %d", other, gid())
	}
}
