package jobsvc

import (
	"context"
	"strings"
	"testing"
	"time"

	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/resrc"
	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int, cfg Config) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size: size,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			resrc.Factory(resrc.Config{}),
			wexec.Factory(wexec.Config{}),
			Factory(cfg),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestSubmitRunComplete(t *testing.T) {
	s := newSession(t, 4, Config{})
	h := s.Handle(3) // submissions route upstream to the root service
	defer h.Close()

	id, err := Submit(h, Spec{Program: "echo", Args: []string{"hi"}, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if id != "1" {
		t.Fatalf("first job id %q", id)
	}
	info, err := Wait(ctx(t), h, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateComplete || len(info.Ranks) != 2 {
		t.Fatalf("final info %+v", info)
	}
	// Provenance trail in the KVS.
	kc := kvs.NewClient(h)
	var state string
	if err := kc.Get("lwj.1.jobstate", &state); err != nil || state != StateComplete {
		t.Fatalf("kvs jobstate %q %v", state, err)
	}
	var spec Spec
	if err := kc.Get("lwj.1.spec", &spec); err != nil || spec.Program != "echo" {
		t.Fatalf("kvs spec %+v %v", spec, err)
	}
	// Task stdout captured under the wexec job id.
	stdout, _, _, err := wexec.Output(h, "job-1", info.Ranks[0])
	if err != nil || !strings.Contains(stdout, "hi") {
		t.Fatalf("stdout %q %v", stdout, err)
	}
	// Resources returned.
	avail, err := resrc.Avail(h)
	if err != nil || len(avail) != 4 {
		t.Fatalf("avail %v %v", avail, err)
	}
}

func TestQueueingFCFSOrder(t *testing.T) {
	s := newSession(t, 2, Config{})
	h := s.Handle(0)
	defer h.Close()

	// Block the machine, then submit two more; they queue in order.
	blocker, err := Submit(h, Spec{Program: "block", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := Submit(h, Spec{Program: "echo", Args: []string{"second"}, Nodes: 2})
	id3, _ := Submit(h, Spec{Program: "echo", Args: []string{"third"}, Nodes: 1})

	jobs, err := List(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("active jobs %d", len(jobs))
	}
	states := map[string]string{}
	for _, j := range jobs {
		states[j.ID] = j.State
	}
	if states[blocker] != StateRunning || states[id2] != StateSubmitted || states[id3] != StateSubmitted {
		t.Fatalf("states %v", states)
	}

	// Strict FCFS: id3 (1 node) must NOT jump id2 (2 nodes) even though
	// no node is free anyway; after the blocker dies both run in order.
	if err := Cancel(h, blocker); err != nil {
		t.Fatal(err)
	}
	info2, err := Wait(ctx(t), h, id2)
	if err != nil {
		t.Fatal(err)
	}
	info3, err := Wait(ctx(t), h, id3)
	if err != nil {
		t.Fatal(err)
	}
	if info2.State != StateComplete || info3.State != StateComplete {
		t.Fatalf("queued jobs: %+v %+v", info2, info3)
	}
	// The killed blocker is recorded as failed.
	b, err := GetInfo(h, blocker)
	if err != nil || b.State != StateFailed {
		t.Fatalf("blocker %+v %v", b, err)
	}
}

func TestBackfillJumpsBlockedHead(t *testing.T) {
	s := newSession(t, 3, Config{Backfill: true})
	h := s.Handle(0)
	defer h.Close()
	// Occupy 2 of 3 nodes with a blocker; head needs 2 (blocked);
	// a 1-node job behind it backfills.
	blocker, _ := Submit(h, Spec{Program: "block", Nodes: 2})
	head, _ := Submit(h, Spec{Program: "echo", Nodes: 2})
	small, _ := Submit(h, Spec{Program: "echo", Args: []string{"backfilled"}, Nodes: 1})

	info, err := Wait(ctx(t), h, small)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateComplete {
		t.Fatalf("backfilled job %+v", info)
	}
	// Head still waiting.
	hi, _ := GetInfo(h, head)
	if hi.State != StateSubmitted {
		t.Fatalf("head state %s", hi.State)
	}
	Cancel(h, blocker)
	if _, err := Wait(ctx(t), h, head); err != nil {
		t.Fatal(err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := newSession(t, 1, Config{})
	h := s.Handle(0)
	defer h.Close()
	blocker, _ := Submit(h, Spec{Program: "block", Nodes: 1})
	queued, _ := Submit(h, Spec{Program: "echo", Nodes: 1})
	if err := Cancel(h, queued); err != nil {
		t.Fatal(err)
	}
	info, err := GetInfo(h, queued)
	if err != nil || info.State != StateCancelled {
		t.Fatalf("cancelled job %+v %v", info, err)
	}
	if err := Cancel(h, "999"); err == nil {
		t.Fatal("cancel of unknown job accepted")
	}
	Cancel(h, blocker)
}

func TestFailedProgramMarksJobFailed(t *testing.T) {
	s := newSession(t, 2, Config{})
	h := s.Handle(1)
	defer h.Close()
	id, _ := Submit(h, Spec{Program: "fail", Args: []string{"2"}, Nodes: 2})
	info, err := Wait(ctx(t), h, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateFailed || info.Exit != 2 {
		t.Fatalf("failed job %+v", info)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSession(t, 2, Config{})
	h := s.Handle(0)
	defer h.Close()
	if _, err := Submit(h, Spec{Program: "", Nodes: 1}); err == nil {
		t.Fatal("empty program accepted")
	}
	if _, err := Submit(h, Spec{Program: "echo", Nodes: 5}); err == nil {
		t.Fatal("oversized job accepted")
	}
	// Nodes 0 defaults to 1.
	id, err := Submit(h, Spec{Program: "echo"})
	if err != nil {
		t.Fatal(err)
	}
	info, err := Wait(ctx(t), h, id)
	if err != nil || len(info.Ranks) != 1 {
		t.Fatalf("%+v %v", info, err)
	}
}

func TestManySequentialJobs(t *testing.T) {
	s := newSession(t, 2, Config{})
	h := s.Handle(0)
	defer h.Close()
	var ids []string
	for i := 0; i < 10; i++ {
		id, err := Submit(h, Spec{Program: "hostname", Nodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		info, err := Wait(ctx(t), h, id)
		if err != nil || info.State != StateComplete {
			t.Fatalf("job %s: %+v %v", id, info, err)
		}
	}
	jobs, _ := List(h)
	if len(jobs) != 0 {
		t.Fatalf("%d jobs still active", len(jobs))
	}
}

func TestStateEventsPublished(t *testing.T) {
	s := newSession(t, 2, Config{})
	h := s.Handle(1)
	defer h.Close()
	sub, err := h.Subscribe("job.state")
	if err != nil {
		t.Fatal(err)
	}
	id, _ := Submit(h, Spec{Program: "echo", Nodes: 1})
	var seen []string
	deadline := time.After(20 * time.Second)
	for len(seen) < 3 {
		select {
		case ev := <-sub.Chan():
			var se stateEvent
			if ev.UnpackJSON(&se) == nil && se.ID == id {
				seen = append(seen, se.State)
			}
		case <-deadline:
			t.Fatalf("state trail so far: %v", seen)
		}
	}
	want := []string{StateSubmitted, StateRunning, StateComplete}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("state trail %v, want %v", seen, want)
		}
	}
}
