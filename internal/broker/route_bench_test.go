package broker

import (
	"testing"

	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// BenchmarkRouteHop measures a request forwarded through a child broker
// to its parent (route push, upstream handoff, builtin dispatch at the
// root, and the response hop back) — the unit of work interior brokers
// repeat per message on the fan-in path.
func BenchmarkRouteHop(b *testing.B) {
	root, err := New(Config{Rank: 0, Size: 2})
	if err != nil {
		b.Fatal(err)
	}
	root.Start()
	defer root.Shutdown()

	child, err := New(Config{Rank: 1, Size: 2})
	if err != nil {
		b.Fatal(err)
	}
	child.Start()
	defer child.Shutdown()

	up, down := transport.Pipe("rank:1", "rank:0")
	child.AttachConn(LinkParentTree, up)
	root.AttachConn(LinkChildTree, down)

	h := child.NewHandle()
	defer h.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RPC("cmb.ping", wire.NodeidUpstream, nil); err != nil {
			b.Fatal(err)
		}
	}
}
