// Multi-level resource elasticity: a child instance grows and shrinks
// its allocation through grow/shrink requests to its parent, governed by
// the paper's three hierarchy rules — the parent bounds the child
// (MaxNodes), the child owns scheduling within the bound, and every
// elasticity change needs parental consent.
//
//	go run ./examples/elastic-job
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fluxgo"
)

func main() {
	cluster, err := fluxgo.BuildCluster(fluxgo.ClusterSpec{
		Name: "center", Racks: 1, NodesPerRack: 12,
		SocketsPerNode: 2, CoresPerSocket: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	root, err := fluxgo.NewRootInstance(cluster, fluxgo.InstanceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer root.Close()

	// A malleable application: starts on 2 nodes, may grow to 8 — the
	// parent pre-authorizes the bound at spawn time.
	app, err := root.Spawn(fluxgo.Request{Nodes: 2}, 8, fluxgo.InstanceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("app instance %s: %d nodes (bounded at %d); parent has %d free\n",
		app.ID(), app.Size(), app.MaxNodes(), root.Pool().FreeNodes())

	runPhase(app, "phase-1-setup", 2)

	// Compute-bound phase: ask the parent for 6 more nodes.
	if err := app.Grow(6); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grew to %d nodes (parent consented); parent has %d free\n",
		app.Size(), root.Pool().FreeNodes())
	runPhase(app, "phase-2-compute", 8)

	// The bound is enforced: the parent refuses growth past 8.
	if err := app.Grow(1); err != nil {
		fmt.Printf("grow beyond bound refused: %v\n", err)
	}

	// I/O-bound phase needs little compute: return 6 nodes.
	if err := app.Shrink(6); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shrank to %d nodes; parent has %d free\n",
		app.Size(), root.Pool().FreeNodes())
	runPhase(app, "phase-3-io", 2)

	// Freed nodes are immediately available to siblings.
	sibling, err := root.Spawn(fluxgo.Request{Nodes: 10}, 0, fluxgo.InstanceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sibling %s spawned on the returned nodes (%d nodes)\n",
		sibling.ID(), sibling.Size())
}

// runPhase runs one application phase across width nodes of the
// instance's current allocation.
func runPhase(app *fluxgo.Instance, name string, width int) {
	rec, err := app.Submit("echo", []string{name}, fluxgo.Request{Nodes: width})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := rec.Wait(ctx)
	if err != nil || res.State != "complete" {
		log.Fatalf("%s: %+v %v", name, res, err)
	}
	fmt.Printf("  %s completed on %d nodes\n", name, width)
}
