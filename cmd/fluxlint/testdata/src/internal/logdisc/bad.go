package logdisc

import (
	"log"
	stdlog "log"
)

// rawLogging writes through the process-global stdlib logger, which the
// session log plane never sees.
func rawLogging(err error) {
	log.Printf("commit failed: %v", err) // BAD
	log.Println("retrying")              // BAD
	stdlog.Printf("aliased: %v", err)    // BAD
}
