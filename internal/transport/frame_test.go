package transport

import (
	"bytes"
	"net"
	"testing"
	"time"

	"fluxgo/internal/wire"
)

// frameRefs reports how many references f still holds by probing its
// buffer: a released frame surrenders Bytes().
func frameAlive(f *wire.Frame) bool { return f.Bytes() != nil }

// TestCodecSendFrame: the codec pipe delivers a decoded copy of the
// shared frame and consumes the caller's reference.
func TestCodecSendFrame(t *testing.T) {
	a, b := CodecPipe("a", "b")
	defer a.Close()
	defer b.Close()
	ev := &wire.Message{Type: wire.Event, Topic: "hb", Seq: 5, Payload: []byte(`{"n":5}`)}
	f, err := wire.NewFrame(ev)
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := a.(FrameSender)
	if !ok {
		t.Fatal("codec pipe end does not implement FrameSender")
	}
	if err := fs.SendFrame(f.Retain()); err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got == ev {
		t.Fatal("codec pipe delivered the shared message pointer, want a decoded copy")
	}
	if got.Topic != ev.Topic || got.Seq != ev.Seq || !bytes.Equal(got.Payload, ev.Payload) {
		t.Fatalf("delivered %+v, want %+v", got, ev)
	}
	f.Release()
	if frameAlive(f) {
		t.Fatal("frame still holds its buffer after all references dropped")
	}
}

// TestPipeNotFrameSender: plain pipes move pointers without encoding;
// offering SendFrame there would add a marshal they never pay, so the
// broker must see them as frame-incapable.
func TestPipeNotFrameSender(t *testing.T) {
	a, _ := Pipe("a", "b")
	if _, ok := a.(FrameSender); ok {
		t.Fatal("plain pipe implements FrameSender; event fan-out would start paying a marshal")
	}
}

// TestTCPSendFrame: the coalescing writer ships the frame's exact bytes
// behind the usual length prefix.
func TestTCPSendFrame(t *testing.T) {
	srv, cli := net.Pipe()
	c := newTCPConn(srv, "peer")
	defer c.Close()
	defer cli.Close()

	ev := &wire.Message{Type: wire.Event, Topic: "kvs.setroot", Seq: 77, Payload: []byte(`{"v":77}`)}
	f, err := wire.NewFrame(ev)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), f.Bytes()...)
	if err := c.SendFrame(f); err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	cli.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := readFrame(cli)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire bytes %x, want %x", got, want)
	}
}

// TestQueueCloseReleasesFrames: a hard close drops queued frame
// references, not just messages — the release-exactly-once contract
// covers the teardown path too.
func TestQueueCloseReleasesFrames(t *testing.T) {
	q := newQueue()
	f, err := wire.NewFrame(&wire.Message{Type: wire.Event, Topic: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.push(outItem{f: f.Retain()}); err != nil {
		t.Fatal(err)
	}
	q.close(false)
	f.Release() // our own reference; the queued one was settled by close
	if frameAlive(f) {
		t.Fatal("hard close leaked the queued frame reference")
	}

	// And a rejected push settles the reference immediately.
	f2, err := wire.NewFrame(&wire.Message{Type: wire.Event, Topic: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.push(outItem{f: f2}); err != ErrClosed {
		t.Fatalf("push on closed queue: %v, want ErrClosed", err)
	}
	if frameAlive(f2) {
		t.Fatal("rejected push leaked the frame reference")
	}
}
