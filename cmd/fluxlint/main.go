// Command fluxlint is the repository's static-analysis suite, built on
// the standard library's go/parser, go/ast, and go/types only (no
// golang.org/x/tools). It enforces the concurrency and wire-protocol
// invariants the CMB design depends on; see the per-pass files for the
// exact rules:
//
//	lock-across-block   nothing blocking runs while a mutex is held
//	goroutine-lifecycle go-literal goroutines have a shutdown tie
//	errno-discipline    errnos are named constants; RPC errors are read
//	epoch-discipline    epoch-fenced drops are counted or logged
//	wire-hygiene        wire topics/types go through wire constants
//	deadline-propagation in-scope contexts are threaded into RPCs
//	fsync-discipline    Sync/Close errors are checked on write paths
//	pool-ownership      pooled messages obey the Handoff/Release contract
//	errno-completeness  dispatch switches match wire.OpErrnos exactly
//
// The last two (and fsync-discipline's interprocedural half) run on the
// shared CFG + dataflow core in cfg.go / dataflow.go / summary.go.
//
// Usage:
//
//	fluxlint [-stats] [packages]
//
// with packages as ./... (default) or ./relative/dirs, run from within
// the module. -stats prints per-pass kept/suppressed finding counts to
// stderr (the CI lint step uses it). Exit status is 1 when findings (or
// malformed ignore directives) survive; see lint.go for the
// //fluxlint:ignore form.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluxlint:", err)
		os.Exit(2)
	}
}

var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// findModule walks up from dir to the nearest go.mod, returning the
// module path and root directory.
func findModule(dir string) (string, string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		b, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := moduleLine.FindSubmatch(b)
			if m == nil {
				return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
			}
			return string(m[1]), dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func run(args []string) error {
	modPath, modDir, err := findModule(".")
	if err != nil {
		return err
	}
	l := NewLoader(modPath, modDir)

	showStats := false
	filtered := args[:0:0]
	for _, a := range args {
		if a == "-stats" || a == "--stats" {
			showStats = true
			continue
		}
		filtered = append(filtered, a)
	}
	args = filtered

	if len(args) == 0 {
		args = []string{"./..."}
	}
	var paths []string
	for _, a := range args {
		switch {
		case a == "./..." || a == "...":
			all, err := l.Discover()
			if err != nil {
				return err
			}
			paths = append(paths, all...)
		case strings.HasPrefix(a, modPath):
			paths = append(paths, a)
		default:
			abs, err := filepath.Abs(a)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(modDir, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return fmt.Errorf("package %q is outside module %s", a, modPath)
			}
			if rel == "." {
				paths = append(paths, modPath)
			} else {
				paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
			}
		}
	}

	var pkgs []*Package
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, p)
	}
	findings, stats := runAll(l, pkgs)
	for _, f := range findings {
		rel, err := filepath.Rel(modDir, f.Pos.Filename)
		if err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if showStats {
		fmt.Fprintf(os.Stderr, "fluxlint: %d package(s), per-pass findings (kept/suppressed):\n", len(pkgs))
		for _, pass := range passes {
			s := stats[pass.Name]
			fmt.Fprintf(os.Stderr, "  %-22s %d/%d\n", pass.Name, s.kept, s.suppressed)
		}
		if s, ok := stats["directive"]; ok {
			fmt.Fprintf(os.Stderr, "  %-22s %d/%d\n", "directive", s.kept, s.suppressed)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fluxlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	return nil
}
