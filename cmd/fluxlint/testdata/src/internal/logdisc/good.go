package logdisc

// planeLogger mimics the broker log-plane handle: records routed here
// land in the rank's ring and travel the telemetry plane.
type planeLogger struct{}

func (planeLogger) Printf(format string, args ...any) {}
func (planeLogger) Log(level int, sub, format string, args ...any) {}

// disciplined logs through the plane handle.
func disciplined(err error) {
	var h planeLogger
	h.Log(4, "logdisc", "commit failed: %v", err)
}

// localIdent proves a non-package identifier named log is not flagged.
func localIdent() {
	log := planeLogger{}
	log.Printf("a method on a local, not the stdlib package")
}
