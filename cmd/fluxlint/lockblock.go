package main

// lock-across-block: flags operations that can block indefinitely while
// a sync (or debuglock) mutex is held. In a message broker every such
// site is a latent deadlock: the blocked goroutine holds the lock, the
// goroutine that would unblock it needs the lock. The CMB design rule
// is that mailboxes and send queues are unbounded precisely so nothing
// blocks under a lock; this pass is the mechanized form of that rule.
//
// The analysis is a conservative may-hold dataflow over each function
// body: Lock/RLock adds the printed receiver expression to the held
// set, Unlock/RUnlock removes it, `defer mu.Unlock()` holds to the end
// of the function, and branches are analyzed on clones whose held sets
// are unioned afterwards. While any lock may be held, these operations
// are flagged:
//
//   - channel send statements and receive expressions
//   - select without a default clause, and range over a channel
//   - time.Sleep
//   - Send/Recv on connection-shaped receivers (method set has both)
//   - the Handle RPC family (RPC, RPCContext, RPCWithOptions,
//     PublishEvent), which block on a routed round trip
//
// sync.Cond.Wait is deliberately not flagged: it unlocks while parked,
// which is the one sanctioned way to wait under a mutex.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

const lockAcrossBlockName = "lock-across-block"

var lockAcrossBlockPass = Pass{
	Name: lockAcrossBlockName,
	Doc:  "flag potentially blocking operations reachable while a mutex is held",
	Run:  runLockAcrossBlock,
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

type lockChecker struct {
	l        *Loader
	p        *Package
	findings []Finding
	// inline marks function literals analyzed in their caller's lock
	// context (immediately-invoked ones); the top-level sweep skips
	// them. Every other literal runs on a fresh goroutine or at an
	// unknown time and is analyzed with an empty held set.
	inline map[*ast.FuncLit]bool
}

type heldSet map[string]token.Pos

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h heldSet) union(others ...heldSet) {
	for _, o := range others {
		for k, v := range o {
			h[k] = v
		}
	}
}

// anyHeld returns an arbitrary held lock name for the message.
func (h heldSet) anyHeld() string {
	for k := range h {
		return k
	}
	return ""
}

func runLockAcrossBlock(l *Loader, p *Package) []Finding {
	c := &lockChecker{l: l, p: p, inline: map[*ast.FuncLit]bool{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.stmts(fd.Body.List, heldSet{})
		}
		// Non-inline function literals start life with nothing held.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && !c.inline[fl] {
				c.stmts(fl.Body.List, heldSet{})
			}
			return true
		})
	}
	return c.findings
}

func (c *lockChecker) report(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pass: lockAcrossBlockName,
		Pos:  c.l.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// lockOp classifies e as a Lock/Unlock-style call on a tracked mutex
// and returns the lock's identity (the printed receiver expression).
func (c *lockChecker) lockOp(e ast.Expr) (key string, kind lockOpKind) {
	ce, ok := e.(*ast.CallExpr)
	if !ok {
		return "", opNone
	}
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var k lockOpKind
	switch se.Sel.Name {
	case "Lock", "RLock":
		k = opLock
	case "Unlock", "RUnlock":
		k = opUnlock
	default:
		return "", opNone
	}
	if !isMutexMethodPkg(methodPkgPath(c.p.Info, se)) {
		return "", opNone
	}
	return types.ExprString(se.X), k
}

func (c *lockChecker) stmts(list []ast.Stmt, held heldSet) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

func (c *lockChecker) stmt(s ast.Stmt, held heldSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, kind := c.lockOp(s.X); kind == opLock {
			held[key] = s.Pos()
			return
		} else if kind == opUnlock {
			delete(held, key)
			return
		}
		// An immediately-invoked literal runs on this goroutine with the
		// current locks held.
		if ce, ok := s.X.(*ast.CallExpr); ok {
			if fl, ok := ce.Fun.(*ast.FuncLit); ok {
				c.inline[fl] = true
				for _, a := range ce.Args {
					c.checkExpr(a, held)
				}
				c.stmts(fl.Body.List, held)
				return
			}
		}
		c.checkExpr(s.X, held)

	case *ast.SendStmt:
		if len(held) > 0 {
			c.report(s.Pos(), "channel send while %s is held", held.anyHeld())
		}
		c.checkExpr(s.Chan, held)
		c.checkExpr(s.Value, held)

	case *ast.DeferStmt:
		// defer mu.Unlock() means held to end of function: leave the set
		// alone. Other deferred calls run at an unknowable lock state;
		// their literals are analyzed by the top-level sweep.
		if _, kind := c.lockOp(s.Call); kind != opNone {
			return
		}
		for _, a := range s.Call.Args {
			c.checkExpr(a, held)
		}

	case *ast.GoStmt:
		// The spawned goroutine does not hold our locks; arguments are
		// evaluated here though.
		for _, a := range s.Call.Args {
			c.checkExpr(a, held)
		}

	case *ast.BlockStmt:
		c.stmts(s.List, held)

	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		thenH := held.clone()
		c.stmt(s.Body, thenH)
		if s.Else != nil {
			// Exactly one branch executes: the result is the union of the
			// two outcomes, so a lock released on both paths is released.
			elseH := held.clone()
			c.stmt(s.Else, elseH)
			for k := range held {
				delete(held, k)
			}
			held.union(thenH, elseH)
		} else {
			held.union(thenH)
		}

	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		bodyH := held.clone()
		c.stmts(s.Body.List, bodyH)
		if s.Post != nil {
			c.stmt(s.Post, bodyH)
		}
		held.union(bodyH)

	case *ast.RangeStmt:
		if len(held) > 0 && isChanType(c.p.Info.TypeOf(s.X)) {
			c.report(s.Pos(), "range over channel while %s is held", held.anyHeld())
		}
		c.checkExpr(s.X, held)
		bodyH := held.clone()
		c.stmts(s.Body.List, bodyH)
		held.union(bodyH)

	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if len(held) > 0 && !hasDefault {
			c.report(s.Pos(), "select without default while %s is held", held.anyHeld())
		}
		var branches []heldSet
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			h := held.clone()
			// The comm op itself was accounted for by the select report;
			// only the clause bodies need walking.
			c.stmts(cc.Body, h)
			branches = append(branches, h)
		}
		held.union(branches...)

	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		var branches []heldSet
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			h := held.clone()
			for _, e := range cc.List {
				c.checkExpr(e, h)
			}
			c.stmts(cc.Body, h)
			branches = append(branches, h)
		}
		held.union(branches...)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		var branches []heldSet
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			h := held.clone()
			c.stmts(cc.Body, h)
			branches = append(branches, h)
		}
		held.union(branches...)

	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, held)
		}

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held)
		}

	case *ast.DeclStmt:
		c.checkExpr(nil, held) // no-op; declarations may carry values below
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, held)
					}
				}
			}
		}

	default:
		// IncDecStmt, BranchStmt, EmptyStmt: nothing blocking inside.
	}
}

// checkExpr walks an expression for blocking operations under held
// locks. Function literals are skipped: they execute elsewhere.
func (c *lockChecker) checkExpr(e ast.Expr, held heldSet) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.Pos(), "channel receive while %s is held", held.anyHeld())
			}
		case *ast.CallExpr:
			c.checkCall(n, held)
		}
		return true
	})
}

// checkCall flags blocking calls made while locks are held.
func (c *lockChecker) checkCall(ce *ast.CallExpr, held heldSet) {
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := se.Sel.Name
	pkgPath := methodPkgPath(c.p.Info, se)
	switch {
	case pkgPath == "time" && name == "Sleep":
		c.report(ce.Pos(), "time.Sleep while %s is held", held.anyHeld())
	case rpcFamily[name] && c.p.Info.Selections[se] != nil:
		c.report(ce.Pos(), "%s (blocking round trip) while %s is held", name, held.anyHeld())
	case connLike(c.p.Info, se):
		c.report(ce.Pos(), "connection %s while %s is held", name, held.anyHeld())
	}
}
