// Benchmarks regenerating the paper's evaluation (Section V), one per
// figure, plus the ablations called out in DESIGN.md. Each KAP benchmark
// runs the full four-phase KVS Access Patterns test on an in-process
// comms session with per-hop serialization costs enabled, and reports
// the phase latency of interest as a custom metric alongside ns/op.
//
// Scales are reduced from the paper's 512 nodes × 16 procs to keep bench
// runs tractable; cmd/kap sweeps the full figure series.
package fluxgo_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fluxgo"
	"fluxgo/internal/kap"
	"fluxgo/internal/kvs"
	"fluxgo/internal/sched"
	"fluxgo/internal/session"
	"fluxgo/internal/wire"
)

// benchRanks are the session sizes swept by the figure benchmarks
// (the paper sweeps 64..512 nodes; × ProcsPerRank gives process counts).
var benchRanks = []int{16, 64}

const benchProcsPerRank = 4

// runKAP executes one KAP configuration b.N times, reporting the chosen
// phase latency.
func runKAP(b *testing.B, p kap.Params, phase string) {
	b.Helper()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		res, err := kap.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		switch phase {
		case "producer":
			total += res.Producer
		case "sync":
			total += res.Sync
		case "consumer":
			total += res.Consumer
		}
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), phase+"-ns")
}

// BenchmarkFig2ProducerPhase reproduces Figure 2: maximum kvs_put phase
// latency as the producer count grows, one series per value size.
func BenchmarkFig2ProducerPhase(b *testing.B) {
	for _, ranks := range benchRanks {
		for _, vsize := range []int{8, 512, 8192, 32768} {
			total := ranks * benchProcsPerRank
			b.Run(fmt.Sprintf("producers=%d/vsize=%d", total, vsize), func(b *testing.B) {
				runKAP(b, kap.Params{
					Ranks:        ranks,
					ProcsPerRank: benchProcsPerRank,
					Producers:    total,
					Consumers:    total,
					ValueSize:    vsize,
					AccessCount:  1,
				}, "producer")
			})
		}
	}
}

// BenchmarkFig3FenceUnique and BenchmarkFig3FenceRedundant reproduce
// Figure 3: maximum kvs_fence latency vs producer count, for unique
// values (tuples and data both concatenate up the tree: ~linear) and
// redundant values (data deduplicates in the tree reduction, tuples
// still concatenate: better, but short of logarithmic).
func BenchmarkFig3FenceUnique(b *testing.B)    { benchFig3(b, false) }
func BenchmarkFig3FenceRedundant(b *testing.B) { benchFig3(b, true) }

func benchFig3(b *testing.B, redundant bool) {
	for _, ranks := range benchRanks {
		for _, vsize := range []int{8, 2048, 32768} {
			total := ranks * benchProcsPerRank
			b.Run(fmt.Sprintf("producers=%d/vsize=%d", total, vsize), func(b *testing.B) {
				runKAP(b, kap.Params{
					Ranks:        ranks,
					ProcsPerRank: benchProcsPerRank,
					Producers:    total,
					Consumers:    total,
					ValueSize:    vsize,
					Redundant:    redundant,
					AccessCount:  1,
				}, "sync")
			})
		}
	}
}

// BenchmarkFig4aConsumerSingleDir reproduces Figure 4(a): maximum
// kvs_get phase latency with all keys in a single KVS directory, one
// series per per-consumer access count; slave caches store whole
// objects, so every consumer faults in the one big directory object.
func BenchmarkFig4aConsumerSingleDir(b *testing.B) {
	for _, ranks := range benchRanks {
		for _, access := range []int{1, 4, 16} {
			total := ranks * benchProcsPerRank
			b.Run(fmt.Sprintf("consumers=%d/access=%d", total, access), func(b *testing.B) {
				runKAP(b, kap.Params{
					Ranks:        ranks,
					ProcsPerRank: benchProcsPerRank,
					Producers:    total,
					Consumers:    total,
					ValueSize:    8,
					AccessCount:  access,
					DirFanout:    0, // single directory
				}, "consumer")
			})
		}
	}
}

// BenchmarkFig4bConsumerMultiDir reproduces Figure 4(b): the same
// consumer sweep with objects split into directories of at most 128
// entries, so consumers fault in only the small directories they touch.
func BenchmarkFig4bConsumerMultiDir(b *testing.B) {
	for _, ranks := range benchRanks {
		for _, access := range []int{1, 4, 16} {
			total := ranks * benchProcsPerRank
			b.Run(fmt.Sprintf("consumers=%d/access=%d", total, access), func(b *testing.B) {
				runKAP(b, kap.Params{
					Ranks:        ranks,
					ProcsPerRank: benchProcsPerRank,
					Producers:    total,
					Consumers:    total,
					ValueSize:    8,
					AccessCount:  access,
					DirFanout:    128,
				}, "consumer")
			})
		}
	}
}

// BenchmarkTableIBarrier exercises the barrier comms module (Table I)
// across tree arities — the "tree shape is configurable" ablation.
func BenchmarkTableIBarrier(b *testing.B) {
	for _, arity := range []int{2, 4, 16} {
		for _, ranks := range benchRanks {
			b.Run(fmt.Sprintf("arity=%d/ranks=%d", arity, ranks), func(b *testing.B) {
				sess, err := fluxgo.NewSession(fluxgo.SessionOptions{
					Size: ranks, Arity: arity, HBInterval: time.Hour,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer sess.Close()
				handles := make([]*fluxgo.Handle, ranks)
				for r := range handles {
					handles[r] = sess.Handle(r)
					defer handles[r].Close()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					name := fmt.Sprintf("bench-%d", i)
					for r := 0; r < ranks; r++ {
						wg.Add(1)
						go func(r int) {
							defer wg.Done()
							fluxgo.Barrier(handles[r], name, ranks)
						}(r)
					}
					wg.Wait()
				}
			})
		}
	}
}

// BenchmarkEventBroadcast measures the event plane: publish at a leaf,
// sequence at the root, deliver session-wide (receipt measured at the
// deepest rank).
func BenchmarkEventBroadcast(b *testing.B) {
	for _, ranks := range benchRanks {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: ranks, HBInterval: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			pub := sess.Handle(ranks - 1)
			defer pub.Close()
			rcv := sess.Handle(ranks - 1)
			defer rcv.Close()
			sub, err := rcv.Subscribe("bench")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pub.PublishEvent("bench.ev", nil); err != nil {
					b.Fatal(err)
				}
				<-sub.Chan()
			}
		})
	}
}

// BenchmarkRingLatencyByDistance characterizes the rank-addressed ring
// overlay: latency is linear in ring distance — the "high latency of a
// ring [that] is manageable and preferable over additional complexity"
// for debugging tools (paper, Sec. IV-A).
func BenchmarkRingLatencyByDistance(b *testing.B) {
	const ranks = 64
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: ranks, HBInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	h := sess.Handle(0)
	defer h.Close()
	for _, dist := range []int{1, 16, 32, 63} {
		b.Run(fmt.Sprintf("hops=%d", dist), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RPC("cmb.ping", uint32(dist%ranks), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulerHierarchyAblation compares the centralized
// traditional-paradigm scheduler against Flux's hierarchical scheme on
// the same synthetic workload — the scheduler-parallelism claim.
func BenchmarkSchedulerHierarchyAblation(b *testing.B) {
	const nodes = 64
	mkJobs := func(n int) []*sched.Job {
		jobs := make([]*sched.Job, n)
		for i := range jobs {
			jobs[i] = &sched.Job{
				ID:       fmt.Sprintf("j%d", i),
				Req:      fluxgo.Request{Nodes: 1 + i%4},
				Duration: time.Duration(1+i%13) * time.Second,
				Submit:   time.Duration(i%7) * time.Second,
			}
		}
		return jobs
	}
	for _, njobs := range []int{256, 1024} {
		for _, pol := range []sched.Policy{sched.FCFS{}, sched.EASY{}, sched.Conservative{}} {
			pol := pol
			if pol.Name() == "conservative" && njobs > 256 {
				continue // O(queue²) reservation planning: bench at 256 only
			}
			b.Run(fmt.Sprintf("policy=%s/jobs=%d", pol.Name(), njobs), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := sched.SimulateCentralized(nodes, sched.PartitionSpec{}, pol, mkJobs(njobs)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("centralized/jobs=%d", njobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sched.SimulateCentralized(nodes, sched.PartitionSpec{}, sched.EASY{}, mkJobs(njobs)); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, children := range []int{4, 16} {
			b.Run(fmt.Sprintf("hierarchical/jobs=%d/children=%d", njobs, children), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					leases, err := sched.Partition(nodes, sched.PartitionSpec{Children: children}, mkJobs(njobs))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := sched.SimulateHierarchy(leases, func() sched.Policy { return sched.EASY{} }); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKVSShardedMaster is the ablation for the paper's future-work
// item "distributing the KVS master itself": concurrent writers with
// disjoint namespaces commit against 1 (baseline), 2, and 4 shard
// masters spread over the session.
func BenchmarkKVSShardedMaster(b *testing.B) {
	const ranks = 16
	const writers = 16
	for _, nshards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", nshards), func(b *testing.B) {
			var mods []session.ModuleFactory
			for _, f := range kvs.ShardedFactories(nshards, kvs.ModuleConfig{}) {
				mods = append(mods, f)
			}
			sess, err := session.New(session.Options{Size: ranks, Modules: mods, Codec: true})
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			clients := make([]*kvs.ShardedClient, writers)
			for w := range clients {
				h := sess.Handle(w % ranks)
				defer h.Close()
				clients[w], err = kvs.NewShardedClient(h, nshards)
				if err != nil {
					b.Fatal(err)
				}
			}
			payload := make([]byte, 2048)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						key := fmt.Sprintf("w%d.iter%d", w, i)
						clients[w].Put(key, payload)
						if _, err := clients[w].Commit(); err != nil {
							b.Error(err)
						}
					}(w)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkSessionBringup measures comms-session creation and teardown —
// the cost of the unified job model's per-instance overlay network.
func BenchmarkSessionBringup(b *testing.B) {
	for _, ranks := range benchRanks {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sess, err := session.New(session.Options{Size: ranks})
				if err != nil {
					b.Fatal(err)
				}
				sess.Close()
			}
		})
	}
}

// BenchmarkWireCodec measures the message codec used on every TCP (and
// codec-pipe) hop.
func BenchmarkWireCodec(b *testing.B) {
	for _, size := range []int{8, 2048, 32768} {
		m := &wire.Message{
			Type:    wire.Request,
			Topic:   "kvs.put",
			Nodeid:  wire.NodeidAny,
			Seq:     123,
			Route:   []string{"h:1.1", "t:rank:3"},
			Payload: make([]byte, size),
		}
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				buf, err := wire.Marshal(m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := wire.Unmarshal(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
