package lockblock

import (
	"sync"
	"time"
)

// sendAfterUnlock stages under the lock and communicates outside it —
// the sanctioned pattern.
func (s *S) sendAfterUnlock() {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}

// selectWithDefault cannot block.
func (s *S) selectWithDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// goroutineDoesNotHold: the spawned literal runs without our lock.
func (s *S) goroutineDoesNotHold() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		<-s.ch
	}()
}

// bothPathsRelease: the union of the branches is lock-free.
func (s *S) bothPathsRelease(b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	time.Sleep(time.Millisecond)
}

// condWait is the one sanctioned wait-under-mutex: Cond.Wait unlocks
// while parked.
func condWait(mu *sync.Mutex, c *sync.Cond, ready *bool) {
	mu.Lock()
	for !*ready {
		c.Wait()
	}
	mu.Unlock()
}

// fireAndForgetSend: Handle.Send has no Recv sibling, so it is not
// connection-shaped and does not block.
func (s *S) fireAndForgetSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h.Send(nil)
}
