package obs

import "sync"

// Span is one hop of a traced message: a record of what one broker did
// with it — which link it left on (or which local service consumed it),
// how long it waited in the broker inbox, how long routing/handling
// took, and the errnum if the hop failed. Spans are keyed by the trace
// id carried in the message's wire-level trace context; Hop numbers the
// span within the trace and Parent names the hop that sent it here, so
// a trace's spans chain into the message's end-to-end path.
type Span struct {
	Trace   uint64 `json:"trace"`
	Rank    int    `json:"rank"`
	Hop     uint8  `json:"hop"`
	Parent  uint8  `json:"parent"`
	Kind    string `json:"kind"` // request | response | event
	Topic   string `json:"topic"`
	Link    string `json:"link"` // outbound link id, or local:<svc>
	Errnum  int32  `json:"errnum,omitempty"`
	QueueNS int64  `json:"queue_ns"` // wait in the broker inbox
	WorkNS  int64  `json:"work_ns"`  // routing / handling time
	StartNS int64  `json:"start_ns"` // wall-clock unix nanos
}

// DefaultTraceSpans is the default ring capacity of a broker's span
// buffer: enough to hold the complete recent history of a busy broker
// between flux trace invocations without unbounded growth.
const DefaultTraceSpans = 4096

// TraceBuffer is a bounded ring of spans. Append overwrites the oldest
// span once the ring is full; a nil or zero-capacity buffer drops
// everything, which is how tracing is disabled.
type TraceBuffer struct {
	mu    sync.Mutex
	spans []Span
	next  int
	full  bool
}

// NewTraceBuffer creates a ring holding up to capacity spans.
// capacity <= 0 yields a buffer that records nothing.
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		return &TraceBuffer{}
	}
	return &TraceBuffer{spans: make([]Span, capacity)}
}

// Append records one span, evicting the oldest when full.
func (t *TraceBuffer) Append(s Span) {
	if t == nil || len(t.spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans[t.next] = s
	t.next++
	if t.next == len(t.spans) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Snapshot returns the buffered spans in arrival order, filtered to the
// given trace id; id 0 returns everything.
func (t *TraceBuffer) Snapshot(id uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	appendIf := func(s Span) {
		if s.Trace != 0 && (id == 0 || s.Trace == id) {
			out = append(out, s)
		}
	}
	if t.full {
		for _, s := range t.spans[t.next:] {
			appendIf(s)
		}
	}
	for _, s := range t.spans[:t.next] {
		appendIf(s)
	}
	return out
}

// Len reports how many spans are currently buffered.
func (t *TraceBuffer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.spans)
	}
	return t.next
}
