package wire

// Wire errno table.
//
// Every error response crossing a CMB link carries one of these values
// (POSIX-flavoured, as in the C prototype). They live in the wire
// package because they are part of the protocol: a broker at one rank
// must be able to classify an errnum produced at another, so ad-hoc
// integer literals are forbidden — fluxlint's errno-discipline pass
// flags error responses whose errnum is not drawn from this table (or a
// named alias of it).
const (
	ErrnoNoEnt       int32 = 2   // no such key / object
	ErrnoIO          int32 = 5   // storage tier failure (persist / checkpoint)
	ErrnoNotDir      int32 = 20  // key path traverses a value object
	ErrnoInval       int32 = 22  // malformed request
	ErrnoNoSys       int32 = 38  // no comms module matches the topic
	ErrnoProto       int32 = 71  // protocol violation
	ErrnoShutdown    int32 = 108 // broker shutting down
	ErrnoTimedOut    int32 = 110 // RPC timeout
	ErrnoHostUnreach int32 = 113 // rank not reachable
	ErrnoStale       int32 = 116 // stale membership epoch (departed or unadmitted rank)
)

// OpErrnos declares, per request operation, the errno values its
// handler is allowed to emit in an error response. The table is the
// protocol's error contract: a client of barrier.enter can switch on
// exactly these values and know the switch is exhaustive. fluxlint's
// errno-completeness pass checks every request-dispatch switch against
// it — each dispatch arm may emit only its operation's declared errnos,
// and every operation declared here must have an arm.
//
// The sets cover transitive emissions: an op is charged with every
// errno reachable through the helpers its handler calls (so cmb.join
// declares ErrnoStale even though the fence lives in a helper).
// ErrnoShutdown, ErrnoTimedOut, and ErrnoHostUnreach are additionally
// produced by the routing layer for any op and are not repeated per
// entry.
var OpErrnos = map[string][]int32{
	// Broker built-ins (the "cmb" service).
	TopicPub:     {ErrnoInval},
	TopicPing:    {ErrnoInval},
	TopicInfo:    {},
	TopicStats:   {},
	TopicTrace:   {ErrnoInval},
	TopicLsmod:   {},
	TopicRmmod:   {ErrnoInval, ErrnoNoEnt},
	TopicJoin:    {ErrnoInval, ErrnoProto, ErrnoStale},
	TopicGrow:    {ErrnoInval, ErrnoNoSys},
	TopicShrink:  {ErrnoInval, ErrnoNoSys},
	TopicRestart: {ErrnoInval, ErrnoNoSys},
	TopicDmesg:   {ErrnoInval},
	TopicLogFwd:  {ErrnoInval},
	TopicDump:    {},

	// Barrier service.
	"barrier.enter": {ErrnoInval, ErrnoProto},
	"barrier.done":  {ErrnoProto},
	"barrier.stats": {},

	// Log aggregation service.
	"log.append": {ErrnoInval},
	"log.dump":   {ErrnoInval},

	// Resource service.
	"resrc.alloc": {ErrnoInval, ErrnoNoEnt, ErrnoProto},
	"resrc.free":  {ErrnoInval, ErrnoNoEnt, ErrnoProto},
	"resrc.avail": {ErrnoInval},

	// Process-group service.
	"group.join":     {ErrnoInval, ErrnoProto},
	"group.leave":    {ErrnoInval, ErrnoProto},
	"group.list":     {ErrnoInval},
	"group.lsgroups": {},

	// Job service.
	"job.submit": {ErrnoInval, ErrnoProto},
	"job.list":   {ErrnoInval},
	"job.cancel": {ErrnoInval, ErrnoNoEnt, ErrnoProto},
	"job.info":   {ErrnoInval, ErrnoNoEnt},

	// Heartbeat service.
	"hb.get":   {},
	"hb.pulse": {ErrnoInval, ErrnoProto},

	// KVS service.
	"kvs.put":        {ErrnoInval, ErrnoProto},
	"kvs.fence":      {ErrnoInval, ErrnoIO, ErrnoProto},
	"kvs.commit":     {ErrnoInval, ErrnoIO, ErrnoProto},
	"kvs.fencedone":  {ErrnoInval, ErrnoIO, ErrnoProto},
	"kvs.rootupdate": {ErrnoInval},
	"kvs.get":        {ErrnoInval, ErrnoNoEnt, ErrnoNotDir, ErrnoProto},
	"kvs.load":       {ErrnoInval, ErrnoNoEnt, ErrnoProto},
	"kvs.sync":       {ErrnoInval, ErrnoNoEnt},
	"kvs.getversion": {},
	"kvs.getroot":    {ErrnoInval},
	"kvs.checkpoint": {ErrnoIO, ErrnoNoSys},
	"kvs.storage":    {ErrnoNoSys},
	"kvs.stats":      {},
}

// Control-plane topics.
//
// The "cmb" service is the broker itself: its built-in request methods
// and the link-level control messages. These strings are protocol
// constants — a typo in one wedges a resync or silently drops a
// subscription — so fluxlint's wire-hygiene pass flags any "cmb."
// string literal outside this package: every use must round-trip
// through these declarations.
const (
	// ServiceCMB is the broker's built-in service name.
	ServiceCMB = "cmb"

	// TopicResync (control) asks a parent to replay events after Seq and
	// open the child's gated event link.
	TopicResync = "cmb.resync"
	// TopicSub / TopicUnsub (control) maintain a client link's
	// event-topic subscriptions broker-side.
	TopicSub   = "cmb.sub"
	TopicUnsub = "cmb.unsub"

	// TopicPub (request) publishes an event via the root sequencer.
	TopicPub = "cmb.pub"
	// TopicPing (request) echoes its payload with rank and hop count.
	TopicPing = "cmb.ping"
	// TopicInfo (request) reports rank, size, arity, and parent.
	TopicInfo = "cmb.info"
	// TopicStats (request) snapshots the broker counters and its
	// observability-registry metrics.
	TopicStats = "cmb.stats"
	// TopicTrace (request) returns the broker's buffered trace spans,
	// optionally filtered to one trace id.
	TopicTrace = "cmb.trace"
	// TopicLsmod / TopicRmmod (request) list and unload comms modules.
	TopicLsmod = "cmb.lsmod"
	TopicRmmod = "cmb.rmmod"

	// TopicJoin (request) is the membership join handshake: a joining
	// broker sends it as the first message on its new parent-tree link,
	// carrying session id, wire version, and proposed rank; the parent
	// admits the link (un-pends it) and replies with the current
	// membership epoch and live size.
	TopicJoin = "cmb.join"
	// TopicGrow / TopicShrink (request) ask the session to add ranks /
	// gracefully drain and remove ranks. Served at any broker whose
	// session installed membership hooks; ENOSYS otherwise.
	TopicGrow   = "cmb.grow"
	TopicShrink = "cmb.shrink"
	// TopicRestart (request) asks the session to bring a previously
	// killed or crashed rank back through the join path, cold-loading
	// its durable state from disk.
	TopicRestart = "cmb.restart"

	// TopicDmesg (request) returns a broker's buffered log records;
	// with the subtree flag set the broker tree-reduces its whole live
	// subtree first, so dmesg at the root is a session-wide gather.
	TopicDmesg = "cmb.dmesg"
	// TopicLogFwd (request, fire-and-forget) carries a batch of warn+
	// log records one hop up the overlay tree. Each interior broker
	// folds the batch into its aggregation ring and re-forwards, so
	// batches climb to the root hop by hop — TBON log aggregation.
	TopicLogFwd = "cmb.logfwd"
	// TopicDump (request) snapshots a broker's flight-recorder state:
	// recent log records, span ring, and metrics registry.
	TopicDump = "cmb.dump"

	// EventJoin / EventLeave are the epoch-tagged membership events
	// sequenced through the root: every broker folds them into its
	// membership view (current epoch, live size, tombstone set), so the
	// totally ordered event stream is what keeps views convergent.
	EventJoin  = "live.join"
	EventLeave = "live.leave"

	// EventHeartbeat is the hb module's pulse event. It lives here
	// because the broker core also listens for it: each heartbeat is
	// the cue for a broker to forward its pending warn+ log records
	// upstream, so the log plane ticks at the session's own cadence.
	EventHeartbeat = "hb"
)

// Metric names of the broker core's observability registry. They share
// the "cmb." namespace with the broker's wire topics (the registry is
// keyed by service, like the wire protocol), so they live here with the
// other cmb strings.
const (
	MetricRequestsRouted   = "cmb.requests_routed"
	MetricRequestsUpstream = "cmb.requests_upstream"
	MetricRequestsRing     = "cmb.requests_ring"
	MetricResponsesRouted  = "cmb.responses_routed"
	MetricEventsPublished  = "cmb.events_published"
	MetricEventsApplied    = "cmb.events_applied"
	MetricEventsDuplicate  = "cmb.events_duplicate"
	MetricEventSeqGaps     = "cmb.event_seq_gaps"
	MetricReparents        = "cmb.reparents"
	MetricSendErrors       = "cmb.send_errors"
	MetricInflightFailed   = "cmb.inflight_failed"

	// Membership-epoch plane: the current epoch gauge plus counters for
	// admitted joins, applied leaves, drains this broker performed on
	// departing ranks, and messages rejected at the boundary for carrying
	// a stale epoch.
	MetricEpoch        = "cmb.epoch"
	MetricJoins        = "cmb.joins"
	MetricLeaves       = "cmb.leaves"
	MetricDrains       = "cmb.drains"
	MetricEpochRejects = "cmb.epoch_rejects"

	// Silent-drop observability: every logf-only drop path in the
	// broker also counts, mirroring the epoch-discipline rule that a
	// dropped message must leave a measurable mark.
	MetricDropsUnknownType    = "cmb.drops_unknown_type"
	MetricDropsEmptyRoute     = "cmb.drops_empty_route"
	MetricDropsUnknownLink    = "cmb.drops_unknown_link"
	MetricDropsUnknownControl = "cmb.drops_unknown_control"

	// Log plane: records appended to the local ring, warn+ records
	// forwarded upstream, and forwarded batches received from children.
	MetricLogRecords      = "cmb.log_records"
	MetricLogForwarded    = "cmb.log_forwarded"
	MetricLogFwdBatches   = "cmb.log_fwd_batches"
	MetricFlightDumps     = "cmb.flight_dumps"

	// Encode-once event fan-out: frames encoded (one per event that had
	// at least one frame-capable child link) and sends served from an
	// already-encoded shared frame instead of a per-child marshal.
	MetricEventsFanoutEncodes = "cmb.events_fanout_encodes"
	MetricEventsFanoutReuse   = "cmb.events_fanout_reuse"

	MetricRequestQueueNS  = "cmb.request_queue_ns"
	MetricRouteRequestNS  = "cmb.route_request_ns"
	MetricRouteResponseNS = "cmb.route_response_ns"
	MetricApplyEventNS    = "cmb.apply_event_ns"

	// Per-link transport counters, suffixes under "link.<id>.": bytes on
	// the wire each way and frames that shared a coalesced flush (i.e.
	// syscalls saved by the batching writer).
	MetricLinkPrefix          = "link."
	MetricSuffixBytesSent     = ".bytes_sent"
	MetricSuffixBytesRecv     = ".bytes_recv"
	MetricSuffixFramesCoalesc = ".frames_coalesced"
)
