// Package wire defines the CMB message format and its binary codec.
//
// Following the paper, every message has a uniform multi-part layout
// consisting of at least a header frame and a JSON payload frame. The
// header identifies the recipient with a hierarchical topic namespace
// (e.g. a message sent to "kvs.put" is routed to the kvs comms module and
// internally to its handler for "put"), carries the message type
// (request / response / event / control), an addressed node id for the
// rank-addressed overlay, a sequence number (event ordering or RPC match
// tag), an error number for responses, and a route stack recording the
// hops a request traversed so the response can retrace them in reverse.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Type discriminates the four classes of CMB messages.
type Type uint8

// Message types.
const (
	Request  Type = 1 // RPC request, routed upstream or rank-addressed
	Response Type = 2 // RPC response, retraces the request's route stack
	Event    Type = 3 // published on the event plane, totally ordered
	Control  Type = 4 // broker-internal: hello, disconnect, reparenting
)

// String returns the conventional lower-case name of the type.
func (t Type) String() string {
	switch t {
	case Request:
		return "request"
	case Response:
		return "response"
	case Event:
		return "event"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Special node ids for request addressing.
const (
	// NodeidAny routes the request upstream in the tree to the first
	// comms module matching the topic, starting at the local rank.
	NodeidAny uint32 = 0xFFFFFFFF
	// NodeidUpstream behaves like NodeidAny but skips the local rank,
	// forcing at least one upstream hop. A module uses this to reach its
	// own upstream instance without matching itself.
	NodeidUpstream uint32 = 0xFFFFFFFE
	// MaxNodeid is the largest addressable concrete rank.
	MaxNodeid uint32 = 0xFFFFFFF0
)

// Message is a single CMB message.
type Message struct {
	Type    Type
	Topic   string   // hierarchical name, e.g. "kvs.put"
	Nodeid  uint32   // addressed rank, or NodeidAny / NodeidUpstream
	Seq     uint64   // event sequence number or RPC match tag
	Errnum  int32    // response status; 0 means success
	Route   []string // identity hop stack for response back-routing
	Payload []byte   // JSON frame

	// Epoch (codec v3) is the membership epoch the message was produced
	// under — the monotone generation number advanced by every rank
	// join/leave. Brokers stamp it at origination (when zero) and check it
	// at the receive boundary: traffic from a departed or not-yet-admitted
	// epoch is rejected with ErrnoStale instead of corrupting routes.
	// Zero means "unstamped" (pre-membership traffic, tests, tools);
	// brokers accept it and stamp on the next hop.
	Epoch uint32

	// Trace context (codec v2). TraceID names the end-to-end exchange
	// the message belongs to; it is assigned by the first broker to
	// route the message (when zero) and then propagated unchanged, so
	// every hop of a request, its response, and any re-forwarding
	// records spans under one id. Hops is the span index: each broker
	// increments it as it routes the message, and copies the previous
	// value into Parent, so a hop's span names the hop that sent it.
	// Responses inherit the request's trace context and continue its
	// hop numbering.
	TraceID uint64
	Parent  uint8
	Hops    uint8

	// Pool/ownership state (see pool.go). A zero Message is an ordinary
	// GC-managed value: pooled marks a Message obtained from Get, buf is
	// the receive buffer Payload aliases when the message owns one, and
	// armed marks a message handed off to a single transport writer,
	// which will Release it after encoding. routeScratch caches the
	// route backing array across recycles; relState backs the
	// double-release guard in debuglock builds.
	pooled       bool
	armed        bool
	buf          []byte
	routeScratch []string
	relState     int32
}

// Service returns the first component of the hierarchical topic — the
// comms module name the message is addressed to. For "kvs.put" it
// returns "kvs".
func (m *Message) Service() string {
	if i := strings.IndexByte(m.Topic, '.'); i >= 0 {
		return m.Topic[:i]
	}
	return m.Topic
}

// Method returns the remainder of the topic after the service name, the
// module-internal handler name. For "kvs.put" it returns "put"; for a
// bare service topic it returns "".
func (m *Message) Method() string {
	if i := strings.IndexByte(m.Topic, '.'); i >= 0 {
		return m.Topic[i+1:]
	}
	return ""
}

// PushRoute appends a hop identity to the route stack.
func (m *Message) PushRoute(id string) { m.Route = append(m.Route, id) }

// PopRoute removes and returns the most recently pushed hop identity.
// It reports false when the stack is empty.
func (m *Message) PopRoute() (string, bool) {
	if len(m.Route) == 0 {
		return "", false
	}
	id := m.Route[len(m.Route)-1]
	m.Route = m.Route[:len(m.Route)-1]
	return id, true
}

// Copy returns a deep copy of the message. Brokers that fan a message out
// to multiple links must copy it so per-link route mutations do not alias.
// The copy is an ordinary GC-managed value with no pool ownership,
// whatever the state of the original.
func (m *Message) Copy() *Message {
	c := *m
	c.pooled, c.armed, c.buf, c.routeScratch, c.relState = false, false, nil, nil, 0
	if m.Route != nil {
		c.Route = append([]string(nil), m.Route...)
	}
	if m.Payload != nil {
		c.Payload = append([]byte(nil), m.Payload...)
	}
	return &c
}

// PackJSON marshals v into the payload frame.
func (m *Message) PackJSON(v any) error {
	if raw, ok := v.(RawBody); ok {
		// Pre-encoded (binary-coded) body: install verbatim.
		m.Payload = raw
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: pack %s: %w", m.Topic, err)
	}
	m.Payload = b
	return nil
}

// UnpackJSON unmarshals the payload frame into v.
func (m *Message) UnpackJSON(v any) error {
	if len(m.Payload) == 0 {
		return fmt.Errorf("wire: unpack %s: empty payload", m.Topic)
	}
	if err := json.Unmarshal(m.Payload, v); err != nil {
		return fmt.Errorf("wire: unpack %s: %w", m.Topic, err)
	}
	return nil
}

// errorBody is the JSON payload convention for failed responses.
type errorBody struct {
	Error string `json:"error"`
}

// NewRequest builds a request addressed to nodeid with the given topic
// and JSON-marshalable body (nil for an empty {} payload).
func NewRequest(topic string, nodeid uint32, body any) (*Message, error) {
	m := &Message{Type: Request, Topic: topic, Nodeid: nodeid}
	if body == nil {
		body = struct{}{}
	}
	if err := m.PackJSON(body); err != nil {
		return nil, err
	}
	return m, nil
}

// NewResponse builds a success response mirroring req's topic, match tag,
// route stack, and trace context (the response's hops continue the
// request's numbering, so one trace covers the full round trip).
func NewResponse(req *Message, body any) (*Message, error) {
	m := &Message{
		Type:    Response,
		Topic:   req.Topic,
		Seq:     req.Seq,
		Route:   append([]string(nil), req.Route...),
		Epoch:   req.Epoch,
		TraceID: req.TraceID,
		Parent:  req.Parent,
		Hops:    req.Hops,
	}
	if body == nil {
		body = struct{}{}
	}
	if err := m.PackJSON(body); err != nil {
		return nil, err
	}
	return m, nil
}

// NewErrorResponse builds a failure response with the given errnum
// (must be nonzero) and human-readable message.
func NewErrorResponse(req *Message, errnum int32, msg string) *Message {
	if errnum == 0 {
		errnum = 1
	}
	m := &Message{
		Type:    Response,
		Topic:   req.Topic,
		Seq:     req.Seq,
		Errnum:  errnum,
		Route:   append([]string(nil), req.Route...),
		Epoch:   req.Epoch,
		TraceID: req.TraceID,
		Parent:  req.Parent,
		Hops:    req.Hops,
	}
	b, err := json.Marshal(errorBody{Error: msg})
	if err != nil {
		// json.Marshal of a string cannot realistically fail, but a
		// response must never ship an empty payload: fall back to a
		// preencoded body so the peer still decodes a message.
		b = staticErrorBody
	}
	m.Payload = b
	return m
}

// staticErrorBody is the preencoded fallback payload for error
// responses whose human-readable message failed to encode.
var staticErrorBody = []byte(`{"error":"error message unencodable"}`)

// RPCError is the decoded form of a failed response.
type RPCError struct {
	Topic  string
	Errnum int32
	Msg    string
}

// Error implements the error interface.
func (e *RPCError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("%s: %s (errnum %d)", e.Topic, e.Msg, e.Errnum)
	}
	return fmt.Sprintf("%s: errnum %d", e.Topic, e.Errnum)
}

// IsErrnum reports whether err is an RPCError carrying errnum.
func IsErrnum(err error, errnum int32) bool {
	var re *RPCError
	return errors.As(err, &re) && re.Errnum == errnum
}

// ResponseError converts a failed response into an *RPCError, or returns
// nil for a success response.
func ResponseError(m *Message) error {
	if m.Errnum == 0 {
		return nil
	}
	e := &RPCError{Topic: m.Topic, Errnum: m.Errnum}
	var body errorBody
	if err := json.Unmarshal(m.Payload, &body); err == nil {
		e.Msg = body.Error
	}
	return e
}

// NewEvent builds an event message for the given topic and body. The
// sequence number is assigned by the session root when published.
func NewEvent(topic string, body any) (*Message, error) {
	m := &Message{Type: Event, Topic: topic, Nodeid: NodeidAny}
	if body == nil {
		body = struct{}{}
	}
	if err := m.PackJSON(body); err != nil {
		return nil, err
	}
	return m, nil
}

// Codec constants.
const (
	magic = 0xF1
	// version 2 added the fixed trace-context fields (TraceID, Parent,
	// Hops) to the header; version 3 added the membership epoch. All
	// brokers of a session run one binary, so no compatibility shim for
	// older peers is kept: a v1/v2 frame is rejected with ErrBadVer.
	version = 3
	// MaxMessageSize bounds a single encoded message; oversized messages
	// are rejected by both Marshal and Unmarshal to protect brokers.
	MaxMessageSize = 64 << 20
	// headerLen is the fixed-size prefix: magic, version, type,
	// nodeid(4), seq(8), errnum(4), epoch(4), traceid(8), parent(1),
	// hops(1).
	headerLen = 3 + 4 + 8 + 4 + 4 + 8 + 1 + 1
)

// Version returns the codec version this binary speaks. The cmb.join
// membership handshake carries it so a joining broker built from a
// different protocol generation is rejected before admission.
func Version() int { return version }

// Codec errors.
var (
	ErrBadMagic  = errors.New("wire: bad magic byte")
	ErrBadVer    = errors.New("wire: unsupported version")
	ErrTruncated = errors.New("wire: truncated message")
	ErrTooLarge  = errors.New("wire: message exceeds size limit")
)

// encodedSize returns the exact encoded length of m.
func encodedSize(m *Message) int {
	size := headerLen
	size += uvarintLen(uint64(len(m.Topic))) + len(m.Topic)
	size += uvarintLen(uint64(len(m.Route)))
	for _, r := range m.Route {
		size += uvarintLen(uint64(len(r))) + len(r)
	}
	size += uvarintLen(uint64(len(m.Payload))) + len(m.Payload)
	return size
}

// Marshal encodes m into a self-contained byte slice.
//
// Layout: magic, version, type, then uvarint-framed fields:
// nodeid(u32 LE), seq(u64 LE), errnum(i32 zigzag-free LE),
// epoch(u32 LE), traceid(u64 LE), parent(u8), hops(u8),
// topic(len+bytes), nroutes(uvarint) × route(len+bytes),
// payload(len+bytes).
func Marshal(m *Message) ([]byte, error) {
	size := encodedSize(m)
	if size > MaxMessageSize {
		return nil, ErrTooLarge
	}
	return marshalAppend(make([]byte, 0, size), m), nil
}

// MarshalAppend appends the encoding of m to dst and returns the
// extended slice, allocating only when dst lacks capacity. It is the
// alloc-free encode path for transport writers with a reusable scratch
// buffer.
func MarshalAppend(dst []byte, m *Message) ([]byte, error) {
	if encodedSize(m) > MaxMessageSize {
		return dst, ErrTooLarge
	}
	return marshalAppend(dst, m), nil
}

func marshalAppend(buf []byte, m *Message) []byte {
	buf = append(buf, magic, version, byte(m.Type))
	buf = binary.LittleEndian.AppendUint32(buf, m.Nodeid)
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Errnum))
	buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, m.TraceID)
	buf = append(buf, m.Parent, m.Hops)
	buf = appendBytes(buf, []byte(m.Topic))
	buf = binary.AppendUvarint(buf, uint64(len(m.Route)))
	for _, r := range m.Route {
		buf = appendBytes(buf, []byte(r))
	}
	buf = appendBytes(buf, m.Payload)
	return buf
}

// Unmarshal decodes a message previously produced by Marshal.
//
// Decoding is zero-copy: Payload aliases data, and the topic and route
// strings are carved from a single combined allocation. The caller must
// therefore not modify or reuse data while the message (or anything
// retaining its Payload) is live; a consumer that outlives the buffer
// calls Detach. Transport readers with pooled receive buffers use
// UnmarshalPooled instead, which ties the buffer's lifetime to the
// message.
func Unmarshal(data []byte) (*Message, error) {
	m := &Message{}
	if err := decodeInto(m, data); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalPooled decodes data into a pooled Message (see Get) and, on
// success, adopts data as the message's receive buffer: Release returns
// both to their pools. data must come from GetBuf. On error the buffer
// is not adopted and the caller still owns it.
func UnmarshalPooled(data []byte) (*Message, error) {
	m := Get()
	if err := decodeInto(m, data); err != nil {
		m.pooled = false // abandon partially-filled message to the GC
		return nil, err
	}
	m.buf = data
	return m, nil
}

func decodeInto(m *Message, data []byte) error {
	if len(data) > MaxMessageSize {
		return ErrTooLarge
	}
	if len(data) < headerLen {
		return ErrTruncated
	}
	if data[0] != magic {
		return ErrBadMagic
	}
	if data[1] != version {
		return ErrBadVer
	}
	m.Type = Type(data[2])
	if m.Type < Request || m.Type > Control {
		return fmt.Errorf("wire: invalid message type %d", data[2])
	}
	p := data[3:]
	m.Nodeid = binary.LittleEndian.Uint32(p)
	m.Seq = binary.LittleEndian.Uint64(p[4:])
	m.Errnum = int32(binary.LittleEndian.Uint32(p[12:]))
	m.Epoch = binary.LittleEndian.Uint32(p[16:])
	m.TraceID = binary.LittleEndian.Uint64(p[20:])
	m.Parent = p[28]
	m.Hops = p[29]
	p = p[30:]

	topic, p, err := readBytes(p)
	if err != nil {
		return err
	}

	nroutes, n := binary.Uvarint(p)
	if n <= 0 {
		return ErrTruncated
	}
	p = p[n:]
	if nroutes > uint64(len(p)) { // each route costs at least 1 byte
		return ErrTruncated
	}

	// Validate the route region and total its string bytes, so topic and
	// routes can share one string allocation below.
	routes := p
	strBytes := len(topic)
	for i := uint64(0); i < nroutes; i++ {
		var r []byte
		r, p, err = readBytes(p)
		if err != nil {
			return err
		}
		strBytes += len(r)
	}

	payload, p, err := readBytes(p)
	if err != nil {
		return err
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(p))
	}

	// One combined allocation backs the topic and every route string, so
	// none of them alias the (possibly recycled) receive buffer.
	var sb strings.Builder
	sb.Grow(strBytes)
	sb.Write(topic)
	q := routes
	for i := uint64(0); i < nroutes; i++ {
		var r []byte
		r, q, _ = readBytes(q)
		sb.Write(r)
	}
	s := sb.String()
	m.Topic = s[:len(topic)]
	off := len(topic)
	if nroutes > 0 {
		if m.pooled && uint64(cap(m.routeScratch)) >= nroutes {
			m.Route = m.routeScratch[:0]
		} else {
			m.Route = make([]string, 0, nroutes)
		}
		q = routes
		for i := uint64(0); i < nroutes; i++ {
			var r []byte
			r, q, _ = readBytes(q)
			m.Route = append(m.Route, s[off:off+len(r)])
			off += len(r)
		}
	}

	if len(payload) > 0 {
		m.Payload = payload // aliases data; see Unmarshal doc
	}
	return nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readBytes(p []byte) (b, rest []byte, err error) {
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, nil, ErrTruncated
	}
	p = p[w:]
	if n > uint64(len(p)) {
		return nil, nil, ErrTruncated
	}
	return p[:n], p[n:], nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
