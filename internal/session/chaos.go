package session

import (
	"fmt"

	"fluxgo/internal/cas"
	"fluxgo/internal/obs"
	"fluxgo/internal/transport"
)

// Chaos is the session-level fault-injection controller, available when
// the session is built with Options.FaultInjection. It owns a registry
// of every inter-broker link endpoint, wrapped in transport.Faulty, and
// exposes the failure vocabulary of the chaos tests:
//
//   - per-link loss, latency, duplication (SetLinkFaults)
//   - network partitions between rank sets (Partition / Heal)
//   - silent rank crashes, where peers observe no EOF (Crash), with
//     failure detection modelled separately (Sever)
//
// Faults are directional: SetLinkFaults(a, b, f) shapes only the a→b
// traffic. All randomized decisions derive from the session's FaultSeed,
// so a failing chaos run replays exactly from its seed.
type Chaos struct {
	s *Session

	// endpoints[owner][peer] holds the fault injectors carrying traffic
	// from owner toward peer (tree request, tree event, and ring planes
	// all register here). Guarded by s.mu: registration happens during
	// wiring and re-parenting, control during tests.
	endpoints map[int]map[int][]*transport.Faulty

	// storage[rank] is the simulated-disk fault injector backing rank's
	// durable state, when the test registered one (RegisterStorage).
	// Crash(rank) crashes it along with the broker — losing everything
	// past the last fsync watermark — and Session.Restart revives it
	// before the cold reload. Guarded by s.mu.
	storage map[int]*cas.FaultyFS

	seed     int64
	seedStep int64
}

func newChaos(s *Session, seed int64) *Chaos {
	return &Chaos{
		s:         s,
		endpoints: map[int]map[int][]*transport.Faulty{},
		storage:   map[int]*cas.FaultyFS{},
		seed:      seed,
	}
}

// RegisterStorage associates a simulated-disk fault injector with rank,
// so Crash(rank) also crashes the rank's storage (truncating unsynced
// writes) and Session.Restart(rank) revives it for the cold reload.
func (c *Chaos) RegisterStorage(rank int, fs *cas.FaultyFS) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	c.storage[rank] = fs
}

// Storage returns the fault injector registered for rank's durable
// state, or nil.
func (c *Chaos) Storage(rank int) *cas.FaultyFS {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.storage[rank]
}

// SetStorageFaults shapes the I/O-level fault rates (torn writes, fsync
// failures, short reads, bit flips) of rank's registered storage. A
// no-op when no storage is registered for rank.
func (c *Chaos) SetStorageFaults(rank int, f cas.FSFaults) {
	if fs := c.Storage(rank); fs != nil {
		fs.SetFaults(f)
	}
}

// reviveStorage brings rank's crashed storage back for a restart.
func (c *Chaos) reviveStorage(rank int) {
	if fs := c.Storage(rank); fs != nil {
		fs.Revive()
	}
}

// wrap installs fault injectors on both endpoints of a link between
// ranks a and b and registers them. Called under no lock from session
// wiring paths.
func (c *Chaos) wrap(a, b int, ca, cb transport.Conn) (transport.Conn, transport.Conn) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	fa := transport.NewFaulty(ca, c.nextSeedLocked())
	fb := transport.NewFaulty(cb, c.nextSeedLocked())
	c.registerLocked(a, b, fa)
	c.registerLocked(b, a, fb)
	return fa, fb
}

// nextSeedLocked derives the next per-endpoint RNG seed. Caller holds s.mu.
func (c *Chaos) nextSeedLocked() int64 {
	c.seedStep++
	return c.seed*1_000_003 + c.seedStep
}

func (c *Chaos) registerLocked(owner, peer int, f *transport.Faulty) {
	m := c.endpoints[owner]
	if m == nil {
		m = map[int][]*transport.Faulty{}
		c.endpoints[owner] = m
	}
	m[peer] = append(m[peer], f)
}

// SetLinkFaults applies f to all traffic flowing from rank `from` toward
// rank `to` (every overlay plane sharing that rank pair). Passing the
// zero Faults heals the direction.
func (c *Chaos) SetLinkFaults(from, to int, f transport.Faults) {
	c.s.mu.Lock()
	eps := append([]*transport.Faulty(nil), c.endpoints[from][to]...)
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.SetFaults(f)
	}
}

// SetAllFaults applies f to every link direction between live ranks —
// background noise for soak tests (e.g. 1% loss everywhere).
func (c *Chaos) SetAllFaults(f transport.Faults) {
	c.s.mu.Lock()
	var eps []*transport.Faulty
	for owner, peers := range c.endpoints {
		if c.s.dead[owner] {
			continue
		}
		for peer, list := range peers {
			if c.s.dead[peer] {
				continue
			}
			eps = append(eps, list...)
		}
	}
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.SetFaults(f)
	}
}

// Partition blackholes every link crossing the cut between group and the
// rest of the session, in both directions: the two sides observe mutual
// silence, exactly like a switch failure — no EOF, no error, nothing.
// Heal (or SetLinkFaults per direction) removes it.
func (c *Chaos) Partition(group ...int) {
	in := map[int]bool{}
	for _, r := range group {
		in[r] = true
	}
	c.s.mu.Lock()
	var eps []*transport.Faulty
	for owner, peers := range c.endpoints {
		for peer, list := range peers {
			if in[owner] != in[peer] {
				eps = append(eps, list...)
			}
		}
	}
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.SetFaults(transport.Faults{Blackhole: true})
	}
}

// Heal clears every fault on every link between live ranks. Links that
// touch crashed ranks stay blackholed: a dead peer does not come back.
func (c *Chaos) Heal() {
	c.SetAllFaults(transport.Faults{})
}

// Crash kills the broker at rank the hard way: every link touching it is
// blackholed first — in both directions — so its peers observe pure
// silence rather than the EOFs a graceful Kill produces; the rank's
// registered storage (if any) crashes with it, truncating everything
// past its last fsync watermark; and then the broker stops. Until Sever
// models failure detection, nothing in the session learns of the death:
// in-flight RPCs through the rank are bounded only by their deadlines,
// which is precisely the window the no-hang guarantee is about.
// Crashing an already-dead rank is a no-op.
//
// Crashing rank 0 is refused for the same reason Session.Kill refuses
// it: there is no root fail-over, so the session would be left without
// its event sequencer for the rest of its life.
func (c *Chaos) Crash(rank int) error {
	if rank == 0 {
		return fmt.Errorf("session: rank 0 cannot be crashed — no root fail-over (use Close to end the session)")
	}
	if !c.s.markDead(rank) {
		return nil
	}
	c.s.mu.Lock()
	var eps []*transport.Faulty
	for _, list := range c.endpoints[rank] {
		eps = append(eps, list...)
	}
	for owner, peers := range c.endpoints {
		if owner == rank {
			continue
		}
		eps = append(eps, peers[rank]...)
	}
	fs := c.storage[rank]
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.SetFaults(transport.Faults{Blackhole: true})
	}
	if fs != nil {
		if err := fs.Crash(); err != nil {
			c.s.logAt(obs.LevelWarn, "session: chaos: rank %d storage crash: %v", rank, err)
		}
	}
	c.s.logAt(obs.LevelWarn, "session: chaos: rank %d crashed silently", rank)
	c.s.flightDump(fmt.Sprintf("crash-rank%d", rank))
	c.s.Broker(rank).Shutdown()
	return nil
}

// Sever models the failure detector noticing a crashed rank: the peers'
// endpoints toward it are closed, surfacing EOF so their brokers run
// link-down cleanup — failing in-flight routed RPCs with EHOSTUNREACH
// and triggering re-parenting of the crashed rank's children.
func (c *Chaos) Sever(rank int) {
	c.s.mu.Lock()
	var eps []*transport.Faulty
	for owner, peers := range c.endpoints {
		if owner == rank {
			continue
		}
		eps = append(eps, peers[rank]...)
		delete(peers, rank)
	}
	delete(c.endpoints, rank)
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	c.s.healRing(rank)
	c.s.logAt(obs.LevelWarn, "session: chaos: rank %d severed (failure detected)", rank)
	c.s.flightDump(fmt.Sprintf("sever-rank%d", rank))
}

// CrashAndSever is Crash immediately followed by Sever: a crash whose
// detection is instantaneous. Most tests separate the two to exercise
// the silent window in between.
func (c *Chaos) CrashAndSever(rank int) error {
	if err := c.Crash(rank); err != nil {
		return err
	}
	c.Sever(rank)
	return nil
}

// forget closes and deregisters every fault-injected endpoint touching
// rank, in both directions. Session.Restart calls it before re-wiring:
// a crashed rank's old blackholed endpoints must not linger in the
// registry or later blanket fault operations would target dead conns.
func (c *Chaos) forget(rank int) {
	c.s.mu.Lock()
	var eps []*transport.Faulty
	for _, list := range c.endpoints[rank] {
		eps = append(eps, list...)
	}
	delete(c.endpoints, rank)
	for owner, peers := range c.endpoints {
		if owner == rank {
			continue
		}
		eps = append(eps, peers[rank]...)
		delete(peers, rank)
	}
	c.s.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}
