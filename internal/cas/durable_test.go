package cas

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"fluxgo/internal/clock"
)

// valueObj returns the encoded bytes of a small leaf object.
func valueObj(s string) []byte {
	return NewValue([]byte(s)).Encode()
}

func TestWALAppendRecover(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walName)
	w, recs, err := OpenWAL(DirFS(), path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	payloads := []string{"alpha", "", "a much longer payload with some length to it", "z"}
	for _, p := range payloads {
		if _, err := w.Append(recObject, []byte(p)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, recs, err := OpenWAL(DirFS(), path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if len(recs) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(payloads))
	}
	for i, rec := range recs {
		if string(rec.Payload) != payloads[i] {
			t.Fatalf("record %d: got %q want %q", i, rec.Payload, payloads[i])
		}
	}
}

// TestWALTruncationSweep cuts a log at every byte boundary and asserts
// recovery always lands on a consistent prefix: exactly the records
// whose frames fit entirely below the cut, never a partial one.
func TestWALTruncationSweep(t *testing.T) {
	payloads := [][]byte{
		[]byte("first"),
		{},
		[]byte("second-record-with-more-bytes"),
		{0xff, 0x00, 0xde, 0xad},
		[]byte("tail"),
	}
	var full []byte
	var ends []int // cumulative frame end offsets
	for _, p := range payloads {
		full = AppendRecord(full, recObject, p)
		ends = append(ends, len(full))
	}

	fsys := DirFS()
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, walName)
		f, err := fsys.Create(path)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := f.Write(full[:cut]); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		wantRecs := 0
		wantPrefix := 0
		for i, end := range ends {
			if end <= cut {
				wantRecs = i + 1
				wantPrefix = end
			}
		}

		w, recs, err := OpenWAL(fsys, path)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if len(recs) != wantRecs {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), wantRecs)
		}
		for i, rec := range recs {
			if string(rec.Payload) != string(payloads[i]) {
				t.Fatalf("cut %d: record %d corrupt", cut, i)
			}
		}
		if sz, err := fsys.Size(path); err != nil || sz != int64(wantPrefix) {
			t.Fatalf("cut %d: file size %d after recovery, want %d (err %v)", cut, sz, wantPrefix, err)
		}
		// The recovered log must accept appends and survive a reopen.
		if _, err := w.Append(recRoot, []byte("post")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		_, recs2, err := OpenWAL(fsys, path)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(recs2) != wantRecs+1 || string(recs2[wantRecs].Payload) != "post" {
			t.Fatalf("cut %d: reopen recovered %d records, want %d", cut, len(recs2), wantRecs+1)
		}
	}
}

func TestDurableCommitRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(nil, dir, clock.Real())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var lastRoot Ref
	var refs []Ref
	for i := 1; i <= 5; i++ {
		ref := d.Store().PutRaw(valueObj(fmt.Sprintf("val-%d", i)))
		refs = append(refs, ref)
		lastRoot = ref
		if err := d.Commit(ref, uint64(i)); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d2, err := OpenDurable(nil, dir, clock.Real())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	root, version := d2.Root()
	if root != lastRoot || version != 5 {
		t.Fatalf("recovered root %s v%d, want %s v5", root.Short(), version, lastRoot.Short())
	}
	for i, ref := range refs {
		if !d2.Store().Has(ref) {
			t.Fatalf("object %d missing after recovery", i)
		}
	}
	st := d2.Stats()
	if st.RecoveredObjects != len(refs) {
		t.Fatalf("stats: recovered %d objects, want %d", st.RecoveredObjects, len(refs))
	}
}

func TestDurableCheckpointAndReplay(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(nil, dir, clock.Real())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	r1 := d.Store().PutRaw(valueObj("before-checkpoint"))
	if err := d.Commit(r1, 1); err != nil {
		t.Fatalf("commit: %v", err)
	}
	cp, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if cp.Objects != 1 {
		t.Fatalf("checkpoint packed %d objects, want 1", cp.Objects)
	}
	if sz := d.wal.Size(); sz != 0 {
		t.Fatalf("wal holds %d bytes after checkpoint, want 0", sz)
	}
	r2 := d.Store().PutRaw(valueObj("after-checkpoint"))
	if err := d.Commit(r2, 2); err != nil {
		t.Fatalf("commit 2: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d2, err := OpenDurable(nil, dir, clock.Real())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	root, version := d2.Root()
	if root != r2 || version != 2 {
		t.Fatalf("recovered root v%d, want v2 (pack + wal replay)", version)
	}
	if !d2.Store().Has(r1) || !d2.Store().Has(r2) {
		t.Fatal("objects missing after pack+wal recovery")
	}
}

func TestDurableCrashLosesOnlyUnsynced(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultyFS(DirFS(), 1)
	d, err := OpenDurable(ffs, dir, clock.Real())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	acked := d.Store().PutRaw(valueObj("acked"))
	if err := d.Commit(acked, 1); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// Written through but never synced: may not survive the crash.
	d.Store().PutRaw(valueObj("unsynced"))

	if err := ffs.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := d.Close(); err == nil {
		t.Fatal("close succeeded under crash latch")
	}
	ffs.Revive()

	d2, err := OpenDurable(ffs, dir, clock.Real())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer d2.Close()
	root, version := d2.Root()
	if root != acked || version != 1 {
		t.Fatalf("acked commit lost: recovered v%d", version)
	}
	if !d2.Store().Has(acked) {
		t.Fatal("acked object lost")
	}
}

// TestDurableAckedCommitsSurviveFaultySoak hammers the tier with torn
// writes, fsync failures, and a final power loss, asserting the
// contract Commit sells: anything acknowledged is recovered.
func TestDurableAckedCommitsSurviveFaultySoak(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultyFS(DirFS(), seed)
			d, err := OpenDurable(ffs, dir, clock.Real())
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			ffs.SetFaults(FSFaults{TornWrite: 0.25, SyncFail: 0.25})

			rng := rand.New(rand.NewSource(seed))
			ackedRoots := map[uint64]Ref{}
			var ackedObjs []Ref
			maxAcked := uint64(0)
			for i := 1; i <= 60; i++ {
				ref := d.Store().PutRaw(valueObj(fmt.Sprintf("seed%d-obj%d", seed, i)))
				if rng.Intn(4) == 0 {
					continue // object without a commit this round
				}
				v := maxAcked + 1
				if err := d.Commit(ref, v); err != nil {
					continue // not acknowledged; free to vanish
				}
				ackedRoots[v] = ref
				ackedObjs = append(ackedObjs, ref)
				maxAcked = v
			}
			ffs.SetFaults(FSFaults{})
			if err := ffs.Crash(); err != nil {
				t.Fatalf("crash: %v", err)
			}
			ffs.Revive()

			d2, err := OpenDurable(ffs, dir, clock.Real())
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer d2.Close()
			root, version := d2.Root()
			if version < maxAcked {
				t.Fatalf("recovered v%d < last acked v%d", version, maxAcked)
			}
			if want, ok := ackedRoots[version]; ok && root != want {
				t.Fatalf("recovered root mismatch at v%d", version)
			}
			for i, ref := range ackedObjs {
				if !d2.Store().Has(ref) {
					t.Fatalf("acked object %d lost (of %d; recovered v%d)", i, len(ackedObjs), version)
				}
			}
		})
	}
}

func TestDurableHealAfterTornWrites(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultyFS(DirFS(), 7)
	d, err := OpenDurable(ffs, dir, clock.Real())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	ffs.SetFaults(FSFaults{TornWrite: 1})
	ref := d.Store().PutRaw(valueObj("through-the-storm"))
	if d.Stats().SinkErr == "" {
		t.Fatal("torn write-through did not latch sinkErr")
	}
	if err := d.Commit(ref, 1); err == nil {
		t.Fatal("commit succeeded while every write tears")
	}
	ffs.SetFaults(FSFaults{})
	if err := d.Commit(ref, 1); err != nil {
		t.Fatalf("commit after faults cleared: %v (heal checkpoint should recover)", err)
	}
	if d.Stats().SinkErr != "" {
		t.Fatal("sinkErr survived a successful heal")
	}
	if _, version := d.Root(); version != 1 {
		t.Fatalf("version %d after healed commit", version)
	}
}

func TestDurableReadMissLoad(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(nil, dir, clock.Real())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	data := valueObj("evict-me")
	ref := d.Store().PutRaw(data)
	if err := d.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if n := d.Store().Expire(0); n != 1 {
		t.Fatalf("expired %d entries, want 1", n)
	}
	if _, ok := d.Store().GetRaw(ref); ok {
		t.Fatal("object still in memory after expiry")
	}
	got, ok := d.Load(ref)
	if !ok || string(got) != string(data) {
		t.Fatalf("disk load failed (ok=%v)", ok)
	}
	if _, ok := d.Store().GetRaw(ref); !ok {
		t.Fatal("disk load did not repopulate the store")
	}
	if st := d.Stats(); st.DiskLoads != 1 {
		t.Fatalf("DiskLoads = %d, want 1", st.DiskLoads)
	}

	// Load after a checkpoint must follow the object into the pack.
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	d.Store().Expire(0)
	if _, ok := d.Load(ref); !ok {
		t.Fatal("disk load from pack failed")
	}
}

func TestFaultyFSCrashTruncatesToWatermark(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultyFS(DirFS(), 3)
	path := filepath.Join(dir, "data")
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("durable...")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if _, err := f.Write([]byte("doomed")); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if _, err := ffs.ReadFile(path); err != ErrCrashed {
		t.Fatalf("read under crash latch: %v, want ErrCrashed", err)
	}
	ffs.Revive()
	got, err := ffs.ReadFile(path)
	if err != nil {
		t.Fatalf("read after revive: %v", err)
	}
	if string(got) != "durable..." {
		t.Fatalf("crash kept %q, want the synced prefix only", got)
	}
	if st := ffs.Stats(); st.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", st.Crashes)
	}
}
