package tools

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/modules/jobsvc"
	"fluxgo/internal/modules/resrc"
	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int, tools wexec.HandleRegistry) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size: size,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			hb.Factory(hb.Config{Interval: time.Hour}),
			resrc.Factory(resrc.Config{}),
			wexec.Factory(wexec.Config{Tools: tools}),
			jobsvc.Factory(jobsvc.Config{}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestAttachToolToRunningJob(t *testing.T) {
	s := newSession(t, 4, BuiltinTools())
	h := s.Handle(1)
	defer h.Close()

	// A long-running job on 3 of 4 ranks.
	id, err := jobsvc.Submit(h, jobsvc.Spec{Program: "block", Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job is running (its rank record is committed).
	deadline := time.After(20 * time.Second)
	for {
		info, err := jobsvc.GetInfo(h, id)
		if err == nil && info.State == jobsvc.StateRunning {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Co-location query.
	ranks, err := JobRanks(h, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 3 {
		t.Fatalf("job ranks %v", ranks)
	}

	// Attach the jobinfo tool: runs on exactly the job's ranks, reads
	// the job's KVS record through its own handle.
	res, err := Attach(ctx(t), h, "tool-1", "jobinfo", id)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "complete" || res.NTasks != 3 {
		t.Fatalf("tool result %+v", res)
	}
	for _, r := range ranks {
		stdout, _, code, err := wexec.Output(h, "tool-1", r)
		if err != nil || code != 0 {
			t.Fatalf("rank %d: %v code %d", r, err, code)
		}
		want := fmt.Sprintf("rank %d: job %s program=block nodes=3 state=running", r, id)
		if !strings.Contains(stdout, want) {
			t.Fatalf("rank %d stdout %q, want %q", r, stdout, want)
		}
	}

	// The target job keeps running, undisturbed.
	info, _ := jobsvc.GetInfo(h, id)
	if info.State != jobsvc.StateRunning {
		t.Fatalf("job state after tool attach: %s", info.State)
	}
	jobsvc.Cancel(h, id)
	if _, err := jobsvc.Wait(ctx(t), h, id); err != nil {
		t.Fatal(err)
	}
}

func TestToolUsesSessionServices(t *testing.T) {
	s := newSession(t, 2, BuiltinTools())
	h := s.Handle(0)
	defer h.Close()
	if _, err := hb.Pulse(h); err != nil {
		t.Fatal(err)
	}
	id, _ := jobsvc.Submit(h, jobsvc.Spec{Program: "block", Nodes: 1})
	deadline := time.After(20 * time.Second)
	for {
		if info, err := jobsvc.GetInfo(h, id); err == nil && info.State == jobsvc.StateRunning {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	res, err := Attach(ctx(t), h, "tool-hb", "epoch", id)
	if err != nil || res.State != "complete" {
		t.Fatalf("%+v %v", res, err)
	}
	ranks, _ := JobRanks(h, id)
	stdout, _, _, err := wexec.Output(h, "tool-hb", ranks[0])
	if err != nil || !strings.Contains(stdout, "epoch 1") {
		t.Fatalf("stdout %q %v", stdout, err)
	}
	jobsvc.Cancel(h, id)
	jobsvc.Wait(ctx(t), h, id)
}

func TestAttachUnknownJob(t *testing.T) {
	s := newSession(t, 2, BuiltinTools())
	h := s.Handle(0)
	defer h.Close()
	if _, err := JobRanks(h, "999"); err == nil {
		t.Fatal("rank query for unknown job succeeded")
	}
	if _, err := Attach(ctx(t), h, "t", "jobinfo", "999"); err == nil {
		t.Fatal("attach to unknown job succeeded")
	}
}

func TestToolValidationErrors(t *testing.T) {
	s := newSession(t, 2, BuiltinTools())
	h := s.Handle(0)
	defer h.Close()
	id, _ := jobsvc.Submit(h, jobsvc.Spec{Program: "block", Nodes: 1})
	deadline := time.After(20 * time.Second)
	for {
		if info, err := jobsvc.GetInfo(h, id); err == nil && info.State == jobsvc.StateRunning {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Unknown tool exits 127 per task -> failed bulk job.
	res, err := Attach(ctx(t), h, "t-bad", "nosuchtool", id)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "failed" {
		t.Fatalf("unknown tool result %+v", res)
	}
	jobsvc.Cancel(h, id)
	jobsvc.Wait(ctx(t), h, id)
}
