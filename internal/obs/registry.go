// Package obs is the observability plane shared by the broker and its
// comms modules: a metrics registry of atomic counters, gauges, and
// log2-bucketed latency histograms, plus a bounded per-broker ring
// buffer of message trace spans (trace.go).
//
// The registry lives on the RPC hot path, so its cost model is strict:
// a metric is looked up once (Counter/Gauge/Histogram return a handle)
// and every subsequent update is one or two uncontended atomic adds —
// no maps, no locks, no allocation. Snapshots are taken off the hot
// path and are mergeable, so per-rank registries aggregate tree-wide
// over the mon reduction path into one session view.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that may move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of log2 latency buckets. Bucket i counts
// observations whose nanosecond duration has bit length i (i.e. in
// [2^(i-1), 2^i)); the last bucket absorbs everything larger, which at
// 2^47 ns is ~39 hours — beyond any RPC deadline in the system.
const HistBuckets = 48

// Histogram is a log2-bucketed latency histogram. Observe is two atomic
// adds; quantile summaries are computed at snapshot time from the
// bucket counts, accurate to the bucket width (a factor of 2 — enough
// to tell a 10µs path from a 10ms one, which is what hot-path tuning
// needs).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	i := bits.Len64(ns)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[i].Add(1)
}

// Snapshot copies the histogram's counters into a HistSnapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		SumNS: h.sum.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Bit: i, N: n})
		}
	}
	s.summarize()
	return s
}

// Bucket is one populated log2 bucket of a histogram snapshot: N
// observations with nanosecond bit length Bit.
type Bucket struct {
	Bit int    `json:"bit"`
	N   uint64 `json:"n"`
}

// upperNS is the exclusive upper bound of the bucket in nanoseconds.
func (b Bucket) upperNS() uint64 {
	if b.Bit >= 63 {
		return 1 << 62
	}
	return 1 << uint(b.Bit)
}

// HistSnapshot is a point-in-time copy of a histogram with quantile
// summaries precomputed (upper-bound estimates: a quantile is reported
// as the top of the bucket containing it).
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	SumNS   uint64   `json:"sum_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
	P50NS   uint64   `json:"p50_ns"`
	P95NS   uint64   `json:"p95_ns"`
	P99NS   uint64   `json:"p99_ns"`
	MaxNS   uint64   `json:"max_ns"` // upper bound of the highest bucket
}

// summarize recomputes the quantile fields from the bucket counts.
func (s *HistSnapshot) summarize() {
	s.P50NS = s.Quantile(0.50)
	s.P95NS = s.Quantile(0.95)
	s.P99NS = s.Quantile(0.99)
	s.MaxNS = 0
	if n := len(s.Buckets); n > 0 {
		s.MaxNS = s.Buckets[n-1].upperNS()
	}
}

// Quantile returns the upper bound of the bucket containing quantile q
// (0 < q <= 1), in nanoseconds. Zero when the histogram is empty.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	// Nearest-rank: the smallest bucket whose cumulative count covers
	// ceil(q * Count) observations.
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.N
		if seen >= target {
			return b.upperNS()
		}
	}
	if n := len(s.Buckets); n > 0 {
		return s.Buckets[n-1].upperNS()
	}
	return 0
}

// MeanNS returns the exact mean in nanoseconds (sum is tracked
// exactly, unlike the bucketed quantiles).
func (s *HistSnapshot) MeanNS() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNS / s.Count
}

// merge folds o's buckets into s and recomputes summaries.
func (s *HistSnapshot) merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	byBit := make(map[int]uint64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		byBit[b.Bit] += b.N
	}
	for _, b := range o.Buckets {
		byBit[b.Bit] += b.N
	}
	s.Buckets = s.Buckets[:0]
	for bit, n := range byBit {
		s.Buckets = append(s.Buckets, Bucket{Bit: bit, N: n})
	}
	sort.Slice(s.Buckets, func(i, j int) bool { return s.Buckets[i].Bit < s.Buckets[j].Bit })
	s.summarize()
}

// Registry is a named collection of metrics. Registration (the
// get-or-create lookups) takes a mutex; the returned handles are then
// updated lock-free, so hot paths hoist the lookup out of the loop.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gauge map[string]*Gauge
	hists map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gauge: make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauge[name]
	if !ok {
		g = &Gauge{}
		r.gauge[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time, JSON-marshalable copy of a registry.
// Snapshots from different ranks Merge into a session-wide view.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Snapshot copies every metric's current value. Counter and gauge
// reads are atomic loads; the result is not a consistent cut across
// metrics (none is needed: these are monitoring counters).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.ctrs)),
		Gauges:   make(map[string]int64, len(r.gauge)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.ctrs {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauge {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.Snapshot()
	}
	return s
}

// Merge folds o into s: counters and gauges sum, histograms merge
// bucket-wise with quantiles recomputed. Merging per-rank snapshots
// yields the tree-wide totals the mon reduction reports.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]uint64, len(o.Counters))
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64, len(o.Gauges))
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	if s.Hists == nil {
		s.Hists = make(map[string]HistSnapshot, len(o.Hists))
	}
	for name, h := range o.Hists {
		cur := s.Hists[name]
		cur.merge(h)
		s.Hists[name] = cur
	}
}

// Names returns the sorted metric names of each kind, for stable
// rendering in CLIs.
func (s *Snapshot) Names() (counters, gauges, hists []string) {
	for name := range s.Counters {
		counters = append(counters, name)
	}
	for name := range s.Gauges {
		gauges = append(gauges, name)
	}
	for name := range s.Hists {
		hists = append(hists, name)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return counters, gauges, hists
}
