package cas

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fluxgo/internal/clock"
)

func TestRefString(t *testing.T) {
	var r Ref
	r[0] = 0x1c
	r[1] = 0x00
	r[2] = 0x2d
	r[3] = 0xde
	if got := r.Short(); got != "1c002dde" {
		t.Fatalf("Short = %q, want 1c002dde", got)
	}
	parsed, err := ParseRef(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != r {
		t.Fatal("ParseRef(String()) round trip failed")
	}
}

func TestParseRefErrors(t *testing.T) {
	if _, err := ParseRef("zz"); err == nil {
		t.Error("invalid hex accepted")
	}
	if _, err := ParseRef("abcd"); err == nil {
		t.Error("short ref accepted")
	}
}

func TestValueEncodeDecode(t *testing.T) {
	v := NewValue([]byte(`42`))
	enc := v.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindValue || !bytes.Equal(got.Value, []byte(`42`)) {
		t.Fatalf("decoded %+v", got)
	}
}

func TestDirEncodeDeterministic(t *testing.T) {
	d1 := NewDir()
	d2 := NewDir()
	var ra, rb Ref
	ra[0], rb[0] = 1, 2
	// Insert in different orders.
	d1.Dir["a"] = ra
	d1.Dir["b"] = rb
	d2.Dir["b"] = rb
	d2.Dir["a"] = ra
	if HashOf(d1.Encode()) != HashOf(d2.Encode()) {
		t.Fatal("directory hash depends on insertion order")
	}
}

func TestDirEncodeDecode(t *testing.T) {
	d := NewDir()
	var r1, r2 Ref
	r1[5], r2[7] = 9, 3
	d.Dir["alpha"] = r1
	d.Dir["beta.gamma"] = r2
	got, err := Decode(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindDir || len(got.Dir) != 2 || got.Dir["alpha"] != r1 || got.Dir["beta.gamma"] != r2 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{'x'},
		{byte(KindDir), 0xFF}, // bad uvarint/truncated
		append([]byte{byte(KindDir), 3}, 'a', 'b'), // name truncated
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: corrupt encoding accepted", i)
		}
	}
}

func TestObjectCopyIsDeep(t *testing.T) {
	d := NewDir()
	var r Ref
	d.Dir["k"] = r
	c := d.Copy()
	var r2 Ref
	r2[0] = 1
	c.Dir["k"] = r2
	c.Dir["new"] = r2
	if d.Dir["k"] != r || len(d.Dir) != 1 {
		t.Fatal("Copy aliases directory map")
	}
	v := NewValue([]byte("abc"))
	cv := v.Copy()
	cv.Value[0] = 'X'
	if v.Value[0] != 'a' {
		t.Fatal("Copy aliases value bytes")
	}
}

func TestEncodePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Object{Kind: 'z'}).Encode()
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(nil)
	v := NewValue([]byte(`"hello"`))
	ref := s.Put(v)
	got, ok := s.Get(ref)
	if !ok || !bytes.Equal(got.Value, v.Value) {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if !s.Has(ref) {
		t.Fatal("Has = false for stored object")
	}
	var missing Ref
	missing[0] = 0xFF
	if _, ok := s.Get(missing); ok {
		t.Fatal("Get of missing ref succeeded")
	}
	hits, misses := s.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses, want 1,1", hits, misses)
	}
}

func TestStoreDeduplicates(t *testing.T) {
	s := NewStore(nil)
	r1 := s.Put(NewValue([]byte(`1`)))
	r2 := s.Put(NewValue([]byte(`1`)))
	if r1 != r2 {
		t.Fatal("identical content yielded different refs")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestStoreExpire(t *testing.T) {
	mc := clock.NewManual(time.Unix(0, 0))
	s := NewStore(mc)
	old := s.Put(NewValue([]byte(`"old"`)))
	pinned := s.Put(NewValue([]byte(`"pinned"`)))
	s.Pin(pinned)
	mc.Advance(10 * time.Second)
	fresh := s.Put(NewValue([]byte(`"fresh"`)))
	removed := s.Expire(5 * time.Second)
	if removed != 1 {
		t.Fatalf("Expire removed %d, want 1", removed)
	}
	if s.Has(old) {
		t.Fatal("old unpinned entry survived expiry")
	}
	if !s.Has(pinned) || !s.Has(fresh) {
		t.Fatal("pinned or fresh entry expired")
	}
}

func TestStoreGetRefreshesLastUsed(t *testing.T) {
	mc := clock.NewManual(time.Unix(0, 0))
	s := NewStore(mc)
	ref := s.Put(NewValue([]byte(`"x"`)))
	mc.Advance(4 * time.Second)
	s.Get(ref) // refresh
	mc.Advance(4 * time.Second)
	if n := s.Expire(5 * time.Second); n != 0 {
		t.Fatalf("recently used entry expired (removed %d)", n)
	}
}

// Property: encode/decode round-trips arbitrary values and directories,
// and the ref is stable across a store round trip.
func TestEncodeDecodeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(val []byte, names []string) bool {
		v := NewValue(val)
		dv, err := Decode(v.Encode())
		if err != nil || !bytes.Equal(dv.Value, val) {
			return false
		}
		d := NewDir()
		for _, n := range names {
			var r Ref
			rng.Read(r[:])
			d.Dir[n] = r
		}
		dd, err := Decode(d.Encode())
		if err != nil || len(dd.Dir) != len(d.Dir) {
			return false
		}
		for n, r := range d.Dir {
			if dd.Dir[n] != r {
				return false
			}
		}
		return HashOf(d.Encode()) == HashOf(dd.Encode())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(nil)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				ref := s.Put(NewValue([]byte{byte(g), byte(i)}))
				if _, ok := s.Get(ref); !ok {
					t.Error("lost object")
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
