package sched

import (
	"sort"
	"time"

	"fluxgo/internal/resource"
)

// Conservative is FCFS with conservative backfilling: every queued job
// holds a reservation, and a later job may start early only if doing so
// delays no earlier job's reservation. Stricter than EASY (which
// protects only the queue head), it trades backfill opportunity for
// starvation-freedom guarantees on the whole queue.
type Conservative struct{}

// Name implements Policy.
func (Conservative) Name() string { return "conservative" }

// resEvent is a node-count change at a point in virtual time.
type resEvent struct {
	at    time.Duration
	delta int // +nodes freed, -nodes consumed
}

// reservations plans start times for queue (in order) given jobs already
// running, using node counts only (constraints are re-verified against
// the pool when a job actually starts). Returns each queued job's
// reserved start time.
func reservations(queue []*Job, running []*Job, totalNodes int, now time.Duration) []time.Duration {
	var events []resEvent
	free := totalNodes
	for _, r := range running {
		free -= r.Req.Nodes
		events = append(events, resEvent{at: r.End, delta: r.Req.Nodes})
	}
	starts := make([]time.Duration, len(queue))
	for qi, j := range queue {
		// Walk time forward until j fits, replaying frees/consumes.
		sort.Slice(events, func(a, b int) bool { return events[a].at < events[b].at })
		t := now
		f := free
		// Apply events at or before now (none normally; defensive).
		idx := 0
		for ; idx < len(events) && events[idx].at <= t; idx++ {
			f += events[idx].delta
		}
		for f < j.Req.Nodes && idx < len(events) {
			t = events[idx].at
			for idx < len(events) && events[idx].at <= t {
				f += events[idx].delta
				idx++
			}
		}
		starts[qi] = t
		// Consume j's nodes from its start to its end.
		events = append(events,
			resEvent{at: t, delta: -j.Req.Nodes},
			resEvent{at: t + j.Duration, delta: j.Req.Nodes},
		)
	}
	return starts
}

// Pick implements Policy.
func (c Conservative) Pick(queue, running []*Job, pool *resource.Pool, now time.Duration) []*Job {
	var picks []*Job
	var holds []string
	hold := func(j *Job) bool {
		id := "tentative-" + j.ID
		if _, err := pool.Allocate(id, j.Req); err != nil {
			return false
		}
		holds = append(holds, id)
		picks = append(picks, j)
		return true
	}
	defer func() {
		for _, id := range holds {
			pool.Release(id)
		}
	}()

	// In-order feasible prefix starts unconditionally.
	i := 0
	for ; i < len(queue); i++ {
		if !hold(queue[i]) {
			break
		}
	}
	rest := append([]*Job(nil), queue[i:]...)
	if len(rest) == 0 {
		return picks
	}

	// Virtual running set = really running + this round's picks.
	virtRunning := append([]*Job(nil), running...)
	for _, p := range picks {
		virtRunning = append(virtRunning, &Job{Req: p.Req, End: now + p.Duration})
	}
	total := pool.TotalNodes()
	baseline := reservations(rest, virtRunning, total, now)

	// Try to backfill each waiting job (beyond the blocked head, which
	// already failed to start): admit only if no earlier waiter's
	// reservation slips.
	for k := 1; k < len(rest); k++ {
		j := rest[k]
		// Quick feasibility against the real pool (constraints included).
		id := "tentative-" + j.ID
		if _, err := pool.Allocate(id, j.Req); err != nil {
			continue
		}
		// Re-plan with j running now instead of queued.
		without := append(append([]*Job(nil), rest[:k]...), rest[k+1:]...)
		withJ := append(append([]*Job(nil), virtRunning...), &Job{Req: j.Req, End: now + j.Duration})
		plan := reservations(without, withJ, total, now)
		delayed := false
		for qi := range without {
			// Compare against the corresponding baseline entry: indices
			// shift after k, so map back.
			bi := qi
			if qi >= k {
				bi = qi + 1
			}
			if plan[qi] > baseline[bi] {
				delayed = true
				break
			}
		}
		if delayed {
			pool.Release(id)
			continue
		}
		holds = append(holds, id)
		picks = append(picks, j)
		virtRunning = withJ
		rest = without
		baseline = plan
		k-- // rest shrank; stay at the same index
	}
	return picks
}
