package kvs

import (
	"fmt"
	"sync"
	"testing"

	"fluxgo/internal/broker"
	"fluxgo/internal/session"
)

func newShardedSession(t *testing.T, size, nshards int) *session.Session {
	t.Helper()
	var mods []session.ModuleFactory
	for _, f := range ShardedFactories(nshards, ModuleConfig{}) {
		mods = append(mods, f)
	}
	s, err := session.New(session.Options{Size: size, Modules: mods})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestShardOfStable(t *testing.T) {
	a := ShardOf("alpha.x", 4)
	if a != ShardOf("alpha.y.z", 4) || a != ShardOf("alpha", 4) {
		t.Fatal("keys with the same first component shard differently")
	}
	if ShardOf("anything", 1) != 0 {
		t.Fatal("single shard must map everything to 0")
	}
	// The hash spreads distinct components over shards (probabilistic,
	// but 64 distinct prefixes over 4 shards hitting only one would be
	// astronomically unlikely).
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[ShardOf(fmt.Sprintf("ns%d.k", i), 4)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 prefixes landed on %d shard(s)", len(seen))
	}
}

func TestShardMasterPlacement(t *testing.T) {
	ranks := map[int]bool{}
	for s := 0; s < 4; s++ {
		r := ShardMasterRank(s, 4, 16)
		if r < 0 || r >= 16 {
			t.Fatalf("shard %d master at rank %d", s, r)
		}
		ranks[r] = true
	}
	if len(ranks) != 4 {
		t.Fatalf("masters collide: %v", ranks)
	}
}

func TestShardedPutCommitGet(t *testing.T) {
	s := newShardedSession(t, 8, 4)
	h := s.Handle(5)
	defer h.Close()
	sc, err := NewShardedClient(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := sc.Put(fmt.Sprintf("ns%d.value", i), i*i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sc.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		var got int
		if err := sc.Get(fmt.Sprintf("ns%d.value", i), &got); err != nil {
			t.Fatalf("get ns%d: %v", i, err)
		}
		if got != i*i {
			t.Fatalf("ns%d = %d", i, got)
		}
	}
	// Directory listing within a shard.
	sc.Put("ns3.other", "x")
	sc.Commit()
	names, err := sc.GetDir("ns3")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("ns3 dir %v", names)
	}
}

func TestShardedMastersAreDistributed(t *testing.T) {
	// Verify each shard's master actually runs at its assigned rank by
	// checking which rank answers getversion with authority (stats show
	// the master pins; simpler: the module at the master rank reports
	// version directly without upstream help even when isolated).
	s := newShardedSession(t, 8, 4)
	h := s.Handle(0)
	defer h.Close()
	sc, _ := NewShardedClient(h, 4)
	sc.Put("aaa.k", 1) // lands on some shard
	if _, err := sc.Commit(); err != nil {
		t.Fatal(err)
	}
	shard := ShardOf("aaa.k", 4)
	master := ShardMasterRank(shard, 4, 8)
	// Ask the master's module instance directly (rank-addressed).
	resp, err := h.RPC(ShardService(shard)+".stats", uint32(master), nil)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Version uint64 `json:"version"`
		Objects int    `json:"objects"`
	}
	resp.UnpackJSON(&body)
	if body.Version != 1 {
		t.Fatalf("master at rank %d has version %d, want 1", master, body.Version)
	}
	if body.Objects == 0 {
		t.Fatal("master store empty after commit")
	}
}

func TestShardedFence(t *testing.T) {
	const size, procs = 8, 8
	s := newShardedSession(t, size, 2)
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := s.Handle(p % size)
			defer h.Close()
			sc, err := NewShardedClient(h, 2)
			if err != nil {
				errs[p] = err
				return
			}
			sc.Put(fmt.Sprintf("w%d.k", p), p)
			_, errs[p] = sc.Fence("shardfence", procs)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	h := s.Handle(0)
	defer h.Close()
	sc, _ := NewShardedClient(h, 2)
	for p := 0; p < procs; p++ {
		var got int
		if err := sc.Get(fmt.Sprintf("w%d.k", p), &got); err != nil || got != p {
			t.Fatalf("w%d = %d, %v", p, got, err)
		}
	}
}

func TestShardedValidation(t *testing.T) {
	s := newShardedSession(t, 2, 1)
	h := s.Handle(0)
	defer h.Close()
	if _, err := NewShardedClient(h, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	sc, err := NewShardedClient(h, 1)
	if err != nil || sc.Shards() != 1 {
		t.Fatal(err)
	}
}

func TestNonRootMasterSingleService(t *testing.T) {
	// One kvs service whose master lives at a non-root rank: commits
	// still apply, setroot events still flow from the sequencer.
	masterRank := 3
	s, err := session.New(session.Options{
		Size: 8,
		Modules: []session.ModuleFactory{
			func(rank, size int) broker.Module {
				return NewModule(ModuleConfig{MasterRank: masterRank})
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handle(6)
	defer h.Close()
	c := NewClient(h)
	c.Put("offroot.k", "v")
	ver, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Fatalf("version %d", ver)
	}
	// Read back from a different rank.
	h2 := s.Handle(0)
	defer h2.Close()
	c2 := NewClient(h2)
	c2.WaitVersion(ver)
	var got string
	if err := c2.Get("offroot.k", &got); err != nil || got != "v" {
		t.Fatalf("got %q, %v", got, err)
	}
}
