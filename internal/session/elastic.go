package session

// Elastic overlay: live rank join and graceful leave.
//
// Growth appends fresh ranks at the high end of the BFS rank space (a
// departed rank's number is never reused), wires each new broker to the
// nearest live ancestor of its computed tree parent, splices it into the
// ring, and admits it through the cmb.join handshake — all fenced by the
// membership epoch stamped into the live.join event every broker folds.
// A shrink runs the protocol in reverse: announce the leave (so peers
// fence the departing rank and the scheduler stops placing work there),
// splice the ring around it, then drain it — closing its links fails its
// in-flight requests fast with EHOSTUNREACH and re-parents its children
// through the PR-1 self-healing machinery.

import (
	"context"
	"fmt"

	"fluxgo/internal/broker"
	"fluxgo/internal/wire"
)

// joinRetries is how often a joiner retries its admission handshake
// while the overlay settles (membership event in flight, chaos faults).
const joinRetries = 5

// Grow adds n fresh ranks to the running session and returns the first
// new rank. Each new rank is announced with its own live.join event and
// its own membership epoch. Serialized against Shrink.
func (s *Session) Grow(n int) (int, error) {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	return s.growLocked(n)
}

// hookGrow serves cmb.grow. Brokers run membership hooks on background
// goroutines their Shutdown waits for, so a hook must never block on
// memberMu: a drain holding it may be waiting on that very broker.
func (s *Session) hookGrow(n int) (int, error) {
	if !s.memberMu.TryLock() {
		return -1, fmt.Errorf("session: a membership change is in progress; retry")
	}
	defer s.memberMu.Unlock()
	return s.growLocked(n)
}

func (s *Session) growLocked(n int) (int, error) {
	if n < 1 {
		return -1, fmt.Errorf("session: grow needs n >= 1, got %d", n)
	}
	first := -1
	for i := 0; i < n; i++ {
		r, err := s.growOne()
		if err != nil {
			return first, err
		}
		if first < 0 {
			first = r
		}
	}
	return first, nil
}

// growOne admits one new rank: allocate, wire, announce, handshake.
func (s *Session) growOne() (int, error) {
	s.mu.Lock()
	if s.dead[0] {
		s.mu.Unlock()
		return -1, fmt.Errorf("session: cannot grow without the root sequencer")
	}
	r := s.view.Grow(1)
	s.epoch++
	epoch := s.epoch
	// Seed the joiner with the tombstones of *departed* ranks only: a
	// killed rank is still a member (the live module reports it down),
	// and seeding it as departed would diverge the views.
	tombs := s.view.Tombstones()
	p := s.tree.Parent(r)
	for p >= 0 && s.dead[p] {
		p = s.tree.Parent(p)
	}
	prev, next := s.ringNeighborsLocked(r)
	s.mu.Unlock()
	if p < 0 {
		return -1, fmt.Errorf("session: rank %d has no live ancestor to join through", r)
	}

	b, err := broker.New(broker.Config{
		Rank:         r,
		Size:         r + 1,
		Arity:        s.opts.Arity,
		Clock:        s.opts.Clock,
		EventHistory: s.opts.EventHistory,
		Log:          s.opts.Log,
		Reparent:     s.reparent,
		RPCTimeout:   s.opts.RPCTimeout,
		SyncInterval: s.opts.SyncInterval,
		SessionID:    s.opts.SessionID,
		LogRecords:   s.opts.LogRecords,
		Shards:       s.opts.Shards,
		BinaryBodies: s.opts.BinaryBodies,
		Epoch:        epoch,
		Tombstones:   tombs,
		Joined:       true,
		Grow:         s.hookGrow,
		Shrink:       s.hookShrink,
		Restart:      s.hookRestart,
	})
	if err != nil {
		return -1, err
	}
	s.mu.Lock()
	s.brokers = append(s.brokers, b)
	s.mu.Unlock()

	// Tree planes toward the nearest live ancestor of the computed
	// parent. The parent-side tree link starts pending: until the join
	// handshake is served, the membership fence admits nothing but the
	// handshake itself from the new rank.
	adopter := s.Broker(p)
	treeP, treeC := s.pipeRanks(p, r)
	adopter.AttachPendingConn(broker.LinkChildTree, treeP)
	b.AttachConn(broker.LinkParentTree, treeC)
	evP, evC := s.pipeRanks(p, r)
	adopter.AttachConn(broker.LinkChildEvent, evP)
	b.AttachConn(broker.LinkParentEvent, evC)
	if err := evC.Send(&wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: 0}); err != nil {
		return r, fmt.Errorf("session: resync %d -> %d: %w", r, p, err)
	}

	// Ring splice: prev-live -> r -> next-live. The old prev->next link
	// closes; requests in flight on it fail fast and are retried.
	if prev >= 0 && prev != r {
		outP, inP := s.pipeRanks(prev, r)
		s.Broker(prev).ReplaceRingOut(outP)
		b.AttachConn(broker.LinkRingIn, inP)
		outN, inN := s.pipeRanks(r, next)
		b.AttachConn(broker.LinkRingOut, outN)
		s.Broker(next).AttachConn(broker.LinkRingIn, inN)
	}

	b.Start()

	// Announce first so the parent (and everyone else) has folded rank r
	// into its view by the time traffic from r clears the fence.
	if err := s.publishMembership(wire.EventJoin, r, epoch); err != nil {
		return r, fmt.Errorf("session: announce join of rank %d: %w", r, err)
	}
	jh := b.NewHandle()
	err = jh.JoinSession(context.Background(), joinRetries)
	jh.Close()
	if err != nil {
		return r, fmt.Errorf("session: rank %d admission handshake: %w", r, err)
	}

	// Modules last: by now the rank is admitted, so module traffic is
	// not burned on stale-epoch rejections.
	for _, f := range s.opts.Modules {
		if m := f(r, r+1); m != nil {
			if err := b.LoadModule(m); err != nil {
				return r, fmt.Errorf("session: load module at rank %d: %w", r, err)
			}
		}
	}
	s.logf("session: rank %d joined at epoch %d (parent %d)", r, epoch, p)
	return r, nil
}

// Shrink gracefully drains and removes the given ranks, one epoch each.
// Serialized against Grow.
func (s *Session) Shrink(ranks []int) error {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	return s.shrinkLocked(ranks)
}

// hookShrink serves cmb.shrink; non-blocking like hookGrow.
func (s *Session) hookShrink(ranks []int) error {
	if !s.memberMu.TryLock() {
		return fmt.Errorf("session: a membership change is in progress; retry")
	}
	defer s.memberMu.Unlock()
	return s.shrinkLocked(ranks)
}

func (s *Session) shrinkLocked(ranks []int) error {
	for _, r := range ranks {
		if err := s.shrinkOne(r); err != nil {
			return err
		}
	}
	return nil
}

// shrinkOne drains one rank: announce the leave, splice the ring around
// it, then shut it down.
func (s *Session) shrinkOne(r int) error {
	s.mu.Lock()
	var err error
	switch {
	case r == 0:
		err = fmt.Errorf("session: the root sequencer cannot leave")
	case r < 0 || r >= s.view.Size():
		err = fmt.Errorf("session: rank %d outside rank space of size %d", r, s.view.Size())
	case s.view.Left(r):
		err = fmt.Errorf("session: rank %d already departed", r)
	case s.dead[r]:
		err = fmt.Errorf("session: rank %d is dead, not drainable", r)
	}
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.epoch++
	epoch := s.epoch
	s.view.Leave(r)
	b := s.brokers[r]
	s.mu.Unlock()

	// Announce first: every broker fences rank r at the leave epoch and
	// the scheduler stops placing work on it before the drain begins.
	if err := s.publishMembership(wire.EventLeave, r, epoch); err != nil {
		return fmt.Errorf("session: announce leave of rank %d: %w", r, err)
	}

	// Splice the ring around the departing rank.
	s.spliceRingAround(r)

	// Drain: closing the links makes peers fail rank r's in-flight
	// requests fast (EHOSTUNREACH via the inflight bookkeeping) and
	// re-parents its children to their nearest live ancestor.
	s.markDead(r)
	b.Shutdown()
	s.logf("session: rank %d left at epoch %d", r, epoch)
	return nil
}

// ringNeighborsLocked returns the nearest ring neighbors of r that are
// neither departed nor dead (excluding r itself), or -1. Callers hold
// s.mu. Unlike topo.View's PrevLive/NextLive, this also skips crashed
// ranks: the ring must route around them even though they remain
// members until the failure detector or an operator drains them.
func (s *Session) ringNeighborsLocked(r int) (prev, next int) {
	size := s.view.Size()
	prev, next = -1, -1
	for i, p := 0, r; i < size; i++ {
		p = (p - 1 + size) % size
		if p == r {
			break
		}
		if s.view.Live(p) && !s.dead[p] {
			prev = p
			break
		}
	}
	for i, n := 0, r; i < size; i++ {
		n = (n + 1) % size
		if n == r {
			break
		}
		if s.view.Live(n) && !s.dead[n] {
			next = n
			break
		}
	}
	return prev, next
}

// spliceRingAround reroutes the rank-addressed ring around rank r (dead
// or departing): the nearest surviving predecessor's ring-out link is
// re-pointed at the nearest surviving successor. Safe to call more than
// once for the same rank.
func (s *Session) spliceRingAround(r int) {
	s.mu.Lock()
	prev, next := s.ringNeighborsLocked(r)
	s.mu.Unlock()
	if prev < 0 || prev == r {
		return
	}
	if next == prev {
		s.Broker(prev).DropRingOut() // sole survivor on the ring
	} else if next >= 0 {
		out, in := s.pipeRanks(prev, next)
		s.Broker(prev).ReplaceRingOut(out)
		s.Broker(next).AttachConn(broker.LinkRingIn, in)
	}
}

// healRing splices the ring around a dead rank — the failure-path
// counterpart of the graceful drain's splice, invoked by Kill and by
// the chaos controller's Sever (the failure detector acting on a silent
// crash). Serialized against Grow/Shrink so concurrent membership
// changes never fight over ring links.
func (s *Session) healRing(rank int) {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	s.spliceRingAround(rank)
}

// publishMembership sequences an epoch-tagged membership event through
// the root.
func (s *Session) publishMembership(topic string, rank int, epoch uint32) error {
	h := s.Broker(0).NewHandle()
	defer h.Close()
	_, err := h.PublishEvent(topic, broker.MembershipEvent{Rank: rank, Epoch: epoch})
	return err
}
