package live

import (
	"testing"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size: size,
		Modules: []session.ModuleFactory{
			hb.Factory(hb.Config{Interval: time.Hour}), // Pulse-driven
			Factory(Config{MissLimit: 3}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// pulse drives one heartbeat epoch and returns it.
func pulse(t *testing.T, h *broker.Handle) uint64 {
	t.Helper()
	e, err := hb.Pulse(h)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAllAliveNoEvents(t *testing.T) {
	s := newSession(t, 7)
	h := s.Handle(0)
	defer h.Close()
	for i := 0; i < 6; i++ {
		pulse(t, h)
	}
	// Allow hello propagation, then confirm nothing is down anywhere.
	time.Sleep(100 * time.Millisecond)
	pulse(t, h)
	time.Sleep(100 * time.Millisecond)
	for r := 0; r < 7; r++ {
		hr := s.Handle(r)
		down, err := Down(hr)
		hr.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(down) != 0 {
			t.Fatalf("rank %d sees down ranks %v with everyone alive", r, down)
		}
	}
}

func TestDeadLeafDetected(t *testing.T) {
	s := newSession(t, 7)
	h := s.Handle(0)
	defer h.Close()
	sub, err := h.Subscribe("live.down")
	if err != nil {
		t.Fatal(err)
	}

	// Establish hellos, then kill leaf rank 6 (child of rank 2).
	pulse(t, h)
	time.Sleep(50 * time.Millisecond)
	s.Kill(6)

	// Advance epochs past the miss limit; rank 2's live module must
	// publish live.down for rank 6.
	deadline := time.After(10 * time.Second)
	for {
		pulse(t, h)
		select {
		case ev := <-sub.Chan():
			var body struct {
				Rank int `json:"rank"`
			}
			if err := ev.UnpackJSON(&body); err != nil {
				t.Fatal(err)
			}
			if body.Rank != 6 {
				t.Fatalf("live.down for rank %d, want 6", body.Rank)
			}
			// The down set propagates to every surviving rank's view.
			waitDown(t, s, 0, 6)
			waitDown(t, s, 3, 6)
			return
		case <-deadline:
			t.Fatal("dead leaf never detected")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// waitDown polls rank r's view until target appears in its down set.
func waitDown(t *testing.T, s *session.Session, r, target int) {
	t.Helper()
	h := s.Handle(r)
	defer h.Close()
	deadline := time.After(10 * time.Second)
	for {
		down, err := Down(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range down {
			if d == target {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatalf("rank %d never saw %d down (down=%v)", r, target, down)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestLeavePrunesDeparted: a graceful leave must prune the departed rank
// from the hello ledger so it is never deemed down — unlike a crash
// (TestDeadLeafDetected), a drain is not a failure.
func TestLeavePrunesDeparted(t *testing.T) {
	s := newSession(t, 7)
	h := s.Handle(0)
	defer h.Close()

	// Establish hellos, then gracefully drain leaf rank 6.
	pulse(t, h)
	time.Sleep(50 * time.Millisecond)
	if err := s.Shrink([]int{6}); err != nil {
		t.Fatal(err)
	}

	// Advance well past the miss limit: the departed rank must never be
	// reported down, at rank 2 (its old parent) or anywhere else.
	for i := 0; i < 8; i++ {
		pulse(t, h)
		time.Sleep(20 * time.Millisecond)
	}
	down, err := Down(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 0 {
		t.Fatalf("down=%v after graceful leave, want none", down)
	}

	// The liveness query carries the membership epoch (founding epoch 1,
	// one leave -> 2).
	resp, err := h.RPC("live.query", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Epoch uint32 `json:"epoch"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		t.Fatal(err)
	}
	if body.Epoch != 2 {
		t.Fatalf("live.query epoch %d, want 2", body.Epoch)
	}
}

// TestJoinedRankMonitored: a rank added by growth participates in the
// liveness protocol — it hellos its parent, and when it later crashes
// the miss-limit machinery reports it down like any founding rank.
func TestJoinedRankMonitored(t *testing.T) {
	s := newSession(t, 3)
	h := s.Handle(0)
	defer h.Close()

	first, err := s.Grow(1)
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 {
		t.Fatalf("grew rank %d, want 3", first)
	}
	for i := 0; i < 4; i++ {
		pulse(t, h)
		time.Sleep(20 * time.Millisecond)
	}
	down, err := Down(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 0 {
		t.Fatalf("down=%v with the joined rank alive, want none", down)
	}

	s.Kill(3)
	deadline := time.After(10 * time.Second)
	for {
		pulse(t, h)
		time.Sleep(20 * time.Millisecond)
		down, err = Down(h)
		if err != nil {
			t.Fatal(err)
		}
		if len(down) == 1 && down[0] == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("joined rank never reported down; down=%v", down)
		default:
		}
	}
}
