package session

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/chaosenv"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/modules/live"
	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// chaosSeeds returns the soak seed list: FLUX_CHAOS_SEEDS (comma-
// separated) or CHAOS_SEED env vars, else {1}. A failing soak subtest
// carries its seed in its name; rerunning with that seed replays the
// same fault schedule.
func chaosSeeds() []int64 {
	return chaosenv.Seeds(1)
}

// chaosDuration returns the soak length: CHAOS_SOAK env var (a Go
// duration), or a short default so `make check` stays fast.
func chaosDuration() time.Duration {
	return chaosenv.Duration(2 * time.Second)
}

// waitOrFatal fails the test if wg does not finish within d — the
// signature of a hung RPC, which is exactly what the no-hang guarantee
// forbids.
func waitOrFatal(t *testing.T, wg *sync.WaitGroup, d time.Duration, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("liveness violation: %s still running after %s", what, d)
	}
}

// TestChaosSoak drives a fault-injected session with a live KVS + ping
// workload while a seeded chaos schedule drops, delays, duplicates, and
// partitions traffic and silently crashes interior ranks. It asserts:
//
//   - liveness: every RPC issued by the workload returns (success or
//     error) within its deadline budget — nothing hangs;
//   - safety: KVS causal consistency holds — after WaitVersion(v)
//     succeeds on any rank, a read of a key committed at version v
//     returns the committed value;
//   - convergence: once faults heal and crashes are severed, the overlay
//     re-parents and a final commit is visible session-wide.
//
// The run is reproducible: rerun with FLUX_CHAOS_SEEDS=<seed> (and
// optionally a longer CHAOS_SOAK=30s) to replay a failure.
func TestChaosSoak(t *testing.T) {
	dur := chaosDuration()
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSoak(t, seed, dur)
		})
	}
}

func runChaosSoak(t *testing.T, seed int64, dur time.Duration) {
	t.Logf("chaos soak: seed=%d duration=%s (replay with FLUX_CHAOS_SEEDS=%d)", seed, dur, seed)

	const size = 15
	s, err := New(Options{
		Size:           size,
		Arity:          2,
		FaultInjection: true,
		FaultSeed:      seed,
		RPCTimeout:     1500 * time.Millisecond,
		Modules: []ModuleFactory{
			hb.Factory(hb.Config{Interval: 100 * time.Millisecond}),
			live.Factory(live.Config{}),
			kvs.Factory(kvs.ModuleConfig{}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ch := s.Chaos()

	// With FLUX_DUMP_DIR set (CI), chaos faults auto-dump telemetry and
	// a failed soak leaves a final snapshot behind as an artifact.
	var flight *Recorder
	if dumpDir := chaosenv.DumpDir(); dumpDir != "" {
		flight = s.EnableFlightRecorder(filepath.Join(dumpDir, fmt.Sprintf("chaos-seed%d", seed)))
	}
	t.Cleanup(func() {
		if flight == nil {
			return
		}
		if t.Failed() {
			flight.Dump("soak-failed")
		}
		flight.Wait()
	})

	rng := rand.New(rand.NewSource(seed))
	stop := make(chan struct{})
	var wg sync.WaitGroup

	type commitRec struct {
		key     string
		val     int
		version uint64
	}
	recs := make(chan commitRec, 1024)

	// Writers at leaf ranks: unique keys, so any successful read has
	// exactly one correct answer.
	for _, w := range []int{7, 9, 11, 13} {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle(w)
			defer h.Close()
			c := kvs.NewClient(h)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("chaos.w%d.i%d", w, i)
				if err := c.Put(key, i); err != nil {
					continue // chaos error: liveness is the only obligation
				}
				v, err := c.Commit()
				if err != nil {
					continue
				}
				select {
				case recs <- commitRec{key, i, v}:
				default:
				}
			}
		}(w)
	}

	// Readers at other leaves: causal-consistency checkers.
	for _, r := range []int{8, 10, 12, 14} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := s.Handle(r)
			defer h.Close()
			c := kvs.NewClient(h)
			for {
				select {
				case <-stop:
					return
				case rec := <-recs:
					if err := c.WaitVersion(rec.version); err != nil {
						continue
					}
					var got int
					if err := c.Get(rec.key, &got); err != nil {
						continue
					}
					if got != rec.val {
						t.Errorf("causal violation at rank %d: %s = %d after WaitVersion(%d), committed %d (seed %d)",
							r, rec.key, got, rec.version, rec.val, seed)
					}
				}
			}
		}(r)
	}

	// Ring pinger: rank-addressed plane under fire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := s.Handle(0)
		defer h.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.RPC("cmb.ping", uint32(1+i%(size-1)), nil) // errors are fine; hangs are not
		}
	}()

	// Chaos driver: seeded schedule of noise, partitions, and crashes.
	interior := []int{1, 2, 3, 4, 5, 6}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		crashes := 0
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			if flight != nil {
				flight.Poll() // poison latches and errno spikes dump themselves
			}
			switch rng.Intn(6) {
			case 0, 1: // background noise on every live link
				ch.SetAllFaults(transport.Faults{
					Drop:   0.05,
					Dup:    0.02,
					Delay:  time.Duration(rng.Intn(3)) * time.Millisecond,
					Jitter: 2 * time.Millisecond,
				})
			case 2, 3: // heal everything
				ch.Heal()
			case 4: // partition a random subtree away, heal later by case 2/3
				ch.Partition(interior[rng.Intn(len(interior))])
			case 5: // silent crash of an interior rank, detected later
				if crashes >= 2 {
					continue
				}
				victim := interior[rng.Intn(len(interior))]
				if !s.Alive(victim) {
					continue
				}
				crashes++
				ch.Crash(victim)
				wg.Add(1)
				go func(victim int) {
					defer wg.Done()
					// The silent window: only RPC deadlines bound callers.
					select {
					case <-time.After(300 * time.Millisecond):
					case <-stop:
					}
					ch.Sever(victim)
				}(victim)
			}
		}
	}()

	time.Sleep(dur)
	close(stop)
	// Generous bound: worst case is a fence/sync retrying through the
	// full backoff schedule against 1.5s deadlines.
	waitOrFatal(t, &wg, 60*time.Second, "chaos workload (some RPC hung past its deadline)")

	// Convergence: heal all faults, then every surviving rank must have a
	// live parent and agree on one final committed value.
	ch.Heal()
	deadline := time.After(20 * time.Second)
	for {
		converged := true
		for r := 1; r < size; r++ {
			if !s.Alive(r) {
				continue
			}
			if p := s.Broker(r).ParentRank(); p < 0 || !s.Alive(p) {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		select {
		case <-deadline:
			for r := 1; r < size; r++ {
				if s.Alive(r) {
					t.Logf("rank %d parent=%d alive=%v", r, s.Broker(r).ParentRank(), s.Alive(s.Broker(r).ParentRank()))
				}
			}
			t.Fatalf("overlay never converged after heal (seed %d)", seed)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}

	wh := s.Handle(7)
	defer wh.Close()
	wc := kvs.NewClient(wh)
	if err := wc.Put("chaos.final", "done"); err != nil {
		t.Fatalf("final put after heal: %v (seed %d)", err, seed)
	}
	ver, err := wc.Commit()
	if err != nil {
		t.Fatalf("final commit after heal: %v (seed %d)", err, seed)
	}
	for r := 0; r < size; r++ {
		if !s.Alive(r) {
			continue
		}
		h := s.Handle(r)
		c := kvs.NewClient(h)
		var got string
		err := c.WaitVersion(ver)
		if err == nil {
			err = c.Get("chaos.final", &got)
		}
		h.Close()
		if err != nil || got != "done" {
			t.Fatalf("rank %d: final read %q err %v (seed %d)", r, got, err, seed)
		}
	}
}

// TestConcurrentInteriorKillsDuringFence kills four interior ranks at
// once while an 8-party fence is in flight, then asserts the fence
// completes exactly once with one version, re-parenting converges, and
// every surviving rank's live module agrees on the down set.
func TestConcurrentInteriorKillsDuringFence(t *testing.T) {
	const size = 15
	s, err := New(Options{
		Size:       size,
		Arity:      2,
		RPCTimeout: 3 * time.Second,
		Modules: []ModuleFactory{
			hb.Factory(hb.Config{Interval: 100 * time.Millisecond}),
			live.Factory(live.Config{}),
			kvs.Factory(kvs.ModuleConfig{}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Victims are the depth-2 interior ranks: their parents (1, 2) stay
	// alive to detect the deaths, and all eight leaves must re-parent.
	victims := []int{3, 4, 5, 6}
	leaves := []int{7, 8, 9, 10, 11, 12, 13, 14}

	type fenceResult struct {
		rank int
		ver  uint64
		err  error
	}
	results := make(chan fenceResult, len(leaves))
	for _, leaf := range leaves {
		go func(leaf int) {
			h := s.Handle(leaf)
			defer h.Close()
			c := kvs.NewClient(h)
			if err := c.Put(fmt.Sprintf("kf.r%d", leaf), leaf); err != nil {
				results <- fenceResult{leaf, 0, err}
				return
			}
			v, err := c.Fence("killfence", len(leaves))
			results <- fenceResult{leaf, v, err}
		}(leaf)
	}

	// Let contributions start flowing through the doomed aggregators,
	// then take all four out concurrently.
	time.Sleep(20 * time.Millisecond)
	var kwg sync.WaitGroup
	for _, v := range victims {
		kwg.Add(1)
		go func(v int) {
			defer kwg.Done()
			s.Kill(v)
		}(v)
	}
	kwg.Wait()

	// Every participant must complete with the same version.
	var version uint64
	for range leaves {
		select {
		case res := <-results:
			if res.err != nil {
				t.Fatalf("rank %d: fence failed: %v", res.rank, res.err)
			}
			if version == 0 {
				version = res.ver
			} else if res.ver != version {
				t.Fatalf("rank %d: fence version %d, others got %d", res.rank, res.ver, version)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("fence participants hung after concurrent interior kills")
		}
	}

	// All fenced data landed in one root transition.
	h0 := s.Handle(0)
	defer h0.Close()
	c0 := kvs.NewClient(h0)
	for _, leaf := range leaves {
		var got int
		if err := c0.Get(fmt.Sprintf("kf.r%d", leaf), &got); err != nil || got != leaf {
			t.Fatalf("kf.r%d = %d (err %v), want %d", leaf, got, err, leaf)
		}
	}

	// Re-parenting converged: every leaf's parent is a live rank.
	deadline := time.After(20 * time.Second)
	for _, leaf := range leaves {
		for {
			if p := s.Broker(leaf).ParentRank(); p >= 0 && s.Alive(p) {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("rank %d parent = %d (dead) after kills", leaf, s.Broker(leaf).ParentRank())
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}

	// live.Down converges to exactly the victim set on every survivor.
	want := append([]int(nil), victims...)
	sort.Ints(want)
	survivors := []int{0, 1, 2, 7, 8, 9, 10, 11, 12, 13, 14}
	for _, r := range survivors {
		h := s.Handle(r)
		for {
			down, err := live.Down(h)
			if err == nil && equalInts(down, want) {
				break
			}
			select {
			case <-deadline:
				h.Close()
				t.Fatalf("rank %d: live.Down = %v (err %v), want %v", r, down, err, want)
			default:
				time.Sleep(5 * time.Millisecond)
			}
		}
		h.Close()
	}

	// The overlays still work end to end: ring ping from a reparented
	// leaf to another subtree.
	hl := s.Handle(7)
	defer hl.Close()
	if _, err := hl.RPC("cmb.ping", uint32(14), nil); err != nil {
		t.Fatalf("post-kill ring ping: %v", err)
	}
	if _, err := hl.RPC("cmb.ping", wire.NodeidAny, nil); err != nil {
		t.Fatalf("post-kill tree ping: %v", err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
