package main

// lock-across-block: flags operations that can block indefinitely while
// a sync (or debuglock) mutex is held. In a message broker every such
// site is a latent deadlock: the blocked goroutine holds the lock, the
// goroutine that would unblock it needs the lock. The CMB design rule
// is that mailboxes and send queues are unbounded precisely so nothing
// blocks under a lock; this pass is the mechanized form of that rule.
//
// The analysis is a flow-sensitive may-hold dataflow over the CFG of
// each function body: Lock/RLock adds the printed receiver expression
// to the held set, Unlock/RUnlock removes it, `defer mu.Unlock()`
// holds to the end of the function, and join points union the facts of
// their predecessors — so a lock released on only one arm of a branch
// is still may-held below it, while one released on every arm is free.
// Same-package calls apply the callee's lock summary (a helper that
// returns holding s.mu makes the caller's set grow at the call site;
// see summary.go), and immediately-invoked function literals are
// analyzed inline under the caller's held set. While any lock may be
// held, these operations are flagged:
//
//   - channel send statements and receive expressions
//   - select without a default clause, and range over a channel
//   - time.Sleep
//   - Send/Recv on connection-shaped receivers (method set has both)
//   - the Handle RPC family (RPC, RPCContext, RPCWithOptions,
//     PublishEvent), which block on a routed round trip
//
// sync.Cond.Wait is deliberately not flagged: it unlocks while parked,
// which is the one sanctioned way to wait under a mutex. Code
// unreachable from the function entry (after return/panic) is not
// analyzed.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

const lockAcrossBlockName = "lock-across-block"

var lockAcrossBlockPass = Pass{
	Name: lockAcrossBlockName,
	Doc:  "flag potentially blocking operations reachable while a mutex is held",
	Run:  runLockAcrossBlock,
}

type lockOpKind int

const (
	lockOpNone lockOpKind = iota
	lockOpLock
	lockOpUnlock
)

// lockOpOf classifies e as a Lock/Unlock-style call on a tracked mutex
// and returns the lock's identity (the printed receiver expression).
func lockOpOf(p *Package, e ast.Expr) (key string, kind lockOpKind) {
	ce, ok := e.(*ast.CallExpr)
	if !ok {
		return "", lockOpNone
	}
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockOpNone
	}
	var k lockOpKind
	switch se.Sel.Name {
	case "Lock", "RLock":
		k = lockOpLock
	case "Unlock", "RUnlock":
		k = lockOpUnlock
	default:
		return "", lockOpNone
	}
	if !isMutexMethodPkg(methodPkgPath(p.Info, se)) {
		return "", lockOpNone
	}
	return types.ExprString(se.X), k
}

// heldSet is the dataflow fact: may-held lock keys with the position of
// the acquiring call. nil is bottom (unreachable).
type heldSet map[string]token.Pos

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// anyHeld returns the smallest held lock name, for deterministic
// messages.
func (h heldSet) anyHeld() string {
	best := ""
	for k := range h {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func joinHeld(dst, src heldSet) heldSet {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = heldSet{}
	}
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
	return dst
}

func equalHeld(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

type lockChecker struct {
	l        *Loader
	p        *Package
	ix       *pkgIndex
	findings []Finding
	// inline marks function literals analyzed in their caller's lock
	// context (immediately-invoked ones); the top-level sweep skips
	// them. Every other literal runs on a fresh goroutine or at an
	// unknown time and is analyzed with an empty held set.
	inline map[*ast.FuncLit]bool
}

func runLockAcrossBlock(l *Loader, p *Package) []Finding {
	c := &lockChecker{l: l, p: p, ix: indexOf(p), inline: map[*ast.FuncLit]bool{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.analyze(fd.Body, heldSet{}, true)
		}
		// Non-inline function literals start life with nothing held.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && !c.inline[fl] {
				c.analyze(fl.Body, heldSet{}, true)
			}
			return true
		})
	}
	return c.findings
}

func (c *lockChecker) report(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pass: lockAcrossBlockName,
		Pos:  c.l.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// analyze solves the may-hold dataflow over body starting from entry
// and, when report is set, walks the reachable ops once more to emit
// findings against the converged facts. The returned set is the fact
// at function exit (what an immediately-invoked literal leaves its
// caller holding).
func (c *lockChecker) analyze(body *ast.BlockStmt, entry heldSet, report bool) heldSet {
	g := c.ix.cfgOf(body)
	facts, _ := solve(g, analysis[heldSet]{
		dir:      forward,
		boundary: func() heldSet { return entry.clone() },
		bottom:   func() heldSet { return nil },
		join:     joinHeld,
		equal:    equalHeld,
		transfer: func(b *block, in heldSet) heldSet {
			fact := in.clone()
			for _, o := range b.ops {
				c.applyOp(o, fact, false)
			}
			return fact
		},
	})
	if report {
		reach := g.reachable()
		for _, blk := range g.blocks {
			if !reach[blk] {
				continue
			}
			fact := facts[blk].clone()
			for _, o := range blk.ops {
				c.checkOp(o, fact)
				c.applyOp(o, fact, true)
			}
		}
	}
	return facts[g.exit].clone()
}

// applyOp applies one op's lock side effects to fact: direct lock ops,
// inlined IIFE bodies, and same-package callee summaries.
func (c *lockChecker) applyOp(o op, fact heldSet, report bool) {
	switch n := o.node.(type) {
	case *ast.ExprStmt:
		if key, kind := lockOpOf(c.p, n.X); kind == lockOpLock {
			fact[key] = n.Pos()
			return
		} else if kind == lockOpUnlock {
			delete(fact, key)
			return
		}
		// An immediately-invoked literal runs on this goroutine with the
		// current locks held; its exit fact is what we continue with.
		if ce, ok := n.X.(*ast.CallExpr); ok {
			if fl, ok := ce.Fun.(*ast.FuncLit); ok {
				c.inline[fl] = true
				exit := c.analyze(fl.Body, fact, report)
				for k := range fact {
					delete(fact, k)
				}
				for k, v := range exit {
					fact[k] = v
				}
				return
			}
		}
		c.applyCalls(n.X, fact)

	case *ast.DeferStmt:
		// defer mu.Unlock() means held to end of function: leave the set
		// alone. Other deferred calls run at exit; their effects are not
		// applied here (the summary layer accounts for them at exit).

	case *ast.GoStmt:
		// The spawned goroutine does not affect our lock state.

	default:
		for _, h := range o.headNodes() {
			c.applyCalls(h, fact)
		}
	}
}

// applyCalls applies lock ops and callee lock summaries found in one
// op head (function literals excluded: they run elsewhere).
func (c *lockChecker) applyCalls(n ast.Node, fact heldSet) {
	if n == nil {
		return
	}
	inspectHead(n, func(m ast.Node) bool {
		ce, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, kind := lockOpOf(c.p, ce); kind == lockOpLock {
			fact[key] = ce.Pos()
			return true
		} else if kind == lockOpUnlock {
			delete(fact, key)
			return true
		}
		if _, isLit := ce.Fun.(*ast.FuncLit); isLit {
			return true
		}
		if callee := c.ix.calleeDecl(ce.Fun); callee != nil {
			applyLockSummary(c.ix, ce, callee, fact, nil)
		}
		return true
	})
}

// checkOp reports blocking operations in one op against the current
// held set.
func (c *lockChecker) checkOp(o op, held heldSet) {
	if o.kind == opComm {
		// The comm op was accounted for by the select-head report.
		return
	}
	switch n := o.node.(type) {
	case *ast.SendStmt:
		if len(held) > 0 {
			c.report(n.Pos(), "channel send while %s is held", held.anyHeld())
		}
		c.checkExpr(n.Chan, held)
		c.checkExpr(n.Value, held)

	case *ast.ExprStmt:
		if _, kind := lockOpOf(c.p, n.X); kind != lockOpNone {
			return
		}
		c.checkExpr(n.X, held)

	case *ast.DeferStmt:
		// Deferred calls run at an unknowable lock state; only their
		// arguments are evaluated here.
		if _, kind := lockOpOf(c.p, n.Call); kind != lockOpNone {
			return
		}
		for _, a := range n.Call.Args {
			c.checkExpr(a, held)
		}

	case *ast.GoStmt:
		for _, a := range n.Call.Args {
			c.checkExpr(a, held)
		}

	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range n.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if len(held) > 0 && !hasDefault {
			c.report(n.Pos(), "select without default while %s is held", held.anyHeld())
		}

	case *ast.RangeStmt:
		if len(held) > 0 && isChanType(c.p.Info.TypeOf(n.X)) {
			c.report(n.Pos(), "range over channel while %s is held", held.anyHeld())
		}
		c.checkExpr(n.X, held)

	case *ast.IfStmt:
		c.checkExpr(n.Cond, held)

	case *ast.ForStmt:
		if n.Cond != nil {
			c.checkExpr(n.Cond, held)
		}

	case *ast.SwitchStmt:
		if n.Tag != nil {
			c.checkExpr(n.Tag, held)
		}

	case *ast.CaseClause:
		for _, e := range n.List {
			c.checkExpr(e, held)
		}

	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			c.checkExpr(e, held)
		}
		for _, e := range n.Lhs {
			c.checkExpr(e, held)
		}

	case *ast.ReturnStmt:
		for _, e := range n.Results {
			c.checkExpr(e, held)
		}

	case *ast.IncDecStmt:
		c.checkExpr(n.X, held)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, held)
					}
				}
			}
		}
	}
}

// checkExpr walks an expression for blocking operations under held
// locks. Function literals are skipped: they execute elsewhere.
func (c *lockChecker) checkExpr(e ast.Expr, held heldSet) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.Pos(), "channel receive while %s is held", held.anyHeld())
			}
		case *ast.CallExpr:
			c.checkCall(n, held)
		}
		return true
	})
}

// checkCall flags blocking calls made while locks are held.
func (c *lockChecker) checkCall(ce *ast.CallExpr, held heldSet) {
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := se.Sel.Name
	pkgPath := methodPkgPath(c.p.Info, se)
	switch {
	case pkgPath == "time" && name == "Sleep":
		c.report(ce.Pos(), "time.Sleep while %s is held", held.anyHeld())
	case rpcFamily[name] && c.p.Info.Selections[se] != nil:
		c.report(ce.Pos(), "%s (blocking round trip) while %s is held", name, held.anyHeld())
	case connLike(c.p.Info, se):
		c.report(ce.Pos(), "connection %s while %s is held", name, held.anyHeld())
	}
}
