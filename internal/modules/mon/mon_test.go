package mon

import (
	"testing"
	"time"

	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int, samplers ...Sampler) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size: size,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			hb.Factory(hb.Config{Interval: time.Hour}), // Pulse-driven
			Factory(Config{Samplers: samplers}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSamplesReducedIntoKVS(t *testing.T) {
	const size = 7
	// Each rank reports load = rank (sum = 21, min = 0, max = 6).
	sampler := func(rank int) (string, float64) { return "load", float64(rank) }
	s := newSession(t, size, sampler)
	h := s.Handle(0)
	defer h.Close()

	sub, err := h.Subscribe("mon.epoch")
	if err != nil {
		t.Fatal(err)
	}
	if err := Enable(h, 1); err != nil {
		t.Fatal(err)
	}
	epoch, err := hb.Pulse(h)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Chan():
	case <-time.After(10 * time.Second):
		t.Fatal("epoch record never finalized")
	}

	kc := kvs.NewClient(h)
	var record struct {
		Sum, Min, Max, Avg float64
		Count              int
	}
	key := "mon.load.epoch-" + itoa(epoch)
	if err := kc.Get(key, &record); err != nil {
		t.Fatal(err)
	}
	if record.Count != size || record.Sum != 21 || record.Min != 0 || record.Max != 6 {
		t.Fatalf("record = %+v", record)
	}
	if record.Avg != 3 {
		t.Fatalf("avg = %v, want 3", record.Avg)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestDisabledByDefault(t *testing.T) {
	s := newSession(t, 3, func(rank int) (string, float64) { return "m", 1 })
	h := s.Handle(0)
	defer h.Close()
	if _, err := hb.Pulse(h); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	kc := kvs.NewClient(h)
	if err := kc.Get("mon.m.epoch-1", nil); !kvs.ErrNotFound(err) {
		t.Fatalf("sample recorded while disabled: %v", err)
	}
}

func TestStrideSkipsEpochs(t *testing.T) {
	s := newSession(t, 3, func(rank int) (string, float64) { return "m", 2 })
	h := s.Handle(0)
	defer h.Close()
	sub, err := h.Subscribe("mon.epoch")
	if err != nil {
		t.Fatal(err)
	}
	if err := Enable(h, 2); err != nil { // sample even epochs only
		t.Fatal(err)
	}
	hb.Pulse(h) // epoch 1: skipped
	hb.Pulse(h) // epoch 2: sampled
	select {
	case ev := <-sub.Chan():
		var body struct {
			Epoch uint64 `json:"epoch"`
		}
		ev.UnpackJSON(&body)
		if body.Epoch != 2 {
			t.Fatalf("finalized epoch %d, want 2", body.Epoch)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("strided epoch never finalized")
	}
	kc := kvs.NewClient(h)
	if err := kc.Get("mon.m.epoch-1", nil); !kvs.ErrNotFound(err) {
		t.Fatalf("skipped epoch was recorded: %v", err)
	}
}

func TestDisableStopsSampling(t *testing.T) {
	s := newSession(t, 3, func(rank int) (string, float64) { return "m", 1 })
	h := s.Handle(0)
	defer h.Close()
	sub, _ := h.Subscribe("mon.epoch")
	Enable(h, 1)
	hb.Pulse(h)
	select {
	case <-sub.Chan():
	case <-time.After(10 * time.Second):
		t.Fatal("enabled sampling produced nothing")
	}
	if err := Disable(h); err != nil {
		t.Fatal(err)
	}
	hb.Pulse(h)
	select {
	case ev := <-sub.Chan():
		t.Fatalf("sampling continued after disable: %s", ev.Topic)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestBrokerMetricsBridge(t *testing.T) {
	const size = 3
	s, err := session.New(session.Options{
		Size: size,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			hb.Factory(hb.Config{Interval: time.Hour}),
			Factory(Config{BrokerMetrics: true}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	h := s.Handle(0)
	defer h.Close()

	sub, err := h.Subscribe("mon.epoch")
	if err != nil {
		t.Fatal(err)
	}
	if err := Enable(h, 1); err != nil {
		t.Fatal(err)
	}
	epoch, err := hb.Pulse(h)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Chan():
	case <-time.After(10 * time.Second):
		t.Fatal("epoch record never finalized")
	}

	// Every rank contributes its broker registry; events_applied is
	// nonzero everywhere (the hb pulse itself was applied at each rank).
	kc := kvs.NewClient(h)
	var record struct {
		Sum   float64
		Count int
	}
	key := "mon.cmb.events_applied.epoch-" + itoa(epoch)
	if err := kc.Get(key, &record); err != nil {
		t.Fatal(err)
	}
	if record.Count != size {
		t.Fatalf("count = %d, want %d", record.Count, size)
	}
	if record.Sum < float64(size) {
		t.Fatalf("events_applied sum = %v, want >= %d", record.Sum, size)
	}
}
