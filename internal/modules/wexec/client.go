package wexec

import (
	"context"
	"fmt"

	"fluxgo/internal/broker"
	"fluxgo/internal/kvs"
	"fluxgo/internal/wire"
)

// JobResult summarizes a completed bulk job.
type JobResult struct {
	JobID   string
	State   string // "complete" or "failed"
	NTasks  int
	NFailed int
}

// Run launches program with args on the given ranks (nil means every
// rank) under the given job id. It returns once the launch event has
// been published; use Wait for completion.
func Run(h *broker.Handle, jobid, program string, args []string, ranks []int) (ntasks int, err error) {
	resp, err := h.RPC("wexec.run", wire.NodeidAny, runBody{
		JobID:   jobid,
		Program: program,
		Args:    args,
		Ranks:   ranks,
	})
	if err != nil {
		return 0, err
	}
	var body struct {
		NTasks int `json:"ntasks"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		return 0, err
	}
	return body.NTasks, nil
}

// Kill signals every task of the job session-wide.
func Kill(h *broker.Handle, jobid string) error {
	_, err := h.PublishEvent("wexec.kill", killBody{JobID: jobid})
	return err
}

// Wait blocks until the job completes and returns its result, reading
// the final state from the KVS.
func Wait(ctx context.Context, h *broker.Handle, jobid string) (JobResult, error) {
	sub, err := h.Subscribe("wexec.complete")
	if err != nil {
		return JobResult{}, err
	}
	defer sub.Close()

	kc := kvs.NewClient(h)
	// The job may already have completed before we subscribed.
	if res, ok := readResult(kc, jobid); ok {
		return res, nil
	}
	for {
		select {
		case <-ctx.Done():
			return JobResult{}, ctx.Err()
		case ev, ok := <-sub.Chan():
			if !ok {
				return JobResult{}, fmt.Errorf("wexec: subscription closed waiting for %s", jobid)
			}
			var body struct {
				JobID   string `json:"jobid"`
				Version uint64 `json:"version"`
			}
			if err := ev.UnpackJSON(&body); err != nil || body.JobID != jobid {
				continue
			}
			// Sync the local root to the completing commit before reading.
			if err := kc.WaitVersion(body.Version); err != nil {
				return JobResult{}, err
			}
			res, ok := readResult(kc, jobid)
			if !ok {
				return JobResult{}, fmt.Errorf("wexec: job %s record missing after completion", jobid)
			}
			return res, nil
		}
	}
}

// readResult loads the job's final record from the KVS if present.
func readResult(kc *kvs.Client, jobid string) (JobResult, bool) {
	var state string
	if err := kc.Get(fmt.Sprintf("lwj.%s.state", jobid), &state); err != nil {
		return JobResult{}, false
	}
	res := JobResult{JobID: jobid, State: state}
	kc.Get(fmt.Sprintf("lwj.%s.ntasks", jobid), &res.NTasks)
	kc.Get(fmt.Sprintf("lwj.%s.nfailed", jobid), &res.NFailed)
	return res, true
}

// Output fetches one task's captured stdout from the KVS.
func Output(h *broker.Handle, jobid string, rank int) (stdout, stderr string, exit int, err error) {
	kc := kvs.NewClient(h)
	prefix := fmt.Sprintf("lwj.%s.%d", jobid, rank)
	if err = kc.Get(prefix+".exitcode", &exit); err != nil {
		return "", "", 0, err
	}
	kc.Get(prefix+".stdout", &stdout) // missing keys leave zero values
	kc.Get(prefix+".stderr", &stderr)
	return stdout, stderr, exit, nil
}
