package wire

import (
	"testing"
)

// benchMessage builds a representative routed request: a three-hop route
// stack, a short topic, a 256-byte payload, and live trace context —
// i.e. what an interior broker near the root sees on the fan-in path.
func benchMessage() *Message {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &Message{
		Type:    Request,
		Topic:   "kvs.load",
		Nodeid:  0,
		Seq:     42,
		Route:   []string{"h:7", "t:rank:6", "t:rank:3"},
		Payload: payload,
		TraceID: 0x1234567890abcdef,
		Parent:  3,
		Hops:    4,
	}
}

// BenchmarkMarshal measures hot-path encoding of one routed message as
// the transport writer performs it: MarshalAppend into a reused scratch
// buffer (pre-PR baseline: one exact-size allocation per Marshal call).
func BenchmarkMarshal(b *testing.B) {
	m := benchMessage()
	scratch := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		scratch, err = MarshalAppend(scratch[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalAlloc measures the allocating Marshal variant used
// off the hot path (fresh self-contained slice per call).
func BenchmarkMarshalAlloc(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnmarshal measures hot-path decoding of one routed message.
func BenchmarkUnmarshal(b *testing.B) {
	m := benchMessage()
	buf, err := Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnmarshalPooled measures the transport reader's decode path:
// a pooled receive buffer adopted by a pooled message, released again
// after the (simulated) single-destination handoff.
func BenchmarkUnmarshalPooled(b *testing.B) {
	m := benchMessage()
	frame, err := Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuf(len(frame))
		copy(buf, frame)
		got, err := UnmarshalPooled(buf)
		if err != nil {
			b.Fatal(err)
		}
		got.Handoff()
		got.Release()
	}
}
