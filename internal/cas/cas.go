// Package cas implements the content-addressable object store underlying
// the Flux KVS.
//
// Exactly as in the paper, JSON objects are placed in a content-addressed
// store hashed by their SHA-1 digests, borrowing ideas from ZFS and git:
// values are leaf objects; directories are objects mapping a list of
// names to other objects by SHA-1 reference; and an external root
// reference points to the root directory object, so every update yields a
// new root reference. Slave caches expire unused entries after a period
// of disuse to save memory.
package cas

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"fluxgo/internal/clock"
	"fluxgo/internal/debuglock"
)

// RefLen is the byte length of a SHA-1 reference.
const RefLen = sha1.Size

// Ref is a SHA-1 content reference.
type Ref [RefLen]byte

// String returns the full hex form of the reference.
func (r Ref) String() string { return hex.EncodeToString(r[:]) }

// Short returns an abbreviated hex form for logs, in the style of the
// paper's examples ("1c002dde...").
func (r Ref) Short() string { return hex.EncodeToString(r[:4]) }

// IsZero reports whether r is the all-zero (null) reference.
func (r Ref) IsZero() bool { return r == Ref{} }

// ParseRef decodes a full-length hex reference.
func ParseRef(s string) (Ref, error) {
	var r Ref
	b, err := hex.DecodeString(s)
	if err != nil {
		return r, fmt.Errorf("cas: parse ref: %w", err)
	}
	if len(b) != RefLen {
		return r, fmt.Errorf("cas: parse ref: got %d bytes, want %d", len(b), RefLen)
	}
	copy(r[:], b)
	return r, nil
}

// Kind discriminates object types in the store.
type Kind byte

// Object kinds.
const (
	KindValue Kind = 'v' // leaf: opaque JSON value bytes
	KindDir   Kind = 'd' // interior: name -> Ref map
)

// Object is a decoded store object: either a value or a directory.
type Object struct {
	Kind  Kind
	Value []byte         // valid when Kind == KindValue
	Dir   map[string]Ref // valid when Kind == KindDir
}

// NewValue returns a value object holding raw JSON bytes.
func NewValue(jsonBytes []byte) *Object {
	return &Object{Kind: KindValue, Value: jsonBytes}
}

// NewDir returns an empty directory object.
func NewDir() *Object {
	return &Object{Kind: KindDir, Dir: map[string]Ref{}}
}

// Copy returns a deep copy of the object, so callers may mutate a
// directory without aliasing cached state.
func (o *Object) Copy() *Object {
	c := &Object{Kind: o.Kind}
	if o.Value != nil {
		c.Value = append([]byte(nil), o.Value...)
	}
	if o.Dir != nil {
		c.Dir = make(map[string]Ref, len(o.Dir))
		for k, v := range o.Dir {
			c.Dir[k] = v
		}
	}
	return c
}

// Encode produces the canonical byte serialization whose SHA-1 is the
// object's reference. Directory entries are sorted by name so that equal
// directories always produce equal references — the determinism the
// hash-tree commit protocol depends on.
func (o *Object) Encode() []byte {
	switch o.Kind {
	case KindValue:
		buf := make([]byte, 0, 1+len(o.Value))
		buf = append(buf, byte(KindValue))
		return append(buf, o.Value...)
	case KindDir:
		names := make([]string, 0, len(o.Dir))
		for name := range o.Dir {
			names = append(names, name)
		}
		sort.Strings(names)
		size := 1
		for _, n := range names {
			size += binary.MaxVarintLen64 + len(n) + RefLen
		}
		buf := make([]byte, 0, size)
		buf = append(buf, byte(KindDir))
		for _, n := range names {
			buf = binary.AppendUvarint(buf, uint64(len(n)))
			buf = append(buf, n...)
			ref := o.Dir[n]
			buf = append(buf, ref[:]...)
		}
		return buf
	default:
		panic(fmt.Sprintf("cas: encode unknown kind %q", o.Kind))
	}
}

// ErrCorrupt is returned when decoding malformed object bytes.
var ErrCorrupt = errors.New("cas: corrupt object encoding")

// Decode parses canonical object bytes produced by Encode.
func Decode(data []byte) (*Object, error) {
	if len(data) == 0 {
		return nil, ErrCorrupt
	}
	switch Kind(data[0]) {
	case KindValue:
		return &Object{Kind: KindValue, Value: append([]byte(nil), data[1:]...)}, nil
	case KindDir:
		o := NewDir()
		p := data[1:]
		for len(p) > 0 {
			n, w := binary.Uvarint(p)
			if w <= 0 {
				return nil, ErrCorrupt
			}
			p = p[w:]
			if uint64(len(p)) < n+RefLen {
				return nil, ErrCorrupt
			}
			name := string(p[:n])
			p = p[n:]
			var ref Ref
			copy(ref[:], p[:RefLen])
			p = p[RefLen:]
			o.Dir[name] = ref
		}
		return o, nil
	default:
		return nil, ErrCorrupt
	}
}

// HashOf returns the SHA-1 reference of encoded object bytes.
func HashOf(encoded []byte) Ref {
	return Ref(sha1.Sum(encoded))
}

// entry is one cached object with its last-use timestamp for expiry.
type entry struct {
	data     []byte
	lastUsed time.Time
	pinned   bool
}

// Store is a thread-safe content-addressed object cache. The master's
// store pins everything; slave caches expire unused entries via Expire.
type Store struct {
	clk  clock.Clock
	mu   debuglock.Mutex
	objs map[Ref]*entry
	hits uint64
	miss uint64

	// sink, when installed, receives every object newly inserted by
	// Put/PutRaw. It is invoked after the store lock is released (so a
	// sink may do I/O) and only for first insertion of a ref, never for
	// the idempotent re-put of known content. Written once before the
	// store is shared; read without the lock.
	sink func(ref Ref, encoded []byte)
}

// NewStore returns an empty store whose expiry decisions use clk.
func NewStore(clk clock.Clock) *Store {
	if clk == nil {
		clk = clock.Real()
	}
	s := &Store{clk: clk, objs: make(map[Ref]*entry)}
	s.mu.SetClass("cas.Store.mu")
	return s
}

// Put stores the object and returns its reference. Storing identical
// content is idempotent — the content hash guarantees deduplication.
func (s *Store) Put(o *Object) Ref {
	return s.PutRaw(o.Encode())
}

// PutRaw stores pre-encoded object bytes and returns their reference.
func (s *Store) PutRaw(encoded []byte) Ref {
	ref := HashOf(encoded)
	inserted := false
	s.mu.Lock()
	if e, ok := s.objs[ref]; ok {
		e.lastUsed = s.clk.Now()
	} else {
		s.objs[ref] = &entry{
			data:     append([]byte(nil), encoded...),
			lastUsed: s.clk.Now(),
		}
		inserted = true
	}
	s.mu.Unlock()
	if inserted && s.sink != nil {
		s.sink(ref, encoded)
	}
	return ref
}

// SetSink installs the write-through hook; see the sink field. Must be
// called before the store is shared across goroutines.
func (s *Store) SetSink(fn func(ref Ref, encoded []byte)) { s.sink = fn }

// snapEntry is one object captured by snapshot.
type snapEntry struct {
	ref  Ref
	data []byte // aliases the store entry; entries are never mutated
}

// snapshot returns every cached object, for checkpointing.
func (s *Store) snapshot() []snapEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]snapEntry, 0, len(s.objs))
	for ref, e := range s.objs {
		out = append(out, snapEntry{ref: ref, data: e.data})
	}
	return out
}

// Get returns the decoded object for ref, refreshing its last-use time.
func (s *Store) Get(ref Ref) (*Object, bool) {
	raw, ok := s.GetRaw(ref)
	if !ok {
		return nil, false
	}
	o, err := Decode(raw)
	if err != nil {
		return nil, false
	}
	return o, true
}

// GetRaw returns the encoded bytes for ref, refreshing its last-use time.
func (s *Store) GetRaw(ref Ref) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objs[ref]
	if !ok {
		s.miss++
		return nil, false
	}
	s.hits++
	e.lastUsed = s.clk.Now()
	return e.data, true
}

// Has reports whether ref is present without refreshing last-use.
func (s *Store) Has(ref Ref) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objs[ref]
	return ok
}

// Pin marks ref exempt from expiry (e.g. the master pins all content).
func (s *Store) Pin(ref Ref) {
	s.mu.Lock()
	if e, ok := s.objs[ref]; ok {
		e.pinned = true
	}
	s.mu.Unlock()
}

// Expire removes unpinned entries unused for at least maxAge and returns
// the number removed. This implements the paper's "unused slave object
// cache entries are expired after a period of disuse".
func (s *Store) Expire(maxAge time.Duration) int {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for ref, e := range s.objs {
		if !e.pinned && now.Sub(e.lastUsed) >= maxAge {
			delete(s.objs, ref)
			removed++
		}
	}
	return removed
}

// Len returns the number of cached objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objs)
}

// Stats returns cumulative cache hits and misses.
func (s *Store) Stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.miss
}
