// Package pmi implements a PMI-1-style process-management interface
// over the Flux KVS and barrier modules — the paper's "custom PMI
// library allows MPI run-times to access the Flux KVS and collective
// barrier modules", the bootstrap pattern (put, fence, get) that
// motivates KAP's coordinated access workload.
package pmi

import (
	"fmt"

	"fluxgo/internal/broker"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/barrier"
)

// PMI is one process's interface. Typical MPI bootstrap:
//
//	p.Put("business-card", myAddr)
//	p.Fence()
//	peer := p.Get(otherRank, "business-card")
type PMI struct {
	h       *broker.Handle
	kc      *kvs.Client
	jobid   string
	rank    int
	size    int
	fenceNo int
}

// New creates a PMI context for one process of an nprocs-wide job.
// rank here is the process's index within the job, not the broker rank.
func New(h *broker.Handle, jobid string, rank, size int) (*PMI, error) {
	if size < 1 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("pmi: rank %d outside job of size %d", rank, size)
	}
	return &PMI{h: h, kc: kvs.NewClient(h), jobid: jobid, rank: rank, size: size}, nil
}

// Rank returns the process's job rank.
func (p *PMI) Rank() int { return p.rank }

// Size returns the job size.
func (p *PMI) Size() int { return p.size }

// KVSName returns the job's KVS namespace, as PMI_KVS_Get_my_name would.
func (p *PMI) KVSName() string { return "pmi." + p.jobid }

// key namespaces a per-rank entry.
func (p *PMI) key(rank int, name string) string {
	return fmt.Sprintf("%s.%d.%s", p.KVSName(), rank, name)
}

// Put stores a key-value pair in this process's portion of the job
// namespace. Values become globally visible only after Fence.
func (p *PMI) Put(name string, value string) error {
	return p.kc.Put(p.key(p.rank, name), value)
}

// Fence commits all processes' puts collectively and synchronizes: when
// it returns, every put made before any process's Fence is visible to
// all (KVS fence = commit + barrier, exactly as in the paper).
func (p *PMI) Fence() error {
	p.fenceNo++
	_, err := p.kc.Fence(fmt.Sprintf("%s.fence.%d", p.KVSName(), p.fenceNo), p.size)
	return err
}

// Get reads another process's value (after a Fence).
func (p *PMI) Get(rank int, name string) (string, error) {
	if rank < 0 || rank >= p.size {
		return "", fmt.Errorf("pmi: get from rank %d outside job of size %d", rank, p.size)
	}
	var v string
	if err := p.kc.Get(p.key(rank, name), &v); err != nil {
		return "", err
	}
	return v, nil
}

// Barrier synchronizes the job's processes without committing.
func (p *PMI) Barrier() error {
	p.fenceNo++
	return barrier.Enter(p.h, fmt.Sprintf("%s.barrier.%d", p.KVSName(), p.fenceNo), p.size)
}

// Abort marks the job aborted in the KVS for other processes to see.
func (p *PMI) Abort(code int, msg string) error {
	p.kc.Put(p.KVSName()+".abort", map[string]any{"rank": p.rank, "code": code, "msg": msg})
	_, err := p.kc.Commit()
	return err
}
