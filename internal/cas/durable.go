package cas

// The disk-backed tier beneath the in-memory store: a write-through
// WAL plus git-style pack checkpoints.
//
// Layout under dir:
//
//	wal.log           append-only CRC-framed records (wal.go framing)
//	pack-<seq>.pack   checkpoint: full store image, written to a .tmp
//	                  sibling, fsynced, then atomically renamed
//
// Every object newly inserted into the Store is shadowed into the WAL
// by the store's sink hook; the master's root ref + commit version ride
// the same log as recRoot records. Checkpoint folds the log into a new
// pack (root record first, then every object, then a recEnd trailer
// carrying the record count) and truncates the log. Recovery loads the
// newest pack — a named pack is complete by construction, so one that
// fails validation is a fatal media error, never silently skipped for
// a staler ancestor — then replays the WAL on top, object records
// idempotently and root records version-ratcheted, so a crash between
// pack rename and log truncation is harmless.
//
// Fsync discipline: an object append is durable only after the Sync
// inside Commit (or Checkpoint) returns nil; Commit never acknowledges
// a root whose objects could be lost — a failed write-through append
// poisons the log and forces an inline heal checkpoint (which rewrites
// the full store through a fresh file) before any further root is
// persisted.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fluxgo/internal/clock"
	"fluxgo/internal/debuglock"
)

const (
	walName    = "wal.log"
	packPrefix = "pack-"
	packSuffix = ".pack"
	tmpSuffix  = ".tmp"
)

// rootMeta is the persisted master state: the current root reference
// and the commit sequence number that produced it.
type rootMeta struct {
	Root    string `json:"root"`
	Version uint64 `json:"version"`
}

// recLoc locates one framed object record on disk for read-miss loads.
type recLoc struct {
	pack bool // in the current pack file (else the WAL)
	off  int64
	n    int
}

// DurableStats is a point-in-time snapshot of the disk tier, surfaced
// through kvs stats RPCs and `flux storage`.
type DurableStats struct {
	Dir              string
	IndexedObjects   int
	WALBytes         int64
	WALRecords       uint64
	Syncs            uint64
	Checkpoints      uint64
	PackSeq          uint64
	PackBytes        int64
	RecoveredObjects int // objects loaded from disk at open
	ReplayedRecords  int // WAL records replayed at open
	DiskLoads        uint64
	SinkErr          string // sticky write-through failure, if any
}

// Durable layers the disk tier beneath store. Obtain via OpenDurable;
// all methods are safe for concurrent use.
type Durable struct {
	fs    FS
	dir   string
	store *Store
	wal   *WAL

	mu      debuglock.Mutex
	root    Ref
	version uint64
	packSeq uint64
	index   map[Ref]recLoc

	// sinkErr latches a failed write-through append: the WAL may be
	// missing objects, so no root may be committed until a checkpoint
	// heals the gap. Cleared by a successful checkpoint.
	sinkErr error

	recoveredObjects int
	replayedRecords  int
	checkpoints      uint64
	packBytes        int64
	diskLoads        uint64
}

// OpenDurable recovers (or initializes) the disk tier at dir and
// returns it with a fresh in-memory Store attached, write-through
// installed. The store's expiry clock is clk.
func OpenDurable(fsys FS, dir string, clk clock.Clock) (*Durable, error) {
	if fsys == nil {
		fsys = DirFS()
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("cas: durable mkdir: %w", err)
	}
	d := &Durable{
		fs:    fsys,
		dir:   dir,
		store: NewStore(clk),
		index: make(map[Ref]recLoc),
	}
	d.mu.SetClass("cas.Durable.mu")

	if err := d.loadPack(); err != nil {
		return nil, err
	}
	wal, recs, err := OpenWAL(fsys, join(dir, walName))
	if err != nil {
		return nil, err
	}
	d.wal = wal
	off := int64(0)
	for _, rec := range recs {
		total := walOverhead + len(rec.Payload)
		d.applyRecord(rec, recLoc{pack: false, off: off, n: total})
		off += int64(total)
	}
	d.replayedRecords = len(recs)
	d.recoveredObjects = len(d.index)
	d.store.SetSink(d.onInsert)
	return d, nil
}

// loadPack finds, validates, and applies the newest checkpoint, and
// sweeps leftover temp files and superseded packs.
func (d *Durable) loadPack() error {
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("cas: durable readdir: %w", err)
	}
	var seqs []uint64
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			// A checkpoint that died before its rename; never visible
			// to recovery, so removal is cleanup, not correctness.
			d.removeQuiet(join(d.dir, name))
			continue
		}
		if seq, ok := parsePackName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 {
		return nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	newest := seqs[len(seqs)-1]
	path := join(d.dir, packName(newest))
	data, err := readStable(d.fs, path)
	if err != nil {
		return fmt.Errorf("cas: durable read pack %s: %w", packName(newest), err)
	}
	recs, err := validatePack(data)
	if err != nil {
		return fmt.Errorf("cas: pack %s: %w", packName(newest), err)
	}
	off := int64(0)
	for _, rec := range recs {
		total := walOverhead + len(rec.Payload)
		d.applyRecord(rec, recLoc{pack: true, off: off, n: total})
		off += int64(total)
	}
	d.packSeq = newest
	d.packBytes = int64(len(data))
	for _, seq := range seqs[:len(seqs)-1] {
		d.removeQuiet(join(d.dir, packName(seq)))
	}
	return nil
}

// applyRecord folds one recovered record into the store and index.
// Root records ratchet by version, so a stale WAL replayed over a
// newer pack can never move the root backwards.
func (d *Durable) applyRecord(rec Record, loc recLoc) {
	switch rec.Kind {
	case recObject:
		ref := d.store.PutRaw(rec.Payload)
		d.index[ref] = loc
	case recRoot:
		var meta rootMeta
		if json.Unmarshal(rec.Payload, &meta) != nil {
			return
		}
		ref, err := ParseRef(meta.Root)
		if err != nil || meta.Version < d.version {
			return
		}
		d.root, d.version = ref, meta.Version
	}
}

// validatePack checks a pack image end to end: every record CRC-clean,
// the file fully consumed, and the recEnd trailer's count matching.
func validatePack(data []byte) ([]Record, error) {
	recs, n := ScanRecords(data)
	if n != len(data) || len(recs) == 0 {
		return nil, fmt.Errorf("corrupt pack: consistent prefix %d of %d bytes", n, len(data))
	}
	last := recs[len(recs)-1]
	if last.Kind != recEnd {
		return nil, fmt.Errorf("corrupt pack: missing trailer")
	}
	count, w := binary.Uvarint(last.Payload)
	if w <= 0 || count != uint64(len(recs)-1) {
		return nil, fmt.Errorf("corrupt pack: trailer count %d, have %d records", count, len(recs)-1)
	}
	return recs[:len(recs)-1], nil
}

// onInsert is the store's write-through sink: shadow every new object
// into the WAL and remember where it landed. Objects already on disk
// (recovered, or re-faulted after expiry) are skipped, so the log does
// not regrow on cache churn. An append failure latches sinkErr; Commit
// refuses to persist a root until a checkpoint heals the log.
func (d *Durable) onInsert(ref Ref, encoded []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.index[ref]; ok {
		return
	}
	off, err := d.wal.Append(recObject, encoded)
	if err != nil {
		if d.sinkErr == nil {
			d.sinkErr = err
		}
		return
	}
	d.index[ref] = recLoc{pack: false, off: off, n: walOverhead + len(encoded)}
}

// Store returns the in-memory tier this disk tier shadows.
func (d *Durable) Store() *Store { return d.store }

// Root returns the recovered (or last committed) root and version.
func (d *Durable) Root() (Ref, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.root, d.version
}

// Commit durably records root as the state at commit sequence version:
// the root record is appended and the log fsynced before Commit
// returns nil. This is the KVS master's acknowledgment barrier — a
// fence is answered only after its root survives here. If an earlier
// write-through append failed, Commit first heals the log with an
// inline checkpoint; on any error the root is NOT persisted and the
// caller must not acknowledge.
func (d *Durable) Commit(root Ref, version uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if reason := d.sinkErr; reason != nil || d.wal.Poisoned() != nil {
		if reason == nil {
			reason = d.wal.Poisoned()
		}
		if _, err := d.checkpointLocked(); err != nil {
			return fmt.Errorf("cas: commit heal (after %v): %w", reason, err)
		}
	}
	payload, err := json.Marshal(rootMeta{Root: root.String(), Version: version})
	if err != nil {
		return fmt.Errorf("cas: commit encode: %w", err)
	}
	if _, err := d.wal.Append(recRoot, payload); err != nil {
		return err
	}
	if err := d.wal.Sync(); err != nil {
		return err
	}
	d.root, d.version = root, version
	return nil
}

// Sync flushes the WAL without writing a root record (used to make
// write-through object appends durable on demand).
func (d *Durable) Sync() error { return d.wal.Sync() }

// CheckpointStats describes one completed checkpoint.
type CheckpointStats struct {
	Pack    string
	Objects int
	Bytes   int64
}

// Checkpoint folds the current store image into a new pack and resets
// the WAL. Safe to run concurrently with commits (they serialize on
// the tier lock).
func (d *Durable) Checkpoint() (CheckpointStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

func (d *Durable) checkpointLocked() (CheckpointStats, error) {
	snap := d.store.snapshot()
	seq := d.packSeq + 1
	newIndex := make(map[Ref]recLoc, len(snap))

	buf := AppendRecord(nil, recRoot, mustJSON(rootMeta{Root: d.root.String(), Version: d.version}))
	for _, e := range snap {
		off := int64(len(buf))
		buf = AppendRecord(buf, recObject, e.data)
		newIndex[e.ref] = recLoc{pack: true, off: off, n: len(buf) - int(off)}
	}
	var trailer [10]byte
	buf = AppendRecord(buf, recEnd, trailer[:binary.PutUvarint(trailer[:], uint64(1+len(snap)))])

	tmp := join(d.dir, packName(seq)+tmpSuffix)
	final := join(d.dir, packName(seq))
	f, err := d.fs.Create(tmp)
	if err != nil {
		return CheckpointStats{}, fmt.Errorf("cas: checkpoint create: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		closeQuiet(f)
		d.removeQuiet(tmp)
		return CheckpointStats{}, fmt.Errorf("cas: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		closeQuiet(f)
		d.removeQuiet(tmp)
		return CheckpointStats{}, fmt.Errorf("cas: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		d.removeQuiet(tmp)
		return CheckpointStats{}, fmt.Errorf("cas: checkpoint close: %w", err)
	}
	if err := d.fs.Rename(tmp, final); err != nil {
		d.removeQuiet(tmp)
		return CheckpointStats{}, fmt.Errorf("cas: checkpoint rename: %w", err)
	}

	// The pack is live: from here on the tier is consistent even if the
	// remaining steps fail (a stale WAL replays harmlessly over it).
	oldSeq := d.packSeq
	d.packSeq = seq
	d.index = newIndex
	d.sinkErr = nil
	d.checkpoints++
	d.packBytes = int64(len(buf))
	if oldSeq != 0 {
		d.removeQuiet(join(d.dir, packName(oldSeq)))
	}
	if err := d.wal.Reset(); err != nil {
		return CheckpointStats{}, fmt.Errorf("cas: checkpoint wal reset: %w", err)
	}
	return CheckpointStats{Pack: packName(seq), Objects: len(snap), Bytes: int64(len(buf))}, nil
}

// Load reads one object from disk for a read miss, validating its CRC
// framing and content hash, and inserts it into the store. Returns
// false if ref is not on disk or the bytes do not verify.
func (d *Durable) Load(ref Ref) ([]byte, bool) {
	d.mu.Lock()
	loc, ok := d.index[ref]
	path := join(d.dir, walName)
	if loc.pack {
		path = join(d.dir, packName(d.packSeq))
	}
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := d.fs.ReadFileRange(path, loc.off, loc.n)
	if err != nil {
		return nil, false
	}
	rec, _, valid := scanOne(data)
	if !valid || rec.Kind != recObject || HashOf(rec.Payload) != ref {
		return nil, false
	}
	d.mu.Lock()
	d.diskLoads++
	d.mu.Unlock()
	d.store.PutRaw(rec.Payload)
	return rec.Payload, true
}

// Close syncs and closes the tier. The store remains usable in memory.
func (d *Durable) Close() error {
	return d.wal.Close()
}

// Stats returns a snapshot of the tier's counters.
func (d *Durable) Stats() DurableStats {
	walRecs, syncs := d.wal.Counters()
	walBytes := d.wal.Size()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DurableStats{
		Dir:              d.dir,
		IndexedObjects:   len(d.index),
		WALBytes:         walBytes,
		WALRecords:       walRecs,
		Syncs:            syncs,
		Checkpoints:      d.checkpoints,
		PackSeq:          d.packSeq,
		PackBytes:        d.packBytes,
		RecoveredObjects: d.recoveredObjects,
		ReplayedRecords:  d.replayedRecords,
		DiskLoads:        d.diskLoads,
	}
	if d.sinkErr != nil {
		s.SinkErr = d.sinkErr.Error()
	}
	return s
}

// ---- small helpers ----

func packName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", packPrefix, seq, packSuffix)
}

func parsePackName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, packPrefix) || !strings.HasSuffix(name, packSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, packPrefix), packSuffix)
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// removeQuiet deletes best-effort: the files it targets (temp debris,
// superseded packs) are never read by recovery, so a failed removal
// costs disk, not correctness.
func (d *Durable) removeQuiet(path string) {
	_ = d.fs.Remove(path)
}

// closeQuiet is for error paths where the close result cannot change
// the (already failed) outcome.
func closeQuiet(f File) {
	_ = f.Close()
}

func mustJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
