package main

// The interprocedural layer: a per-package index of function
// declarations, memoized CFGs, and bottom-up call summaries so facts
// flow through intra-package calls. Three summaries are computed, each
// on demand with a cycle guard (recursion contributes the summary
// computed so far — a sound under-approximation for the may-facts the
// passes consume):
//
//   - errno emissions: the set of errno constants a function can put in
//     an error response, directly or via same-package callees
//   - write effects: which parameters and results of a function are
//     written file handles (fsync-discipline's interprocedural fuel)
//   - lock effects: mutexes a function acquires and leaves held at
//     exit, or releases without acquiring (lock-across-block's fuel);
//     receiver-rooted locks are kept as templates and re-rooted at the
//     call site

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// pkgIndex caches per-package analysis state across passes.
type pkgIndex struct {
	p     *Package
	funcs map[types.Object]*ast.FuncDecl
	cfgs  map[*ast.BlockStmt]*funcCFG

	errno     map[types.Object]*errnoSummary
	errnoBusy map[types.Object]bool
	write     map[types.Object]*writeSummary
	writeBusy map[types.Object]bool
	locks     map[types.Object]*lockSummary
	locksBusy map[types.Object]bool
}

var pkgIndexes = map[*Package]*pkgIndex{}

func indexOf(p *Package) *pkgIndex {
	if ix, ok := pkgIndexes[p]; ok {
		return ix
	}
	ix := &pkgIndex{
		p:     p,
		funcs: map[types.Object]*ast.FuncDecl{},
		cfgs:  map[*ast.BlockStmt]*funcCFG{},

		errno:     map[types.Object]*errnoSummary{},
		errnoBusy: map[types.Object]bool{},
		write:     map[types.Object]*writeSummary{},
		writeBusy: map[types.Object]bool{},
		locks:     map[types.Object]*lockSummary{},
		locksBusy: map[types.Object]bool{},
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					ix.funcs[obj] = fd
				}
			}
		}
	}
	pkgIndexes[p] = ix
	return ix
}

// cfgOf returns the memoized CFG of a function body.
func (ix *pkgIndex) cfgOf(body *ast.BlockStmt) *funcCFG {
	if g, ok := ix.cfgs[body]; ok {
		return g
	}
	g := buildCFG(body)
	ix.cfgs[body] = g
	return g
}

// calleeDecl resolves a call expression to a function declared in this
// package (plain calls and method calls both), or nil.
func (ix *pkgIndex) calleeDecl(fun ast.Expr) *ast.FuncDecl {
	var id *ast.Ident
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	obj := ix.p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return ix.funcs[obj]
}

func (ix *pkgIndex) declObj(fd *ast.FuncDecl) types.Object {
	return ix.p.Info.Defs[fd.Name]
}

// ---- traversal helpers shared by the rewired passes ----

// forEachFuncBody invokes fn for every function declaration and
// function literal in the package, outermost first.
func forEachFuncBody(p *Package, fn func(ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Type, n.Body)
				}
			case *ast.FuncLit:
				fn(n.Type, n.Body)
			}
			return true
		})
	}
}

// inspectHead walks one op head without descending into function
// literals (their bodies are separate CFGs; reachableOps recurses into
// them explicitly).
func inspectHead(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// funcLitsIn collects the function literals syntactically inside n that
// are not nested in another literal inside n.
func funcLitsIn(n ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl)
			return false
		}
		return true
	})
	return lits
}

// reachableOps invokes fn for every op reachable from the entry of
// body's CFG, in block-index order, then recurses into the bodies of
// function literals appearing in those ops. A pass built on this sees
// exactly the code that can execute (plus closures, wherever they may
// later run), and never statements cut off by return/panic/break.
func reachableOps(ix *pkgIndex, body *ast.BlockStmt, fn func(o op)) {
	g := ix.cfgOf(body)
	reach := g.reachable()
	var lits []*ast.FuncLit
	for _, blk := range g.blocks {
		if !reach[blk] {
			continue
		}
		for _, o := range blk.ops {
			fn(o)
			for _, h := range o.headNodes() {
				lits = append(lits, funcLitsIn(h)...)
			}
		}
	}
	for _, fl := range lits {
		reachableOps(ix, fl.Body, fn)
	}
}

// ---- errno emission summary ----

// errnoSummary records which errno constants a function can emit in an
// error response (transitively through same-package callees), plus
// whether some emission could not be constant-folded.
type errnoSummary struct {
	values map[int64]string // errno value -> provenance (const or callee name)
	opaque bool             // a non-constant errnum flowed into a builder
}

// errnoEmitted computes (memoized) the emission summary of fd.
func (ix *pkgIndex) errnoEmitted(fd *ast.FuncDecl) *errnoSummary {
	obj := ix.declObj(fd)
	if obj == nil {
		return &errnoSummary{values: map[int64]string{}}
	}
	if s, ok := ix.errno[obj]; ok {
		return s
	}
	if ix.errnoBusy[obj] {
		return &errnoSummary{values: map[int64]string{}} // cycle: fixpoint below
	}
	ix.errnoBusy[obj] = true
	defer delete(ix.errnoBusy, obj)

	s := &errnoSummary{values: map[int64]string{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(ce.Fun)
		if idx, isBuilder := errnoBuilders[name]; isBuilder {
			if len(ce.Args) > idx {
				if v, ok := ix.constInt(ce.Args[idx]); ok {
					s.values[v] = errnoArgName(ce.Args[idx])
				} else if !ix.isBuilderParamPassthrough(fd, ce.Args[idx]) {
					s.opaque = true
				}
			}
			// A builder's own summary is its parameter — the call site
			// binds it, so do not recurse into builder declarations.
			return true
		}
		if callee := ix.calleeDecl(ce.Fun); callee != nil && callee != fd {
			sub := ix.errnoEmitted(callee)
			for v := range sub.values {
				s.values[v] = "via " + callee.Name.Name
			}
			if sub.opaque {
				s.opaque = true
			}
		}
		return true
	})
	ix.errno[obj] = s
	return s
}

// isBuilderParamPassthrough reports whether arg is one of fd's own
// parameters: the enclosing function is then itself builder-shaped (a
// respondErr-style wrapper) and its callers bind the value.
func (ix *pkgIndex) isBuilderParamPassthrough(fd *ast.FuncDecl, arg ast.Expr) bool {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return false
	}
	obj := ix.p.Info.Uses[id]
	if obj == nil || fd.Type.Params == nil {
		return false
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if ix.p.Info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// constInt constant-folds e to an integer value.
func (ix *pkgIndex) constInt(e ast.Expr) (int64, bool) {
	tv, ok := ix.p.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return v, true
}

// errnoArgName names the expression for provenance in messages.
func errnoArgName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return types.ExprString(e)
	}
	return types.ExprString(e)
}

// ---- write-effect summary (fsync-discipline) ----

// writeSummary records which parameters (by index, receiver excluded)
// and results of a function are written file-like handles.
type writeSummary struct {
	params  map[int]bool
	results map[int]bool
}

// writeEffects computes (memoized) the write summary of fd.
func (ix *pkgIndex) writeEffects(fd *ast.FuncDecl) *writeSummary {
	obj := ix.declObj(fd)
	if obj == nil {
		return &writeSummary{params: map[int]bool{}, results: map[int]bool{}}
	}
	if s, ok := ix.write[obj]; ok {
		return s
	}
	if ix.writeBusy[obj] {
		return &writeSummary{params: map[int]bool{}, results: map[int]bool{}}
	}
	ix.writeBusy[obj] = true
	defer delete(ix.writeBusy, obj)

	s := &writeSummary{params: map[int]bool{}, results: map[int]bool{}}
	written := ix.writtenHandles(fd.Body)

	if fd.Type.Params != nil {
		i := 0
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if obj := ix.p.Info.Defs[name]; obj != nil && written[obj] {
					s.params[i] = true
				}
				i++
			}
		}
	}
	// A result is written if some return statement returns a written
	// variable in that position (named results count through the map).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are not fd's
		}
		rs, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range rs.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := ix.p.Info.Uses[id]; obj != nil && written[obj] {
					s.results[i] = true
				}
			}
		}
		return true
	})
	ix.write[obj] = s
	return s
}

// writtenHandles collects the file-like objects body writes through,
// directly (Write/Append/Sync and friends) or by handing them to a
// same-package function whose summary says it writes that parameter,
// or by receiving them from a same-package function whose summary says
// that result comes back written.
func (ix *pkgIndex) writtenHandles(body *ast.BlockStmt) map[types.Object]bool {
	written := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if se, ok := n.Fun.(*ast.SelectorExpr); ok &&
				fileWriteMethods[se.Sel.Name] && fileLike(ix.p, se) {
				if obj := recvObj(ix.p, se.X); obj != nil {
					written[obj] = true
				}
			}
			// f handed to a writer: mark the argument written.
			if callee := ix.calleeDecl(n.Fun); callee != nil {
				sum := ix.writeEffects(callee)
				for i, arg := range n.Args {
					if !sum.params[i] {
						continue
					}
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := ix.p.Info.Uses[id]; obj != nil {
							written[obj] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			// f received from a producer of written handles.
			if len(n.Rhs) != 1 {
				return true
			}
			ce, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := ix.calleeDecl(ce.Fun)
			if callee == nil {
				return true
			}
			sum := ix.writeEffects(callee)
			for i, lhs := range n.Lhs {
				if !sum.results[i] {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					if obj := ix.p.Info.ObjectOf(id); obj != nil {
						written[obj] = true
					}
				}
			}
		}
		return true
	})
	return written
}

// ---- lock-effect summary (lock-across-block) ----

// lockKeyTemplate is one lock identity relative to a call site: either
// rooted at the callee's receiver (suffix applies to the caller's
// receiver expression) or a fixed package-level key.
type lockKeyTemplate struct {
	recvRooted bool
	suffix     string // ".mu" when recvRooted; the full key otherwise
}

// lockSummary records net lock effects visible to callers.
type lockSummary struct {
	acquires []lockKeyTemplate // held at some exit, beyond the entry set
	releases []lockKeyTemplate // unlocked without a matching lock
}

// lockEffects computes (memoized) the lock summary of fd by running the
// held-set dataflow over its CFG with an empty entry fact.
func (ix *pkgIndex) lockEffects(fd *ast.FuncDecl) *lockSummary {
	obj := ix.declObj(fd)
	if obj == nil {
		return &lockSummary{}
	}
	if s, ok := ix.locks[obj]; ok {
		return s
	}
	if ix.locksBusy[obj] {
		return &lockSummary{}
	}
	ix.locksBusy[obj] = true
	defer delete(ix.locksBusy, obj)

	recvName := ""
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvName = fd.Recv.List[0].Names[0].Name
	}

	held, released := ix.lockExitFacts(fd.Body)
	s := &lockSummary{}
	toTemplate := func(key string) lockKeyTemplate {
		if recvName != "" && strings.HasPrefix(key, recvName+".") {
			return lockKeyTemplate{recvRooted: true, suffix: strings.TrimPrefix(key, recvName)}
		}
		return lockKeyTemplate{suffix: key}
	}
	for _, k := range sortedKeys(held) {
		s.acquires = append(s.acquires, toTemplate(k))
	}
	for _, k := range sortedKeys(released) {
		s.releases = append(s.releases, toTemplate(k))
	}
	ix.locks[obj] = s
	return s
}

// lockExitFacts runs the may-hold dataflow over body with nothing held
// and returns the keys held at exit and the keys unlocked while not
// held (net releases a caller must account for).
func (ix *pkgIndex) lockExitFacts(body *ast.BlockStmt) (held map[string]bool, released map[string]bool) {
	g := ix.cfgOf(body)
	released = map[string]bool{}
	transfer := func(b *block, in heldSet) heldSet {
		fact := in.clone()
		for _, o := range b.ops {
			applyLockOps(ix, o, fact, released)
		}
		return fact
	}
	facts, _ := solve(g, analysis[heldSet]{
		dir:      forward,
		boundary: func() heldSet { return heldSet{} },
		bottom:   func() heldSet { return nil },
		join:     joinHeld,
		equal:    equalHeld,
		transfer: transfer,
	})
	exit := facts[g.exit]
	held = map[string]bool{}
	for k := range exit {
		held[k] = true
	}
	// Within the function a deferred unlock means "held to the end";
	// from a caller's point of view the lock is released by the time
	// the call returns. Deferred in-package callees contribute their
	// effects at exit the same way.
	for _, ds := range g.defers {
		if key, kind := lockOpOf(ix.p, ds.Call); kind == lockOpUnlock {
			delete(held, key)
		} else if kind == lockOpLock {
			held[key] = true
		} else if callee := ix.calleeDecl(ds.Call.Fun); callee != nil {
			fact := heldSet{}
			for k := range held {
				fact[k] = ds.Pos()
			}
			applyLockSummary(ix, ds.Call, callee, fact, nil)
			held = map[string]bool{}
			for k := range fact {
				held[k] = true
			}
		}
	}
	return held, released
}

// applyLockOps applies the lock side effects of one op to fact: direct
// Lock/Unlock calls (deferred unlocks hold to function end and are
// ignored), and same-package callee summaries. Nested function literals
// are skipped — they run elsewhere.
func applyLockOps(ix *pkgIndex, o op, fact heldSet, released map[string]bool) {
	if ds, ok := o.node.(*ast.DeferStmt); ok {
		if _, kind := lockOpOf(ix.p, ds.Call); kind != lockOpNone {
			return // defer mu.Unlock(): held to end of function
		}
	}
	for _, h := range o.headNodes() {
		inspectHead(h, func(n ast.Node) bool {
			ce, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, kind := lockOpOf(ix.p, ce); kind == lockOpLock {
				fact[key] = ce.Pos()
				return true
			} else if kind == lockOpUnlock {
				if _, was := fact[key]; !was && released != nil {
					released[key] = true
				}
				delete(fact, key)
				return true
			}
			if _, ok := ce.Fun.(*ast.FuncLit); ok {
				return true // IIFE: the caller's analysis inlines it
			}
			if callee := ix.calleeDecl(ce.Fun); callee != nil {
				applyLockSummary(ix, ce, callee, fact, released)
			}
			return true
		})
	}
}

// applyLockSummary applies callee's net lock effects at call site ce.
func applyLockSummary(ix *pkgIndex, ce *ast.CallExpr, callee *ast.FuncDecl, fact heldSet, released map[string]bool) {
	sum := ix.lockEffects(callee)
	if len(sum.acquires) == 0 && len(sum.releases) == 0 {
		return
	}
	root := ""
	if se, ok := ce.Fun.(*ast.SelectorExpr); ok && callee.Recv != nil {
		root = types.ExprString(se.X)
	}
	resolve := func(t lockKeyTemplate) (string, bool) {
		if !t.recvRooted {
			return t.suffix, true
		}
		if root == "" {
			return "", false
		}
		return root + t.suffix, true
	}
	for _, t := range sum.releases {
		if key, ok := resolve(t); ok {
			if _, was := fact[key]; !was && released != nil {
				released[key] = true
			}
			delete(fact, key)
		}
	}
	for _, t := range sum.acquires {
		if key, ok := resolve(t); ok {
			fact[key] = ce.Pos()
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
