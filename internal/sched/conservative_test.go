package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fluxgo/internal/resource"
)

func TestConservativeBackfillsHarmlessJob(t *testing.T) {
	// a: 3/4 nodes 10s; b: 4 nodes (blocked, reserved at t=10);
	// c: 1 node 1s fits the hole and finishes before b's reservation.
	p := pool(t, 4)
	jobs := []*Job{
		job("a", 3, 10*time.Second, 0),
		job("b", 4, 10*time.Second, 0),
		job("c", 1, time.Second, 0),
	}
	if _, err := Simulate(p, Conservative{}, jobs); err != nil {
		t.Fatal(err)
	}
	if jobs[2].Start != 0 {
		t.Fatalf("c start %v, want 0 (harmless backfill)", jobs[2].Start)
	}
	if jobs[1].Start != 10*time.Second {
		t.Fatalf("b start %v, want 10s", jobs[1].Start)
	}
}

func TestConservativeProtectsAllReservations(t *testing.T) {
	// 4 nodes: a (2n, 10s) runs; b (4n) is the blocked head, reserved at
	// t=10; d (2n, 15s) fits beside a right now but would overrun b's
	// reservation, so conservative must hold it back.
	p := pool(t, 4)
	jobs := []*Job{
		job("a", 2, 10*time.Second, 0),
		job("b", 4, 10*time.Second, 0),
		job("d", 2, 15*time.Second, 0), // would delay b: must wait
	}
	if _, err := Simulate(p, Conservative{}, jobs); err != nil {
		t.Fatal(err)
	}
	if jobs[2].Start == 0 {
		t.Fatal("conservative admitted a reservation-delaying backfill")
	}
	if jobs[1].Start != 10*time.Second {
		t.Fatalf("b delayed to %v", jobs[1].Start)
	}
}

func TestConservativeValidSchedulesQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nodes = 8
		n := r.Intn(12) + 2
		var jobs []*Job
		for i := 0; i < n; i++ {
			jobs = append(jobs, job(
				fmt.Sprintf("j%d", i),
				r.Intn(nodes)+1,
				time.Duration(r.Intn(20)+1)*time.Second,
				time.Duration(r.Intn(10))*time.Second,
			))
		}
		m, err := Simulate(pool(t, nodes), Conservative{}, jobs)
		if err != nil || m.Completed != n {
			return false
		}
		return validSchedule(jobs, nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConservativeNameAndReservationPlan(t *testing.T) {
	if (Conservative{}).Name() != "conservative" {
		t.Fatal("name")
	}
	// reservations: 4 nodes; running job of 3 ends at 10s; queue wants
	// 2 then 4 nodes -> starts at 10 (3 freed) and... after q0 ends.
	running := []*Job{{Req: req(3), End: 10 * time.Second}}
	queue := []*Job{
		{Req: req(2), Duration: 5 * time.Second},
		{Req: req(4), Duration: 5 * time.Second},
	}
	starts := reservations(queue, running, 4, 0)
	if starts[0] != 10*time.Second {
		t.Fatalf("q0 reserved at %v, want 10s", starts[0])
	}
	if starts[1] != 15*time.Second {
		t.Fatalf("q1 reserved at %v, want 15s (after q0)", starts[1])
	}
	// A 1-node job with a free node now starts immediately.
	starts = reservations([]*Job{{Req: req(1), Duration: time.Second}}, running, 4, 7*time.Second)
	if starts[0] != 7*time.Second {
		t.Fatalf("immediate job reserved at %v", starts[0])
	}
}

func req(n int) resource.Request { return resource.Request{Nodes: n} }
