package cas

// FaultyFS wraps an FS with seeded fault injection, giving storage the
// same adversarial treatment transport.Faulty gives the network:
//
//   - torn writes: a Write persists only a random prefix and errors
//   - fsync failures: Sync errors and the durability watermark stays put
//   - short reads / bit flips: ReadFile returns a damaged copy
//   - power loss: Crash() truncates every tracked file back to its
//     last-synced watermark — everything since the last successful
//     Sync evaporates, exactly like a lost page cache — and latches
//     all operations to ErrCrashed until Revive()
//
// The watermark model is what makes the chaos soak honest: an
// in-process "crash" (broker shutdown) would otherwise flush OS
// buffers on close and make every write look durable, proving nothing
// about the WAL's fsync discipline.

import (
	"fmt"
	"math/rand"

	"fluxgo/internal/debuglock"
)

// FSFaults are per-operation fault probabilities in [0,1].
type FSFaults struct {
	TornWrite float64 // Write persists a random prefix, then errors
	SyncFail  float64 // Sync errors; watermark does not advance
	ShortRead float64 // ReadFile returns a truncated copy
	BitFlip   float64 // ReadFile flips one random bit in the copy
}

// FSFaultStats count injected faults, for test assertions and stats.
type FSFaultStats struct {
	TornWrites uint64
	SyncFails  uint64
	ReadFaults uint64
	Crashes    uint64
}

// FaultyFS implements FS over inner with fault injection. Safe for
// concurrent use.
type FaultyFS struct {
	inner FS

	mu      debuglock.Mutex
	rng     *rand.Rand
	faults  FSFaults
	crashed bool
	size    map[string]int64 // bytes written through us, per path
	synced  map[string]int64 // durability watermark, per path
	stats   FSFaultStats
}

// NewFaultyFS wraps inner with a deterministic fault source. Faults
// are off until SetFaults.
func NewFaultyFS(inner FS, seed int64) *FaultyFS {
	if inner == nil {
		inner = DirFS()
	}
	f := &FaultyFS{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seed)),
		size:   make(map[string]int64),
		synced: make(map[string]int64),
	}
	f.mu.SetClass("cas.FaultyFS.mu")
	return f
}

// SetFaults replaces the fault probabilities.
func (f *FaultyFS) SetFaults(faults FSFaults) {
	f.mu.Lock()
	f.faults = faults
	f.mu.Unlock()
}

// Stats returns cumulative injected-fault counts.
func (f *FaultyFS) Stats() FSFaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Crash simulates power loss: every file written through this FS is
// truncated back to its last successful Sync, and all subsequent
// operations fail with ErrCrashed until Revive. Call before shutting
// the owning broker down so the recovery path sees honest damage.
func (f *FaultyFS) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	f.stats.Crashes++
	var firstErr error
	for path, sz := range f.size {
		mark := f.synced[path]
		if mark >= sz {
			continue
		}
		if err := f.inner.Truncate(path, mark); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cas: crash truncate %s: %w", path, err)
		}
		f.size[path] = mark
	}
	return firstErr
}

// Revive lifts the crash latch so the storage can be reopened; the
// truncation damage of course remains.
func (f *FaultyFS) Revive() {
	f.mu.Lock()
	f.crashed = false
	f.mu.Unlock()
}

// roll returns true with probability p; callers hold f.mu.
func (f *FaultyFS) roll(p float64) bool {
	return p > 0 && f.rng.Float64() < p
}

func (f *FaultyFS) MkdirAll(dir string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultyFS) OpenAppend(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	sz, err := f.inner.Size(name)
	if err != nil {
		sz = 0
	}
	// Bytes present at open were validated by recovery; treat them as
	// durable — the interesting vulnerability window is this session's.
	f.size[name] = sz
	f.synced[name] = sz
	return &faultyFile{fs: f, name: name, inner: file}, nil
}

func (f *FaultyFS) Create(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	f.size[name] = 0
	f.synced[name] = 0
	return &faultyFile{fs: f, name: name, inner: file}, nil
}

func (f *FaultyFS) ReadFile(name string) ([]byte, error) {
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return f.damage(name, data)
}

func (f *FaultyFS) ReadFileRange(name string, off int64, n int) ([]byte, error) {
	data, err := f.inner.ReadFileRange(name, off, n)
	if err != nil {
		return nil, err
	}
	return f.damage(name, data)
}

// damage applies the read-side faults to a fresh copy of data.
func (f *FaultyFS) damage(name string, data []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	if f.roll(f.faults.ShortRead) && len(data) > 0 {
		f.stats.ReadFaults++
		return append([]byte(nil), data[:f.rng.Intn(len(data))]...), nil
	}
	if f.roll(f.faults.BitFlip) && len(data) > 0 {
		f.stats.ReadFaults++
		cp := append([]byte(nil), data...)
		cp[f.rng.Intn(len(cp))] ^= 1 << uint(f.rng.Intn(8))
		return cp, nil
	}
	return data, nil
}

func (f *FaultyFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if err := f.inner.Rename(oldname, newname); err != nil {
		return err
	}
	if sz, ok := f.size[oldname]; ok {
		f.size[newname] = sz
		f.synced[newname] = f.synced[oldname]
		delete(f.size, oldname)
		delete(f.synced, oldname)
	}
	return nil
}

func (f *FaultyFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	delete(f.size, name)
	delete(f.synced, name)
	return nil
}

func (f *FaultyFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if err := f.inner.Truncate(name, size); err != nil {
		return err
	}
	if _, ok := f.size[name]; ok {
		if f.size[name] > size {
			f.size[name] = size
		}
		if f.synced[name] > size {
			f.synced[name] = size
		}
	}
	return nil
}

func (f *FaultyFS) Size(name string) (int64, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	return f.inner.Size(name)
}

func (f *FaultyFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(dir)
}

// faultyFile is the write-side interposer tracking the durability
// watermark of one file.
type faultyFile struct {
	fs    *FaultyFS
	name  string
	inner File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.fs.crashed {
		return 0, ErrCrashed
	}
	if ff.fs.roll(ff.fs.faults.TornWrite) && len(p) > 0 {
		ff.fs.stats.TornWrites++
		n, _ := ff.inner.Write(p[:ff.fs.rng.Intn(len(p))])
		ff.fs.size[ff.name] += int64(n)
		return n, fmt.Errorf("cas: simulated torn write to %s (%d of %d bytes)", ff.name, n, len(p))
	}
	n, err := ff.inner.Write(p)
	ff.fs.size[ff.name] += int64(n)
	return n, err
}

func (ff *faultyFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.fs.crashed {
		return ErrCrashed
	}
	if ff.fs.roll(ff.fs.faults.SyncFail) {
		ff.fs.stats.SyncFails++
		return fmt.Errorf("cas: simulated fsync failure on %s", ff.name)
	}
	if err := ff.inner.Sync(); err != nil {
		return err
	}
	ff.fs.synced[ff.name] = ff.fs.size[ff.name]
	return nil
}

// Close always releases the real handle; under the crash latch it
// still reports ErrCrashed so shutdown paths see the failure.
func (ff *faultyFile) Close() error {
	err := ff.inner.Close()
	ff.fs.mu.Lock()
	crashed := ff.fs.crashed
	ff.fs.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return err
}
