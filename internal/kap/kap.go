// Package kap implements KAP (KVS Access Patterns), the dedicated test
// the paper uses to evaluate the CMB and KVS prototypes (Section V).
//
// KAP models KVS access patterns through interactions between writers
// (producers) and readers (consumers). It runs in four phases — setup,
// producer, synchronization, consumer — with configurable producer and
// consumer counts, value size, object counts, access patterns
// (striding), directory layout (one directory vs. directories of at most
// 128 entries), value redundancy, and synchronization primitive. The
// metric of interest is the maximum latency of each phase across all
// processes, the critical path of coordinated process-management
// services such as PMI bootstrap.
package kap

import (
	"fmt"
	"sync"
	"time"

	"fluxgo/internal/kvs"
	"fluxgo/internal/obs"
	"fluxgo/internal/session"
)

// Params configures one KAP run.
type Params struct {
	// Ranks is the comms-session size (simulated nodes).
	Ranks int
	// ProcsPerRank is how many tester processes attach per rank; the
	// paper fully populates 16-core nodes with 16 processes.
	ProcsPerRank int
	// Producers and Consumers are role counts over the total process set
	// (process i is a producer iff i < Producers, a consumer iff
	// i < Consumers, matching the paper's "each acting as consumer or
	// producer or both").
	Producers int
	Consumers int
	// ValueSize is the size of each value in bytes (paper: 8..32768).
	ValueSize int
	// PutsPerProducer is the number of kvs_puts each producer issues.
	PutsPerProducer int
	// AccessCount is the number of distinct objects each consumer reads
	// (paper: 1 to the total process count).
	AccessCount int
	// Stride spaces out each consumer's reads over the object set; 0
	// means 1 (consecutive objects).
	Stride int
	// DirFanout splits objects into directories of at most this many
	// entries; 0 stores every object in a single KVS directory
	// (Fig. 4(a) vs. 4(b); the paper uses 128).
	DirFanout int
	// Redundant makes all producers write identical values instead of
	// unique ones (Fig. 3).
	Redundant bool
	// DeepConsumers assigns consumer roles to the highest process
	// indices instead of the lowest, placing them at the deepest tree
	// ranks — used by the analytic-model experiment to measure the
	// full-depth fault-in path.
	DeepConsumers bool
	// Arity is the comms tree fan-out (paper: binary).
	Arity int
	// NoCodec disables per-hop serialization cost (faster, but value
	// size effects disappear); benchmarks leave it false.
	NoCodec bool
}

// check validates and normalizes parameters.
func (p *Params) check() error {
	if p.Ranks < 1 {
		return fmt.Errorf("kap: ranks %d < 1", p.Ranks)
	}
	if p.ProcsPerRank < 1 {
		p.ProcsPerRank = 1
	}
	total := p.Ranks * p.ProcsPerRank
	if p.Producers < 0 || p.Producers > total {
		return fmt.Errorf("kap: producers %d outside [0, %d]", p.Producers, total)
	}
	if p.Consumers < 0 || p.Consumers > total {
		return fmt.Errorf("kap: consumers %d outside [0, %d]", p.Consumers, total)
	}
	if p.Producers == 0 && p.Consumers == 0 {
		return fmt.Errorf("kap: no producers or consumers")
	}
	if p.ValueSize < 1 {
		p.ValueSize = 8
	}
	if p.PutsPerProducer < 1 {
		p.PutsPerProducer = 1
	}
	if p.Stride < 1 {
		p.Stride = 1
	}
	if p.Arity == 0 {
		p.Arity = 2
	}
	totalObjects := p.Producers * p.PutsPerProducer
	if p.Consumers > 0 && totalObjects == 0 {
		return fmt.Errorf("kap: consumers configured with nothing to read")
	}
	if p.AccessCount < 1 {
		p.AccessCount = 1
	}
	if p.AccessCount > totalObjects && totalObjects > 0 {
		p.AccessCount = totalObjects
	}
	return nil
}

// Result reports the maximum per-phase latency across processes, plus
// per-operation latency distributions (every individual kvs_put,
// kvs_fence, and kvs_get across all processes) for percentile analysis.
type Result struct {
	Params   Params
	Setup    time.Duration
	Producer time.Duration // max kvs_put phase latency (Fig. 2)
	Sync     time.Duration // max kvs_fence latency (Fig. 3)
	Consumer time.Duration // max kvs_get phase latency (Fig. 4)
	Total    time.Duration

	// PutHist, FenceHist, and GetHist are client-observed per-op latency
	// histograms with p50/p95/p99 summaries.
	PutHist   obs.HistSnapshot
	FenceHist obs.HistSnapshot
	GetHist   obs.HistSnapshot
}

// keyFor names object idx under the configured directory layout.
func keyFor(p *Params, idx int) string {
	if p.DirFanout > 0 {
		return fmt.Sprintf("kap.dir%d.key%d", idx/p.DirFanout, idx)
	}
	return fmt.Sprintf("kap.key%d", idx)
}

// valueFor builds object idx's value: unique per object (the object id
// is embedded in the leading bytes), or identical across all objects in
// redundant mode.
func valueFor(p *Params, idx int) []byte {
	v := make([]byte, p.ValueSize)
	for i := range v {
		v[i] = byte(i % 251)
	}
	if !p.Redundant {
		copy(v, fmt.Sprintf("%d", idx))
	}
	return v
}

// Run executes one KAP configuration on a fresh in-process comms session
// and reports per-phase maximum latencies.
func Run(p Params) (Result, error) {
	if err := p.check(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	sess, err := session.New(session.Options{
		Size:    p.Ranks,
		Arity:   p.Arity,
		Codec:   !p.NoCodec,
		Modules: []session.ModuleFactory{kvs.Factory(kvs.ModuleConfig{})},
	})
	if err != nil {
		return Result{}, err
	}
	defer sess.Close()

	total := p.Ranks * p.ProcsPerRank
	type proc struct {
		idx      int
		client   *kvs.Client
		producer bool
		consumer bool
	}
	procs := make([]*proc, total)
	for i := range procs {
		// Consecutive rank processes are distributed to consecutive
		// nodes, as in the paper's setup phase.
		h := sess.Handle(i % p.Ranks)
		defer h.Close()
		consumer := i < p.Consumers
		if p.DeepConsumers {
			consumer = i >= total-p.Consumers
		}
		procs[i] = &proc{
			idx:      i,
			client:   kvs.NewClient(h),
			producer: i < p.Producers,
			consumer: consumer,
		}
	}
	res := Result{Params: p, Setup: time.Since(start)}
	var putHist, fenceHist, getHist obs.Histogram

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	maxDur := func(dst *time.Duration, d time.Duration) {
		mu.Lock()
		if d > *dst {
			*dst = d
		}
		mu.Unlock()
	}

	// Producer phase: each producer puts PutsPerProducer objects under
	// unique keys (object ids partition by producer index).
	var wg sync.WaitGroup
	for _, pr := range procs {
		if !pr.producer {
			continue
		}
		wg.Add(1)
		go func(pr *proc) {
			defer wg.Done()
			t0 := time.Now()
			for k := 0; k < p.PutsPerProducer; k++ {
				idx := pr.idx*p.PutsPerProducer + k
				op0 := time.Now()
				if err := pr.client.PutRaw(keyFor(&p, idx), jsonString(valueFor(&p, idx))); err != nil {
					fail(err)
					return
				}
				putHist.Observe(time.Since(op0))
			}
			maxDur(&res.Producer, time.Since(t0))
		}(pr)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}

	// Synchronization phase: every process (producer or consumer or
	// both) enters the consistency protocol — kvs_fence.
	participants := 0
	for _, pr := range procs {
		if pr.producer || pr.consumer {
			participants++
		}
	}
	var versionMu sync.Mutex
	var fenceVersion uint64
	for _, pr := range procs {
		if !pr.producer && !pr.consumer {
			continue
		}
		wg.Add(1)
		go func(pr *proc) {
			defer wg.Done()
			t0 := time.Now()
			v, err := pr.client.Fence("kap.sync", participants)
			if err != nil {
				fail(err)
				return
			}
			fenceHist.Observe(time.Since(t0))
			maxDur(&res.Sync, time.Since(t0))
			versionMu.Lock()
			if v > fenceVersion {
				fenceVersion = v
			}
			versionMu.Unlock()
		}(pr)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}

	// Consumer phase: each consumer reads AccessCount distinct objects
	// with the configured stride.
	totalObjects := p.Producers * p.PutsPerProducer
	for _, pr := range procs {
		if !pr.consumer {
			continue
		}
		wg.Add(1)
		go func(pr *proc) {
			defer wg.Done()
			t0 := time.Now()
			for k := 0; k < p.AccessCount; k++ {
				idx := (pr.idx + k*p.Stride) % totalObjects
				var v string
				op0 := time.Now()
				if err := pr.client.Get(keyFor(&p, idx), &v); err != nil {
					fail(fmt.Errorf("consumer %d get %s: %w", pr.idx, keyFor(&p, idx), err))
					return
				}
				getHist.Observe(time.Since(op0))
				if len(v) != p.ValueSize {
					fail(fmt.Errorf("consumer %d: value size %d, want %d", pr.idx, len(v), p.ValueSize))
					return
				}
			}
			maxDur(&res.Consumer, time.Since(t0))
		}(pr)
	}
	wg.Wait()
	res.Total = time.Since(start)
	res.PutHist = putHist.Snapshot()
	res.FenceHist = fenceHist.Snapshot()
	res.GetHist = getHist.Snapshot()
	return res, firstErr
}

// jsonString encodes raw bytes as a JSON string of the same length (a
// printable byte per input byte), keeping the stored value size faithful
// without JSON escaping overhead.
func jsonString(b []byte) []byte {
	out := make([]byte, 0, len(b)+2)
	out = append(out, '"')
	for _, c := range b {
		out = append(out, 'a'+c%26)
	}
	return append(out, '"')
}
