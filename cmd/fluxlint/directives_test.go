package main

import (
	"strings"
	"testing"
)

// TestDirectives runs the full suite (with suppression) over the
// directives fixture: the two well-formed ignores must silence their
// wire-hygiene findings, the unknown-pass and missing-reason ones must
// be reported themselves, and a malformed ignore must not suppress the
// finding beneath it.
func TestDirectives(t *testing.T) {
	l := fixtureLoader(t)
	p := loadFixture(t, l, "directives")
	findings, stats := runAll(l, []*Package{p})

	var unknown, noReason, unsuppressed int
	for _, f := range findings {
		switch {
		case f.Pass == "directive" && strings.Contains(f.Msg, "unknown pass"):
			unknown++
		case f.Pass == "directive" && strings.Contains(f.Msg, "needs a reason"):
			noReason++
		case f.Pass == wireHygieneName && strings.Contains(f.Msg, "cmb.resync"):
			unsuppressed++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if unknown != 1 {
		t.Errorf("unknown-pass directive findings = %d, want 1", unknown)
	}
	if noReason != 1 {
		t.Errorf("missing-reason directive findings = %d, want 1", noReason)
	}
	if unsuppressed != 1 {
		t.Errorf("finding under malformed directive: reported %d times, want 1", unsuppressed)
	}

	// Suppressions are counted per pass (the -stats view CI prints).
	wantSuppressed := map[string]int{
		wireHygieneName:      2, // line-above and same-line constants
		"pool-ownership":     1, // double release waived in-fixture
		"errno-completeness": 1, // missing default waived in-fixture
	}
	for pass, want := range wantSuppressed {
		if got := stats[pass].suppressed; got != want {
			t.Errorf("stats[%s].suppressed = %d, want %d", pass, got, want)
		}
	}
}
