// Package broker implements the Comms Message Broker (CMB), the
// per-node daemon of a Flux comms session.
//
// Exactly as in the paper's prototype, each broker participates in three
// persistent overlay planes: an event plane (publish/subscribe with
// guaranteed, totally ordered delivery — the paper's PGM bus, realized
// here as a root-sequenced tree broadcast), a request/response tree for
// scalable RPCs, barriers, and reductions (requests are routed "upstream"
// to the first comms module matching the topic, responses retrace the
// same hops in reverse), and a secondary rank-addressed overlay with ring
// topology that lets any rank be reached without routing tables.
//
// Comms modules — the paper's loadable service plugins (kvs, barrier,
// wexec, ...) — are loaded into the broker's address space and exchange
// messages with it through in-memory mailboxes. Local programs attach
// through Handles, the analogue of the flux utility's socket connection.
package broker

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fluxgo/internal/clock"
	"fluxgo/internal/debuglock"
	"fluxgo/internal/topo"
	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// Errno values used in CMB error responses. The canonical table lives
// in the wire package (they are protocol constants); these aliases keep
// the broker API ergonomic for modules.
const (
	ErrnoNoEnt       = wire.ErrnoNoEnt
	ErrnoInval       = wire.ErrnoInval
	ErrnoNoSys       = wire.ErrnoNoSys
	ErrnoProto       = wire.ErrnoProto
	ErrnoShutdown    = wire.ErrnoShutdown
	ErrnoTimedOut    = wire.ErrnoTimedOut
	ErrnoHostUnreach = wire.ErrnoHostUnreach
)

// LinkKind classifies a broker attachment to one of the overlay planes.
type LinkKind int

// Link kinds.
const (
	LinkParentTree  LinkKind = iota + 1 // request plane, toward root
	LinkParentEvent                     // event plane, toward root
	LinkChildTree                       // request plane, toward leaves
	LinkChildEvent                      // event plane, toward leaves
	LinkRingOut                         // rank-addressed plane, to next rank
	LinkRingIn                          // rank-addressed plane, from prev rank
	LinkClient                          // external client connection
	linkHandle                          // in-process Handle
)

func (k LinkKind) prefix() string {
	switch k {
	case LinkParentTree, LinkChildTree:
		return "t:"
	case LinkParentEvent, LinkChildEvent:
		return "e:"
	// Ring in and out must map to distinct ids: in a two-rank session
	// both directions have the same peer, and a shared prefix would
	// collide in the link registry, orphaning one conn at shutdown.
	case LinkRingOut:
		return "ro:"
	case LinkRingIn:
		return "ri:"
	case LinkClient:
		return "c:"
	default:
		return "h:"
	}
}

// link is one attachment: either a transport connection or a local handle.
type link struct {
	kind LinkKind
	id   string // registry id, unique within this broker
	conn transport.Conn
	h    *Handle
	subs []string // event-topic prefixes, for client links
	// gated marks a child event link that has not yet resynced: no live
	// events are forwarded on it until its cmb.resync is served, so a
	// replayed backlog can never be overtaken by a fresher event (which
	// would advance the child's sequence and make it drop the backlog as
	// duplicates).
	gated bool
}

// send delivers a message outbound on this link, reporting failure so
// the broker can account for it (see Broker.send).
func (l *link) send(m *wire.Message) error {
	if l.conn != nil {
		return l.conn.Send(m)
	}
	if l.h != nil && !l.h.deliver(m) {
		return errShutdown
	}
	return nil
}

// send delivers m on l, counting failures in Stats.SendErrors instead of
// silently discarding them. Link-down cleanup still handles the
// connection teardown itself; the counter is what makes a lossy or dying
// link observable through cmb.stats before that happens.
func (b *Broker) send(l *link, m *wire.Message) {
	if err := l.send(m); err != nil {
		b.mu.Lock()
		b.stats.SendErrors++
		b.mu.Unlock()
		b.logf("send on link %s failed: %v", l.id, err)
	}
}

// inbound is one unit of work for the broker loop.
type inbound struct {
	msg  *wire.Message
	from *link // arrival link; nil for broker-internal submissions
	// forceUp requests upstream forwarding without local module matching
	// (used by modules re-forwarding a request toward the root).
	forceUp bool
	// ctl carries loop-internal commands (attach, link down, shutdown).
	ctl func()
}

// Config parameterizes a Broker.
type Config struct {
	Rank  int
	Size  int
	Arity int // tree fan-out; 0 defaults to 2 (the paper's binary tree)
	Clock clock.Clock
	// EventHistory is how many recent events are cached for resync after
	// re-parenting; 0 defaults to 1024.
	EventHistory int
	// Reparent, when non-nil, is invoked (on its own goroutine) after the
	// parent links fail, giving the session a chance to re-wire this
	// broker to a new parent. It implements the paper's "self-heal when
	// interior nodes fail".
	Reparent func(b *Broker, oldParentRank int)
	// Log, when non-nil, receives broker diagnostics.
	Log func(format string, args ...any)
	// RPCTimeout is the default deadline applied to Handle RPCs that do
	// not specify their own. 0 defaults to DefaultRPCTimeout; negative
	// disables the default deadline entirely (callers may still pass one
	// per call).
	RPCTimeout time.Duration
}

// Stats are cumulative broker counters, readable at any time.
type Stats struct {
	RequestsRouted   uint64 // requests entering routing
	RequestsUpstream uint64 // requests forwarded to the tree parent
	RequestsRing     uint64 // requests forwarded on the ring
	ResponsesRouted  uint64
	EventsPublished  uint64 // events sequenced at this (root) broker
	EventsApplied    uint64
	EventsDuplicate  uint64 // dropped as already-seen after resync
	EventSeqGaps     uint64
	Reparents        uint64
	SendErrors       uint64 // outbound link sends that failed (conn closed, handle gone)
	InflightFailed   uint64 // routed RPCs failed with EHOSTUNREACH on a return-route link drop
}

// Broker is one CMB rank.
type Broker struct {
	cfg  Config
	tree topo.Tree
	ring topo.Ring

	inbox *Mailbox[inbound]

	// mu is a debuglock.Mutex so `-tags debuglock` builds verify the
	// broker's lock ordering (broker.mu -> handle.mu, never reversed).
	mu          debuglock.Mutex
	links       map[string]*link
	parentTree  *link
	parentEvent *link
	ringOut     *link
	parentRank  int
	modules     map[string]*moduleRunner
	stats       Stats
	closed      bool
	reparenting bool // a Reparent callback is in flight
	// inflight tracks requests this broker forwarded over an outbound
	// link and whose responses must retrace through it. When that link
	// drops, every tracked request is failed with ErrnoHostUnreach back
	// toward its requester, so no caller is left waiting on a response
	// that can never arrive (the no-hang guarantee's fast path; the RPC
	// deadline is the backstop for silent faults that drop no link).
	inflight map[string]*inflightReq

	handleSeq atomic.Uint64

	// bg tracks loop-spawned background work (e.g. async rmmod drains)
	// so Shutdown does not return while any of it is still running.
	bg sync.WaitGroup

	eventSeq     uint64 // root only: last assigned sequence number
	lastEventSeq uint64 // last applied sequence number
	eventHist    []*wire.Message

	done chan struct{}
}

// New creates a broker for the given rank. Links are attached afterwards
// with AttachConn / SetParent, then Start runs the routing loop.
func New(cfg Config) (*Broker, error) {
	if cfg.Arity == 0 {
		cfg.Arity = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.EventHistory == 0 {
		cfg.EventHistory = 1024
	}
	tree, err := topo.NewTree(cfg.Size, cfg.Arity)
	if err != nil {
		return nil, err
	}
	if !tree.Valid(cfg.Rank) {
		return nil, fmt.Errorf("broker: rank %d outside session of size %d", cfg.Rank, cfg.Size)
	}
	ring, err := topo.NewRing(cfg.Size)
	if err != nil {
		return nil, err
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = DefaultRPCTimeout
	}
	b := &Broker{
		cfg:        cfg,
		tree:       tree,
		ring:       ring,
		inbox:      NewMailbox[inbound](),
		links:      make(map[string]*link),
		modules:    make(map[string]*moduleRunner),
		inflight:   make(map[string]*inflightReq),
		parentRank: tree.Parent(cfg.Rank),
		done:       make(chan struct{}),
	}
	b.mu.SetClass("broker.Broker.mu")
	return b, nil
}

// inflightReq is the bookkeeping for one request forwarded over an
// outbound link (see Broker.inflight).
type inflightReq struct {
	topic   string
	seq     uint64
	route   []string // route stack at forward time (top = arrival hop)
	out     string   // outbound link id
	arrival string   // arrival link id ("" for broker-internal submissions)
}

// inflightKey identifies a forwarded request by its match tag plus the
// return route, which together are unique: handle ids are broker-unique
// and tags are unique per handle.
func inflightKey(seq uint64, route []string) string {
	var sb strings.Builder
	sb.Grow(24 + len(route)*12)
	fmt.Fprintf(&sb, "%d", seq)
	for _, hop := range route {
		sb.WriteByte('|')
		sb.WriteString(hop)
	}
	return sb.String()
}

// trackInflight records a routed request forwarded over out. Requests
// with no match tag (fire-and-forget) or no return route need no
// tracking: nothing is waiting on them.
func (b *Broker) trackInflight(m *wire.Message, out *link, arrival string) {
	if m.Seq == 0 || len(m.Route) == 0 {
		return
	}
	e := &inflightReq{
		topic:   m.Topic,
		seq:     m.Seq,
		route:   append([]string(nil), m.Route...),
		out:     out.id,
		arrival: arrival,
	}
	b.mu.Lock()
	b.inflight[inflightKey(e.seq, e.route)] = e
	b.mu.Unlock()
}

// Rank returns this broker's rank in the comms session.
func (b *Broker) Rank() int { return b.cfg.Rank }

// Size returns the comms session size.
func (b *Broker) Size() int { return b.cfg.Size }

// Tree returns the request-plane tree shape.
func (b *Broker) Tree() topo.Tree { return b.tree }

// Clock returns the broker's time source.
func (b *Broker) Clock() clock.Clock { return b.cfg.Clock }

// IsRoot reports whether this broker is the session root (rank 0).
func (b *Broker) IsRoot() bool { return b.cfg.Rank == 0 }

// ParentRank returns the current tree-parent rank, or -1 at the root.
// It changes after self-healing re-parenting.
func (b *Broker) ParentRank() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.parentRank
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

func (b *Broker) logf(format string, args ...any) {
	if b.cfg.Log != nil {
		b.cfg.Log("rank %d: "+format, append([]any{b.cfg.Rank}, args...)...)
	}
}

// AttachConn registers a transport connection as a link of the given
// kind and starts its reader. Safe to call before or after Start.
func (b *Broker) AttachConn(kind LinkKind, c transport.Conn) {
	l := &link{kind: kind, id: kind.prefix() + c.PeerIdentity(), conn: c}
	if kind == LinkChildEvent {
		l.gated = true // opened by the child's cmb.resync
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		c.Close()
		return
	}
	b.links[l.id] = l
	switch kind {
	case LinkParentTree:
		b.parentTree = l
	case LinkParentEvent:
		b.parentEvent = l
	case LinkRingOut:
		b.ringOut = l
	}
	b.mu.Unlock()
	go b.readLoop(l)
}

// readLoop pumps messages from a connection into the broker loop.
func (b *Broker) readLoop(l *link) {
	for {
		m, err := l.conn.Recv()
		if err != nil {
			b.inbox.Push(inbound{ctl: func() { b.linkDown(l) }})
			return
		}
		b.inbox.Push(inbound{msg: m, from: l})
	}
}

// Start runs the broker routing loop until Shutdown.
func (b *Broker) Start() {
	go b.loop()
}

func (b *Broker) loop() {
	defer close(b.done)
	for in := range b.inbox.Out() {
		if in.ctl != nil {
			in.ctl()
			continue
		}
		switch in.msg.Type {
		case wire.Request:
			b.routeRequest(in)
		case wire.Response:
			b.routeResponse(in)
		case wire.Event:
			b.applyEvent(in.msg)
		case wire.Control:
			b.handleControl(in)
		default:
			b.logf("dropping message of unknown type %d", in.msg.Type)
		}
	}
}

// submit is how handles and modules inject work into the loop.
func (b *Broker) submit(in inbound) bool { return b.inbox.Push(in) }

// routeRequest implements the paper's routing rules: requests travel
// upstream in the tree to the first matching comms module, or around the
// ring when addressed to a concrete rank.
func (b *Broker) routeRequest(in inbound) {
	m := in.msg
	b.mu.Lock()
	b.stats.RequestsRouted++
	b.mu.Unlock()
	if in.from != nil {
		m.PushRoute(in.from.id)
	}

	arrival := ""
	if in.from != nil {
		arrival = in.from.id
	}

	switch {
	case m.Nodeid == wire.NodeidUpstream:
		m.Nodeid = wire.NodeidAny
		b.forwardUpstream(m, arrival)
	case m.Nodeid == wire.NodeidAny:
		if in.forceUp {
			b.forwardUpstream(m, arrival)
			return
		}
		if b.dispatchLocal(m) {
			return
		}
		b.forwardUpstream(m, arrival)
	case int(m.Nodeid) == b.cfg.Rank:
		if !b.dispatchLocal(m) {
			b.respondErr(m, ErrnoNoSys, fmt.Sprintf("no module %q at rank %d", m.Service(), b.cfg.Rank))
		}
	case int(m.Nodeid) < b.cfg.Size:
		// Rank-addressed: forward on the ring overlay.
		if len(m.Route) > b.cfg.Size+8 {
			b.respondErr(m, ErrnoHostUnreach, "ring TTL exceeded")
			return
		}
		b.mu.Lock()
		out := b.ringOut
		b.stats.RequestsRing++
		b.mu.Unlock()
		if out == nil {
			b.respondErr(m, ErrnoHostUnreach, fmt.Sprintf("rank %d unreachable: no ring link", m.Nodeid))
			return
		}
		b.trackInflight(m, out, arrival)
		b.send(out, m)
	default:
		b.respondErr(m, ErrnoInval, fmt.Sprintf("nodeid %d outside session of size %d", m.Nodeid, b.cfg.Size))
	}
}

// dispatchLocal delivers m to a local comms module or the built-in cmb
// service. It reports whether a local service matched.
func (b *Broker) dispatchLocal(m *wire.Message) bool {
	svc := m.Service()
	if svc == wire.ServiceCMB {
		return b.builtinRequest(m)
	}
	b.mu.Lock()
	r, ok := b.modules[svc]
	b.mu.Unlock()
	if !ok {
		return false
	}
	r.inbox.Push(m)
	return true
}

// forwardUpstream sends m toward the root, or answers ENOSYS at the
// root. At a non-root broker whose parent link is down (crashed parent,
// re-parenting still in flight) it answers EHOSTUNREACH instead, so
// callers fail fast and can retry after the overlay self-heals.
func (b *Broker) forwardUpstream(m *wire.Message, arrival string) {
	b.mu.Lock()
	p := b.parentTree
	b.stats.RequestsUpstream++
	b.mu.Unlock()
	if p == nil {
		if b.IsRoot() {
			b.respondErr(m, ErrnoNoSys, fmt.Sprintf("no module %q in session", m.Service()))
		} else {
			b.respondErr(m, ErrnoHostUnreach,
				fmt.Sprintf("rank %d: parent link down (re-parenting)", b.cfg.Rank))
		}
		return
	}
	b.trackInflight(m, p, arrival)
	b.send(p, m)
}

// routeResponse pops one hop off the route stack and forwards. A
// response passing through settles the matching in-flight entry created
// when the request was forwarded.
func (b *Broker) routeResponse(in inbound) {
	m := in.msg
	b.mu.Lock()
	b.stats.ResponsesRouted++
	if m.Seq != 0 && len(b.inflight) > 0 {
		delete(b.inflight, inflightKey(m.Seq, m.Route))
	}
	b.mu.Unlock()
	if m.Seq == 0 && len(m.Route) == 0 {
		return // response to a fire-and-forget send: drop
	}
	id, ok := m.PopRoute()
	if !ok {
		b.logf("response %s with empty route stack dropped", m.Topic)
		return
	}
	b.mu.Lock()
	l, ok := b.links[id]
	b.mu.Unlock()
	if !ok {
		b.logf("response %s to unknown link %q dropped", m.Topic, id)
		return
	}
	b.send(l, m)
}

// respondErr generates an error response for a request and routes it
// back toward the requester. Fire-and-forget requests get no response.
func (b *Broker) respondErr(req *wire.Message, errnum int32, msg string) {
	if req.Seq == 0 {
		return
	}
	b.routeResponse(inbound{msg: wire.NewErrorResponse(req, errnum, msg)})
}

// linkDown cleans up after a connection failure or close. Requests this
// broker forwarded over the dead link are failed back toward their
// requesters with EHOSTUNREACH: their responses could only have returned
// through this link, so without this they would hang until the caller's
// deadline.
func (b *Broker) linkDown(l *link) {
	b.mu.Lock()
	delete(b.links, l.id)
	parentLost := false
	oldParent := b.parentRank
	if b.parentTree == l {
		b.parentTree = nil
		parentLost = true
	}
	if b.parentEvent == l {
		b.parentEvent = nil
		parentLost = true
	}
	if b.ringOut == l {
		b.ringOut = nil
	}
	var failed []*inflightReq
	for key, e := range b.inflight {
		switch l.id {
		case e.out:
			failed = append(failed, e)
			delete(b.inflight, key)
		case e.arrival:
			// The requester's own link is gone; any response would be
			// dropped at routing time, so just forget the entry.
			delete(b.inflight, key)
		}
	}
	b.stats.InflightFailed += uint64(len(failed))
	closed := b.closed
	reparent := b.cfg.Reparent
	trigger := parentLost && !closed && reparent != nil && !b.reparenting
	if trigger {
		b.reparenting = true
	}
	b.mu.Unlock()
	l.conn.Close()
	for _, e := range failed {
		req := &wire.Message{Type: wire.Request, Topic: e.topic, Seq: e.seq, Route: e.route}
		b.routeResponse(inbound{msg: wire.NewErrorResponse(req, ErrnoHostUnreach,
			fmt.Sprintf("rank %d: link %s down on return route", b.cfg.Rank, e.out))})
	}
	// Both parent-plane links fail on a parent death; re-parent once.
	if trigger {
		go reparent(b, oldParent)
	}
}

// SetParent atomically replaces the tree and event parent links after
// re-parenting, then requests an event resync so no sequence numbers are
// missed. newParentRank records the adoptive parent for introspection.
func (b *Broker) SetParent(treeConn, eventConn transport.Conn, newParentRank int) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		treeConn.Close()
		eventConn.Close()
		return
	}
	tl := &link{kind: LinkParentTree, id: LinkParentTree.prefix() + treeConn.PeerIdentity(), conn: treeConn}
	el := &link{kind: LinkParentEvent, id: LinkParentEvent.prefix() + eventConn.PeerIdentity(), conn: eventConn}
	b.links[tl.id] = tl
	b.links[el.id] = el
	b.parentTree = tl
	b.parentEvent = el
	b.parentRank = newParentRank
	b.stats.Reparents++
	b.reparenting = false
	last := b.lastEventSeq
	b.mu.Unlock()
	go b.readLoop(tl)
	go b.readLoop(el)
	// Ask the new parent to replay any events we missed during failover.
	resync := &wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: last}
	b.send(el, resync)
}

// handleControl processes link-level control messages.
func (b *Broker) handleControl(in inbound) {
	switch in.msg.Topic {
	case wire.TopicResync:
		if in.from == nil {
			return
		}
		b.replayEvents(in.from, in.msg.Seq)
		b.mu.Lock()
		in.from.gated = false
		b.mu.Unlock()
	case wire.TopicSub:
		if in.from != nil {
			var body struct {
				Prefix string `json:"prefix"`
			}
			if err := in.msg.UnpackJSON(&body); err == nil {
				b.mu.Lock()
				in.from.subs = append(in.from.subs, body.Prefix)
				b.mu.Unlock()
			}
		}
	case wire.TopicUnsub:
		if in.from != nil {
			var body struct {
				Prefix string `json:"prefix"`
			}
			if err := in.msg.UnpackJSON(&body); err == nil {
				b.mu.Lock()
				subs := in.from.subs[:0]
				for _, s := range in.from.subs {
					if s != body.Prefix {
						subs = append(subs, s)
					}
				}
				in.from.subs = subs
				b.mu.Unlock()
			}
		}
	default:
		b.logf("unknown control %q dropped", in.msg.Topic)
	}
}

// Shutdown stops the broker: modules are shut down, links closed, and
// in-process handles unblocked with ErrnoShutdown failures.
func (b *Broker) Shutdown() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	links := make([]*link, 0, len(b.links))
	for _, l := range b.links {
		links = append(links, l)
	}
	runners := make([]*moduleRunner, 0, len(b.modules))
	for _, r := range b.modules {
		runners = append(runners, r)
	}
	b.mu.Unlock()

	// Handles first: failing them unblocks any module goroutine parked in
	// an RPC, so module runners can then drain and stop.
	for _, l := range links {
		if l.conn != nil {
			l.conn.Close()
		}
		if l.h != nil {
			l.h.shutdown()
		}
	}
	for _, r := range runners {
		r.stop()
	}
	b.inbox.Close()
	<-b.done
	b.bg.Wait()
}

// matchTopic reports whether topic matches a subscription prefix, using
// the hierarchical namespace convention: a prefix matches itself and any
// dotted descendant ("kvs" matches "kvs.setroot" but not "kvsx").
func matchTopic(prefix, topic string) bool {
	if prefix == "" {
		return true
	}
	if !strings.HasPrefix(topic, prefix) {
		return false
	}
	return len(topic) == len(prefix) || topic[len(prefix)] == '.'
}
