package session

import (
	"testing"

	"fluxgo/internal/testutil"
)

// TestMain fails the package run if any fluxgo goroutine survives the
// test suite — see internal/testutil.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
