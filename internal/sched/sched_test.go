package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fluxgo/internal/resource"
)

func pool(t testing.TB, nodes int) *resource.Pool {
	t.Helper()
	c, err := resource.BuildCluster(resource.ClusterSpec{
		Name: "t", Racks: 1, NodesPerRack: nodes, SocketsPerNode: 2, CoresPerSocket: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resource.NewPool(c)
}

func job(id string, nodes int, dur, submit time.Duration) *Job {
	return &Job{ID: id, Req: resource.Request{Nodes: nodes}, Duration: dur, Submit: submit}
}

func TestFCFSSequentialWhenFull(t *testing.T) {
	p := pool(t, 4)
	jobs := []*Job{
		job("a", 4, 10*time.Second, 0),
		job("b", 4, 10*time.Second, 0),
	}
	m, err := Simulate(p, FCFS{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 2 {
		t.Fatalf("completed %d", m.Completed)
	}
	if jobs[1].Start != 10*time.Second {
		t.Fatalf("b started at %v, want 10s", jobs[1].Start)
	}
	if m.Makespan != 20*time.Second {
		t.Fatalf("makespan %v", m.Makespan)
	}
	if m.Utilization < 0.99 {
		t.Fatalf("utilization %f, want ~1", m.Utilization)
	}
}

func TestFCFSParallelWhenFits(t *testing.T) {
	p := pool(t, 4)
	jobs := []*Job{
		job("a", 2, 10*time.Second, 0),
		job("b", 2, 10*time.Second, 0),
	}
	m, err := Simulate(p, FCFS{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Makespan != 10*time.Second {
		t.Fatalf("makespan %v, want 10s (parallel)", m.Makespan)
	}
}

func TestFCFSHeadBlocks(t *testing.T) {
	// a: 3 nodes 10s; b: 4 nodes (blocked); c: 1 node 1s. Strict FCFS
	// must NOT run c before b.
	p := pool(t, 4)
	jobs := []*Job{
		job("a", 3, 10*time.Second, 0),
		job("b", 4, 10*time.Second, 0),
		job("c", 1, time.Second, 0),
	}
	_, err := Simulate(p, FCFS{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[2].Start < jobs[1].Start {
		t.Fatalf("FCFS let c (start %v) jump b (start %v)", jobs[2].Start, jobs[1].Start)
	}
}

func TestEASYBackfills(t *testing.T) {
	// Same workload: EASY backfills c into the 1-node hole because c
	// finishes (1s) before the head's reservation (10s).
	p := pool(t, 4)
	jobs := []*Job{
		job("a", 3, 10*time.Second, 0),
		job("b", 4, 10*time.Second, 0),
		job("c", 1, time.Second, 0),
	}
	m, err := Simulate(p, EASY{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[2].Start != 0 {
		t.Fatalf("EASY did not backfill c (start %v)", jobs[2].Start)
	}
	// b must still start at its reservation, undelayed.
	if jobs[1].Start != 10*time.Second {
		t.Fatalf("backfill delayed the head: b start %v", jobs[1].Start)
	}
	if m.Makespan != 20*time.Second {
		t.Fatalf("makespan %v", m.Makespan)
	}
}

func TestEASYRefusesDelayingBackfill(t *testing.T) {
	// c runs 20s — longer than the head's shadow window — and needs a
	// node the head will use, so it must NOT backfill.
	p := pool(t, 4)
	jobs := []*Job{
		job("a", 3, 10*time.Second, 0),
		job("b", 4, 10*time.Second, 0),
		job("c", 2, 20*time.Second, 0),
	}
	_, err := Simulate(p, EASY{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[2].Start == 0 {
		t.Fatal("EASY backfilled a reservation-delaying job")
	}
	if jobs[1].Start != 10*time.Second {
		t.Fatalf("b delayed to %v", jobs[1].Start)
	}
}

func TestEASYBackfillExtraNodes(t *testing.T) {
	// Head needs 3 of 4 nodes; a long 1-node job fits in the extra node
	// without delaying the reservation.
	p := pool(t, 4)
	jobs := []*Job{
		job("a", 4, 10*time.Second, 0),
		job("b", 3, 10*time.Second, 0),
		job("c", 1, time.Hour, 0),
	}
	_, err := Simulate(p, EASY{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[2].Start != 10*time.Second {
		t.Fatalf("c start %v, want 10s (extra-node backfill)", jobs[2].Start)
	}
	if jobs[1].Start != 10*time.Second {
		t.Fatalf("b start %v, want 10s", jobs[1].Start)
	}
}

func TestLateSubmissions(t *testing.T) {
	p := pool(t, 2)
	jobs := []*Job{
		job("a", 2, 5*time.Second, 0),
		job("late", 1, 5*time.Second, 60*time.Second),
	}
	m, err := Simulate(p, FCFS{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[1].Start != 60*time.Second {
		t.Fatalf("late job started at %v", jobs[1].Start)
	}
	if m.Makespan != 65*time.Second {
		t.Fatalf("makespan %v", m.Makespan)
	}
	if jobs[1].Wait() != 0 {
		t.Fatalf("late job wait %v, want 0", jobs[1].Wait())
	}
}

func TestSimulateValidation(t *testing.T) {
	p := pool(t, 2)
	if _, err := Simulate(p, FCFS{}, []*Job{job("x", 3, time.Second, 0)}); err == nil {
		t.Fatal("oversized job accepted")
	}
	if _, err := Simulate(p, FCFS{}, []*Job{job("x", 0, time.Second, 0)}); err == nil {
		t.Fatal("zero-node job accepted")
	}
	if _, err := Simulate(p, FCFS{}, []*Job{job("x", 1, time.Second, 0), job("x", 1, time.Second, 0)}); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

// validSchedule checks schedule invariants: every job completed, starts
// after submit, runs for its duration, and node usage never exceeds
// capacity at any event point.
func validSchedule(jobs []*Job, nodes int) bool {
	for _, j := range jobs {
		if j.State != StateComplete || j.Start < j.Submit || j.End != j.Start+j.Duration {
			return false
		}
	}
	// Node usage at every job-start instant (usage only changes there).
	for _, at := range jobs {
		used := 0
		for _, j := range jobs {
			if j.Start <= at.Start && at.Start < j.End {
				used += j.Req.Nodes
			}
		}
		if used > nodes {
			return false
		}
	}
	return true
}

// Property: both policies always produce valid schedules — all jobs
// complete, causality holds, and capacity is never exceeded. (EASY is
// not guaranteed to beat FCFS on makespan, so that is deliberately not
// asserted.)
func TestSchedulesAlwaysValidQuick(t *testing.T) {
	mkJobs := func(seed int64, nodes int) []*Job {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(12) + 2
		var jobs []*Job
		for i := 0; i < n; i++ {
			jobs = append(jobs, job(
				fmt.Sprintf("j%d", i),
				r.Intn(nodes)+1,
				time.Duration(r.Intn(20)+1)*time.Second,
				time.Duration(r.Intn(10))*time.Second,
			))
		}
		return jobs
	}
	f := func(seed int64) bool {
		const nodes = 8
		jobsA := mkJobs(seed, nodes)
		jobsB := mkJobs(seed, nodes) // identical workload, fresh state

		mf, err1 := Simulate(pool(t, nodes), FCFS{}, jobsA)
		me, err2 := Simulate(pool(t, nodes), EASY{}, jobsB)
		if err1 != nil || err2 != nil {
			return false
		}
		if mf.Completed != len(jobsA) || me.Completed != len(jobsB) {
			return false
		}
		if mf.Utilization <= 0 || mf.Utilization > 1.000001 ||
			me.Utilization <= 0 || me.Utilization > 1.000001 {
			return false
		}
		return validSchedule(jobsA, nodes) && validSchedule(jobsB, nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionAndHierarchy(t *testing.T) {
	var jobs []*Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, job(fmt.Sprintf("j%d", i), 1+i%4, time.Duration(1+i%7)*time.Second, 0))
	}
	leases, err := Partition(16, PartitionSpec{Children: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 4 {
		t.Fatalf("%d leases", len(leases))
	}
	for i, l := range leases {
		if l.Pool.TotalNodes() != 4 {
			t.Fatalf("lease %d has %d nodes", i, l.Pool.TotalNodes())
		}
		if len(l.Jobs) != 10 {
			t.Fatalf("lease %d has %d jobs", i, len(l.Jobs))
		}
	}
	res, err := SimulateHierarchy(leases, func() Policy { return EASY{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 40 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.Makespan == 0 {
		t.Fatal("zero makespan")
	}
}

func TestCentralizedBaseline(t *testing.T) {
	var jobs []*Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, job(fmt.Sprintf("j%d", i), 1+i%4, time.Duration(1+i%7)*time.Second, 0))
	}
	m, wall, err := SimulateCentralized(16, PartitionSpec{}, EASY{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 40 || wall <= 0 {
		t.Fatalf("completed %d wall %v", m.Completed, wall)
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := Partition(4, PartitionSpec{Children: 0}, nil); err == nil {
		t.Fatal("0 children accepted")
	}
	if _, err := Partition(2, PartitionSpec{Children: 4}, nil); err == nil {
		t.Fatal("more children than nodes accepted")
	}
}

// TestPowerConstrainedSchedule: the simulator honors multi-dimensional
// requests — with a cluster power cap admitting only 2 of 4 nodes at
// 700 W, two 1-node 700 W jobs cannot overlap a third.
func TestPowerConstrainedSchedule(t *testing.T) {
	c, err := resource.BuildCluster(resource.ClusterSpec{
		Name: "p", Racks: 1, NodesPerRack: 4, SocketsPerNode: 2, CoresPerSocket: 8,
		ClusterPowerW: 1500, NodePowerW: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := resource.NewPool(c)
	mk := func(id string) *Job {
		return &Job{
			ID:       id,
			Req:      resource.Request{Nodes: 1, PowerWPerNod: 700},
			Duration: 10 * time.Second,
		}
	}
	jobs := []*Job{mk("a"), mk("b"), mk("c")}
	m, err := Simulate(p, EASY{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 3 {
		t.Fatalf("completed %d", m.Completed)
	}
	// Only 2 x 700 W fit under the 1500 W cap, so the third serializes:
	// makespan 20s, despite 4 structural nodes being available.
	if m.Makespan != 20*time.Second {
		t.Fatalf("makespan %v, want 20s (power-capped)", m.Makespan)
	}
}

func TestStateString(t *testing.T) {
	if StatePending.String() != "pending" || StateRunning.String() != "running" ||
		StateComplete.String() != "complete" {
		t.Fatal("state strings wrong")
	}
}
