package testutil

import (
	"strings"
	"testing"
	"time"
)

// recorder captures Errorf calls so we can assert on the asserter.
type recorder struct {
	msgs []string
}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...interface{}) {
	var b strings.Builder
	b.WriteString(format)
	r.msgs = append(r.msgs, b.String())
}

func TestCheckNoLeaksClean(t *testing.T) {
	rec := &recorder{}
	CheckNoLeaks(rec)
	if len(rec.msgs) != 0 {
		t.Fatalf("clean run reported leaks: %v", rec.msgs)
	}
}

// leakyHelper parks a goroutine inside module code until release is
// closed; while parked it must be visible to leakedStacks.
func leakyHelper(release <-chan struct{}, started chan<- struct{}) {
	close(started)
	<-release
}

func TestCheckNoLeaksDetects(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go leakyHelper(release, started)
	<-started

	// leakedStacks must see the parked goroutine even though it lives
	// in testutil's own test file: the _test binary's frames carry the
	// fluxgo/ prefix via the helper's package path. Use the low-level
	// scan directly so the testutil-marker exclusion (which applies to
	// this package) doesn't hide it from the assertion.
	//
	// Since this package IS testutil, the marker excludes our helper;
	// emulate an adopter instead by checking the raw scan against a
	// widened filter.
	found := false
	for i := 0; i < 100 && !found; i++ {
		for _, g := range allStacks() {
			if strings.Contains(g, "leakyHelper") {
				found = true
				break
			}
		}
		if !found {
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(release)
	if !found {
		t.Fatal("parked goroutine never appeared in stack scan")
	}
}

func TestVerifyTestMainPropagatesFailure(t *testing.T) {
	var got int
	VerifyTestMain(fakeM{code: 7}, func(code int) { got = code })
	if got != 7 {
		t.Fatalf("exit code = %d, want 7", got)
	}
}

type fakeM struct{ code int }

func (f fakeM) Run() int { return f.code }
