package transport

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/wire"
)

func msg(topic string, seq uint64) *wire.Message {
	return &wire.Message{Type: wire.Request, Topic: topic, Seq: seq, Payload: []byte(`{}`)}
}

func testConnPair(t *testing.T, a, b Conn) {
	t.Helper()

	// In-order delivery a -> b.
	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Send(msg("t", uint64(i))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if m.Seq != uint64(i) {
			t.Fatalf("out of order: got seq %d, want %d", m.Seq, i)
		}
	}

	// Bidirectional.
	if err := b.Send(msg("back", 1)); err != nil {
		t.Fatal(err)
	}
	m, err := a.Recv()
	if err != nil || m.Topic != "back" {
		t.Fatalf("reverse direction: %v %v", m, err)
	}

	// Close drains in-flight messages, then EOF.
	if err := a.Send(msg("last", 9)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	m, err = b.Recv()
	if err != nil || m.Topic != "last" {
		t.Fatalf("drain after close: %v %v", m, err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("Recv after peer close = %v, want io.EOF", err)
	}
	if err := a.Send(msg("x", 0)); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
}

func TestPipeConn(t *testing.T) {
	a, b := Pipe("alice", "bob")
	if a.PeerIdentity() != "bob" || b.PeerIdentity() != "alice" {
		t.Fatalf("identities: %q %q", a.PeerIdentity(), b.PeerIdentity())
	}
	testConnPair(t, a, b)
}

func TestPipeConcurrentSenders(t *testing.T) {
	a, b := Pipe("a", "b")
	const senders, per = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Send(msg(fmt.Sprintf("s%d", s), uint64(i)))
			}
		}(s)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); a.Close(); close(done) }()

	lastSeq := map[string]uint64{}
	count := 0
	for {
		m, err := b.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Per-sender FIFO must hold even with concurrent senders.
		if prev, ok := lastSeq[m.Topic]; ok && m.Seq != prev+1 {
			t.Fatalf("sender %s: seq %d after %d", m.Topic, m.Seq, prev)
		}
		lastSeq[m.Topic] = m.Seq
		count++
	}
	<-done
	if count != senders*per {
		t.Fatalf("received %d messages, want %d", count, senders*per)
	}
}

func TestPipeCloseUnblocksReader(t *testing.T) {
	a, b := Pipe("a", "b")
	errc := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if err != io.EOF {
			t.Fatalf("Recv = %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv not unblocked by Close")
	}
	_ = a
}

func tcpPair(t *testing.T, key []byte) (Conn, Conn, *Listener) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", key, "server")
	if err != nil {
		t.Fatal(err)
	}
	type acc struct {
		c   Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := l.Accept()
		ch <- acc{c, err}
	}()
	client, err := Dial(l.Addr().String(), key, "client")
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	return a.c, client, l
}

func TestTCPConn(t *testing.T) {
	server, client, l := tcpPair(t, []byte("secret"))
	defer l.Close()
	defer server.Close()
	if server.PeerIdentity() != "client" || client.PeerIdentity() != "server" {
		t.Fatalf("identities: %q %q", server.PeerIdentity(), client.PeerIdentity())
	}
	// In-order delivery both ways, then close semantics.
	for i := 0; i < 50; i++ {
		if err := client.Send(msg("t", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		m, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != uint64(i) {
			t.Fatalf("out of order: %d want %d", m.Seq, i)
		}
	}
	server.Send(msg("pong", 0))
	if m, err := client.Recv(); err != nil || m.Topic != "pong" {
		t.Fatalf("reverse: %v %v", m, err)
	}
	client.Close()
	if _, err := server.Recv(); err != io.EOF {
		t.Fatalf("Recv after close = %v, want io.EOF", err)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	server, client, l := tcpPair(t, []byte("k"))
	defer l.Close()
	defer server.Close()
	defer client.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	m := &wire.Message{Type: wire.Request, Topic: "big", Payload: big}
	if err := client.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != len(big) {
		t.Fatalf("payload length %d, want %d", len(got.Payload), len(big))
	}
}

func TestTCPAuthFailure(t *testing.T) {
	l, err := Listen("127.0.0.1:0", []byte("rightkey"), "server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accErr := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		accErr <- err
	}()
	if _, err := Dial(l.Addr().String(), []byte("wrongkey"), "evil"); err == nil {
		t.Fatal("Dial with wrong key succeeded")
	}
	select {
	case err := <-accErr:
		if err == nil {
			t.Fatal("Accept with wrong-key client succeeded")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Accept did not return")
	}
}

func TestTCPDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", []byte("k"), "c"); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestCodecPipeRoundTrip(t *testing.T) {
	a, b := CodecPipe("a", "b")
	m := &wire.Message{
		Type:    wire.Request,
		Topic:   "kvs.put",
		Nodeid:  wire.NodeidAny,
		Seq:     7,
		Route:   []string{"h:0.1"},
		Payload: []byte(`{"key":"x"}`),
	}
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got == m {
		t.Fatal("codec pipe delivered the same pointer (no copy)")
	}
	if got.Topic != m.Topic || got.Seq != m.Seq || string(got.Payload) != string(m.Payload) ||
		len(got.Route) != 1 || got.Route[0] != "h:0.1" {
		t.Fatalf("codec round trip mutated message: %+v", got)
	}
	// Mutating the received copy must not touch the original.
	got.Payload[0] = 'X'
	if m.Payload[0] != '{' {
		t.Fatal("codec copy aliases original payload")
	}
	// Unmarshalable messages error at Send.
	bad := &wire.Message{Type: wire.Event, Topic: "big", Payload: make([]byte, wire.MaxMessageSize)}
	if err := a.Send(bad); err == nil {
		t.Fatal("oversized message accepted by codec pipe")
	}
	a.Close()
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("Recv after close = %v", err)
	}
}

func TestQueueBasics(t *testing.T) {
	q := newQueue()
	if q.len() != 0 {
		t.Fatal("new queue not empty")
	}
	q.push(outItem{m: msg("a", 1)})
	q.push(outItem{m: msg("b", 2)})
	if q.len() != 2 {
		t.Fatalf("len = %d, want 2", q.len())
	}
	it, _ := q.pop()
	if it.m.Topic != "a" {
		t.Fatal("queue not FIFO")
	}
	q.close(true)
	if err := q.push(outItem{m: msg("c", 3)}); err != ErrClosed {
		t.Fatalf("push on closed = %v, want ErrClosed", err)
	}
	it, err := q.pop()
	if err != nil || it.m.Topic != "b" {
		t.Fatalf("drain: %v %v", it.m, err)
	}
	if _, err := q.pop(); err != io.EOF {
		t.Fatalf("pop after drain = %v, want io.EOF", err)
	}
}
