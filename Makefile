# fluxgo build/test entry points.
#
# `make check` is the gate: vet, fluxlint (the repo's own static
# analysis, see cmd/fluxlint), and the full test suite under the race
# detector, including the chaos soak at its short default duration.
# Lengthen the soak (and pin a fault schedule) via the env vars the soak
# test reads, e.g.:
#
#   CHAOS_SOAK=30s CHAOS_SEED=42 make chaos
#
# `make debuglock` reruns the suite with the lock-order-checking mutex
# build (-tags debuglock): cycles in lock acquisition order panic with
# both stacks instead of deadlocking silently.

GO ?= go

# Hot-path packages covered by `make bench` / the CI bench job.
BENCH_PKGS = ./internal/wire/ ./internal/broker/ ./internal/kvs/ ./internal/cas/ ./internal/obs/ ./cmd/fluxlint/

.PHONY: build test check chaos recovery vet lint debuglock bench benchdiff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: nine passes over the module, zero findings required.
# -stats prints per-pass kept/suppressed counts; CI runs this target
# under a 30-second wall-clock budget (see .github/workflows/ci.yml), so
# pass-cost regressions fail loudly. BenchmarkLintRepo tracks the same
# cost at finer grain.
lint:
	$(GO) run ./cmd/fluxlint -stats ./...

test:
	$(GO) test ./...

check: vet lint
	$(GO) test -race ./...

# Race suite with the runtime lock-order checker compiled in.
debuglock:
	$(GO) test -race -tags debuglock ./...

# Longer fault-injection soak; honours CHAOS_SOAK / CHAOS_SEED.
chaos:
	$(GO) test -race -run 'TestChaosSoak' -v ./internal/session/

# Durability gate: the WAL truncation sweep, the restart protocol tests,
# and the seeded crash-restart soak (kill/crash/restart of ranks and
# shard masters under link + storage faults, then prove every
# acknowledged commit survived). Honours FLUX_CHAOS_SEEDS / CHAOS_SOAK:
#
#   FLUX_CHAOS_SEEDS=1,2,3,4,5,6 CHAOS_SOAK=2s make recovery
recovery:
	$(GO) test -race -run 'TestWALTruncationSweep|TestDurableCommitRecovery' -v ./internal/cas/
	$(GO) test -race -run 'TestRestart|TestKillRootRefused|TestCrashRootRefused' -v ./internal/session/
	$(GO) test -race -run 'TestCrashRestartSoak' -v ./internal/kvs/

# Hot-path microbenchmarks plus the 10k-rank event-storm scenario,
# archived as JSON (see cmd/benchjson and EXPERIMENTS.md for the
# tracked before/after numbers). The storm is a single wall-clock
# sample of 2048 events fanned out to 10000 in-process ranks — a scale
# demonstrator, so it is archived here but deliberately excluded from
# the benchdiff gate (one noisy multi-minute sample would make a 15%
# threshold flap).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 6 $(BENCH_PKGS) > /tmp/bench_raw.txt
	$(GO) run ./cmd/flux-sim -scenario storm -ranks 10000 -events 2048 -bench >> /tmp/bench_raw.txt
	$(GO) run ./cmd/benchjson -label current -o BENCH_core.json < /tmp/bench_raw.txt

# Perf gate: rerun the hot-path benchmarks and fail on a >15% min-ns/op
# regression against the committed archive (see cmd/benchdiff).
# Benchmarks present on one side only (e.g. the archived event storm)
# are reported but never fail the gate. Six repetitions per benchmark:
# the diff compares min against min, and the min of six samples sits
# close enough to the true floor that scheduler noise stays inside the
# 15% threshold (min-of-three flaps on shared runners).
benchdiff:
	$(GO) test -run '^$$' -bench . -benchmem -count 6 $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -label fresh -o /tmp/bench_fresh.json
	$(GO) run ./cmd/benchdiff -old BENCH_core.json -new /tmp/bench_fresh.json
