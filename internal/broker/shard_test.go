package broker

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// recModule records the per-flow arrival order of "rec.mark" requests so
// tests can check the dispatch pipeline's per-flow FIFO contract.
type recModule struct {
	mu    sync.Mutex
	flows map[int][]int
	total int
}

type markBody struct {
	Flow int `json:"flow"`
	N    int `json:"n"`
}

func (r *recModule) Name() string            { return "rec" }
func (r *recModule) Subscriptions() []string { return nil }
func (r *recModule) Init(h *Handle) error    { return nil }
func (r *recModule) Shutdown()               {}

func (r *recModule) Recv(msg *wire.Message) {
	var body markBody
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	r.mu.Lock()
	r.flows[body.Flow] = append(r.flows[body.Flow], body.N)
	r.total++
	r.mu.Unlock()
}

func (r *recModule) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// TestShardedDispatchPerFlowFIFO drives many concurrent flows (one per
// handle, fire-and-forget so every message of a flow shares one flow
// key) through a sharded broker and checks each flow's messages reach
// the module in send order. Cross-flow interleaving is free to vary;
// within a flow, reordering is a dispatch bug.
func TestShardedDispatchPerFlowFIFO(t *testing.T) {
	b, err := New(Config{Rank: 0, Size: 1, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recModule{flows: map[int][]int{}}
	if err := b.LoadModule(rec); err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Shutdown()

	const flows, msgs = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < flows; g++ {
		wg.Add(1)
		go func(flow int) {
			defer wg.Done()
			h := b.NewHandle()
			defer h.Close()
			for i := 0; i < msgs; i++ {
				if err := h.Send("rec.mark", wire.NodeidAny, markBody{Flow: flow, N: i}); err != nil {
					t.Errorf("flow %d: send %d: %v", flow, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for rec.count() < flows*msgs {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d messages", rec.count(), flows*msgs)
		}
		time.Sleep(time.Millisecond)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for flow, ns := range rec.flows {
		for i, n := range ns {
			if n != i {
				t.Fatalf("flow %d: position %d holds message %d (reordered)", flow, i, n)
			}
		}
	}
}

// TestEventTotalOrderConcurrentPublish publishes events from many
// concurrent handles while sharded dispatch is active and checks that
// every observer — a local subscriber and frame-capable children over
// codec pipes — sees one total order with no gaps: sequence numbers
// strictly ascending from 1.
func TestEventTotalOrderConcurrentPublish(t *testing.T) {
	const children, publishers, perPub = 3, 8, 100
	const total = publishers * perPub

	b, err := New(Config{Rank: 0, Size: 1, Shards: 8, EventHistory: 8})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Shutdown()

	type childResult struct {
		seqs []uint64
		err  error
	}
	results := make([]childResult, children)
	var childWG sync.WaitGroup
	warmed := make(chan struct{}, children)
	for c := 0; c < children; c++ {
		parentEnd, childEnd := transport.CodecPipe("rank:0", fmt.Sprintf("rank:%d", c+1))
		b.AttachConn(LinkChildEvent, parentEnd)
		if err := childEnd.Send(&wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: 0}); err != nil {
			t.Fatal(err)
		}
		childWG.Add(1)
		go func(c int, conn transport.Conn) {
			defer childWG.Done()
			for len(results[c].seqs) < total {
				m, err := conn.Recv()
				if err != nil {
					results[c].err = err
					return
				}
				if m.Type != wire.Event {
					continue
				}
				if m.Topic == "warm.up" {
					warmed <- struct{}{}
					continue
				}
				results[c].seqs = append(results[c].seqs, m.Seq)
			}
		}(c, childEnd)
		defer childEnd.Close()
	}

	sub := b.NewHandle()
	defer sub.Close()
	events, err := sub.Subscribe("storm")
	if err != nil {
		t.Fatal(err)
	}

	// The initial resync is asynchronous: publish a warmup event (which a
	// still-gated child picks up from the replay) and wait for every
	// child to see it, so the storm below fans out to ungated links only.
	warm := b.NewHandle()
	if _, err := warm.PublishEvent("warm.up", nil); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	for c := 0; c < children; c++ {
		select {
		case <-warmed:
		case <-time.After(10 * time.Second):
			t.Fatal("children never saw the warmup event")
		}
	}

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			h := b.NewHandle()
			defer h.Close()
			for i := 0; i < perPub; i++ {
				if _, err := h.PublishEvent("storm.tick", map[string]int{"p": p, "i": i}); err != nil {
					t.Errorf("publisher %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	pubWG.Wait()

	var subSeqs []uint64
	timeout := time.After(10 * time.Second)
	for len(subSeqs) < total {
		select {
		case m := <-events.Chan():
			subSeqs = append(subSeqs, m.Seq)
		case <-timeout:
			t.Fatalf("subscriber saw %d of %d events", len(subSeqs), total)
		}
	}
	checkAscending := func(who string, seqs []uint64) {
		t.Helper()
		if len(seqs) != total {
			t.Fatalf("%s: saw %d of %d events", who, len(seqs), total)
		}
		// Seq 1 was the warmup; the storm occupies 2..total+1, and every
		// observer must see it gap-free in that exact order.
		for i, s := range seqs {
			if s != uint64(i+2) {
				t.Fatalf("%s: position %d holds seq %d (total order broken)", who, i, s)
			}
		}
	}
	checkAscending("subscriber", subSeqs)
	childWG.Wait()
	for c := range results {
		if results[c].err != nil {
			t.Fatalf("child %d: %v", c, results[c].err)
		}
		checkAscending(fmt.Sprintf("child %d", c), results[c].seqs)
	}

	// Encode-once accounting: every storm event built exactly one frame
	// for the three frame-capable children, so fan-out reused each
	// encoding twice (the warmup's accounting depends on resync timing).
	reg := b.Metrics()
	if got := reg.Counter(wire.MetricEventsFanoutEncodes).Load(); got < total {
		t.Fatalf("events_fanout_encodes = %d, want >= %d", got, total)
	}
	if got := reg.Counter(wire.MetricEventsFanoutReuse).Load(); got < uint64(total*(children-1)) {
		t.Fatalf("events_fanout_reuse = %d, want >= %d", got, total*(children-1))
	}
}

// TestFanoutFrameReplaySoak is a race soak of the refcounted fan-out
// buffer: concurrent publishers share encoded frames across child links
// while the children keep re-requesting resyncs, so live fan-out sends
// and replayEvents' cached-frame reuse overlap constantly. Run under
// -race; an extra Release anywhere frees a frame still being written and
// the frame's buffer check or the race detector trips.
func TestFanoutFrameReplaySoak(t *testing.T) {
	const children, publishers, perPub = 4, 4, 250
	const total = publishers * perPub

	b, err := New(Config{Rank: 0, Size: 1, Shards: 4, EventHistory: total + 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()

	var childWG sync.WaitGroup
	for c := 0; c < children; c++ {
		parentEnd, childEnd := transport.CodecPipe("rank:0", fmt.Sprintf("rank:%d", c+1))
		b.AttachConn(LinkChildEvent, parentEnd)
		if err := childEnd.Send(&wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: 0}); err != nil {
			t.Fatal(err)
		}
		childWG.Add(1)
		go func(conn transport.Conn) {
			defer childWG.Done()
			defer conn.Close()
			seen := map[uint64]bool{}
			nextResync := 64
			for len(seen) < total {
				m, err := conn.Recv()
				if err != nil {
					t.Errorf("child recv: %v", err)
					return
				}
				if m.Type != wire.Event {
					continue
				}
				if seen[m.Seq] {
					continue // replay duplicate
				}
				seen[m.Seq] = true
				// At fixed progress milestones, re-request a replay from a
				// few events back: duplicates are expected downstream; the
				// point is that the replay path retains and releases cached
				// frames concurrently with live fan-out. Milestones are
				// counted over distinct events so replayed duplicates cannot
				// trigger further replays and storm the broker.
				if len(seen) >= nextResync && len(seen) < total {
					nextResync += 64
					back := uint64(0)
					if m.Seq > 16 {
						back = m.Seq - 16
					}
					if err := conn.Send(&wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: back}); err != nil {
						return
					}
				}
			}
		}(childEnd)
	}

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			h := b.NewHandle()
			defer h.Close()
			for i := 0; i < perPub; i++ {
				if _, err := h.PublishEvent("soak.ev", json.RawMessage(`{"x":1}`)); err != nil {
					t.Errorf("publisher %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	pubWG.Wait()
	childWG.Wait()
	// Shutdown releases the history's cached frames — the last owner of
	// every refcount. Over-released frames would already have tripped.
	b.Shutdown()
}
