package main

// pool-ownership: flow-sensitive lifecycle checking for pooled
// wire.Message values (the PR-5 ownership protocol). The protocol:
// Handoff() arms a message and transfers ownership to whichever
// component the message is then handed to (the transport writer
// releases it after encoding); Release() recycles it; Detach() severs
// any alias into a pooled receive buffer. The invariants, enforced as
// a forward dataflow over each function's CFG:
//
//   - after v.Handoff(), the sender gets exactly one sanctioned
//     consumption: passing v to a call (or storing it into a composite
//     literal bound for one). Any other touch — a field read, another
//     method call, a second pass, a Release — is a use of memory the
//     transport may already have recycled.
//   - after v.Release(), any use (including a second Release) is a
//     use-after-free in waiting: the debuglock build panics here at
//     runtime; this pass catches it at lint time.
//   - a function that Releases v on some path must settle v's
//     ownership on every path: each use of v (re)opens an obligation
//     that only Release, Detach, a channel send, returning v, handing
//     it off, or rebinding v discharges. A `return err` between the
//     use and the Release is the transport leak this pass exists for.
//     `defer v.Release()` settles the obligation wholesale.
//   - the payload-retention rule, relocated from wire-hygiene:
//     a handler storing a *wire.Message parameter's .Payload into a
//     struct field, map entry, or appended slice without a Detach()
//     call anywhere in the function retains memory that aliases a
//     pooled receive buffer.
//
// The same machinery covers refcounted wire.Frame values (encode-once
// event fan-out). Frames have no Handoff: NewFrame's reference belongs
// to the caller, Retain() mints a reference for another holder (the
// caller's own reference and its obligations are untouched), Release()
// drops the caller's reference, and passing a bare frame variable to
// X.SendFrame(...) gives the sender that reference — the sender
// releases it after writing, so a later Release or touch through the
// variable is the refcount underflow the runtime panics on, caught
// here at lint time. Keeping the frame past a hand-out is spelled
// SendFrame(f.Retain()). The release-obligation rule carries over: a
// function that Releases a frame on some path must settle the
// reference on every path.
//
// Paths that diverge (one arm releases, another does not) join to an
// unknown state that reports nothing by itself but keeps the release
// obligation alive — may-analysis: a finding means some path really
// reaches the bad state. The wire package itself is exempt: it
// implements the pool and must touch armed messages.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

const poolOwnershipName = "pool-ownership"

var poolOwnershipPass = Pass{
	Name: poolOwnershipName,
	Doc:  "flag pooled-message and refcounted-frame lifecycle violations (touch-after-Handoff, leaks, double Release)",
	Run:  runPoolOwnership,
}

// pLife is one message variable's lifecycle state.
type pLife uint8

const (
	pNormal   pLife = iota // owned here, nothing special observed
	pArmed                 // Handoff() called; next call-arg consumes it
	pConsumed              // armed and handed to its consumer
	pReleased              // Release() called
	pTop                   // paths disagree; report nothing, keep obligations
)

// poolState is the per-variable fact: lifecycle state plus an open
// release obligation (position of the use that opened it, or NoPos).
type poolState struct {
	st      pLife
	pending token.Pos
}

// poolFact maps tracked *wire.Message variables to their state. nil is
// bottom (unreachable).
type poolFact map[types.Object]poolState

func (f poolFact) clone() poolFact {
	c := make(poolFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func joinPool(dst, src poolFact) poolFact {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = poolFact{}
	}
	for obj, s := range src {
		d, ok := dst[obj]
		if !ok {
			dst[obj] = s
			continue
		}
		if d.st != s.st {
			d.st = pTop
		}
		if d.pending == token.NoPos {
			d.pending = s.pending
		}
		dst[obj] = d
	}
	return dst
}

func equalPool(a, b poolFact) bool {
	if len(a) != len(b) {
		return false
	}
	for obj, sa := range a {
		sb, ok := b[obj]
		if !ok || sa.st != sb.st || (sa.pending != token.NoPos) != (sb.pending != token.NoPos) {
			return false
		}
	}
	return true
}

func runPoolOwnership(l *Loader, p *Package) []Finding {
	if p.Types.Name() == "wire" {
		return nil // the pool implementation owns these internals
	}
	c := &poolChecker{l: l, p: p, ix: indexOf(p)}
	forEachFuncBody(p, func(ft *ast.FuncType, body *ast.BlockStmt) {
		c.analyze(body)
		c.checkPayloadRetention(ft.Params, body)
	})
	return c.findings
}

type poolChecker struct {
	l        *Loader
	p        *Package
	ix       *pkgIndex
	findings []Finding

	// per-function analysis state
	releasers map[types.Object]bool // vars with a v.Release() in this body
	deferred  map[types.Object]bool // vars with a defer v.Release()
}

func (c *poolChecker) report(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pass: poolOwnershipName,
		Pos:  c.l.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// tracked resolves id to a *wire.Message or *wire.Frame variable
// object, or nil.
func (c *poolChecker) tracked(id *ast.Ident) types.Object {
	obj := c.p.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	if !isWireMessagePtr(obj.Type()) && !isWireFramePtr(obj.Type()) {
		return nil
	}
	return obj
}

// varName shows a tracked object in messages.
func varName(obj types.Object) string { return obj.Name() }

// frameVar reports whether a tracked object is a refcounted *wire.Frame
// rather than a pooled *wire.Message.
func frameVar(obj types.Object) bool { return isWireFramePtr(obj.Type()) }

// noun names a tracked object's kind in findings.
func noun(obj types.Object) string {
	if frameVar(obj) {
		return "frame"
	}
	return "message"
}

// obligations prescans body (own statements only, literals excluded —
// they are analyzed as functions of their own) for Release calls that
// establish a release obligation, and deferred Releases that settle it
// wholesale.
func (c *poolChecker) obligations(body *ast.BlockStmt) {
	c.releasers = map[types.Object]bool{}
	c.deferred = map[types.Object]bool{}
	var scan func(n ast.Node, inDefer bool)
	scan = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				scan(n.Call, true)
				return false
			case *ast.CallExpr:
				se, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || se.Sel.Name != "Release" {
					return true
				}
				id, ok := se.X.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := c.tracked(id); obj != nil {
					if inDefer {
						c.deferred[obj] = true
					} else {
						c.releasers[obj] = true
					}
				}
			}
			return true
		})
	}
	scan(body, false)
}

// analyze runs the lifecycle dataflow over one function body.
func (c *poolChecker) analyze(body *ast.BlockStmt) {
	c.obligations(body)
	g := c.ix.cfgOf(body)
	facts, _ := solve(g, analysis[poolFact]{
		dir:      forward,
		boundary: func() poolFact { return poolFact{} },
		bottom:   func() poolFact { return nil },
		join:     joinPool,
		equal:    equalPool,
		transfer: func(b *block, in poolFact) poolFact {
			fact := in.clone()
			for _, o := range b.ops {
				c.applyOp(o, fact, false)
			}
			return fact
		},
	})
	reach := g.reachable()
	for _, blk := range g.blocks {
		if !reach[blk] {
			continue
		}
		fact := facts[blk].clone()
		lastWasExit := false
		for _, o := range blk.ops {
			c.applyOp(o, fact, true)
			switch n := o.node.(type) {
			case *ast.ReturnStmt:
				c.checkPendingAtExit(fact, n.Pos())
				lastWasExit = true
			case *ast.ExprStmt:
				lastWasExit = isPanicCall(n.X)
			default:
				lastWasExit = false
			}
		}
		// A block that falls off the end of the function (no explicit
		// return) is an exit path too.
		if !lastWasExit {
			for _, s := range blk.succs {
				if s == g.exit {
					c.checkPendingAtExit(fact, body.Rbrace)
					break
				}
			}
		}
	}
}

// checkPendingAtExit reports open release obligations on one exit path.
func (c *poolChecker) checkPendingAtExit(fact poolFact, pos token.Pos) {
	for obj, s := range fact {
		if s.pending != token.NoPos && !c.deferred[obj] {
			use := c.l.Fset.Position(s.pending)
			c.report(pos,
				"%s %s is not Released on this path (used at line %d; Release exists on another path)",
				noun(obj), varName(obj), use.Line)
		}
	}
}

// applyOp interprets one op's message events against fact.
func (c *poolChecker) applyOp(o op, fact poolFact, report bool) {
	switch o.kind {
	case opRange:
		rs := o.node.(*ast.RangeStmt)
		c.exprEvents(rs.X, fact, report)
		c.define(rs.Key, fact)
		c.define(rs.Value, fact)
		return
	case opComm:
		cc := o.node.(*ast.CommClause)
		switch comm := cc.Comm.(type) {
		case *ast.AssignStmt:
			c.assign(comm, fact, report)
		case *ast.ExprStmt:
			c.exprEvents(comm.X, fact, report)
		case *ast.SendStmt:
			c.sendStmt(comm, fact, report)
		}
		return
	}
	switch n := o.node.(type) {
	case *ast.AssignStmt:
		c.assign(n, fact, report)
	case *ast.SendStmt:
		c.sendStmt(n, fact, report)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := c.tracked(id); obj != nil {
					s := fact[obj]
					switch s.st {
					case pArmed, pConsumed:
						if report {
							if frameVar(obj) {
								c.report(res.Pos(), "frame %s returned after its reference was handed to SendFrame", varName(obj))
							} else {
								c.report(res.Pos(), "message %s returned after Handoff (its new owner may already be releasing it)", varName(obj))
							}
						}
					case pReleased:
						if report {
							c.report(res.Pos(), "%s %s returned after Release", noun(obj), varName(obj))
						}
					}
					delete(fact, obj) // ownership settles with the caller
					continue
				}
			}
			c.exprEvents(res, fact, report)
		}
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/spawned calls run at another time; the prescan
		// accounts for defer v.Release().
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.exprEvents(v, fact, report)
					}
					for _, name := range vs.Names {
						c.define(name, fact)
					}
				}
			}
		}
	default:
		for _, h := range o.headNodes() {
			if e, ok := h.(ast.Expr); ok {
				c.exprEvents(e, fact, report)
			} else if st, ok := h.(ast.Stmt); ok {
				if es, ok := st.(*ast.ExprStmt); ok {
					c.exprEvents(es.X, fact, report)
				}
			}
		}
	}
}

// assign processes RHS uses then LHS definitions.
func (c *poolChecker) assign(as *ast.AssignStmt, fact poolFact, report bool) {
	// A fresh pooled message from wire.Get()/wire.UnmarshalPooled(..)
	// rebinding aside, every RHS expression contributes use events.
	for _, rhs := range as.Rhs {
		c.exprEvents(rhs, fact, report)
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			c.define(id, fact)
			continue
		}
		// v.Field = x and friends dereference v.
		c.exprEvents(lhs, fact, report)
	}
}

func (c *poolChecker) sendStmt(n *ast.SendStmt, fact poolFact, report bool) {
	c.exprEvents(n.Chan, fact, report)
	c.transferEvent(n.Value, fact, report)
}

// transferEvent handles a tracked identifier crossing an ownership
// boundary that fully consumes it: a channel send or an append into a
// message collection. An armed message may cross exactly once (this IS
// the handoff's consumption); afterwards the variable must not be
// touched, so it moves to pConsumed rather than vanishing.
func (c *poolChecker) transferEvent(e ast.Expr, fact poolFact, report bool) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := c.tracked(id); obj != nil {
			s := fact[obj]
			switch s.st {
			case pArmed:
				fact[obj] = poolState{st: pConsumed}
			case pConsumed:
				if report {
					if frameVar(obj) {
						c.report(e.Pos(), "frame %s used after its reference was handed to SendFrame (the sender releases it)", varName(obj))
					} else {
						c.report(e.Pos(), "armed message %s passed to another call after its handoff", varName(obj))
					}
				}
			case pReleased:
				if report {
					c.report(e.Pos(), "%s %s used after Release", noun(obj), varName(obj))
				}
			default:
				delete(fact, obj) // ownership crosses the boundary
			}
			return
		}
	}
	c.exprEvents(e, fact, report)
}

// define rebinds e (an identifier, possibly nil/blank) to a fresh state.
func (c *poolChecker) define(e ast.Expr, fact poolFact) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := c.tracked(id); obj != nil {
		delete(fact, obj)
	}
}

// exprEvents walks one expression for message events: method calls on
// tracked variables (Handoff/Release/Detach and ordinary touches),
// tracked variables passed to calls or stored into composite literals,
// and field accesses. Function literals are skipped (analyzed on their
// own); bare identifier reads (pointer-value copies, nil comparisons)
// are not uses — reading the pointer is safe, dereferencing it is not.
func (c *poolChecker) exprEvents(e ast.Expr, fact poolFact, report bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		c.exprEvents(e.X, fact, report)

	case *ast.FuncLit:
		// Analyzed independently.

	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if obj := c.tracked(id); obj != nil {
				c.derefUse(obj, e.Pos(), fact, report)
				return
			}
		}
		c.exprEvents(e.X, fact, report)

	case *ast.StarExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if obj := c.tracked(id); obj != nil {
				c.derefUse(obj, e.Pos(), fact, report)
				return
			}
		}
		c.exprEvents(e.X, fact, report)

	case *ast.CallExpr:
		if se, ok := e.Fun.(*ast.SelectorExpr); ok {
			if id, ok := se.X.(*ast.Ident); ok {
				if obj := c.tracked(id); obj != nil {
					c.methodCall(obj, se.Sel.Name, e, fact, report)
					for _, a := range e.Args {
						c.argEvent(a, fact, report)
					}
					return
				}
			}
			// X.SendFrame(f): a bare frame argument hands the sender the
			// caller's own reference, released after writing. Keeping the
			// frame requires minting a reference to give away, which reads
			// SendFrame(f.Retain()) and routes through methodCall instead.
			if se.Sel.Name == "SendFrame" {
				c.exprEvents(se.X, fact, report)
				for _, a := range e.Args {
					c.frameHandout(a, fact, report)
				}
				return
			}
		}
		// append(collection, m) stores the message for a later consumer
		// (the queue pattern): a full ownership transfer, not a use that
		// leaves a release obligation behind.
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := c.p.Info.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				c.exprEvents(e.Args[0], fact, report)
				for _, a := range e.Args[1:] {
					c.transferEvent(a, fact, report)
				}
				return
			}
		}
		c.exprEvents(e.Fun, fact, report)
		for _, a := range e.Args {
			c.argEvent(a, fact, report)
		}

	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			c.argEvent(v, fact, report)
		}

	case *ast.UnaryExpr:
		c.exprEvents(e.X, fact, report)
	case *ast.BinaryExpr:
		c.exprEvents(e.X, fact, report)
		c.exprEvents(e.Y, fact, report)
	case *ast.IndexExpr:
		c.exprEvents(e.X, fact, report)
		c.exprEvents(e.Index, fact, report)
	case *ast.SliceExpr:
		c.exprEvents(e.X, fact, report)
		c.exprEvents(e.Low, fact, report)
		c.exprEvents(e.High, fact, report)
		c.exprEvents(e.Max, fact, report)
	case *ast.TypeAssertExpr:
		c.exprEvents(e.X, fact, report)
	case *ast.KeyValueExpr:
		c.exprEvents(e.Key, fact, report)
		c.exprEvents(e.Value, fact, report)
	}
}

// argEvent handles an expression in argument (or composite-element)
// position: a tracked identifier there flows into another component.
func (c *poolChecker) argEvent(a ast.Expr, fact poolFact, report bool) {
	if id, ok := ast.Unparen(a).(*ast.Ident); ok {
		if obj := c.tracked(id); obj != nil {
			s := fact[obj]
			switch s.st {
			case pArmed:
				// The one sanctioned post-Handoff consumption.
				s.st = pConsumed
				s.pending = token.NoPos
				fact[obj] = s
			case pConsumed:
				if report {
					if frameVar(obj) {
						c.report(a.Pos(), "frame %s used after its reference was handed to SendFrame (the sender releases it)", varName(obj))
					} else {
						c.report(a.Pos(), "armed message %s passed to another call after its handoff", varName(obj))
					}
				}
			case pReleased:
				if report {
					c.report(a.Pos(), "%s %s used after Release", noun(obj), varName(obj))
				}
			default:
				if c.releasers[obj] && s.pending == token.NoPos {
					s.pending = a.Pos()
					fact[obj] = s
				}
			}
			return
		}
	}
	c.exprEvents(a, fact, report)
}

// derefUse handles a read/write through a tracked variable.
func (c *poolChecker) derefUse(obj types.Object, pos token.Pos, fact poolFact, report bool) {
	s := fact[obj]
	switch s.st {
	case pArmed, pConsumed:
		if report {
			if frameVar(obj) {
				c.report(pos, "frame %s used after its reference was handed to SendFrame (the sender releases it)", varName(obj))
			} else {
				c.report(pos, "message %s touched after Handoff (the transport may have released it)", varName(obj))
			}
		}
	case pReleased:
		if report {
			c.report(pos, "%s %s used after Release", noun(obj), varName(obj))
		}
	default:
		if c.releasers[obj] && s.pending == token.NoPos {
			s.pending = pos
			fact[obj] = s
		}
	}
}

// methodCall handles a method call on a tracked variable.
func (c *poolChecker) methodCall(obj types.Object, name string, ce *ast.CallExpr, fact poolFact, report bool) {
	if frameVar(obj) {
		c.frameMethodCall(obj, name, ce, fact, report)
		return
	}
	s := fact[obj]
	switch name {
	case "Handoff":
		switch s.st {
		case pArmed, pConsumed:
			if report {
				c.report(ce.Pos(), "message %s handed off twice", varName(obj))
			}
		case pReleased:
			if report {
				c.report(ce.Pos(), "message %s used after Release", varName(obj))
			}
		default:
			fact[obj] = poolState{st: pArmed}
		}
	case "Release":
		switch s.st {
		case pReleased:
			if report {
				c.report(ce.Pos(), "message %s released twice (the debuglock build panics here)", varName(obj))
			}
		case pArmed, pConsumed:
			if report {
				c.report(ce.Pos(), "message %s released after Handoff; its consumer owns the release now", varName(obj))
			}
		default:
			fact[obj] = poolState{st: pReleased}
		}
	case "Detach":
		switch s.st {
		case pArmed, pConsumed:
			if report {
				c.report(ce.Pos(), "message %s touched after Handoff (the transport may have released it)", varName(obj))
			}
		case pReleased:
			if report {
				c.report(ce.Pos(), "message %s used after Release", varName(obj))
			}
		default:
			delete(fact, obj) // detached: no pooled alias left to leak
		}
	default:
		c.derefUse(obj, ce.Pos(), fact, report)
	}
}

// frameMethodCall handles a method call on a tracked *wire.Frame. The
// refcount protocol is simpler than the pooled-message one: Release
// drops the caller's reference (twice is the underflow panic), and
// every other method — Retain included, since it mints a reference for
// someone else while leaving the caller's own intact — is an ordinary
// use, illegal once the caller's reference is gone and obligating a
// Release on every path when one exists on any.
func (c *poolChecker) frameMethodCall(obj types.Object, name string, ce *ast.CallExpr, fact poolFact, report bool) {
	if name != "Release" {
		c.derefUse(obj, ce.Pos(), fact, report)
		return
	}
	s := fact[obj]
	switch s.st {
	case pReleased:
		if report {
			c.report(ce.Pos(), "frame %s released twice (the refcount underflow panics in every build)", varName(obj))
		}
	case pConsumed:
		if report {
			c.report(ce.Pos(), "frame %s released after its reference was handed to SendFrame (the sender releases it)", varName(obj))
		}
	default:
		fact[obj] = poolState{st: pReleased}
	}
}

// frameHandout handles an argument of an X.SendFrame(...) call: a bare
// tracked frame identifier there gives the sender the caller's own
// reference, along with any open release obligation — the sender
// releases it after writing, so the variable must not be Released or
// touched afterwards.
func (c *poolChecker) frameHandout(a ast.Expr, fact poolFact, report bool) {
	if id, ok := ast.Unparen(a).(*ast.Ident); ok {
		if obj := c.tracked(id); obj != nil && frameVar(obj) {
			s := fact[obj]
			switch s.st {
			case pConsumed:
				if report {
					c.report(a.Pos(), "frame %s passed to SendFrame twice on one reference (Retain the frame to hand out another)", varName(obj))
				}
			case pReleased:
				if report {
					c.report(a.Pos(), "frame %s used after Release", varName(obj))
				}
			default:
				fact[obj] = poolState{st: pConsumed}
			}
			return
		}
	}
	c.argEvent(a, fact, report)
}

// checkPayloadRetention flags a handler's message payload escaping into
// longer-lived storage without a Detach() call — relocated from the
// wire-hygiene pass, same semantics. params/body are one function's
// signature and body (declaration or literal).
func (c *poolChecker) checkPayloadRetention(params *ast.FieldList, body *ast.BlockStmt) {
	if params == nil {
		return
	}
	p := c.p
	// The handler's *wire.Message parameters, by object identity.
	msgs := map[types.Object]bool{}
	for _, fd := range params.List {
		for _, name := range fd.Names {
			if obj := p.Info.Defs[name]; obj != nil && isWireMessagePtr(obj.Type()) {
				msgs[obj] = true
			}
		}
	}
	if len(msgs) == 0 {
		return
	}
	// payloadOf returns the message parameter e reads .Payload from, or
	// nil: the shape is <param>.Payload with <param> one of msgs.
	payloadOf := func(e ast.Expr) types.Object {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Payload" {
			return nil
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := p.Info.Uses[id]; obj != nil && msgs[obj] {
			return obj
		}
		return nil
	}
	// A Detach() call on a parameter anywhere in the body vouches for
	// every retention of that parameter's payload.
	detached := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Detach" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && msgs[obj] {
				detached[obj] = true
			}
		}
		return true
	})
	retained := func(pos token.Pos) {
		c.report(pos, "message payload retained past the handler; call Detach() before storing it (pooled receive buffers are recycled on release)")
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				obj := payloadOf(rhs)
				if obj == nil || detached[obj] {
					continue
				}
				if i >= len(n.Lhs) {
					continue // f() multi-value; payload cannot appear here
				}
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					// A struct field or map/slice slot outlives the call.
					retained(rhs.Pos())
				}
			}
		case *ast.CallExpr:
			// append(s, m.Payload) retains the slice header; the
			// spread form append(dst, m.Payload...) copies bytes out
			// and is fine.
			if id, ok := n.Fun.(*ast.Ident); !ok || id.Name != "append" ||
				n.Ellipsis != token.NoPos || len(n.Args) == 0 {
				return true
			}
			for _, arg := range n.Args[1:] {
				if obj := payloadOf(arg); obj != nil && !detached[obj] {
					retained(arg.Pos())
				}
			}
		}
		return true
	})
}
