package main

// epoch-discipline: epoch-fenced drops must never be silent.
//
// The membership protocol rejects traffic whose wire epoch fails a
// comparison against the local membership state (a stale-epoch fence).
// A handler that drops such a message without accounting for it makes
// membership bugs invisible: the overlay quietly sheds traffic and
// nothing in cmb.stats or the logs moves. The wire protocol reserves
// ErrnoStale (ESTALE) for rejected requests, and the broker's fence
// counts every rejection in cmb.epoch_rejects and logs it.
//
// Flagged shape: an `if` whose condition compares an epoch-named value
// (any identifier containing "epoch") and whose body ends the message's
// processing with `return` or `continue`, while neither the body nor a
// same-package helper it calls (one level deep) increments a counter
// (Inc/Add) or logs. Branches that fall through — an epoch ratchet, a
// sync trigger — are not drops and are never flagged.

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

const epochDisciplineName = "epoch-discipline"

var epochDisciplinePass = Pass{
	Name: epochDisciplineName,
	Doc:  "flag epoch-compared drops that are neither counted nor logged",
	Run:  runEpochDiscipline,
}

var epochName = regexp.MustCompile(`(?i)epoch`)

// accountingCall matches callee base names that make a drop observable:
// counter arithmetic or any logging/printing flavor.
var accountingCall = regexp.MustCompile(`^(Inc|Add)$|(?i)log|print|fatal`)

func runEpochDiscipline(l *Loader, p *Package) []Finding {
	// The shared package index resolves same-package helpers, so
	// accounting done in a helper (the broker's rejectEpoch pattern) is
	// credited to callers.
	c := &epochChecker{l: l, p: p, ix: indexOf(p)}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok {
				c.checkIf(ifs)
			}
			return true
		})
	}
	return c.findings
}

type epochChecker struct {
	l        *Loader
	p        *Package
	ix       *pkgIndex
	findings []Finding
}

func (c *epochChecker) checkIf(ifs *ast.IfStmt) {
	if !comparesEpoch(ifs.Cond) || !dropsMessage(ifs.Body) {
		return
	}
	if c.accounts(ifs.Body, 1) {
		return
	}
	c.findings = append(c.findings, Finding{
		Pass: epochDisciplineName,
		Pos:  c.l.Fset.Position(ifs.Pos()),
		Msg: fmt.Sprintf("epoch-fenced drop is silent; count it (Inc/Add) or log it " +
			"so stale-epoch rejections stay observable"),
	})
}

// comparesEpoch reports whether the condition contains a comparison with
// an epoch-named value on either side.
func comparesEpoch(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			if mentionsEpoch(be.X) || mentionsEpoch(be.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func mentionsEpoch(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && epochName.MatchString(id.Name) {
			found = true
		}
		return !found
	})
	return found
}

// dropsMessage reports whether the branch ends the surrounding
// processing: its last statement is a return or a continue. A branch
// that falls through (ratcheting the epoch, triggering a sync) is not a
// drop.
func dropsMessage(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE
	}
	return false
}

// accounts reports whether node contains an accounting call — a counter
// Inc/Add or a log call — directly or inside a same-package function it
// calls, up to depth levels of delegation.
func (c *epochChecker) accounts(node ast.Node, depth int) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if accountingCall.MatchString(calleeName(ce.Fun)) {
			found = true
			return false
		}
		if depth > 0 {
			if fd := c.ix.calleeDecl(ce.Fun); fd != nil && fd.Body != nil && c.accounts(fd.Body, depth-1) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
