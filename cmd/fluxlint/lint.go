package main

// The lint engine: passes produce Findings, directives suppress them.
//
// A finding may be waived with a directive comment on the flagged line
// or the line directly above it:
//
//	//fluxlint:ignore <pass-name> <reason>
//
// The reason is mandatory — an ignore that cannot say why it is safe is
// itself reported. Directives are per-pass: ignoring lock-across-block
// on a line does not silence errno-discipline there.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a pass.
type Finding struct {
	Pass string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Pass, f.Msg)
}

// Pass is one independent analysis.
type Pass struct {
	Name string
	Doc  string
	Run  func(l *Loader, p *Package) []Finding
}

// passes is the full suite, in reporting order.
var passes = []Pass{
	lockAcrossBlockPass,
	goroutineLifecyclePass,
	errnoDisciplinePass,
	epochDisciplinePass,
	wireHygienePass,
	deadlinePropagationPass,
	fsyncDisciplinePass,
	poolOwnershipPass,
	errnoCompletenessPass,
	logDisciplinePass,
}

// directive is one parsed //fluxlint:ignore comment.
type directive struct {
	pass   string
	reason string
	line   int
}

const directivePrefix = "fluxlint:ignore"

// fileDirectives extracts the ignore directives of one file. Malformed
// directives (unknown pass, missing reason) are returned as findings so
// they cannot silently rot.
func fileDirectives(fset *token.FileSet, f *ast.File) ([]directive, []Finding) {
	var dirs []directive
	var bad []Finding
	known := map[string]bool{}
	for _, p := range passes {
		known[p.Name] = true
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
			pos := fset.Position(c.Pos())
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			switch {
			case !known[name]:
				bad = append(bad, Finding{Pass: "directive", Pos: pos,
					Msg: fmt.Sprintf("ignore names unknown pass %q", name)})
			case reason == "":
				bad = append(bad, Finding{Pass: "directive", Pos: pos,
					Msg: "ignore directive needs a reason"})
			default:
				dirs = append(dirs, directive{pass: name, reason: reason, line: pos.Line})
			}
		}
	}
	return dirs, bad
}

// passStats counts one pass's findings across a run: kept survived to
// the report, suppressed were waived by an ignore directive.
type passStats struct {
	kept, suppressed int
}

// runAll executes every pass over the packages, applies directives, and
// returns surviving findings sorted by position, plus per-pass counts
// (keyed by pass name; "directive" counts malformed ignores).
func runAll(l *Loader, pkgs []*Package) ([]Finding, map[string]passStats) {
	var out []Finding
	stats := map[string]passStats{}
	bump := func(pass string, suppressed bool) {
		s := stats[pass]
		if suppressed {
			s.suppressed++
		} else {
			s.kept++
		}
		stats[pass] = s
	}
	for _, p := range pkgs {
		// suppress[file][line][pass]
		suppress := map[string]map[int]map[string]bool{}
		for _, f := range p.Files {
			dirs, bad := fileDirectives(l.Fset, f)
			out = append(out, bad...)
			for range bad {
				bump("directive", false)
			}
			file := l.Fset.Position(f.Pos()).Filename
			for _, d := range dirs {
				if suppress[file] == nil {
					suppress[file] = map[int]map[string]bool{}
				}
				if suppress[file][d.line] == nil {
					suppress[file][d.line] = map[string]bool{}
				}
				suppress[file][d.line][d.pass] = true
			}
		}
		for _, pass := range passes {
			for _, f := range pass.Run(l, p) {
				lines := suppress[f.Pos.Filename]
				if lines != nil && (lines[f.Pos.Line][f.Pass] || lines[f.Pos.Line-1][f.Pass]) {
					bump(f.Pass, true)
					continue
				}
				bump(f.Pass, false)
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pass < b.Pass
	})
	return out, stats
}

// ---- shared type helpers used by several passes ----

// methodPkgPath returns the defining package path of the called method,
// resolving promoted methods to their true owner (an embedded
// sync.Mutex's Lock reports "sync").
func methodPkgPath(info *types.Info, se *ast.SelectorExpr) string {
	obj := info.Uses[se.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isMutexMethodPkg reports whether pkgPath defines one of the mutex
// flavors fluxlint tracks: the standard library's sync and the module's
// debuglock wrapper.
func isMutexMethodPkg(pkgPath string) bool {
	return pkgPath == "sync" || strings.HasSuffix(pkgPath, "internal/debuglock")
}

// connLike reports whether the method call through se is Send or Recv
// on a transport-connection-shaped receiver: one whose method set
// contains BOTH Send and Recv. This distinguishes transport.Conn (and
// anything wrapping it) from fire-and-forget senders like
// broker.Handle.Send, which has no Recv.
func connLike(info *types.Info, se *ast.SelectorExpr) bool {
	name := se.Sel.Name
	if name != "Send" && name != "Recv" {
		return false
	}
	sel := info.Selections[se]
	if sel == nil || sel.Kind() != types.MethodVal {
		return false
	}
	recv := sel.Recv()
	ms := types.NewMethodSet(recv)
	if _, ok := recv.Underlying().(*types.Interface); !ok {
		if _, ok := recv.(*types.Pointer); !ok {
			ms = types.NewMethodSet(types.NewPointer(recv))
		}
	}
	return ms.Lookup(nil, "Send") != nil && ms.Lookup(nil, "Recv") != nil
}

// rpcFamily are Handle methods that perform a routed round trip (or a
// sequenced publish) and return an error the caller must consider.
var rpcFamily = map[string]bool{
	"RPC":            true,
	"RPCContext":     true,
	"RPCWithOptions": true,
	"PublishEvent":   true,
}

// isChanType reports whether t is (or points to) a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
