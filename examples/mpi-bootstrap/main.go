// MPI bootstrap over PMI: every process of a parallel job publishes its
// "business card" (connection endpoint), fences, and reads its peers'
// cards — the coordinated KVS access pattern that motivates KAP and
// whose latency Figures 2-4 of the paper characterize.
//
//	go run ./examples/mpi-bootstrap
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"fluxgo"
	"fluxgo/internal/mpisim"
)

const (
	ranks = 16 // simulated nodes
	procs = 64 // MPI processes (4 per node)
)

func main() {
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: ranks})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, procs)
	rings := make([]string, procs) // each proc's view of its ring successor
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = bootstrapOne(sess, p, rings)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			log.Fatalf("process %d: %v", p, err)
		}
	}
	fmt.Printf("%d processes bootstrapped in %v\n", procs, time.Since(start))
	for p := 0; p < 3; p++ {
		fmt.Printf("  proc %d connects to successor at %s\n", p, rings[p])
	}
	fmt.Println("  ...")

	// With the fabric up, the runtime can build collectives from the same
	// substrate: an allreduce over all processes.
	var wg2 sync.WaitGroup
	sums := make([]float64, procs)
	for p := 0; p < procs; p++ {
		wg2.Add(1)
		go func(p int) {
			defer wg2.Done()
			h := sess.Handle(p % ranks)
			defer h.Close()
			comm, err := mpisim.NewComm(h, "mpi-world", p, procs)
			if err != nil {
				log.Fatal(err)
			}
			sums[p], err = comm.Allreduce(float64(p), mpisim.OpSum)
			if err != nil {
				log.Fatal(err)
			}
		}(p)
	}
	wg2.Wait()
	fmt.Printf("allreduce(rank, sum) = %.0f at every rank (expected %d)\n",
		sums[0], procs*(procs-1)/2)
}

// bootstrapOne is what an MPI runtime does inside each process.
func bootstrapOne(sess *fluxgo.Session, p int, rings []string) error {
	// Consecutive job ranks land on consecutive nodes.
	h := sess.Handle(p % ranks)
	defer h.Close()
	pm, err := fluxgo.NewPMI(h, "mpi-world", p, procs)
	if err != nil {
		return err
	}
	// 1. Publish our endpoint.
	card := fmt.Sprintf("ib0:node%d:port%d", p%ranks, 50000+p)
	if err := pm.Put("business-card", card); err != nil {
		return err
	}
	// 2. Fence: collective commit + barrier. After this, every card is
	// globally visible.
	if err := pm.Fence(); err != nil {
		return err
	}
	// 3. Wire the communication fabric: here, each process looks up its
	// ring successor (a real MPI would fetch whichever peers it needs).
	succ := (p + 1) % procs
	peer, err := pm.Get(succ, "business-card")
	if err != nil {
		return err
	}
	want := fmt.Sprintf("ib0:node%d:port%d", succ%ranks, 50000+succ)
	if peer != want {
		return fmt.Errorf("successor card %q, want %q", peer, want)
	}
	rings[p] = peer
	return nil
}
