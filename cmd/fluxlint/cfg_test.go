package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses a single function declaration and returns its body
// plus the FileSet (for dump snippets).
func parseFunc(t *testing.T, src string) (*funcCFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return buildCFG(fd.Body), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

func checkDump(t *testing.T, g *funcCFG, fset *token.FileSet, want string) {
	t.Helper()
	got := strings.TrimSpace(g.dump(fset))
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("CFG mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// Defer inside a loop: the defer op stays in the loop body (arguments
// are evaluated there), the continue edge targets the range head, and
// the function-exit defers list records the site.
func TestCFGDeferInLoop(t *testing.T) {
	g, fset := parseFunc(t, `
func f(items []int) {
	for _, it := range items {
		f, err := open(it)
		if err != nil {
			continue
		}
		defer f.Close()
		use(f)
	}
	flush()
}`)
	checkDump(t, g, fset, `
b0 entry: -> b2
b1 exit:
b2 range.head: [range] -> b3 b4
b3 range.body: [stmt f, err := open(it)] [if err != nil] -> b5 b6
b4 range.after: [stmt flush()] -> b1
b5 if.then: -> b2
b6 if.after: [stmt defer f.Close()] [stmt use(f)] -> b2
b7 unreachable: (unreachable) -> b6
`)
	if len(g.defers) != 1 {
		t.Errorf("defers recorded = %d, want 1", len(g.defers))
	}
}

// Labeled break and continue: break outer exits both loops (edge to the
// outer range.after), continue outer re-tests the outer range head.
func TestCFGLabeledBreak(t *testing.T) {
	g, fset := parseFunc(t, `
func f(rows [][]int) int {
outer:
	for _, row := range rows {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			if v == 0 {
				continue outer
			}
			sink(v)
		}
	}
	return done()
}`)
	checkDump(t, g, fset, `
b0 entry: -> b2
b1 exit:
b2 label.outer: -> b3
b3 range.head: [range] -> b4 b5
b4 range.body: -> b6
b5 range.after: [stmt return done()] -> b1
b6 range.head: [range] -> b7 b8
b7 range.body: [if v < 0] -> b9 b10
b8 range.after: -> b3
b9 if.then: -> b5
b10 if.after: [if v == 0] -> b12 b13
b11 unreachable: (unreachable) -> b10
b12 if.then: -> b3
b13 if.after: [stmt sink(v)] -> b6
b14 unreachable: (unreachable) -> b13
b15 unreachable: (unreachable) -> b1
`)
}

// Panic terminates its path (edge to exit, code after it unreachable);
// the deferred recover closure is a single op at the defer site.
func TestCFGPanicRecover(t *testing.T) {
	g, fset := parseFunc(t, `
func f(m map[string]int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = wrap(r)
		}
	}()
	if m == nil {
		panic("nil map")
		cleanup()
	}
	touch(m)
	return nil
}`)
	checkDump(t, g, fset, `
b0 entry: [stmt defer func() { if r := recover(); r !...] [if m == nil] -> b2 b3
b1 exit:
b2 if.then: [stmt panic("nil map")] -> b1
b3 if.after: [stmt touch(m)] [stmt return nil] -> b1
b4 unreachable: (unreachable) [stmt cleanup()] -> b3
b5 unreachable: (unreachable) -> b1
`)
}

// Select without a default blocks: no head→after edge, so facts flowing
// to select.after come only through the comm clauses.
func TestCFGSelectNoDefault(t *testing.T) {
	g, _ := parseFunc(t, `
func f(ch chan int, done chan struct{}) {
	select {
	case v := <-ch:
		sink(v)
	case <-done:
		return
	}
	after()
}`)
	// Find the block holding the select op and the select.after block.
	var head, after *block
	for _, blk := range g.blocks {
		for _, o := range blk.ops {
			if o.kind == opSelect {
				head = blk
			}
		}
		if blk.kind == "select.after" {
			after = blk
		}
	}
	if head == nil || after == nil {
		t.Fatal("select head or after block not found")
	}
	for _, s := range head.succs {
		if s == after {
			t.Error("select without default has a head→after edge; it should block")
		}
	}
}

// The solver reaches a fixpoint on a nested-loop graph in a small
// number of steps (far under the runaway cap) and computes the right
// join: a forward "reached" analysis must mark every reachable block.
func TestSolverConvergence(t *testing.T) {
	g, _ := parseFunc(t, `
func f(rows [][]int) {
	for i := 0; i < len(rows); i++ {
		for _, v := range rows[i] {
			if v < 0 {
				continue
			}
			sink(v)
		}
	}
	done()
}`)
	facts, steps := solve(g, analysis[bool]{
		dir:      forward,
		boundary: func() bool { return true },
		bottom:   func() bool { return false },
		join:     func(dst, src bool) bool { return dst || src },
		equal:    func(a, b bool) bool { return a == b },
		transfer: func(b *block, in bool) bool { return in },
	})
	reach := g.reachable()
	for blk := range reach {
		if !facts[blk] {
			t.Errorf("b%d %s: reachable but fact not propagated", blk.index, blk.kind)
		}
	}
	// Each block is relaxed once, plus one revisit per back edge.
	// Anything near the cap (64·(n+1)²) means the worklist is thrashing.
	if max := 3 * len(g.blocks); steps > max {
		t.Errorf("solver took %d steps on %d blocks (limit %d)", steps, len(g.blocks), max)
	}
}

// A deliberately non-converging transfer (alternating parity) must be
// cut off by the step cap instead of hanging.
func TestSolverRunawayCap(t *testing.T) {
	g, _ := parseFunc(t, `
func f() {
	for {
		spin()
	}
}`)
	_, steps := solve(g, analysis[int]{
		dir:      forward,
		boundary: func() int { return 1 },
		bottom:   func() int { return 0 },
		join:     func(dst, src int) int { return dst + src + 1 }, // not monotone-bounded
		equal:    func(a, b int) bool { return a == b },
		transfer: func(b *block, in int) int { return in + 1 },
	})
	cap := 64 * (len(g.blocks) + 1) * (len(g.blocks) + 1)
	if steps > cap+1 {
		t.Errorf("runaway analysis ran %d steps, cap %d", steps, cap)
	}
}
