// Package wirehyg holds fixtures for the wire-hygiene pass.
package wirehyg

import "fixture.example/wire"

const service = "cmb" // BAD

func rawTopic() string {
	return "cmb.ping" // BAD
}

func rawMessageType() *wire.Message {
	return &wire.Message{Type: 3, Topic: wire.TopicStats} // BAD
}

func rawConversion() wire.Type {
	return wire.Type(2) // BAD
}

// Payload-retention shapes: each stores a handler message's payload
// into storage that outlives the call, without detaching the message.

type holder struct{ data []byte }

var stash = map[string][]byte{}

var backlog [][]byte

func retainField(h *holder, m *wire.Message) {
	h.data = m.Payload // BAD
}

func retainMap(m *wire.Message) {
	stash[m.Topic] = m.Payload // BAD
}

func retainAppend(m *wire.Message) {
	backlog = append(backlog, m.Payload) // BAD
}

func retainInLit(h *holder) {
	fn := func(m *wire.Message) {
		h.data = m.Payload // BAD
	}
	fn(nil)
}
