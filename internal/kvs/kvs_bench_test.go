package kvs

import (
	"fmt"
	"testing"

	"fluxgo/internal/cas"
)

// BenchmarkPut measures write-back puts at a leaf slave.
func BenchmarkPut(b *testing.B) {
	for _, size := range []int{8, 2048} {
		b.Run(fmt.Sprintf("vsize=%d", size), func(b *testing.B) {
			s := newKVSSession(b, 7, 2)
			c := client(b, s, 6)
			val := make([]byte, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Put(fmt.Sprintf("bench.k%d", i), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCommit measures single-key commit round trips (put + fence +
// sync) from a leaf through the tree to the master and back. Keys cycle
// through a fixed window so the directory being rewritten stays the
// same size regardless of b.N — without the cap, per-op cost grows with
// the iteration count and runs at different b.N are incomparable.
func BenchmarkCommit(b *testing.B) {
	s := newKVSSession(b, 7, 2)
	c := client(b, s, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(fmt.Sprintf("bc.k%d", i%128), i)
		if _, err := c.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetCached measures reads served entirely from the local slave
// cache (the common case after the first fault-in).
func BenchmarkGetCached(b *testing.B) {
	s := newKVSSession(b, 7, 2)
	w := client(b, s, 0)
	w.Put("bg.k", "value")
	if _, err := w.Commit(); err != nil {
		b.Fatal(err)
	}
	c := client(b, s, 6)
	var v string
	if err := c.Get("bg.k", &v); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Get("bg.k", &v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyOps measures the master's commit application step.
func BenchmarkApplyOps(b *testing.B) {
	for _, nops := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("ops=%d", nops), func(b *testing.B) {
			store := cas.NewStore(nil)
			ops := make([]Op, nops)
			for i := range ops {
				ref := store.Put(cas.NewValue([]byte(fmt.Sprintf("%d", i))))
				ops[i] = Op{
					Key: fmt.Sprintf("bench.d%d.k%d", i%16, i),
					Ref: ref.String(),
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ApplyOps(store, cas.Ref{}, ops, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
