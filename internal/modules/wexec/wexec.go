// Package wexec implements the work-execution comms module of Table I:
// remote processes can be launched in bulk, monitored, signalled, and
// have their standard I/O captured in the KVS.
//
// Tasks are simulated processes — registered Go programs running in
// goroutines (the paper launched real binaries; this substitution keeps
// the identical control and data paths: bulk launch via a session event,
// per-task stdio and exit codes committed to the KVS under lwj.<jobid>,
// completion counting reduced to the root, kill via a session event).
package wexec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/kvs"
	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// Program is a simulated executable: it reads args, writes to stdout and
// stderr buffers, and returns an exit code. ctx is cancelled when the
// task is signalled.
type Program func(ctx context.Context, rank int, args []string, stdout, stderr *strings.Builder) int

// Registry maps program names to implementations.
type Registry map[string]Program

// HandleProgram is a Program variant that additionally receives a broker
// handle attached at the task's rank. Run-time tools (debuggers,
// monitors) use it for the paper's "secure third-party access to running
// jobs": the handle reaches the job's KVS data and the session's
// services. The handle is owned by the module and closed after the task.
type HandleProgram func(ctx context.Context, h *broker.Handle, rank int, args []string, stdout, stderr *strings.Builder) int

// HandleRegistry maps tool names to handle-bearing implementations.
type HandleRegistry map[string]HandleProgram

// BuiltinPrograms returns the default simulated program set.
func BuiltinPrograms() Registry {
	return Registry{
		// echo writes its arguments to stdout and exits 0.
		"echo": func(ctx context.Context, rank int, args []string, stdout, stderr *strings.Builder) int {
			fmt.Fprintln(stdout, strings.Join(args, " "))
			return 0
		},
		// hostname writes the simulated node name.
		"hostname": func(ctx context.Context, rank int, args []string, stdout, stderr *strings.Builder) int {
			fmt.Fprintf(stdout, "node%d\n", rank)
			return 0
		},
		// fail exits with the code given as its first argument (default 1).
		"fail": func(ctx context.Context, rank int, args []string, stdout, stderr *strings.Builder) int {
			code := 1
			if len(args) > 0 {
				fmt.Sscanf(args[0], "%d", &code)
			}
			fmt.Fprintln(stderr, "simulated failure")
			return code
		},
		// block waits for cancellation (exercises kill), then exits 143.
		"block": func(ctx context.Context, rank int, args []string, stdout, stderr *strings.Builder) int {
			<-ctx.Done()
			fmt.Fprintln(stderr, "terminated by signal")
			return 143
		},
	}
}

// runBody is the wexec.run event payload: the bulk-launch request.
type runBody struct {
	JobID   string   `json:"jobid"`
	Program string   `json:"program"`
	Args    []string `json:"args"`
	Ranks   []int    `json:"ranks"` // target ranks; empty means all
	NTasks  int      `json:"ntasks"`
}

// killBody is the wexec.kill event payload.
type killBody struct {
	JobID string `json:"jobid"`
}

// doneBody aggregates completion counts toward the root.
type doneBody struct {
	JobID string `json:"jobid"`
	Count int    `json:"count"`
	Fails int    `json:"fails"`
}

// Config parameterizes the wexec module.
type Config struct {
	Programs Registry // nil defaults to BuiltinPrograms
	// Tools are handle-bearing programs, looked up after Programs.
	Tools HandleRegistry
}

// jobState tracks completion counting (root) and batching (slaves).
type jobState struct {
	expected    int // root only: total tasks (from the run event)
	count       int
	fails       int
	unsentCount int
	unsentFails int
}

// Module is one wexec module instance.
type Module struct {
	cfg Config
	h   *broker.Handle
	kc  *kvs.Client

	mu      sync.Mutex
	jobs    map[string]*jobState
	cancels map[string][]context.CancelFunc // jobid -> local task cancels
	wg      sync.WaitGroup

	// Observability handles into the broker registry ("wexec.*").
	obsTasks    *obs.Counter // tasks launched at this rank
	obsFailed   *obs.Counter // tasks that exited nonzero
	obsFinished *obs.Counter // jobs finalized (root only)
	obsRunning  *obs.Gauge   // tasks currently running here
	histTask    *obs.Histogram
}

// New returns a wexec module instance.
func New(cfg Config) *Module {
	if cfg.Programs == nil {
		cfg.Programs = BuiltinPrograms()
	}
	return &Module{
		cfg:     cfg,
		jobs:    map[string]*jobState{},
		cancels: map[string][]context.CancelFunc{},
	}
}

// Factory loads wexec at every rank. It requires the kvs module.
func Factory(cfg Config) func(rank, size int) broker.Module {
	return func(rank, size int) broker.Module { return New(cfg) }
}

// Name implements broker.Module.
func (m *Module) Name() string { return "wexec" }

// Subscriptions implements broker.Module.
func (m *Module) Subscriptions() []string { return []string{"wexec.run", "wexec.kill"} }

// Init implements broker.Module.
func (m *Module) Init(h *broker.Handle) error {
	m.h = h
	m.kc = kvs.NewClient(h)
	reg := h.Broker().Metrics()
	m.obsTasks = reg.Counter("wexec.tasks")
	m.obsFailed = reg.Counter("wexec.tasks_failed")
	m.obsFinished = reg.Counter("wexec.jobs_finished")
	m.obsRunning = reg.Gauge("wexec.running")
	m.histTask = reg.Histogram("wexec.task_ns")
	return nil
}

// Shutdown implements broker.Module: cancel local tasks and wait.
func (m *Module) Shutdown() {
	m.mu.Lock()
	for _, cancels := range m.cancels {
		for _, c := range cancels {
			c()
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// Recv implements broker.Module.
func (m *Module) Recv(msg *wire.Message) {
	switch {
	case msg.Type == wire.Event && msg.Topic == "wexec.run":
		m.onRun(msg)
	case msg.Type == wire.Event && msg.Topic == "wexec.kill":
		m.onKill(msg)
	case msg.Type == wire.Request && msg.Method() == "done":
		m.recvDone(msg)
	case msg.Type == wire.Request && msg.Method() == "run":
		m.recvRun(msg)
	case msg.Type == wire.Request && msg.Method() == "stats":
		m.recvStats(msg)
	case msg.Type == wire.Request:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("wexec: unknown method %q", msg.Method()))
	}
}

// recvRun validates a client launch request and publishes the bulk-run
// event (any instance can accept the request).
func (m *Module) recvRun(msg *wire.Message) {
	var body runBody
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	if body.JobID == "" || body.Program == "" {
		m.h.RespondError(msg, broker.ErrnoInval, "wexec: jobid and program required")
		return
	}
	if len(body.Ranks) == 0 {
		for r := 0; r < m.h.Size(); r++ {
			body.Ranks = append(body.Ranks, r)
		}
	}
	sort.Ints(body.Ranks)
	for _, r := range body.Ranks {
		if r < 0 || r >= m.h.Size() {
			m.h.RespondError(msg, broker.ErrnoInval, fmt.Sprintf("wexec: rank %d out of range", r))
			return
		}
	}
	body.NTasks = len(body.Ranks)
	if _, err := m.h.PublishEvent("wexec.run", body); err != nil {
		m.h.RespondError(msg, broker.ErrnoProto, err.Error())
		return
	}
	m.h.Respond(msg, map[string]int{"ntasks": body.NTasks})
}

// onRun spawns local tasks for a bulk-run event.
func (m *Module) onRun(msg *wire.Message) {
	var body runBody
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	if m.h.Rank() == 0 {
		m.mu.Lock()
		st := m.ensureJobLocked(body.JobID)
		st.expected = body.NTasks
		done := st.count >= st.expected
		m.mu.Unlock()
		// All completions may already have arrived (tiny jobs).
		if done {
			m.finishJob(body.JobID)
		}
	}
	mine := false
	for _, r := range body.Ranks {
		if r == m.h.Rank() {
			mine = true
			break
		}
	}
	if !mine {
		return
	}
	prog, ok := m.cfg.Programs[body.Program]
	tool, tok := m.cfg.Tools[body.Program]
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	m.cancels[body.JobID] = append(m.cancels[body.JobID], cancel)
	m.mu.Unlock()
	m.wg.Add(1)
	m.obsTasks.Inc()
	m.obsRunning.Add(1)
	go func() {
		start := time.Now()
		defer m.wg.Done()
		defer cancel()
		var stdout, stderr strings.Builder
		code := 127
		switch {
		case ok:
			code = prog(ctx, m.h.Rank(), body.Args, &stdout, &stderr)
		case tok:
			th := m.h.Broker().NewHandle()
			code = tool(ctx, th, m.h.Rank(), body.Args, &stdout, &stderr)
			th.Close()
		default:
			fmt.Fprintf(&stderr, "wexec: no such program %q\n", body.Program)
		}
		m.obsRunning.Add(-1)
		if code != 0 {
			m.obsFailed.Inc()
		}
		m.histTask.Observe(time.Since(start))
		m.completeTask(body.JobID, code, stdout.String(), stderr.String())
	}()
}

// completeTask captures a finished task's stdio and exit code in the KVS
// and reports completion toward the root.
func (m *Module) completeTask(jobid string, code int, stdout, stderr string) {
	prefix := fmt.Sprintf("lwj.%s.%d", jobid, m.h.Rank())
	m.kc.Put(prefix+".exitcode", code)
	if stdout != "" {
		m.kc.Put(prefix+".stdout", stdout)
	}
	if stderr != "" {
		m.kc.Put(prefix+".stderr", stderr)
	}
	if _, err := m.kc.Commit(); err != nil && !broker.ErrShutdown(err) {
		return
	}
	fails := 0
	if code != 0 {
		fails = 1
	}
	// Report completion; the module aggregates counts upstream on Idle.
	m.h.Send("wexec.done", uint32(m.h.Rank()), doneBody{JobID: jobid, Count: 1, Fails: fails})
}

func (m *Module) ensureJobLocked(jobid string) *jobState {
	st := m.jobs[jobid]
	if st == nil {
		st = &jobState{}
		m.jobs[jobid] = st
	}
	return st
}

// recvDone folds completion counts; the root finalizes the job when all
// tasks have reported.
func (m *Module) recvDone(msg *wire.Message) {
	var body doneBody
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.mu.Lock()
	st := m.ensureJobLocked(body.JobID)
	st.count += body.Count
	st.fails += body.Fails
	st.unsentCount += body.Count
	st.unsentFails += body.Fails
	finish := m.h.Rank() == 0 && st.expected > 0 && st.count >= st.expected
	m.mu.Unlock()
	if finish {
		m.finishJob(body.JobID)
	}
}

// finishJob (root) writes the job's final state to the KVS and announces
// completion session-wide.
func (m *Module) finishJob(jobid string) {
	m.mu.Lock()
	st := m.jobs[jobid]
	if st == nil {
		m.mu.Unlock()
		return
	}
	fails := st.fails
	ntasks := st.count
	delete(m.jobs, jobid)
	delete(m.cancels, jobid)
	m.mu.Unlock()

	m.obsFinished.Inc()
	state := "complete"
	if fails > 0 {
		state = "failed"
	}
	m.kc.Put(fmt.Sprintf("lwj.%s.state", jobid), state)
	m.kc.Put(fmt.Sprintf("lwj.%s.ntasks", jobid), ntasks)
	m.kc.Put(fmt.Sprintf("lwj.%s.nfailed", jobid), fails)
	version, err := m.kc.Commit()
	if err != nil {
		return
	}
	// The event carries the committing KVS version so waiters can sync
	// their local root before reading the record (causal consistency).
	if _, err := m.h.PublishEvent("wexec.complete", map[string]any{
		"jobid": jobid, "state": state, "version": version,
	}); err != nil {
		m.h.Log(obs.LevelWarn, "wexec", "complete event for %q failed: %v", jobid, err)
	}
}

// recvStats serves wexec.stats: per-rank task accounting plus this
// service's slice of the broker metrics registry.
func (m *Module) recvStats(msg *wire.Message) {
	m.mu.Lock()
	njobs := len(m.jobs)
	m.mu.Unlock()
	snap := m.h.Broker().Metrics().Snapshot()
	hists := map[string]obs.HistSnapshot{}
	for name, h := range snap.Hists {
		if strings.HasPrefix(name, "wexec.") {
			hists[name] = h
		}
	}
	m.h.Respond(msg, map[string]any{
		"rank":          m.h.Rank(),
		"jobs_tracked":  njobs,
		"tasks":         m.obsTasks.Load(),
		"tasks_failed":  m.obsFailed.Load(),
		"jobs_finished": m.obsFinished.Load(),
		"running":       m.obsRunning.Load(),
		"hists":         hists,
	})
}

// onKill cancels local tasks of a job.
func (m *Module) onKill(msg *wire.Message) {
	var body killBody
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.mu.Lock()
	cancels := m.cancels[body.JobID]
	delete(m.cancels, body.JobID)
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Idle implements broker.IdleBatcher: slaves aggregate completion counts
// upstream.
func (m *Module) Idle() {
	if m.h.Rank() == 0 {
		return
	}
	m.mu.Lock()
	var batches []doneBody
	for jobid, st := range m.jobs {
		if st.unsentCount == 0 {
			continue
		}
		batches = append(batches, doneBody{JobID: jobid, Count: st.unsentCount, Fails: st.unsentFails})
		st.unsentCount, st.unsentFails = 0, 0
	}
	m.mu.Unlock()
	for _, b := range batches {
		m.h.Send("wexec.done", wire.NodeidUpstream, b)
	}
}
