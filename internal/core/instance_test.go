package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/resource"
	"fluxgo/internal/sched"
)

func testCluster(t testing.TB, nodes int) *resource.Resource {
	t.Helper()
	c, err := resource.BuildCluster(resource.ClusterSpec{
		Name: "center", Racks: 1, NodesPerRack: nodes,
		SocketsPerNode: 2, CoresPerSocket: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newRoot(t testing.TB, nodes int, opts Options) *Instance {
	t.Helper()
	inst, err := NewRoot(testCluster(t, nodes), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	return inst
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestRootInstanceBasics(t *testing.T) {
	root := newRoot(t, 8, Options{})
	if root.ID() != "root" || root.Depth() != 0 || root.Size() != 8 {
		t.Fatalf("root: id=%s depth=%d size=%d", root.ID(), root.Depth(), root.Size())
	}
	if root.Parent() != nil {
		t.Fatal("root has a parent")
	}
	if root.Policy().Name() != "fcfs" {
		t.Fatalf("default policy %s", root.Policy().Name())
	}
}

func TestSubmitProgramJob(t *testing.T) {
	root := newRoot(t, 4, Options{})
	rec, err := root.Submit("hostname", nil, resource.Request{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Wait(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "complete" || res.NTasks != 3 {
		t.Fatalf("result %+v", res)
	}
	// Resources released after completion.
	if free := root.Pool().FreeNodes(); free != 4 {
		t.Fatalf("free nodes after job = %d", free)
	}
	// Output captured in the instance's own KVS.
	h := root.Handle()
	defer h.Close()
	stdout, _, exit, err := wexec.Output(h, rec.ID, rec.Ranks[0])
	if err != nil {
		t.Fatal(err)
	}
	if exit != 0 || !strings.HasPrefix(stdout, "node") {
		t.Fatalf("exit=%d stdout=%q", exit, stdout)
	}
}

func TestSubmitOverCapacity(t *testing.T) {
	root := newRoot(t, 2, Options{})
	if _, err := root.Submit("echo", nil, resource.Request{Nodes: 3}); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestSpawnChildBoundingRule(t *testing.T) {
	root := newRoot(t, 8, Options{})
	child, err := root.Spawn(resource.Request{Nodes: 4}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if child.Size() != 4 || child.Depth() != 1 {
		t.Fatalf("child size=%d depth=%d", child.Size(), child.Depth())
	}
	// Parent's pool reflects the grant (bounding).
	if free := root.Pool().FreeNodes(); free != 4 {
		t.Fatalf("parent free = %d", free)
	}
	// Child cannot be granted more than the parent has.
	if _, err := root.Spawn(resource.Request{Nodes: 5}, 0, Options{}); err == nil {
		t.Fatal("over-subscribed spawn accepted")
	}
	child.Close()
	if free := root.Pool().FreeNodes(); free != 8 {
		t.Fatalf("parent free after child close = %d", free)
	}
}

func TestChildEmpowermentRunsOwnJobs(t *testing.T) {
	root := newRoot(t, 8, Options{})
	child, err := root.Spawn(resource.Request{Nodes: 4}, 0, Options{Policy: sched.EASY{}})
	if err != nil {
		t.Fatal(err)
	}
	defer child.Close()
	if child.Policy().Name() != "easy" {
		t.Fatalf("child policy %s (specialization lost)", child.Policy().Name())
	}
	// The child schedules and runs jobs on its own session without the
	// parent's involvement.
	rec, err := child.Submit("echo", []string{"from", "child"}, resource.Request{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Wait(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "complete" || res.NTasks != 2 {
		t.Fatalf("child job result %+v", res)
	}
	// The child's KVS is its own: the parent's namespace has no job data.
	ph := root.Handle()
	defer ph.Close()
	if _, _, _, err := wexec.Output(ph, rec.ID, 0); err == nil {
		t.Fatal("child job data visible in parent KVS namespace")
	}
}

func TestRecursiveHierarchyDepth3(t *testing.T) {
	root := newRoot(t, 8, Options{})
	c1, err := root.Spawn(resource.Request{Nodes: 6}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c1.Spawn(resource.Request{Nodes: 3}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Depth() != 2 || c2.Size() != 3 {
		t.Fatalf("grandchild depth=%d size=%d", c2.Depth(), c2.Size())
	}
	if !strings.HasPrefix(c2.ID(), c1.ID()+".") {
		t.Fatalf("grandchild id %q not under %q", c2.ID(), c1.ID())
	}
	rec, err := c2.Submit("hostname", nil, resource.Request{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Wait(ctx(t)); err != nil {
		t.Fatal(err)
	}
	// Closing the middle closes the grandchild too.
	c1.Close()
	if got := root.Pool().FreeNodes(); got != 8 {
		t.Fatalf("free after subtree close = %d", got)
	}
	if len(root.Children()) != 0 {
		t.Fatal("child registry not cleaned")
	}
}

func TestParentalConsentGrow(t *testing.T) {
	root := newRoot(t, 8, Options{})
	child, err := root.Spawn(resource.Request{Nodes: 2}, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer child.Close()
	if child.MaxNodes() != 6 {
		t.Fatalf("bound %d", child.MaxNodes())
	}
	if err := child.Grow(2); err != nil {
		t.Fatal(err)
	}
	if child.Size() != 4 {
		t.Fatalf("size after grow = %d", child.Size())
	}
	if free := root.Pool().FreeNodes(); free != 4 {
		t.Fatalf("parent free = %d", free)
	}
	// Growth beyond the parent's bound is refused (bounding rule).
	if err := child.Grow(3); err == nil {
		t.Fatal("growth beyond bound accepted")
	}
	// Growth within the bound but beyond the parent's free capacity is
	// refused too.
	other, err := root.Spawn(resource.Request{Nodes: 4}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := child.Grow(2); err == nil {
		t.Fatal("parent granted nodes it does not have")
	}
	// Grown nodes are schedulable in the child.
	rec, err := child.Submit("echo", nil, resource.Request{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Wait(ctx(t)); err != nil {
		t.Fatal(err)
	}
}

func TestParentalConsentShrink(t *testing.T) {
	root := newRoot(t, 8, Options{})
	child, err := root.Spawn(resource.Request{Nodes: 6}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer child.Close()
	if err := child.Shrink(2); err != nil {
		t.Fatal(err)
	}
	if child.Size() != 4 {
		t.Fatalf("size after shrink = %d", child.Size())
	}
	if free := root.Pool().FreeNodes(); free != 4 {
		t.Fatalf("parent free after shrink = %d", free)
	}
	// Busy nodes cannot be returned.
	rec, err := child.Submit("block", nil, resource.Request{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Shrink(1); err == nil {
		t.Fatal("shrink of busy nodes accepted")
	}
	h := child.Handle()
	wexec.Kill(h, rec.ID)
	h.Close()
	rec.Wait(ctx(t))
	// Cannot shrink to empty.
	if err := child.Shrink(4); err == nil {
		t.Fatal("shrink to empty accepted")
	}
	// Root has no parent for elasticity requests.
	if err := root.Grow(1); err == nil {
		t.Fatal("root grow accepted")
	}
	if err := root.Shrink(1); err == nil {
		t.Fatal("root shrink accepted")
	}
}

func TestSiblingInstancesRunConcurrently(t *testing.T) {
	root := newRoot(t, 8, Options{})
	var children []*Instance
	for k := 0; k < 4; k++ {
		c, err := root.Spawn(resource.Request{Nodes: 2}, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		children = append(children, c)
	}
	// Sibling jobs run simultaneously through independent instances.
	var wg sync.WaitGroup
	for k, c := range children {
		wg.Add(1)
		go func(k int, c *Instance) {
			defer wg.Done()
			for n := 0; n < 3; n++ {
				rec, err := c.Submit("echo", []string{fmt.Sprintf("c%d-%d", k, n)}, resource.Request{Nodes: 2})
				if err != nil {
					t.Errorf("child %d: %v", k, err)
					return
				}
				if _, err := rec.Wait(ctx(t)); err != nil {
					t.Errorf("child %d wait: %v", k, err)
					return
				}
			}
		}(k, c)
	}
	wg.Wait()
}

func TestSubmitAfterClose(t *testing.T) {
	root := newRoot(t, 2, Options{})
	child, _ := root.Spawn(resource.Request{Nodes: 1}, 0, Options{})
	child.Close()
	if _, err := child.Submit("echo", nil, resource.Request{Nodes: 1}); err == nil {
		t.Fatal("submit on closed instance accepted")
	}
	if _, err := child.Spawn(resource.Request{Nodes: 1}, 0, Options{}); err == nil {
		t.Fatal("spawn on closed instance accepted")
	}
	child.Close() // idempotent
}

// TestInstanceQueueFCFSBlocks: under FCFS, a small job behind an
// infeasible head waits; under EASY it backfills.
func TestInstanceQueueFCFSBlocks(t *testing.T) {
	root := newRoot(t, 3, Options{Policy: sched.FCFS{}})
	blocker, err := root.Submit("block", nil, resource.Request{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	head, err := root.Submit("echo", nil, resource.Request{Nodes: 2}) // blocked
	if err != nil {
		t.Fatal(err)
	}
	small, err := root.Submit("echo", nil, resource.Request{Nodes: 1}) // must wait behind head
	if err != nil {
		t.Fatal(err)
	}
	// Give the scheduler a moment; the small job must NOT have started
	// (strict FCFS), so one node stays free.
	time.Sleep(50 * time.Millisecond)
	if free := root.Pool().FreeNodes(); free != 1 {
		t.Fatalf("free = %d; FCFS head did not block the queue", free)
	}
	h := root.Handle()
	wexec.Kill(h, blocker.ID)
	h.Close()
	c := ctx(t)
	if _, err := blocker.Wait(c); err != nil {
		t.Fatal(err)
	}
	if _, err := head.Wait(c); err != nil {
		t.Fatal(err)
	}
	if _, err := small.Wait(c); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceQueueEASYBackfills(t *testing.T) {
	root := newRoot(t, 3, Options{Policy: sched.EASY{}})
	blocker, _ := root.Submit("block", nil, resource.Request{Nodes: 2})
	root.Submit("block", nil, resource.Request{Nodes: 2}) // blocked head
	small, err := root.Submit("echo", []string{"backfilled"}, resource.Request{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The 1-node job jumps the blocked head.
	res, err := small.Wait(ctx(t))
	if err != nil || res.State != "complete" {
		t.Fatalf("backfill: %+v %v", res, err)
	}
	h := root.Handle()
	wexec.Kill(h, blocker.ID)
	h.Close()
}

func TestJobsRegistry(t *testing.T) {
	root := newRoot(t, 2, Options{})
	rec, err := root.Submit("echo", nil, resource.Request{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec.Wait(ctx(t))
	if len(root.Jobs()) != 1 {
		t.Fatalf("jobs registry has %d entries", len(root.Jobs()))
	}
}
