// Package topo computes the shapes of the CMB overlay planes.
//
// The paper's request/response plane is a tree whose shape is
// configurable (a binary tree is pictured in Fig. 1); the secondary
// rank-addressed plane is a ring chosen so ranks can be reached without
// routing tables. This package provides the pure rank arithmetic for
// both: parents, children, depth, subtree membership, and ring
// neighbours, for any session size and tree arity.
package topo

import (
	"fmt"
	"math"
)

// Tree describes a complete k-ary tree over ranks 0..Size-1 laid out in
// breadth-first order: the children of rank r are k*r+1 .. k*r+k.
// Rank 0 is the session root.
type Tree struct {
	Size  int // number of ranks in the session
	Arity int // fan-out k; 2 reproduces the paper's pictured binary tree
}

// NewTree validates and returns a Tree. Size must be >= 1 and Arity >= 1.
func NewTree(size, arity int) (Tree, error) {
	if size < 1 {
		return Tree{}, fmt.Errorf("topo: size %d < 1", size)
	}
	if arity < 1 {
		return Tree{}, fmt.Errorf("topo: arity %d < 1", arity)
	}
	return Tree{Size: size, Arity: arity}, nil
}

// Valid reports whether rank is a member of the session.
func (t Tree) Valid(rank int) bool { return rank >= 0 && rank < t.Size }

// Parent returns the tree parent of rank, or -1 for the root.
func (t Tree) Parent(rank int) int {
	if rank <= 0 {
		return -1
	}
	return (rank - 1) / t.Arity
}

// Children returns the in-session children of rank in ascending order.
func (t Tree) Children(rank int) []int {
	first := t.Arity*rank + 1
	if first >= t.Size {
		return nil
	}
	last := first + t.Arity
	if last > t.Size {
		last = t.Size
	}
	kids := make([]int, 0, last-first)
	for c := first; c < last; c++ {
		kids = append(kids, c)
	}
	return kids
}

// Depth returns the number of edges between rank and the root. It is
// computed in O(1) from the BFS index: rank r sits at depth d iff
// firstOfDepth(d) <= r < firstOfDepth(d+1) with firstOfDepth(d) =
// (k^d - 1)/(k - 1), so d = floor(log_k(r*(k-1) + 1)). The float
// estimate can be off by one near exact powers of k; it is corrected
// against the exact integer bounds.
func (t Tree) Depth(rank int) int {
	if rank <= 0 {
		return 0
	}
	k := t.Arity
	if k == 1 {
		return rank // a unary tree is a chain
	}
	d := int(math.Log(float64(rank)*float64(k-1)+1) / math.Log(float64(k)))
	for d > 0 && t.firstOfDepth(d) > rank {
		d--
	}
	for t.firstOfDepth(d+1) <= rank {
		d++
	}
	return d
}

// firstOfDepth returns the BFS index of the leftmost rank at depth d,
// (k^d - 1)/(k - 1), saturating at the maximum int so callers can
// compare it against any rank without overflow.
func (t Tree) firstOfDepth(d int) int {
	const maxInt = int(^uint(0) >> 1)
	p, ok := ipow(t.Arity, d)
	if !ok {
		return maxInt
	}
	return (p - 1) / (t.Arity - 1)
}

// ipow computes k^d by squaring, reporting false on int overflow.
func ipow(k, d int) (int, bool) {
	const maxInt = int(^uint(0) >> 1)
	result, base := 1, k
	for d > 0 {
		if d&1 == 1 {
			if result > maxInt/base {
				return 0, false
			}
			result *= base
		}
		d >>= 1
		if d > 0 {
			if base > maxInt/base {
				return 0, false
			}
			base *= base
		}
	}
	return result, true
}

// Height returns the maximum depth over all ranks — the tree height.
func (t Tree) Height() int { return t.Depth(t.Size - 1) }

// IsLeaf reports whether rank has no children.
func (t Tree) IsLeaf(rank int) bool { return t.Arity*rank+1 >= t.Size }

// InSubtree reports whether target lies in the subtree rooted at rank
// (inclusive of rank itself).
func (t Tree) InSubtree(rank, target int) bool {
	for target >= 0 {
		if target == rank {
			return true
		}
		if target < rank {
			return false // ancestors have smaller BFS indices
		}
		target = t.Parent(target)
	}
	return false
}

// ChildToward returns which child of rank roots the subtree containing
// target. It panics if target is not in a proper subtree of rank.
func (t Tree) ChildToward(rank, target int) int {
	if !t.InSubtree(rank, target) || target == rank {
		panic(fmt.Sprintf("topo: target %d not below rank %d", target, rank))
	}
	for {
		p := t.Parent(target)
		if p == rank {
			return target
		}
		target = p
	}
}

// PathToRoot returns the rank sequence from rank up to and including 0.
func (t Tree) PathToRoot(rank int) []int {
	path := []int{rank}
	for rank > 0 {
		rank = t.Parent(rank)
		path = append(path, rank)
	}
	return path
}

// Ring describes the rank-addressed overlay: rank r's next neighbour is
// (r+1) mod Size.
type Ring struct {
	Size int
}

// NewRing validates and returns a Ring of the given size (>= 1).
func NewRing(size int) (Ring, error) {
	if size < 1 {
		return Ring{}, fmt.Errorf("topo: ring size %d < 1", size)
	}
	return Ring{Size: size}, nil
}

// Next returns the downstream ring neighbour of rank.
func (r Ring) Next(rank int) int { return (rank + 1) % r.Size }

// Prev returns the upstream ring neighbour of rank.
func (r Ring) Prev(rank int) int { return (rank - 1 + r.Size) % r.Size }

// Distance returns the number of forward hops from 'from' to 'to'.
func (r Ring) Distance(from, to int) int {
	return (to - from + r.Size) % r.Size
}
