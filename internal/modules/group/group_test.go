package group

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size:    size,
		Modules: []session.ModuleFactory{Factory},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestJoinListLeave(t *testing.T) {
	s := newSession(t, 3)
	h := s.Handle(1)
	defer h.Close()
	if err := Join(h, "g1", "proc-a"); err != nil {
		t.Fatal(err)
	}
	if err := Join(h, "g1", "proc-b"); err != nil {
		t.Fatal(err)
	}
	members, err := List(h, "g1")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || members[0] != "proc-a" || members[1] != "proc-b" {
		t.Fatalf("members = %v", members)
	}
	if err := Leave(h, "g1", "proc-a"); err != nil {
		t.Fatal(err)
	}
	members, _ = List(h, "g1")
	if len(members) != 1 || members[0] != "proc-b" {
		t.Fatalf("after leave, members = %v", members)
	}
}

func TestMembershipConvergesAcrossRanks(t *testing.T) {
	s := newSession(t, 7)
	h := s.Handle(3)
	defer h.Close()
	if err := Join(h, "conv", "m1"); err != nil {
		t.Fatal(err)
	}
	// Events propagate in total order; every rank converges.
	for r := 0; r < 7; r++ {
		hr := s.Handle(r)
		deadline := time.After(10 * time.Second)
		for {
			members, err := List(hr, "conv")
			if err != nil {
				t.Fatal(err)
			}
			if len(members) == 1 && members[0] == "m1" {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("rank %d never converged: %v", r, members)
			default:
				time.Sleep(2 * time.Millisecond)
			}
		}
		hr.Close()
	}
}

func TestConcurrentJoins(t *testing.T) {
	const size, joiners = 7, 21
	s := newSession(t, size)
	var wg sync.WaitGroup
	for j := 0; j < joiners; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			h := s.Handle(j % size)
			defer h.Close()
			if err := Join(h, "big", fmt.Sprintf("m%02d", j)); err != nil {
				t.Error(err)
			}
		}(j)
	}
	wg.Wait()
	h := s.Handle(0)
	defer h.Close()
	deadline := time.After(10 * time.Second)
	for {
		members, err := List(h, "big")
		if err != nil {
			t.Fatal(err)
		}
		if len(members) == joiners {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/%d members", len(members), joiners)
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestEmptyGroupVanishes(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	Join(h, "tmp", "x")
	Leave(h, "tmp", "x")
	members, err := List(h, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Fatalf("members = %v", members)
	}
}

func TestValidation(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	if err := Join(h, "", "m"); err == nil {
		t.Fatal("empty group name accepted")
	}
	if err := Join(h, "g", ""); err == nil {
		t.Fatal("empty member accepted")
	}
}
