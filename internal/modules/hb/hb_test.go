package hb

import (
	"testing"
	"time"

	"fluxgo/internal/clock"
	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int, clk clock.Clock, interval time.Duration) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size:    size,
		Clock:   clk,
		Modules: []session.ModuleFactory{Factory(Config{Interval: interval})},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestHeartbeatGeneratedOnManualClock(t *testing.T) {
	mc := clock.NewManual(time.Unix(0, 0))
	s := newSession(t, 3, mc, time.Second)
	h := s.Handle(2)
	defer h.Close()
	sub, err := h.Subscribe(EventTopic)
	if err != nil {
		t.Fatal(err)
	}
	// Drive three heartbeats; poll Advance because the generator re-arms
	// its timer asynchronously after each tick.
	for want := uint64(1); want <= 3; want++ {
		deadline := time.After(10 * time.Second)
		for {
			mc.Advance(time.Second)
			select {
			case ev := <-sub.Chan():
				var body Body
				if err := ev.UnpackJSON(&body); err != nil {
					t.Fatal(err)
				}
				if body.Epoch != want {
					t.Fatalf("epoch %d, want %d", body.Epoch, want)
				}
			case <-deadline:
				t.Fatalf("heartbeat %d never arrived", want)
			default:
				time.Sleep(time.Millisecond)
				continue
			}
			break
		}
	}
}

func TestPulseAndEpochQuery(t *testing.T) {
	// A long interval keeps the timer from firing; Pulse drives epochs.
	s := newSession(t, 7, nil, time.Hour)
	h := s.Handle(3)
	defer h.Close()

	sub, err := h.Subscribe(EventTopic)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Pulse(h) // rank-addressed to root over the ring
	if err != nil {
		t.Fatal(err)
	}
	if e1 != 1 {
		t.Fatalf("first pulse epoch = %d, want 1", e1)
	}
	select {
	case <-sub.Chan():
	case <-time.After(5 * time.Second):
		t.Fatal("pulse event not delivered")
	}
	// Local epoch query reflects the event.
	got, err := Epoch(h)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("Epoch = %d, want 1", got)
	}
	e2, _ := Pulse(h)
	if e2 != 2 {
		t.Fatalf("second pulse epoch = %d, want 2", e2)
	}
}

func TestRealClockHeartbeats(t *testing.T) {
	s := newSession(t, 3, nil, 10*time.Millisecond)
	h := s.Handle(1)
	defer h.Close()
	sub, err := h.Subscribe(EventTopic)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 3; i++ {
		select {
		case ev := <-sub.Chan():
			var body Body
			ev.UnpackJSON(&body)
			if body.Epoch <= last {
				t.Fatalf("epoch %d not increasing past %d", body.Epoch, last)
			}
			last = body.Epoch
		case <-time.After(10 * time.Second):
			t.Fatal("heartbeat not generated on real clock")
		}
	}
}
