package wirehyg

import "fixture.example/wire"

const svc = wire.ServiceCMB

func namedTopic() *wire.Message {
	return &wire.Message{Type: wire.Event, Topic: wire.TopicPing}
}

func namedConversion() wire.Type {
	return wire.Control
}

// prose mentioning the service does not match the topic shape.
func proseIsFine() string {
	return "cmb overlay unreachable"
}

// struct tags are not wire strings.
type tagged struct {
	Field string `json:"cmb.field"`
}
