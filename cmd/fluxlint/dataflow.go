package main

// A generic worklist solver over funcCFG. A pass supplies the lattice
// (bottom, join, equality) and a transfer function; the solver iterates
// in reverse postorder until the facts stop changing and returns the
// fact at each reachable block's entry (forward) or exit (backward).
//
// Join must be monotone for termination; the solver additionally caps
// the number of relaxation steps so a buggy lattice degrades to a
// truncated (conservative for may-analyses) result instead of a hang.

type direction int

const (
	forward direction = iota
	backward
)

// analysis describes one dataflow problem over facts of type F.
type analysis[F any] struct {
	dir      direction
	boundary func() F             // fact entering the graph
	bottom   func() F             // identity element for join
	join     func(dst, src F) F   // least upper bound; may mutate dst
	equal    func(a, b F) bool    // fixpoint test
	transfer func(b *block, in F) F
}

// solve runs the analysis to a fixpoint and returns the in-fact of
// every reachable block plus the number of transfer applications (the
// convergence test asserts a bound on it).
func solve[F any](g *funcCFG, a analysis[F]) (map[*block]F, int) {
	start := g.entry
	next := func(b *block) []*block { return b.succs }
	if a.dir == backward {
		start = g.exit
		next = func(b *block) []*block { return b.preds }
	}

	// Reverse postorder from the start node in the chosen direction
	// gives near-optimal visit order for reducible graphs.
	order := postorder(start, next)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	pos := make(map[*block]int, len(order))
	for i, b := range order {
		pos[b] = i
	}

	in := make(map[*block]F, len(order))
	for _, b := range order {
		in[b] = a.bottom()
	}
	in[start] = a.join(a.bottom(), a.boundary())

	inQueue := make(map[*block]bool, len(order))
	queue := append([]*block(nil), order...)
	for _, b := range queue {
		inQueue[b] = true
	}

	steps := 0
	maxSteps := 64 * (len(order) + 1) * (len(order) + 1)
	for len(queue) > 0 {
		// Pop the queued block earliest in RPO.
		best := 0
		for i := 1; i < len(queue); i++ {
			if pos[queue[i]] < pos[queue[best]] {
				best = i
			}
		}
		b := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		inQueue[b] = false

		steps++
		if steps > maxSteps {
			break // lattice bug; stop with the facts computed so far
		}
		out := a.transfer(b, in[b])
		for _, s := range next(b) {
			if _, ok := in[s]; !ok {
				continue // unreachable in this direction
			}
			merged := a.join(a.join(a.bottom(), in[s]), out)
			if !a.equal(merged, in[s]) {
				in[s] = merged
				if !inQueue[s] {
					inQueue[s] = true
					queue = append(queue, s)
				}
			}
		}
	}
	return in, steps
}

// postorder returns the depth-first postorder of the graph reachable
// from start via next.
func postorder(start *block, next func(*block) []*block) []*block {
	var order []*block
	seen := map[*block]bool{}
	var visit func(b *block)
	visit = func(b *block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range next(b) {
			visit(s)
		}
		order = append(order, b)
	}
	visit(start)
	return order
}
