package obs

import "testing"

// span is a test shorthand: hop/parent chain with explicit timing.
func span(hop, parent uint8, rank int, start, work int64, topic string) Span {
	return Span{Trace: 1, Rank: rank, Hop: hop, Parent: parent,
		Kind: "request", Topic: topic, StartNS: start, WorkNS: work}
}

func TestAssembleTraceLinearChain(t *testing.T) {
	// A request climbing 0 -> 1 -> 2 and handled at rank 2.
	spans := []Span{
		span(2, 1, 2, 30, 5, "kvs.get"),
		span(0, 0, 0, 10, 2, "kvs.get"),
		span(1, 0, 1, 20, 3, "kvs.get"),
	}
	tree := AssembleTrace(spans)
	if tree.Trace != 1 || len(tree.Spans) != 3 {
		t.Fatalf("tree = %+v", tree)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Span.Hop != 0 {
		t.Fatalf("roots = %+v", tree.Roots)
	}
	n := tree.Roots[0]
	for want := uint8(1); want <= 2; want++ {
		if len(n.Children) != 1 {
			t.Fatalf("hop %d has %d children, want 1", n.Span.Hop, len(n.Children))
		}
		n = n.Children[0]
		if n.Span.Hop != want {
			t.Fatalf("child hop = %d, want %d", n.Span.Hop, want)
		}
	}
	path := tree.CriticalPath()
	if len(path) != 3 || path[0].Span.Hop != 0 || path[2].Span.Hop != 2 {
		t.Fatalf("critical path hops = %+v", path)
	}
	if tree.TotalNS() != 25 { // first start 10 .. last end 35
		t.Fatalf("TotalNS = %d, want 25", tree.TotalNS())
	}
}

func TestAssembleTraceFanOut(t *testing.T) {
	// An event published at hop 0 fanning out to two ranks at hop 1; the
	// slower branch spawns hop 2 and bounds latency.
	spans := []Span{
		span(0, 0, 0, 10, 1, "pub"),
		span(1, 0, 1, 20, 1, "ev"),
		span(1, 0, 2, 21, 1, "ev"),
		span(2, 1, 3, 40, 9, "ev"),
	}
	tree := AssembleTrace(spans)
	if len(tree.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tree.Roots))
	}
	if got := len(tree.Roots[0].Children); got != 2 {
		t.Fatalf("fan-out children = %d, want 2", got)
	}
	path := tree.CriticalPath()
	if len(path) == 0 || path[len(path)-1].Span.Rank != 3 {
		t.Fatalf("critical path should end at rank 3: %+v", path)
	}
	// The hop-2 span must attach under the later-starting hop-1 span that
	// could have caused it (start 21 <= 40).
	last := path[len(path)-1]
	if len(path) < 2 || path[len(path)-2].Span.Rank != 2 {
		t.Fatalf("hop 2 attached to wrong parent; path ends %+v", last.Span)
	}
}

func TestAssembleTraceForeignAndOrphanSpans(t *testing.T) {
	spans := []Span{
		span(1, 0, 4, 50, 1, "orphan"), // no hop-0 parent gathered
		{Trace: 2, Rank: 0, Hop: 0, StartNS: 60}, // different trace id
	}
	tree := AssembleTrace(spans)
	if len(tree.Spans) != 1 {
		t.Fatalf("foreign trace not filtered: %+v", tree.Spans)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Span.Topic != "orphan" {
		t.Fatalf("orphan span should root itself: %+v", tree.Roots)
	}
}

func TestAssembleTraceEmpty(t *testing.T) {
	tree := AssembleTrace(nil)
	if len(tree.Roots) != 0 || tree.TotalNS() != 0 || tree.CriticalPath() != nil {
		t.Fatalf("empty tree misbehaved: %+v", tree)
	}
}
