package epoch

import (
	"fixture.example/fakes"
	"fixture.example/wire"
)

// countedDrop accounts for the rejection with a counter.
func (b *broker) countedDrop(m *wire.Message) {
	if m.Epoch < b.epoch {
		b.ctr.Inc()
		return
	}
	b.events = append(b.events, m)
}

// loggedDrop accounts for the rejection in the log.
func (b *broker) loggedDrop(m *wire.Message) {
	if m.Epoch < b.epoch {
		b.logf("stale epoch %d dropped", m.Epoch)
		return
	}
	b.events = append(b.events, m)
}

// delegatedDrop accounts through a helper, the real broker's
// rejectEpoch pattern: the helper counts, logs, and answers requests
// with the reserved stale-membership errno.
func (b *broker) delegatedDrop(h *fakes.Handle, m *wire.Message) {
	if m.Epoch < b.epoch {
		b.reject(h, m)
		return
	}
	b.events = append(b.events, m)
}

func (b *broker) reject(h *fakes.Handle, m *wire.Message) {
	b.ctr.Inc()
	b.logf("epoch fence: %q rejected", m.Topic)
	if err := h.RespondError(m, wire.ErrnoStale, "stale membership epoch"); err != nil {
		b.logf("respond: %v", err)
	}
}

// ratchet falls through after the comparison — not a drop, never
// flagged even though nothing is counted or logged.
func (b *broker) ratchet(epoch uint32) {
	if epoch > b.epoch {
		b.epoch = epoch
	}
}

// unrelatedGate returns early on a non-epoch comparison; none of the
// epoch-discipline machinery applies.
func (b *broker) unrelatedGate(m *wire.Message) {
	if m.Seq == 0 {
		return
	}
	b.events = append(b.events, m)
}
