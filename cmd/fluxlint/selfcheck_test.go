package main

import "testing"

// TestRepoIsFindingFree is the dogfood gate: the full suite over the
// real module must report nothing. Any regression shows up here (and in
// `make lint`) with its exact position.
func TestRepoIsFindingFree(t *testing.T) {
	modPath, modDir, err := findModule(".")
	if err != nil {
		t.Fatalf("findModule: %v", err)
	}
	l := NewLoader(modPath, modDir)
	paths, err := l.Discover()
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if len(paths) < 5 {
		t.Fatalf("discovered only %d packages (%v); loader is missing the tree", len(paths), paths)
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, p)
	}
	findings, _ := runAll(l, pkgs)
	for _, f := range findings {
		t.Errorf("finding in repo: %s", f)
	}
}

// BenchmarkLintRepo times the full nine-pass suite over the loaded
// module (type-checking excluded: packages are loaded once, outside the
// timer). It backs the `make lint` wall-clock budget in CI — per-pass
// cost regressions surface here before they blow the 30s gate.
func BenchmarkLintRepo(b *testing.B) {
	modPath, modDir, err := findModule(".")
	if err != nil {
		b.Fatalf("findModule: %v", err)
	}
	l := NewLoader(modPath, modDir)
	paths, err := l.Discover()
	if err != nil {
		b.Fatalf("discover: %v", err)
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			b.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings, _ := runAll(l, pkgs)
		if len(findings) > 0 {
			b.Fatalf("repo has %d findings; fix them before benchmarking", len(findings))
		}
	}
}
