package wire

import "sync/atomic"

// Frame is a reference-counted, already-encoded message: the encode-once
// half of event fan-out. The broker encodes an event a single time into
// a pooled buffer, then hands one reference to every child link; each
// transport writer copies the shared bytes onto its wire and drops its
// reference. When the last reference is dropped the buffer returns to
// the codec pool.
//
// Ownership rules (the refcounted extension of the Handoff/Release
// model, enforced statically by fluxlint's pool-ownership pass):
//
//   - NewFrame returns a frame holding one reference, owned by the
//     caller.
//   - Retain takes an additional reference and returns the frame, so a
//     hand-out reads as one expression: sender.SendFrame(f.Retain()).
//     Each reference obliges exactly one Release by whoever holds it.
//   - Release drops a reference; after the caller's own Release it must
//     not touch the frame again. Dropping the last reference recycles
//     the buffer; dropping more references than were taken panics, in
//     every build — a refcount underflow means some consumer released a
//     buffer another consumer may still be writing to the wire.
//
// The decoded *Message the frame was built from stays reachable via Msg
// for consumers that want the value, not the bytes (in-process pipes,
// local handles); it is shared and must not be mutated.
type Frame struct {
	refs atomic.Int32
	buf  []byte
	msg  *Message
}

// NewFrame encodes m once into a pooled buffer and returns a frame
// holding one reference. m must not be mutated for the frame's lifetime
// (event messages are immutable once sequenced, so this is free there).
func NewFrame(m *Message) (*Frame, error) {
	size := encodedSize(m)
	if size > MaxMessageSize {
		return nil, ErrTooLarge
	}
	buf := marshalAppend(GetBuf(size)[:0], m)
	f := &Frame{buf: buf, msg: m}
	f.refs.Store(1)
	return f, nil
}

// Retain takes an additional reference and returns f, so handing a
// reference to a sender chains: s.SendFrame(f.Retain()).
func (f *Frame) Retain() *Frame {
	if f.refs.Add(1) <= 1 {
		panic("wire: Frame.Retain on a released frame")
	}
	return f
}

// Release drops one reference. The last Release returns the encoded
// buffer to the codec pool; the caller must not use f afterwards.
func (f *Frame) Release() {
	switch n := f.refs.Add(-1); {
	case n == 0:
		buf := f.buf
		f.buf = nil
		f.msg = nil
		PutBuf(buf)
	case n < 0:
		panic("wire: Frame refcount underflow (Release without matching reference)")
	}
}

// Bytes returns the shared encoded frame. Valid until the caller's own
// reference is released; must not be modified or retained past that.
func (f *Frame) Bytes() []byte { return f.buf }

// Msg returns the decoded message the frame was encoded from. It is
// shared by every reference holder and must not be mutated.
func (f *Frame) Msg() *Message { return f.msg }
