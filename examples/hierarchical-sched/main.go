// Hierarchical scheduling of an Uncertainty Quantification ensemble —
// the paper's motivating "ensembles of jobs" workload under the unified
// job model: the center-level root instance leases resource blocks to
// child instances (one per UQ study), each child runs its own scheduler
// policy over its lease, and sibling instances schedule concurrently.
//
//	go run ./examples/hierarchical-sched
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"fluxgo"
)

func main() {
	// The center: 2 racks x 8 nodes.
	cluster, err := fluxgo.BuildCluster(fluxgo.ClusterSpec{
		Name: "center", Racks: 2, NodesPerRack: 8,
		SocketsPerNode: 2, CoresPerSocket: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Root instance: owns the whole center; its scheduler works at
	// coarse granularity, leasing blocks to children.
	root, err := fluxgo.NewRootInstance(cluster, fluxgo.InstanceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer root.Close()
	fmt.Printf("root instance %q owns %d nodes\n", root.ID(), root.Size())

	// Two UQ studies with different scheduling needs: study A runs many
	// tiny samples (EASY backfilling packs them); study B runs a few
	// wide samples (strict FCFS keeps them ordered). Policy
	// specialization per child — no global policy in a central scheduler.
	studyA, err := root.Spawn(fluxgo.Request{Nodes: 8}, 0,
		fluxgo.InstanceOptions{Policy: fluxgo.EASY{}})
	if err != nil {
		log.Fatal(err)
	}
	studyB, err := root.Spawn(fluxgo.Request{Nodes: 6}, 0,
		fluxgo.InstanceOptions{Policy: fluxgo.FCFS{}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leased %d nodes to %s (policy %s), %d to %s (policy %s); %d held back\n",
		studyA.Size(), studyA.ID(), studyA.Policy().Name(),
		studyB.Size(), studyB.ID(), studyB.Policy().Name(),
		root.Pool().FreeNodes())

	start := time.Now()
	var wg sync.WaitGroup

	// Study A: 12 one-node samples, scheduled by the child instance on
	// its own lease.
	wg.Add(1)
	go func() {
		defer wg.Done()
		runSamples(studyA, 12, 1)
	}()
	// Study B: 4 three-node samples.
	wg.Add(1)
	go func() {
		defer wg.Done()
		runSamples(studyB, 4, 3)
	}()
	wg.Wait()
	fmt.Printf("both studies completed concurrently in %v\n", time.Since(start))

	// Each child's results live in its own KVS namespace.
	for _, study := range []*fluxgo.Instance{studyA, studyB} {
		fmt.Printf("%s ran %d jobs on its private session\n", study.ID(), len(study.Jobs()))
	}
}

// runSamples submits count samples of the given width to one study
// instance and waits for them all.
func runSamples(study *fluxgo.Instance, count, width int) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var recs []interface {
		Wait(context.Context) (fluxgo.JobResult, error)
	}
	for s := 0; s < count; s++ {
		rec, err := study.Submit("echo", []string{fmt.Sprintf("sample-%d", s)},
			fluxgo.Request{Nodes: width})
		if err != nil {
			log.Fatalf("%s sample %d: %v", study.ID(), s, err)
		}
		recs = append(recs, rec)
	}
	for s, rec := range recs {
		res, err := rec.Wait(ctx)
		if err != nil || res.State != "complete" {
			log.Fatalf("%s sample %d: %+v %v", study.ID(), s, res, err)
		}
	}
}
