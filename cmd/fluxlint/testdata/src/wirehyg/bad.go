// Package wirehyg holds fixtures for the wire-hygiene pass.
// (Payload-retention shapes moved to the poolown fixtures with the rule.)
package wirehyg

import "fixture.example/wire"

const service = "cmb" // BAD

func rawTopic() string {
	return "cmb.ping" // BAD
}

func rawMessageType() *wire.Message {
	return &wire.Message{Type: 3, Topic: wire.TopicStats} // BAD
}

func rawConversion() wire.Type {
	return wire.Type(2) // BAD
}
