// Package clock abstracts time for the Flux run-time so that every
// time-driven behaviour (heartbeats, liveness timeouts, cache expiry,
// monitor sampling) can run against either the real wall clock or a
// deterministic manual clock in tests.
package clock

import (
	"sync"
	"time"
)

// Timer is a cancellable one-shot timer. C fires at most once.
type Timer interface {
	// C returns the channel on which the expiry time is delivered.
	C() <-chan time.Time
	// Stop cancels the timer. It reports whether the timer was stopped
	// before firing.
	Stop() bool
}

// Clock provides the current time and timer creation. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTimer returns a Timer that fires after d.
	NewTimer(d time.Duration) Timer
	// After is a convenience wrapper equivalent to NewTimer(d).C().
	After(d time.Duration) <-chan time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }

func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

// Manual is a deterministic Clock whose time only moves when Advance is
// called. Timers fire synchronously from within Advance, in expiry order.
type Manual struct {
	mu     sync.Mutex
	now    time.Time
	timers []*manualTimer
}

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now returns the current manual time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since returns the elapsed manual time since t.
func (m *Manual) Since(t time.Time) time.Duration {
	return m.Now().Sub(t)
}

// NewTimer returns a timer firing after d of manual time has been advanced.
func (m *Manual) NewTimer(d time.Duration) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &manualTimer{
		clock: m,
		when:  m.now.Add(d),
		ch:    make(chan time.Time, 1),
	}
	if d <= 0 {
		t.fired = true
		//fluxlint:ignore lock-across-block ch has capacity 1 and fires at most once (fired latch), so this send never blocks
		t.ch <- m.now
		return t
	}
	m.timers = append(m.timers, t)
	return t
}

// After is a convenience wrapper equivalent to NewTimer(d).C().
func (m *Manual) After(d time.Duration) <-chan time.Time {
	return m.NewTimer(d).C()
}

// Advance moves the manual clock forward by d, firing any timers whose
// expiry falls within the window, in chronological order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	for {
		var next *manualTimer
		for _, t := range m.timers {
			if t.fired {
				continue
			}
			if !t.when.After(target) && (next == nil || t.when.Before(next.when)) {
				next = t
			}
		}
		if next == nil {
			break
		}
		if next.when.After(m.now) {
			m.now = next.when
		}
		next.fired = true
		//fluxlint:ignore lock-across-block ch has capacity 1 and fires at most once (fired latch), so this send never blocks
		next.ch <- m.now
	}
	m.now = target
	m.compact()
	m.mu.Unlock()
}

// compact drops fired timers. Caller holds mu.
func (m *Manual) compact() {
	live := m.timers[:0]
	for _, t := range m.timers {
		if !t.fired {
			live = append(live, t)
		}
	}
	m.timers = live
}

type manualTimer struct {
	clock *Manual
	when  time.Time
	ch    chan time.Time
	fired bool
}

func (t *manualTimer) C() <-chan time.Time { return t.ch }

func (t *manualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired {
		return false
	}
	t.fired = true
	return true
}

// Ticker delivers a tick every interval until stopped. It is built on
// Clock timers so it works with both real and manual clocks.
type Ticker struct {
	C    <-chan time.Time
	stop chan struct{}
	once sync.Once
}

// NewTicker starts a ticker on clk with the given interval. The interval
// must be positive.
func NewTicker(clk Clock, interval time.Duration) *Ticker {
	if interval <= 0 {
		panic("clock: non-positive ticker interval")
	}
	ch := make(chan time.Time, 1)
	t := &Ticker{C: ch, stop: make(chan struct{})}
	go func() {
		for {
			timer := clk.NewTimer(interval)
			select {
			case now := <-timer.C():
				select {
				case ch <- now:
				default: // drop tick if receiver is slow, like time.Ticker
				}
			case <-t.stop:
				timer.Stop()
				return
			}
		}
	}()
	return t
}

// Stop terminates the ticker goroutine. Safe to call multiple times.
func (t *Ticker) Stop() { t.once.Do(func() { close(t.stop) }) }
