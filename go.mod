module fluxgo

go 1.22
