// Package barrier implements the barrier comms module of Table I:
// collective barriers across groups of processes.
//
// Each participant sends barrier.enter with the barrier name and total
// participant count. Module instances aggregate subtree entry counts and
// retransmit them upstream — the tree data reduction the paper's RPC
// overlay enables — and the session root completes the barrier when the
// count reaches nprocs, releasing every waiter along the reverse paths.
package barrier

import (
	"fmt"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

type enterBody struct {
	Name   string `json:"name"`
	NProcs int    `json:"nprocs"`
	Count  int    `json:"count"` // participants aggregated in this message
}

// bin is the binary-coded (codec v3) form of enterBody, used when the
// session negotiated binary bodies; decodeEnterBody sniffs and accepts
// either encoding, so mixed sessions interoperate.
func (b enterBody) bin() wire.RawBody {
	w := wire.NewBinWriter(len(b.Name) + 12)
	w.String(b.Name)
	w.Uint(uint64(b.NProcs))
	w.Uint(uint64(b.Count))
	return w.Finish()
}

func decodeEnterBody(m *wire.Message) (body enterBody, err error) {
	if r, ok := wire.NewBinReader(m.Payload); ok {
		body.Name = r.String()
		body.NProcs = int(r.Uint())
		body.Count = int(r.Uint())
		return body, r.Err()
	}
	err = m.UnpackJSON(&body)
	return body, err
}

// enterReq wraps body for sending, binary-coded when the handle's broker
// negotiated binary bodies.
func enterReq(h *broker.Handle, body enterBody) any {
	if h.BinaryBodies() {
		return body.bin()
	}
	return body
}

type doneBody struct {
	Name  string `json:"name"`
	Error string `json:"error,omitempty"`
}

// state tracks one in-progress barrier at one module instance.
type state struct {
	nprocs  int
	count   int // total seen (root); accumulated (slaves)
	unsent  int
	pending []*wire.Message
}

// Module is one barrier comms module instance.
type Module struct {
	h        *broker.Handle
	barriers map[string]*state

	// Observability handles into the broker registry ("barrier.*").
	obsEnters    *obs.Counter // enter requests received (incl. aggregates)
	obsReleases  *obs.Counter // waiters released
	obsBatches   *obs.Counter // upstream aggregates sent
	obsActive    *obs.Gauge   // barriers currently in progress here
	histEnter    *obs.Histogram
	histComplete *obs.Histogram
}

// New returns a barrier module instance.
func New() *Module { return &Module{barriers: map[string]*state{}} }

// Factory loads the barrier module at every rank of a session.
func Factory(rank, size int) broker.Module { return New() }

// Name implements broker.Module.
func (m *Module) Name() string { return "barrier" }

// Subscriptions implements broker.Module.
func (m *Module) Subscriptions() []string { return nil }

// Init implements broker.Module.
func (m *Module) Init(h *broker.Handle) error {
	m.h = h
	reg := h.Broker().Metrics()
	m.obsEnters = reg.Counter("barrier.enters")
	m.obsReleases = reg.Counter("barrier.releases")
	m.obsBatches = reg.Counter("barrier.batches")
	m.obsActive = reg.Gauge("barrier.active")
	m.histEnter = reg.Histogram("barrier.enter_ns")
	m.histComplete = reg.Histogram("barrier.complete_ns")
	return nil
}

// Shutdown implements broker.Module.
func (m *Module) Shutdown() {}

// Recv implements broker.Module.
func (m *Module) Recv(msg *wire.Message) {
	if msg.Type != wire.Request {
		return
	}
	switch msg.Method() {
	case "enter":
		start := time.Now()
		m.recvEnter(msg)
		m.histEnter.Observe(time.Since(start))
	case "done":
		m.recvDone(msg)
	case "stats":
		m.recvStats(msg)
	default:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("barrier: unknown method %q", msg.Method()))
	}
}

func (m *Module) recvEnter(msg *wire.Message) {
	body, err := decodeEnterBody(msg)
	if err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	if body.NProcs < 1 {
		m.h.RespondError(msg, broker.ErrnoInval, "barrier: nprocs < 1")
		return
	}
	if body.Count == 0 {
		body.Count = 1
	}
	m.obsEnters.Inc()
	st := m.barriers[body.Name]
	if st == nil {
		st = &state{nprocs: body.NProcs}
		m.barriers[body.Name] = st
		m.obsActive.Add(1)
	}
	if st.nprocs != body.NProcs {
		m.h.RespondError(msg, broker.ErrnoInval,
			fmt.Sprintf("barrier: %q nprocs mismatch (%d vs %d)", body.Name, body.NProcs, st.nprocs))
		return
	}
	st.count += body.Count
	st.unsent += body.Count
	st.pending = append(st.pending, msg)
	if m.h.Rank() == 0 && st.count >= st.nprocs {
		m.complete(body.Name, st, "")
	}
}

// complete releases every held waiter at this instance.
func (m *Module) complete(name string, st *state, errMsg string) {
	start := time.Now()
	for _, req := range st.pending {
		if errMsg != "" {
			m.h.RespondError(req, broker.ErrnoProto, errMsg)
		} else {
			m.h.Respond(req, struct{}{})
		}
	}
	m.obsReleases.Add(uint64(len(st.pending)))
	delete(m.barriers, name)
	m.obsActive.Add(-1)
	m.histComplete.Observe(time.Since(start))
}

// Idle implements broker.IdleBatcher: forward accumulated entry counts
// upstream once the inbox drains.
func (m *Module) Idle() {
	if m.h.Rank() == 0 {
		return
	}
	for name, st := range m.barriers {
		if st.unsent == 0 {
			continue
		}
		batch := enterBody{Name: name, NProcs: st.nprocs, Count: st.unsent}
		st.unsent = 0
		m.obsBatches.Inc()
		go m.sendBatch(batch)
	}
}

// sendBatch forwards one aggregate and re-injects completion locally.
func (m *Module) sendBatch(batch enterBody) {
	_, err := m.h.RPC("barrier.enter", wire.NodeidUpstream, enterReq(m.h, batch))
	done := doneBody{Name: batch.Name}
	if err != nil {
		done.Error = err.Error()
	}
	m.h.Send("barrier.done", uint32(m.h.Rank()), done)
}

func (m *Module) recvDone(msg *wire.Message) {
	var body doneBody
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	st := m.barriers[body.Name]
	if st == nil {
		return
	}
	m.complete(body.Name, st, body.Error)
}

// recvStats serves barrier.stats: this instance's live barrier state
// plus its slice of the broker metrics registry.
func (m *Module) recvStats(msg *wire.Message) {
	snap := m.h.Broker().Metrics().Snapshot()
	hists := map[string]obs.HistSnapshot{}
	for name, h := range snap.Hists {
		if len(name) > 8 && name[:8] == "barrier." {
			hists[name] = h
		}
	}
	m.h.Respond(msg, map[string]any{
		"rank":     m.h.Rank(),
		"active":   m.obsActive.Load(),
		"enters":   m.obsEnters.Load(),
		"releases": m.obsReleases.Load(),
		"batches":  m.obsBatches.Load(),
		"hists":    hists,
	})
}

// Enter is the client call: block until nprocs processes have entered
// the barrier with the same name. Names must be unique per collective
// operation.
func Enter(h *broker.Handle, name string, nprocs int) error {
	_, err := h.RPC("barrier.enter", wire.NodeidAny, enterReq(h, enterBody{Name: name, NProcs: nprocs}))
	return err
}
