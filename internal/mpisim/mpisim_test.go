package mpisim

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/barrier"
	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size: size,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			barrier.Factory,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// runJob drives fn concurrently as procs ranks of one communicator and
// fails on the first error.
func runJob(t *testing.T, s *session.Session, jobid string, procs int, fn func(c *Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := s.Handle(p % s.Size())
			defer h.Close()
			c, err := NewComm(h, jobid, p, procs)
			if err != nil {
				errs[p] = err
				return
			}
			errs[p] = fn(c)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", p, err)
		}
	}
}

func TestNewCommValidation(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	if _, err := NewComm(h, "j", 3, 3); err == nil {
		t.Fatal("rank == size accepted")
	}
	if _, err := NewComm(h, "j", -1, 3); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestBcast(t *testing.T) {
	const procs = 8
	s := newSession(t, 4)
	runJob(t, s, "bcast", procs, func(c *Comm) error {
		var got string
		if err := c.Bcast(3, "from-three", &got); err != nil {
			return err
		}
		if got != "from-three" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		// A second bcast from a different root uses a fresh epoch.
		var n int
		if err := c.Bcast(0, c.Rank()*0+42, &n); err != nil {
			return err
		}
		if n != 42 {
			return fmt.Errorf("second bcast got %d", n)
		}
		return nil
	})
}

func TestAllreduce(t *testing.T) {
	const procs = 12
	s := newSession(t, 4)
	runJob(t, s, "ar", procs, func(c *Comm) error {
		sum, err := c.Allreduce(float64(c.Rank()), OpSum)
		if err != nil {
			return err
		}
		if want := float64(procs * (procs - 1) / 2); sum != want {
			return fmt.Errorf("sum %f, want %f", sum, want)
		}
		mn, err := c.Allreduce(float64(c.Rank()+5), OpMin)
		if err != nil {
			return err
		}
		if mn != 5 {
			return fmt.Errorf("min %f", mn)
		}
		mx, err := c.Allreduce(float64(c.Rank()), OpMax)
		if err != nil {
			return err
		}
		if mx != procs-1 {
			return fmt.Errorf("max %f", mx)
		}
		return nil
	})
}

func TestAllgatherOrdered(t *testing.T) {
	const procs = 6
	s := newSession(t, 3)
	runJob(t, s, "ag", procs, func(c *Comm) error {
		all, err := c.Allgather(fmt.Sprintf("v%d", c.Rank()))
		if err != nil {
			return err
		}
		if len(all) != procs {
			return fmt.Errorf("gathered %d", len(all))
		}
		for r, raw := range all {
			var v string
			if err := json.Unmarshal(raw, &v); err != nil {
				return err
			}
			if v != fmt.Sprintf("v%d", r) {
				return fmt.Errorf("slot %d = %q", r, v)
			}
		}
		return nil
	})
}

func TestGatherScatter(t *testing.T) {
	const procs = 5
	s := newSession(t, 5)
	runJob(t, s, "gs", procs, func(c *Comm) error {
		// Gather at root 2.
		all, err := c.Gather(2, c.Rank()*10)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			if len(all) != procs {
				return fmt.Errorf("root gathered %d", len(all))
			}
			var v int
			json.Unmarshal(all[4], &v)
			if v != 40 {
				return fmt.Errorf("slot 4 = %d", v)
			}
		} else if all != nil {
			return fmt.Errorf("non-root got data")
		}
		// Scatter from root 0.
		var values []any
		if c.Rank() == 0 {
			for r := 0; r < procs; r++ {
				values = append(values, r*r)
			}
		}
		var mine int
		if err := c.Scatter(0, values, &mine); err != nil {
			return err
		}
		if mine != c.Rank()*c.Rank() {
			return fmt.Errorf("scatter got %d", mine)
		}
		return nil
	})
}

func TestBarrierAndRootValidation(t *testing.T) {
	const procs = 4
	s := newSession(t, 2)
	runJob(t, s, "bv", procs, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		var out int
		if err := c.Bcast(99, 1, &out); err == nil {
			return fmt.Errorf("out-of-range bcast root accepted")
		}
		if _, err := c.Gather(-1, 1); err == nil {
			return fmt.Errorf("negative gather root accepted")
		}
		return nil
	})
}
