package main

// goroutine-lifecycle: every `go func() { ... }()` in production code
// must be tied to some lifecycle mechanism, or broker shutdown cannot
// guarantee quiescence (the property the testutil leak checker asserts
// at runtime — this pass is its static twin). A literal is considered
// lifecycle-tied if its body (including nested literals and deferred
// calls) does any of:
//
//   - call Done on a sync.WaitGroup (registered with a waiter)
//   - receive from a channel, select, or range over a channel (it can
//     be unblocked/terminated by a close or a shutdown message)
//   - send on a channel or close one (a rendezvous: a collector is
//     waiting for it, bounding its lifetime)
//
// Named-function goroutines (`go c.writeLoop()`) are not checked: their
// termination is the callee's contract and typically encapsulated. Only
// spawns on reachable CFG paths are checked: a `go` after an
// unconditional return cannot leak.

import (
	"go/ast"
	"go/token"
	"go/types"
)

const goroutineLifecycleName = "goroutine-lifecycle"

var goroutineLifecyclePass = Pass{
	Name: goroutineLifecycleName,
	Doc:  "flag go-literal goroutines with no shutdown or WaitGroup tie",
	Run:  runGoroutineLifecycle,
}

func runGoroutineLifecycle(l *Loader, p *Package) []Finding {
	ix := indexOf(p)
	var out []Finding
	checkOp := func(o op) {
		gs, ok := o.node.(*ast.GoStmt)
		if !ok {
			return
		}
		fl, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return
		}
		if !lifecycleTied(p.Info, fl.Body) {
			out = append(out, Finding{
				Pass: goroutineLifecycleName,
				Pos:  l.Fset.Position(gs.Pos()),
				Msg:  "goroutine has no lifecycle tie (no WaitGroup.Done, channel op, or select)",
			})
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					reachableOps(ix, d.Body, checkOp)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							for _, fl := range funcLitsIn(v) {
								reachableOps(ix, fl.Body, checkOp)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// lifecycleTied scans the literal's whole body (nested literals and
// defers included) for any lifecycle marker.
func lifecycleTied(info *types.Info, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			tied = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				tied = true
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				tied = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				// close(ch) is a rendezvous with whoever ranges/receives.
				if fun.Name == "close" {
					if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
						tied = true
					}
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" && methodPkgPath(info, fun) == "sync" {
					tied = true
				}
			}
		}
		return !tied
	})
	return tied
}
