// Package logmod implements the log comms module of Table I: log
// messages are reduced and filtered before being placed in a log sink at
// the session root, and a circular debug buffer provides log context in
// response to a fault event.
package logmod

import (
	"fmt"
	"io"
	"sync"

	"fluxgo/internal/broker"
	"fluxgo/internal/wire"
)

// Severity levels, syslog-style: lower is more severe.
const (
	LevelEmerg = iota
	LevelAlert
	LevelCrit
	LevelErr
	LevelWarning
	LevelNotice
	LevelInfo
	LevelDebug
)

// Entry is one log record.
type Entry struct {
	Facility string `json:"facility"`
	Level    int    `json:"level"`
	Rank     int    `json:"rank"`
	Message  string `json:"message"`
	TimeNS   int64  `json:"time_ns"`
}

// appendBody carries one or more entries upstream. Fault marks a
// post-mortem ring dump, which bypasses the severity filter at the sink.
type appendBody struct {
	Entries []Entry `json:"entries"`
	Fault   bool    `json:"fault,omitempty"`
}

// Config parameterizes the log module.
type Config struct {
	// ForwardLevel: entries at this level or more severe (numerically <=)
	// are forwarded to the root sink; others stay in the local ring
	// buffer only. Defaults to LevelInfo.
	ForwardLevel int
	// RingSize is the circular debug buffer capacity per rank. Defaults
	// to 256 entries.
	RingSize int
	// Sink, at the root, receives forwarded entries, one formatted line
	// per entry. Nil keeps entries only in the root's in-memory ring.
	Sink io.Writer
}

// Module is one log module instance.
type Module struct {
	cfg Config
	h   *broker.Handle

	mu          sync.Mutex
	ring        []Entry // circular debug buffer (local entries)
	next        int
	filled      bool
	sunk        []Entry // root only: forwarded entries, bounded by RingSize*4
	unsent      []Entry // slave: entries awaiting upstream batch
	unsentFault []Entry // slave: fault-dump entries (bypass the filter)
}

// New returns a log module instance.
func New(cfg Config) *Module {
	if cfg.ForwardLevel == 0 {
		cfg.ForwardLevel = LevelInfo
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = 256
	}
	return &Module{cfg: cfg, ring: make([]Entry, cfg.RingSize)}
}

// Factory loads the log module at every rank.
func Factory(cfg Config) func(rank, size int) broker.Module {
	return func(rank, size int) broker.Module { return New(cfg) }
}

// Name implements broker.Module.
func (m *Module) Name() string { return "log" }

// Subscriptions implements broker.Module: a log.fault event makes every
// rank dump its circular buffer upstream for post-mortem context.
func (m *Module) Subscriptions() []string { return []string{"log.fault"} }

// Init implements broker.Module.
func (m *Module) Init(h *broker.Handle) error { m.h = h; return nil }

// Shutdown implements broker.Module.
func (m *Module) Shutdown() {}

// Recv implements broker.Module.
func (m *Module) Recv(msg *wire.Message) {
	if msg.Type == wire.Event && msg.Topic == "log.fault" {
		m.dumpRing()
		return
	}
	if msg.Type != wire.Request {
		return
	}
	switch msg.Method() {
	case "append":
		m.recvAppend(msg)
	case "dump":
		m.recvDump(msg)
	default:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("log: unknown method %q", msg.Method()))
	}
}

// recvAppend records entries locally and queues forwardable ones for the
// upstream reduction. Requests are fire-and-forget friendly.
func (m *Module) recvAppend(msg *wire.Message) {
	var body appendBody
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	isRoot := m.h.Rank() == 0
	m.mu.Lock()
	for _, e := range body.Entries {
		// Locally originated entries enter this rank's circular buffer;
		// transit entries from children pass straight through the
		// reduction, and fault dumps bypass the severity filter.
		if e.Rank == m.h.Rank() {
			m.pushRingLocked(e)
		}
		switch {
		case body.Fault:
			if isRoot {
				m.sinkLocked(e)
			} else {
				m.unsentFault = append(m.unsentFault, e)
			}
		case e.Level <= m.cfg.ForwardLevel:
			if isRoot {
				m.sinkLocked(e)
			} else {
				m.unsent = append(m.unsent, e)
			}
		}
	}
	m.mu.Unlock()
	m.h.Respond(msg, struct{}{})
}

// pushRingLocked appends to the circular debug buffer. Caller holds mu.
func (m *Module) pushRingLocked(e Entry) {
	m.ring[m.next] = e
	m.next = (m.next + 1) % len(m.ring)
	if m.next == 0 {
		m.filled = true
	}
}

// sinkLocked stores (and optionally writes) one entry at the root.
// Caller holds mu.
func (m *Module) sinkLocked(e Entry) {
	m.sunk = append(m.sunk, e)
	if max := m.cfg.RingSize * 4; len(m.sunk) > max {
		m.sunk = append([]Entry(nil), m.sunk[len(m.sunk)-max:]...)
	}
	if m.cfg.Sink != nil {
		fmt.Fprintf(m.cfg.Sink, "[%d] <%d> %s: %s\n", e.Rank, e.Level, e.Facility, e.Message)
	}
}

// ringSnapshotLocked returns the buffer contents in order. Caller holds mu.
func (m *Module) ringSnapshotLocked() []Entry {
	if !m.filled {
		return append([]Entry(nil), m.ring[:m.next]...)
	}
	out := make([]Entry, 0, len(m.ring))
	out = append(out, m.ring[m.next:]...)
	out = append(out, m.ring[:m.next]...)
	return out
}

// dumpRing forwards the whole circular buffer upstream in response to a
// fault event, regardless of severity filtering.
func (m *Module) dumpRing() {
	if m.h.Rank() == 0 {
		return // root's ring is already at the root
	}
	m.mu.Lock()
	entries := m.ringSnapshotLocked()
	m.mu.Unlock()
	if len(entries) == 0 {
		return
	}
	m.h.Send("log.append", wire.NodeidUpstream, appendBody{Entries: entries, Fault: true})
}

// recvDump answers with recent entries: the root's sink history, or the
// local ring elsewhere.
func (m *Module) recvDump(msg *wire.Message) {
	var body struct {
		Count int `json:"count"`
	}
	msg.UnpackJSON(&body)
	m.mu.Lock()
	var entries []Entry
	if m.h.Rank() == 0 {
		entries = append([]Entry(nil), m.sunk...)
	} else {
		entries = m.ringSnapshotLocked()
	}
	m.mu.Unlock()
	if body.Count > 0 && len(entries) > body.Count {
		entries = entries[len(entries)-body.Count:]
	}
	m.h.Respond(msg, appendBody{Entries: entries})
}

// Idle implements broker.IdleBatcher: slaves batch forwardable entries
// upstream — the paper's log reduction.
func (m *Module) Idle() {
	if m.h.Rank() == 0 {
		return
	}
	m.mu.Lock()
	batch := m.unsent
	fault := m.unsentFault
	m.unsent, m.unsentFault = nil, nil
	m.mu.Unlock()
	if len(batch) > 0 {
		m.h.Send("log.append", wire.NodeidUpstream, appendBody{Entries: batch})
	}
	if len(fault) > 0 {
		m.h.Send("log.append", wire.NodeidUpstream, appendBody{Entries: fault, Fault: true})
	}
}

// Log appends one entry via the local log module (fire-and-forget).
func Log(h *broker.Handle, facility string, level int, format string, args ...any) error {
	e := Entry{
		Facility: facility,
		Level:    level,
		Rank:     h.Rank(),
		Message:  fmt.Sprintf(format, args...),
		TimeNS:   h.Clock().Now().UnixNano(),
	}
	return h.Send("log.append", wire.NodeidAny, appendBody{Entries: []Entry{e}})
}

// Dump fetches recent entries from the log module at the given rank
// (rank 0 returns the session-wide sink history).
func Dump(h *broker.Handle, rank int, count int) ([]Entry, error) {
	resp, err := h.RPC("log.dump", uint32(rank), map[string]int{"count": count})
	if err != nil {
		return nil, err
	}
	var body appendBody
	if err := resp.UnpackJSON(&body); err != nil {
		return nil, err
	}
	return body.Entries, nil
}

// Fault publishes the fault event that triggers session-wide ring dumps.
func Fault(h *broker.Handle) error {
	_, err := h.PublishEvent("log.fault", nil)
	return err
}
