package session

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/modules/live"
	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// pingRank asserts rank answers a rank-addressed ping through h.
func pingRank(t *testing.T, h interface {
	RPC(topic string, nodeid uint32, body any) (*wire.Message, error)
}, rank int) {
	t.Helper()
	resp, err := h.RPC(wire.TopicPing, uint32(rank), map[string]any{})
	if err != nil {
		t.Fatalf("ping rank %d: %v", rank, err)
	}
	var body struct {
		Rank int `json:"rank"`
	}
	if err := resp.UnpackJSON(&body); err != nil || body.Rank != rank {
		t.Fatalf("ping rank %d answered by %d (%v)", rank, body.Rank, err)
	}
}

// TestElasticGrowShrink exercises the basic protocol: grow a session by
// two ranks, reach the newcomers over the ring, drain a founding rank,
// and watch every surviving broker converge on the final epoch.
func TestElasticGrowShrink(t *testing.T) {
	s, err := New(Options{Size: 3, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.Grow(2)
	if err != nil {
		t.Fatalf("grow: %v", err)
	}
	if first != 3 {
		t.Fatalf("first new rank = %d, want 3", first)
	}
	h := s.Handle(0)
	defer h.Close()
	pingRank(t, h, 3)
	pingRank(t, h, 4)

	if err := s.Shrink([]int{1}); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if _, err := h.RPC(wire.TopicPing, 1, map[string]any{}); !wire.IsErrnum(err, wire.ErrnoHostUnreach) {
		t.Fatalf("ping departed rank 1: err %v, want EHOSTUNREACH", err)
	}
	// Double-drain and draining the root are refused.
	if err := s.Shrink([]int{1}); err == nil {
		t.Fatal("second drain of rank 1 accepted")
	}
	if err := s.Shrink([]int{0}); err == nil {
		t.Fatal("drain of the root accepted")
	}

	// Every surviving broker converges on the final epoch (2 joins + 1
	// leave on top of the founding epoch 1 = 4) and the same live set.
	want := s.Epoch()
	wantLive := s.LiveRanks()
	deadline := time.After(10 * time.Second)
	for _, r := range wantLive {
		for {
			b := s.Broker(r)
			if b.Epoch() == want && equalInts(b.LiveRanks(), wantLive) {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("rank %d stuck at epoch %d live %v, want epoch %d live %v",
					r, b.Epoch(), b.LiveRanks(), want, wantLive)
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
	if want != 4 {
		t.Fatalf("session epoch %d, want 4", want)
	}
	for _, r := range wantLive {
		pingRank(t, h, r)
	}
}

// TestElasticChaosSoak is the headline elasticity proof: a seeded chaos
// schedule drops, delays, and partitions traffic and silently crashes
// interior ranks WHILE the membership churns — ranks join and drain
// concurrently with the faults. It asserts the same three guarantees as
// TestChaosSoak (no hang, causal KVS safety, post-heal convergence),
// plus membership convergence: every surviving member ends on the same
// epoch and the same live set.
//
// Reproducible via FLUX_CHAOS_SEEDS / CHAOS_SOAK like TestChaosSoak.
func TestElasticChaosSoak(t *testing.T) {
	dur := chaosDuration()
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runElasticChaosSoak(t, seed, dur)
		})
	}
}

func runElasticChaosSoak(t *testing.T, seed int64, dur time.Duration) {
	t.Logf("elastic chaos soak: seed=%d duration=%s (replay with FLUX_CHAOS_SEEDS=%d)", seed, dur, seed)

	const size = 15
	s, err := New(Options{
		Size:           size,
		Arity:          2,
		FaultInjection: true,
		FaultSeed:      seed,
		RPCTimeout:     1500 * time.Millisecond,
		SyncInterval:   500 * time.Millisecond,
		Modules: []ModuleFactory{
			hb.Factory(hb.Config{Interval: 100 * time.Millisecond}),
			live.Factory(live.Config{}),
			kvs.Factory(kvs.ModuleConfig{}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ch := s.Chaos()

	rng := rand.New(rand.NewSource(seed))
	memberRng := rand.New(rand.NewSource(seed ^ 0x5f3759df))
	stop := make(chan struct{})
	var wg sync.WaitGroup

	type commitRec struct {
		key     string
		val     int
		version uint64
	}
	recs := make(chan commitRec, 1024)

	// Writers at leaf ranks: unique keys, so any successful read has
	// exactly one correct answer.
	for _, w := range []int{7, 9, 11} {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle(w)
			defer h.Close()
			c := kvs.NewClient(h)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("elastic.w%d.i%d", w, i)
				if err := c.Put(key, i); err != nil {
					continue // chaos error: liveness is the only obligation
				}
				v, err := c.Commit()
				if err != nil {
					continue
				}
				select {
				case recs <- commitRec{key, i, v}:
				default:
				}
			}
		}(w)
	}

	// Readers at other leaves: causal-consistency checkers.
	for _, r := range []int{8, 10, 12} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := s.Handle(r)
			defer h.Close()
			c := kvs.NewClient(h)
			for {
				select {
				case <-stop:
					return
				case rec := <-recs:
					if err := c.WaitVersion(rec.version); err != nil {
						continue
					}
					var got int
					if err := c.Get(rec.key, &got); err != nil {
						continue
					}
					if got != rec.val {
						t.Errorf("causal violation at rank %d: %s = %d after WaitVersion(%d), committed %d (seed %d)",
							r, rec.key, got, rec.version, rec.val, seed)
					}
				}
			}
		}(r)
	}

	// Ring pinger against the *current* membership: targets include
	// ranks that joined moments ago and ranks about to drain. Errors
	// (EHOSTUNREACH, ESTALE, timeouts) are fine; hangs are not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := s.Handle(0)
		defer h.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ranks := s.LiveRanks()
			h.RPC(wire.TopicPing, uint32(ranks[i%len(ranks)]), nil)
		}
	}()

	// Membership churn driver: grow and drain ranks while the chaos
	// schedule runs. Only elastic ranks (>= founding size) are drained;
	// the founding interior belongs to the crash schedule. Errors are
	// tolerated — a grow can time out against a partitioned parent — but
	// the call must return.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(75 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			var elastic []int
			for _, r := range s.LiveRanks() {
				if r >= size {
					elastic = append(elastic, r)
				}
			}
			if len(elastic) < 4 && memberRng.Intn(2) == 0 {
				s.Grow(1)
			} else if len(elastic) > 0 {
				s.Shrink([]int{elastic[memberRng.Intn(len(elastic))]})
			}
		}
	}()

	// Chaos driver: seeded schedule of noise, partitions, and crashes.
	interior := []int{1, 2, 3, 4, 5, 6}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		crashes := 0
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			switch rng.Intn(6) {
			case 0, 1: // background noise on every live link
				ch.SetAllFaults(transport.Faults{
					Drop:   0.05,
					Dup:    0.02,
					Delay:  time.Duration(rng.Intn(3)) * time.Millisecond,
					Jitter: 2 * time.Millisecond,
				})
			case 2, 3: // heal everything
				ch.Heal()
			case 4: // partition a random subtree away, heal later by case 2/3
				ch.Partition(interior[rng.Intn(len(interior))])
			case 5: // silent crash of an interior rank, detected later
				if crashes >= 2 {
					continue
				}
				victim := interior[rng.Intn(len(interior))]
				if !s.Alive(victim) {
					continue
				}
				crashes++
				ch.Crash(victim)
				wg.Add(1)
				go func(victim int) {
					defer wg.Done()
					select {
					case <-time.After(300 * time.Millisecond):
					case <-stop:
					}
					ch.Sever(victim)
				}(victim)
			}
		}
	}()

	time.Sleep(dur)
	close(stop)
	// Generous bound: the worst case is a grow retrying its admission
	// handshake through the full backoff schedule against 1.5s deadlines.
	waitOrFatal(t, &wg, 60*time.Second, "elastic chaos workload (some RPC or membership op hung)")

	// Convergence: heal all faults, then every surviving member must have
	// a live parent and agree on the final epoch and live set.
	ch.Heal()
	wantEpoch := s.Epoch()
	wantLive := s.LiveRanks()
	deadline := time.After(30 * time.Second)
	for {
		lagging := ""
		for _, r := range wantLive {
			if !s.Alive(r) {
				continue
			}
			b := s.Broker(r)
			if r != 0 {
				if p := b.ParentRank(); p < 0 || !s.Alive(p) {
					lagging = fmt.Sprintf("rank %d parent %d not live", r, p)
					break
				}
			}
			if b.Epoch() != wantEpoch || !equalInts(b.LiveRanks(), wantLive) {
				lagging = fmt.Sprintf("rank %d at epoch %d live %v, want epoch %d live %v",
					r, b.Epoch(), b.LiveRanks(), wantEpoch, wantLive)
				break
			}
		}
		if lagging == "" {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("membership never converged after heal: %s (seed %d)", lagging, seed)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Safety after the storm: one final commit visible to every
	// surviving member, and every member answers a ring ping.
	wh := s.Handle(7)
	defer wh.Close()
	wc := kvs.NewClient(wh)
	if err := wc.Put("elastic.final", "done"); err != nil {
		t.Fatalf("final put after heal: %v (seed %d)", err, seed)
	}
	ver, err := wc.Commit()
	if err != nil {
		t.Fatalf("final commit after heal: %v (seed %d)", err, seed)
	}
	h0 := s.Handle(0)
	defer h0.Close()
	for _, r := range wantLive {
		if !s.Alive(r) {
			continue
		}
		h := s.Handle(r)
		c := kvs.NewClient(h)
		var got string
		err := c.WaitVersion(ver)
		if err == nil {
			err = c.Get("elastic.final", &got)
		}
		h.Close()
		if err != nil || got != "done" {
			t.Fatalf("rank %d: final read %q err %v (seed %d)", r, got, err, seed)
		}
		pingRank(t, h0, r)
	}
}

// TestReparentUnderLoadWithEpochChecks extends the reparent-under-load
// coverage for the epoch-fenced overlay: while an 8-party KVS fence is
// in flight AND an event storm is running AND the session is growing,
// two interior aggregators are killed concurrently. The fence must
// complete exactly once with one version, the joined rank must be
// admitted, and every surviving member must converge on the final epoch
// with zero hangs.
func TestReparentUnderLoadWithEpochChecks(t *testing.T) {
	const size = 15
	s, err := New(Options{
		Size:       size,
		Arity:      2,
		RPCTimeout: 3 * time.Second,
		Modules: []ModuleFactory{
			hb.Factory(hb.Config{Interval: 100 * time.Millisecond}),
			live.Factory(live.Config{}),
			kvs.Factory(kvs.ModuleConfig{}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Event storm: a publisher hammers the event plane so reparenting
	// and membership events contend with a full pipe.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := s.Handle(0)
		defer h.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.PublishEvent("storm.tick", map[string]int{"i": i})
		}
	}()

	// 8-party fence across the leaves.
	leaves := []int{7, 8, 9, 10, 11, 12, 13, 14}
	type fenceResult struct {
		rank int
		ver  uint64
		err  error
	}
	results := make(chan fenceResult, len(leaves))
	for _, leaf := range leaves {
		go func(leaf int) {
			h := s.Handle(leaf)
			defer h.Close()
			c := kvs.NewClient(h)
			if err := c.Put(fmt.Sprintf("ef.r%d", leaf), leaf); err != nil {
				results <- fenceResult{leaf, 0, err}
				return
			}
			v, err := c.Fence("epochfence", len(leaves))
			results <- fenceResult{leaf, v, err}
		}(leaf)
	}

	// Let contributions flow through the doomed aggregators, then kill
	// two interior ranks while a grow races them.
	time.Sleep(20 * time.Millisecond)
	var kwg sync.WaitGroup
	for _, v := range []int{3, 4} {
		kwg.Add(1)
		go func(v int) {
			defer kwg.Done()
			s.Kill(v)
		}(v)
	}
	var grown int
	var growErr error
	kwg.Add(1)
	go func() {
		defer kwg.Done()
		grown, growErr = s.Grow(1)
	}()
	kwg.Wait()
	if growErr != nil {
		t.Fatalf("grow during kills: %v", growErr)
	}
	if grown != size {
		t.Fatalf("grew rank %d, want %d", grown, size)
	}

	// Every fence participant completes with the same version.
	var version uint64
	for range leaves {
		select {
		case res := <-results:
			if res.err != nil {
				t.Fatalf("rank %d: fence failed: %v", res.rank, res.err)
			}
			if version == 0 {
				version = res.ver
			} else if res.ver != version {
				t.Fatalf("rank %d: fence version %d, others got %d", res.rank, res.ver, version)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("fence participants hung under kills + growth + event storm")
		}
	}
	close(stop)
	waitOrFatal(t, &wg, 30*time.Second, "event storm publisher")

	// The joined rank was admitted and serves rank-addressed RPCs.
	h := s.Handle(7)
	defer h.Close()
	pingRank(t, h, grown)

	// Every surviving member converges on the join epoch (founding 1 +
	// one join = 2), killed ranks excluded.
	wantLive := s.LiveRanks()
	deadline := time.After(20 * time.Second)
	for _, r := range wantLive {
		if !s.Alive(r) {
			continue
		}
		for {
			if s.Broker(r).Epoch() == 2 {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("rank %d stuck at epoch %d, want 2", r, s.Broker(r).Epoch())
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
}
