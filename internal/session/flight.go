package session

// The flight recorder: when something goes wrong — a chaos fault, a
// poisoned storage tier, an errno spike — snapshot every broker's
// recent log records, trace spans, and metrics registry into one JSON
// dump on disk. The soaks auto-dump on failure and CI uploads the dumps
// as artifacts, so a red soak arrives with the telemetry needed to
// debug it instead of a bare assertion message.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// DefaultMaxDumps bounds how many dump files one recorder writes; after
// that, triggers are counted but produce no new files (a crash loop in
// a soak must not fill the disk).
const DefaultMaxDumps = 16

// defaultDumpRecords bounds the records captured per rank per dump.
const defaultDumpRecords = 512

// Recorder is a session's flight recorder. Enable it with
// Session.EnableFlightRecorder; chaos faults then trigger dumps
// automatically, and Poll checks for poison latches and errno spikes.
type Recorder struct {
	s   *Session
	dir string

	mu       sync.Mutex
	seq      int
	skipped  int
	maxDumps int
	poisoned map[int]bool   // ranks whose poison latch already dumped
	baseline map[int]uint64 // per-rank errno baseline for spike detection

	wg sync.WaitGroup // in-flight async dumps; Wait drains them
}

// ErrnoSpikeThreshold is how many new send errors + epoch rejects a
// rank may accumulate between Poll calls before the recorder fires.
const ErrnoSpikeThreshold = 64

// EnableFlightRecorder attaches a flight recorder writing JSON dumps
// into dir (created if missing). Chaos Crash/Sever trigger dumps
// automatically; callers (soaks, operators) may also Dump or Poll.
// Calling it again replaces the previous recorder.
func (s *Session) EnableFlightRecorder(dir string) *Recorder {
	r := &Recorder{
		s:        s,
		dir:      dir,
		maxDumps: DefaultMaxDumps,
		poisoned: make(map[int]bool),
		baseline: make(map[int]uint64),
	}
	s.mu.Lock()
	s.recorder = r
	s.mu.Unlock()
	return r
}

// FlightRecorder returns the session's recorder, or nil.
func (s *Session) FlightRecorder() *Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recorder
}

// flightDump fires the recorder asynchronously (chaos triggers run on
// fault-injection paths that must not block on disk I/O).
func (s *Session) flightDump(reason string) {
	r := s.FlightRecorder()
	if r == nil {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		if _, err := r.Dump(reason); err != nil {
			s.logAt(obs.LevelWarn, "session: flight dump (%s) failed: %v", reason, err)
		}
	}()
}

// Wait blocks until every asynchronously triggered dump has been
// written (tests, and soaks about to read the dump directory).
func (r *Recorder) Wait() { r.wg.Wait() }

// Dump snapshots every broker in the session (dead incarnations
// included — their rings hold the run-up to the fault) and writes one
// JSON dump file, returning its path. Beyond the dump-count cap it
// returns "" with no error and only counts the trigger.
func (r *Recorder) Dump(reason string) (string, error) {
	r.mu.Lock()
	if r.seq >= r.maxDumps {
		r.skipped++
		r.mu.Unlock()
		return "", nil
	}
	r.seq++
	seq := r.seq
	r.mu.Unlock()

	d := r.snapshot(reason)
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flux-dump-%03d-%s.json", seq, sanitizeReason(reason))
	path := filepath.Join(r.dir, name)
	data, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	for _, b := range r.brokers() {
		b.Metrics().Counter(wire.MetricFlightDumps).Inc()
	}
	return path, nil
}

// Snapshot builds the dump in memory without writing it (cmb-level
// consumers, tests).
func (r *Recorder) Snapshot(reason string) obs.FlightDump {
	return r.snapshot(reason)
}

func (r *Recorder) snapshot(reason string) obs.FlightDump {
	d := obs.FlightDump{
		Reason:  reason,
		WhenNS:  time.Now().UnixNano(),
		Session: r.s.opts.SessionID,
	}
	for _, b := range r.brokers() {
		d.Ranks = append(d.Ranks, b.FlightSnapshot(defaultDumpRecords))
	}
	return d
}

// brokers snapshots the session's broker slice outside the lock.
func (r *Recorder) brokers() []*broker.Broker {
	r.s.mu.Lock()
	out := make([]*broker.Broker, len(r.s.brokers))
	copy(out, r.s.brokers)
	r.s.mu.Unlock()
	return out
}

// Dumps reports how many dump files were written and how many triggers
// were suppressed by the cap.
func (r *Recorder) Dumps() (written, suppressed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq, r.skipped
}

// Poll checks every broker for a latched storage poison (a nonzero
// *.storage.poisoned gauge) and for errno spikes (send errors plus
// epoch rejects growing faster than ErrnoSpikeThreshold between
// polls), dumping once per detection. Soak loops call it each round.
func (r *Recorder) Poll() {
	for _, b := range r.brokers() {
		rank := b.Rank()
		snap := b.Metrics().Snapshot()

		r.mu.Lock()
		alreadyPoisoned := r.poisoned[rank]
		base, haveBase := r.baseline[rank]
		r.mu.Unlock()

		if !alreadyPoisoned {
			for name, v := range snap.Gauges {
				if v != 0 && strings.HasSuffix(name, ".storage.poisoned") {
					r.mu.Lock()
					r.poisoned[rank] = true
					r.mu.Unlock()
					r.s.flightDump(fmt.Sprintf("poison-rank%d", rank))
					break
				}
			}
		}

		errs := snap.Counters[wire.MetricSendErrors] + snap.Counters[wire.MetricEpochRejects]
		if haveBase && errs-base >= ErrnoSpikeThreshold {
			r.s.flightDump(fmt.Sprintf("errno-spike-rank%d", rank))
		}
		r.mu.Lock()
		r.baseline[rank] = errs
		r.mu.Unlock()
	}
}

// sanitizeReason makes a trigger reason filename-safe.
func sanitizeReason(reason string) string {
	var sb strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "dump"
	}
	s := sb.String()
	if len(s) > 48 {
		s = s[:48]
	}
	return s
}
