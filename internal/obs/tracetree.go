package obs

// Cross-rank trace assembly: given the spans of one trace id gathered
// from every broker's span ring, reconstruct the causal request tree
// (which hop caused which) and compute the critical path — the chain of
// hops ending at the latest-finishing span, i.e. what bounded the
// trace's end-to-end latency.

import "sort"

// TraceNode is one hop in the assembled causal tree.
type TraceNode struct {
	Span     Span
	Children []*TraceNode
}

// EndNS is when the hop's work completed.
func (n *TraceNode) EndNS() int64 {
	return n.Span.StartNS + n.Span.QueueNS + n.Span.WorkNS
}

// TraceTree is the assembled view of one trace across all ranks.
type TraceTree struct {
	Trace uint64
	Spans []Span       // all gathered spans, time-ordered
	Roots []*TraceNode // hops with no in-trace parent (normally one)
}

// AssembleTrace builds the causal tree of one trace's spans. Spans
// chain by hop number: a span's Parent names the hop that sent the
// message here. When several spans share a hop number (fan-out, or hop
// counter saturation), a child attaches to the latest same- or
// earlier-starting candidate — the hop that could actually have caused
// it. Spans from multiple trace ids may be passed; only the id of the
// first span (after time-ordering) is assembled.
func AssembleTrace(spans []Span) *TraceTree {
	t := &TraceTree{}
	if len(spans) == 0 {
		return t
	}
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].StartNS < ordered[j].StartNS
	})
	t.Trace = ordered[0].Trace
	for _, s := range ordered {
		if s.Trace == t.Trace {
			t.Spans = append(t.Spans, s)
		}
	}

	// Index nodes by hop number, preserving time order within a hop.
	byHop := map[uint8][]*TraceNode{}
	nodes := make([]*TraceNode, 0, len(t.Spans))
	for _, s := range t.Spans {
		n := &TraceNode{Span: s}
		nodes = append(nodes, n)
		byHop[s.Hop] = append(byHop[s.Hop], n)
	}
	for _, n := range nodes {
		s := n.Span
		if s.Hop == 0 {
			t.Roots = append(t.Roots, n)
			continue
		}
		var parent *TraceNode
		for _, cand := range byHop[s.Parent] {
			if cand == n || cand.Span.StartNS > s.StartNS {
				continue
			}
			parent = cand // candidates are time-ordered: keep the latest
		}
		if parent == nil {
			t.Roots = append(t.Roots, n)
			continue
		}
		parent.Children = append(parent.Children, n)
	}
	return t
}

// CriticalPath returns the root-to-leaf chain ending at the
// latest-finishing span — the hops that bounded end-to-end latency.
func (t *TraceTree) CriticalPath() []*TraceNode {
	var last *TraceNode
	parent := map[*TraceNode]*TraceNode{}
	var walk func(n *TraceNode)
	walk = func(n *TraceNode) {
		if last == nil || n.EndNS() > last.EndNS() {
			last = n
		}
		for _, c := range n.Children {
			parent[c] = n
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	if last == nil {
		return nil
	}
	var path []*TraceNode
	for n := last; n != nil; n = parent[n] {
		path = append(path, n)
	}
	// Reverse into root-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// TotalNS is the trace's end-to-end wall time: first span start to
// latest span end. Zero for an empty tree.
func (t *TraceTree) TotalNS() int64 {
	if len(t.Spans) == 0 {
		return 0
	}
	start := t.Spans[0].StartNS
	var end int64
	for _, s := range t.Spans {
		if e := s.StartNS + s.QueueNS + s.WorkNS; e > end {
			end = e
		}
	}
	if end < start {
		return 0
	}
	return end - start
}
