package transport

import (
	"io"
	"testing"
	"time"

	"fluxgo/internal/wire"
)

func fmsg(topic string) *wire.Message {
	return &wire.Message{Type: wire.Request, Topic: topic, Seq: 1}
}

// recvN drains up to n messages with a deadline, returning what arrived.
func recvN(t *testing.T, c Conn, n int, wait time.Duration) []*wire.Message {
	t.Helper()
	ch := make(chan *wire.Message, n)
	go func() {
		for i := 0; i < n; i++ {
			m, err := c.Recv()
			if err != nil {
				return
			}
			ch <- m
		}
	}()
	var got []*wire.Message
	deadline := time.After(wait)
	for len(got) < n {
		select {
		case m := <-ch:
			got = append(got, m)
		case <-deadline:
			return got
		}
	}
	return got
}

func TestFaultyPassThrough(t *testing.T) {
	a, b := Pipe("a", "b")
	fa := NewFaulty(a, 1)
	defer fa.Close()
	defer b.Close()
	for i := 0; i < 10; i++ {
		if err := fa.Send(fmsg("t")); err != nil {
			t.Fatal(err)
		}
	}
	if got := recvN(t, b, 10, 5*time.Second); len(got) != 10 {
		t.Fatalf("got %d messages, want 10", len(got))
	}
}

func TestFaultyDropLossRate(t *testing.T) {
	a, b := Pipe("a", "b")
	fa := NewFaulty(a, 42)
	defer fa.Close()
	defer b.Close()
	fa.SetFaults(Faults{Drop: 0.5})
	const n = 400
	for i := 0; i < n; i++ {
		fa.Send(fmsg("t"))
	}
	got := recvN(t, b, n, 500*time.Millisecond)
	if len(got) == 0 || len(got) == n {
		t.Fatalf("drop 0.5 delivered %d of %d", len(got), n)
	}
	if len(got) < n/4 || len(got) > 3*n/4 {
		t.Fatalf("drop 0.5 delivered %d of %d, outside [%d, %d]", len(got), n, n/4, 3*n/4)
	}
}

func TestFaultyDuplicate(t *testing.T) {
	a, b := Pipe("a", "b")
	fa := NewFaulty(a, 7)
	defer fa.Close()
	defer b.Close()
	fa.SetFaults(Faults{Dup: 1.0})
	m := fmsg("dup")
	m.PushRoute("r1")
	fa.Send(m)
	got := recvN(t, b, 2, 5*time.Second)
	if len(got) != 2 {
		t.Fatalf("dup 1.0 delivered %d messages, want 2", len(got))
	}
	// The duplicate must be a deep copy: mutating one route stack must
	// not affect the other.
	got[0].PopRoute()
	if len(got[1].Route) != 1 {
		t.Fatal("duplicate aliases the original's route stack")
	}
}

func TestFaultyDelayPreservesOrder(t *testing.T) {
	a, b := Pipe("a", "b")
	fa := NewFaulty(a, 3)
	defer fa.Close()
	defer b.Close()
	fa.SetFaults(Faults{Delay: 5 * time.Millisecond, Jitter: 10 * time.Millisecond})
	const n = 20
	start := time.Now()
	for i := 0; i < n; i++ {
		m := fmsg("ord")
		m.Seq = uint64(i + 1)
		fa.Send(m)
	}
	got := recvN(t, b, n, 5*time.Second)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("no delay observed")
	}
	for i, m := range got {
		if m.Seq != uint64(i+1) {
			t.Fatalf("message %d has seq %d: delay reordered delivery", i, m.Seq)
		}
	}
}

func TestFaultyBlackholeSilence(t *testing.T) {
	a, b := Pipe("a", "b")
	fa := NewFaulty(a, 5)
	fb := NewFaulty(b, 6)
	defer fb.Close()

	// Crash semantics: the controller blackholes both endpoints of the
	// link before the crashed broker's shutdown closes its side.
	fa.SetFaults(Faults{Blackhole: true})
	fb.SetFaults(Faults{Blackhole: true})
	fa.Send(fmsg("lost"))

	// The peer must see silence, not data and not EOF — even after the
	// blackholed side closes (a crashed peer sends no FIN).
	fa.Close()
	recvErr := make(chan error, 1)
	go func() {
		_, err := fb.Recv()
		recvErr <- err
	}()
	select {
	case err := <-recvErr:
		t.Fatalf("peer Recv returned (%v); want silence until severed", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Severing the link (failure detection) surfaces io.EOF.
	fb.Close()
	select {
	case err := <-recvErr:
		if err != io.EOF {
			t.Fatalf("severed Recv returned %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("severed Recv still blocked")
	}
}

func TestFaultyBlackholeSwallowsInbound(t *testing.T) {
	a, b := Pipe("a", "b")
	fa := NewFaulty(a, 9)
	fb := NewFaulty(b, 10)
	defer fa.Close()
	defer fb.Close()

	// One persistent reader: messages swallowed under blackhole never
	// reach it; the first post-heal message does.
	ch := make(chan *wire.Message, 4)
	go func() {
		for {
			m, err := fb.Recv()
			if err != nil {
				return
			}
			ch <- m
		}
	}()

	fb.SetFaults(Faults{Blackhole: true})
	fa.Send(fmsg("swallowed"))
	select {
	case m := <-ch:
		t.Fatalf("blackholed endpoint received %q", m.Topic)
	case <-time.After(50 * time.Millisecond):
	}

	// Healing restores delivery for traffic sent after the heal.
	fb.SetFaults(Faults{})
	fa.Send(fmsg("after-heal"))
	select {
	case m := <-ch:
		if m.Topic != "after-heal" {
			t.Fatalf("post-heal delivery got %q", m.Topic)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-heal message never delivered")
	}
}

func TestFaultyCloseUnblocksSender(t *testing.T) {
	a, b := Pipe("a", "b")
	fa := NewFaulty(a, 11)
	defer b.Close()
	fa.SetFaults(Faults{Delay: time.Hour})
	fa.Send(fmsg("stuck"))
	done := make(chan struct{})
	go func() {
		fa.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked behind a delayed delivery")
	}
	if err := fa.Send(fmsg("late")); err != ErrClosed {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}
