// Package chaosenv parses the environment knobs shared by the seeded
// chaos soaks, so a CI failure is reproducible locally with a single
// copy-paste:
//
//	FLUX_CHAOS_SEEDS=7,11 CHAOS_SOAK=30s go test ./... -run Soak -race
//
// FLUX_CHAOS_SEEDS is a comma-separated seed list: each soak runs once
// per seed (as a subtest named seed=N). The older single-seed CHAOS_SEED
// variable is still honoured when FLUX_CHAOS_SEEDS is unset.
package chaosenv

import (
	"os"
	"strconv"
	"strings"
	"time"
)

// Seeds returns the chaos seed list: FLUX_CHAOS_SEEDS (comma-separated
// int64s, malformed entries skipped), else CHAOS_SEED, else def.
func Seeds(def ...int64) []int64 {
	if v := os.Getenv("FLUX_CHAOS_SEEDS"); v != "" {
		var seeds []int64
		for _, f := range strings.Split(v, ",") {
			if n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64); err == nil {
				seeds = append(seeds, n)
			}
		}
		if len(seeds) > 0 {
			return seeds
		}
	}
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return []int64{n}
		}
	}
	return def
}

// Duration returns the soak length: CHAOS_SOAK (a Go duration), else def.
func Duration(def time.Duration) time.Duration {
	if v := os.Getenv("CHAOS_SOAK"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return def
}

// DumpDir returns the flight-recorder dump directory (FLUX_DUMP_DIR),
// or "" when unset. Soaks that find it set enable the session flight
// recorder there, so a CI failure ships its telemetry as an artifact.
func DumpDir() string { return os.Getenv("FLUX_DUMP_DIR") }
