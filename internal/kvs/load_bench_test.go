package kvs

import (
	"fmt"
	"testing"

	"fluxgo/internal/session"
)

// BenchmarkLoadFanout measures a cold deep read: a producer at the root
// commits one directory of 64 entries, then a leaf two hops down reads
// every entry with an empty slave cache, so each iteration pays the full
// fault-in fan-out (directory object plus all value objects) through the
// tree. Session setup and teardown are excluded from the timing.
func BenchmarkLoadFanout(b *testing.B) {
	const fanout = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := session.New(session.Options{
			Size:    4,
			Arity:   2,
			Modules: []session.ModuleFactory{Factory(ModuleConfig{})},
		})
		if err != nil {
			b.Fatal(err)
		}
		wh := s.Handle(0)
		w := NewClient(wh)
		for k := 0; k < fanout; k++ {
			if err := w.Put(fmt.Sprintf("fan.k%03d", k), k); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := w.Commit(); err != nil {
			b.Fatal(err)
		}
		rh := s.Handle(3)
		r := NewClient(rh)
		b.StartTimer()
		for k := 0; k < fanout; k++ {
			var v int
			if err := r.Get(fmt.Sprintf("fan.k%03d", k), &v); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		rh.Close()
		wh.Close()
		s.Close()
		b.StartTimer()
	}
}
