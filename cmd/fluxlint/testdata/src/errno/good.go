package errno

import (
	"fixture.example/fakes"
	"fixture.example/wire"
)

// Named aliases in either sanctioned convention are traceable.
const (
	errShutdown       = wire.ErrnoHostDown
	errnoLocalTimeout = wire.ErrnoTimedOut
)

func wireConstant(h *fakes.Handle, m *wire.Message) error {
	return h.RespondError(m, wire.ErrnoInval, "invalid argument")
}

func namedAliases(h *fakes.Handle, m *wire.Message) error {
	if err := h.RespondError(m, errShutdown, "shutting down"); err != nil {
		return err
	}
	return h.RespondError(m, errnoLocalTimeout, "deadline exceeded")
}

func literalRPCError(m *wire.Message) error {
	return &wire.RPCError{Topic: m.Topic, Errnum: wire.ErrnoNoSys, Msg: "not implemented"}
}

func handledResults(h *fakes.Handle, c *fakes.Conn, m *wire.Message) error {
	resp, err := h.RPC("kvs.get", 0, nil)
	if err != nil {
		return err
	}
	_ = resp
	if err := h.PublishEvent("job.done", nil); err != nil {
		return err
	}
	return c.Send(m)
}

// fireAndForget: Handle.Send returns nothing; ignoring it is fine.
func fireAndForget(h *fakes.Handle, m *wire.Message) {
	h.Send(m)
}
