package sched

import (
	"fmt"
	"sync"
	"time"

	"fluxgo/internal/resource"
)

// Hierarchical scheduling: a parent scheduler at coarse granularity
// leases disjoint resource subsets to child schedulers, which then run
// concurrently and independently over their leases — sibling jobs'
// independent Flux instances performing concurrent management services.
// The centralized baseline is the same workload driven through a single
// scheduler over the whole machine.

// Lease is one child scheduler's resource grant.
type Lease struct {
	Child int
	Pool  *resource.Pool
	Jobs  []*Job
}

// PartitionSpec describes how the parent divides the machine.
type PartitionSpec struct {
	Children int
	// NodesPerChild overrides the default equal split when > 0.
	NodesPerChild int
	// Cluster parameters for each child's lease subgraph.
	SocketsPerNode int
	CoresPerSocket int
}

// Partition builds leases: child i receives an independent resource
// subgraph of its share of nodes and every i-th job (round-robin, which
// preserves per-child arrival order).
func Partition(totalNodes int, spec PartitionSpec, jobs []*Job) ([]*Lease, error) {
	if spec.Children < 1 {
		return nil, fmt.Errorf("sched: partition into %d children", spec.Children)
	}
	per := spec.NodesPerChild
	if per == 0 {
		per = totalNodes / spec.Children
	}
	if per < 1 {
		return nil, fmt.Errorf("sched: %d nodes cannot split into %d children", totalNodes, spec.Children)
	}
	if spec.SocketsPerNode == 0 {
		spec.SocketsPerNode = 2
	}
	if spec.CoresPerSocket == 0 {
		spec.CoresPerSocket = 8
	}
	leases := make([]*Lease, spec.Children)
	for i := range leases {
		sub, err := resource.BuildCluster(resource.ClusterSpec{
			Name:           fmt.Sprintf("lease%d", i),
			Racks:          1,
			NodesPerRack:   per,
			SocketsPerNode: spec.SocketsPerNode,
			CoresPerSocket: spec.CoresPerSocket,
		})
		if err != nil {
			return nil, err
		}
		leases[i] = &Lease{Child: i, Pool: resource.NewPool(sub)}
	}
	for i, j := range jobs {
		l := leases[i%spec.Children]
		l.Jobs = append(l.Jobs, j)
	}
	return leases, nil
}

// HierarchyResult aggregates a hierarchical simulation.
type HierarchyResult struct {
	PerChild  []Metrics
	Makespan  time.Duration // max over children
	Completed int
	Decisions int
	WallTime  time.Duration // real time spent scheduling (parallelism gain)
}

// SimulateHierarchy runs each lease's scheduler concurrently and merges
// the results.
func SimulateHierarchy(leases []*Lease, newPolicy func() Policy) (HierarchyResult, error) {
	res := HierarchyResult{PerChild: make([]Metrics, len(leases))}
	errs := make([]error, len(leases))
	start := time.Now()
	var wg sync.WaitGroup
	for i, l := range leases {
		wg.Add(1)
		go func(i int, l *Lease) {
			defer wg.Done()
			res.PerChild[i], errs[i] = Simulate(l.Pool, newPolicy(), l.Jobs)
		}(i, l)
	}
	wg.Wait()
	res.WallTime = time.Since(start)
	for i := range leases {
		if errs[i] != nil {
			return res, fmt.Errorf("sched: child %d: %w", i, errs[i])
		}
		m := res.PerChild[i]
		res.Completed += m.Completed
		res.Decisions += m.Decisions
		if m.Makespan > res.Makespan {
			res.Makespan = m.Makespan
		}
	}
	return res, nil
}

// SimulateCentralized is the traditional-paradigm baseline: one
// scheduler, one queue, the whole machine.
func SimulateCentralized(totalNodes int, spec PartitionSpec, policy Policy, jobs []*Job) (Metrics, time.Duration, error) {
	if spec.SocketsPerNode == 0 {
		spec.SocketsPerNode = 2
	}
	if spec.CoresPerSocket == 0 {
		spec.CoresPerSocket = 8
	}
	cluster, err := resource.BuildCluster(resource.ClusterSpec{
		Name:           "central",
		Racks:          1,
		NodesPerRack:   totalNodes,
		SocketsPerNode: spec.SocketsPerNode,
		CoresPerSocket: spec.CoresPerSocket,
	})
	if err != nil {
		return Metrics{}, 0, err
	}
	start := time.Now()
	m, err := Simulate(resource.NewPool(cluster), policy, jobs)
	return m, time.Since(start), err
}
