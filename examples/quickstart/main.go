// Quickstart: bring up a comms session, use the KVS, synchronize with a
// barrier, and bulk-launch a program with output captured in the KVS.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"fluxgo"
	"fluxgo/internal/modules/wexec"
)

func main() {
	// A comms session: one CMB broker per (simulated) node, wired into
	// the event, request-tree, and ring overlay planes, with the standard
	// comms modules loaded (kvs, hb, live, log, group, barrier, wexec).
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Handles attach programs to their local broker, like flux_open().
	h := sess.Handle(5)
	defer h.Close()

	// The KVS: hierarchical keys over a content-addressed hash tree.
	kv := fluxgo.NewKVS(h)
	if err := kv.Put("app.config.iterations", 100); err != nil {
		log.Fatal(err)
	}
	if err := kv.Put("app.config.tolerance", 1e-6); err != nil {
		log.Fatal(err)
	}
	version, err := kv.Commit() // read-your-writes: visible on return
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed config as root version %d\n", version)

	// Any rank reads it; WaitVersion gives causal consistency.
	h2 := sess.Handle(2)
	defer h2.Close()
	kv2 := fluxgo.NewKVS(h2)
	kv2.WaitVersion(version)
	var iters int
	if err := kv2.Get("app.config.iterations", &iters); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank 2 sees app.config.iterations = %d\n", iters)

	// Collective barrier across 8 worker processes.
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			hp := sess.Handle(p)
			defer hp.Close()
			if err := fluxgo.Barrier(hp, "workers-ready", 8); err != nil {
				log.Fatal(err)
			}
		}(p)
	}
	wg.Wait()
	fmt.Println("all 8 workers passed the barrier")

	// Bulk-launch a program on every rank; stdio lands in the KVS.
	if _, err := fluxgo.Run(h, "hello-job", "hostname", nil, nil); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := wexec.Wait(ctx, h, "hello-job")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hello-job: %s (%d tasks)\n", res.State, res.NTasks)
	for r := 0; r < 3; r++ {
		stdout, _, _, err := wexec.Output(h, "hello-job", r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rank %d stdout: %q\n", r, stdout)
	}
}
