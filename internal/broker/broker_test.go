package broker

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox[int]()
	for i := 0; i < 100; i++ {
		if !m.Push(i) {
			t.Fatal("Push on open mailbox failed")
		}
	}
	for i := 0; i < 100; i++ {
		if got := <-m.Out(); got != i {
			t.Fatalf("got %d, want %d", got, i)
		}
	}
	m.Close()
	if m.Push(1) {
		t.Fatal("Push after Close succeeded")
	}
	if _, ok := <-m.Out(); ok {
		t.Fatal("Out not closed after Close+drain")
	}
}

func TestMailboxCloseDrains(t *testing.T) {
	m := NewMailbox[int]()
	m.Push(1)
	m.Push(2)
	m.Close()
	var got []int
	for v := range m.Out() {
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v, want [1 2]", got)
	}
}

func TestMailboxCloseNowDiscards(t *testing.T) {
	m := NewMailbox[int]()
	// Note: one element may already be parked in the pump's send; use Len
	// to verify queued items are dropped.
	for i := 0; i < 50; i++ {
		m.Push(i)
	}
	m.CloseNow()
	n := 0
	for range m.Out() {
		n++
	}
	if n > 1 {
		t.Fatalf("CloseNow delivered %d items, want <= 1", n)
	}
}

func TestMatchTopic(t *testing.T) {
	cases := []struct {
		prefix, topic string
		want          bool
	}{
		{"kvs", "kvs.setroot", true},
		{"kvs", "kvs", true},
		{"kvs", "kvsx.setroot", false},
		{"kvs.setroot", "kvs.setroot", true},
		{"kvs.setroot", "kvs", false},
		{"", "anything", true},
		{"hb", "hb", true},
	}
	for _, c := range cases {
		if got := matchTopic(c.prefix, c.topic); got != c.want {
			t.Errorf("matchTopic(%q, %q) = %v, want %v", c.prefix, c.topic, got, c.want)
		}
	}
}

// newBroker builds a started single-rank broker for unit tests.
func newBroker(t *testing.T) *Broker {
	t.Helper()
	b, err := New(Config{Rank: 0, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	t.Cleanup(b.Shutdown)
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Rank: 0, Size: 0}); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := New(Config{Rank: 5, Size: 2}); err == nil {
		t.Error("rank outside session accepted")
	}
}

func TestPingLocal(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	resp, err := h.RPC("cmb.ping", wire.NodeidAny, map[string]string{"pad": "x"})
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Rank int    `json:"rank"`
		Pad  string `json:"pad"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		t.Fatal(err)
	}
	if body.Rank != 0 || body.Pad != "x" {
		t.Fatalf("ping body %+v", body)
	}
}

func TestCmbInfoAndLsmod(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	resp, err := h.RPC("cmb.info", wire.NodeidAny, nil)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Rank, Size, Arity, Parent int
	}
	if err := resp.UnpackJSON(&info); err != nil {
		t.Fatal(err)
	}
	if info.Size != 1 || info.Parent != -1 {
		t.Fatalf("info %+v", info)
	}
	if _, err := h.RPC("cmb.lsmod", wire.NodeidAny, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownServiceReturnsNoSys(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	resp, err := h.RPC("nosuch.method", wire.NodeidAny, nil)
	if err == nil {
		t.Fatal("RPC to unknown service succeeded")
	}
	if resp == nil || resp.Errnum != ErrnoNoSys {
		t.Fatalf("errnum = %v, want ErrnoNoSys", resp)
	}
}

func TestUnknownCmbMethod(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	if _, err := h.RPC("cmb.bogus", wire.NodeidAny, nil); err == nil {
		t.Fatal("unknown cmb method succeeded")
	}
}

func TestInvalidNodeid(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	resp, err := h.RPC("cmb.ping", 500, nil)
	if err == nil {
		t.Fatal("RPC to out-of-session nodeid succeeded")
	}
	if resp.Errnum != ErrnoInval {
		t.Fatalf("errnum = %d, want ErrnoInval", resp.Errnum)
	}
}

func TestUpstreamAtRootFails(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	resp, err := h.RPC("cmb.ping", wire.NodeidUpstream, nil)
	if err == nil {
		t.Fatal("NodeidUpstream at root succeeded")
	}
	if resp.Errnum != ErrnoNoSys {
		t.Fatalf("errnum = %d, want ErrnoNoSys", resp.Errnum)
	}
}

func TestPublishSubscribe(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	sub, err := h.Subscribe("test")
	if err != nil {
		t.Fatal(err)
	}
	other, err := h.Subscribe("othertopic")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		seq, err := h.PublishEvent("test.ev", map[string]int{"i": i})
		if err != nil {
			t.Fatal(err)
		}
		if seq == 0 {
			t.Fatal("assigned seq 0")
		}
	}
	var last uint64
	for i := 1; i <= 5; i++ {
		select {
		case ev := <-sub.Chan():
			if ev.Seq <= last {
				t.Fatalf("event out of order: %d after %d", ev.Seq, last)
			}
			last = ev.Seq
			var body struct {
				I int `json:"i"`
			}
			if err := ev.UnpackJSON(&body); err != nil || body.I != i {
				t.Fatalf("event %d body %+v err %v", i, body, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("event %d not delivered", i)
		}
	}
	select {
	case ev := <-other.Chan():
		t.Fatalf("non-matching subscription received %s", ev.Topic)
	default:
	}
	sub.Close()
	if _, ok := <-sub.Chan(); ok {
		t.Fatal("subscription channel not closed by Close")
	}
}

// echoModule responds to <name>.echo with the request body and records
// events it sees.
type echoModule struct {
	name string
	subs []string
	h    *Handle
	mu   sync.Mutex
	evs  []string
	down bool
}

func (m *echoModule) Name() string            { return m.name }
func (m *echoModule) Subscriptions() []string { return m.subs }
func (m *echoModule) Init(h *Handle) error    { m.h = h; return nil }
func (m *echoModule) Shutdown() {
	m.mu.Lock()
	m.down = true
	m.mu.Unlock()
}

func (m *echoModule) events() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.evs...)
}

func (m *echoModule) Recv(msg *wire.Message) {
	if msg.Type == wire.Event {
		m.mu.Lock()
		m.evs = append(m.evs, msg.Topic)
		m.mu.Unlock()
		return
	}
	switch msg.Method() {
	case "echo":
		var body map[string]any
		msg.UnpackJSON(&body)
		if body == nil {
			body = map[string]any{}
		}
		body["rank"] = m.h.Rank()
		m.h.Respond(msg, body)
	case "fail":
		m.h.RespondError(msg, ErrnoInval, "requested failure")
	default:
		m.h.RespondError(msg, ErrnoNoSys, "unknown method")
	}
}

func TestModuleRequestDispatch(t *testing.T) {
	b := newBroker(t)
	mod := &echoModule{name: "echo"}
	if err := b.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	if !b.HasModule("echo") {
		t.Fatal("HasModule = false after load")
	}
	h := b.NewHandle()
	defer h.Close()
	resp, err := h.RPC("echo.echo", wire.NodeidAny, map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	resp.UnpackJSON(&body)
	if body["k"] != "v" {
		t.Fatalf("echo body %+v", body)
	}
	if _, err := h.RPC("echo.fail", wire.NodeidAny, nil); err == nil {
		t.Fatal("echo.fail returned success")
	}
}

func TestModuleReceivesSubscribedEvents(t *testing.T) {
	b := newBroker(t)
	mod := &echoModule{name: "watcher", subs: []string{"interesting"}}
	if err := b.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	h := b.NewHandle()
	defer h.Close()
	if _, err := h.PublishEvent("interesting.thing", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.PublishEvent("boring.thing", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		evs := mod.events()
		if len(evs) >= 1 {
			if evs[0] != "interesting.thing" || len(evs) > 1 {
				t.Fatalf("module events %v", evs)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("module never received event")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestRPCContextCancel(t *testing.T) {
	b, err := New(Config{Rank: 1, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 with no parent link attached: an upstream RPC can never
	// complete, so cancellation must unblock it.
	b.Start()
	defer b.Shutdown()
	// swallow the request silently by attaching a parent that never answers
	p, _ := transport.Pipe("rank:0", "rank:1")
	b.AttachConn(LinkParentTree, p)
	h := b.NewHandle()
	defer h.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := h.RPCContext(ctx, "slow.op", wire.NodeidAny, nil); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestHandleCloseFailsPendingRPC(t *testing.T) {
	b, err := New(Config{Rank: 1, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Shutdown()
	p, _ := transport.Pipe("rank:0", "rank:1")
	b.AttachConn(LinkParentTree, p)
	h := b.NewHandle()
	errc := make(chan error, 1)
	go func() {
		_, err := h.RPC("slow.op", wire.NodeidAny, nil)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	h.Close()
	select {
	case err := <-errc:
		if !ErrShutdown(err) {
			t.Fatalf("err = %v, want shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending RPC not failed by Close")
	}
}

func TestShutdownFailsRPCs(t *testing.T) {
	b, err := New(Config{Rank: 1, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	p, _ := transport.Pipe("rank:0", "rank:1")
	b.AttachConn(LinkParentTree, p)
	h := b.NewHandle()
	errc := make(chan error, 1)
	go func() {
		_, err := h.RPC("slow.op", wire.NodeidAny, nil)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Shutdown()
	select {
	case err := <-errc:
		if !ErrShutdown(err) {
			t.Fatalf("err = %v, want shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RPC not failed by Shutdown")
	}
	// Operations after shutdown fail fast.
	if _, err := h.RPC("x.y", wire.NodeidAny, nil); !ErrShutdown(err) {
		t.Fatalf("post-shutdown RPC err = %v", err)
	}
	if err := h.Send("x.y", wire.NodeidAny, nil); !ErrShutdown(err) {
		t.Fatalf("post-shutdown Send err = %v", err)
	}
	if _, err := h.Subscribe("x"); !ErrShutdown(err) {
		t.Fatalf("post-shutdown Subscribe err = %v", err)
	}
	b.Shutdown() // idempotent
}

func TestModuleShutdownCalled(t *testing.T) {
	b, err := New(Config{Rank: 0, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	mod := &echoModule{name: "m"}
	if err := b.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	b.Start()
	b.Shutdown()
	mod.mu.Lock()
	down := mod.down
	mod.mu.Unlock()
	if !down {
		t.Fatal("module Shutdown not called")
	}
}

// TestLiveModuleUpgrade: unload a service and load a replacement while
// the broker keeps running — the paper's live-software-upgrade
// requirement.
func TestLiveModuleUpgrade(t *testing.T) {
	b := newBroker(t)
	v1 := &echoModule{name: "svc"}
	if err := b.LoadModule(v1); err != nil {
		t.Fatal(err)
	}
	h := b.NewHandle()
	defer h.Close()
	if _, err := h.RPC("svc.echo", wire.NodeidAny, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.UnloadModule("svc"); err != nil {
		t.Fatal(err)
	}
	v1.mu.Lock()
	down := v1.down
	v1.mu.Unlock()
	if !down {
		t.Fatal("old instance's Shutdown not called")
	}
	// The service is gone: requests now fail with ENOSYS at this root.
	resp, err := h.RPC("svc.echo", wire.NodeidAny, nil)
	if err == nil || resp.Errnum != ErrnoNoSys {
		t.Fatalf("unloaded service answered: %v %v", resp, err)
	}
	// Load the upgraded instance; service resumes.
	v2 := &echoModule{name: "svc"}
	if err := b.LoadModule(v2); err != nil {
		t.Fatal(err)
	}
	resp, err = h.RPC("svc.echo", wire.NodeidAny, map[string]string{"v": "2"})
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	resp.UnpackJSON(&body)
	if body["v"] != "2" {
		t.Fatalf("upgraded service response %v", body)
	}
	// Unloading an unknown module errors.
	if err := b.UnloadModule("nosuch"); err == nil {
		t.Fatal("unload of unknown module succeeded")
	}
	// The RPC surface (cmb.rmmod) works too.
	if _, err := h.RPC("cmb.rmmod", wire.NodeidAny, map[string]string{"name": "svc"}); err != nil {
		t.Fatal(err)
	}
	if b.HasModule("svc") {
		t.Fatal("module survived cmb.rmmod")
	}
	if _, err := h.RPC("cmb.rmmod", wire.NodeidAny, map[string]string{"name": ""}); err == nil {
		t.Fatal("rmmod without a name accepted")
	}
	if _, err := h.RPC("cmb.rmmod", wire.NodeidAny, map[string]string{"name": "ghost"}); err == nil {
		t.Fatal("rmmod of unknown module accepted")
	}
}

func TestModuleInitFailure(t *testing.T) {
	b := newBroker(t)
	bad := &failInitModule{}
	if err := b.LoadModule(bad); err == nil {
		t.Fatal("LoadModule with failing Init succeeded")
	}
	if b.HasModule("badmod") {
		t.Fatal("failed module registered")
	}
}

type failInitModule struct{}

func (failInitModule) Name() string            { return "badmod" }
func (failInitModule) Subscriptions() []string { return nil }
func (failInitModule) Init(h *Handle) error    { return fmt.Errorf("nope") }
func (failInitModule) Recv(msg *wire.Message)  {}
func (failInitModule) Shutdown()               {}

func TestCmbStatsRPC(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	h.PublishEvent("s.e", nil)
	resp, err := h.RPC("cmb.stats", wire.NodeidAny, nil)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		EventsPublished uint64 `json:"events_published"`
		LastEventSeq    uint64 `json:"last_event_seq"`
		RequestsRouted  uint64 `json:"requests_routed"`
		Metrics         struct {
			Counters map[string]uint64 `json:"counters"`
			Hists    map[string]struct {
				Count uint64 `json:"count"`
			} `json:"hists"`
		} `json:"metrics"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		t.Fatal(err)
	}
	if body.EventsPublished != 1 || body.LastEventSeq != 1 {
		t.Fatalf("stats %+v", body)
	}
	if body.RequestsRouted == 0 {
		t.Fatal("requests_routed not counted")
	}
	// The registry snapshot rides along: counters must agree with the
	// flat fields, and the hot-path histograms must have observations.
	if body.Metrics.Counters["cmb.events_published"] != 1 {
		t.Fatalf("registry counters %v", body.Metrics.Counters)
	}
	if body.Metrics.Hists["cmb.route_request_ns"].Count == 0 {
		t.Fatal("route_request_ns histogram empty")
	}
}

func TestStatsCounters(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	h.RPC("cmb.ping", wire.NodeidAny, nil)
	h.PublishEvent("e.v", nil)
	st := b.Stats()
	if st.RequestsRouted == 0 || st.ResponsesRouted == 0 || st.EventsPublished != 1 || st.EventsApplied != 1 {
		t.Fatalf("stats %+v", st)
	}
}
