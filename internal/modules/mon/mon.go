// Package mon implements the monitoring comms module of Table I:
// heartbeat-synchronized sampling whose samples are reduced up the tree
// and stored in the KVS.
//
// Where the paper activates Linux scripts stored in the KVS, this
// reproduction registers Go sampler functions (the simulation substitute
// documented in DESIGN.md); the data path is identical: heartbeat tick →
// local sample → tree reduction → KVS record at the root.
package mon

import (
	"fmt"
	"sync"

	"fluxgo/internal/broker"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// Sampler produces one named measurement at a rank.
type Sampler func(rank int) (name string, value float64)

// Agg is a distributive aggregate of one metric across ranks.
type Agg struct {
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// merge folds other into a.
func (a *Agg) merge(other Agg) {
	if a.Count == 0 {
		*a = other
		return
	}
	a.Sum += other.Sum
	a.Count += other.Count
	if other.Min < a.Min {
		a.Min = other.Min
	}
	if other.Max > a.Max {
		a.Max = other.Max
	}
}

// reduceBody carries partial aggregates upstream.
type reduceBody struct {
	Epoch   uint64         `json:"epoch"`
	Ranks   int            `json:"ranks"` // ranks contributing to this partial
	Metrics map[string]Agg `json:"metrics"`
}

// ctlBody is the mon.ctl event payload controlling sampling.
type ctlBody struct {
	Enable bool   `json:"enable"`
	Stride uint64 `json:"stride"` // sample every Stride-th heartbeat epoch
}

// Config parameterizes the mon module.
type Config struct {
	Samplers []Sampler
	// KVSPrefix is where completed epoch records are stored; defaults to
	// "mon".
	KVSPrefix string
	// BrokerMetrics, when set, additionally samples every counter and
	// gauge in the broker's metrics registry on sampling epochs, riding
	// the same tree reduction into the root KVS. The resulting aggregates
	// are session-wide: Sum totals a counter across all ranks while
	// Min/Max expose per-rank imbalance (e.g. a hot-spot broker routing
	// far more requests than its siblings).
	BrokerMetrics bool
}

// epochState accumulates one epoch's reduction at one instance.
type epochState struct {
	ranks   int
	metrics map[string]Agg
	unsent  bool
}

// Module is one mon module instance.
type Module struct {
	cfg Config
	h   *broker.Handle
	kc  *kvs.Client

	wg sync.WaitGroup // background reduce RPCs, drained by Shutdown

	mu      sync.Mutex
	enabled bool
	stride  uint64
	epochs  map[uint64]*epochState
}

// New returns a mon module instance.
func New(cfg Config) *Module {
	if cfg.KVSPrefix == "" {
		cfg.KVSPrefix = "mon"
	}
	return &Module{cfg: cfg, epochs: map[uint64]*epochState{}}
}

// Factory loads mon at every rank.
func Factory(cfg Config) func(rank, size int) broker.Module {
	return func(rank, size int) broker.Module { return New(cfg) }
}

// Name implements broker.Module.
func (m *Module) Name() string { return "mon" }

// Subscriptions implements broker.Module.
func (m *Module) Subscriptions() []string {
	return []string{hb.EventTopic, "mon.ctl", wire.EventLeave}
}

// Init implements broker.Module.
func (m *Module) Init(h *broker.Handle) error {
	m.h = h
	m.kc = kvs.NewClient(h)
	return nil
}

// Shutdown implements broker.Module.
func (m *Module) Shutdown() { m.wg.Wait() }

// Recv implements broker.Module.
func (m *Module) Recv(msg *wire.Message) {
	switch {
	case msg.Type == wire.Event && msg.Topic == "mon.ctl":
		var body ctlBody
		if err := msg.UnpackJSON(&body); err != nil {
			return
		}
		m.mu.Lock()
		m.enabled = body.Enable
		m.stride = body.Stride
		if m.stride == 0 {
			m.stride = 1
		}
		m.mu.Unlock()
	case msg.Type == wire.Event && msg.Topic == hb.EventTopic:
		m.onHeartbeat(msg)
	case msg.Type == wire.Event && msg.Topic == wire.EventLeave:
		m.onLeave()
	case msg.Type == wire.Request && msg.Method() == "reduce":
		m.recvReduce(msg)
	case msg.Type == wire.Request:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("mon: unknown method %q", msg.Method()))
	}
}

// onHeartbeat takes local samples on sampling epochs.
func (m *Module) onHeartbeat(msg *wire.Message) {
	var body hb.Body
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.mu.Lock()
	active := m.enabled && body.Epoch%m.stride == 0
	m.mu.Unlock()
	if !active || (len(m.cfg.Samplers) == 0 && !m.cfg.BrokerMetrics) {
		return
	}
	metrics := map[string]Agg{}
	fold := func(name string, v float64) {
		agg := metrics[name]
		agg.merge(Agg{Sum: v, Min: v, Max: v, Count: 1})
		metrics[name] = agg
	}
	for _, s := range m.cfg.Samplers {
		name, v := s(m.h.Rank())
		fold(name, v)
	}
	if m.cfg.BrokerMetrics {
		snap := m.h.Broker().Metrics().Snapshot()
		for name, v := range snap.Counters {
			fold(name, float64(v))
		}
		for name, v := range snap.Gauges {
			fold(name, float64(v))
		}
	}
	m.contribute(body.Epoch, 1, metrics)
}

// recvReduce folds a child's partial aggregate into ours.
func (m *Module) recvReduce(msg *wire.Message) {
	var body reduceBody
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	m.contribute(body.Epoch, body.Ranks, body.Metrics)
	m.h.Respond(msg, struct{}{})
}

// contribute merges a partial into the epoch state and, at the root,
// finalizes when every rank has reported.
func (m *Module) contribute(epoch uint64, ranks int, metrics map[string]Agg) {
	m.mu.Lock()
	st := m.epochs[epoch]
	if st == nil {
		st = &epochState{metrics: map[string]Agg{}}
		m.epochs[epoch] = st
	}
	st.ranks += ranks
	st.unsent = true
	for name, agg := range metrics {
		cur := st.metrics[name]
		cur.merge(agg)
		st.metrics[name] = cur
	}
	// An epoch completes when every *live* rank has contributed: the
	// membership view, not the founding size, is the reduction's target
	// (a session that grew expects more partials, one that shrank fewer).
	complete := m.h.Rank() == 0 && st.ranks >= m.h.LiveSize()
	if complete {
		delete(m.epochs, epoch)
	}
	m.mu.Unlock()
	if complete {
		m.finalize(epoch, st)
	}
}

// onLeave re-checks pending epochs at the root: the live size just
// dropped and the departed rank's contribution may never arrive, so an
// epoch stuck waiting on it may now be complete.
func (m *Module) onLeave() {
	if m.h.Rank() != 0 {
		return
	}
	live := m.h.LiveSize()
	done := map[uint64]*epochState{}
	m.mu.Lock()
	for epoch, st := range m.epochs {
		if st.ranks >= live {
			done[epoch] = st
			delete(m.epochs, epoch)
		}
	}
	m.mu.Unlock()
	for epoch, st := range done {
		m.finalize(epoch, st)
	}
}

// finalize stores the completed epoch record in the KVS (root only).
func (m *Module) finalize(epoch uint64, st *epochState) {
	for name, agg := range st.metrics {
		key := fmt.Sprintf("%s.%s.epoch-%d", m.cfg.KVSPrefix, name, epoch)
		record := map[string]any{
			"sum": agg.Sum, "min": agg.Min, "max": agg.Max,
			"count": agg.Count, "avg": agg.Sum / float64(agg.Count),
		}
		if err := m.kc.Put(key, record); err != nil {
			return
		}
	}
	if _, err := m.kc.Commit(); err != nil {
		return
	}
	if _, err := m.h.PublishEvent("mon.epoch", map[string]uint64{"epoch": epoch}); err != nil {
		m.h.Log(obs.LevelWarn, "mon", "epoch %d event publish failed: %v", epoch, err)
	}
}

// Idle implements broker.IdleBatcher: slaves forward accumulated partial
// aggregates upstream.
func (m *Module) Idle() {
	if m.h.Rank() == 0 {
		return
	}
	m.mu.Lock()
	var batches []reduceBody
	for epoch, st := range m.epochs {
		if !st.unsent {
			continue
		}
		batches = append(batches, reduceBody{Epoch: epoch, Ranks: st.ranks, Metrics: st.metrics})
		delete(m.epochs, epoch)
	}
	m.mu.Unlock()
	for _, b := range batches {
		batch := b
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			if _, err := m.h.RPC("mon.reduce", wire.NodeidUpstream, batch); err != nil {
				// Merge the partial back so the next Idle pass retries
				// it instead of silently losing the contribution.
				m.h.Log(obs.LevelWarn, "mon", "reduce epoch %d failed, requeued: %v", batch.Epoch, err)
				m.contribute(batch.Epoch, batch.Ranks, batch.Metrics)
			}
		}()
	}
}

// Enable turns sampling on session-wide, sampling every stride-th epoch.
func Enable(h *broker.Handle, stride uint64) error {
	_, err := h.PublishEvent("mon.ctl", ctlBody{Enable: true, Stride: stride})
	return err
}

// Disable turns sampling off session-wide.
func Disable(h *broker.Handle) error {
	_, err := h.PublishEvent("mon.ctl", ctlBody{Enable: false})
	return err
}
