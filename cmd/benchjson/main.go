// Command benchjson converts `go test -bench` text output into JSON so
// benchmark runs can be archived and diffed (the CI bench job pipes
// through it to produce BENCH_core.json). Only the standard library is
// used — no x/perf dependency.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 3 ./... | benchjson -label after -o BENCH_core.json
//
// Repeated runs of one benchmark (from -count N) are kept as samples
// under a single result, with the minimum ns/op surfaced alongside —
// the conventional noise-resistant summary for latency-style
// benchmarks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// sample is one benchmark line (one -count repetition).
type sample struct {
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op,omitempty"`
	AllocsOp int64   `json:"allocs_per_op,omitempty"`
}

// result groups the samples of one benchmark in one package.
type result struct {
	Pkg       string   `json:"pkg,omitempty"`
	Name      string   `json:"name"`
	Samples  []sample `json:"samples"`
	MinNsOp  float64  `json:"min_ns_per_op"`
	MinBOp   int64    `json:"min_bytes_per_op,omitempty"`
	MinAlloc int64    `json:"min_allocs_per_op,omitempty"`
}

type output struct {
	Label   string    `json:"label,omitempty"`
	Goos    string    `json:"goos,omitempty"`
	Goarch  string    `json:"goarch,omitempty"`
	CPU     string    `json:"cpu,omitempty"`
	Results []*result `json:"results"`
}

func main() {
	label := flag.String("label", "", "label recorded in the output (e.g. baseline, after)")
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	out := output{Label: *label}
	byKey := map[string]*result{}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, s, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			key := pkg + "\x00" + name
			r := byKey[key]
			if r == nil {
				r = &result{Pkg: pkg, Name: name}
				byKey[key] = r
				out.Results = append(out.Results, r)
			}
			r.Samples = append(r.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	for _, r := range out.Results {
		for i, s := range r.Samples {
			if i == 0 || s.NsPerOp < r.MinNsOp {
				r.MinNsOp = s.NsPerOp
			}
			if i == 0 || s.BPerOp < r.MinBOp {
				r.MinBOp = s.BPerOp
			}
			if i == 0 || s.AllocsOp < r.MinAlloc {
				r.MinAlloc = s.AllocsOp
			}
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(out.Results), *outPath)
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8  1234  93.2 ns/op  320 B/op  1 allocs/op
//
// The GOMAXPROCS suffix is stripped from the name; B/op and allocs/op
// are optional (absent without -benchmem).
func parseBenchLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s sample
	var err error
	if s.Iters, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", sample{}, false
	}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if s.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
				ok = true
			}
		case "B/op":
			s.BPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			s.AllocsOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return name, s, ok
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
