package deadline

import (
	"context"

	"fixture.example/fakes"
)

// Threading the caller's context is the point of the rule.
func threaded(ctx context.Context, h *fakes.Handle) error {
	_, err := h.RPCContext(ctx, "kvs.get", 0, nil)
	return err
}

// Contexts derived from the parameter count as threading.
func derived(ctx context.Context, h *fakes.Handle) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	_, err := h.RPCWithOptions(sub, "kvs.get", 0, nil, fakes.RPCOptions{})
	return err
}

// No context parameter: bare RPC is the sanctioned blocking call.
func noCtx(h *fakes.Handle) error {
	_, err := h.RPC("kvs.get", 0, nil)
	return err
}

// A closure without a surrounding context parameter is likewise free.
func noCtxClosure(h *fakes.Handle) {
	f := func() {
		_, _ = h.RPC("kvs.get", 0, nil)
	}
	f()
}

// A closure that takes its own context must thread that one.
func ownCtxClosure(h *fakes.Handle) {
	f := func(ctx context.Context) error {
		_, err := h.RPCContext(ctx, "kvs.get", 0, nil)
		return err
	}
	_ = f(context.Background())
}
