// Command kap runs the KVS Access Patterns benchmark and regenerates
// the paper's evaluation figures (Section V) as text tables or CSV.
//
// Examples:
//
//	kap -fig 2                 # producer-phase latency vs producers, per value size
//	kap -fig 3                 # fence latency, unique vs redundant values
//	kap -fig 4a                # consumer latency, single directory
//	kap -fig 4b                # consumer latency, directories of <=128 entries
//	kap -fig model             # fit and validate the log2(C)*T(G) model
//	kap -ranks 8,16,32,64 -procs 4 -fig all
//	kap -custom -producers 64 -consumers 64 -vsize 512   # one-off run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fluxgo/internal/kap"
	"fluxgo/internal/model"
	"fluxgo/internal/obs"
)

var (
	figFlag    = flag.String("fig", "all", "figure to regenerate: 2, 3, 4a, 4b, model, arity, all")
	ranksFlag  = flag.String("ranks", "8,16,32,64", "comma-separated session sizes (simulated nodes)")
	procsFlag  = flag.Int("procs", 4, "processes per rank (paper: 16)")
	vsizesFlag = flag.String("vsizes", "8,32,128,512,2048,8192,32768", "value sizes for figs 2-3")
	accessFlag = flag.String("access", "1,4,16,64", "per-consumer access counts for fig 4")
	arityFlag  = flag.Int("arity", 2, "comms tree fan-out")
	csvFlag    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonFlag   = flag.String("json", "", "also write every run's per-op latency percentiles to this JSON file (e.g. BENCH_kap.json)")

	repsFlag      = flag.Int("reps", 1, "repetitions per point; the minimum latency is reported")
	customFlag    = flag.Bool("custom", false, "run one custom configuration instead of a figure sweep")
	producersFlag = flag.Int("producers", 0, "custom: producer count (0 = all processes)")
	consumersFlag = flag.Int("consumers", 0, "custom: consumer count (0 = all processes)")
	vsizeFlag     = flag.Int("vsize", 8, "custom: value size")
	putsFlag      = flag.Int("puts", 1, "custom: puts per producer")
	dirFlag       = flag.Int("dirfanout", 0, "custom: max objects per directory (0 = single dir)")
	redundantFlag = flag.Bool("redundant", false, "custom: redundant values")
	strideFlag    = flag.Int("stride", 1, "custom: consumer access stride")
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	flag.Parse()
	ranks, err := parseInts(*ranksFlag)
	fatalIf(err)
	vsizes, err := parseInts(*vsizesFlag)
	fatalIf(err)
	accesses, err := parseInts(*accessFlag)
	fatalIf(err)

	if *customFlag {
		runCustom(ranks)
		flushJSON()
		return
	}
	defer flushJSON()
	switch *figFlag {
	case "2":
		fig2(ranks, vsizes)
	case "3":
		fig3(ranks, vsizes)
	case "4a":
		fig4(ranks, accesses, 0)
	case "4b":
		fig4(ranks, accesses, 128)
	case "model":
		figModel(ranks)
	case "arity":
		figArity(ranks)
	case "all":
		fig2(ranks, vsizes)
		fig3(ranks, vsizes)
		fig4(ranks, accesses, 0)
		fig4(ranks, accesses, 128)
		figModel(ranks)
		figArity(ranks)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figFlag)
		os.Exit(2)
	}
}

// opSummary is one operation's latency distribution in a bench record.
type opSummary struct {
	Count  uint64  `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func summarize(s obs.HistSnapshot) opSummary {
	toMS := func(ns uint64) float64 { return float64(ns) / 1e6 }
	return opSummary{
		Count: s.Count,
		P50MS: toMS(s.P50NS), P95MS: toMS(s.P95NS), P99MS: toMS(s.P99NS),
		MeanMS: toMS(s.MeanNS()), MaxMS: toMS(s.MaxNS),
	}
}

// benchRecord is one KAP run in the -json output.
type benchRecord struct {
	Ranks       int     `json:"ranks"`
	Procs       int     `json:"procs_per_rank"`
	Producers   int     `json:"producers"`
	Consumers   int     `json:"consumers"`
	ValueSize   int     `json:"value_size"`
	AccessCount int     `json:"access_count"`
	DirFanout   int     `json:"dir_fanout"`
	Redundant   bool    `json:"redundant"`
	Arity       int     `json:"arity"`
	ProducerMS  float64 `json:"producer_ms"`
	SyncMS      float64 `json:"sync_ms"`
	ConsumerMS  float64 `json:"consumer_ms"`

	Put   opSummary `json:"put"`
	Fence opSummary `json:"fence"`
	Get   opSummary `json:"get"`
}

// benchRecords accumulates every executed run for -json. The sweeps run
// sequentially, so no locking is needed.
var benchRecords []benchRecord

func record(res kap.Result) {
	p := res.Params
	msf := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	benchRecords = append(benchRecords, benchRecord{
		Ranks: p.Ranks, Procs: p.ProcsPerRank,
		Producers: p.Producers, Consumers: p.Consumers,
		ValueSize: p.ValueSize, AccessCount: p.AccessCount,
		DirFanout: p.DirFanout, Redundant: p.Redundant, Arity: p.Arity,
		ProducerMS: msf(res.Producer), SyncMS: msf(res.Sync), ConsumerMS: msf(res.Consumer),
		Put: summarize(res.PutHist), Fence: summarize(res.FenceHist), Get: summarize(res.GetHist),
	})
}

// flushJSON writes the accumulated records to the -json path.
func flushJSON() {
	if *jsonFlag == "" {
		return
	}
	out := map[string]any{"benchmark": "kap", "records": benchRecords}
	data, err := json.MarshalIndent(out, "", "  ")
	fatalIf(err)
	fatalIf(os.WriteFile(*jsonFlag, append(data, '\n'), 0o644))
	fmt.Fprintf(os.Stderr, "kap: wrote %d records to %s\n", len(benchRecords), *jsonFlag)
}

// runMin runs one configuration repsFlag times and keeps the per-phase
// minimum, the standard way to suppress scheduler noise in latency
// measurements. Per-op histograms keep the first rep's distribution
// (warm-up noise is a max-latency problem; percentile shapes are
// stable).
func runMin(p kap.Params) (kap.Result, error) {
	reps := *repsFlag
	if reps < 1 {
		reps = 1
	}
	var best kap.Result
	for i := 0; i < reps; i++ {
		res, err := kap.Run(p)
		if err != nil {
			return res, err
		}
		if i == 0 {
			best = res
			continue
		}
		if res.Producer < best.Producer {
			best.Producer = res.Producer
		}
		if res.Sync < best.Sync {
			best.Sync = res.Sync
		}
		if res.Consumer < best.Consumer {
			best.Consumer = res.Consumer
		}
	}
	record(best)
	return best, nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kap:", err)
		os.Exit(1)
	}
}

// emit prints one table: header columns, then one row per rank size.
func emit(title string, header []string, rows [][]string) {
	if *csvFlag {
		fmt.Printf("# %s\n%s\n", title, strings.Join(header, ","))
		for _, r := range rows {
			fmt.Println(strings.Join(r, ","))
		}
		fmt.Println()
		return
	}
	fmt.Printf("== %s ==\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Printf("%-*s  ", widths[i], c)
		}
		fmt.Println()
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	fmt.Println()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// fig2: producer-phase max latency vs producer count, per value size.
func fig2(ranks, vsizes []int) {
	header := []string{"producers"}
	for _, v := range vsizes {
		header = append(header, fmt.Sprintf("vsize-%d(ms)", v))
	}
	var rows [][]string
	for _, r := range ranks {
		total := r * *procsFlag
		row := []string{strconv.Itoa(total)}
		for _, v := range vsizes {
			res, err := runMin(kap.Params{
				Ranks: r, ProcsPerRank: *procsFlag,
				Producers: total, Consumers: total,
				ValueSize: v, AccessCount: 1, Arity: *arityFlag,
			})
			fatalIf(err)
			row = append(row, ms(res.Producer))
		}
		rows = append(rows, row)
	}
	emit("Figure 2: max producer-phase (kvs_put) latency", header, rows)
}

// fig3: fence latency vs producers, unique and redundant value series.
func fig3(ranks, vsizes []int) {
	header := []string{"producers"}
	for _, v := range vsizes {
		header = append(header, fmt.Sprintf("vsize-%d(ms)", v), fmt.Sprintf("red-vsize-%d(ms)", v))
	}
	var rows [][]string
	for _, r := range ranks {
		total := r * *procsFlag
		row := []string{strconv.Itoa(total)}
		for _, v := range vsizes {
			for _, red := range []bool{false, true} {
				res, err := runMin(kap.Params{
					Ranks: r, ProcsPerRank: *procsFlag,
					Producers: total, Consumers: total,
					ValueSize: v, Redundant: red, AccessCount: 1, Arity: *arityFlag,
				})
				fatalIf(err)
				row = append(row, ms(res.Sync))
			}
		}
		rows = append(rows, row)
	}
	emit("Figure 3: max synchronization-phase (kvs_fence) latency, unique vs redundant values", header, rows)
}

// fig4: consumer latency vs consumers per access count, for one
// directory layout (fanout 0 = Fig 4(a); fanout 128 = Fig 4(b)).
func fig4(ranks, accesses []int, fanout int) {
	name := "Figure 4(a): max consumer-phase (kvs_get) latency, single directory"
	if fanout > 0 {
		name = fmt.Sprintf("Figure 4(b): max consumer-phase latency, directories of <=%d objects", fanout)
	}
	header := []string{"consumers"}
	for _, a := range accesses {
		header = append(header, fmt.Sprintf("access-%d(ms)", a))
	}
	var rows [][]string
	for _, r := range ranks {
		total := r * *procsFlag
		row := []string{strconv.Itoa(total)}
		for _, a := range accesses {
			res, err := runMin(kap.Params{
				Ranks: r, ProcsPerRank: *procsFlag,
				Producers: total, Consumers: total,
				ValueSize: 8, AccessCount: a, DirFanout: fanout, Arity: *arityFlag,
			})
			fatalIf(err)
			row = append(row, ms(res.Consumer))
		}
		rows = append(rows, row)
	}
	emit(name, header, rows)
}

// figModel validates the paper's analytic model, latency =
// log2(C) x T(G): the max consumer latency equals tree depth times the
// per-level replication time. Two of the paper's conditions are
// enforced so the logarithmic regime is observable: G is held constant
// regardless of scale (a fixed 32-object universe), and aggregate load
// is kept off the critical path by measuring a single consumer at the
// deepest rank, whose gets must replicate all G objects through every
// cache level on its root path. (In-process sessions share one
// machine's cores, so fully populated consumer sweeps measure CPU
// saturation, not path depth — see EXPERIMENTS.md.)
func figModel(ranks []int) {
	const fixedObjects = 32
	var consumers []int
	var latencies []time.Duration
	for _, r := range ranks {
		total := r * *procsFlag
		prod := fixedObjects
		if prod > total {
			prod = total
		}
		res, err := runMin(kap.Params{
			Ranks: r, ProcsPerRank: *procsFlag,
			Producers: prod, Consumers: 1, DeepConsumers: true,
			ValueSize: 8, AccessCount: fixedObjects, Arity: *arityFlag,
		})
		fatalIf(err)
		// The "C" of the model counts cache levels: the deep consumer's
		// path has log2(ranks) of them.
		consumers = append(consumers, r)
		latencies = append(latencies, res.Consumer)
	}
	T, err := model.FitReplicateTime(consumers, latencies)
	fatalIf(err)
	r2 := model.RSquared(consumers, latencies, T)
	header := []string{"consumers", "measured(ms)", "model(ms)"}
	var rows [][]string
	for i, c := range consumers {
		rows = append(rows, []string{
			strconv.Itoa(c), ms(latencies[i]), ms(model.ConsumerLatency(c, T)),
		})
	}
	emit(fmt.Sprintf("Model: latency = log2(C) x T(G); fitted T(G) = %s ms, R^2 = %.3f", ms(T), r2),
		header, rows)
}

// figArity is the tree-shape ablation ("the tree shape is
// configurable"): fence latency per tree fan-out, fixed vsize 2048.
func figArity(ranks []int) {
	arities := []int{2, 4, 8, 16}
	header := []string{"producers"}
	for _, a := range arities {
		header = append(header, fmt.Sprintf("arity-%d(ms)", a))
	}
	var rows [][]string
	for _, r := range ranks {
		total := r * *procsFlag
		row := []string{strconv.Itoa(total)}
		for _, a := range arities {
			res, err := runMin(kap.Params{
				Ranks: r, ProcsPerRank: *procsFlag,
				Producers: total, Consumers: total,
				ValueSize: 2048, AccessCount: 1, Arity: a,
			})
			fatalIf(err)
			row = append(row, ms(res.Sync))
		}
		rows = append(rows, row)
	}
	emit("Ablation: kvs_fence latency by tree arity (vsize 2048)", header, rows)
}

// runCustom executes one explicit configuration per rank size.
func runCustom(ranks []int) {
	header := []string{"ranks", "procs", "producers", "consumers",
		"setup(ms)", "producer(ms)", "sync(ms)", "consumer(ms)", "total(ms)"}
	var rows [][]string
	for _, r := range ranks {
		total := r * *procsFlag
		prod, cons := *producersFlag, *consumersFlag
		if prod == 0 {
			prod = total
		}
		if cons == 0 {
			cons = total
		}
		res, err := kap.Run(kap.Params{
			Ranks: r, ProcsPerRank: *procsFlag,
			Producers: prod, Consumers: cons,
			ValueSize: *vsizeFlag, PutsPerProducer: *putsFlag,
			AccessCount: *accessFlag2(), Stride: *strideFlag,
			DirFanout: *dirFlag, Redundant: *redundantFlag, Arity: *arityFlag,
		})
		fatalIf(err)
		record(res)
		rows = append(rows, []string{
			strconv.Itoa(r), strconv.Itoa(*procsFlag),
			strconv.Itoa(prod), strconv.Itoa(cons),
			ms(res.Setup), ms(res.Producer), ms(res.Sync), ms(res.Consumer), ms(res.Total),
		})
	}
	emit("custom KAP run", header, rows)
}

// accessFlag2 resolves the custom access count from the -access list's
// first element.
func accessFlag2() *int {
	v := 1
	if parts, err := parseInts(*accessFlag); err == nil && len(parts) > 0 {
		v = parts[0]
	}
	return &v
}
