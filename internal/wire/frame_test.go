package wire

import (
	"bytes"
	"sync"
	"testing"
)

// TestFrameBytesMatchMarshal proves the shared encode is byte-identical
// to the per-send Marshal it replaces.
func TestFrameBytesMatchMarshal(t *testing.T) {
	m := &Message{Type: Event, Topic: "hb", Seq: 42, Epoch: 3,
		TraceID: 7, Hops: 1, Payload: []byte(`{"n":1}`)}
	want, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFrame(m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if !bytes.Equal(f.Bytes(), want) {
		t.Fatalf("frame bytes differ from Marshal:\n frame %x\n want  %x", f.Bytes(), want)
	}
	if f.Msg() != m {
		t.Fatal("Msg() does not return the source message")
	}
}

// TestFrameRefcount exercises retain/release pairing: the buffer stays
// valid until the last reference drops, and underflow panics.
func TestFrameRefcount(t *testing.T) {
	m := &Message{Type: Event, Topic: "kvs.setroot", Seq: 1}
	f, err := NewFrame(m)
	if err != nil {
		t.Fatal(err)
	}
	f.Retain()
	f.Retain()
	f.Release()
	f.Release()
	if f.Bytes() == nil {
		t.Fatal("buffer recycled while a reference is still held")
	}
	f.Release() // last reference
	if f.Bytes() != nil {
		t.Fatal("buffer not recycled after the last release")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("refcount underflow did not panic")
		}
	}()
	f.Release()
}

// TestFrameRetainAfterFreePanics: taking a reference on a dead frame is
// a bug in every build.
func TestFrameRetainAfterFreePanics(t *testing.T) {
	f, err := NewFrame(&Message{Type: Event, Topic: "x"})
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain on released frame did not panic")
		}
	}()
	f.Retain()
}

// TestFrameConcurrentRelease is the unit-level half of the fan-out race
// soak: many goroutines each own one reference and read the shared
// bytes before dropping it; exactly one of them frees the buffer.
func TestFrameConcurrentRelease(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		m := &Message{Type: Event, Topic: "storm", Seq: uint64(iter),
			Payload: []byte(`{"payload":"0123456789abcdef"}`)}
		f, err := NewFrame(m)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), f.Bytes()...)
		const holders = 8
		var wg sync.WaitGroup
		for i := 0; i < holders; i++ {
			f.Retain()
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !bytes.Equal(f.Bytes(), want) {
					t.Error("shared bytes mutated under a live reference")
				}
				f.Release()
			}()
		}
		f.Release() // creator's reference
		wg.Wait()
	}
}

// TestFrameDecodesBack: a frame's bytes decode to the source message
// (what every frame-receiving link does on the other end).
func TestFrameDecodesBack(t *testing.T) {
	m := &Message{Type: Event, Topic: "live.join", Seq: 9, Epoch: 2,
		Payload: []byte(`{"rank":4,"epoch":2}`)}
	f, err := NewFrame(m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	got, err := Unmarshal(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != m.Topic || got.Seq != m.Seq || got.Epoch != m.Epoch ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("decoded %+v != source %+v", got, m)
	}
}
