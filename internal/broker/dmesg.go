package broker

// TBON log aggregation and the flight recorder.
//
// Two complementary paths move log records around the session:
//
//   - Heartbeat forwarding (push): on every hb event, a non-root broker
//     batches its not-yet-forwarded warn+ records and fire-and-forgets
//     them one hop upstream (cmb.logfwd). Each interior broker folds the
//     batch into its aggregation ring and relays it on, so warnings
//     climb to the root at heartbeat cadence and survive the origin
//     rank's death. Debug/info chatter stays rank-local.
//
//   - dmesg gather (pull): cmb.dmesg with the subtree flag makes a
//     broker tree-reduce its whole live subtree — snapshot the local
//     ring, recursively gather each live gather-child, merge
//     time-ordered. At the root this is the session-wide flux dmesg.
//     A child whose subtree RPC fails degrades to flat per-rank
//     queries, so one dead interior rank costs its own records only.
//
// Records carry (rank, boot, seq) so the two paths dedupe cleanly.

import (
	"context"
	"fmt"
	"time"

	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// maxFwdBatch bounds one heartbeat's upstream batch.
const maxFwdBatch = 256

// dmesgChildTimeout bounds the recursive gather RPC to one child;
// dmesgRankTimeout bounds one flat fallback query.
const (
	dmesgChildTimeout = 3 * time.Second
	dmesgRankTimeout  = time.Second
)

// dmesgBody is the cmb.dmesg request payload.
type dmesgBody struct {
	MaxLevel int   `json:"level,omitempty"`    // keep Level <= MaxLevel; 0 keeps all
	Max      int   `json:"max,omitempty"`      // newest N records; 0 keeps all
	SinceNS  int64 `json:"since_ns,omitempty"` // records after this instant (follow cursor)
	Subtree  bool  `json:"subtree,omitempty"`  // tree-reduce the live subtree
	Fwd      bool  `json:"fwd,omitempty"`      // include the aggregation ring (dead ranks' warns)
}

// dmesgResp is the cmb.dmesg response payload.
type dmesgResp struct {
	Rank    int          `json:"rank"`
	Epoch   uint32       `json:"epoch"`
	Records []obs.Record `json:"records"`
	Ranks   []int        `json:"ranks"`            // ranks merged into Records
	Errors  []string     `json:"errors,omitempty"` // ranks that could not be reached
}

// logFwdBody is one upstream batch of warn+ records.
type logFwdBody struct {
	From    int          `json:"from"`
	Records []obs.Record `json:"records"`
}

// Forwarded exposes the aggregation ring: warn+ records this broker
// received from its subtree via heartbeat forwarding.
func (b *Broker) Forwarded() *obs.LogRing { return b.fwd }

// dmesgFilter translates a request into a ring filter.
func (d dmesgBody) filter() obs.LogFilter {
	return obs.LogFilter{MaxLevel: d.MaxLevel, SinceNS: d.SinceNS, Max: d.Max}
}

// serveDmesg handles cmb.dmesg. The local snapshot is answered on the
// broker loop; a subtree gather issues RPCs and must not block the
// loop, so it runs as tracked background work (like rmmod).
func (b *Broker) serveDmesg(m *wire.Message) {
	var body dmesgBody
	if len(m.Payload) > 0 {
		if err := m.UnpackJSON(&body); err != nil {
			b.respondErr(m, ErrnoInval, err.Error())
			return
		}
	}
	if !body.Subtree {
		b.respondDmesg(m, b.localDmesg(body))
		return
	}
	b.bg.Add(1)
	go func() {
		defer b.bg.Done()
		b.respondDmesg(m, b.gatherDmesg(body))
	}()
}

func (b *Broker) respondDmesg(m *wire.Message, r dmesgResp) {
	resp, err := wire.NewResponse(m, r)
	if err == nil {
		b.routeResponse(inbound{msg: resp})
	}
}

// localDmesg snapshots this broker's own records (plus, on request, its
// aggregation ring).
func (b *Broker) localDmesg(body dmesgBody) dmesgResp {
	recs := b.log.Ring().Snapshot(body.filter())
	if body.Fwd {
		recs = obs.DedupeRecords(obs.MergeRecords(recs, b.fwd.Snapshot(body.filter())))
	}
	if recs == nil {
		recs = []obs.Record{}
	}
	return dmesgResp{Rank: b.cfg.Rank, Epoch: b.Epoch(), Records: recs, Ranks: []int{b.cfg.Rank}}
}

// gatherDmesg tree-reduces the live subtree rooted at this broker: its
// own records merged with each gather-child's recursive gather,
// time-ordered. A failed child subtree degrades to flat per-rank
// queries so the rest of that subtree still reports.
func (b *Broker) gatherDmesg(body dmesgBody) dmesgResp {
	h := b.NewHandle()
	defer h.Close()
	out := b.localDmesg(body)
	parts := [][]obs.Record{out.Records}
	for _, child := range b.gatherChildren() {
		sub := body
		sub.Subtree = true
		r, err := b.dmesgRPC(h, child, sub, dmesgChildTimeout)
		if err == nil {
			parts = append(parts, r.Records)
			out.Ranks = append(out.Ranks, r.Ranks...)
			out.Errors = append(out.Errors, r.Errors...)
			continue
		}
		// The child cannot run the gather (dead, restarting, severed):
		// query every live rank it was responsible for directly.
		flat := body
		flat.Subtree = false
		for _, rank := range b.staticSubtree(child) {
			r, err := b.dmesgRPC(h, rank, flat, dmesgRankTimeout)
			if err != nil {
				out.Errors = append(out.Errors, fmt.Sprintf("rank %d: %v", rank, err))
				continue
			}
			parts = append(parts, r.Records)
			out.Ranks = append(out.Ranks, r.Ranks...)
		}
	}
	out.Records = obs.DedupeRecords(obs.MergeRecords(parts...))
	if body.Max > 0 && len(out.Records) > body.Max {
		out.Records = out.Records[len(out.Records)-body.Max:]
	}
	if out.Records == nil {
		out.Records = []obs.Record{}
	}
	return out
}

// dmesgRPC issues one cmb.dmesg query to a concrete rank.
func (b *Broker) dmesgRPC(h *Handle, rank int, body dmesgBody, timeout time.Duration) (dmesgResp, error) {
	var out dmesgResp
	resp, err := h.RPCWithOptions(context.Background(), wire.TopicDmesg, uint32(rank), body,
		RPCOptions{Timeout: timeout})
	if err != nil {
		return out, err
	}
	if err := resp.UnpackJSON(&out); err != nil {
		return out, err
	}
	return out, nil
}

// gatherChildren returns the live ranks whose nearest live ancestor is
// this broker — the fan-out set of a tree gather. Skipping departed
// interior ranks means a subtree orphaned by a shrink is adopted by the
// nearest live ancestor instead of silently dropped.
func (b *Broker) gatherChildren() []int {
	me := b.cfg.Rank
	var out []int
	for _, r := range b.LiveRanks() {
		if r == me || r == 0 {
			continue
		}
		a := b.parentOf(r)
		for a > 0 && b.Departed(a) {
			a = b.parentOf(a)
		}
		if a == me {
			out = append(out, r)
		}
	}
	return out
}

// staticSubtree returns the live ranks whose static ancestor chain
// passes through root (root included) — everything a failed gather
// child was responsible for, liveness of the intermediate hops aside.
func (b *Broker) staticSubtree(root int) []int {
	var out []int
	for _, r := range b.LiveRanks() {
		for a := r; a >= root; a = b.parentOf(a) {
			if a == root {
				out = append(out, r)
				break
			}
			if a == 0 {
				break
			}
		}
	}
	return out
}

// parentOf is the static tree-parent arity arithmetic, valid for any
// rank in the grown rank space (topo.Tree.Children bounds at the
// founding size, so gathers compute children from the inverse).
func (b *Broker) parentOf(r int) int {
	if r <= 0 {
		return -1
	}
	return (r - 1) / b.cfg.Arity
}

// maybeForwardLogs runs on each heartbeat at non-root brokers: batch
// the warn+ records not yet forwarded and send them one hop upstream,
// fire-and-forget. The cursor advances optimistically — a batch lost to
// a lossy link stays visible in the local ring (and to dmesg gathers);
// forwarding is the best-effort push that keeps the root's aggregation
// ring warm for post-mortems.
func (b *Broker) maybeForwardLogs() {
	if b.IsRoot() {
		return
	}
	if !b.fwding.CompareAndSwap(false, true) {
		return
	}
	defer b.fwding.Store(false)
	recs := b.log.Ring().Snapshot(obs.LogFilter{
		MaxLevel: obs.LevelWarn,
		SinceSeq: b.lastFwd.Load(),
		Max:      maxFwdBatch,
	})
	if len(recs) == 0 {
		return
	}
	b.lastFwd.Store(recs[len(recs)-1].Seq)
	b.sendLogBatch(logFwdBody{From: b.cfg.Rank, Records: recs})
}

// sendLogBatch submits one cmb.logfwd batch toward the parent. The
// request is fire-and-forget (no match tag): log forwarding must never
// block or hang on an unreachable parent.
func (b *Broker) sendLogBatch(batch logFwdBody) {
	req, err := wire.NewRequest(wire.TopicLogFwd, wire.NodeidUpstream, batch)
	if err != nil {
		return
	}
	b.submit(inbound{msg: req}) // Seq stays 0: no response expected

}

// serveLogFwd folds an upstream batch into the aggregation ring and, at
// interior brokers, relays it another hop toward the root.
func (b *Broker) serveLogFwd(m *wire.Message) {
	var body logFwdBody
	if err := m.UnpackJSON(&body); err != nil {
		b.respondErr(m, ErrnoInval, err.Error())
		return
	}
	b.ctr.logFwdBatches.Inc()
	b.ctr.logForwarded.Add(uint64(len(body.Records)))
	for _, r := range body.Records {
		b.fwd.Append(r)
	}
	if !b.IsRoot() {
		b.sendLogBatch(body)
	}
}

// traceBody is the cmb.trace request payload. Without Gather the
// response covers this broker's span ring only (the pre-gather
// protocol); with it the broker tree-reduces its live subtree so one
// RPC at the root assembles the session-wide view of a trace.
type traceBody struct {
	ID     uint64 `json:"id"`
	Gather bool   `json:"gather,omitempty"`
}

// traceResp is the cmb.trace response payload. Ranks/Errors are only
// populated by gathers.
type traceResp struct {
	Rank   int        `json:"rank"`
	Spans  []obs.Span `json:"spans"`
	Ranks  []int      `json:"ranks,omitempty"`
	Errors []string   `json:"errors,omitempty"`
}

func (b *Broker) localTrace(body traceBody) traceResp {
	spans := b.traces.Snapshot(body.ID)
	if spans == nil {
		spans = []obs.Span{}
	}
	return traceResp{Rank: b.cfg.Rank, Spans: spans, Ranks: []int{b.cfg.Rank}}
}

func (b *Broker) respondTrace(m *wire.Message, r traceResp) {
	resp, err := wire.NewResponse(m, r)
	if err != nil {
		b.respondErr(m, ErrnoInval, err.Error())
		return
	}
	b.routeResponse(inbound{msg: resp})
}

// gatherTrace tree-reduces the live subtree's span rings for one trace
// id, mirroring gatherDmesg's fan-out and flat fallback.
func (b *Broker) gatherTrace(body traceBody) traceResp {
	h := b.NewHandle()
	defer h.Close()
	out := b.localTrace(body)
	for _, child := range b.gatherChildren() {
		sub := body
		sub.Gather = true
		r, err := b.traceRPC(h, child, sub, dmesgChildTimeout)
		if err == nil {
			out.Spans = append(out.Spans, r.Spans...)
			out.Ranks = append(out.Ranks, r.Ranks...)
			out.Errors = append(out.Errors, r.Errors...)
			continue
		}
		flat := body
		flat.Gather = false
		for _, rank := range b.staticSubtree(child) {
			r, err := b.traceRPC(h, rank, flat, dmesgRankTimeout)
			if err != nil {
				out.Errors = append(out.Errors, fmt.Sprintf("rank %d: %v", rank, err))
				continue
			}
			out.Spans = append(out.Spans, r.Spans...)
			out.Ranks = append(out.Ranks, r.Ranks...)
		}
	}
	return out
}

// traceRPC issues one cmb.trace query to a concrete rank.
func (b *Broker) traceRPC(h *Handle, rank int, body traceBody, timeout time.Duration) (traceResp, error) {
	var out traceResp
	resp, err := h.RPCWithOptions(context.Background(), wire.TopicTrace, uint32(rank), body,
		RPCOptions{Timeout: timeout})
	if err != nil {
		return out, err
	}
	if err := resp.UnpackJSON(&out); err != nil {
		return out, err
	}
	return out, nil
}

// FlightSnapshot captures this broker's flight-recorder state: recent
// log records (local and forwarded, deduped), the span ring, and the
// metrics registry. maxRecords bounds the record count (0 = everything
// buffered).
func (b *Broker) FlightSnapshot(maxRecords int) obs.FlightRank {
	recs := obs.DedupeRecords(obs.MergeRecords(
		b.log.Ring().Snapshot(obs.LogFilter{}),
		b.fwd.Snapshot(obs.LogFilter{}),
	))
	if maxRecords > 0 && len(recs) > maxRecords {
		recs = recs[len(recs)-maxRecords:]
	}
	return obs.FlightRank{
		Rank:    b.cfg.Rank,
		Epoch:   b.Epoch(),
		BootNS:  b.boot,
		Records: recs,
		Spans:   b.traces.Snapshot(0),
		Metrics: b.metrics.Snapshot(),
	}
}

// serveDump answers cmb.dump with this broker's flight snapshot.
func (b *Broker) serveDump(m *wire.Message) {
	var body struct {
		Max int `json:"max,omitempty"`
	}
	if len(m.Payload) > 0 {
		_ = m.UnpackJSON(&body) // a malformed body degrades to defaults
	}
	resp, err := wire.NewResponse(m, b.FlightSnapshot(body.Max))
	if err == nil {
		b.routeResponse(inbound{msg: resp})
	}
}
