package fluxgo_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fluxgo"
	"fluxgo/internal/modules/wexec"
)

func TestFacadeSessionKVS(t *testing.T) {
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: 8, HBInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	h := sess.Handle(5)
	defer h.Close()
	kv := fluxgo.NewKVS(h)
	if err := kv.Put("facade.test", "ok"); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Commit(); err != nil {
		t.Fatal(err)
	}
	var got string
	if err := kv.Get("facade.test", &got); err != nil || got != "ok" {
		t.Fatalf("get: %q %v", got, err)
	}
}

func TestFacadeBarrierAndPMI(t *testing.T) {
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: 4, HBInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const procs = 8
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := sess.Handle(p % 4)
			defer h.Close()
			if err := fluxgo.Barrier(h, "facade-bar", procs); err != nil {
				t.Error(err)
				return
			}
			pm, err := fluxgo.NewPMI(h, "fjob", p, procs)
			if err != nil {
				t.Error(err)
				return
			}
			pm.Put("card", fmt.Sprintf("c%d", p))
			if err := pm.Fence(); err != nil {
				t.Error(err)
				return
			}
			card, err := pm.Get((p+1)%procs, "card")
			if err != nil || card != fmt.Sprintf("c%d", (p+1)%procs) {
				t.Errorf("proc %d neighbour card %q err %v", p, card, err)
			}
		}(p)
	}
	wg.Wait()
}

func TestFacadeInstanceHierarchy(t *testing.T) {
	cluster, err := fluxgo.BuildCluster(fluxgo.ClusterSpec{
		Name: "center", Racks: 1, NodesPerRack: 4, SocketsPerNode: 2, CoresPerSocket: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	root, err := fluxgo.NewRootInstance(cluster, fluxgo.InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	child, err := root.Spawn(fluxgo.Request{Nodes: 2}, 0, fluxgo.InstanceOptions{Policy: fluxgo.EASY{}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := child.Submit("echo", []string{"hi"}, fluxgo.Request{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := rec.Wait(ctx)
	if err != nil || res.State != "complete" {
		t.Fatalf("job %+v err %v", res, err)
	}
}

func TestFacadeBatchJobs(t *testing.T) {
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: 4, HBInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	h := sess.Handle(2)
	defer h.Close()

	id, err := fluxgo.SubmitJob(h, fluxgo.JobSpec{Program: "hostname", Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := fluxgo.WaitJob(ctx, h, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "complete" || len(info.Ranks) != 3 {
		t.Fatalf("job %+v", info)
	}
	jobs, err := fluxgo.ListJobs(h)
	if err != nil || len(jobs) != 0 {
		t.Fatalf("active jobs %v, %v", jobs, err)
	}
	// Cancel path.
	blocker, _ := fluxgo.SubmitJob(h, fluxgo.JobSpec{Program: "block", Nodes: 4})
	queued, _ := fluxgo.SubmitJob(h, fluxgo.JobSpec{Program: "echo", Nodes: 1})
	if err := fluxgo.CancelJob(h, queued); err != nil {
		t.Fatal(err)
	}
	if err := fluxgo.CancelJob(h, blocker); err != nil {
		t.Fatal(err)
	}
	if _, err := fluxgo.WaitJob(ctx, h, blocker); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRunAndLog(t *testing.T) {
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{Size: 3, HBInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	h := sess.Handle(0)
	defer h.Close()
	if err := fluxgo.Log(h, "test", fluxgo.LogInfo, "hello %s", "log"); err != nil {
		t.Fatal(err)
	}
	n, err := fluxgo.Run(h, "fjob2", "hostname", nil, nil)
	if err != nil || n != 3 {
		t.Fatalf("run: n=%d err=%v", n, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := wexec.Wait(ctx, h, "fjob2")
	if err != nil || res.NTasks != 3 {
		t.Fatalf("wait: %+v %v", res, err)
	}
}
