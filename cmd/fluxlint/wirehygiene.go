package main

// wire-hygiene: wire-protocol identifiers must round-trip through the
// declared constants of the wire package, not through scattered
// literals that drift apart silently.
//
//   - String literals spelling the CMB service name ("cmb") or a
//     cmb.* control topic are flagged outside the wire package itself:
//     use wire.ServiceCMB / wire.Topic*. Prose mentioning "cmb: ..."
//     in error text does not match the topic shape and passes.
//   - Integer literals used as a wire message type — in the Type field
//     of a wire.Message composite literal or a wire.Type(n) conversion
//     — are flagged: use wire.Request/Response/Event/Control.
//
// The payload-retention rule (a handler storing m.Payload without
// Detach) used to live here as an AST heuristic; the flow-sensitive
// pool-ownership pass (poolown.go) now owns it.
//
// Detection keys on the package *name* "wire" and type names Message /
// Type, so the pass works identically against the real module and the
// test fixture corpus.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
)

const wireHygieneName = "wire-hygiene"

var wireHygienePass = Pass{
	Name: wireHygieneName,
	Doc:  "flag raw wire topic strings and message-type integers",
	Run:  runWireHygiene,
}

// cmbTopicShape matches the service name itself or a dotted cmb topic.
var cmbTopicShape = regexp.MustCompile(`^cmb(\.[a-z][a-z0-9_]*)+$`)

func runWireHygiene(l *Loader, p *Package) []Finding {
	if p.Types.Name() == "wire" {
		return nil // the wire package is where the constants live
	}
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pass: wireHygieneName,
			Pos:  l.Fset.Position(pos),
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		// Struct tags are string literals too; exclude them.
		tags := map[*ast.BasicLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.Field); ok && fd.Tag != nil {
				tags[fd.Tag] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind != token.STRING || tags[n] {
					return true
				}
				s, err := strconv.Unquote(n.Value)
				if err != nil {
					return true
				}
				//fluxlint:ignore wire-hygiene the pass must spell the service name to detect it
				if s == "cmb" || cmbTopicShape.MatchString(s) {
					report(n.Pos(), "raw wire string %q; use the wire package constant", s)
				}
			case *ast.CompositeLit:
				if named, ok := derefNamed(p.Info.TypeOf(n)); ok &&
					named.Obj().Name() == "Message" && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Name() == "wire" {
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Type" {
							if bl, ok := kv.Value.(*ast.BasicLit); ok && bl.Kind == token.INT {
								report(bl.Pos(), "raw message type %s; use a wire.Type constant", bl.Value)
							}
						}
					}
				}
			case *ast.CallExpr:
				// wire.Type(3)-style conversion of a literal.
				if len(n.Args) != 1 {
					return true
				}
				bl, ok := n.Args[0].(*ast.BasicLit)
				if !ok || bl.Kind != token.INT {
					return true
				}
				if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
					if named, ok := derefNamed(tv.Type); ok &&
						named.Obj().Name() == "Type" && named.Obj().Pkg() != nil &&
						named.Obj().Pkg().Name() == "wire" {
						report(bl.Pos(), "raw message type %s; use a wire.Type constant", bl.Value)
					}
				}
			}
			return true
		})
	}
	return out
}

// isWireMessagePtr reports whether t is *wire.Message (matched by
// package and type name, like the rest of the suite).
func isWireMessagePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := derefNamed(ptr.Elem())
	return ok && named.Obj().Name() == "Message" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "wire"
}

// isWireFramePtr reports whether t is *wire.Frame (the refcounted
// encode-once frame), matched the same way as isWireMessagePtr.
func isWireFramePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := derefNamed(ptr.Elem())
	return ok && named.Obj().Name() == "Frame" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "wire"
}
