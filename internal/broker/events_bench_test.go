package broker

import (
	"fmt"
	"testing"

	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// BenchmarkEventFanout measures one event published at the root and
// fanned out to 8 frame-capable children over codec pipes — the
// encode-once path: one marshal per event, shared by every child, with
// each pipe paying only the receiver-side decode.
func BenchmarkEventFanout(b *testing.B) {
	const children = 8

	root, err := New(Config{Rank: 0, Size: 1, EventHistory: 16})
	if err != nil {
		b.Fatal(err)
	}
	root.Start()
	defer root.Shutdown()

	warmed := make(chan struct{}, children)
	done := make(chan int, children)
	for c := 0; c < children; c++ {
		parentEnd, childEnd := transport.CodecPipe("rank:0", fmt.Sprintf("rank:%d", c+1))
		root.AttachConn(LinkChildEvent, parentEnd)
		if err := childEnd.Send(&wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: 0}); err != nil {
			b.Fatal(err)
		}
		go func(conn transport.Conn) {
			var got int
			for {
				m, err := conn.Recv()
				if err != nil {
					done <- got
					return
				}
				if m.Type != wire.Event {
					continue
				}
				if m.Topic == "warm.up" {
					warmed <- struct{}{}
					continue
				}
				got++
				if got == b.N {
					done <- got
					return
				}
			}
		}(childEnd)
		defer childEnd.Close()
	}

	// Wait for every child's gate to open so each measured event fans
	// out to all of them.
	h := root.NewHandle()
	defer h.Close()
	if _, err := h.PublishEvent("warm.up", nil); err != nil {
		b.Fatal(err)
	}
	for c := 0; c < children; c++ {
		<-warmed
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.PublishEvent("bench.ev", nil); err != nil {
			b.Fatal(err)
		}
	}
	for c := 0; c < children; c++ {
		if got := <-done; got != b.N {
			b.Fatalf("child received %d of %d events", got, b.N)
		}
	}
}
