package cas

// The durable tier reaches the disk only through the FS seam below, so
// the chaos controller can interpose a FaultyFS (torn writes, fsync
// failures, bit flips, simulated power loss) without touching the real
// filesystem. The production implementation is osFS, a thin veneer over
// package os.

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the durable tier writes through. Sync
// is the durability point: bytes written before a successful Sync are
// guaranteed to survive a crash; bytes after it are not.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations the durable tier performs.
// All paths are interpreted by the implementation (osFS uses them
// verbatim; FaultyFS keys its per-file durability watermarks on them).
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create opens name truncated to zero length, creating it if absent.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadFileRange returns n bytes of name starting at off.
	ReadFileRange(name string, off int64, n int) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// Size returns the current length of name in bytes.
	Size(name string) (int64, error)
	// ReadDir lists the entry names (not paths) under dir, sorted.
	ReadDir(dir string) ([]string, error)
}

// DirFS returns the production FS backed by package os. The dir
// argument is advisory (paths passed in are already absolute or
// process-relative); it exists so call sites read naturally.
func DirFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadFileRange(name string, off int64, n int) ([]byte, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// join builds an FS path from components; split out so durable code
// reads the same against osFS and FaultyFS.
func join(elem ...string) string { return filepath.Join(elem...) }
