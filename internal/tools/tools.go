// Package tools implements run-time tool support, the paper's Challenge
// 4 (Productivity): code-development tools need "launching of daemons,
// allocation of analysis resources, or the ability for secure
// third-party access to running jobs". Tools here are handle-bearing
// simulated daemons (wexec.HandleProgram) launched co-located with a
// target job's ranks, with access to the job's KVS data and the
// session's monitoring and communication primitives.
package tools

import (
	"context"
	"fmt"
	"strings"

	"fluxgo/internal/broker"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/jobsvc"
	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/wire"
)

// JobRanks answers the co-location query: which session ranks does the
// batch job with the given id occupy? Active jobs are answered by the
// job service directly; completed jobs from their KVS provenance record
// (the local slave may briefly lag a just-started job's commit, so the
// service is authoritative).
func JobRanks(h *broker.Handle, jobID string) ([]int, error) {
	if info, err := jobsvc.GetInfo(h, jobID); err == nil && len(info.Ranks) > 0 {
		return info.Ranks, nil
	}
	kc := kvs.NewClient(h)
	var ranks []int
	if err := kc.Get(fmt.Sprintf("lwj.%s.ranks", jobID), &ranks); err != nil {
		return nil, fmt.Errorf("tools: job %s has no rank record: %w", jobID, err)
	}
	return ranks, nil
}

// Attach launches the named tool daemon on every rank of the target
// batch job and waits for it to finish, returning its bulk result. The
// tool must be registered in the session's wexec HandleRegistry; its
// first argument is the target job id, so it can locate the job's data
// in the KVS through its handle.
func Attach(ctx context.Context, h *broker.Handle, toolRun, tool, jobID string, extraArgs ...string) (wexec.JobResult, error) {
	ranks, err := JobRanks(h, jobID)
	if err != nil {
		return wexec.JobResult{}, err
	}
	args := append([]string{jobID}, extraArgs...)
	if _, err := wexec.Run(h, toolRun, tool, args, ranks); err != nil {
		return wexec.JobResult{}, err
	}
	return wexec.Wait(ctx, h, toolRun)
}

// BuiltinTools returns a default tool set.
func BuiltinTools() wexec.HandleRegistry {
	return wexec.HandleRegistry{
		// jobinfo reports the target job's spec and state from the KVS at
		// the tool's own rank — the minimal "third-party access" probe.
		"jobinfo": func(ctx context.Context, h *broker.Handle, rank int, args []string, stdout, stderr *fmtBuilder) int {
			if len(args) < 1 {
				fmt.Fprintln(stderr, "jobinfo: target job id required")
				return 2
			}
			kc := kvs.NewClient(h)
			var state string
			if err := kc.Get("lwj."+args[0]+".jobstate", &state); err != nil {
				fmt.Fprintf(stderr, "jobinfo: %v\n", err)
				return 1
			}
			var spec struct {
				Program string `json:"program"`
				Nodes   int    `json:"nodes"`
			}
			kc.Get("lwj."+args[0]+".spec", &spec)
			fmt.Fprintf(stdout, "rank %d: job %s program=%s nodes=%d state=%s\n",
				rank, args[0], spec.Program, spec.Nodes, state)
			return 0
		},
		// epoch reports the local heartbeat epoch, demonstrating tool use
		// of session services beyond the KVS.
		"epoch": func(ctx context.Context, h *broker.Handle, rank int, args []string, stdout, stderr *fmtBuilder) int {
			resp, err := h.RPCContext(ctx, "hb.get", wire.NodeidAny, nil)
			if err != nil {
				fmt.Fprintf(stderr, "epoch: %v\n", err)
				return 1
			}
			var body struct {
				Epoch uint64 `json:"epoch"`
			}
			resp.UnpackJSON(&body)
			fmt.Fprintf(stdout, "rank %d epoch %d\n", rank, body.Epoch)
			return 0
		},
	}
}

// fmtBuilder is wexec's stdio buffer type.
type fmtBuilder = strings.Builder
