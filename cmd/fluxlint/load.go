package main

// Package loading without golang.org/x/tools: packages are discovered
// by walking the module tree, parsed with go/parser, and type-checked
// with go/types. Imports inside the module resolve recursively through
// the same loader; standard-library imports are delegated to the
// compiler's source importer, which type-checks from GOROOT/src. Build
// constraints are honored via go/build's MatchFile, so files like the
// debuglock-tagged mutex variant are excluded exactly as in a default
// build. Test files are never loaded: fluxlint's contract covers
// production code.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and memoizes packages of a single module.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at moduleDir with
// the given module path (the `module` line of its go.mod).
func NewLoader(modulePath, moduleDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// Import implements types.Importer: module-internal paths load through
// this loader; everything else is treated as standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps an in-module import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// sourceFiles lists the dir's buildable non-test Go files.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		ok, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if ok {
			files = append(files, filepath.Join(dir, name))
		}
	}
	sort.Strings(files)
	return files, nil
}

// Load parses and type-checks the package at the given in-module import
// path (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Discover returns the import paths of every buildable package under
// the module root, in lexical order. testdata, vendor, and dot
// directories are skipped, matching the go tool's "./..." expansion.
func (l *Loader) Discover() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := sourceFiles(p)
		if err != nil || len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return paths, err
}
