// Package group implements the group comms module of Table I: Flux
// groups define and manage collections of processes that can participate
// in collective operations.
//
// Membership changes are published as events, so the session-wide total
// order keeps every instance's view identical once the event is applied;
// queries are answered from the local view (eventually consistent).
package group

import (
	"fmt"
	"sort"
	"sync"

	"fluxgo/internal/broker"
	"fluxgo/internal/wire"
)

// updateBody is the group.update event payload.
type updateBody struct {
	Name   string `json:"name"`
	Member string `json:"member"`
	Join   bool   `json:"join"`
}

// Module is one group module instance.
type Module struct {
	h  *broker.Handle
	mu sync.Mutex
	// groups: name -> member set.
	groups map[string]map[string]bool
}

// New returns a group module instance.
func New() *Module { return &Module{groups: map[string]map[string]bool{}} }

// Factory loads the group module at every rank.
func Factory(rank, size int) broker.Module { return New() }

// Name implements broker.Module.
func (m *Module) Name() string { return "group" }

// Subscriptions implements broker.Module.
func (m *Module) Subscriptions() []string { return []string{"group.update"} }

// Init implements broker.Module.
func (m *Module) Init(h *broker.Handle) error { m.h = h; return nil }

// Shutdown implements broker.Module.
func (m *Module) Shutdown() {}

// Recv implements broker.Module.
func (m *Module) Recv(msg *wire.Message) {
	if msg.Type == wire.Event && msg.Topic == "group.update" {
		var body updateBody
		if err := msg.UnpackJSON(&body); err != nil {
			return
		}
		m.mu.Lock()
		set := m.groups[body.Name]
		if set == nil {
			set = map[string]bool{}
			m.groups[body.Name] = set
		}
		if body.Join {
			set[body.Member] = true
		} else {
			delete(set, body.Member)
			if len(set) == 0 {
				delete(m.groups, body.Name)
			}
		}
		m.mu.Unlock()
		return
	}
	if msg.Type != wire.Request {
		return
	}
	switch msg.Method() {
	case "join", "leave":
		m.recvUpdate(msg, msg.Method() == "join")
	case "list":
		m.recvList(msg)
	case "lsgroups":
		m.recvLsgroups(msg)
	default:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("group: unknown method %q", msg.Method()))
	}
}

// recvUpdate publishes the membership change and responds with the event
// sequence; the caller's view reflects the change once that event has
// been applied locally.
func (m *Module) recvUpdate(msg *wire.Message, join bool) {
	var body updateBody
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	if body.Name == "" || body.Member == "" {
		m.h.RespondError(msg, broker.ErrnoInval, "group: name and member required")
		return
	}
	body.Join = join
	seq, err := m.h.PublishEvent("group.update", body)
	if err != nil {
		m.h.RespondError(msg, broker.ErrnoProto, err.Error())
		return
	}
	m.h.Respond(msg, map[string]uint64{"seq": seq})
}

func (m *Module) recvList(msg *wire.Message) {
	var body struct {
		Name string `json:"name"`
	}
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	m.mu.Lock()
	set := m.groups[body.Name]
	members := make([]string, 0, len(set))
	for member := range set {
		members = append(members, member)
	}
	m.mu.Unlock()
	sort.Strings(members)
	m.h.Respond(msg, map[string][]string{"members": members})
}

func (m *Module) recvLsgroups(msg *wire.Message) {
	m.mu.Lock()
	names := make([]string, 0, len(m.groups))
	for name := range m.groups {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	m.h.Respond(msg, map[string][]string{"groups": names})
}

// Join adds member to the named group, waiting until the membership
// change is visible at the local rank.
func Join(h *broker.Handle, name, member string) error {
	return update(h, "group.join", name, member)
}

// Leave removes member from the named group, waiting until the change is
// visible at the local rank.
func Leave(h *broker.Handle, name, member string) error {
	return update(h, "group.leave", name, member)
}

func update(h *broker.Handle, topic, name, member string) error {
	// Subscribe before issuing the update so the confirming event cannot
	// be missed.
	sub, err := h.Subscribe("group.update")
	if err != nil {
		return err
	}
	defer sub.Close()
	resp, err := h.RPC(topic, wire.NodeidAny, updateBody{Name: name, Member: member})
	if err != nil {
		return err
	}
	var body struct {
		Seq uint64 `json:"seq"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		return err
	}
	// Wait for the module's confirming event to pass our rank. Handle
	// delivery order (broker loop -> module inbox vs. handle inbox) is
	// the same event stream, so seeing seq here means the module has or
	// will momentarily have applied it; a final list query linearizes.
	for ev := range sub.Chan() {
		if ev.Seq >= body.Seq {
			return nil
		}
	}
	return fmt.Errorf("group: subscription closed before update %d", body.Seq)
}

// List returns the sorted members of the named group as seen locally.
func List(h *broker.Handle, name string) ([]string, error) {
	resp, err := h.RPC("group.list", wire.NodeidAny, map[string]string{"name": name})
	if err != nil {
		return nil, err
	}
	var body struct {
		Members []string `json:"members"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		return nil, err
	}
	return body.Members, nil
}
