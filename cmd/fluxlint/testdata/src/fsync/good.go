package fsync

import "os"

// checkpoint is the disciplined shape: every Sync and Close error on
// the write path is either returned or explicitly superseded with `_ =`
// on a path that already carries an error.
func checkpoint(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// readAll never writes, so the idiomatic deferred Close stays legal.
func readAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 128)
	n, err := f.Read(buf)
	return buf[:n], err
}

// capturedSync: the result is used, not discarded.
func capturedSync(f *os.File) error {
	return f.Sync()
}

// collectedErrors: assignments are uses, not discards.
func collectedErrors(f *os.File, b []byte) error {
	_, werr := f.Write(b)
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// notAFile: Write+Close without Sync (a conn-like shape) is out of
// scope — there is no durability promise to break.
type conn struct{}

func (*conn) Write(b []byte) (int, error) { return len(b), nil }
func (*conn) Close() error                { return nil }

func sendAndClose(c *conn, b []byte) {
	if _, err := c.Write(b); err != nil {
		return
	}
	c.Close()
}
