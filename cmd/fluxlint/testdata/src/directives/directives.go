// Package directives exercises the //fluxlint:ignore machinery: valid
// directives on the flagged line or the line above suppress exactly one
// pass there; malformed directives are themselves findings and suppress
// nothing.
package directives

import "fixture.example/wire"

//fluxlint:ignore wire-hygiene fixture: suppression from the line above
const suppressedAbove = "cmb.ping"

const suppressedSameLine = "cmb.stats" //fluxlint:ignore wire-hygiene fixture: same-line suppression

//fluxlint:ignore no-such-pass the unknown pass name must be reported
const unknownPass = "plain string"

//fluxlint:ignore wire-hygiene
const missingReason = "cmb.resync"

// The flow-sensitive passes honor the same machinery.

func suppressedDoubleRelease(m *wire.Message) {
	m.Release()
	m.Release() //fluxlint:ignore pool-ownership fixture: same-line suppression
}

func suppressedDispatch(m *wire.Message) {
	//fluxlint:ignore errno-completeness fixture: suppression from the line above
	switch m.Method() {
	case "run":
		_ = wire.NewErrorResponse(m, wire.ErrnoInval, "nope")
	case "stop":
		_ = wire.NewErrorResponse(m, wire.ErrnoInval, "nope")
	}
}
