// Package epoch holds fixtures for the epoch-discipline pass: every
// epoch-fenced drop must be counted (Inc/Add) or logged.
package epoch

import (
	"fixture.example/wire"
)

// broker is a miniature of the real broker's fence state.
type broker struct {
	epoch  uint32
	ctr    counter
	events []*wire.Message
}

type counter struct{}

func (counter) Inc()         {}
func (counter) Add(n uint64) {}
func (counter) Set(n int64)  {}

func (b *broker) logf(format string, args ...any) {}

// silentReturn drops a stale message with no trace of it anywhere.
func (b *broker) silentReturn(m *wire.Message) {
	if m.Epoch < b.epoch { // BAD
		return
	}
	b.events = append(b.events, m)
}

// silentContinue sheds stale messages inside a drain loop, silently.
func (b *broker) silentContinue(ms []*wire.Message) {
	for _, m := range ms {
		if m.Epoch < b.epoch { // BAD
			continue
		}
		b.events = append(b.events, m)
	}
}

// silentFence compares against a local fence variable; still a fence.
func (b *broker) silentFence(m *wire.Message, minEpoch uint32) bool {
	if minEpoch != 0 && m.Epoch < minEpoch { // BAD
		return false
	}
	return true
}

// unaccountedHelper delegates the drop to a helper that neither counts
// nor logs, so the delegation does not launder the silence.
func (b *broker) unaccountedHelper(m *wire.Message) {
	if m.Epoch < b.epoch { // BAD
		b.forget(m)
		return
	}
	b.events = append(b.events, m)
}

func (b *broker) forget(m *wire.Message) { m.Payload = nil }
