package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Request:  "request",
		Response: "response",
		Event:    "event",
		Control:  "control",
		Type(99): "type(99)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestServiceMethod(t *testing.T) {
	cases := []struct {
		topic, service, method string
	}{
		{"kvs.put", "kvs", "put"},
		{"kvs.get.deep", "kvs", "get.deep"},
		{"barrier", "barrier", ""},
		{"", "", ""},
	}
	for _, c := range cases {
		m := &Message{Topic: c.topic}
		if got := m.Service(); got != c.service {
			t.Errorf("Service(%q) = %q, want %q", c.topic, got, c.service)
		}
		if got := m.Method(); got != c.method {
			t.Errorf("Method(%q) = %q, want %q", c.topic, got, c.method)
		}
	}
}

func TestRouteStack(t *testing.T) {
	m := &Message{}
	if _, ok := m.PopRoute(); ok {
		t.Fatal("PopRoute on empty stack reported ok")
	}
	m.PushRoute("a")
	m.PushRoute("b")
	id, ok := m.PopRoute()
	if !ok || id != "b" {
		t.Fatalf("PopRoute = %q,%v, want b,true", id, ok)
	}
	id, ok = m.PopRoute()
	if !ok || id != "a" {
		t.Fatalf("PopRoute = %q,%v, want a,true", id, ok)
	}
}

func TestCopyIsDeep(t *testing.T) {
	m := &Message{
		Type:    Request,
		Topic:   "kvs.put",
		Route:   []string{"r1"},
		Payload: []byte(`{"x":1}`),
	}
	c := m.Copy()
	c.Route[0] = "changed"
	c.Payload[0] = 'X'
	c.PushRoute("r2")
	if m.Route[0] != "r1" || m.Payload[0] != '{' || len(m.Route) != 1 {
		t.Fatal("Copy aliases original message state")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: Request, Topic: "kvs.put", Nodeid: NodeidAny, Seq: 42,
			Route: []string{"hop0", "hop1"}, Payload: []byte(`{"key":"a.b"}`)},
		{Type: Response, Topic: "kvs.put", Seq: 42, Errnum: -7,
			Payload: []byte(`{"error":"nope"}`)},
		{Type: Event, Topic: "hb", Seq: 9999999, Payload: []byte(`{}`)},
		{Type: Control, Topic: "cmb.hello", Nodeid: 3},
		{Type: Request, Topic: "kvs.get", Nodeid: 2, Seq: 7,
			TraceID: 0xDEADBEEF01, Parent: 2, Hops: 3, Payload: []byte(`{}`)},
	}
	for _, m := range msgs {
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", m.Topic, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", m.Topic, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
		}
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(topic string, nodeid uint32, seq uint64, errnum int32, routes []string, payload []byte, traceid uint64, parent, hops uint8) bool {
		m := &Message{
			Type:    Type(1 + rng.Intn(4)),
			Topic:   topic,
			Nodeid:  nodeid,
			Seq:     seq,
			Errnum:  errnum,
			Payload: payload,
			TraceID: traceid,
			Parent:  parent,
			Hops:    hops,
		}
		if len(routes) > 0 {
			m.Route = routes
		}
		if len(payload) == 0 {
			m.Payload = nil
		}
		b, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	m := &Message{Type: Event, Topic: "hb", Payload: []byte(`{"epoch":1}`)}
	good, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	if _, err := Unmarshal(bad); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), good...)
	bad[1] = 99
	if _, err := Unmarshal(bad); err != ErrBadVer {
		t.Errorf("bad version: err = %v, want ErrBadVer", err)
	}

	bad = append([]byte(nil), good...)
	bad[2] = 0
	if _, err := Unmarshal(bad); err == nil {
		t.Error("invalid type accepted")
	}

	for cut := 1; cut < len(good); cut++ {
		if _, err := Unmarshal(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}

	if _, err := Unmarshal(append(good, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestUnmarshalFuzzDoesNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(128))
		rng.Read(b)
		if rng.Intn(2) == 0 && len(b) >= 2 {
			b[0], b[1] = magic, version
		}
		Unmarshal(b) // must not panic
	}
}

func TestMarshalTooLarge(t *testing.T) {
	m := &Message{Type: Event, Topic: "big", Payload: make([]byte, MaxMessageSize)}
	if _, err := Marshal(m); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestNewRequestResponseHelpers(t *testing.T) {
	req, err := NewRequest("kvs.get", NodeidAny, map[string]string{"key": "a"})
	if err != nil {
		t.Fatal(err)
	}
	req.Seq = 77
	req.PushRoute("client-1")

	req.TraceID = 99
	req.Parent = 1
	req.Hops = 2

	resp, err := NewResponse(req, map[string]int{"val": 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != Response || resp.Seq != 77 || resp.Topic != "kvs.get" {
		t.Fatalf("response header mismatch: %+v", resp)
	}
	if resp.TraceID != 99 || resp.Parent != 1 || resp.Hops != 2 {
		t.Fatalf("response trace context not inherited: %+v", resp)
	}
	if len(resp.Route) != 1 || resp.Route[0] != "client-1" {
		t.Fatalf("response route = %v, want [client-1]", resp.Route)
	}
	if err := ResponseError(resp); err != nil {
		t.Fatalf("success response yielded error %v", err)
	}

	eresp := NewErrorResponse(req, 2, "no such key")
	if eresp.Errnum != 2 {
		t.Fatalf("errnum = %d, want 2", eresp.Errnum)
	}
	err = ResponseError(eresp)
	if err == nil || !strings.Contains(err.Error(), "no such key") {
		t.Fatalf("ResponseError = %v, want message mentioning 'no such key'", err)
	}

	// Errnum 0 passed to NewErrorResponse must still mark failure.
	eresp = NewErrorResponse(req, 0, "boom")
	if eresp.Errnum == 0 {
		t.Fatal("NewErrorResponse produced success errnum")
	}
}

func TestNewEventDefaultsEmptyBody(t *testing.T) {
	ev, err := NewEvent("hb", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != Event || !bytes.Equal(ev.Payload, []byte("{}")) {
		t.Fatalf("event = %+v", ev)
	}
}

func TestPackUnpackJSON(t *testing.T) {
	type body struct {
		Key string `json:"key"`
		N   int    `json:"n"`
	}
	m := &Message{Topic: "t"}
	if err := m.PackJSON(body{Key: "k", N: 3}); err != nil {
		t.Fatal(err)
	}
	var got body
	if err := m.UnpackJSON(&got); err != nil {
		t.Fatal(err)
	}
	if got.Key != "k" || got.N != 3 {
		t.Fatalf("unpacked %+v", got)
	}
	empty := &Message{Topic: "t"}
	if err := empty.UnpackJSON(&got); err == nil {
		t.Fatal("UnpackJSON on empty payload succeeded")
	}
	bad := &Message{Topic: "t", Payload: []byte("{")}
	if err := bad.UnpackJSON(&got); err == nil {
		t.Fatal("UnpackJSON on invalid JSON succeeded")
	}
}

func TestPackJSONUnmarshalable(t *testing.T) {
	m := &Message{Topic: "t"}
	if err := m.PackJSON(func() {}); err == nil {
		t.Fatal("PackJSON of func succeeded")
	}
}
