package pmi

import (
	"fmt"
	"sync"
	"testing"

	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/barrier"
	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size: size,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			barrier.Factory,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewValidation(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	if _, err := New(h, "j", -1, 4); err == nil {
		t.Fatal("negative rank accepted")
	}
	if _, err := New(h, "j", 4, 4); err == nil {
		t.Fatal("rank == size accepted")
	}
	if _, err := New(h, "j", 0, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
}

// TestMPIBootstrapExchange reproduces the classic PMI bootstrap: every
// process publishes its business card, fences, and reads every peer's.
func TestMPIBootstrapExchange(t *testing.T) {
	const ranks, procs = 7, 14
	s := newSession(t, ranks)
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := s.Handle(p % ranks)
			defer h.Close()
			pm, err := New(h, "mpijob", p, procs)
			if err != nil {
				errs[p] = err
				return
			}
			if err := pm.Put("card", fmt.Sprintf("addr-of-%d", p)); err != nil {
				errs[p] = err
				return
			}
			if err := pm.Fence(); err != nil {
				errs[p] = err
				return
			}
			for peer := 0; peer < procs; peer++ {
				card, err := pm.Get(peer, "card")
				if err != nil {
					errs[p] = fmt.Errorf("get card of %d: %w", peer, err)
					return
				}
				if card != fmt.Sprintf("addr-of-%d", peer) {
					errs[p] = fmt.Errorf("peer %d card %q", peer, card)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
}

func TestRepeatedFences(t *testing.T) {
	const procs = 4
	s := newSession(t, 2)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := s.Handle(p % 2)
			defer h.Close()
			pm, _ := New(h, "rounds", p, procs)
			for round := 0; round < 3; round++ {
				pm.Put(fmt.Sprintf("r%d", round), fmt.Sprintf("%d", p*round))
				if err := pm.Fence(); err != nil {
					t.Errorf("proc %d round %d: %v", p, round, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestBarrierOnly(t *testing.T) {
	const procs = 6
	s := newSession(t, 3)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := s.Handle(p % 3)
			defer h.Close()
			pm, _ := New(h, "bar", p, procs)
			if err := pm.Barrier(); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()
}

func TestGetValidation(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	pm, _ := New(h, "v", 0, 2)
	if _, err := pm.Get(5, "x"); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
	if pm.KVSName() != "pmi.v" {
		t.Fatalf("KVSName = %s", pm.KVSName())
	}
}

func TestAbortRecorded(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	pm, _ := New(h, "ab", 0, 1)
	if err := pm.Abort(9, "fatal"); err != nil {
		t.Fatal(err)
	}
	kc := kvs.NewClient(h)
	var rec struct {
		Rank int    `json:"rank"`
		Code int    `json:"code"`
		Msg  string `json:"msg"`
	}
	if err := kc.Get("pmi.ab.abort", &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Code != 9 || rec.Msg != "fatal" {
		t.Fatalf("abort record %+v", rec)
	}
}
