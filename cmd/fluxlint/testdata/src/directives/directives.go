// Package directives exercises the //fluxlint:ignore machinery: valid
// directives on the flagged line or the line above suppress exactly one
// pass there; malformed directives are themselves findings and suppress
// nothing.
package directives

//fluxlint:ignore wire-hygiene fixture: suppression from the line above
const suppressedAbove = "cmb.ping"

const suppressedSameLine = "cmb.stats" //fluxlint:ignore wire-hygiene fixture: same-line suppression

//fluxlint:ignore no-such-pass the unknown pass name must be reported
const unknownPass = "plain string"

//fluxlint:ignore wire-hygiene
const missingReason = "cmb.resync"
