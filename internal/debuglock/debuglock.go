// Package debuglock provides the mutex type used by the broker, KVS,
// and session layers. In a normal build it is a zero-overhead wrapper
// around sync.Mutex. Built with `-tags debuglock`, every acquisition is
// checked against a global lock-order graph and the process panics the
// first time two lock classes are ever acquired in inconsistent order —
// turning a latent deadlock (which a soak test only trips if the two
// paths race just so) into a deterministic failure on any path that
// closes the cycle.
//
// A lock's *class* is the name given via SetClass (usually one class
// per struct field, e.g. "broker.Broker.mu", shared by every instance).
// Unnamed locks each form their own single-instance class, so unrelated
// anonymous mutexes never produce false edges.
package debuglock

import (
	"bytes"
	"runtime"
	"strconv"
)

// gid returns the current goroutine id by parsing the runtime.Stack
// header ("goroutine N [running]: ..."). This is the standard
// stdlib-only technique (no runtime private APIs); it is only used in
// debuglock builds, where the overhead is acceptable.
func gid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, _ := strconv.ParseInt(string(s), 10, 64)
	return id
}
