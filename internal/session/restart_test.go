package session

import (
	"strings"
	"testing"
	"time"
)

// pingVia asserts rank target answers a ring-addressed ping sent from
// a handle at rank from, retrying briefly while the overlay settles.
func pingVia(t *testing.T, s *Session, from, target int) {
	t.Helper()
	h := s.Handle(from)
	defer h.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := h.RPC("cmb.ping", uint32(target), map[string]string{"pad": "p"})
		if err == nil {
			var body struct {
				Rank int `json:"rank"`
			}
			if uerr := resp.UnpackJSON(&body); uerr == nil && body.Rank == target {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank %d unreachable from %d: %v", target, from, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestKillRootRefused verifies rank 0 cannot be killed or crashed: a
// session without its event sequencer is a trap now that restart
// exists, so the PR-1 logged warning became an explicit error.
func TestKillRootRefused(t *testing.T) {
	s := newSession(t, 3, 2)
	if err := s.Kill(0); err == nil || !strings.Contains(err.Error(), "root fail-over") {
		t.Fatalf("Kill(0) = %v, want root fail-over error", err)
	}
	if !s.Alive(0) {
		t.Fatal("refused Kill(0) still marked rank 0 dead")
	}
	pingVia(t, s, 2, 0)
}

func TestCrashRootRefused(t *testing.T) {
	s, err := New(Options{Size: 3, Arity: 2, FaultInjection: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Chaos().Crash(0); err == nil || !strings.Contains(err.Error(), "root fail-over") {
		t.Fatalf("Crash(0) = %v, want root fail-over error", err)
	}
	if !s.Alive(0) {
		t.Fatal("refused Crash(0) still marked rank 0 dead")
	}
	pingVia(t, s, 1, 0)
}

// TestRestartErrors walks the refusal cases: the root, a rank outside
// the rank space, a live rank, and a gracefully departed rank.
func TestRestartErrors(t *testing.T) {
	s := newSession(t, 7, 2)
	for _, tc := range []struct {
		rank int
		want string
	}{
		{0, "root fail-over"},
		{99, "outside rank space"},
		{2, "alive"},
	} {
		if err := s.Restart(tc.rank); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Restart(%d) = %v, want %q", tc.rank, err, tc.want)
		}
	}
	if err := s.Shrink([]int{5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Restart(5); err == nil || !strings.Contains(err.Error(), "departed") {
		t.Fatalf("Restart(departed 5) = %v, want departed error", err)
	}
}

// TestRestartAfterKill kills an interior rank (whose children re-parent
// away) and brings it back: it must serve ring-addressed RPCs and ride
// the event plane again, under a fresh membership epoch.
func TestRestartAfterKill(t *testing.T) {
	s := newSession(t, 7, 2)
	before := s.Epoch()
	if err := s.Kill(1); err != nil { // interior: parent of ranks 3 and 4
		t.Fatal(err)
	}
	if err := s.Restart(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if s.Epoch() <= before {
		t.Fatalf("epoch %d did not advance past %d across kill+restart", s.Epoch(), before)
	}
	if !s.Alive(1) {
		t.Fatal("restarted rank still marked dead")
	}
	pingVia(t, s, 4, 1)

	// Event plane round trip through the restarted rank: it can publish
	// (request routed upstream to the sequencer) and it receives the
	// session-wide fan-out back on its new parent event link.
	h := s.Handle(1)
	defer h.Close()
	sub, err := h.Subscribe("restart.ev")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.PublishEvent("restart.ev", map[string]int{"from": 1}); err != nil {
		t.Fatalf("publish from restarted rank: %v", err)
	}
	select {
	case <-sub.Chan():
	case <-time.After(10 * time.Second):
		t.Fatal("restarted rank never received its own event")
	}

	// Killing it again and restarting again must also work: the restart
	// path fully replaces the previous incarnation.
	if err := s.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Restart(1); err != nil {
		t.Fatalf("second restart: %v", err)
	}
	pingVia(t, s, 6, 1)
}

// TestRestartAfterCrashSever runs the failure-path variant: a silent
// crash, failure detection, then restart under fault injection (so the
// chaos endpoint registry must be scrubbed and re-wired).
func TestRestartAfterCrashSever(t *testing.T) {
	s, err := New(Options{Size: 7, Arity: 2, FaultInjection: true, FaultSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ch := s.Chaos()
	if err := ch.Crash(5); err != nil {
		t.Fatal(err)
	}
	ch.Sever(5)
	if err := s.Restart(5); err != nil {
		t.Fatalf("restart after crash+sever: %v", err)
	}
	pingVia(t, s, 2, 5)
	// The new links are live fault injectors: blackhole the restarted
	// rank's traffic and verify control still works, then heal.
	ch.Partition(5)
	ch.Heal()
	pingVia(t, s, 0, 5)
}

// TestRestartRPC drives recovery through the wire API: cmb.restart at a
// surviving broker invokes the session hook.
func TestRestartRPC(t *testing.T) {
	s := newSession(t, 7, 2)
	if err := s.Kill(3); err != nil {
		t.Fatal(err)
	}
	h := s.Handle(2)
	defer h.Close()
	resp, err := h.RPC("cmb.restart", 2, map[string]int{"rank": 3})
	if err != nil {
		t.Fatalf("cmb.restart: %v", err)
	}
	var body struct {
		Rank  int    `json:"rank"`
		Epoch uint32 `json:"epoch"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		t.Fatal(err)
	}
	if body.Rank != 3 || body.Epoch == 0 {
		t.Fatalf("restart response %+v", body)
	}
	pingVia(t, s, 0, 3)

	// Malformed and refused requests answer with errors, not silence.
	if _, err := h.RPC("cmb.restart", 2, map[string]int{"rank": 0}); err == nil {
		t.Fatal("cmb.restart rank 0 succeeded")
	}
	if _, err := h.RPC("cmb.restart", 2, map[string]int{"rank": 3}); err == nil {
		t.Fatal("cmb.restart of a live rank succeeded")
	}
}
