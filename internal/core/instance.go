// Package core implements Flux's unified job model: a job is not merely
// a resource allocation but an independent RJMS instance that can either
// run an application or run its own job-management services and
// recursively accept and schedule sub-jobs.
//
// Instances form the paper's job hierarchy, governed by its three rules:
//
//   - Parent bounding rule: the parent grants and confines the resource
//     allocation of all of its children (MaxNodes caps growth).
//   - Child empowerment rule: within those bounds the child owns the
//     allocation — it has its own comms session, scheduler policy, and
//     job table, and the parent is not consulted for its scheduling.
//   - Parental consent rule: a child asks its parent to grow or shrink
//     its allocation, and it is up to the parent to grant the request.
//
// Each instance establishes its own comms session (overlay network) over
// its allocated nodes, with the standard comms-module set loaded, and
// the parent session assists the child's creation — here by wiring the
// child's in-process session directly.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/clock"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/barrier"
	"fluxgo/internal/modules/group"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/modules/live"
	"fluxgo/internal/modules/logmod"
	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/resource"
	"fluxgo/internal/sched"
	"fluxgo/internal/session"
)

// Options configures an instance.
type Options struct {
	// Policy is the instance's scheduler specialization; nil means FCFS.
	Policy sched.Policy
	// Programs extends the simulated program registry for wexec.
	Programs wexec.Registry
	// HBInterval is the instance heartbeat period (default 100ms).
	HBInterval time.Duration
	// Arity is the comms-session tree fan-out (default 2).
	Arity int
	// Clock overrides the time source (tests).
	Clock clock.Clock
	// MaxNodes bounds how far this instance's allocation may grow
	// (parent bounding rule). 0 means "initial allocation only".
	MaxNodes int
}

// Instance is one Flux job: an independent RJMS instance.
type Instance struct {
	id     string
	depth  int
	parent *Instance
	opts   Options

	sess *session.Session
	pool *resource.Pool

	// ctx is canceled at Close so job-wait goroutines unblock; wg
	// tracks them so Close returns only after they finish.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	nodes    []*resource.Resource // instance rank i runs on nodes[i]
	jobs     map[string]*JobRecord
	children map[string]*Instance
	queue    []*queuedJob // pending jobs, in submit order
	nextID   int
	closed   bool
}

// queuedJob is a submitted-but-not-yet-started program job.
type queuedJob struct {
	rec  *JobRecord
	args []string
	req  resource.Request
}

// standardModules is the comms-module set every instance session loads.
func standardModules(opts Options) []session.ModuleFactory {
	return []session.ModuleFactory{
		kvs.Factory(kvs.ModuleConfig{}),
		hb.Factory(hb.Config{Interval: opts.HBInterval}),
		live.Factory(live.Config{}),
		logmod.Factory(logmod.Config{}),
		group.Factory,
		barrier.Factory,
		wexec.Factory(wexec.Config{Programs: opts.Programs}),
	}
}

// newInstance builds an instance over the given cloned node set.
func newInstance(id string, depth int, parent *Instance, nodes []*resource.Resource, opts Options) (*Instance, error) {
	if opts.Policy == nil {
		opts.Policy = sched.FCFS{}
	}
	if opts.HBInterval == 0 {
		opts.HBInterval = 100 * time.Millisecond
	}
	if opts.MaxNodes < len(nodes) {
		opts.MaxNodes = len(nodes)
	}
	root := resource.New(resource.TypeCluster, "instance-"+id)
	for _, n := range nodes {
		root.AddChild(n)
	}
	// The comms session is sized to the instance's bound so granted
	// growth maps onto pre-wired ranks.
	sess, err := session.New(session.Options{
		Size:    opts.MaxNodes,
		Arity:   opts.Arity,
		Clock:   opts.Clock,
		Modules: standardModules(opts),
	})
	if err != nil {
		return nil, fmt.Errorf("core: instance %s session: %w", id, err)
	}
	inst := &Instance{
		id:       id,
		depth:    depth,
		parent:   parent,
		opts:     opts,
		sess:     sess,
		pool:     resource.NewPool(root),
		nodes:    append([]*resource.Resource(nil), nodes...),
		jobs:     map[string]*JobRecord{},
		children: map[string]*Instance{},
	}
	inst.ctx, inst.cancel = context.WithCancel(context.Background())
	return inst, nil
}

// NewRoot creates the root instance of a job hierarchy over a cluster
// resource graph. The root owns every node of the cluster.
func NewRoot(cluster *resource.Resource, opts Options) (*Instance, error) {
	nodes := cluster.FindAll(resource.TypeNode)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: cluster has no nodes")
	}
	cloned := make([]*resource.Resource, len(nodes))
	for i, n := range nodes {
		cloned[i] = n.Clone()
	}
	opts.MaxNodes = len(nodes)
	return newInstance("root", 0, nil, cloned, opts)
}

// ID returns the instance id (hierarchical, e.g. "root.3.1").
func (i *Instance) ID() string { return i.id }

// Depth returns the instance's depth in the job hierarchy (root = 0).
func (i *Instance) Depth() int { return i.depth }

// Size returns the instance's current node count.
func (i *Instance) Size() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.nodes)
}

// MaxNodes returns the bound the parent imposed on this instance.
func (i *Instance) MaxNodes() int { return i.opts.MaxNodes }

// Session returns the instance's comms session.
func (i *Instance) Session() *session.Session { return i.sess }

// Handle attaches a new handle to the instance's rank-0 broker.
func (i *Instance) Handle() *broker.Handle { return i.sess.Handle(0) }

// Pool returns the instance's resource pool (the child-empowerment
// surface: callers schedule against it freely).
func (i *Instance) Pool() *resource.Pool { return i.pool }

// Policy returns the instance's scheduling policy.
func (i *Instance) Policy() sched.Policy { return i.opts.Policy }

// Parent returns the parent instance, or nil at the hierarchy root.
func (i *Instance) Parent() *Instance { return i.parent }

// genID mints a child/job identifier. Caller holds mu.
func (i *Instance) genIDLocked(kind string) string {
	i.nextID++
	return fmt.Sprintf("%s.%s%d", i.id, kind, i.nextID)
}

// Spawn creates a child instance: the parent allocates req from its own
// pool (bounding), clones the granted nodes into the child's independent
// resource view, and brings up the child's comms session (empowerment).
// maxNodes > req.Nodes pre-authorizes future growth up to that bound.
func (i *Instance) Spawn(req resource.Request, maxNodes int, opts Options) (*Instance, error) {
	i.mu.Lock()
	if i.closed {
		i.mu.Unlock()
		return nil, fmt.Errorf("core: instance %s is closed", i.id)
	}
	childID := i.genIDLocked("c")
	i.mu.Unlock()

	alloc, err := i.pool.Allocate(childID, req)
	if err != nil {
		return nil, fmt.Errorf("core: spawn %s: %w", childID, err)
	}
	cloned := make([]*resource.Resource, len(alloc.Nodes))
	for k, n := range alloc.Nodes {
		cloned[k] = n.Clone()
	}
	if maxNodes < len(cloned) {
		maxNodes = len(cloned)
	}
	opts.MaxNodes = maxNodes
	child, err := newInstance(childID, i.depth+1, i, cloned, opts)
	if err != nil {
		i.pool.Release(childID)
		return nil, err
	}
	i.mu.Lock()
	i.children[childID] = child
	i.mu.Unlock()
	return child, nil
}

// Children returns the live child instances.
func (i *Instance) Children() []*Instance {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]*Instance, 0, len(i.children))
	for _, c := range i.children {
		out = append(out, c)
	}
	return out
}

// Grow asks the parent for n more nodes (parental consent rule). The
// parent refuses growth beyond the bound it granted at spawn time or
// when its own pool cannot satisfy the request.
func (i *Instance) Grow(n int) error {
	if n < 1 {
		return fmt.Errorf("core: grow by %d", n)
	}
	if i.parent == nil {
		return fmt.Errorf("core: root instance has no parent to ask")
	}
	i.mu.Lock()
	cur := len(i.nodes)
	i.mu.Unlock()
	if cur+n > i.opts.MaxNodes {
		return fmt.Errorf("core: grow to %d exceeds parent bound of %d nodes", cur+n, i.opts.MaxNodes)
	}
	granted, err := i.parent.pool.Grow(i.id, n)
	if err != nil {
		return fmt.Errorf("core: parent refused grow: %w", err)
	}
	cloned := make([]*resource.Resource, len(granted))
	for k, g := range granted {
		cloned[k] = g.Clone()
	}
	i.pool.Adopt(cloned)
	i.mu.Lock()
	i.nodes = append(i.nodes, cloned...)
	i.mu.Unlock()
	return nil
}

// Shrink returns n nodes to the parent. The released nodes must be idle
// in this instance's pool.
func (i *Instance) Shrink(n int) error {
	if n < 1 {
		return fmt.Errorf("core: shrink by %d", n)
	}
	if i.parent == nil {
		return fmt.Errorf("core: root instance has no parent to return nodes to")
	}
	i.mu.Lock()
	if n >= len(i.nodes) {
		i.mu.Unlock()
		return fmt.Errorf("core: shrink of %d would empty the instance", n)
	}
	victims := i.nodes[len(i.nodes)-n:]
	i.mu.Unlock()

	if err := i.pool.Evict(victims); err != nil {
		return fmt.Errorf("core: shrink blocked: %w", err)
	}
	if _, err := i.parent.pool.Shrink(i.id, n); err != nil {
		// Roll back the eviction; the parent's refusal leaves us intact.
		i.pool.Adopt(victims)
		return fmt.Errorf("core: parent refused shrink: %w", err)
	}
	i.mu.Lock()
	i.nodes = i.nodes[:len(i.nodes)-n]
	i.mu.Unlock()
	return nil
}

// Close shuts the instance down: children first (depth-first), then
// running jobs' sessions, then the comms session; finally the parent's
// allocation is released.
func (i *Instance) Close() {
	i.mu.Lock()
	if i.closed {
		i.mu.Unlock()
		return
	}
	i.closed = true
	children := make([]*Instance, 0, len(i.children))
	for _, c := range i.children {
		children = append(children, c)
	}
	queued := i.queue
	i.queue = nil
	i.mu.Unlock()

	for _, q := range queued {
		q.rec.err = fmt.Errorf("core: instance %s closed before job started", i.id)
		close(q.rec.done)
	}
	for _, c := range children {
		c.Close()
	}
	// Unblock job-wait goroutines and let them finish before the
	// session they are waiting on is torn down.
	i.cancel()
	i.wg.Wait()
	i.sess.Close()
	if i.parent != nil {
		i.parent.pool.Release(i.id)
		i.parent.mu.Lock()
		delete(i.parent.children, i.id)
		i.parent.mu.Unlock()
	}
}

// JobRecord tracks one program job run by an instance.
type JobRecord struct {
	ID      string
	Program string
	Ranks   []int // instance-session ranks hosting tasks

	done   chan struct{}
	result wexec.JobResult
	err    error
}

// Wait blocks until the job completes and returns its result.
func (j *JobRecord) Wait(ctx context.Context) (wexec.JobResult, error) {
	select {
	case <-j.done:
		return j.result, j.err
	case <-ctx.Done():
		return wexec.JobResult{}, ctx.Err()
	}
}

// Submit enqueues a simulated program job needing req.Nodes of this
// instance's allocation. Jobs start when the instance's scheduler policy
// admits them — strict arrival order under FCFS, with idle-resource
// backfilling under EASY — and launch in bulk via the instance's wexec
// module. Submit returns immediately; use JobRecord.Wait for completion.
func (i *Instance) Submit(program string, args []string, req resource.Request) (*JobRecord, error) {
	i.mu.Lock()
	if i.closed {
		i.mu.Unlock()
		return nil, fmt.Errorf("core: instance %s is closed", i.id)
	}
	if req.Nodes < 1 || req.Nodes > i.opts.MaxNodes {
		i.mu.Unlock()
		return nil, fmt.Errorf("core: job needs %d nodes; instance is bounded at %d",
			req.Nodes, i.opts.MaxNodes)
	}
	jobID := i.genIDLocked("j")
	rec := &JobRecord{ID: jobID, Program: program, Ranks: nil, done: make(chan struct{})}
	i.jobs[jobID] = rec
	i.queue = append(i.queue, &queuedJob{rec: rec, args: args, req: req})
	i.mu.Unlock()
	i.trySchedule()
	return rec, nil
}

// trySchedule starts queued jobs that fit the free resources. FCFS
// blocks strictly behind the queue head; any other policy (EASY) lets
// later jobs backfill idle nodes. (Live jobs carry no run-time estimate,
// so EASY backfilling here is the conservative no-reservation variant.)
func (i *Instance) trySchedule() {
	strict := i.opts.Policy.Name() == "fcfs"
	for {
		i.mu.Lock()
		if i.closed {
			i.mu.Unlock()
			return
		}
		// Pick and allocate under the instance lock so concurrent
		// schedulers cannot double-book the same nodes.
		var pick *queuedJob
		var alloc *resource.Allocation
		pickIdx := -1
		for idx, q := range i.queue {
			if a, err := i.pool.Allocate(q.rec.ID, q.req); err == nil {
				pick, alloc, pickIdx = q, a, idx
				break
			}
			if strict {
				break // head of queue blocks
			}
		}
		if pick == nil {
			i.mu.Unlock()
			return
		}
		i.queue = append(i.queue[:pickIdx], i.queue[pickIdx+1:]...)
		rankOf := make(map[*resource.Resource]int, len(i.nodes))
		for r, n := range i.nodes {
			rankOf[n] = r
		}
		i.mu.Unlock()

		if err := i.startJob(pick, alloc, rankOf); err != nil {
			pick.rec.err = err
			close(pick.rec.done)
		}
	}
}

// startJob launches an already-allocated job and arranges completion.
func (i *Instance) startJob(q *queuedJob, alloc *resource.Allocation, rankOf map[*resource.Resource]int) error {
	rec := q.rec
	ranks := make([]int, len(alloc.Nodes))
	for k, n := range alloc.Nodes {
		r, ok := rankOf[n]
		if !ok {
			i.pool.Release(rec.ID)
			return fmt.Errorf("core: allocated node %s has no session rank", n.Name)
		}
		ranks[k] = r
	}
	rec.Ranks = ranks
	h := i.sess.Handle(0)
	if _, err := wexec.Run(h, rec.ID, rec.Program, q.args, ranks); err != nil {
		h.Close()
		i.pool.Release(rec.ID)
		return err
	}
	i.wg.Add(1)
	go func() {
		defer i.wg.Done()
		defer h.Close()
		rec.result, rec.err = wexec.Wait(i.ctx, h, rec.ID)
		i.pool.Release(rec.ID)
		close(rec.done)
		i.trySchedule() // freed resources may admit queued jobs
	}()
	return nil
}

// Jobs returns the records of all jobs ever submitted to this instance.
func (i *Instance) Jobs() []*JobRecord {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]*JobRecord, 0, len(i.jobs))
	for _, j := range i.jobs {
		out = append(out, j)
	}
	return out
}
