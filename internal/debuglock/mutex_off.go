//go:build !debuglock

package debuglock

import "sync"

// Mutex is sync.Mutex in release builds; `-tags debuglock` swaps in the
// order-checking variant. The zero value is an unlocked mutex.
type Mutex struct {
	mu sync.Mutex
}

// SetClass names the lock's order class. A no-op in release builds.
func (m *Mutex) SetClass(name string) {}

// Lock locks m.
func (m *Mutex) Lock() { m.mu.Lock() }

// Unlock unlocks m.
func (m *Mutex) Unlock() { m.mu.Unlock() }
