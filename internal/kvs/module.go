package kvs

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/cas"
	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// errNotDir aliases the wire-level ENOTDIR: a key path traverses a
// value object.
const errNotDir = wire.ErrnoNotDir

// Wire bodies.

type putBody struct {
	Key  string `json:"key"`
	Ref  string `json:"ref"`
	Data []byte `json:"data"`
}

// fenceEntry is one participant's contribution to a fence. The ID is
// globally unique (fence name + handle identity), and entries travel
// verbatim through every aggregation level, so a retried or duplicated
// batch can always be deduplicated by ID — retransmission can never
// inflate the participant count or re-append ops.
type fenceEntry struct {
	ID  string `json:"id"`
	Ops []Op   `json:"ops,omitempty"`
}

type fenceBody struct {
	Name    string            `json:"name"`
	NProcs  int               `json:"nprocs"`
	Entries []fenceEntry      `json:"entries"`           // deduped by ID at every level
	Objects map[string][]byte `json:"objects,omitempty"` // ref-hex -> encoded object
}

type rootBody struct {
	Root    string `json:"root"` // hex root ref; "" while the store is empty
	Version uint64 `json:"version"`
}

type getBody struct {
	Key string `json:"key"`
	// Root, when set (hex), reads from that snapshot root instead of the
	// current one: because every update produces a new root reference and
	// old and new objects coexist in the stores, any previously observed
	// root remains readable (subject to slave-cache expiry; the master
	// pins everything).
	Root string `json:"root,omitempty"`
}

type getResp struct {
	Ref string          `json:"ref"`
	Val json.RawMessage `json:"val,omitempty"`
	Dir []string        `json:"dir,omitempty"`
}

// loadBody requests object fault-ins. The batched form (Refs) lets one
// RPC carry every miss a directory walk discovers, so a deep read costs
// one upstream round-trip per level instead of one per object; the
// single-ref form (Ref) is kept so old clients and tests interoperate.
type loadBody struct {
	Ref  string   `json:"ref,omitempty"`
	Refs []string `json:"refs,omitempty"`
}

// loadResp answers a loadBody: Data for the single-ref form, Objects
// (ref-hex -> encoded object) for the batched form. A batched response
// carries every requested object the responder holds; refs it could not
// produce are simply absent, and the requester decides which absences
// are fatal.
type loadResp struct {
	Data    []byte            `json:"data,omitempty"`
	Objects map[string][]byte `json:"objects,omitempty"`
}

type syncBody struct {
	Version uint64 `json:"version"`
}

// fenceState accumulates fence contributions at one module instance.
type fenceState struct {
	nprocs  int
	seen    map[string]bool   // entry IDs accumulated (dedupe under retry/dup)
	entries []fenceEntry      // deduped entries, in arrival order
	unsent  int               // entries[unsent:] not yet batched upstream (slaves)
	objects map[string][]byte // unsent objects, deduped by ref
	sentObj map[string]bool   // refs already forwarded upstream (slaves):
	// an object's data crosses each tree edge at most once per fence;
	// later batches carry the (key, ref) tuple only. This is what makes
	// redundant values reduce up the tree (Fig. 3) while tuples always
	// concatenate.
	pending []*wire.Message // requests awaiting fence completion
}

// doneFence is the master's record of a completed fence, kept so batches
// retried after completion (their response was lost to a link failure)
// are answered from cache instead of seeding a phantom fence that could
// never complete — or worse, re-applying ops.
type doneFence struct {
	resp   rootBody
	errmsg string // nonempty if the fence failed to apply
}

// doneFenceCap bounds the master's completed-fence reply cache.
const doneFenceCap = 256

// maxLoadBatch caps the refs one kvs.load RPC carries: a directory walk
// prefetches at most this many missing entries per level, and larger
// fault sets are chunked into several RPCs.
const maxLoadBatch = 64

// maxLoadWorkers bounds concurrent get/load worker goroutines per module
// instance. Read requests beyond the bound queue on the semaphore inside
// their (cheap) goroutines, so the Recv loop itself never blocks on read
// traffic.
const maxLoadWorkers = 64

// ModuleConfig parameterizes the kvs comms module.
type ModuleConfig struct {
	// CacheMaxAge expires unused slave-cache objects after this period of
	// disuse, checked on each heartbeat. Zero disables expiry.
	CacheMaxAge time.Duration
	// Service is the comms-module service name; empty means "kvs".
	// Sharded deployments load several instances ("kvs0", "kvs1", ...).
	Service string
	// MasterRank places the master instance (default rank 0). With the
	// master off the tree root, aggregated traffic still reduces toward
	// rank 0 and takes one rank-addressed hop to the master from there —
	// the paper's future-work direction of "distributing the KVS master
	// itself" via per-namespace masters.
	MasterRank int
	// Dir, when nonempty, backs this instance's object store with the
	// disk tier at Dir/rank<N>/<service>: a write-through WAL plus pack
	// checkpoints (see cas.OpenDurable). A restarted rank cold-loads
	// its cache from disk, and a restarted master resumes its root ref
	// and commit sequence without losing acknowledged fences — the
	// master acknowledges a fence only after its root is fsynced.
	Dir string
	// FS is the filesystem the durable tier writes through; nil means
	// the real one. Chaos tests inject a cas.FaultyFS here.
	FS cas.FS
	// CheckpointEvery folds the WAL into a new pack every N commits
	// (master only). Zero checkpoints only on explicit kvs.checkpoint
	// requests.
	CheckpointEvery int
}

// Module is the kvs comms module. The instance at cfg.MasterRank is the
// master: it applies commits and publishes new root references. All
// other instances are caching slaves.
type Module struct {
	cfg   ModuleConfig
	h     *broker.Handle
	store *cas.Store

	// disk is the durable tier beneath store when cfg.Dir is set; nil
	// for a purely in-memory instance. commitsSinceCkpt drives the
	// CheckpointEvery cadence (Recv-goroutine-owned, master only).
	disk             *cas.Durable
	commitsSinceCkpt int

	// ctx is canceled by Shutdown so background pollers unblock
	// promptly instead of riding out their RPC deadlines; wg tracks
	// them so Shutdown returns only once they are gone.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	root      cas.Ref
	version   uint64
	askedRoot bool

	fences map[string]*fenceState
	syncs  []*wire.Message // kvs.sync requests waiting for a version

	// doneFences / doneOrder: master-only reply cache for retried
	// post-completion fence batches (see doneFence).
	doneFences map[string]doneFence
	doneOrder  []string

	// flights collapses duplicate concurrent fault-ins of one ref, and
	// sem bounds the get/load worker goroutines. Both are touched from
	// worker goroutines; everything below root (root, version, fences,
	// syncs, polling, askedRoot, doneFences) stays Recv-goroutine-owned.
	flights flightGroup
	sem     chan struct{}

	// polling marks an in-flight heartbeat-driven root poll (slaves): when
	// sync waiters are stalled — typically because a setroot event was
	// lost to an injected fault — the slave asks upstream for the current
	// root instead of hanging until the event plane happens to carry a
	// newer one.
	polling bool

	// Observability: counter and histogram handles into the broker's
	// registry, resolved once at Init and namespaced by service name so
	// sharded instances ("kvs0", "kvs1", ...) stay distinguishable.
	obsGets        *obs.Counter // get requests served
	obsLoads       *obs.Counter // objects faulted in from upstream
	obsBatches     *obs.Counter // upstream load RPCs issued (each may carry many refs)
	obsCoalesced   *obs.Counter // fault-ins satisfied by waiting on another goroutine's fetch
	obsDiskLoads   *obs.Counter // read misses served from the disk tier instead of upstream
	obsRecoveries  *obs.Counter // durable opens that found prior state on disk
	obsPersistErrs *obs.Counter // commits refused because the root could not be made durable
	histGet        *obs.Histogram
	histPut        *obs.Histogram
	histFence      *obs.Histogram
	histLoad       *obs.Histogram
	histReplay     *obs.Histogram // cold-restore (recovery replay) latency
	histCheckpoint *obs.Histogram

	// Storage gauges mirror cas.DurableStats into the broker registry so
	// flux stats / flight dumps carry the disk tier's state without a
	// separate kvs.storage RPC. gaugePoisoned is the latch the session
	// flight recorder polls for (*.storage.poisoned nonzero => dump).
	gaugeWALBytes   *obs.Gauge
	gaugeWALRecords *obs.Gauge
	gaugeSyncs      *obs.Gauge
	gaugeCkpts      *obs.Gauge
	gaugePackSeq    *obs.Gauge
	gaugePackBytes  *obs.Gauge
	gaugeIndexed    *obs.Gauge
	gaugeRecovered  *obs.Gauge
	gaugeReplayed   *obs.Gauge
	gaugeDiskLoads  *obs.Gauge
	gaugePoisoned   *obs.Gauge
}

// NewModule returns a kvs module instance with the given configuration.
func NewModule(cfg ModuleConfig) *Module {
	if cfg.Service == "" {
		cfg.Service = "kvs"
	}
	return &Module{cfg: cfg, fences: map[string]*fenceState{}, doneFences: map[string]doneFence{}}
}

// Factory returns a session.ModuleFactory-compatible constructor loading
// the kvs module at every rank.
func Factory(cfg ModuleConfig) func(rank, size int) broker.Module {
	return func(rank, size int) broker.Module { return NewModule(cfg) }
}

// Name implements broker.Module.
func (m *Module) Name() string { return m.cfg.Service }

// setrootTopic is the service's root-update event topic.
func (m *Module) setrootTopic() string { return m.cfg.Service + ".setroot" }

// Subscriptions implements broker.Module: root updates plus the session
// heartbeat used to synchronize cache expiry.
func (m *Module) Subscriptions() []string { return []string{m.setrootTopic(), wire.EventHeartbeat} }

// Init implements broker.Module.
func (m *Module) Init(h *broker.Handle) error {
	m.h = h
	m.ctx, m.cancel = context.WithCancel(context.Background())
	reg := h.Broker().Metrics()
	svc := m.cfg.Service
	m.obsGets = reg.Counter(svc + ".gets")
	m.obsLoads = reg.Counter(svc + ".loads")
	m.obsBatches = reg.Counter(svc + ".load_batches")
	m.obsCoalesced = reg.Counter(svc + ".loads_coalesced")
	m.obsDiskLoads = reg.Counter(svc + ".disk_loads")
	m.obsRecoveries = reg.Counter(svc + ".recoveries")
	m.obsPersistErrs = reg.Counter(svc + ".persist_errors")
	m.sem = make(chan struct{}, maxLoadWorkers)
	m.histGet = reg.Histogram(svc + ".get_ns")
	m.histPut = reg.Histogram(svc + ".put_ns")
	m.histFence = reg.Histogram(svc + ".fence_ns")
	m.histLoad = reg.Histogram(svc + ".load_ns")
	m.histReplay = reg.Histogram(svc + ".replay_ns")
	m.histCheckpoint = reg.Histogram(svc + ".checkpoint_ns")
	m.gaugeWALBytes = reg.Gauge(svc + ".storage.wal_bytes")
	m.gaugeWALRecords = reg.Gauge(svc + ".storage.wal_records")
	m.gaugeSyncs = reg.Gauge(svc + ".storage.syncs")
	m.gaugeCkpts = reg.Gauge(svc + ".storage.checkpoints")
	m.gaugePackSeq = reg.Gauge(svc + ".storage.pack_seq")
	m.gaugePackBytes = reg.Gauge(svc + ".storage.pack_bytes")
	m.gaugeIndexed = reg.Gauge(svc + ".storage.indexed_objects")
	m.gaugeRecovered = reg.Gauge(svc + ".storage.recovered_objects")
	m.gaugeReplayed = reg.Gauge(svc + ".storage.replayed_records")
	m.gaugeDiskLoads = reg.Gauge(svc + ".storage.disk_loads")
	m.gaugePoisoned = reg.Gauge(svc + ".storage.poisoned")

	if m.cfg.Dir == "" {
		m.store = cas.NewStore(h.Clock())
		return nil
	}
	dir := filepath.Join(m.cfg.Dir, fmt.Sprintf("rank%d", h.Rank()), svc)
	start := time.Now()
	disk, err := cas.OpenDurable(m.cfg.FS, dir, h.Clock())
	if err != nil {
		return fmt.Errorf("%s: open durable tier: %w", svc, err)
	}
	m.disk = disk
	m.store = disk.Store()
	st := disk.Stats()
	if st.RecoveredObjects > 0 || st.ReplayedRecords > 0 {
		m.obsRecoveries.Inc()
		m.histReplay.Observe(time.Since(start))
	}
	if m.isMaster() {
		if root, version := disk.Root(); version > 0 {
			// Resume exactly where the last acknowledged fence left the
			// tree: acknowledged commits survive the restart by
			// construction (the ack barrier is Commit's fsync).
			m.root, m.version = root, version
			m.h.Log(obs.LevelInfo, svc,
				"master recovered root %s v%d (%d objects, %d WAL records replayed)",
				root.Short(), version, st.RecoveredObjects, st.ReplayedRecords)
		}
	}
	m.syncStorageMetrics()
	return nil
}

// syncStorageMetrics copies the durable tier's counters into the broker
// registry gauges. Called wherever the disk state moves (commit,
// checkpoint, heartbeat, storage RPC) so flux stats and flight dumps
// see a current picture without asking the cas layer directly.
func (m *Module) syncStorageMetrics() {
	if m.disk == nil {
		return
	}
	st := m.disk.Stats()
	m.gaugeWALBytes.Set(st.WALBytes)
	m.gaugeWALRecords.Set(int64(st.WALRecords))
	m.gaugeSyncs.Set(int64(st.Syncs))
	m.gaugeCkpts.Set(int64(st.Checkpoints))
	m.gaugePackSeq.Set(int64(st.PackSeq))
	m.gaugePackBytes.Set(st.PackBytes)
	m.gaugeIndexed.Set(int64(st.IndexedObjects))
	m.gaugeRecovered.Set(int64(st.RecoveredObjects))
	m.gaugeReplayed.Set(int64(st.ReplayedRecords))
	m.gaugeDiskLoads.Set(int64(st.DiskLoads))
	if st.SinkErr != "" {
		m.gaugePoisoned.Set(1)
	} else {
		m.gaugePoisoned.Set(0)
	}
}

// Shutdown implements broker.Module.
func (m *Module) Shutdown() {
	m.cancel()
	m.wg.Wait()
	if m.disk != nil {
		if err := m.disk.Close(); err != nil {
			m.h.Log(obs.LevelWarn, m.cfg.Service, "durable close: %v", err)
		}
	}
}

func (m *Module) isMaster() bool { return m.h.Rank() == m.cfg.MasterRank }

// upstreamTarget picks the routing for slave -> master traffic: up the
// tree normally; at the tree root (when the master lives elsewhere) one
// rank-addressed hop to the master.
func (m *Module) upstreamTarget() uint32 {
	if m.h.Rank() == 0 && m.cfg.MasterRank != 0 {
		return uint32(m.cfg.MasterRank)
	}
	return wire.NodeidUpstream
}

// Recv implements broker.Module. All module state is owned by the Recv
// goroutine except fence completion, which arrives on batch-RPC
// goroutines and re-enters through the broker as kvs.fencedone requests.
// Read traffic (get/load) is parsed here, then served on bounded worker
// goroutines that touch only the thread-safe store, the singleflight
// table, and the handle — so a read stalled faulting objects upstream
// no longer blocks every other reader behind it.
func (m *Module) Recv(msg *wire.Message) {
	if msg.Type == wire.Event {
		switch msg.Topic {
		case wire.EventHeartbeat:
			if m.cfg.CacheMaxAge > 0 && !m.isMaster() {
				m.store.Expire(m.cfg.CacheMaxAge)
			}
			m.pollRootIfStalled()
			m.syncStorageMetrics()
		case m.setrootTopic():
			m.recvSetroot(msg)
		}
		return
	}
	switch msg.Method() {
	case "put":
		start := time.Now()
		m.recvPut(msg)
		m.histPut.Observe(time.Since(start))
	case "fence", "commit":
		start := time.Now()
		m.recvFence(msg)
		m.histFence.Observe(time.Since(start))
	case "fencedone":
		m.recvFenceDone(msg)
	case "rootupdate":
		m.recvRootUpdate(msg)
	case "get":
		// Served on a worker goroutine; recvGet times itself so the
		// histogram covers the full walk, not just the dispatch.
		m.recvGet(msg)
	case "load":
		m.recvLoad(msg)
	case "sync":
		m.recvSync(msg)
	case "getversion":
		m.h.Respond(msg, rootBody{Root: refString(m.root), Version: m.version})
	case "getroot":
		m.recvGetroot(msg)
	case "checkpoint":
		m.recvCheckpoint(msg)
	case "storage":
		m.recvStorage(msg)
	case "stats":
		m.recvStats(msg)
	default:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("%s: unknown method %q", m.cfg.Service, msg.Method()))
	}
}

func refString(r cas.Ref) string {
	if r.IsZero() {
		return ""
	}
	return r.String()
}

// recvPut caches a dirty value object locally, in write-back mode: the
// data is not flushed upstream until the owning client commits or fences.
func (m *Module) recvPut(msg *wire.Message) {
	body, err := decodePutBody(msg)
	if err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	ref := cas.HashOf(body.Data)
	if ref.String() != body.Ref {
		m.h.RespondError(msg, broker.ErrnoProto, "kvs: put ref does not match data hash")
		return
	}
	m.store.PutRaw(body.Data)
	if m.isMaster() {
		m.store.Pin(ref)
	}
	m.h.Respond(msg, struct{}{})
}

// recvFence accumulates one fence contribution (a client entry or an
// aggregated child batch). Entries are deduplicated by ID, so retried
// and fault-duplicated batches are harmless; objects are deduped by
// content hash, so redundant values reduce up the tree while (key, ref)
// tuples concatenate — the asymmetry behind Fig. 3.
func (m *Module) recvFence(msg *wire.Message) {
	var body fenceBody
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	if msg.Method() == "commit" {
		body.NProcs = 1
	}
	if m.isMaster() {
		// A batch retried after completion (its response was lost): answer
		// from the reply cache rather than seeding a phantom fence.
		if done, ok := m.doneFences[body.Name]; ok {
			if done.errmsg != "" {
				m.h.RespondError(msg, broker.ErrnoInval, done.errmsg)
			} else {
				m.h.Respond(msg, done.resp)
			}
			return
		}
	}
	st := m.fences[body.Name]
	if st == nil {
		st = &fenceState{
			nprocs:  body.NProcs,
			seen:    map[string]bool{},
			objects: map[string][]byte{},
			sentObj: map[string]bool{},
		}
		m.fences[body.Name] = st
	}
	if st.nprocs != body.NProcs {
		m.h.RespondError(msg, broker.ErrnoInval,
			fmt.Sprintf("kvs: fence %q nprocs mismatch (%d vs %d)", body.Name, body.NProcs, st.nprocs))
		return
	}
	for _, e := range body.Entries {
		if st.seen[e.ID] {
			continue // retransmitted or duplicated entry
		}
		st.seen[e.ID] = true
		st.entries = append(st.entries, e)
		// A client entry references locally cached dirty objects; attach
		// them so they flow upstream with the batch ("commit flushes
		// tuples and any still-dirty objects to the master").
		for _, op := range e.Ops {
			if op.Delete || op.Ref == "" {
				continue
			}
			if _, have := st.objects[op.Ref]; have {
				continue
			}
			if st.sentObj[op.Ref] {
				continue // data already crossed our upstream edge
			}
			if ref, err := cas.ParseRef(op.Ref); err == nil {
				if data, ok := m.store.GetRaw(ref); ok {
					st.objects[op.Ref] = data
				}
			}
		}
	}
	for refHex, data := range body.Objects {
		if _, dup := st.objects[refHex]; !dup && !st.sentObj[refHex] {
			st.objects[refHex] = data
		}
	}
	st.pending = append(st.pending, msg)

	if m.isMaster() {
		m.maybeCompleteFence(body.Name, st)
	}
}

// maybeCompleteFence (master only) applies the fence once every
// participant has contributed, publishes the new root session-wide, and
// answers all held batch requests with the new root version.
func (m *Module) maybeCompleteFence(name string, st *fenceState) {
	if len(st.entries) < st.nprocs {
		return
	}
	// Make sure every flushed object is present and pinned (client
	// entries at rank 0 reference the local store directly).
	for _, data := range st.objects {
		m.store.Pin(m.store.PutRaw(data))
	}
	var ops []Op
	for _, e := range st.entries {
		ops = append(ops, e.Ops...)
	}
	newRoot, err := ApplyOps(m.store, m.root, ops, true)
	if err != nil {
		for _, req := range st.pending {
			m.h.RespondError(req, broker.ErrnoInval, err.Error())
		}
		m.recordDone(name, doneFence{errmsg: err.Error()})
		delete(m.fences, name)
		return
	}
	if m.disk != nil {
		// The acknowledgment barrier: the new root (and, via the shared
		// WAL, every object it references) must be fsynced before any
		// participant hears success — a fence acknowledged here survives
		// any crash. A storage failure answers the held batches with
		// EIO but keeps the fence state: entry-ID dedup makes a retried
		// batch re-enter and retry this persist idempotently (ApplyOps
		// over the same unchanged root recomputes the same newRoot), so
		// the fence is not poisoned, merely not yet acknowledged.
		if perr := m.disk.Commit(newRoot, m.version+1); perr != nil {
			m.obsPersistErrs.Inc()
			m.syncStorageMetrics()
			m.h.Log(obs.LevelErr, m.cfg.Service, "fence %q persist: %v", name, perr)
			for _, req := range st.pending {
				m.h.RespondError(req, broker.ErrnoIO, perr.Error())
			}
			st.pending = st.pending[:0]
			return
		}
		m.syncStorageMetrics()
	}
	m.root = newRoot
	m.version++
	resp := rootBody{Root: refString(m.root), Version: m.version}
	if _, err := m.h.PublishEvent(m.setrootTopic(), resp); err != nil && !broker.ErrShutdown(err) {
		// The root update is already applied locally; slaves will learn
		// of it from the next successful publication or a root poll.
		_ = err
	}
	for _, req := range st.pending {
		m.h.Respond(req, resp)
	}
	m.recordDone(name, doneFence{resp: resp})
	delete(m.fences, name)
	m.serveSyncs()
	m.maybeCheckpoint()
}

// maybeCheckpoint folds the WAL into a pack every CheckpointEvery
// commits. It runs inline on the Recv goroutine — a checkpoint is a
// single buffered write + fsync + rename, and commits must serialize
// against it anyway. Failure is logged, not fatal: the WAL remains the
// source of truth and Commit's heal path covers any poisoning.
func (m *Module) maybeCheckpoint() {
	if m.disk == nil || m.cfg.CheckpointEvery <= 0 {
		return
	}
	m.commitsSinceCkpt++
	if m.commitsSinceCkpt < m.cfg.CheckpointEvery {
		return
	}
	m.commitsSinceCkpt = 0
	start := time.Now()
	if _, err := m.disk.Checkpoint(); err != nil {
		m.h.Log(obs.LevelWarn, m.cfg.Service, "periodic checkpoint: %v", err)
		m.syncStorageMetrics()
		return
	}
	m.histCheckpoint.Observe(time.Since(start))
	m.syncStorageMetrics()
}

// recordDone remembers a completed fence in the bounded reply cache.
func (m *Module) recordDone(name string, d doneFence) {
	if _, exists := m.doneFences[name]; !exists {
		m.doneOrder = append(m.doneOrder, name)
		if len(m.doneOrder) > doneFenceCap {
			delete(m.doneFences, m.doneOrder[0])
			m.doneOrder = m.doneOrder[1:]
		}
	}
	m.doneFences[name] = d
}

// Idle implements broker.IdleBatcher: slaves forward their accumulated
// fence aggregates upstream once the inbox drains, realizing the tree
// reduction.
func (m *Module) Idle() {
	if m.isMaster() {
		return
	}
	for name, st := range m.fences {
		if st.unsent == len(st.entries) {
			continue
		}
		batch := fenceBody{
			Name:    name,
			NProcs:  st.nprocs,
			Entries: append([]fenceEntry(nil), st.entries[st.unsent:]...),
			Objects: st.objects,
		}
		for ref := range st.objects {
			st.sentObj[ref] = true
		}
		st.unsent = len(st.entries)
		st.objects = map[string][]byte{}
		go m.sendFenceBatch(batch)
	}
}

// sendFenceBatch forwards one aggregate upstream and re-injects the
// completion through the broker so fence state stays single-threaded.
// Transient routing failures (a parent crash mid-fence, a deadline hit
// during a partition) are retried with backoff: entry-ID deduplication
// upstream makes retransmission safe, and a retry issued after
// re-parenting travels the adoptive parent path.
func (m *Module) sendFenceBatch(batch fenceBody) {
	resp, err := m.h.RPCWithOptions(context.Background(), m.cfg.Service+".fence", m.upstreamTarget(), batch,
		broker.RPCOptions{Retries: 6, Backoff: 25 * time.Millisecond})
	done := rootBody{}
	status := ""
	if err != nil {
		status = err.Error()
	} else if uerr := resp.UnpackJSON(&done); uerr != nil {
		status = uerr.Error()
	}
	m.h.Send(m.cfg.Service+".fencedone", uint32(m.h.Rank()), struct {
		Name    string `json:"name"`
		Error   string `json:"error,omitempty"`
		Root    string `json:"root"`
		Version uint64 `json:"version"`
	}{batch.Name, status, done.Root, done.Version})
}

// recvFenceDone completes a fence at a slave: every request held for the
// fence is answered with the (shared) completion result.
func (m *Module) recvFenceDone(msg *wire.Message) {
	var body struct {
		Name    string `json:"name"`
		Error   string `json:"error"`
		Root    string `json:"root"`
		Version uint64 `json:"version"`
	}
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	st := m.fences[body.Name]
	if st == nil {
		return // another batch already completed this fence
	}
	delete(m.fences, body.Name)
	if body.Error != "" {
		for _, req := range st.pending {
			m.h.RespondError(req, broker.ErrnoProto, body.Error)
		}
		return
	}
	resp := rootBody{Root: body.Root, Version: body.Version}
	for _, req := range st.pending {
		m.h.Respond(req, resp)
	}
}

// pollRootIfStalled (slaves, on heartbeat) detects sync waiters stalled
// behind a lost setroot event — under fault injection the event plane
// may drop an event — and asks upstream for the current root. The result
// re-enters through the broker as a rootupdate request so module state
// stays single-threaded. Polling repeats on subsequent heartbeats until
// the waiters drain, walking the root forward one upstream hop at a time
// even when intermediate slaves are themselves behind.
func (m *Module) pollRootIfStalled() {
	if m.isMaster() || len(m.syncs) == 0 || m.polling {
		return
	}
	m.polling = true
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		var body rootBody
		resp, err := m.h.RPCWithOptions(m.ctx, m.cfg.Service+".getversion", m.upstreamTarget(), struct{}{},
			broker.RPCOptions{Retries: 2, Backoff: 25 * time.Millisecond})
		if err == nil {
			if uerr := resp.UnpackJSON(&body); uerr != nil {
				body = rootBody{}
			}
		}
		// Always re-inject, even on failure (zero version adopts nothing):
		// recvRootUpdate is what clears the polling latch. The send can
		// only fail once the broker is shutting down, when nothing is
		// left to unlatch.
		if serr := m.h.Send(m.cfg.Service+".rootupdate", uint32(m.h.Rank()), body); serr != nil {
			m.h.Log(obs.LevelWarn, m.cfg.Service, "rootupdate re-injection failed: %v", serr)
		}
	}()
}

// recvRootUpdate adopts a polled root and re-arms the heartbeat poll.
func (m *Module) recvRootUpdate(msg *wire.Message) {
	m.polling = false
	var body rootBody
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.adoptRoot(body)
}

// recvSetroot switches to a new root reference, in version order, and
// wakes any sync waiters. Because events are applied in sequence order,
// versions never go backwards — monotonic read consistency.
func (m *Module) recvSetroot(msg *wire.Message) {
	var body rootBody
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.adoptRoot(body)
}

func (m *Module) adoptRoot(body rootBody) {
	if body.Version <= m.version {
		return // stale or duplicate
	}
	if body.Root == "" {
		m.root = cas.Ref{}
	} else if ref, err := cas.ParseRef(body.Root); err == nil {
		m.root = ref
	} else {
		return
	}
	m.version = body.Version
	m.serveSyncs()
}

// serveSyncs answers kvs.sync requests whose target version is reached.
func (m *Module) serveSyncs() {
	if len(m.syncs) == 0 {
		return
	}
	keep := m.syncs[:0]
	for _, req := range m.syncs {
		var body syncBody
		if err := req.UnpackJSON(&body); err != nil {
			m.h.RespondError(req, broker.ErrnoInval, err.Error())
			continue
		}
		if m.version >= body.Version {
			m.h.Respond(req, rootBody{Root: refString(m.root), Version: m.version})
			continue
		}
		keep = append(keep, req)
	}
	m.syncs = keep
}

// recvSync implements kvs_wait_version: respond once the local root
// version reaches the requested version.
func (m *Module) recvSync(msg *wire.Message) {
	var body syncBody
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	if m.version >= body.Version {
		m.h.Respond(msg, rootBody{Root: refString(m.root), Version: m.version})
		return
	}
	m.syncs = append(m.syncs, msg)
}

// recvGetroot serves a child module that has no root yet.
func (m *Module) recvGetroot(msg *wire.Message) {
	if !m.isMaster() && m.version == 0 {
		// We do not know a root either; ask upstream first.
		m.fetchRoot()
	}
	m.h.Respond(msg, rootBody{Root: refString(m.root), Version: m.version})
}

// fetchRoot lazily learns the current root from upstream, once, covering
// slaves that attach after commits have already happened.
func (m *Module) fetchRoot() {
	if m.askedRoot || m.isMaster() {
		return
	}
	m.askedRoot = true
	resp, err := m.h.RPCWithOptions(context.Background(), m.cfg.Service+".getroot", m.upstreamTarget(), struct{}{},
		broker.RPCOptions{Retries: 2, Backoff: 25 * time.Millisecond})
	if err != nil {
		m.askedRoot = false
		return
	}
	var body rootBody
	if err := resp.UnpackJSON(&body); err == nil {
		m.adoptRoot(body)
	}
}

// spawnWorker runs fn on a tracked goroutine gated by the worker
// semaphore. The goroutine (not the caller) waits for a slot, so Recv
// stays responsive however many reads are queued; fn is skipped when the
// module shuts down before a slot frees up (its request dies with the
// session, like any request in flight at teardown).
func (m *Module) spawnWorker(fn func()) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		select {
		case m.sem <- struct{}{}:
		case <-m.ctx.Done():
			return
		}
		defer func() { <-m.sem }()
		fn()
	}()
}

// loadObject returns the encoded object for ref, faulting it in from the
// CMB-tree parent (recursively up the tree) on a local cache miss, then
// caching it — the paper's slave fault-in path.
func (m *Module) loadObject(ref cas.Ref) ([]byte, error) {
	if data, ok := m.store.GetRaw(ref); ok {
		return data, nil
	}
	if err := m.loadObjects([]cas.Ref{ref}); err != nil {
		return nil, err
	}
	data, ok := m.store.GetRaw(ref)
	if !ok {
		// Only reachable if expiry raced the fault-in, which fresh
		// last-use stamps make all but impossible; fail loudly.
		return nil, fmt.Errorf("kvs: object %s evicted during load", ref.Short())
	}
	return data, nil
}

// loadObjects ensures every ref is present in the local store, faulting
// all misses from upstream in (chunked) batched kvs.load RPCs. Misses
// already being fetched by another goroutine are waited on rather than
// re-requested (see flightGroup). Returns the first error; refs that
// loaded successfully stay cached regardless.
func (m *Module) loadObjects(refs []cas.Ref) error {
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	var need []cas.Ref
	var waits []*flight
	seen := make(map[cas.Ref]bool, len(refs))
	for _, ref := range refs {
		if seen[ref] || m.store.Has(ref) {
			continue
		}
		seen[ref] = true
		if m.disk != nil {
			// The read-miss tier: an object evicted from memory (or never
			// warmed after a restart) may still be on local disk, sparing
			// the upstream round trip. Load verifies CRC and content hash
			// and repopulates the store.
			if _, ok := m.disk.Load(ref); ok {
				m.obsDiskLoads.Inc()
				continue
			}
		}
		if m.isMaster() {
			// The master holds everything pinned; a miss here is a real
			// absence, not a cache fault.
			fail(fmt.Errorf("kvs: object %s not found", ref.Short()))
			continue
		}
		if f, leader := m.flights.begin(ref); leader {
			need = append(need, ref)
		} else {
			m.obsCoalesced.Inc()
			waits = append(waits, f)
		}
	}
	if len(need) > 0 {
		errs := m.fetchBatch(need)
		for _, ref := range need {
			err := errs[ref]
			m.flights.finish(ref, err)
			if err != nil {
				fail(err)
			}
		}
	}
	for _, f := range waits {
		<-f.done
		if f.err != nil {
			fail(f.err)
		}
	}
	return firstErr
}

// fetchBatch faults refs in from upstream, at most maxLoadBatch per RPC,
// verifying and caching every object returned. The per-ref error map
// holds entries only for refs that failed.
func (m *Module) fetchBatch(refs []cas.Ref) map[cas.Ref]error {
	errs := map[cas.Ref]error{}
	for len(refs) > 0 {
		chunk := refs
		if len(chunk) > maxLoadBatch {
			chunk = chunk[:maxLoadBatch]
		}
		refs = refs[len(chunk):]
		hex := make([]string, len(chunk))
		for i, ref := range chunk {
			hex[i] = ref.String()
		}
		m.obsBatches.Inc()
		// Loads are idempotent (content-addressed), so transient route
		// failures are retried rather than surfaced to the reader.
		var req any = loadBody{Refs: hex}
		if m.h.BinaryBodies() {
			req = loadBody{Refs: hex}.bin()
		}
		resp, err := m.h.RPCWithOptions(m.ctx, m.cfg.Service+".load", m.upstreamTarget(), req,
			broker.RPCOptions{Retries: 4, Backoff: 25 * time.Millisecond})
		if err != nil {
			for _, ref := range chunk {
				errs[ref] = err
			}
			continue
		}
		body, err := decodeLoadResp(resp)
		if err != nil {
			for _, ref := range chunk {
				errs[ref] = err
			}
			continue
		}
		for _, ref := range chunk {
			data, ok := body.Objects[ref.String()]
			if !ok {
				errs[ref] = fmt.Errorf("kvs: object %s not found", ref.Short())
				continue
			}
			if cas.HashOf(data) != ref {
				errs[ref] = fmt.Errorf("kvs: loaded object fails hash check for %s", ref.Short())
				continue
			}
			m.obsLoads.Inc()
			m.store.PutRaw(data)
		}
	}
	return errs
}

// recvLoad serves a child's fault-in request from the local cache,
// faulting misses in from our own parent if necessary. The work happens
// on a worker goroutine: an intermediate slave blocked on its own parent
// must not stall its Recv loop. A batched request is answered with every
// object this instance ended up holding; the single-ref form keeps its
// original data-or-ENOENT contract.
func (m *Module) recvLoad(msg *wire.Message) {
	body, err := decodeLoadBody(msg)
	if err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	single := len(body.Refs) == 0
	hexes := body.Refs
	if single {
		hexes = []string{body.Ref}
	}
	refs := make([]cas.Ref, len(hexes))
	cached := true
	for i, hx := range hexes {
		ref, err := cas.ParseRef(hx)
		if err != nil {
			m.h.RespondError(msg, broker.ErrnoInval, err.Error())
			return
		}
		refs[i] = ref
		cached = cached && m.store.Has(ref)
	}
	// Fast path: every requested object is already cached, so answer
	// from the Recv goroutine and spare the worker handoff.
	if cached {
		start := time.Now()
		if single {
			if data, ok := m.store.GetRaw(refs[0]); ok {
				m.respondLoad(msg, loadResp{Data: data})
				m.histLoad.Observe(time.Since(start))
				return
			}
		} else {
			objects := make(map[string][]byte, len(refs))
			for i, ref := range refs {
				if data, ok := m.store.GetRaw(ref); ok {
					objects[hexes[i]] = data
				}
			}
			if len(objects) == len(refs) {
				m.respondLoad(msg, loadResp{Objects: objects})
				m.histLoad.Observe(time.Since(start))
				return
			}
		}
		// An eviction raced the Has scan; fall through to the slow path.
	}
	m.spawnWorker(func() {
		start := time.Now()
		defer func() { m.histLoad.Observe(time.Since(start)) }()
		err := m.loadObjects(refs)
		if single {
			data, ok := m.store.GetRaw(refs[0])
			if !ok {
				if err == nil {
					err = fmt.Errorf("kvs: object %s not found", refs[0].Short())
				}
				m.h.RespondError(msg, broker.ErrnoNoEnt, err.Error())
				return
			}
			m.respondLoad(msg, loadResp{Data: data})
			return
		}
		objects := make(map[string][]byte, len(refs))
		for i, ref := range refs {
			if data, ok := m.store.GetRaw(ref); ok {
				objects[hexes[i]] = data
			}
		}
		if len(objects) == 0 && err != nil {
			m.h.RespondError(msg, broker.ErrnoNoEnt, err.Error())
			return
		}
		m.respondLoad(msg, loadResp{Objects: objects})
	})
}

// respondLoad answers a kvs.load in the encoding its request used:
// binary-coded bodies for binary requests, JSON for everything else, so
// a JSON-only child of a binary-enabled parent still gets JSON back.
func (m *Module) respondLoad(msg *wire.Message, resp loadResp) {
	if wire.IsBinaryBody(msg.Payload) {
		m.h.Respond(msg, resp.bin())
		return
	}
	m.h.Respond(msg, resp)
}

// recvGet resolves the read's snapshot root on the Recv goroutine (the
// only place module root state may be touched, and what keeps a get
// ordered against the setroot events queued before it), then hands the
// tree walk to a worker goroutine.
func (m *Module) recvGet(msg *wire.Message) {
	start := time.Now()
	var body getBody
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	if err := ValidateKey(body.Key); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	m.obsGets.Inc()
	root := m.root
	if body.Root != "" {
		snap, err := cas.ParseRef(body.Root)
		if err != nil {
			m.h.RespondError(msg, broker.ErrnoInval, err.Error())
			return
		}
		root = snap
	} else {
		if root.IsZero() && m.version == 0 {
			m.fetchRoot()
			root = m.root
		}
	}
	if root.IsZero() {
		m.h.RespondError(msg, broker.ErrnoNoEnt, fmt.Sprintf("kvs: %q: no such key", body.Key))
		return
	}
	// Fast path: a fully cached walk is served right here, sparing the
	// worker handoff — warm reads are the overwhelmingly common case.
	if m.serveGet(msg, body.Key, root, false) {
		m.histGet.Observe(time.Since(start))
		return
	}
	m.spawnWorker(func() {
		m.serveGet(msg, body.Key, root, true)
		m.histGet.Observe(time.Since(start))
	})
}

// prefetchDir batches the fault-in of a directory's missing entries:
// when the walk needs one child of dir, every other missing entry is
// almost certainly about to be read too (deep reads and dir scans touch
// them all), so they ride along in the same upstream round-trip. next is
// placed first so the cap can never push out the object the walk
// actually needs; failures beyond next are harmless (that entry just
// faults again when actually read).
func (m *Module) prefetchDir(dir map[string]cas.Ref, next cas.Ref) {
	if m.isMaster() || m.store.Has(next) {
		// Prefetch only rides along with a fetch the walk needs anyway;
		// when next is cached, no speculative RPC is worth the latency.
		return
	}
	refs := make([]cas.Ref, 1, len(dir))
	refs[0] = next
	for _, ref := range dir {
		if len(refs) >= maxLoadBatch {
			break
		}
		if ref != next && !m.store.Has(ref) {
			refs = append(refs, ref)
		}
	}
	// Best effort: the walk re-checks next via loadObject and reports
	// its own error there.
	_ = m.loadObjects(refs)
}

// serveGet walks the hash tree from root and responds with the terminal
// object: a value's JSON, or a directory's sorted entry list. With fault
// set, misses are faulted in from upstream, batched per directory level
// (see prefetchDir), and the walk always completes (done is true).
// Without it — the synchronous fast path — the walk uses only the local
// cache and bails with done == false at the first miss, responding
// nothing; errors the cache alone can prove (a bad path, a missing
// entry) are final in either mode, because the walk reads an immutable
// content-addressed snapshot.
func (m *Module) serveGet(msg *wire.Message, key string, root cas.Ref, fault bool) (done bool) {
	load := func(ref cas.Ref) ([]byte, bool, error) {
		if !fault {
			data, ok := m.store.GetRaw(ref)
			return data, ok, nil
		}
		data, err := m.loadObject(ref)
		return data, err == nil, err
	}
	ref := root
	parts := splitKey(key)
	for i, part := range parts {
		data, ok, err := load(ref)
		if err != nil {
			m.h.RespondError(msg, broker.ErrnoNoEnt, err.Error())
			return true
		}
		if !ok {
			return false
		}
		obj, derr := cas.Decode(data)
		if derr != nil {
			m.h.RespondError(msg, broker.ErrnoProto, derr.Error())
			return true
		}
		if obj.Kind != cas.KindDir {
			at := "root"
			if i > 0 {
				at = parts[i-1]
			}
			m.h.RespondError(msg, errNotDir,
				fmt.Sprintf("kvs: %q: %q is not a directory", key, at))
			return true
		}
		next, ok := obj.Dir[part]
		if !ok {
			m.h.RespondError(msg, broker.ErrnoNoEnt, fmt.Sprintf("kvs: %q: no such key", key))
			return true
		}
		if fault {
			m.prefetchDir(obj.Dir, next)
		}
		ref = next
	}
	data, ok, err := load(ref)
	if err != nil {
		m.h.RespondError(msg, broker.ErrnoNoEnt, err.Error())
		return true
	}
	if !ok {
		return false
	}
	obj, derr := cas.Decode(data)
	if derr != nil {
		m.h.RespondError(msg, broker.ErrnoProto, derr.Error())
		return true
	}
	resp := getResp{Ref: ref.String()}
	if obj.Kind == cas.KindDir {
		resp.Dir = []string{}
		for name := range obj.Dir {
			resp.Dir = append(resp.Dir, name)
		}
		sort.Strings(resp.Dir)
	} else {
		resp.Val = json.RawMessage(obj.Value)
	}
	m.h.Respond(msg, resp)
	return true
}

// recvCheckpoint forces this instance's disk tier to fold its WAL into
// a fresh pack (an operator action: before planned maintenance, or to
// bound cold-restore time).
func (m *Module) recvCheckpoint(msg *wire.Message) {
	if m.disk == nil {
		m.h.RespondError(msg, broker.ErrnoNoSys, m.cfg.Service+": no durable tier configured")
		return
	}
	start := time.Now()
	cp, err := m.disk.Checkpoint()
	if err != nil {
		m.h.RespondError(msg, broker.ErrnoIO, err.Error())
		return
	}
	m.histCheckpoint.Observe(time.Since(start))
	m.commitsSinceCkpt = 0
	m.h.Respond(msg, map[string]any{
		"rank":    m.h.Rank(),
		"pack":    cp.Pack,
		"objects": cp.Objects,
		"bytes":   cp.Bytes,
	})
}

// recvStorage reports the disk tier's counters (flux storage).
func (m *Module) recvStorage(msg *wire.Message) {
	if m.disk == nil {
		m.h.RespondError(msg, broker.ErrnoNoSys, m.cfg.Service+": no durable tier configured")
		return
	}
	m.syncStorageMetrics()
	m.h.Respond(msg, map[string]any{
		"rank":    m.h.Rank(),
		"service": m.cfg.Service,
		"storage": m.disk.Stats(),
	})
}

func (m *Module) recvStats(msg *wire.Message) {
	hits, misses := m.store.Stats()
	// Per-op latency summaries come out of the broker registry, filtered
	// down to this service's namespace so sharded instances stay separate.
	snap := m.h.Broker().Metrics().Snapshot()
	prefix := m.cfg.Service + "."
	hists := make(map[string]obs.HistSnapshot)
	for name, h := range snap.Hists {
		if strings.HasPrefix(name, prefix) {
			hists[name] = h
		}
	}
	body := map[string]any{
		"rank":            m.h.Rank(),
		"objects":         m.store.Len(),
		"hits":            hits,
		"misses":          misses,
		"gets":            m.obsGets.Load(),
		"loads":           m.obsLoads.Load(),
		"load_batches":    m.obsBatches.Load(),
		"loads_coalesced": m.obsCoalesced.Load(),
		"version":         m.version,
		"hists":           hists,
	}
	if m.disk != nil {
		body["disk_loads"] = m.obsDiskLoads.Load()
		body["persist_errors"] = m.obsPersistErrs.Load()
		body["storage"] = m.disk.Stats()
	}
	m.h.Respond(msg, body)
}
