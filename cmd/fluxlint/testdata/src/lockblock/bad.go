// Package lockblock holds fixtures for the lock-across-block pass.
// Every line carrying a trailing BAD marker comment must produce a
// finding; lines without the marker must produce none.
package lockblock

import (
	"sync"
	"time"

	"fixture.example/fakes"
)

type S struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	conn *fakes.Conn
	h    *fakes.Handle
}

func (s *S) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // BAD
	s.mu.Unlock()
}

func (s *S) recvDeferredHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // BAD
}

// sleepAfterBranch exercises the branch union: the lock is released on
// only one path, so the sleep below the if is may-held.
func (s *S) sleepAfterBranch(b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
	}
	time.Sleep(time.Millisecond) // BAD
}

func (s *S) selectHeld() {
	s.mu.Lock()
	select { // BAD
	case v := <-s.ch:
		_ = v
	}
	s.mu.Unlock()
}

func (s *S) rangeHeld() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	for v := range s.ch { // BAD
		_ = v
	}
}

func (s *S) connSendHeld(m *fakes.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.conn.Send(nil); err != nil { // BAD
		return
	}
}

func (s *S) rpcHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := s.h.RPC("kvs.get", 0, nil) // BAD
	_, _ = resp, err
}

// iifeInheritsHeld: an immediately-invoked literal runs on this
// goroutine with the lock still held.
func (s *S) iifeInheritsHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	func() {
		<-s.ch // BAD
	}()
}
