// Command flux is the command-line utility wrapping modular Flux
// sub-commands, the analogue of the paper's flux(1) tool. It connects
// to any broker of a TCP-deployed session (see cmd/flux-broker).
//
// Usage:
//
//	flux [-connect host:port] [-key-file f] <subcommand> [args]
//
// Sub-commands:
//
//	ping [rank]              round-trip to the local broker or a rank
//	info                     session parameters of the connected broker
//	lsmod                    comms modules loaded at the connected broker
//	rmmod <name>             live-unload a comms module at the connected broker
//	kvs get <key>            print a KVS value or directory listing
//	kvs put <key> <json>     put and commit one value
//	kvs dir <key>            list a directory
//	kvs version              current root version
//	kvs watch <key>          print updates until interrupted
//	kvs checkpoint [rank]    force the durable tier to fold its WAL into a pack
//	kvs storage [rank]       durable-tier stats (WAL bytes, packs, recovery counts)
//	event pub <topic>        publish an event
//	event sub <prefix>       print matching events until interrupted
//	run <jobid> <prog> [...] bulk-launch a simulated program on all ranks
//	submit [-N n] <prog> [...] enqueue a job with the job service
//	queue                    active (queued + running) jobs
//	cancel <id>              cancel a queued or running job
//	wait <id>                block until a job completes, print its record
//	log dump [count]         recent entries from the root log sink
//	dmesg [--rank N] [--level L] [--follow]
//	                         merged time-ordered log records from all live ranks
//	                         (or one rank); --follow polls for new records
//	dump [-o file]           flight-recorder snapshot of every live rank as JSON
//	up                       ranks currently considered down by live
//	stats [--rank N]         broker counters and metrics (local or rank-addressed)
//	restart <rank>           readmit a killed or crashed rank (durable state reloads from disk)
//	top                      per-rank broker activity and route latency table
//	trace <id>               assembled cross-rank request tree of one traced message
//	resources                unallocated ranks per the resource service
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"time"

	"fluxgo/internal/client"
	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flux [-connect host:port] [-key-file f] <subcommand> [args]")
	os.Exit(2)
}

func main() {
	// Minimal hand-rolled global flags so sub-command args stay clean.
	args := os.Args[1:]
	connect := "127.0.0.1:9600"
	key := []byte("flux-session")
	for len(args) >= 2 {
		switch args[0] {
		case "-connect":
			connect = args[1]
			args = args[2:]
		case "-key-file":
			b, err := os.ReadFile(args[1])
			fatalIf(err)
			key = b
			args = args[2:]
		default:
			goto flagsDone
		}
	}
flagsDone:
	if len(args) == 0 {
		usage()
	}
	c, err := client.Dial(connect, key)
	fatalIf(err)
	defer c.Close()

	switch args[0] {
	case "ping":
		cmdPing(c, args[1:])
	case "info":
		cmdJSON(c, wire.TopicInfo, wire.NodeidAny, nil)
	case "lsmod":
		cmdJSON(c, wire.TopicLsmod, wire.NodeidAny, nil)
	case "rmmod":
		if len(args) != 2 {
			usage()
		}
		cmdJSON(c, wire.TopicRmmod, wire.NodeidAny, map[string]string{"name": args[1]})
	case "kvs":
		cmdKVS(c, args[1:])
	case "event":
		cmdEvent(c, args[1:])
	case "run":
		cmdRun(c, args[1:])
	case "submit":
		cmdSubmit(c, args[1:])
	case "queue":
		cmdJSON(c, "job.list", wire.NodeidAny, nil)
	case "cancel":
		if len(args) != 2 {
			usage()
		}
		cmdJSON(c, "job.cancel", wire.NodeidAny, map[string]string{"id": args[1]})
	case "wait":
		if len(args) != 2 {
			usage()
		}
		cmdWaitJob(c, args[1])
	case "log":
		cmdLog(c, args[1:])
	case "dmesg":
		cmdDmesg(c, args[1:])
	case "dump":
		cmdDump(c, args[1:])
	case "up":
		cmdJSON(c, "live.query", wire.NodeidAny, nil)
	case "stats":
		nodeid := wire.NodeidAny
		rest := args[1:]
		if len(rest) > 0 && rest[0] == "--rank" {
			rest = rest[1:]
		}
		if len(rest) > 0 {
			r, err := strconv.Atoi(rest[0])
			fatalIf(err)
			nodeid = uint32(r)
		}
		cmdJSON(c, wire.TopicStats, nodeid, nil)
	case "grow":
		if len(args) != 2 {
			usage()
		}
		n, err := strconv.Atoi(args[1])
		fatalIf(err)
		cmdJSON(c, wire.TopicGrow, wire.NodeidAny, map[string]int{"n": n})
	case "restart":
		if len(args) != 2 {
			usage()
		}
		r, err := strconv.Atoi(args[1])
		fatalIf(err)
		cmdJSON(c, wire.TopicRestart, wire.NodeidAny, map[string]int{"rank": r})
	case "shrink":
		if len(args) < 2 {
			usage()
		}
		ranks := make([]int, 0, len(args)-1)
		for _, a := range args[1:] {
			r, err := strconv.Atoi(a)
			fatalIf(err)
			ranks = append(ranks, r)
		}
		cmdJSON(c, wire.TopicShrink, wire.NodeidAny, map[string][]int{"ranks": ranks})
	case "top":
		cmdTop(c)
	case "trace":
		if len(args) != 2 {
			usage()
		}
		cmdTrace(c, args[1])
	case "resources":
		cmdJSON(c, "resrc.avail", wire.NodeidAny, nil)
	default:
		usage()
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "flux:", err)
		os.Exit(1)
	}
}

// cmdJSON performs one RPC and pretty-prints the JSON response.
func cmdJSON(c *client.Client, topic string, nodeid uint32, body any) {
	resp, err := c.RPC(topic, nodeid, body)
	fatalIf(err)
	var out any
	fatalIf(resp.UnpackJSON(&out))
	b, _ := json.MarshalIndent(out, "", "  ")
	fmt.Println(string(b))
}

func cmdPing(c *client.Client, args []string) {
	nodeid := wire.NodeidAny
	if len(args) > 0 {
		r, err := strconv.Atoi(args[0])
		fatalIf(err)
		nodeid = uint32(r)
	}
	start := time.Now()
	resp, err := c.RPC(wire.TopicPing, nodeid, map[string]string{"pad": "flux-ping"})
	fatalIf(err)
	var body struct {
		Rank int `json:"rank"`
		Hops int `json:"hops"`
	}
	fatalIf(resp.UnpackJSON(&body))
	fmt.Printf("pong from rank %d: hops=%d time=%v trace=%#x\n", body.Rank, body.Hops, time.Since(start), resp.TraceID)
}

func cmdKVS(c *client.Client, args []string) {
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "get", "dir":
		if len(args) != 2 {
			usage()
		}
		cmdJSON(c, "kvs.get", wire.NodeidAny, map[string]string{"key": args[1]})
	case "put":
		if len(args) != 3 {
			usage()
		}
		putAndCommit(c, args[1], json.RawMessage(args[2]))
	case "version":
		cmdJSON(c, "kvs.getversion", wire.NodeidAny, nil)
	case "checkpoint":
		cmdJSON(c, "kvs.checkpoint", rankOrAny(args[1:]), nil)
	case "storage":
		cmdJSON(c, "kvs.storage", rankOrAny(args[1:]), nil)
	case "watch":
		if len(args) != 2 {
			usage()
		}
		watchKey(c, args[1])
	default:
		usage()
	}
}

// rankOrAny parses an optional trailing rank argument; absent means the
// connected broker answers (NodeidAny).
func rankOrAny(args []string) uint32 {
	if len(args) == 0 {
		return wire.NodeidAny
	}
	r, err := strconv.Atoi(args[0])
	fatalIf(err)
	return uint32(r)
}

// putAndCommit issues the put + single-participant fence the KVS client
// library would, using raw RPCs (the CLI links only against the wire
// protocol, like an external tool would).
func putAndCommit(c *client.Client, key string, val json.RawMessage) {
	// The kvs module computes and checks the content hash; build the
	// value object encoding it expects: 'v' + JSON bytes.
	data := append([]byte{'v'}, val...)
	ref := sha1Hex(data)
	_, err := c.RPC("kvs.put", wire.NodeidAny, map[string]any{
		"key": key, "ref": ref, "data": data,
	})
	fatalIf(err)
	name := fmt.Sprintf("flux-cli-%d", time.Now().UnixNano())
	resp, err := c.RPC("kvs.fence", wire.NodeidAny, map[string]any{
		"name":   name,
		"nprocs": 1,
		"entries": []map[string]any{{
			"id":  name + "/cli",
			"ops": []map[string]any{{"key": key, "ref": ref}},
		}},
	})
	fatalIf(err)
	var body struct {
		Version uint64 `json:"version"`
	}
	fatalIf(resp.UnpackJSON(&body))
	fmt.Printf("committed as version %d\n", body.Version)
}

func watchKey(c *client.Client, key string) {
	sub, err := c.Subscribe("kvs.setroot")
	fatalIf(err)
	defer sub.Close()
	show := func() {
		resp, err := c.RPC("kvs.get", wire.NodeidAny, map[string]string{"key": key})
		if err != nil {
			fmt.Printf("%s: %v\n", key, err)
			return
		}
		var out any
		resp.UnpackJSON(&out)
		b, _ := json.Marshal(out)
		fmt.Printf("%s = %s\n", key, b)
	}
	show()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-sub.Chan():
			show()
		case <-sig:
			return
		}
	}
}

func cmdEvent(c *client.Client, args []string) {
	if len(args) < 2 {
		usage()
	}
	switch args[0] {
	case "pub":
		resp, err := c.RPC(wire.TopicPub, wire.NodeidAny, map[string]any{
			"topic": args[1], "payload": map[string]string{},
		})
		fatalIf(err)
		var body struct {
			Seq uint64 `json:"seq"`
		}
		fatalIf(resp.UnpackJSON(&body))
		fmt.Printf("published seq %d\n", body.Seq)
	case "sub":
		sub, err := c.Subscribe(args[1])
		fatalIf(err)
		defer sub.Close()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		for {
			select {
			case ev := <-sub.Chan():
				fmt.Printf("[%d] %s %s\n", ev.Seq, ev.Topic, ev.Payload)
			case <-sig:
				return
			}
		}
	default:
		usage()
	}
}

func cmdRun(c *client.Client, args []string) {
	if len(args) < 2 {
		usage()
	}
	sub, err := c.Subscribe("wexec.complete")
	fatalIf(err)
	defer sub.Close()
	jobid, prog := args[0], args[1]
	resp, err := c.RPC("wexec.run", wire.NodeidAny, map[string]any{
		"jobid": jobid, "program": prog, "args": args[2:],
	})
	fatalIf(err)
	var body struct {
		NTasks int `json:"ntasks"`
	}
	fatalIf(resp.UnpackJSON(&body))
	fmt.Printf("launched %s: %d tasks\n", jobid, body.NTasks)
	for ev := range sub.Chan() {
		var done struct {
			JobID string `json:"jobid"`
			State string `json:"state"`
		}
		if ev.UnpackJSON(&done) == nil && done.JobID == jobid {
			fmt.Printf("job %s: %s\n", jobid, done.State)
			return
		}
	}
}

func cmdSubmit(c *client.Client, args []string) {
	nodes := 1
	if len(args) >= 2 && args[0] == "-N" {
		n, err := strconv.Atoi(args[1])
		fatalIf(err)
		nodes = n
		args = args[2:]
	}
	if len(args) < 1 {
		usage()
	}
	resp, err := c.RPC("job.submit", wire.NodeidAny, map[string]any{
		"program": args[0], "args": args[1:], "nodes": nodes,
	})
	fatalIf(err)
	var body struct {
		ID string `json:"id"`
	}
	fatalIf(resp.UnpackJSON(&body))
	fmt.Printf("submitted job %s\n", body.ID)
}

func cmdWaitJob(c *client.Client, id string) {
	sub, err := c.Subscribe("job.state")
	fatalIf(err)
	defer sub.Close()
	show := func() bool {
		resp, err := c.RPC("job.info", wire.NodeidAny, map[string]string{"id": id})
		if err != nil {
			return false
		}
		var info struct {
			State string `json:"state"`
		}
		resp.UnpackJSON(&info)
		switch info.State {
		case "complete", "failed", "cancelled":
			var out any
			resp.UnpackJSON(&out)
			b, _ := json.MarshalIndent(out, "", "  ")
			fmt.Println(string(b))
			return true
		}
		return false
	}
	if show() {
		return
	}
	for ev := range sub.Chan() {
		var se struct {
			ID string `json:"id"`
		}
		if ev.UnpackJSON(&se) == nil && se.ID == id && show() {
			return
		}
	}
}

// sessionSize asks the connected broker for the session size.
func sessionSize(c *client.Client) int {
	resp, err := c.RPC(wire.TopicInfo, wire.NodeidAny, nil)
	fatalIf(err)
	var info struct {
		Size int `json:"size"`
	}
	fatalIf(resp.UnpackJSON(&info))
	return info.Size
}

// cmdTop prints one row of broker activity per rank: request/response
// counters and the route-request latency percentiles, flux-top style.
func cmdTop(c *client.Client) {
	size := sessionSize(c)
	fmt.Printf("%5s %5s %4s %9s %9s %9s %7s %7s %4s %4s %5s %5s  %-23s %7s\n",
		"RANK", "EPOCH", "LIVE", "REQS", "RESPS", "EVENTS", "GAPS", "ERRS",
		"JOIN", "LEAV", "DRAIN", "STALE", "ROUTE p50/p95/p99(us)", "SPANS")
	for r := 0; r < size; r++ {
		resp, err := c.RPC(wire.TopicStats, uint32(r), nil)
		if err != nil {
			fmt.Printf("%5d  unreachable: %v\n", r, err)
			continue
		}
		var st struct {
			Epoch        uint32       `json:"epoch"`
			LiveSize     int          `json:"live_size"`
			Joins        uint64       `json:"joins"`
			Leaves       uint64       `json:"leaves"`
			Drains       uint64       `json:"drains"`
			EpochRejects uint64       `json:"epoch_rejects"`
			TraceSpans   int          `json:"trace_spans"`
			Metrics      obs.Snapshot `json:"metrics"`
		}
		if err := resp.UnpackJSON(&st); err != nil {
			fmt.Printf("%5d  bad stats: %v\n", r, err)
			continue
		}
		h := st.Metrics.Hists[wire.MetricRouteRequestNS]
		us := func(ns uint64) float64 { return float64(ns) / 1e3 }
		fmt.Printf("%5d %5d %4d %9d %9d %9d %7d %7d %4d %4d %5d %5d  %7.1f/%7.1f/%7.1f %7d\n",
			r, st.Epoch, st.LiveSize,
			st.Metrics.Counters[wire.MetricRequestsRouted],
			st.Metrics.Counters[wire.MetricResponsesRouted],
			st.Metrics.Counters[wire.MetricEventsApplied],
			st.Metrics.Counters[wire.MetricEventSeqGaps],
			st.Metrics.Counters[wire.MetricSendErrors]+st.Metrics.Counters[wire.MetricInflightFailed],
			st.Joins, st.Leaves, st.Drains, st.EpochRejects,
			us(h.P50NS), us(h.P95NS), us(h.P99NS),
			st.TraceSpans)
	}
}

// cmdTrace gathers one trace's spans session-wide (one tree-reduced RPC
// at rank 0), assembles the causal request tree, and prints it indented
// with per-hop latencies. Hops on the critical path — the chain that
// bounded end-to-end latency — are marked with '*'.
func cmdTrace(c *client.Client, idArg string) {
	id, err := strconv.ParseUint(idArg, 0, 64)
	fatalIf(err)
	resp, err := c.RPC(wire.TopicTrace, 0, map[string]any{"id": id, "gather": true})
	fatalIf(err)
	var body struct {
		Spans  []obs.Span `json:"spans"`
		Ranks  []int      `json:"ranks"`
		Errors []string   `json:"errors"`
	}
	fatalIf(resp.UnpackJSON(&body))
	for _, e := range body.Errors {
		fmt.Fprintf(os.Stderr, "flux: %s\n", e)
	}
	if len(body.Spans) == 0 {
		fmt.Printf("no spans recorded for trace %s\n", idArg)
		return
	}
	tree := obs.AssembleTrace(body.Spans)
	onPath := map[*obs.TraceNode]bool{}
	for _, n := range tree.CriticalPath() {
		onPath[n] = true
	}
	fmt.Printf("trace %#x: %d spans across %d ranks, end-to-end %.1fus\n",
		tree.Trace, len(tree.Spans), len(body.Ranks), float64(tree.TotalNS())/1e3)
	var walk func(n *obs.TraceNode, depth int)
	walk = func(n *obs.TraceNode, depth int) {
		s := n.Span
		mark := " "
		if onPath[n] {
			mark = "*"
		}
		errs := ""
		if s.Errnum != 0 {
			errs = fmt.Sprintf("  errno=%d", s.Errnum)
		}
		fmt.Printf("%s %*shop %d rank %d  %-8s %-24s via %-14s queue %8.1fus work %8.1fus%s\n",
			mark, depth*2, "", s.Hop, s.Rank, s.Kind, s.Topic, s.Link,
			float64(s.QueueNS)/1e3, float64(s.WorkNS)/1e3, errs)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range tree.Roots {
		walk(r, 0)
	}
	if path := tree.CriticalPath(); len(path) > 0 {
		fmt.Printf("critical path: %d hops, ends at rank %d (%s)\n",
			len(path), path[len(path)-1].Span.Rank, path[len(path)-1].Span.Topic)
	}
}

// cmdDmesg prints merged, time-ordered log records. By default it asks
// rank 0 for a session-wide tree gather (including the root's
// aggregation ring, which still holds warnings from dead ranks);
// --rank N reads one broker's local ring; --follow keeps polling with a
// time cursor, tail -f style.
func cmdDmesg(c *client.Client, args []string) {
	rank := -1
	level := 0
	follow := false
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--rank":
			i++
			if i >= len(args) {
				usage()
			}
			r, err := strconv.Atoi(args[i])
			fatalIf(err)
			rank = r
		case "--level":
			i++
			if i >= len(args) {
				usage()
			}
			l, ok := obs.ParseLevel(args[i])
			if !ok {
				fatalIf(fmt.Errorf("unknown level %q", args[i]))
			}
			level = l
		case "--follow", "-f":
			follow = true
		default:
			usage()
		}
	}
	query := func(sinceNS int64) []obs.Record {
		body := map[string]any{"level": level, "since_ns": sinceNS}
		nodeid := uint32(0)
		if rank >= 0 {
			nodeid = uint32(rank)
		} else {
			body["subtree"] = true
			body["fwd"] = true
		}
		resp, err := c.RPC(wire.TopicDmesg, nodeid, body)
		fatalIf(err)
		var out struct {
			Records []obs.Record `json:"records"`
			Errors  []string     `json:"errors"`
		}
		fatalIf(resp.UnpackJSON(&out))
		for _, e := range out.Errors {
			fmt.Fprintf(os.Stderr, "flux: %s\n", e)
		}
		return out.Records
	}
	var cursor int64
	for {
		recs := query(cursor)
		for _, r := range recs {
			printRecord(r)
			if r.TimeNS > cursor {
				cursor = r.TimeNS
			}
		}
		if !follow {
			return
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// printRecord renders one log record dmesg-style.
func printRecord(r obs.Record) {
	t := time.Unix(0, r.TimeNS)
	fmt.Printf("%s rank %3d epoch %2d [%-6s] %s: %s\n",
		t.Format("2006-01-02T15:04:05.000"), r.Rank, r.Epoch, obs.LevelName(r.Level), r.Sub, r.Msg)
}

// cmdDump snapshots every live rank's flight-recorder state (recent
// logs, trace spans, metrics) into one combined JSON dump, to stdout or
// a file with -o.
func cmdDump(c *client.Client, args []string) {
	outFile := ""
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-o":
			i++
			if i >= len(args) {
				usage()
			}
			outFile = args[i]
		default:
			usage()
		}
	}
	resp, err := c.RPC(wire.TopicInfo, wire.NodeidAny, nil)
	fatalIf(err)
	var info struct {
		Size       int   `json:"size"`
		Tombstones []int `json:"tombstones"`
	}
	fatalIf(resp.UnpackJSON(&info))
	dead := map[int]bool{}
	for _, r := range info.Tombstones {
		dead[r] = true
	}
	d := obs.FlightDump{Reason: "flux-dump", WhenNS: time.Now().UnixNano()}
	for r := 0; r < info.Size; r++ {
		if dead[r] {
			continue
		}
		resp, err := c.RPC(wire.TopicDump, uint32(r), nil)
		if err != nil {
			d.Errors = append(d.Errors, fmt.Sprintf("rank %d: %v", r, err))
			continue
		}
		var fr obs.FlightRank
		if err := resp.UnpackJSON(&fr); err != nil {
			d.Errors = append(d.Errors, fmt.Sprintf("rank %d: %v", r, err))
			continue
		}
		d.Ranks = append(d.Ranks, fr)
	}
	data, err := json.MarshalIndent(d, "", " ")
	fatalIf(err)
	if outFile == "" {
		fmt.Println(string(data))
		return
	}
	fatalIf(os.WriteFile(outFile, data, 0o644))
	fmt.Printf("wrote %s (%d ranks, %d errors)\n", outFile, len(d.Ranks), len(d.Errors))
}

func cmdLog(c *client.Client, args []string) {
	count := 20
	if len(args) >= 2 && args[0] == "dump" {
		if v, err := strconv.Atoi(args[1]); err == nil {
			count = v
		}
	}
	resp, err := c.RPC("log.dump", 0, map[string]int{"count": count})
	fatalIf(err)
	var body struct {
		Entries []struct {
			Facility string `json:"facility"`
			Level    int    `json:"level"`
			Rank     int    `json:"rank"`
			Message  string `json:"message"`
		} `json:"entries"`
	}
	fatalIf(resp.UnpackJSON(&body))
	for _, e := range body.Entries {
		fmt.Printf("[%d] <%d> %s: %s\n", e.Rank, e.Level, e.Facility, e.Message)
	}
}
