package session

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// dmesgGather asks rank 0 for a session-wide tree-reduced dmesg.
func dmesgGather(t *testing.T, s *Session, maxLevel int) (recs []obs.Record, ranks []int) {
	t.Helper()
	h := s.Handle(0)
	defer h.Close()
	resp, err := h.RPC(wire.TopicDmesg, 0,
		map[string]any{"level": maxLevel, "subtree": true, "fwd": true})
	if err != nil {
		t.Fatalf("dmesg gather: %v", err)
	}
	var body struct {
		Records []obs.Record `json:"records"`
		Ranks   []int        `json:"ranks"`
		Errors  []string     `json:"errors"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		t.Fatalf("dmesg response: %v", err)
	}
	for _, e := range body.Errors {
		t.Logf("gather error: %s", e)
	}
	return body.Records, body.Ranks
}

// ranksWithMarker maps which ranks contributed a record carrying marker.
func ranksWithMarker(recs []obs.Record, marker string) map[int]bool {
	got := map[int]bool{}
	for _, r := range recs {
		if strings.Contains(r.Msg, marker) {
			got[r.Rank] = true
		}
	}
	return got
}

// TestDmesgGatherAcrossElasticity is the telemetry-plane acceptance
// test: a 15-rank session logs a warn at every rank, survives a grow, a
// shrink, and a kill+restart interleaved with more logging, and a
// single tree-reduced dmesg at rank 0 returns time-ordered, epoch-
// tagged records from every live rank — joiners and the restarted
// incarnation included.
func TestDmesgGatherAcrossElasticity(t *testing.T) {
	s, err := New(Options{Size: 15, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	logAll := func(marker string) {
		for _, r := range s.LiveRanks() {
			s.Broker(r).Logger().Warnf("test", "%s from rank %d", marker, r)
		}
	}

	logAll("phase1")

	// Grow two ranks, then log everywhere again: the joiners must be
	// reachable by the gather.
	first, err := s.Grow(2)
	if err != nil {
		t.Fatalf("grow: %v", err)
	}
	logAll("phase2")

	// Shrink an interior rank: its static children get adopted by the
	// nearest live ancestor, so the gather must still cover them.
	if err := s.Shrink([]int{2}); err != nil {
		t.Fatalf("shrink: %v", err)
	}

	// Kill and restart a leaf: the new incarnation logs under a fresh
	// boot stamp.
	if err := s.Kill(9); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := s.Restart(9); err != nil {
		t.Fatalf("restart: %v", err)
	}
	logAll("phase3")

	recs, ranks := dmesgGather(t, s, obs.LevelWarn)

	live := s.LiveRanks()
	gathered := map[int]bool{}
	for _, r := range ranks {
		gathered[r] = true
	}
	for _, r := range live {
		if !gathered[r] {
			t.Errorf("live rank %d missing from gather's rank set %v", r, ranks)
		}
	}

	phase3 := ranksWithMarker(recs, "phase3")
	for _, r := range live {
		if !phase3[r] {
			t.Errorf("no phase3 record from live rank %d", r)
		}
	}
	if !phase3[first] || !phase3[first+1] {
		t.Errorf("grown ranks %d,%d missing phase3 records", first, first+1)
	}
	if !phase3[9] {
		t.Error("restarted rank 9 missing phase3 record")
	}
	// Departed rank 2 must not report in phase3 (it was gone).
	if phase3[2] {
		t.Error("departed rank 2 has a phase3 record")
	}

	// Records are time-ordered and epoch-tagged.
	for i := 1; i < len(recs); i++ {
		if recs[i].TimeNS < recs[i-1].TimeNS {
			t.Fatalf("records not time-ordered at %d", i)
		}
	}
	seenEpoch := false
	for _, r := range recs {
		if r.Epoch > 0 {
			seenEpoch = true
			break
		}
	}
	if !seenEpoch {
		t.Error("no record carries a nonzero membership epoch")
	}
}

// TestHeartbeatLogForwarding drives the push path: warn records logged
// at non-root ranks climb to the root's aggregation ring on heartbeat
// events, surviving the origin rank's death.
func TestHeartbeatLogForwarding(t *testing.T) {
	s, err := New(Options{Size: 7, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	for _, r := range s.LiveRanks() {
		if r == 0 {
			continue
		}
		s.Broker(r).Logger().Warnf("test", "fwd-marker from rank %d", r)
		// Debug records must NOT be forwarded.
		s.Broker(r).Logger().Debugf("test", "debug-marker from rank %d", r)
	}

	h := s.Handle(0)
	defer h.Close()
	// Each heartbeat moves batches one hop; a 3-level tree needs several
	// pulses for leaf records to reach the root.
	deadline := time.Now().Add(5 * time.Second)
	want := len(s.LiveRanks()) - 1
	for {
		if _, err := h.PublishEvent(wire.EventHeartbeat, map[string]int{"epoch": 1}); err != nil {
			t.Fatalf("publish hb: %v", err)
		}
		fwd := s.Broker(0).Forwarded().Snapshot(obs.LogFilter{})
		got := ranksWithMarker(fwd, "fwd-marker")
		if len(got) == want {
			for _, rec := range fwd {
				if strings.Contains(rec.Msg, "debug-marker") {
					t.Fatal("debug record leaked into the forwarding plane")
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("root aggregation ring has markers from %v, want %d ranks", got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill a leaf; its already-forwarded warns must remain visible in a
	// root dmesg gather even though the rank is gone.
	if err := s.Kill(6); err != nil {
		t.Fatalf("kill: %v", err)
	}
	recs, _ := dmesgGather(t, s, obs.LevelWarn)
	if got := ranksWithMarker(recs, "fwd-marker from rank 6"); !got[6] {
		t.Error("dead rank 6's forwarded warn lost from root gather")
	}
}

// TestDmesgRPCLevels reads one rank's local ring through a
// rank-addressed cmb.dmesg with a severity cap.
func TestDmesgRPCLevels(t *testing.T) {
	s, err := New(Options{Size: 3, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	s.Broker(1).Logger().Warnf("test", "warn-only")
	s.Broker(1).Logger().Infof("test", "info-only")

	h := s.Handle(0)
	defer h.Close()
	resp, err := h.RPC(wire.TopicDmesg, 1, map[string]any{"level": obs.LevelWarn})
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Rank    int          `json:"rank"`
		Records []obs.Record `json:"records"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		t.Fatal(err)
	}
	if body.Rank != 1 {
		t.Fatalf("answered by rank %d, want 1", body.Rank)
	}
	for _, r := range body.Records {
		if r.Level > obs.LevelWarn {
			t.Fatalf("level filter leaked %+v", r)
		}
	}
	if len(ranksWithMarker(body.Records, "warn-only")) != 1 {
		t.Fatal("warn record missing from rank-local dmesg")
	}
}

// TestFlightRecorderChaosDump wires the recorder to a session, crashes
// a rank through the chaos controller, and expects a dump file naming
// the fault, containing records and metrics for every broker.
func TestFlightRecorderChaosDump(t *testing.T) {
	s, err := New(Options{Size: 5, Arity: 2, FaultInjection: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	dir := t.TempDir()
	rec := s.EnableFlightRecorder(dir)

	for _, r := range s.LiveRanks() {
		s.Broker(r).Logger().Warnf("test", "pre-fault %d", r)
	}
	if err := s.Chaos().Crash(3); err != nil {
		t.Fatalf("crash: %v", err)
	}
	rec.Wait()

	written, _ := rec.Dumps()
	if written != 1 {
		t.Fatalf("dumps written = %d, want 1", written)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "flux-dump-*crash-rank3*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("dump file matching crash-rank3: %v (%v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"reason": "crash-rank3"`, `"pre-fault 0"`, `"metrics"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("dump missing %s", want)
		}
	}

	// The cap suppresses further dumps without error.
	for i := 0; i < DefaultMaxDumps+2; i++ {
		if _, err := rec.Dump(fmt.Sprintf("manual-%d", i)); err != nil {
			t.Fatalf("dump %d: %v", i, err)
		}
	}
	written, suppressed := rec.Dumps()
	if written != DefaultMaxDumps || suppressed < 2 {
		t.Fatalf("written=%d suppressed=%d, want cap at %d", written, suppressed, DefaultMaxDumps)
	}
}
