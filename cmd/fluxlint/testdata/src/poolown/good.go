package poolown

import (
	"errors"

	"fixture.example/wire"
)

var errFull = errors.New("full")

type sender struct{ ch chan *wire.Message }

type msgQueue struct{ items []*wire.Message }

// The sendHandoff pattern: arm, hand to exactly one consumer, never
// touch again.
func handoffThenSend(m *wire.Message) {
	m.Handoff()
	send(m)
}

// Reading the pointer value (not through it) after handoff is safe.
func nilCheckAfterHandoff(m *wire.Message) bool {
	m.Handoff()
	send(m)
	return m != nil
}

// Every path settles the release obligation.
func branchBothRelease(m *wire.Message, ok bool) {
	if ok {
		record(m)
		m.Release()
		return
	}
	m.Release()
}

// The codecConn pattern: each error arm releases, so does success.
func errorPathReleases(m *wire.Message) error {
	if err := encode(m); err != nil {
		m.Release()
		return err
	}
	m.Release()
	return nil
}

// defer settles the obligation wholesale.
func deferRelease(m *wire.Message) int {
	defer m.Release()
	record(m)
	return len(m.Payload)
}

// Rebinding after Release starts a fresh message; returning it moves
// ownership to the caller.
func releaseThenRebind(m *wire.Message) *wire.Message {
	m.Release()
	m = &wire.Message{Topic: wire.TopicPing}
	return m
}

// A channel send transfers ownership (the receiver releases).
func channelOwner(s *sender, m *wire.Message) {
	select {
	case s.ch <- m:
	default:
		m.Release()
	}
}

// The queue.push pattern: append transfers ownership to the queue's
// consumer; the rejection arm releases.
func (q *msgQueue) push(m *wire.Message) error {
	if len(q.items) > 8 {
		m.Release()
		return errFull
	}
	q.items = append(q.items, m)
	return nil
}

// Frame handling that is fine: the fan-out, hand-off, error-path, and
// defer patterns the broker and transports actually use.

// The fan-out pattern: Retain mints one reference per sender; the
// caller's own reference is released once every hand-out is done.
func frameFanout(sinks []*frameSink, f *wire.Frame) {
	for _, s := range sinks {
		s.SendFrame(f.Retain())
	}
	f.Release()
}

// Handing the caller's own reference to exactly one sender: the sender
// releases it, and the caller never touches the frame again.
func frameHandOff(s *frameSink, f *wire.Frame) {
	s.SendFrame(f)
}

// Every path settles the reference: released on the rejection arm,
// handed to the sender otherwise.
func frameErrorPaths(s *frameSink, f *wire.Frame, fail bool) error {
	if fail {
		f.Release()
		return errFull
	}
	s.SendFrame(f)
	return nil
}

// defer settles the frame's obligation wholesale.
func frameDeferRelease(f *wire.Frame) int {
	defer f.Release()
	return len(f.Bytes())
}

// A nil-guarded release: the no-frame path owes nothing.
func frameGuardedRelease(f *wire.Frame) {
	if f != nil {
		f.Release()
	}
}

// Payload handling that is fine: detach before retaining, copy the
// bytes out, or keep the reference local to the handler.

func detachThenRetain(h *holder, m *wire.Message) {
	m.Detach()
	h.data = m.Payload
}

func detachAfterRetain(h *holder, m *wire.Message) {
	h.data = m.Payload
	m.Detach() // anywhere in the handler vouches for the retention
}

func copyOut(m *wire.Message) []byte {
	return append([]byte(nil), m.Payload...) // spread form copies bytes
}

func localUse(m *wire.Message) int {
	data := m.Payload // plain local; does not outlive the handler
	return len(data)
}

func notTheParam(h *holder, m *wire.Message) {
	other := &wire.Message{}
	h.data = other.Payload // not a pooled receive buffer
}
