package sched

import (
	"testing"
	"time"

	"fluxgo/internal/resource"
)

func freshNodes(names ...string) []*resource.Resource {
	nodes := make([]*resource.Resource, 0, len(names))
	for _, n := range names {
		nodes = append(nodes, resource.New(resource.TypeNode, n))
	}
	return nodes
}

// TestSimulateElasticGrow: a job too wide for the founding pool becomes
// schedulable once a membership join adopts more nodes mid-simulation.
func TestSimulateElasticGrow(t *testing.T) {
	p := pool(t, 2)
	jobs := []*Job{
		job("a", 2, 10*time.Second, 0),
		job("b", 4, 10*time.Second, 0),
	}
	changes := []MembershipChange{
		{At: 5 * time.Second, Join: freshNodes("x0", "x1")},
	}
	m, err := SimulateElastic(p, FCFS{}, jobs, changes)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 2 {
		t.Fatalf("completed %d, want 2", m.Completed)
	}
	if jobs[1].Start != 10*time.Second {
		t.Fatalf("wide job started at %v, want 10s (after a retires on the grown pool)", jobs[1].Start)
	}
	if p.TotalNodes() != 4 {
		t.Fatalf("pool has %d nodes after join, want 4", p.TotalNodes())
	}
	if m.Utilization <= 0 || m.Utilization > 1.000001 {
		t.Fatalf("utilization %f out of range", m.Utilization)
	}
}

// TestSimulateElasticDrain: a leave naming allocated nodes must not
// preempt — the nodes drain out when their job retires, after which the
// shrunken pool keeps scheduling.
func TestSimulateElasticDrain(t *testing.T) {
	p := pool(t, 4)
	jobs := []*Job{
		job("a", 4, 10*time.Second, 0),
		job("b", 2, 5*time.Second, 0),
	}
	changes := []MembershipChange{
		{At: 2 * time.Second, Leave: []string{"node2", "node3"}},
	}
	m, err := SimulateElastic(p, FCFS{}, jobs, changes)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 2 {
		t.Fatalf("completed %d, want 2", m.Completed)
	}
	if jobs[0].End != 10*time.Second {
		t.Fatalf("running job preempted by leave: end %v, want 10s", jobs[0].End)
	}
	if p.TotalNodes() != 2 {
		t.Fatalf("pool has %d nodes after drain, want 2", p.TotalNodes())
	}
	if jobs[1].Start != 10*time.Second {
		t.Fatalf("follow-up job started at %v, want 10s on the shrunken pool", jobs[1].Start)
	}
}

// TestSimulateElasticValidation: a job wider than the peak capacity over
// the whole timeline is rejected up front.
func TestSimulateElasticValidation(t *testing.T) {
	p := pool(t, 2)
	changes := []MembershipChange{
		{At: time.Second, Join: freshNodes("x0")},
	}
	_, err := SimulateElastic(p, FCFS{}, []*Job{job("w", 4, time.Second, 0)}, changes)
	if err == nil {
		t.Fatal("job wider than peak capacity accepted")
	}
}
