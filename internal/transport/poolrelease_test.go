package transport

import (
	"net"
	"testing"
	"time"

	"fluxgo/internal/wire"
)

// Regression tests for pooled-message ownership on transport error
// paths. The contract (enforced by fluxlint's pool-ownership pass) is
// that Send consumes the message, success or failure: an armed message
// that escapes un-Released leaks its pooled buffer. Release zeroes the
// armed Message, so a cleared Topic is the observable for "released".
//
// Messages are built with a literal + Handoff rather than wire.Get so a
// Release does not return them to the global pool mid-test.

func armedMsg(topic string) *wire.Message {
	m := &wire.Message{Type: wire.Request, Topic: topic}
	m.Handoff()
	return m
}

func assertReleased(t *testing.T, m *wire.Message, what string) {
	t.Helper()
	if m.Topic != "" {
		t.Errorf("%s: message not released (Topic = %q, want zeroed)", what, m.Topic)
	}
}

// A rejected push (closed queue) must release the message: pipeConn and
// tcpConn Sends both delegate ownership to queue.push.
func TestQueuePushClosedReleases(t *testing.T) {
	q := newQueue()
	q.close(false)
	m := armedMsg("q.reject")
	if err := q.push(outItem{m: m}); err != ErrClosed {
		t.Fatalf("push on closed queue: err = %v, want ErrClosed", err)
	}
	assertReleased(t, m, "push on closed queue")
}

// A hard close (drain=false) drops queued messages; armed ones must be
// recycled, not dropped on the floor.
func TestQueueCloseReleasesPending(t *testing.T) {
	q := newQueue()
	msgs := []*wire.Message{armedMsg("q.a"), armedMsg("q.b"), armedMsg("q.c")}
	for _, m := range msgs {
		if err := q.push(outItem{m: m}); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	q.close(false)
	for i, m := range msgs {
		assertReleased(t, m, "hard close, queued message "+string(rune('a'+i)))
	}
	if _, err := q.pop(); err == nil {
		t.Fatal("pop after hard close returned a message, want EOF")
	}
}

// codecConn.Send must release the original message on the marshal-error
// path (oversized payload) ...
func TestCodecSendReleasesOnMarshalError(t *testing.T) {
	a, b := CodecPipe("a", "b")
	defer a.Close()
	defer b.Close()
	m := armedMsg("codec.big")
	m.Payload = make([]byte, wire.MaxMessageSize)
	if err := a.Send(m); err != wire.ErrTooLarge {
		t.Fatalf("Send oversized: err = %v, want ErrTooLarge", err)
	}
	assertReleased(t, m, "codec send, marshal error")
}

// ... and on the inner-Send-error path (peer closed underneath it).
func TestCodecSendReleasesOnClosedConn(t *testing.T) {
	a, b := CodecPipe("a", "b")
	defer b.Close()
	a.Close()
	m := armedMsg("codec.closed")
	if err := a.Send(m); err != ErrClosed {
		t.Fatalf("Send on closed conn: err = %v, want ErrClosed", err)
	}
	assertReleased(t, m, "codec send, closed conn")
}

// The TCP writer must release a message whose encoding fails; the
// failure also closes the out-queue, releasing anything queued behind
// it. (The writer never reaches the socket, so the unread pipe peer is
// irrelevant.)
func TestWriteLoopReleasesOnMarshalError(t *testing.T) {
	pc, peer := net.Pipe()
	defer peer.Close()
	c := newTCPConn(pc, "peer")
	defer c.Close()

	m := armedMsg("tcp.big")
	m.Payload = make([]byte, wire.MaxMessageSize)
	if err := c.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
		t.Fatal("writeLoop did not shut down after marshal error")
	}
	assertReleased(t, m, "tcp writer, marshal error")

	// The failed writer closed the queue: later sends are rejected and
	// their messages recycled.
	late := armedMsg("tcp.late")
	if err := c.Send(late); err != ErrClosed {
		t.Fatalf("Send after writer failure: err = %v, want ErrClosed", err)
	}
	assertReleased(t, late, "tcp send after writer failure")
}
