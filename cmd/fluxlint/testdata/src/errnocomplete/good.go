package errnocomplete

import (
	"fixture.example/fakes"
	"fixture.example/wire"
)

// A complete echo dispatch: every declared op has an arm, every arm
// emits only declared errnos, unknown methods get ENOSYS.
func dispatchComplete(h *fakes.Handle, msg *wire.Message, ready bool) {
	switch msg.Method() {
	case "run":
		if !ready {
			h.RespondError(msg, wire.ErrnoInval, "not ready")
			return
		}
		h.RespondError(msg, wire.ErrnoProto, "protocol violation")
	case "stop":
		h.RespondError(msg, wire.ErrnoInval, "bad request")
	default:
		h.RespondError(msg, wire.ErrnoNoSys, "unknown method")
	}
}

// Declared-errno emission through a helper is fine too.
func rejectRun(h *fakes.Handle, msg *wire.Message) {
	h.RespondError(msg, wire.ErrnoProto, "run rejected")
}

func dispatchHelperDeclared(h *fakes.Handle, msg *wire.Message) {
	switch msg.Method() {
	case "run":
		rejectRun(h, msg)
	case "stop":
		h.RespondError(msg, wire.ErrnoInval, "bad request")
	default:
		h.RespondError(msg, wire.ErrnoNoSys, "unknown method")
	}
}

// The cmb built-ins: an empty arm emits nothing and needs nothing.
func dispatchCMB(h *fakes.Handle, msg *wire.Message) {
	switch msg.Method() {
	case "ping":
		h.RespondError(msg, wire.ErrnoInval, "bad ping")
	case "stats":
		// served without error responses
	default:
		h.RespondError(msg, wire.ErrnoNoSys, "unknown method")
	}
}

// A dispatch that never emits errnos is out of scope (event folding,
// control handling): no default required.
func dispatchNoErrnos(msg *wire.Message) {
	count := 0
	switch msg.Method() {
	case "run":
		count++
	case "stop":
		count--
	}
	_ = count
}

// A switch on something other than msg.Method() is not a dispatch.
func notADispatch(s string, h *fakes.Handle, msg *wire.Message) {
	switch s {
	case "oops":
		h.RespondError(msg, wire.ErrnoInval, "oops")
	}
}
