package wire

import (
	"bytes"
	"testing"
)

func TestBinBodyRoundTrip(t *testing.T) {
	w := NewBinWriter(64)
	w.String("files.conf.hosts")
	w.Bytes([]byte{0, 1, 2, 0xB3, 0xFF})
	w.Uint(1 << 40)
	w.StringSlice([]string{"a", "", "long-ref-0123456789abcdef"})
	w.BytesMap(map[string][]byte{"k1": []byte("v1"), "k2": nil})
	body := w.Finish()

	if !IsBinaryBody(body) {
		t.Fatal("finished body does not sniff as binary")
	}
	r, ok := NewBinReader(body)
	if !ok {
		t.Fatal("reader refused a binary body")
	}
	if got := r.String(); got != "files.conf.hosts" {
		t.Fatalf("string field = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{0, 1, 2, 0xB3, 0xFF}) {
		t.Fatalf("bytes field = %x", got)
	}
	if got := r.Uint(); got != 1<<40 {
		t.Fatalf("uint field = %d", got)
	}
	if got := r.StringSlice(); len(got) != 3 || got[2] != "long-ref-0123456789abcdef" {
		t.Fatalf("string slice = %q", got)
	}
	m := r.BytesMap()
	if len(m) != 2 || string(m["k1"]) != "v1" {
		t.Fatalf("bytes map = %v", m)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("clean decode reported %v", err)
	}
}

// TestBinReaderSniff: JSON bodies are refused so callers fall back.
func TestBinReaderSniff(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte(`{"key":"v"}`), []byte(`[1]`), []byte(`"s"`)} {
		if _, ok := NewBinReader(payload); ok {
			t.Fatalf("payload %q sniffed as binary", payload)
		}
		if IsBinaryBody(payload) {
			t.Fatalf("IsBinaryBody(%q) = true", payload)
		}
	}
}

// TestBinReaderTruncation: every truncation point surfaces through Err
// instead of panicking or silently zero-filling.
func TestBinReaderTruncation(t *testing.T) {
	w := NewBinWriter(32)
	w.String("topic")
	w.Bytes([]byte("payload"))
	full := w.Finish()
	for cut := 1; cut < len(full); cut++ {
		r, ok := NewBinReader(full[:cut])
		if !ok {
			t.Fatalf("cut %d: lost the magic byte", cut)
		}
		s := r.String()
		b := r.Bytes()
		if r.Err() == nil && (s != "topic" || !bytes.Equal(b, []byte("payload"))) {
			t.Fatalf("cut %d: clean decode of truncated body (%q, %q)", cut, s, b)
		}
	}
}

// TestBinReaderBogusCounts: a corrupt count larger than the remaining
// body fails fast instead of allocating gigabytes.
func TestBinReaderBogusCounts(t *testing.T) {
	body := append([]byte{BinMagic}, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // huge uvarint
	r, _ := NewBinReader(body)
	if ss := r.StringSlice(); ss != nil {
		t.Fatalf("bogus count yielded %d strings", len(ss))
	}
	if r.Err() == nil {
		t.Fatal("bogus count not reported")
	}
	r2, _ := NewBinReader(body)
	if m := r2.BytesMap(); m != nil {
		t.Fatalf("bogus count yielded %d map entries", len(m))
	}
	if r2.Err() == nil {
		t.Fatal("bogus map count not reported")
	}
}

// TestBinBytesCopiedOut: decoded byte fields survive the payload buffer
// being recycled (the pooled receive-buffer contract).
func TestBinBytesCopiedOut(t *testing.T) {
	w := NewBinWriter(16)
	w.Bytes([]byte("keepme"))
	body := w.Finish()
	r, _ := NewBinReader(body)
	got := r.Bytes()
	for i := range body {
		body[i] = 0xEE
	}
	if string(got) != "keepme" {
		t.Fatalf("decoded bytes alias the payload: %q", got)
	}
}

// TestRawBodyPassthrough: RawBody payloads ride the JSON constructors
// verbatim — how binary bodies reach NewRequest/NewResponse.
func TestRawBodyPassthrough(t *testing.T) {
	w := NewBinWriter(8)
	w.String("x")
	body := w.Finish()
	m, err := NewRequest("kvs.put", NodeidAny, RawBody(body))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Payload, body) {
		t.Fatalf("payload %x != raw body %x", m.Payload, body)
	}
}
