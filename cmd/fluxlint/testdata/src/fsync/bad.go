// Package fsync holds fixtures for the fsync-discipline pass.
package fsync

import "os"

// tornCheckpoint drops both durability errors: the deferred Close on a
// written file and the naked Sync.
func tornCheckpoint(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // BAD
	if _, err := f.Write(b); err != nil {
		return err
	}
	f.Sync() // BAD
	return nil
}

// syncOnly: even with no Write in sight, a discarded Sync is a lie —
// nobody syncs a file they did not write.
func syncOnly(f *os.File) {
	f.Sync() // BAD
}

// closeAfterWrite: a bare Close statement on a written handle loses the
// last write-back error.
func closeAfterWrite(f *os.File, b []byte) {
	if _, err := f.Write(b); err != nil {
		return
	}
	f.Close() // BAD
}

// inGoroutine: discarding in a go statement is no better.
func inGoroutine(f *os.File) {
	go f.Sync() // BAD
}

// fileLike shapes beyond *os.File are covered too.
type walFile struct{}

func (*walFile) Append(b []byte) (int, error) { return len(b), nil }
func (*walFile) Write(b []byte) (int, error)  { return len(b), nil }
func (*walFile) Sync() error                  { return nil }
func (*walFile) Close() error                 { return nil }

func appendAndDrop(w *walFile, b []byte) {
	if _, err := w.Append(b); err != nil {
		return
	}
	w.Sync()  // BAD
	w.Close() // BAD
}

// writeInClosure: the write happens inside a closure, the deferred
// Close outside — same handle, same lifecycle.
func writeInClosure(f *os.File, b []byte) func() error {
	defer f.Close() // BAD
	return func() error {
		_, err := f.Write(b)
		return err
	}
}
