package kvs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fluxgo/internal/session"
)

// newKVSSession starts a session with the kvs module at every rank.
func newKVSSession(t testing.TB, size, arity int) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size:    size,
		Arity:   arity,
		Modules: []session.ModuleFactory{Factory(ModuleConfig{})},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func client(t testing.TB, s *session.Session, rank int) *Client {
	t.Helper()
	h := s.Handle(rank)
	t.Cleanup(h.Close)
	return NewClient(h)
}

func TestPutCommitGetSingleRank(t *testing.T) {
	s := newKVSSession(t, 1, 2)
	c := client(t, s, 0)
	if err := c.Put("a.b.c", 42); err != nil {
		t.Fatal(err)
	}
	ver, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Fatalf("version = %d, want 1", ver)
	}
	var got int
	if err := c.Get("a.b.c", &got); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("a.b.c = %d, want 42", got)
	}
}

func TestGetMissingKey(t *testing.T) {
	s := newKVSSession(t, 1, 2)
	c := client(t, s, 0)
	err := c.Get("no.such.key", nil)
	if err == nil || !ErrNotFound(err) {
		t.Fatalf("err = %v, want not-found", err)
	}
	// Also before any commit at all.
	c.Put("x", 1)
	c.Commit()
	err = c.Get("y", nil)
	if !ErrNotFound(err) {
		t.Fatalf("err = %v, want not-found", err)
	}
}

func TestReadYourWritesAcrossRanks(t *testing.T) {
	s := newKVSSession(t, 7, 2)
	writer := client(t, s, 5) // a leaf
	if err := writer.Put("w.key", "hello"); err != nil {
		t.Fatal(err)
	}
	ver, err := writer.Commit()
	if err != nil {
		t.Fatal(err)
	}
	// The committing process must immediately see its own write, with no
	// extra synchronization (read-your-writes).
	var got string
	if err := writer.Get("w.key", &got); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
	if ver == 0 {
		t.Fatal("commit returned version 0")
	}
}

func TestCausalConsistencyViaWaitVersion(t *testing.T) {
	s := newKVSSession(t, 7, 2)
	a := client(t, s, 3)
	b := client(t, s, 6)
	// Process A updates and "communicates" the version to process B.
	a.Put("causal.x", 99)
	ver, err := a.Commit()
	if err != nil {
		t.Fatal(err)
	}
	// B waits for that version, then must observe the update.
	if err := b.WaitVersion(ver); err != nil {
		t.Fatal(err)
	}
	var got int
	if err := b.Get("causal.x", &got); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("causal.x = %d at B, want 99", got)
	}
}

func TestMonotonicReadConsistency(t *testing.T) {
	s := newKVSSession(t, 7, 2)
	w := client(t, s, 0)
	r := client(t, s, 6)
	var lastSeen int
	for i := 1; i <= 20; i++ {
		w.Put("mono.x", i)
		ver, err := w.Commit()
		if err != nil {
			t.Fatal(err)
		}
		_ = ver
		var got int
		if err := r.Get("mono.x", &got); err != nil {
			if ErrNotFound(err) {
				continue // reader's root may lag; absence is not regression
			}
			t.Fatal(err)
		}
		if got < lastSeen {
			t.Fatalf("monotonic read violated: saw %d after %d", got, lastSeen)
		}
		lastSeen = got
	}
}

func TestDeleteKey(t *testing.T) {
	s := newKVSSession(t, 3, 2)
	c := client(t, s, 1)
	c.Put("d.k", 1)
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Delete("d.k")
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.Get("d.k", nil); !ErrNotFound(err) {
		t.Fatalf("after delete, err = %v", err)
	}
}

func TestGetDirAndRef(t *testing.T) {
	s := newKVSSession(t, 3, 2)
	c := client(t, s, 2)
	c.Put("dir.a", 1)
	c.Put("dir.b", 2)
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	names, err := c.GetDir("dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("dir = %v", names)
	}
	ref1, err := c.GetRef("dir")
	if err != nil {
		t.Fatal(err)
	}
	// Changing something *under* the directory changes its reference.
	c.Put("dir.a", 999)
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	ref2, _ := c.GetRef("dir")
	if ref1 == ref2 {
		t.Fatal("directory ref unchanged after nested update")
	}
	// Get of a directory key errors; GetDir of a value errors.
	if err := c.Get("dir", nil); err == nil {
		t.Fatal("Get(dir) succeeded")
	}
	if _, err := c.GetDir("dir.a"); err == nil {
		t.Fatal("GetDir(value) succeeded")
	}
}

func TestNotADirectoryError(t *testing.T) {
	s := newKVSSession(t, 1, 2)
	c := client(t, s, 0)
	c.Put("v", 1)
	c.Commit()
	err := c.Get("v.below", nil)
	if err == nil || !ErrNotDir(err) {
		t.Fatalf("err = %v, want not-a-directory", err)
	}
}

func TestFenceCollective(t *testing.T) {
	const size, procs = 7, 14 // two participants per rank
	s := newKVSSession(t, size, 2)
	var wg sync.WaitGroup
	versions := make([]uint64, procs)
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := client(t, s, p%size)
			if err := c.Put(fmt.Sprintf("fence.k%d", p), p); err != nil {
				errs[p] = err
				return
			}
			versions[p], errs[p] = c.Fence("testfence", procs)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("participant %d: %v", p, err)
		}
	}
	// All participants observe the same resulting version: one root
	// transition for the whole collective.
	for p := 1; p < procs; p++ {
		if versions[p] != versions[0] {
			t.Fatalf("participant %d version %d != %d", p, versions[p], versions[0])
		}
	}
	// Every key is visible everywhere afterwards.
	c := client(t, s, size-1)
	for p := 0; p < procs; p++ {
		var got int
		if err := c.Get(fmt.Sprintf("fence.k%d", p), &got); err != nil {
			t.Fatalf("get k%d: %v", p, err)
		}
		if got != p {
			t.Fatalf("k%d = %d", p, got)
		}
	}
}

func TestFenceSingleParticipantEqualsCommit(t *testing.T) {
	s := newKVSSession(t, 3, 2)
	c := client(t, s, 2)
	c.Put("f1.k", "v")
	ver, err := c.Fence("lonely", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ver == 0 {
		t.Fatal("fence returned version 0")
	}
	var got string
	if err := c.Get("f1.k", &got); err != nil || got != "v" {
		t.Fatalf("get: %q %v", got, err)
	}
}

func TestFenceNprocsValidation(t *testing.T) {
	s := newKVSSession(t, 1, 2)
	c := client(t, s, 0)
	if _, err := c.Fence("bad", 0); err == nil {
		t.Fatal("nprocs 0 accepted")
	}
}

func TestCommitEmptyReturnsCurrentVersion(t *testing.T) {
	s := newKVSSession(t, 1, 2)
	c := client(t, s, 0)
	v0, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if v0 != 0 {
		t.Fatalf("empty commit version = %d, want 0", v0)
	}
	c.Put("k", 1)
	c.Commit()
	v1, _ := c.Commit()
	if v1 != 1 {
		t.Fatalf("version = %d, want 1", v1)
	}
}

func TestConcurrentCommitsDistinctKeys(t *testing.T) {
	const size, writers = 7, 7
	s := newKVSSession(t, size, 2)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := client(t, s, w%size)
			for i := 0; i < 5; i++ {
				c.Put(fmt.Sprintf("cc.w%d.i%d", w, i), i)
				if _, err := c.Commit(); err != nil {
					t.Errorf("writer %d commit %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c := client(t, s, 0)
	for w := 0; w < writers; w++ {
		for i := 0; i < 5; i++ {
			var got int
			if err := c.Get(fmt.Sprintf("cc.w%d.i%d", w, i), &got); err != nil {
				t.Fatalf("get w%d i%d: %v", w, i, err)
			}
		}
	}
}

func TestWatchValue(t *testing.T) {
	s := newKVSSession(t, 3, 2)
	wc := client(t, s, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := wc.Watch(ctx, "watched.key")
	if err != nil {
		t.Fatal(err)
	}
	// Initial state: missing.
	select {
	case u := <-ch:
		if u.Exists {
			t.Fatalf("initial state exists: %+v", u)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no initial watch state")
	}
	w := client(t, s, 0)
	w.Put("watched.key", "v1")
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-ch:
		if !u.Exists || string(u.Val) != `"v1"` {
			t.Fatalf("watch update %+v", u)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch update not delivered")
	}
	// Unrelated commits do not trigger the watch.
	w.Put("unrelated.key", 1)
	w.Commit()
	w.Put("watched.key", "v2")
	w.Commit()
	select {
	case u := <-ch:
		if string(u.Val) != `"v2"` {
			t.Fatalf("expected v2 update, got %+v", u)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("v2 watch update not delivered")
	}
}

func TestWatchDirectoryDeepChange(t *testing.T) {
	// "a watched directory changes if keys under it at any path depth
	// change" — the hash-tree property.
	s := newKVSSession(t, 3, 2)
	w := client(t, s, 0)
	w.Put("top.mid.leaf", 1)
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	wc := client(t, s, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := wc.Watch(ctx, "top")
	if err != nil {
		t.Fatal(err)
	}
	first := <-ch
	if !first.Exists || first.Dir == nil {
		t.Fatalf("initial state %+v", first)
	}
	w.Put("top.mid.leaf", 2) // change two levels below the watched dir
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-ch:
		if u.Ref == first.Ref {
			t.Fatal("directory ref unchanged after deep modification")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deep change did not trigger directory watch")
	}
}

func TestLateReaderFetchesRootLazily(t *testing.T) {
	// A slave that never saw a setroot event (e.g. all commits happened
	// before it was asked anything) must learn the root from upstream.
	s := newKVSSession(t, 7, 2)
	w := client(t, s, 0)
	w.Put("lazy.k", 7)
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Give event propagation a moment, then read from a leaf; even if the
	// event already arrived this exercises the get path end to end.
	r := client(t, s, 6)
	var got int
	if err := r.Get("lazy.k", &got); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("lazy.k = %d", got)
	}
}

func TestVersionsMonotone(t *testing.T) {
	s := newKVSSession(t, 3, 2)
	c := client(t, s, 1)
	var last uint64
	for i := 0; i < 10; i++ {
		c.Put("vm.k", i)
		v, err := c.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if v <= last {
			t.Fatalf("version %d not > %d", v, last)
		}
		last = v
	}
	got, err := c.GetVersion()
	if err != nil {
		t.Fatal(err)
	}
	if got != last {
		t.Fatalf("GetVersion = %d, want %d", got, last)
	}
}

func TestLargeValuesRoundTrip(t *testing.T) {
	s := newKVSSession(t, 3, 2)
	c := client(t, s, 2)
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i % 251)
	}
	if err := c.Put("big.blob", big); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	r := client(t, s, 1)
	var got []byte
	if err := r.Get("big.blob", &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big) || got[100] != big[100] {
		t.Fatal("large value corrupted")
	}
}

func TestFenceRedundantValuesDedup(t *testing.T) {
	// Redundant values must be deduplicated in fence aggregation: after
	// the fence, all keys share one value object (same ref).
	const size, procs = 7, 7
	s := newKVSSession(t, size, 2)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := client(t, s, p)
			c.Put(fmt.Sprintf("red.k%d", p), "same-value-for-everyone")
			if _, err := c.Fence("redfence", procs); err != nil {
				t.Errorf("p%d: %v", p, err)
			}
		}(p)
	}
	wg.Wait()
	c := client(t, s, 0)
	ref0, err := c.GetRef("red.k0")
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p < procs; p++ {
		ref, err := c.GetRef(fmt.Sprintf("red.k%d", p))
		if err != nil {
			t.Fatal(err)
		}
		if ref != ref0 {
			t.Fatalf("redundant values have different refs: %s vs %s", ref, ref0)
		}
	}
}

func TestSlaveCacheServesRepeatReads(t *testing.T) {
	s := newKVSSession(t, 7, 2)
	w := client(t, s, 0)
	w.Put("cache.k", "x")
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	r := client(t, s, 6)
	var got string
	if err := r.Get("cache.k", &got); err != nil {
		t.Fatal(err)
	}
	// Second read is served from the slave cache: no new loads upstream.
	statsBefore := moduleLoads(t, r)
	if err := r.Get("cache.k", &got); err != nil {
		t.Fatal(err)
	}
	statsAfter := moduleLoads(t, r)
	if statsAfter != statsBefore {
		t.Fatalf("repeat read faulted upstream: loads %d -> %d", statsBefore, statsAfter)
	}
}

// moduleLoads fetches the local kvs module's cumulative fault-in count.
func moduleLoads(t *testing.T, c *Client) uint64 {
	t.Helper()
	resp, err := c.Handle().RPC("kvs.stats", 0xFFFFFFFF, nil)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Loads uint64 `json:"loads"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		t.Fatal(err)
	}
	return body.Loads
}

func TestManyKeysSingleCommit(t *testing.T) {
	s := newKVSSession(t, 3, 2)
	c := client(t, s, 1)
	const n = 200
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("many.k%03d", i), i)
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	names, err := c.GetDir("many")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != n {
		t.Fatalf("dir has %d entries, want %d", len(names), n)
	}
}

func TestPutInvalidKey(t *testing.T) {
	s := newKVSSession(t, 1, 2)
	c := client(t, s, 0)
	if err := c.Put("", 1); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := c.Put("a..b", 1); err == nil {
		t.Fatal("key with empty component accepted")
	}
	if err := c.Delete("a..b"); err == nil {
		t.Fatal("delete with bad key accepted")
	}
	if err := c.Get("a..b", nil); err == nil {
		t.Fatal("get with bad key accepted")
	}
}
