//go:build ignore

// Generator for frames_v3.hex, the golden wire-compat fixture. Run from
// internal/wire after a deliberate codec change:
//
//	go run testdata/gen.go > testdata/frames_v3.hex
//
// The frames cover each message type plus the layout corners (route
// stacks, empty payloads, epoch stamping, max-style field values) so the
// byte-exact re-encode test pins the full header and framing.
package main

import (
	"encoding/hex"
	"fmt"

	"fluxgo/internal/wire"
)

func main() {
	frames := []*wire.Message{
		{Type: wire.Request, Topic: "kvs.load", Nodeid: wire.NodeidUpstream,
			Seq: 7, Epoch: 1, TraceID: 0xdeadbeefcafef00d, Parent: 2, Hops: 5,
			Route:   []string{"h:3", "t:rank:2"},
			Payload: []byte(`{"ref":"abc"}`)},
		{Type: wire.Response, Topic: "kvs.load", Seq: 7, Errnum: wire.ErrnoHostUnreach,
			Epoch: 1, Route: []string{"h:3"},
			Payload: []byte(`{"error":"host unreachable"}`)},
		{Type: wire.Event, Topic: "hb", Nodeid: wire.NodeidAny, Seq: 99, Epoch: 3,
			Payload: []byte(`{}`)},
		{Type: wire.Control, Topic: "cmb.resync", Seq: 12},
		{Type: wire.Request, Topic: wire.TopicJoin, Nodeid: wire.NodeidAny,
			Seq: 1, Epoch: 4,
			Payload: []byte(`{"session":"s","wire_version":3,"rank":9}`)},
		{Type: wire.Response, Topic: "barrier.enter", Seq: 0xFFFFFFFFFFFFFFFF,
			Errnum: wire.ErrnoStale, Epoch: 0xFFFFFFFF,
			Route:   []string{"h:1", "t:rank:0", "e:x"},
			Payload: []byte(`{"error":"stale epoch"}`)},
	}
	fmt.Println("# v3 frames encoded by the PR-6 codec (membership epoch in the header); one hex frame per line.")
	for _, m := range frames {
		b, err := wire.Marshal(m)
		if err != nil {
			panic(err)
		}
		fmt.Println(hex.EncodeToString(b))
	}
}
