// Package kvs implements the Flux distributed key-value store: a comms
// module plus a client library.
//
// The store follows the paper's design: JSON values live in a
// content-addressable object store hashed by SHA-1; hierarchical key
// names ("a.b.c") are broken into path components referencing directory
// objects; an external root reference points to the root directory; and
// every update produces a new root reference. A single master at the
// tree root applies commits and publishes the new root reference as a
// sequenced event; caching slaves switch roots in response and fault
// missing objects in from their CMB-tree parent, recursively up the tree.
//
// Consistency (Vogels' taxonomy, as in the paper): monotonic-read
// follows from ordered event delivery; read-your-writes from returning
// the new root version in the commit response and syncing to it before
// the call returns; causal consistency from GetVersion/WaitVersion.
package kvs

import (
	"fmt"
	"strings"

	"fluxgo/internal/cas"
)

// Op is one key update in a commit or fence: bind Key to the value
// object Ref, or unlink Key when Delete is set.
type Op struct {
	Key    string `json:"key"`
	Ref    string `json:"ref,omitempty"` // hex SHA-1 of the value object
	Delete bool   `json:"del,omitempty"`
}

// ValidateKey checks the hierarchical key syntax: dot-separated,
// non-empty path components.
func ValidateKey(key string) error {
	if key == "" {
		return fmt.Errorf("kvs: empty key")
	}
	for _, part := range strings.Split(key, ".") {
		if part == "" {
			return fmt.Errorf("kvs: key %q has an empty path component", key)
		}
	}
	return nil
}

// splitKey returns the path components of a validated key.
func splitKey(key string) []string { return strings.Split(key, ".") }

// mutDir is a mutable, partially loaded view of a directory used while
// applying a batch of ops. Children are loaded lazily from the store and
// re-serialized bottom-up afterwards, yielding the new root reference.
type mutDir struct {
	entries map[string]*mutEntry
}

// mutEntry is either an untouched reference or a descended-into child
// directory.
type mutEntry struct {
	ref cas.Ref // valid when dir == nil
	dir *mutDir
}

// loadMutDir builds a mutDir from a stored directory object.
func loadMutDir(store *cas.Store, ref cas.Ref) (*mutDir, error) {
	d := &mutDir{entries: map[string]*mutEntry{}}
	if ref.IsZero() {
		return d, nil
	}
	obj, ok := store.Get(ref)
	if !ok {
		return nil, fmt.Errorf("kvs: missing directory object %s", ref.Short())
	}
	if obj.Kind != cas.KindDir {
		return nil, fmt.Errorf("kvs: object %s is not a directory", ref.Short())
	}
	for name, r := range obj.Dir {
		d.entries[name] = &mutEntry{ref: r}
	}
	return d, nil
}

// descend returns the child directory named name, loading or creating it
// as needed. A value object in the way is replaced by a fresh directory
// (last write wins).
func (d *mutDir) descend(store *cas.Store, name string) (*mutDir, error) {
	e, ok := d.entries[name]
	if !ok {
		child := &mutDir{entries: map[string]*mutEntry{}}
		d.entries[name] = &mutEntry{dir: child}
		return child, nil
	}
	if e.dir != nil {
		return e.dir, nil
	}
	obj, ok := store.Get(e.ref)
	if ok && obj.Kind == cas.KindDir {
		child, err := loadMutDir(store, e.ref)
		if err != nil {
			return nil, err
		}
		e.dir = child
		return child, nil
	}
	// Entry is a value (or missing): overwrite with an empty directory.
	child := &mutDir{entries: map[string]*mutEntry{}}
	e.dir = child
	return child, nil
}

// serialize stores the (possibly modified) directory tree bottom-up and
// returns the directory's new reference. Empty directories collapse to
// the zero ref so unlinking the last entry prunes the path.
func (d *mutDir) serialize(store *cas.Store, pin bool) (cas.Ref, error) {
	obj := cas.NewDir()
	for name, e := range d.entries {
		if e.dir != nil {
			ref, err := e.dir.serialize(store, pin)
			if err != nil {
				return cas.Ref{}, err
			}
			if ref.IsZero() {
				continue // empty subdirectory pruned
			}
			obj.Dir[name] = ref
			continue
		}
		obj.Dir[name] = e.ref
	}
	if len(obj.Dir) == 0 {
		return cas.Ref{}, nil
	}
	ref := store.Put(obj)
	if pin {
		store.Pin(ref)
	}
	return ref, nil
}

// ApplyOps applies a batch of ops to the tree rooted at root and returns
// the new root reference. It is the master's commit step from the paper:
// new directory objects are created along each updated path, arriving at
// a new root SHA-1. The final root is independent of op order for
// distinct keys (hash-tree determinism); for duplicate keys the last op
// wins.
func ApplyOps(store *cas.Store, root cas.Ref, ops []Op, pin bool) (cas.Ref, error) {
	rootDir, err := loadMutDir(store, root)
	if err != nil {
		return cas.Ref{}, err
	}
	for _, op := range ops {
		if err := ValidateKey(op.Key); err != nil {
			return cas.Ref{}, err
		}
		parts := splitKey(op.Key)
		dir := rootDir
		for _, part := range parts[:len(parts)-1] {
			dir, err = dir.descend(store, part)
			if err != nil {
				return cas.Ref{}, err
			}
		}
		leaf := parts[len(parts)-1]
		if op.Delete {
			delete(dir.entries, leaf)
			continue
		}
		ref, err := cas.ParseRef(op.Ref)
		if err != nil {
			return cas.Ref{}, fmt.Errorf("kvs: op %q: %w", op.Key, err)
		}
		dir.entries[leaf] = &mutEntry{ref: ref}
	}
	return rootDir.serialize(store, pin)
}
