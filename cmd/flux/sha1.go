package main

import (
	"crypto/sha1"
	"encoding/hex"
)

// sha1Hex returns the hex SHA-1 of b — the content reference of an
// encoded KVS object.
func sha1Hex(b []byte) string {
	sum := sha1.Sum(b)
	return hex.EncodeToString(sum[:])
}
