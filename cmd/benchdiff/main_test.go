package main

import (
	"math"
	"strings"
	"testing"
)

const coreArchive = `{
  "benchmark": "core-micro",
  "baseline": {"label": "baseline", "results": [
    {"pkg": "fluxgo/internal/wire", "name": "BenchmarkMarshal", "min_ns_per_op": 93.2}
  ]},
  "after": {"label": "after", "results": [
    {"pkg": "fluxgo/internal/wire", "name": "BenchmarkMarshal", "min_ns_per_op": 45.5},
    {"pkg": "fluxgo/internal/wire", "name": "BenchmarkUnmarshal", "min_ns_per_op": 193.3}
  ]}
}`

const coreFresh = `{
  "label": "fresh",
  "results": [
    {"pkg": "fluxgo/internal/wire", "name": "BenchmarkMarshal", "min_ns_per_op": 60.0},
    {"pkg": "fluxgo/internal/kvs", "name": "BenchmarkCommit", "min_ns_per_op": 900.0}
  ]
}`

func TestParseSideDetectsFormats(t *testing.T) {
	s, err := parseSide([]byte(coreArchive))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Core) != 2 || s.Kap != nil {
		t.Fatalf("archive parsed to %d core / %d kap, want after-side 2 core", len(s.Core), len(s.Kap))
	}
	if s.Core[0].MinNsOp != 45.5 {
		t.Fatalf("archive must yield the after side, got min_ns_per_op %v", s.Core[0].MinNsOp)
	}
	if _, err := parseSide([]byte(`{"label": "x"}`)); err == nil {
		t.Fatal("shapeless input must be rejected")
	}
}

func TestDiffCorePairsAndReportsUnmatched(t *testing.T) {
	oldS, err := parseSide([]byte(coreArchive))
	if err != nil {
		t.Fatal(err)
	}
	newS, err := parseSide([]byte(coreFresh))
	if err != nil {
		t.Fatal(err)
	}
	deltas, unmatched, err := diff(oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1 (only BenchmarkMarshal exists on both sides)", len(deltas))
	}
	d := deltas[0]
	if d.Old != 45.5 || d.New != 60.0 {
		t.Fatalf("delta pairs %v -> %v, want 45.5 -> 60.0", d.Old, d.New)
	}
	if want := 60.0/45.5 - 1; math.Abs(d.ratio()-want) > 1e-9 {
		t.Fatalf("ratio %v, want %v", d.ratio(), want)
	}
	joined := strings.Join(unmatched, "; ")
	if !strings.Contains(joined, "new only: fluxgo/internal/kvs BenchmarkCommit") ||
		!strings.Contains(joined, "old only: fluxgo/internal/wire BenchmarkUnmarshal") {
		t.Fatalf("unmatched = %q, want both the new-only and old-only benchmarks listed", joined)
	}
}

func TestRegressionsThreshold(t *testing.T) {
	deltas := []delta{
		{Metric: "fast", Old: 100, New: 80},     // improved
		{Metric: "noise", Old: 100, New: 114.9}, // within +15%
		{Metric: "edge", Old: 100, New: 115},    // exactly at threshold: passes
		{Metric: "slow", Old: 100, New: 130},    // regressed
		{Metric: "worse", Old: 100, New: 200},   // regressed harder
		{Metric: "zero", Old: 0, New: 50},       // no old value: never gates
	}
	bad := regressions(deltas, 0.15)
	if len(bad) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(bad), bad)
	}
	if bad[0].Metric != "worse" || bad[1].Metric != "slow" {
		t.Fatalf("regressions not sorted worst-first: %v", bad)
	}
}

const kapOld = `{
  "after": {"records": [
    {"ranks": 4, "procs_per_rank": 4, "value_size": 8, "access_count": 1,
     "dir_fanout": 128, "redundant": false, "arity": 2,
     "put":   {"p50_ms": 0.03, "p99_ms": 1.0},
     "fence": {"p50_ms": 2.0,  "p99_ms": 2.1},
     "get":   {"p50_ms": 0.13, "p99_ms": 1.0}}
  ]}
}`

const kapNew = `{
  "records": [
    {"ranks": 4, "procs_per_rank": 4, "value_size": 8, "access_count": 1,
     "dir_fanout": 128, "redundant": false, "arity": 2,
     "put":   {"p50_ms": 0.03, "p99_ms": 1.3},
     "fence": {"p50_ms": 2.0,  "p99_ms": 2.1},
     "get":   {"p50_ms": 0.13, "p99_ms": 1.0}},
    {"ranks": 8, "procs_per_rank": 4, "value_size": 8, "access_count": 1,
     "dir_fanout": 128, "redundant": false, "arity": 2,
     "put":   {"p50_ms": 0.05, "p99_ms": 1.0},
     "fence": {"p50_ms": 3.0,  "p99_ms": 3.1},
     "get":   {"p50_ms": 0.2,  "p99_ms": 1.5}}
  ]
}`

func TestDiffKapGatesQuantiles(t *testing.T) {
	oldS, err := parseSide([]byte(kapOld))
	if err != nil {
		t.Fatal(err)
	}
	newS, err := parseSide([]byte(kapNew))
	if err != nil {
		t.Fatal(err)
	}
	deltas, unmatched, err := diff(oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	// One matched record, three phases x two quantiles each.
	if len(deltas) != 6 {
		t.Fatalf("got %d deltas, want 6", len(deltas))
	}
	if len(unmatched) != 1 || !strings.Contains(unmatched[0], "new only: ranks=8") {
		t.Fatalf("unmatched = %v, want the new ranks=8 record listed", unmatched)
	}
	bad := regressions(deltas, 0.15)
	if len(bad) != 1 || !strings.HasSuffix(bad[0].Metric, "put.p99_ms") {
		t.Fatalf("regressions = %v, want exactly the put.p99_ms +30%%", bad)
	}
}

func TestDiffKapPairsDuplicateKeysInOrder(t *testing.T) {
	// The access sweep can fold two points onto one configuration (access
	// caps at the consumer count); a self-diff must still be a no-op.
	rec := func(p50 float64) kapRecord {
		return kapRecord{Ranks: 4, Procs: 4, ValueSize: 8, Access: 16,
			DirFanout: 128, Arity: 2, Fence: kapPhase{P50: p50, P99: p50}}
	}
	oldR := []kapRecord{rec(1.0), rec(0.5)}
	deltas, unmatched := diffKap(oldR, oldR)
	if len(unmatched) != 0 {
		t.Fatalf("self-diff unmatched = %v, want none", unmatched)
	}
	for _, d := range deltas {
		if d.ratio() != 0 {
			t.Fatalf("self-diff delta %v not zero: records paired out of order", d)
		}
	}
}

func TestDiffRejectsMixedFormats(t *testing.T) {
	coreS, err := parseSide([]byte(coreFresh))
	if err != nil {
		t.Fatal(err)
	}
	kapS, err := parseSide([]byte(kapNew))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := diff(coreS, kapS); err == nil {
		t.Fatal("core vs kap comparison must be rejected")
	}
}
