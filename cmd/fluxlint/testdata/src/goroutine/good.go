package goroutine

import "sync"

// tiedToShutdownChannel can always be terminated by closing stop.
func tiedToShutdownChannel(stop chan struct{}, f func()) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				f()
			}
		}
	}()
}

// tiedToWaitGroup is registered with a waiter.
func tiedToWaitGroup(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
}

// rendezvous sends its result on a channel someone is waiting on.
func rendezvous(f func() int) chan int {
	out := make(chan int, 1)
	go func() {
		out <- f()
	}()
	return out
}

// closer signals completion by closing a channel.
func closer(done chan struct{}, f func()) {
	go func() {
		defer close(done)
		f()
	}()
}

// drain ranges over a channel, so a close terminates it.
func drain(in chan int, f func(int)) {
	go func() {
		for v := range in {
			f(v)
		}
	}()
}

func namedLoop() {}

// named goroutines are the callee's contract, not checked here.
func spawnNamed() {
	go namedLoop()
}
