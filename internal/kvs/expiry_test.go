package kvs

import (
	"testing"
	"time"

	"fluxgo/internal/modules/hb"
	"fluxgo/internal/session"
)

// kvsStats fetches one rank's kvs module statistics: cached object
// count, refs faulted from upstream, and upstream load RPCs issued.
func kvsStats(t *testing.T, s *session.Session, rank int) (objects int, loads, batches uint64) {
	t.Helper()
	h := s.Handle(rank)
	defer h.Close()
	resp, err := h.RPC("kvs.stats", uint32(rank), nil)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Objects int    `json:"objects"`
		Loads   uint64 `json:"loads"`
		Batches uint64 `json:"load_batches"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		t.Fatal(err)
	}
	return body.Objects, body.Loads, body.Batches
}

// TestSlaveCacheExpiryOnHeartbeat: unused slave cache entries are
// expired after a period of disuse, synchronized to the heartbeat, and
// expired objects fault back in from the tree parent on the next read.
func TestSlaveCacheExpiryOnHeartbeat(t *testing.T) {
	s, err := session.New(session.Options{
		Size: 3,
		Modules: []session.ModuleFactory{
			Factory(ModuleConfig{CacheMaxAge: time.Millisecond}),
			hb.Factory(hb.Config{Interval: time.Hour}), // Pulse-driven
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	w := client(t, s, 0)
	w.Put("exp.k", "cached")
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Read at a leaf slave: faults the root dir + value into its cache.
	r := client(t, s, 2)
	var v string
	if err := r.Get("exp.k", &v); err != nil {
		t.Fatal(err)
	}
	objsBefore, loadsBefore, _ := kvsStats(t, s, 2)
	if objsBefore == 0 {
		t.Fatal("slave cache empty after read")
	}

	// Let real time pass beyond CacheMaxAge, then pulse the heartbeat;
	// the slave expires its unused entries.
	time.Sleep(5 * time.Millisecond)
	hp := s.Handle(0)
	defer hp.Close()
	if _, err := hb.Pulse(hp); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		objs, _, _ := kvsStats(t, s, 2)
		if objs == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("cache never expired: %d objects", objs)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Master keeps everything pinned.
	if objs, _, _ := kvsStats(t, s, 0); objs == 0 {
		t.Fatal("master store expired pinned objects")
	}

	// The next read faults the objects back in.
	if err := r.Get("exp.k", &v); err != nil || v != "cached" {
		t.Fatalf("re-read after expiry: %q %v", v, err)
	}
	_, loadsAfter, _ := kvsStats(t, s, 2)
	if loadsAfter <= loadsBefore {
		t.Fatal("re-read did not fault objects back in")
	}
}

// TestWholeObjectCaching verifies the read-path cost structure behind
// Fig. 4(a) with batched prefetch: reading one small value from a big
// directory faults in the directory object and all of its missing
// entries — the whole 50-value directory rides along in the same
// upstream round-trip — at a cost of one load RPC per tree level. A
// second read from the same directory is then served entirely from
// cache, costing no upstream traffic at all.
func TestWholeObjectCaching(t *testing.T) {
	s, err := session.New(session.Options{
		Size:    3,
		Modules: []session.ModuleFactory{Factory(ModuleConfig{})},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	w := client(t, s, 0)
	for i := 0; i < 50; i++ {
		w.Put("big.k"+itoa(i), i)
	}
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	r := client(t, s, 2)
	_, l0, b0 := kvsStats(t, s, 2)
	var v int
	if err := r.Get("big.k7", &v); err != nil {
		t.Fatal(err)
	}
	_, l1, b1 := kvsStats(t, s, 2)
	if l1-l0 != 52 { // root dir + "big" dir + all 50 values prefetched
		t.Fatalf("first read faulted %d objects, want 52", l1-l0)
	}
	if b1-b0 != 3 { // one batched RPC per level: root, "big" dir, "big"'s entries
		t.Fatalf("first read issued %d load RPCs, want 3", b1-b0)
	}
	if err := r.Get("big.k9", &v); err != nil {
		t.Fatal(err)
	}
	_, l2, b2 := kvsStats(t, s, 2)
	if l2 != l1 || b2 != b1 { // everything prefetched; no upstream traffic
		t.Fatalf("second read faulted %d objects in %d RPCs, want 0 in 0", l2-l1, b2-b1)
	}
}
