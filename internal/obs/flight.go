package obs

// Flight recorder types: the JSON shape of a post-mortem snapshot. One
// FlightRank captures everything a single broker knew when the dump was
// taken — its recent log records, its span ring, and its metrics
// registry — and a FlightDump stitches the per-rank snapshots of a
// whole session together with the reason the recorder fired.

// FlightRank is one broker's contribution to a flight dump.
type FlightRank struct {
	Rank    int      `json:"rank"`
	Epoch   uint32   `json:"epoch"`
	BootNS  int64    `json:"boot_ns,omitempty"`
	Records []Record `json:"records,omitempty"`
	Spans   []Span   `json:"spans,omitempty"`
	Metrics Snapshot `json:"metrics"`
}

// FlightDump is a full flight-recorder snapshot.
type FlightDump struct {
	Reason  string       `json:"reason"`
	WhenNS  int64        `json:"when_ns"`
	Session string       `json:"session,omitempty"`
	Ranks   []FlightRank `json:"ranks"`
	Errors  []string     `json:"errors,omitempty"` // ranks that could not be snapshotted
}
