package resource

import (
	"encoding/json"
	"fmt"
	"testing"
	"testing/quick"
)

func testCluster(t *testing.T) *Resource {
	t.Helper()
	c, err := BuildCluster(ClusterSpec{
		Name:           "zin",
		Racks:          2,
		NodesPerRack:   4,
		SocketsPerNode: 2,
		CoresPerSocket: 8,
		MemMBPerNode:   32 << 10,
		ClusterPowerW:  4000,
		RackPowerW:     2500,
		NodePowerW:     800,
		FilesystemBW:   10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildClusterShape(t *testing.T) {
	c := testCluster(t)
	if got := c.Count(TypeRack); got != 2 {
		t.Fatalf("racks = %d", got)
	}
	if got := c.Count(TypeNode); got != 8 {
		t.Fatalf("nodes = %d", got)
	}
	if got := c.Count(TypeCore); got != 8*16 {
		t.Fatalf("cores = %d", got)
	}
	if got := c.Count(TypeFilesystem); got != 1 {
		t.Fatalf("filesystems = %d", got)
	}
}

func TestBuildClusterValidation(t *testing.T) {
	if _, err := BuildCluster(ClusterSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestFindAndPath(t *testing.T) {
	c := testCluster(t)
	n := c.Find("rack1/node4")
	if n == nil || n.Type != TypeNode {
		t.Fatalf("Find returned %v", n)
	}
	if n.Path() != "zin/rack1/node4" {
		t.Fatalf("Path = %s", n.Path())
	}
	if c.Find("rack9") != nil {
		t.Fatal("bogus path found")
	}
	sock := c.Find("rack0/node0/socket1")
	if sock == nil || sock.Count(TypeCore) != 8 {
		t.Fatalf("socket lookup failed: %v", sock)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := testCluster(t)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Resource
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count(TypeNode) != 8 || back.Count(TypeCore) != 128 {
		t.Fatal("round trip lost structure")
	}
	// Parent pointers rewired.
	n := back.Find("rack0/node1")
	if n.Parent() == nil || n.Parent().Name != "rack0" {
		t.Fatal("parent pointers not restored")
	}
}

func TestAllocateBasic(t *testing.T) {
	p := NewPool(testCluster(t))
	a, err := p.Allocate("job1", Request{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != 3 {
		t.Fatalf("granted %d nodes", len(a.Nodes))
	}
	if p.FreeNodes() != 5 {
		t.Fatalf("free = %d", p.FreeNodes())
	}
	for _, n := range a.Nodes {
		if n.Owner() != "job1" {
			t.Fatalf("node %s owner %q", n.Name, n.Owner())
		}
	}
	if err := p.Release("job1"); err != nil {
		t.Fatal(err)
	}
	if p.FreeNodes() != 8 {
		t.Fatalf("after release, free = %d", p.FreeNodes())
	}
}

func TestAllocateDuplicateID(t *testing.T) {
	p := NewPool(testCluster(t))
	p.Allocate("dup", Request{Nodes: 1})
	if _, err := p.Allocate("dup", Request{Nodes: 1}); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestAllocateTooMany(t *testing.T) {
	p := NewPool(testCluster(t))
	if _, err := p.Allocate("big", Request{Nodes: 9}); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if p.FreeNodes() != 8 {
		t.Fatal("failed allocation leaked nodes")
	}
	if _, err := p.Allocate("zero", Request{Nodes: 0}); err == nil {
		t.Fatal("zero-node request accepted")
	}
}

func TestPowerCapHierarchy(t *testing.T) {
	// Node cap 800 W, rack cap 2500 W, cluster cap 4000 W. At 700 W per
	// node, a rack of 4 nodes can host only 3 (2100 <= 2500, 2800 > 2500),
	// and the cluster only 5 (3500 <= 4000, 4200 > 4000).
	p := NewPool(testCluster(t))
	var granted int
	for i := 0; ; i++ {
		_, err := p.Allocate(fmt.Sprintf("j%d", i), Request{Nodes: 1, PowerWPerNod: 700})
		if err != nil {
			break
		}
		granted++
	}
	if granted != 5 {
		t.Fatalf("granted %d single-node 700W allocations, want 5 (cluster cap)", granted)
	}
	// Per-rack usage must respect the rack cap.
	c := p.Root()
	for _, rack := range c.FindAll(TypeRack) {
		pw := rack.Find("power")
		if pw == nil {
			t.Fatal("rack power pool missing")
		}
		if pw.Used() > 2500 {
			t.Fatalf("rack %s power %f exceeds cap", rack.Name, pw.Used())
		}
	}
}

func TestPowerExceedsNodeCap(t *testing.T) {
	p := NewPool(testCluster(t))
	if _, err := p.Allocate("hot", Request{Nodes: 1, PowerWPerNod: 900}); err == nil {
		t.Fatal("allocation above node power cap accepted")
	}
}

func TestPowerReleasedOnFree(t *testing.T) {
	p := NewPool(testCluster(t))
	if _, err := p.Allocate("pj", Request{Nodes: 4, PowerWPerNod: 700}); err != nil {
		t.Fatal(err)
	}
	// 2800 W used; another 2-node 700 W job would hit the cluster cap at
	// 4200 W... 2800+1400 = 4200 > 4000.
	if _, err := p.Allocate("pj2", Request{Nodes: 2, PowerWPerNod: 700}); err == nil {
		t.Fatal("cluster power cap not enforced")
	}
	p.Release("pj")
	if _, err := p.Allocate("pj3", Request{Nodes: 2, PowerWPerNod: 700}); err != nil {
		t.Fatalf("power not released: %v", err)
	}
}

func TestFilesystemBandwidthShared(t *testing.T) {
	p := NewPool(testCluster(t))
	if _, err := p.Allocate("io1", Request{Nodes: 1, FilesystemBW: 6000}); err != nil {
		t.Fatal(err)
	}
	// The shared pool has 4000 MB/s left: co-scheduling prevents the
	// overlapping I/O burst the paper warns about.
	if _, err := p.Allocate("io2", Request{Nodes: 1, FilesystemBW: 6000}); err == nil {
		t.Fatal("file-system bandwidth overcommitted")
	}
	if _, err := p.Allocate("io3", Request{Nodes: 1, FilesystemBW: 4000}); err != nil {
		t.Fatal(err)
	}
	p.Release("io1")
	if _, err := p.Allocate("io4", Request{Nodes: 1, FilesystemBW: 6000}); err != nil {
		t.Fatalf("bandwidth not released: %v", err)
	}
}

func TestPropertyConstraints(t *testing.T) {
	c := testCluster(t)
	// Tag two nodes as GPU nodes.
	for _, name := range []string{"rack0/node0", "rack1/node5"} {
		n := c.Find(name)
		n.Properties = map[string]string{"gpu": "a100"}
	}
	p := NewPool(c)
	a, err := p.Allocate("gpujob", Request{Nodes: 2, Properties: map[string]string{"gpu": "a100"}})
	if err != nil {
		t.Fatal(err)
	}
	names := a.NodeNames()
	if names[0] != "node0" || names[1] != "node5" {
		t.Fatalf("granted %v", names)
	}
	if _, err := p.Allocate("gpujob2", Request{Nodes: 1, Properties: map[string]string{"gpu": "a100"}}); err == nil {
		t.Fatal("third GPU node appeared from nowhere")
	}
}

func TestGrowShrink(t *testing.T) {
	p := NewPool(testCluster(t))
	a, err := p.Allocate("elastic", Request{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	added, err := p.Grow("elastic", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 3 || len(a.Nodes) != 5 {
		t.Fatalf("grow: added %d, total %d", len(added), len(a.Nodes))
	}
	if p.FreeNodes() != 3 {
		t.Fatalf("free = %d", p.FreeNodes())
	}
	cut, err := p.Shrink("elastic", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != 4 || len(a.Nodes) != 1 {
		t.Fatalf("shrink: cut %d, left %d", len(cut), len(a.Nodes))
	}
	for _, n := range cut {
		if n.Owner() != "" {
			t.Fatal("shrunk node still owned")
		}
	}
	// Shrinking to zero is rejected.
	if _, err := p.Shrink("elastic", 1); err == nil {
		t.Fatal("shrink to empty accepted")
	}
	if _, err := p.Grow("nosuch", 1); err == nil {
		t.Fatal("grow of unknown allocation accepted")
	}
}

func TestMemoryConstraint(t *testing.T) {
	p := NewPool(testCluster(t))
	if _, err := p.Allocate("memhog", Request{Nodes: 1, MemMBPerNode: 64 << 10}); err == nil {
		t.Fatal("memory overcommit accepted")
	}
	if _, err := p.Allocate("memok", Request{Nodes: 8, MemMBPerNode: 16 << 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocate/release always returns the pool to a clean state,
// with all pool capacities fully restored.
func TestAllocReleaseInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		p := NewPool(mustCluster())
		// Pseudo-random small allocation storm.
		r := seed
		next := func(n int64) int64 {
			r = (r*6364136223846793005 + 1442695040888963407)
			v := r % n
			if v < 0 {
				v = -v
			}
			return v
		}
		var ids []string
		for i := 0; i < 20; i++ {
			id := fmt.Sprintf("q%d", i)
			req := Request{Nodes: int(next(3)) + 1, PowerWPerNod: float64(next(700))}
			if _, err := p.Allocate(id, req); err == nil {
				ids = append(ids, id)
			}
		}
		for _, id := range ids {
			if err := p.Release(id); err != nil {
				return false
			}
		}
		if p.FreeNodes() != p.TotalNodes() {
			return false
		}
		clean := true
		p.Root().Walk(func(v *Resource) bool {
			if v.Used() != 0 || v.Owner() != "" {
				clean = false
			}
			return true
		})
		return clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mustCluster() *Resource {
	c, err := BuildCluster(ClusterSpec{
		Name: "q", Racks: 2, NodesPerRack: 4, SocketsPerNode: 2, CoresPerSocket: 8,
		ClusterPowerW: 4000, RackPowerW: 2500, NodePowerW: 800,
	})
	if err != nil {
		panic(err)
	}
	return c
}

func TestCoresPerNodeConstraint(t *testing.T) {
	p := NewPool(testCluster(t))
	if _, err := p.Allocate("fat", Request{Nodes: 1, CoresPerNode: 17}); err == nil {
		t.Fatal("node with 16 cores matched a 17-core request")
	}
	if _, err := p.Allocate("fit", Request{Nodes: 1, CoresPerNode: 16}); err != nil {
		t.Fatal(err)
	}
}
