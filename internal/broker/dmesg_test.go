package broker

import (
	"strings"
	"testing"
	"time"

	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// waitCounter polls a registry counter until it reaches want (the drop
// paths run on the broker loop after submit returns).
func waitCounter(t *testing.T, b *Broker, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := b.Metrics().Snapshot().Counters[name]; got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", name,
				b.Metrics().Snapshot().Counters[name], want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDropCounters drives the formerly logf-only silent-drop paths and
// asserts each increments its dedicated counter AND lands a record in
// the log ring: an unknown message type, a response with an empty route
// stack, a response to a vanished link, and an unknown control topic.
func TestDropCounters(t *testing.T) {
	b := newBroker(t)

	b.submit(inbound{msg: &wire.Message{Type: wire.Type(99), Topic: "x"}})
	waitCounter(t, b, wire.MetricDropsUnknownType, 1)

	b.submit(inbound{msg: &wire.Message{Type: wire.Response, Topic: "cmb.ping", Seq: 7}})
	waitCounter(t, b, wire.MetricDropsEmptyRoute, 1)

	b.submit(inbound{msg: &wire.Message{Type: wire.Response, Topic: "cmb.ping", Seq: 7,
		Route: []string{"link-that-never-existed"}}})
	waitCounter(t, b, wire.MetricDropsUnknownLink, 1)

	b.submit(inbound{msg: &wire.Message{Type: wire.Control, Topic: "cmb.bogus_control"}})
	waitCounter(t, b, wire.MetricDropsUnknownControl, 1)

	// Every drop also logged a warn record carrying the cmb subsystem.
	recs := b.Logger().Ring().Snapshot(obs.LogFilter{MaxLevel: obs.LevelWarn})
	var dropLogs int
	for _, r := range recs {
		if r.Sub == wire.ServiceCMB && strings.Contains(r.Msg, "drop") {
			dropLogs++
		}
	}
	if dropLogs < 3 {
		t.Fatalf("want >= 3 warn drop records, got %d: %+v", dropLogs, recs)
	}
}

// TestLoggerEpochStamp asserts records carry the broker's current
// membership epoch.
func TestLoggerEpochStamp(t *testing.T) {
	b := newBroker(t)
	b.Logger().Warnf("test", "stamped")
	recs := b.Logger().Ring().Snapshot(obs.LogFilter{})
	if len(recs) == 0 || recs[len(recs)-1].Epoch != b.Epoch() {
		t.Fatalf("records = %+v, want epoch %d", recs, b.Epoch())
	}
}

// TestLocalDmesgFiltering covers the rank-local serve path without a
// session: append records, query through the cmb service.
func TestLocalDmesgFiltering(t *testing.T) {
	b := newBroker(t)
	h := b.NewHandle()
	defer h.Close()
	b.Logger().Debugf("test", "noise")
	b.Logger().Errorf("test", "signal")
	resp, err := h.RPC(wire.TopicDmesg, wire.NodeidAny, map[string]any{"level": obs.LevelErr})
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Records []obs.Record `json:"records"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		t.Fatal(err)
	}
	for _, r := range body.Records {
		if r.Level > obs.LevelErr {
			t.Fatalf("filter leaked %+v", r)
		}
	}
	found := false
	for _, r := range body.Records {
		if r.Msg == "signal" {
			found = true
		}
	}
	if !found {
		t.Fatalf("err record missing: %+v", body.Records)
	}
}

// TestFlightSnapshotBounds covers the per-broker dump primitive.
func TestFlightSnapshotBounds(t *testing.T) {
	b := newBroker(t)
	for i := 0; i < 20; i++ {
		b.Logger().Infof("test", "r%d", i)
	}
	fs := b.FlightSnapshot(5)
	if len(fs.Records) != 5 {
		t.Fatalf("bounded snapshot has %d records, want 5", len(fs.Records))
	}
	if fs.Records[len(fs.Records)-1].Msg != "r19" {
		t.Fatalf("snapshot should keep the newest records: %+v", fs.Records)
	}
	if fs.Rank != 0 || fs.BootNS == 0 || fs.Metrics.Counters == nil {
		t.Fatalf("snapshot metadata incomplete: %+v", fs)
	}
}
