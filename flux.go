// Package fluxgo is a Go reproduction of Flux, the next-generation
// resource and job management framework for large HPC centers (Ahn,
// Garlick, Grondona, Lipari, Springmeyer, Schulz — ICPP 2014).
//
// The package is a facade over the full implementation:
//
//   - comms sessions: per-rank Comms Message Brokers (CMB) wired into an
//     event plane, a request/response tree, and a rank-addressed ring
//     (internal/broker, internal/session);
//   - the distributed KVS: SHA-1 content-addressed hash trees with a
//     master at the tree root and caching slaves (internal/kvs);
//   - the Table I comms modules: hb, live, log, mon, group, barrier,
//     kvs, wexec, resrc (internal/modules/...);
//   - the unified job model: recursive Flux instances with the parent
//     bounding / child empowerment / parental consent rules
//     (internal/core), over the generalized resource model
//     (internal/resource) and hierarchical schedulers (internal/sched);
//   - PMI-style bootstrap for MPI-like run-times (internal/pmi);
//   - the KAP evaluation harness reproducing the paper's Figures 2-4
//     (internal/kap, internal/model).
//
// Quick start:
//
//	sess, _ := fluxgo.NewSession(fluxgo.SessionOptions{Size: 8})
//	defer sess.Close()
//	h := sess.Handle(3)
//	defer h.Close()
//	kv := fluxgo.NewKVS(h)
//	kv.Put("hello.world", 42)
//	kv.Commit()
package fluxgo

import (
	"context"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/clock"
	"fluxgo/internal/core"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/barrier"
	"fluxgo/internal/modules/group"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/modules/jobsvc"
	"fluxgo/internal/modules/live"
	"fluxgo/internal/modules/logmod"
	"fluxgo/internal/modules/resrc"
	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/pmi"
	"fluxgo/internal/resource"
	"fluxgo/internal/sched"
	"fluxgo/internal/session"
)

// Core re-exported types. See the respective internal packages for full
// documentation.
type (
	// Session is a comms session: one CMB broker per rank, wired into the
	// three overlay planes of the paper's Fig. 1.
	Session = session.Session
	// Handle is a program's connection to its local broker (RPCs, events,
	// responses) — the flux_t handle.
	Handle = broker.Handle
	// KVS is the distributed key-value store client, with the paper's
	// call set: Put, Commit, Fence, Get, Watch, GetVersion, WaitVersion.
	KVS = kvs.Client
	// Instance is a Flux job under the unified job model: an independent
	// RJMS instance that runs programs and spawns recursive sub-instances.
	Instance = core.Instance
	// InstanceOptions parameterizes instances (policy, programs, bounds).
	InstanceOptions = core.Options
	// Resource is a vertex of the generalized resource model graph.
	Resource = resource.Resource
	// Request is a multi-dimensional resource request.
	Request = resource.Request
	// ClusterSpec describes a cluster resource graph to build.
	ClusterSpec = resource.ClusterSpec
	// PMI is the process-management interface for MPI-style bootstrap.
	PMI = pmi.PMI
	// JobResult summarizes a completed bulk job.
	JobResult = wexec.JobResult
	// Programs is the simulated-program registry for wexec.
	Programs = wexec.Registry
	// JobSpec describes a job for the batch job service.
	JobSpec = jobsvc.Spec
	// JobInfo is a batch job's record.
	JobInfo = jobsvc.Info
)

// Scheduling policies.
type (
	// FCFS is strict first-come-first-served scheduling.
	FCFS = sched.FCFS
	// EASY is FCFS with EASY backfilling.
	EASY = sched.EASY
	// Conservative is FCFS with conservative backfilling: no queued
	// job's reservation may slip.
	Conservative = sched.Conservative
)

// SessionOptions configures NewSession.
type SessionOptions struct {
	// Size is the number of ranks (simulated nodes). Required.
	Size int
	// Arity is the tree fan-out (default 2, the paper's binary tree).
	Arity int
	// HBInterval is the heartbeat period (default 2s).
	HBInterval time.Duration
	// Programs extends the wexec simulated-program registry.
	Programs Programs
	// Clock overrides the time source (deterministic tests).
	Clock clock.Clock
	// Codec makes every inter-broker hop pay a serialization cost
	// proportional to message size (used by benchmarks).
	Codec bool
}

// NewSession starts an in-process comms session with the standard
// comms-module set loaded: kvs, hb, live, log, group, barrier, and
// wexec at every rank, plus the resource and batch-job services
// (resrc, job) rooted at rank 0.
func NewSession(opts SessionOptions) (*Session, error) {
	return session.New(session.Options{
		Size:  opts.Size,
		Arity: opts.Arity,
		Clock: opts.Clock,
		Codec: opts.Codec,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			hb.Factory(hb.Config{Interval: opts.HBInterval}),
			live.Factory(live.Config{}),
			logmod.Factory(logmod.Config{}),
			group.Factory,
			barrier.Factory,
			wexec.Factory(wexec.Config{Programs: opts.Programs}),
			resrc.Factory(resrc.Config{}),
			jobsvc.Factory(jobsvc.Config{Backfill: true}),
		},
	})
}

// SubmitJob enqueues a job with the session's batch job service and
// returns its id.
func SubmitJob(h *Handle, spec JobSpec) (string, error) {
	return jobsvc.Submit(h, spec)
}

// WaitJob blocks until a batch job reaches a terminal state and returns
// its final record.
func WaitJob(ctx context.Context, h *Handle, id string) (*JobInfo, error) {
	return jobsvc.Wait(ctx, h, id)
}

// ListJobs returns the batch queue's active jobs.
func ListJobs(h *Handle) ([]*JobInfo, error) {
	return jobsvc.List(h)
}

// CancelJob cancels a queued job or signals a running one.
func CancelJob(h *Handle, id string) error {
	return jobsvc.Cancel(h, id)
}

// NewKVS returns a KVS client over a handle.
func NewKVS(h *Handle) *KVS { return kvs.NewClient(h) }

// Barrier blocks until nprocs processes have entered the barrier with
// the same name.
func Barrier(h *Handle, name string, nprocs int) error {
	return barrier.Enter(h, name, nprocs)
}

// NewPMI creates a PMI context for one process of an nprocs-wide job.
func NewPMI(h *Handle, jobid string, rank, size int) (*PMI, error) {
	return pmi.New(h, jobid, rank, size)
}

// BuildCluster constructs a regular cluster resource graph.
func BuildCluster(spec ClusterSpec) (*Resource, error) {
	return resource.BuildCluster(spec)
}

// NewRootInstance creates the root Flux instance of a job hierarchy over
// a cluster resource graph.
func NewRootInstance(cluster *Resource, opts InstanceOptions) (*Instance, error) {
	return core.NewRoot(cluster, opts)
}

// Log appends a log entry via the local log comms module; entries are
// reduced and filtered toward the session root.
func Log(h *Handle, facility string, level int, format string, args ...any) error {
	return logmod.Log(h, facility, level, format, args...)
}

// Run launches a simulated program in bulk on the given ranks (nil for
// all ranks) via the wexec comms module.
func Run(h *Handle, jobid, program string, args []string, ranks []int) (int, error) {
	return wexec.Run(h, jobid, program, args, ranks)
}

// Log severity levels (syslog-style; lower is more severe).
const (
	LogErr    = logmod.LevelErr
	LogInfo   = logmod.LevelInfo
	LogDebug  = logmod.LevelDebug
	LogNotice = logmod.LevelNotice
)
