package cas

// Write-ahead log framing and recovery.
//
// The WAL is an append-only sequence of self-checking records:
//
//	+------+-------------+---------------------+-----------+
//	| kind | length (4B) | payload (length B)  | crc32 (4B)|
//	+------+-------------+---------------------+-----------+
//
// kind is a single discriminator byte, length is big-endian, and the
// CRC-32 (IEEE) covers kind+length+payload. Recovery scans from the
// front and stops at the first record that is incomplete or fails its
// CRC: everything before that point is the consistent prefix, and the
// file is truncated back to it so a torn tail can never be re-read as
// data. This is the classic "prefix consistency" contract — a crash
// mid-append loses at most the record being written, never an earlier
// one, and a record is only considered durable once a Sync after its
// Append has returned nil.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"fluxgo/internal/debuglock"
)

// Record kinds used by the durable store. The WAL framing itself is
// kind-agnostic; these live here so pack files and the log share one
// vocabulary.
const (
	recObject byte = 'O' // payload: canonical object bytes (Object.Encode)
	recRoot   byte = 'R' // payload: JSON rootMeta (root ref + version)
	recEnd    byte = 'E' // pack trailer: payload is uvarint record count
)

// walOverhead is the framing cost per record: kind + length + CRC.
const walOverhead = 1 + 4 + 4

// maxRecordLen guards recovery against reading an absurd length field
// from a corrupt header and trying to allocate it.
const maxRecordLen = 1 << 28 // 256 MiB

// Record is one decoded WAL or pack entry.
type Record struct {
	Kind    byte
	Payload []byte
}

// AppendRecord appends the framed record to buf and returns the
// extended slice. The payload is copied into the frame.
func AppendRecord(buf []byte, kind byte, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.ChecksumIEEE(buf[start:])
	return binary.BigEndian.AppendUint32(buf, sum)
}

// ScanRecords parses data from the front, returning the records of the
// longest consistent prefix and that prefix's byte length. A trailing
// record that is short, oversized, or CRC-corrupt ends the scan; it and
// everything after it are excluded. Payloads alias data.
func ScanRecords(data []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for {
		rec, n, ok := scanOne(data[off:])
		if !ok {
			return recs, off
		}
		recs = append(recs, rec)
		off += n
	}
}

// scanOne parses a single record at the head of data.
func scanOne(data []byte) (Record, int, bool) {
	if len(data) < walOverhead {
		return Record{}, 0, false
	}
	plen := binary.BigEndian.Uint32(data[1:5])
	if plen > maxRecordLen {
		return Record{}, 0, false
	}
	total := walOverhead + int(plen)
	if len(data) < total {
		return Record{}, 0, false
	}
	want := binary.BigEndian.Uint32(data[total-4 : total])
	if crc32.ChecksumIEEE(data[:total-4]) != want {
		return Record{}, 0, false
	}
	return Record{Kind: data[0], Payload: data[5 : total-4]}, total, true
}

// ErrCrashed is returned by FaultyFS-backed files after a simulated
// power loss, until Revive is called.
var ErrCrashed = errors.New("cas: simulated storage crash")

// WAL is an append-only record log over one file. Appends go straight
// to the file handle (the OS page cache); Sync is the durability
// barrier. Safe for concurrent use.
type WAL struct {
	fs   FS
	path string

	mu      debuglock.Mutex
	f       File
	size    int64 // bytes appended (consistent prefix + this session)
	records uint64
	syncs   uint64
	scratch []byte

	// failed poisons the log after a write or sync error. A torn
	// append leaves garbage mid-file, so any record appended after it
	// would sit beyond recovery's consistent prefix — durable in name
	// only. A failed fsync is treated the same way (the kernel may
	// have dropped the dirty pages; see the fsyncgate saga). The log
	// refuses further appends until Reset rewrites it from scratch.
	failed error
}

// OpenWAL recovers the log at path — truncating any torn or corrupt
// tail back to the consistent prefix — and returns it opened for
// append, along with the recovered records (payloads are copies and
// remain valid). A missing file is an empty log.
func OpenWAL(fsys FS, path string) (*WAL, []Record, error) {
	data, readErr := readStable(fsys, path)
	var recs []Record
	prefix := 0
	if readErr == nil {
		recs, prefix = ScanRecords(data)
		if prefix < len(data) {
			// Torn tail: cut the file back so the garbage can never
			// be mistaken for data by a later, luckier scan.
			if err := fsys.Truncate(path, int64(prefix)); err != nil {
				return nil, nil, fmt.Errorf("cas: wal truncate torn tail: %w", err)
			}
		}
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("cas: wal open: %w", err)
	}
	w := &WAL{fs: fsys, path: path, f: f, size: int64(prefix), records: uint64(len(recs))}
	w.mu.SetClass("cas.WAL.mu")
	return w, recs, nil
}

// readStable reads path repeatedly until two consecutive reads agree
// byte-for-byte, defending recovery against transient read faults
// (short reads, bit flips) that would otherwise masquerade as a torn
// tail and cause good records to be truncated away. Returns the last
// read if stability is never reached — the CRC scan still bounds the
// damage to a conservative prefix.
func readStable(fsys FS, path string) ([]byte, error) {
	var prev []byte
	havePrev := false
	for attempt := 0; attempt < 4; attempt++ {
		data, err := fsys.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if havePrev && string(prev) == string(data) {
			return data, nil
		}
		prev, havePrev = data, true
	}
	return prev, nil
}

// Append frames and writes one record, returning the byte offset the
// record starts at. The record is not durable until a subsequent Sync
// returns nil.
func (w *WAL) Append(kind byte, payload []byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, errors.New("cas: wal closed")
	}
	if w.failed != nil {
		return 0, fmt.Errorf("cas: wal poisoned: %w", w.failed)
	}
	start := w.size
	w.scratch = AppendRecord(w.scratch[:0], kind, payload)
	n, err := w.f.Write(w.scratch)
	w.size += int64(n)
	if err != nil {
		w.failed = err
		return 0, fmt.Errorf("cas: wal append: %w", err)
	}
	w.records++
	return start, nil
}

// Sync makes all previously appended records durable.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("cas: wal closed")
	}
	if w.failed != nil {
		return fmt.Errorf("cas: wal poisoned: %w", w.failed)
	}
	if err := w.f.Sync(); err != nil {
		w.failed = err
		return fmt.Errorf("cas: wal sync: %w", err)
	}
	w.syncs++
	return nil
}

// Poisoned returns the write/sync error that poisoned the log, if any.
func (w *WAL) Poisoned() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Reset truncates the log to empty — called after a checkpoint has made
// its contents redundant. The handle is reopened on the truncated file.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("cas: wal closed")
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("cas: wal reset close: %w", err)
	}
	w.f = nil
	if err := w.fs.Truncate(w.path, 0); err != nil {
		return fmt.Errorf("cas: wal reset truncate: %w", err)
	}
	f, err := w.fs.OpenAppend(w.path)
	if err != nil {
		return fmt.Errorf("cas: wal reset reopen: %w", err)
	}
	w.f = f
	w.size = 0
	w.records = 0
	w.failed = nil
	return nil
}

// Close syncs and closes the log. Further operations fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return fmt.Errorf("cas: wal close sync: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("cas: wal close: %w", closeErr)
	}
	return nil
}

// Size returns the bytes currently in the log.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Counters returns cumulative appended records and syncs this session.
func (w *WAL) Counters() (records, syncs uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.syncs
}
