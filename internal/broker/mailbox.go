package broker

import "sync"

// Mailbox is an unbounded FIFO connecting producers to a single consumer
// channel. Push never blocks, which is what lets broker loops, module
// goroutines, and handles exchange messages in arbitrary topologies
// without deadlock: no component ever blocks sending to another.
type Mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
	out    chan T
}

// NewMailbox returns a running mailbox. Its pump goroutine exits after
// Close (or CloseNow) once all deliverable items have been drained.
func NewMailbox[T any]() *Mailbox[T] {
	m := &Mailbox[T]{out: make(chan T)}
	m.cond = sync.NewCond(&m.mu)
	go m.pump()
	return m
}

// Push enqueues v. It reports false if the mailbox is closed.
func (m *Mailbox[T]) Push(v T) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.items = append(m.items, v)
	m.cond.Signal()
	return true
}

// Out returns the consumer channel. It is closed after Close once all
// pending items have been delivered.
func (m *Mailbox[T]) Out() <-chan T { return m.out }

// Close stops accepting new items; already-queued items still drain.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// CloseNow stops accepting new items and discards anything queued.
func (m *Mailbox[T]) CloseNow() {
	m.mu.Lock()
	m.closed = true
	m.items = nil
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Len returns the number of queued (undelivered) items.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

func (m *Mailbox[T]) pump() {
	for {
		m.mu.Lock()
		for len(m.items) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.items) == 0 { // closed and drained
			m.mu.Unlock()
			close(m.out)
			return
		}
		v := m.items[0]
		var zero T
		m.items[0] = zero
		m.items = m.items[1:]
		m.mu.Unlock()
		m.out <- v
	}
}
