package broker

import (
	"sync"
	"sync/atomic"
)

// Mailbox is an unbounded FIFO connecting producers to a single consumer
// channel. Push never blocks, which is what lets broker loops, module
// goroutines, and handles exchange messages in arbitrary topologies
// without deadlock: no component ever blocks sending to another.
type Mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
	out    chan T
}

// NewMailbox returns a running mailbox. Its pump goroutine exits after
// Close (or CloseNow) once all deliverable items have been drained.
func NewMailbox[T any]() *Mailbox[T] {
	m := &Mailbox[T]{out: make(chan T)}
	m.cond = sync.NewCond(&m.mu)
	go m.pump()
	return m
}

// Push enqueues v. It reports false if the mailbox is closed.
func (m *Mailbox[T]) Push(v T) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.items = append(m.items, v)
	m.cond.Signal()
	return true
}

// Out returns the consumer channel. It is closed after Close once all
// pending items have been delivered.
func (m *Mailbox[T]) Out() <-chan T { return m.out }

// Close stops accepting new items; already-queued items still drain.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// CloseNow stops accepting new items and discards anything queued.
func (m *Mailbox[T]) CloseNow() {
	m.mu.Lock()
	m.closed = true
	m.items = nil
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Len returns the number of queued (undelivered) items.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

func (m *Mailbox[T]) pump() {
	for {
		m.mu.Lock()
		for len(m.items) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.items) == 0 { // closed and drained
			m.mu.Unlock()
			close(m.out)
			return
		}
		v := m.items[0]
		var zero T
		m.items[0] = zero
		m.items = m.items[1:]
		m.mu.Unlock()
		m.out <- v
	}
}

// ShardedMailbox is a Mailbox whose producer side is split across
// independent lanes: each broker dispatch shard pushes into its own
// lane, so a burst from one flow never contends with the others on a
// single mutex. One pump goroutine round-robins the lanes into the
// consumer channel, preserving per-lane FIFO (which, with flow-keyed
// lane assignment, is exactly per-flow FIFO).
type ShardedMailbox[T any] struct {
	lanes []smLane[T]
	// wakeMu guards the pump's sleep transition; producers only take it
	// when the sleeping flag says the pump may be parked, so the steady
	// state costs one atomic load per push.
	wakeMu   sync.Mutex
	cond     *sync.Cond
	sleeping atomic.Bool
	closed   atomic.Bool
	out      chan T
}

type smLane[T any] struct {
	mu    sync.Mutex
	items []T
	_     [40]byte // keep neighbouring lanes off one cache line
}

// NewShardedMailbox returns a running mailbox with the given number of
// producer lanes (minimum 1).
func NewShardedMailbox[T any](lanes int) *ShardedMailbox[T] {
	if lanes < 1 {
		lanes = 1
	}
	m := &ShardedMailbox[T]{lanes: make([]smLane[T], lanes), out: make(chan T)}
	m.cond = sync.NewCond(&m.wakeMu)
	go m.pump()
	return m
}

// PushLane enqueues v on the given lane (modulo the lane count). It
// reports false if the mailbox is closed.
func (m *ShardedMailbox[T]) PushLane(lane int, v T) bool {
	if m.closed.Load() {
		return false
	}
	ln := &m.lanes[lane%len(m.lanes)]
	ln.mu.Lock()
	ln.items = append(ln.items, v)
	ln.mu.Unlock()
	// The pump sets sleeping *before* its final re-scan, so either it
	// sees our item or we see the flag and wake it. A spurious Signal
	// (pump woke meanwhile) is harmless.
	if m.sleeping.Load() {
		m.wakeMu.Lock()
		m.cond.Signal()
		m.wakeMu.Unlock()
	}
	return true
}

// Push enqueues v on lane 0, for producers with no flow identity.
func (m *ShardedMailbox[T]) Push(v T) bool { return m.PushLane(0, v) }

// Out returns the consumer channel. It is closed after Close once all
// pending items have been delivered.
func (m *ShardedMailbox[T]) Out() <-chan T { return m.out }

// Close stops accepting new items; already-queued items still drain.
func (m *ShardedMailbox[T]) Close() {
	m.closed.Store(true)
	m.wakeMu.Lock()
	m.cond.Broadcast()
	m.wakeMu.Unlock()
}

// CloseNow stops accepting new items and discards anything queued.
func (m *ShardedMailbox[T]) CloseNow() {
	m.closed.Store(true)
	for i := range m.lanes {
		ln := &m.lanes[i]
		ln.mu.Lock()
		ln.items = nil
		ln.mu.Unlock()
	}
	m.wakeMu.Lock()
	m.cond.Broadcast()
	m.wakeMu.Unlock()
}

// Len returns the number of queued (undelivered) items across all lanes.
func (m *ShardedMailbox[T]) Len() int {
	n := 0
	for i := range m.lanes {
		ln := &m.lanes[i]
		ln.mu.Lock()
		n += len(ln.items)
		ln.mu.Unlock()
	}
	return n
}

// take pops the next item, scanning lanes round-robin from *next. It
// reports false when every lane is empty.
func (m *ShardedMailbox[T]) take(next *int) (T, bool) {
	var zero T
	n := len(m.lanes)
	for i := 0; i < n; i++ {
		ln := &m.lanes[(*next+i)%n]
		ln.mu.Lock()
		if len(ln.items) > 0 {
			v := ln.items[0]
			ln.items[0] = zero
			ln.items = ln.items[1:]
			if len(ln.items) == 0 {
				ln.items = nil // let the backing array go
			}
			ln.mu.Unlock()
			*next = (*next + i + 1) % n
			return v, true
		}
		ln.mu.Unlock()
	}
	return zero, false
}

func (m *ShardedMailbox[T]) pump() {
	next := 0
	for {
		if v, ok := m.take(&next); ok {
			m.out <- v
			continue
		}
		m.wakeMu.Lock()
		m.sleeping.Store(true)
		// Re-scan with the flag up: a producer that appended before
		// loading the flag is found here; one that appended after will
		// see the flag and Signal.
		if v, ok := m.take(&next); ok {
			m.sleeping.Store(false)
			m.wakeMu.Unlock()
			m.out <- v
			continue
		}
		if m.closed.Load() {
			m.sleeping.Store(false)
			m.wakeMu.Unlock()
			close(m.out)
			return
		}
		m.cond.Wait()
		m.sleeping.Store(false)
		m.wakeMu.Unlock()
	}
}
