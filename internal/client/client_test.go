package client

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fluxgo/internal/kvs"
	"fluxgo/internal/session"
	"fluxgo/internal/wire"
)

// startTCPSession brings up a real size-3 TCP comms session on loopback
// and returns the rank addresses.
func startTCPSession(t *testing.T, key []byte) []string {
	t.Helper()
	mods := []session.ModuleFactory{kvs.Factory(kvs.ModuleConfig{})}

	// Start every rank on an ephemeral port; ranks need their parent's
	// address, so start rank 0 first and propagate addresses downward.
	// The ring makes bring-up cyclic (rank 0 dials rank 1 which dials
	// rank 2 which dials rank 0), so all ranks start concurrently on
	// pre-agreed ports and rely on the dial retry loop.
	addrs := make([]string, 3)
	var brokers []*session.TCPBroker
	base := 39200 + (time.Now().Nanosecond()/1000)%20000
	for r := 0; r < 3; r++ {
		addrs[r] = fmt.Sprintf("127.0.0.1:%d", base+r)
	}
	type res struct {
		b   *session.TCPBroker
		err error
	}
	ch := make(chan res, 3)
	for r := 0; r < 3; r++ {
		go func(r int) {
			parent, ringNext, err := session.TreeAddrs(r, 3, 2, func(x int) string { return addrs[x] })
			if err != nil {
				ch <- res{nil, err}
				return
			}
			b, err := session.StartTCPBroker(session.TCPConfig{
				Rank: r, Size: 3, Listen: addrs[r], ParentAddr: parent,
				RingNextAddr: ringNext, Key: key, Modules: mods,
				DialTimeout: 20 * time.Second,
			})
			ch <- res{b, err}
		}(r)
	}
	for i := 0; i < 3; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		brokers = append(brokers, r.b)
	}
	t.Cleanup(func() {
		for _, b := range brokers {
			b.Close()
		}
	})
	return addrs
}

func TestTCPSessionEndToEnd(t *testing.T) {
	key := []byte("tcp-test-key")
	addrs := startTCPSession(t, key)

	// Client connects to a leaf broker.
	c, err := Dial(addrs[2], key)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Tree-routed ping.
	resp, err := c.RPC("cmb.ping", wire.NodeidAny, map[string]string{"pad": "x"})
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Rank int `json:"rank"`
	}
	resp.UnpackJSON(&body)
	if body.Rank != 2 {
		t.Fatalf("local ping served by rank %d", body.Rank)
	}

	// Rank-addressed ping over the ring, through real TCP hops.
	resp, err = c.RPC("cmb.ping", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.UnpackJSON(&body)
	if body.Rank != 1 {
		t.Fatalf("ring ping served by rank %d", body.Rank)
	}

	// KVS through the client link: put at the leaf, commit at the master.
	if _, err := c.RPC("kvs.getversion", wire.NodeidAny, nil); err != nil {
		t.Fatal(err)
	}

	// Event subscription: publish from another client, receive here.
	sub, err := c.Subscribe("tcptest")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	c2, err := Dial(addrs[1], key)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	pub, err := wire.NewRequest("cmb.pub", wire.NodeidAny, map[string]any{
		"topic": "tcptest.hello", "payload": map[string]int{"x": 1},
	})
	_ = pub
	// Use the RPC path for publication.
	type pubBody struct {
		Topic   string         `json:"topic"`
		Payload map[string]int `json:"payload"`
	}
	if _, err := c2.RPC("cmb.pub", wire.NodeidAny, pubBody{Topic: "tcptest.hello", Payload: map[string]int{"x": 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Chan():
		if ev.Topic != "tcptest.hello" {
			t.Fatalf("event topic %s", ev.Topic)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event not delivered to TCP client")
	}
}

func TestClientRPCContextCancel(t *testing.T) {
	key := []byte("k2")
	addrs := startTCPSession(t, key)
	c, err := Dial(addrs[0], key)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RPCContext(ctx, "cmb.ping", wire.NodeidAny, nil); err != context.Canceled {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestClientWrongKeyRejected(t *testing.T) {
	key := []byte("rightkey3")
	addrs := startTCPSession(t, key)
	if _, err := Dial(addrs[0], []byte("wrong")); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	key := []byte("k4")
	addrs := startTCPSession(t, key)
	c, err := Dial(addrs[0], key)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.RPC("cmb.ping", wire.NodeidAny, nil); err == nil {
		t.Fatal("RPC after close succeeded")
	}
}

func TestMatchTopicClient(t *testing.T) {
	if !matchTopic("a", "a.b") || matchTopic("a", "ab") || !matchTopic("", "x") {
		t.Fatal("matchTopic rules wrong")
	}
}
