package transport

import (
	"bufio"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fluxgo/internal/wire"
)

// TCP wire framing: each message is a 4-byte little-endian length
// followed by the wire.Marshal encoding. The handshake exchanges
// identities and proves knowledge of the shared session key with an
// HMAC challenge, giving the "secure overlay network" property the
// paper requires without external dependencies.

const (
	handshakeTimeout = 10 * time.Second
	nonceLen         = 32
)

// flushBytes is the coalescing threshold: the writer keeps appending
// queued frames to one scratch buffer until the queue drains or the
// batch reaches this size, then writes it with a single syscall.
const flushBytes = 64 << 10

// maxRetainedScratch bounds the write scratch kept across flushes, so a
// one-off bulk frame (KVS objects may reach MaxMessageSize) does not pin
// its buffer on the link forever.
const maxRetainedScratch = 1 << 20

// meters is the (atomically swapped) set of per-link counter sinks.
type meters struct {
	bytesSent, bytesRecv, framesCoalesced Counter
}

// tcpConn adapts a net.Conn to the Conn interface. A writer goroutine
// drains an unbounded out-queue, coalescing bursts of frames into
// single writes so fan-in links near the tree root pay one syscall per
// batch instead of one per frame.
type tcpConn struct {
	nc      net.Conn
	r       *bufio.Reader
	out     *queue
	peerID  string
	closeMu sync.Mutex
	closed  bool
	done    chan struct{}
	meter   atomic.Pointer[meters]
}

func newTCPConn(nc net.Conn, peerID string) *tcpConn {
	if tc, ok := nc.(*net.TCPConn); ok {
		// The writer already batches; Nagle would only add latency on
		// the small flushes that end a burst.
		tc.SetNoDelay(true)
	}
	c := &tcpConn{
		nc:     nc,
		r:      bufio.NewReaderSize(nc, 64<<10),
		out:    newQueue(),
		peerID: peerID,
		done:   make(chan struct{}),
	}
	go c.writeLoop()
	return c
}

// SetMeter implements Metered.
func (c *tcpConn) SetMeter(bytesSent, bytesRecv, framesCoalesced Counter) {
	c.meter.Store(&meters{bytesSent: bytesSent, bytesRecv: bytesRecv, framesCoalesced: framesCoalesced})
}

func (c *tcpConn) writeLoop() {
	var scratch []byte
	fail := func() {
		c.out.close(false)
		close(c.done)
	}
	for {
		it, err := c.out.pop()
		if err != nil {
			close(c.done)
			return
		}
		scratch = scratch[:0]
		frames := 0
		for {
			// Length prefix, then the frame, encoded in place. Items
			// carrying an encode-once frame skip the marshal entirely:
			// the shared bytes are appended as-is and the item's frame
			// reference dropped.
			hdrAt := len(scratch)
			scratch = append(scratch, 0, 0, 0, 0)
			if it.f != nil {
				scratch = append(scratch, it.f.Bytes()...)
				it.f.Release()
			} else {
				scratch, err = wire.MarshalAppend(scratch, it.m)
				if err != nil {
					// The message is consumed by the failed send; without
					// this Release an armed (handed-off) message leaks its
					// pooled buffer. fail() closes the queue, which releases
					// anything still queued behind it.
					it.m.Release()
					fail()
					return
				}
				it.m.Release() // no-op unless the broker handed the message off
			}
			binary.LittleEndian.PutUint32(scratch[hdrAt:], uint32(len(scratch)-hdrAt-4))
			frames++
			if len(scratch) >= flushBytes {
				break
			}
			var ok bool
			if it, ok = c.out.tryPop(); !ok {
				break
			}
		}
		if _, err := c.nc.Write(scratch); err != nil {
			fail()
			return
		}
		if mt := c.meter.Load(); mt != nil {
			mt.bytesSent.Add(uint64(len(scratch)))
			if frames > 1 {
				mt.framesCoalesced.Add(uint64(frames - 1))
			}
		}
		if cap(scratch) > maxRetainedScratch {
			scratch = nil
		}
	}
}

func (c *tcpConn) Send(m *wire.Message) error {
	return c.out.push(outItem{m: m})
}

// SendFrame implements FrameSender: the frame's shared bytes are queued
// for the coalescing writer, which copies them onto the wire after the
// 4-byte length prefix and drops the reference — no per-child marshal.
func (c *tcpConn) SendFrame(f *wire.Frame) error {
	return c.out.push(outItem{f: f})
}

func (c *tcpConn) Recv() (*wire.Message, error) {
	b, err := readFramePooled(c.r)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return nil, err
	}
	m, err := wire.UnmarshalPooled(b)
	if err != nil {
		wire.PutBuf(b)
		return nil, err
	}
	if mt := c.meter.Load(); mt != nil {
		mt.bytesRecv.Add(uint64(len(b) + 4))
	}
	return m, nil
}

func (c *tcpConn) PeerIdentity() string { return c.peerID }

func (c *tcpConn) Close() error {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		return nil
	}
	c.closed = true
	c.closeMu.Unlock()
	// Waiting for the drain must happen outside closeMu: holding a
	// mutex across a blocking wait is exactly what fluxlint's
	// lock-across-block pass forbids, and nothing below needs the lock.
	c.out.close(true)
	// Give the writer a moment to drain queued messages before the
	// socket is torn down.
	select {
	case <-c.done:
	case <-time.After(time.Second):
	}
	return c.nc.Close()
}

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > wire.MaxMessageSize {
		return nil, wire.ErrTooLarge
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return b, nil
}

// readFramePooled is readFrame with the body read into a pooled buffer
// (see wire.GetBuf); the caller owns it until UnmarshalPooled adopts it.
func readFramePooled(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > wire.MaxMessageSize {
		return nil, wire.ErrTooLarge
	}
	b := wire.GetBuf(int(n))
	if _, err := io.ReadFull(r, b); err != nil {
		wire.PutBuf(b)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return b, nil
}

// Listener accepts authenticated TCP connections.
type Listener struct {
	nl  net.Listener
	key []byte
	id  string
}

// Listen starts a TCP listener on addr. key is the shared session secret
// peers must prove knowledge of; localID is the identity presented to
// connecting peers.
func Listen(addr string, key []byte, localID string) (*Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{nl: nl, key: append([]byte(nil), key...), id: localID}, nil
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() net.Addr { return l.nl.Addr() }

// Accept waits for the next connection and runs the server side of the
// handshake. Connections failing authentication are closed and the error
// returned; callers typically log and continue accepting.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	peerID, err := serverHandshake(nc, l.key, l.id)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	return newTCPConn(nc, peerID), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.nl.Close() }

// Dial connects to a listener at addr, authenticating with key and
// presenting localID as our identity.
func Dial(addr string, key []byte, localID string) (Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	peerID, err := clientHandshake(nc, key, localID)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	return newTCPConn(nc, peerID), nil
}

// serverHandshake: send nonce; receive (identity, hmac(key, nonce||identity));
// verify; send (identity, hmac(key, nonce||identity||"srv")).
func serverHandshake(nc net.Conn, key []byte, localID string) (string, error) {
	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	defer nc.SetDeadline(time.Time{})

	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return "", err
	}
	if err := writeFrame(nc, nonce); err != nil {
		return "", err
	}
	idb, err := readFrame(nc)
	if err != nil {
		return "", err
	}
	mac, err := readFrame(nc)
	if err != nil {
		return "", err
	}
	if !hmac.Equal(mac, authTag(key, nonce, idb, nil)) {
		return "", fmt.Errorf("client authentication failed")
	}
	if err := writeFrame(nc, []byte(localID)); err != nil {
		return "", err
	}
	if err := writeFrame(nc, authTag(key, nonce, []byte(localID), []byte("srv"))); err != nil {
		return "", err
	}
	return string(idb), nil
}

func clientHandshake(nc net.Conn, key []byte, localID string) (string, error) {
	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	defer nc.SetDeadline(time.Time{})

	nonce, err := readFrame(nc)
	if err != nil {
		return "", err
	}
	if err := writeFrame(nc, []byte(localID)); err != nil {
		return "", err
	}
	if err := writeFrame(nc, authTag(key, nonce, []byte(localID), nil)); err != nil {
		return "", err
	}
	idb, err := readFrame(nc)
	if err != nil {
		return "", err
	}
	mac, err := readFrame(nc)
	if err != nil {
		return "", err
	}
	if !hmac.Equal(mac, authTag(key, nonce, idb, []byte("srv"))) {
		return "", fmt.Errorf("server authentication failed")
	}
	return string(idb), nil
}

func authTag(key, nonce, id, label []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(nonce)
	h.Write(id)
	h.Write(label)
	return h.Sum(nil)
}
