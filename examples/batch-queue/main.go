// A batch queue over the comms session: the job service schedules
// submitted jobs against the resource service, launches them through
// wexec, and records every state transition in the KVS — the RJMS
// workflow (submit, queue, run, monitor) of Section II, end to end over
// the run-time components of Section IV.
//
//	go run ./examples/batch-queue
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/jobsvc"
	"fluxgo/internal/modules/resrc"
	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/session"
)

func main() {
	// An 8-node session running the RJMS service stack: kvs (state),
	// resrc (inventory + allocation), wexec (bulk launch), and the job
	// service with backfilling at the root.
	sess, err := session.New(session.Options{
		Size: 8,
		Modules: []session.ModuleFactory{
			kvs.Factory(kvs.ModuleConfig{}),
			resrc.Factory(resrc.Config{}),
			wexec.Factory(wexec.Config{}),
			jobsvc.Factory(jobsvc.Config{Backfill: true}),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Users submit from any rank; requests route upstream to the root
	// service instance.
	h := sess.Handle(5)
	defer h.Close()

	// Fill the machine, then over-subscribe it so jobs queue.
	var ids []string
	for i, spec := range []jobsvc.Spec{
		{Program: "hostname", Nodes: 6},
		{Program: "echo", Args: []string{"first wave"}, Nodes: 4},
		{Program: "echo", Args: []string{"backfill-me"}, Nodes: 2},
		{Program: "fail", Args: []string{"1"}, Nodes: 1},
	} {
		id, err := jobsvc.Submit(h, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted job %s: %s x%d nodes\n", id, spec.Program, spec.Nodes)
		ids = append(ids, id)
		_ = i
	}

	// Watch the queue drain.
	jobs, err := jobsvc.List(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nactive jobs right after submission: %d\n", len(jobs))
	for _, j := range jobs {
		fmt.Printf("  job %s: %-9s (%s, %d nodes)\n", j.ID, j.State, j.Spec.Program, j.Spec.Nodes)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fmt.Println("\nwaiting for completions:")
	for _, id := range ids {
		info, err := jobsvc.Wait(ctx, h, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  job %s -> %s on ranks %v\n", info.ID, info.State, info.Ranks)
	}

	// The KVS holds the provenance trail for every job. Reads at a slave
	// are weakly consistent (they may lag the master until the next
	// setroot event), so read the trail at rank 0, whose view is current.
	h0 := sess.Handle(0)
	defer h0.Close()
	kc := kvs.NewClient(h0)
	var state string
	kc.Get("lwj."+ids[3]+".jobstate", &state)
	fmt.Printf("\nprovenance: lwj.%s.jobstate = %q in the KVS\n", ids[3], state)
	stdout, _, _, _ := wexec.Output(h, "job-"+ids[0], 0)
	fmt.Printf("provenance: job %s rank-0 stdout = %q\n", ids[0], stdout)
}
