package session

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"fluxgo/internal/broker"
	"fluxgo/internal/clock"
	"fluxgo/internal/topo"
	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// TCP deployment: each rank runs one broker process (cmd/flux-broker).
// Children dial their tree parent (two connections: tree and event
// planes) and their ring successor; external tools dial any broker as
// clients. The handshake identity carries the link kind as a prefix
// ("tree:rank:3") so the accepting broker knows how to attach the
// connection. All connections authenticate with the shared session key.

// Link-kind prefixes used in TCP handshake identities.
const (
	idTree   = "tree:"
	idEvent  = "event:"
	idRing   = "ring:"
	idClient = "client:"
)

// TCPConfig configures one broker of a TCP-deployed comms session.
type TCPConfig struct {
	Rank  int
	Size  int
	Arity int
	// Listen is this broker's bind address (host:port).
	Listen string
	// ParentAddr is the tree parent's listen address ("" at the root).
	ParentAddr string
	// RingNextAddr is the ring successor's listen address ("" when
	// Size == 1).
	RingNextAddr string
	// Key is the shared session secret.
	Key []byte
	// DialTimeout bounds how long to keep retrying the parent and ring
	// dials during bring-up (brokers may start in any order). Default 30s.
	DialTimeout time.Duration
	// Seed derives the dial-retry jitter RNG. Zero derives it from the
	// rank, so a re-run of the same deployment (same seed, e.g. from
	// CHAOS_SEED) replays the same backoff schedule on every rank.
	Seed    int64
	Modules []ModuleFactory
	Clock   clock.Clock
	Log     func(format string, args ...any)
}

// TCPBroker is one running rank of a TCP session.
type TCPBroker struct {
	B    *broker.Broker
	ln   *transport.Listener
	done chan struct{}
	stop chan struct{} // closed by Close; aborts in-flight dial backoff
	once sync.Once
}

// Addr returns the broker's bound listen address.
func (t *TCPBroker) Addr() string { return t.ln.Addr().String() }

// Close shuts the broker and its listener down.
func (t *TCPBroker) Close() {
	t.once.Do(func() { close(t.stop) })
	t.ln.Close()
	t.B.Shutdown()
	<-t.done
}

// StartTCPBroker brings up one broker rank over TCP: it listens for
// children, clients, and its ring predecessor, and dials its parent and
// ring successor with retries so ranks may start in any order.
func StartTCPBroker(cfg TCPConfig) (*TCPBroker, error) {
	if cfg.Arity == 0 {
		cfg.Arity = 2
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	tree, err := topo.NewTree(cfg.Size, cfg.Arity)
	if err != nil {
		return nil, err
	}
	if (tree.Parent(cfg.Rank) >= 0) != (cfg.ParentAddr != "") {
		return nil, fmt.Errorf("session: rank %d of %d needs ParentAddr iff non-root", cfg.Rank, cfg.Size)
	}
	b, err := broker.New(broker.Config{
		Rank:  cfg.Rank,
		Size:  cfg.Size,
		Arity: cfg.Arity,
		Clock: cfg.Clock,
		Log:   cfg.Log,
	})
	if err != nil {
		return nil, err
	}
	for _, f := range cfg.Modules {
		if m := f(cfg.Rank, cfg.Size); m != nil {
			if err := b.LoadModule(m); err != nil {
				return nil, err
			}
		}
	}

	ln, err := transport.Listen(cfg.Listen, cfg.Key, rankID(cfg.Rank))
	if err != nil {
		return nil, err
	}
	t := &TCPBroker{B: b, ln: ln, done: make(chan struct{}), stop: make(chan struct{})}
	go t.acceptLoop(cfg)

	// One seeded RNG per broker bring-up: all this rank's dial jitter
	// comes from it, so runs are reproducible given the seed, while
	// distinct ranks (distinct seeds) still desynchronize.
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(cfg.Rank) + 1
	}
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(cfg.Rank)))

	if cfg.ParentAddr != "" {
		treeConn, err := dialRetry(cfg.ParentAddr, cfg.Key, idTree+rankID(cfg.Rank), cfg.DialTimeout, rng, t.stop)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("session: dial parent tree plane: %w", err)
		}
		evConn, err := dialRetry(cfg.ParentAddr, cfg.Key, idEvent+rankID(cfg.Rank), cfg.DialTimeout, rng, t.stop)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("session: dial parent event plane: %w", err)
		}
		b.AttachConn(broker.LinkParentTree, treeConn)
		b.AttachConn(broker.LinkParentEvent, evConn)
		// Open the parent's gate on our event link, replaying any events
		// published before we joined. A failed resync would leave the
		// gate shut forever, so it is a bring-up error.
		if err := evConn.Send(&wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: 0}); err != nil {
			t.Close()
			return nil, fmt.Errorf("session: parent event resync: %w", err)
		}
	}
	if cfg.RingNextAddr != "" {
		ringConn, err := dialRetry(cfg.RingNextAddr, cfg.Key, idRing+rankID(cfg.Rank), cfg.DialTimeout, rng, t.stop)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("session: dial ring successor: %w", err)
		}
		b.AttachConn(broker.LinkRingOut, ringConn)
	}
	b.Start()
	return t, nil
}

// dialRetry dials with jittered exponential backoff until the deadline —
// peer brokers may not be up yet. The jitter (uniform in [delay/2,
// delay]) desynchronizes the many children of one parent: without it a
// session-wide bring-up or a mass re-dial after a parent restart hits
// the listener in lockstep waves.
// The RNG is caller-owned (seeded per broker) so retry schedules are
// reproducible; stop aborts the backoff wait when the broker is closed
// mid-bring-up instead of sleeping out the full delay.
func dialRetry(addr string, key []byte, localID string, timeout time.Duration, rng *rand.Rand, stop <-chan struct{}) (transport.Conn, error) {
	deadline := time.Now().Add(timeout)
	delay := 50 * time.Millisecond
	for {
		c, err := transport.Dial(addr, key, localID)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		jittered := delay/2 + time.Duration(rng.Int63n(int64(delay/2)+1))
		timer := time.NewTimer(jittered)
		select {
		case <-timer.C:
		case <-stop:
			timer.Stop()
			return nil, fmt.Errorf("session: broker closed while dialing %s: %w", addr, err)
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// acceptLoop attaches inbound connections according to their announced
// link kind.
func (t *TCPBroker) acceptLoop(cfg TCPConfig) {
	defer close(t.done)
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		id := conn.PeerIdentity()
		switch {
		case strings.HasPrefix(id, idTree):
			t.B.AttachConn(broker.LinkChildTree, conn)
		case strings.HasPrefix(id, idEvent):
			t.B.AttachConn(broker.LinkChildEvent, conn)
		case strings.HasPrefix(id, idRing):
			t.B.AttachConn(broker.LinkRingIn, conn)
		case strings.HasPrefix(id, idClient):
			t.B.AttachConn(broker.LinkClient, conn)
		default:
			if cfg.Log != nil {
				cfg.Log("session: rejecting connection with identity %q", id)
			}
			conn.Close()
		}
	}
}

// TreeAddrs computes, for a session whose rank addresses are known, the
// parent and ring-successor addresses of one rank — a helper for
// launchers generating flux-broker command lines.
func TreeAddrs(rank, size, arity int, addrOf func(rank int) string) (parent, ringNext string, err error) {
	tree, err := topo.NewTree(size, arity)
	if err != nil {
		return "", "", err
	}
	if p := tree.Parent(rank); p >= 0 {
		parent = addrOf(p)
	}
	if size > 1 {
		ring, _ := topo.NewRing(size)
		ringNext = addrOf(ring.Next(rank))
	}
	return parent, ringNext, nil
}
