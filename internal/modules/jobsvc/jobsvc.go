// Package jobsvc implements the job-management service: the RJMS face
// of a Flux instance. Jobs are submitted into a queue, scheduled against
// the resource service (resrc), launched in bulk through the
// work-execution module (wexec), and their full lifecycle is recorded in
// the KVS under lwj.<id> — giving the "much richer provenance on jobs"
// the paper's paradigm calls for. State transitions are published as
// job.state events so tools can follow jobs without polling.
//
// The service instance runs at the session root (requests from any rank
// route upstream to it); its scheduling policy is per-instance, the
// specialization hook of the unified job model.
package jobsvc

import (
	"fmt"
	"sort"
	"sync"

	"fluxgo/internal/broker"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/resrc"
	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/obs"
	"fluxgo/internal/wire"
)

// Job states.
const (
	StateSubmitted = "submitted"
	StateRunning   = "running"
	StateComplete  = "complete"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Spec describes a submitted job.
type Spec struct {
	Program string   `json:"program"`
	Args    []string `json:"args,omitempty"`
	Nodes   int      `json:"nodes"`
}

// Info is a job's public record.
type Info struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State string `json:"state"`
	Ranks []int  `json:"ranks,omitempty"` // granted session ranks
	Exit  int    `json:"nfailed"`         // failed task count
}

// stateEvent is the job.state event payload.
type stateEvent struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Version uint64 `json:"version"` // KVS version recording the transition
}

// Config parameterizes the job service.
type Config struct {
	// Backfill lets jobs behind a blocked queue head start when they fit
	// (conservative backfill — live jobs carry no runtime estimate).
	// False gives strict FCFS.
	Backfill bool
}

// Module is the job service instance (root only).
type Module struct {
	cfg Config
	h   *broker.Handle
	kc  *kvs.Client

	mu      sync.Mutex
	nextID  int
	queue   []*Info          // submitted, in arrival order
	running map[string]*Info // id -> running job
}

// New returns a job-service module instance.
func New(cfg Config) *Module {
	return &Module{cfg: cfg, running: map[string]*Info{}}
}

// Factory loads the job service at the session root only. It requires
// kvs, resrc, and wexec.
func Factory(cfg Config) func(rank, size int) broker.Module {
	return func(rank, size int) broker.Module {
		if rank != 0 {
			return nil
		}
		return New(cfg)
	}
}

// Name implements broker.Module.
func (m *Module) Name() string { return "job" }

// Subscriptions implements broker.Module: the service reacts to bulk-job
// completions to drive its queue.
func (m *Module) Subscriptions() []string {
	return []string{"wexec.complete", wire.EventJoin, wire.EventLeave}
}

// Init implements broker.Module.
func (m *Module) Init(h *broker.Handle) error {
	m.h = h
	m.kc = kvs.NewClient(h)
	return nil
}

// Shutdown implements broker.Module.
func (m *Module) Shutdown() {}

// Recv implements broker.Module.
func (m *Module) Recv(msg *wire.Message) {
	if msg.Type == wire.Event && (msg.Topic == wire.EventJoin || msg.Topic == wire.EventLeave) {
		// Membership changed: a join adds capacity for queued jobs, a
		// leave means the queue head may now fit in what remains (the
		// allocator already excludes the departed rank either way).
		m.schedule()
		return
	}
	if msg.Type == wire.Event && msg.Topic == "wexec.complete" {
		m.onComplete(msg)
		return
	}
	if msg.Type != wire.Request {
		return
	}
	switch msg.Method() {
	case "submit":
		m.recvSubmit(msg)
	case "list":
		m.recvList(msg)
	case "cancel":
		m.recvCancel(msg)
	case "info":
		m.recvInfo(msg)
	default:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("job: unknown method %q", msg.Method()))
	}
}

// record writes a job's current state into the KVS and announces the
// transition. Returns the recording version.
func (m *Module) record(info *Info) uint64 {
	prefix := "lwj." + info.ID
	m.kc.Put(prefix+".spec", info.Spec)
	m.kc.Put(prefix+".jobstate", info.State)
	if info.Ranks != nil {
		m.kc.Put(prefix+".ranks", info.Ranks)
	}
	version, err := m.kc.Commit()
	if err != nil {
		return 0
	}
	if _, err := m.h.PublishEvent("job.state", stateEvent{ID: info.ID, State: info.State, Version: version}); err != nil {
		// The KVS record is committed; only the notification was lost.
		// Waiters polling the KVS still converge.
		m.h.Log(obs.LevelWarn, "jobsvc", "job.state event for %q failed: %v", info.ID, err)
	}
	return version
}

func (m *Module) recvSubmit(msg *wire.Message) {
	var spec Spec
	if err := msg.UnpackJSON(&spec); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	if spec.Program == "" {
		m.h.RespondError(msg, broker.ErrnoInval, "job: program required")
		return
	}
	if spec.Nodes < 1 {
		spec.Nodes = 1
	}
	if spec.Nodes > m.h.LiveSize() {
		m.h.RespondError(msg, broker.ErrnoInval,
			fmt.Sprintf("job: %d nodes requested, session has %d live", spec.Nodes, m.h.LiveSize()))
		return
	}
	m.mu.Lock()
	m.nextID++
	info := &Info{ID: fmt.Sprintf("%d", m.nextID), Spec: spec, State: StateSubmitted}
	m.queue = append(m.queue, info)
	m.mu.Unlock()

	m.record(info)
	m.h.Respond(msg, map[string]string{"id": info.ID})
	m.schedule()
}

// schedule starts queued jobs that the resource service can satisfy,
// honoring the queue discipline.
func (m *Module) schedule() {
	for {
		m.mu.Lock()
		var pick *Info
		pickIdx := -1
		for idx, j := range m.queue {
			ranks, err := resrc.Alloc(m.h, "job-"+j.ID, j.Spec.Nodes)
			if err == nil {
				j.Ranks = ranks
				pick, pickIdx = j, idx
				break
			}
			if !m.cfg.Backfill {
				break // strict FCFS: the head blocks
			}
		}
		if pick == nil {
			m.mu.Unlock()
			return
		}
		m.queue = append(m.queue[:pickIdx], m.queue[pickIdx+1:]...)
		pick.State = StateRunning
		m.running[pick.ID] = pick
		m.mu.Unlock()

		m.record(pick)
		if _, err := wexec.Run(m.h, "job-"+pick.ID, pick.Spec.Program, pick.Spec.Args, pick.Ranks); err != nil {
			m.finish(pick.ID, StateFailed, 0)
		}
	}
}

// onComplete reacts to a bulk job finishing.
func (m *Module) onComplete(msg *wire.Message) {
	var body struct {
		JobID string `json:"jobid"`
		State string `json:"state"`
	}
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	const prefix = "job-"
	if len(body.JobID) <= len(prefix) || body.JobID[:len(prefix)] != prefix {
		return // not ours
	}
	id := body.JobID[len(prefix):]
	state := StateComplete
	if body.State != "complete" {
		state = StateFailed
	}
	var nfailed int
	m.kc.Get(fmt.Sprintf("lwj.%s.nfailed", body.JobID), &nfailed)
	m.finish(id, state, nfailed)
}

// finish retires a running job, frees its resources, and re-schedules.
func (m *Module) finish(id, state string, nfailed int) {
	m.mu.Lock()
	info := m.running[id]
	if info == nil {
		m.mu.Unlock()
		return
	}
	delete(m.running, id)
	info.State = state
	info.Exit = nfailed
	m.mu.Unlock()

	resrc.Free(m.h, "job-"+id)
	m.kc.Put("lwj."+id+".nfailed", nfailed)
	m.record(info)
	m.schedule()
}

func (m *Module) recvList(msg *wire.Message) {
	m.mu.Lock()
	out := make([]*Info, 0, len(m.queue)+len(m.running))
	out = append(out, m.queue...)
	for _, j := range m.running {
		out = append(out, j)
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	m.h.Respond(msg, map[string][]*Info{"jobs": out})
}

func (m *Module) recvCancel(msg *wire.Message) {
	var body struct {
		ID string `json:"id"`
	}
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	m.mu.Lock()
	// Queued: drop from the queue.
	for idx, j := range m.queue {
		if j.ID == body.ID {
			m.queue = append(m.queue[:idx], m.queue[idx+1:]...)
			j.State = StateCancelled
			m.mu.Unlock()
			m.record(j)
			m.h.Respond(msg, map[string]string{"state": StateCancelled})
			return
		}
	}
	// Running: signal its tasks; completion arrives via wexec.complete
	// and retires it as failed (killed).
	if _, ok := m.running[body.ID]; ok {
		m.mu.Unlock()
		if err := wexec.Kill(m.h, "job-"+body.ID); err != nil {
			m.h.RespondError(msg, broker.ErrnoProto, err.Error())
			return
		}
		m.h.Respond(msg, map[string]string{"state": "killing"})
		return
	}
	m.mu.Unlock()
	m.h.RespondError(msg, broker.ErrnoNoEnt, fmt.Sprintf("job: no active job %q", body.ID))
}

func (m *Module) recvInfo(msg *wire.Message) {
	var body struct {
		ID string `json:"id"`
	}
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	// Active jobs answer from memory; completed ones from the KVS record.
	m.mu.Lock()
	if j, ok := m.running[body.ID]; ok {
		m.mu.Unlock()
		m.h.Respond(msg, j)
		return
	}
	for _, j := range m.queue {
		if j.ID == body.ID {
			m.mu.Unlock()
			m.h.Respond(msg, j)
			return
		}
	}
	m.mu.Unlock()
	info := Info{ID: body.ID}
	if err := m.kc.Get("lwj."+body.ID+".jobstate", &info.State); err != nil {
		m.h.RespondError(msg, broker.ErrnoNoEnt, fmt.Sprintf("job: no job %q", body.ID))
		return
	}
	m.kc.Get("lwj."+body.ID+".spec", &info.Spec)
	m.kc.Get("lwj."+body.ID+".ranks", &info.Ranks)
	m.kc.Get("lwj."+body.ID+".nfailed", &info.Exit)
	m.h.Respond(msg, info)
}
