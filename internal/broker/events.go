package broker

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"fluxgo/internal/obs"
	"fluxgo/internal/transport"
	"fluxgo/internal/wire"
)

// eventRec is one entry of the event history cache: the immutable event
// message plus, when at least one child link can ship raw frames, its
// encode-once wire frame shared (refcounted) by every frame-capable
// consumer — live fan-out and resync replay alike.
type eventRec struct {
	msg   *wire.Message
	frame *wire.Frame // nil when no frame-capable child has seen it
}

// Event plane.
//
// The root broker assigns every published event a monotone sequence
// number and fans it out over the event-plane tree. Reliable FIFO links
// preserve the total order at every rank, which is what gives the KVS
// its monotonic-read consistency "for free" (paper, Sec. IV-B). Brokers
// cache recent events so a re-parented child can resync without gaps.

// pubBody is the payload of a cmb.pub request: the event to publish.
type pubBody struct {
	Topic   string          `json:"topic"`
	Payload json.RawMessage `json:"payload"`
}

// builtinRequest serves the broker's own "cmb" service. It returns false
// when the method must continue upstream instead (publication below the
// root). Handlers run on the broker loop and must not block.
func (b *Broker) builtinRequest(m *wire.Message) bool {
	switch m.Method() {
	case "pub":
		if !b.IsRoot() {
			return false // forward toward the root, which sequences it
		}
		var body pubBody
		if r, ok := wire.NewBinReader(m.Payload); ok {
			body.Topic = r.String()
			body.Payload = r.Bytes()
			if err := r.Err(); err != nil {
				b.respondErr(m, ErrnoInval, err.Error())
				return true
			}
		} else if err := m.UnpackJSON(&body); err != nil {
			b.respondErr(m, ErrnoInval, err.Error())
			return true
		}
		seq := b.sequenceEvent(body.Topic, body.Payload, m.TraceID, m.Hops)
		if m.Seq != 0 {
			resp, err := wire.NewResponse(m, map[string]uint64{"seq": seq})
			if err == nil {
				b.routeResponse(inbound{msg: resp})
			}
		}
		return true
	case "ping":
		// Empty pings — the liveness probe, and the hot routing
		// benchmark — skip the generic map round-trip: the reply body is
		// appended directly, no json.Marshal, no map allocation.
		if len(m.Payload) == 0 || string(m.Payload) == "{}" || string(m.Payload) == "null" {
			var buf [40]byte
			raw := append(buf[:0], `{"rank":`...)
			raw = strconv.AppendInt(raw, int64(b.cfg.Rank), 10)
			raw = append(raw, `,"hops":`...)
			raw = strconv.AppendInt(raw, int64(len(m.Route)), 10)
			raw = append(raw, '}')
			resp, err := wire.NewResponse(m, wire.RawBody(raw))
			if err == nil {
				b.routeResponse(inbound{msg: resp})
			}
			return true
		}
		var body map[string]any
		if err := m.UnpackJSON(&body); err != nil {
			body = map[string]any{}
		}
		body["rank"] = b.cfg.Rank
		body["hops"] = len(m.Route)
		resp, err := wire.NewResponse(m, body)
		if err != nil {
			b.respondErr(m, ErrnoInval, err.Error())
			return true
		}
		b.routeResponse(inbound{msg: resp})
		return true
	case "info":
		b.mu.Lock()
		tombs := b.view.Tombstones()
		b.mu.Unlock()
		resp, err := wire.NewResponse(m, map[string]any{
			"rank":       b.cfg.Rank,
			"size":       b.RankSpace(),
			"live":       b.LiveSize(),
			"epoch":      int(b.Epoch()),
			"arity":      b.cfg.Arity,
			"parent":     b.ParentRank(),
			"tombstones": tombs,
		})
		if err == nil {
			b.routeResponse(inbound{msg: resp})
		}
		return true
	case "stats":
		st := b.Stats()
		resp, err := wire.NewResponse(m, map[string]any{
			"rank":              b.cfg.Rank,
			"requests_routed":   st.RequestsRouted,
			"requests_upstream": st.RequestsUpstream,
			"requests_ring":     st.RequestsRing,
			"responses_routed":  st.ResponsesRouted,
			"events_published":  st.EventsPublished,
			"events_applied":    st.EventsApplied,
			"events_duplicate":  st.EventsDuplicate,
			"event_seq_gaps":    st.EventSeqGaps,
			"reparents":         st.Reparents,
			"send_errors":       st.SendErrors,
			"inflight_failed":   st.InflightFailed,
			"epoch":             b.Epoch(),
			"live_size":         b.LiveSize(),
			"joins":             st.Joins,
			"leaves":            st.Leaves,
			"drains":            st.Drains,
			"epoch_rejects":     st.EpochRejects,
			"last_event_seq":    b.LastEventSeq(),
			"trace_spans":       b.traces.Len(),
			"metrics":           b.metrics.Snapshot(),
		})
		if err == nil {
			b.routeResponse(inbound{msg: resp})
		}
		return true
	case "trace":
		var body traceBody
		if len(m.Payload) > 0 {
			if err := m.UnpackJSON(&body); err != nil {
				b.respondErr(m, ErrnoInval, err.Error())
				return true
			}
		}
		if body.Gather {
			// The session-wide gather issues RPCs and must not block the
			// loop; Shutdown waits for it through b.bg (like rmmod).
			b.bg.Add(1)
			go func() {
				defer b.bg.Done()
				b.respondTrace(m, b.gatherTrace(body))
			}()
			return true
		}
		b.respondTrace(m, b.localTrace(body))
		return true
	case "dmesg":
		b.serveDmesg(m)
		return true
	case "logfwd":
		b.serveLogFwd(m)
		return true
	case "dump":
		b.serveDump(m)
		return true
	case "rmmod":
		var body struct {
			Name string `json:"name"`
		}
		if err := m.UnpackJSON(&body); err != nil || body.Name == "" {
			b.respondErr(m, ErrnoInval, "cmb: rmmod needs a module name")
			return true
		}
		// Unloading drains the module and may need the broker loop to
		// route its in-flight responses, so it must not run on the loop.
		// Shutdown waits for it through b.bg.
		b.bg.Add(1)
		go func() {
			defer b.bg.Done()
			if err := b.UnloadModule(body.Name); err != nil {
				b.respondErr(m, ErrnoNoEnt, err.Error())
				return
			}
			if resp, err := wire.NewResponse(m, map[string]string{"unloaded": body.Name}); err == nil {
				b.routeResponse(inbound{msg: resp})
			}
		}()
		return true
	case "join":
		b.serveJoin(m)
		return true
	case "grow":
		b.serveGrow(m)
		return true
	case "shrink":
		b.serveShrink(m)
		return true
	case "restart":
		b.serveRestart(m)
		return true
	case "lsmod":
		b.mu.Lock()
		names := make([]string, 0, len(b.modules))
		for name := range b.modules {
			names = append(names, name)
		}
		b.mu.Unlock()
		resp, err := wire.NewResponse(m, map[string][]string{"modules": names})
		if err == nil {
			b.routeResponse(inbound{msg: resp})
		}
		return true
	default:
		b.respondErr(m, ErrnoNoSys, fmt.Sprintf("cmb: unknown method %q", m.Method()))
		return true
	}
}

// sequenceEvent (root only) assigns the next sequence number and
// distributes the event session-wide. It returns the assigned sequence.
// The event inherits the publishing request's trace context (or starts
// a fresh trace for broker-internal publications), so an event's
// session-wide fan-out chains onto the cmb.pub request that caused it.
func (b *Broker) sequenceEvent(topic string, payload json.RawMessage, traceID uint64, hops uint8) uint64 {
	if traceID == 0 {
		traceID = b.newTraceID()
	}
	// Sequence assignment and fan-out happen under one evMu critical
	// section: if they were separate, two concurrently sequenced events
	// could fan out in the wrong order and trip every child's gap check.
	b.evMu.Lock()
	b.eventSeq++
	seq := b.eventSeq
	ev := &wire.Message{Type: wire.Event, Topic: topic, Seq: seq, Payload: payload,
		Epoch: b.epoch.Load(), TraceID: traceID, Parent: hops, Hops: hops}
	b.applyEventLocked(ev)
	b.evMu.Unlock()
	b.ctr.eventsPublished.Inc()
	return seq
}

// applyEvent delivers an event locally in sequence order and forwards it
// down the event-plane tree. Duplicates (possible after a resync) are
// dropped by sequence number, preserving exactly-once, in-order apply.
//
// An event message is shared by every recipient and forwarded child, so
// unlike requests its trace context is never advanced in place: the
// per-rank span derives its hop number from the rank's static tree
// depth (events only ever flow root-to-leaves), continuing the
// publisher's hop numbering without mutation.
func (b *Broker) applyEvent(ev *wire.Message) {
	b.evMu.Lock()
	b.applyEventLocked(ev)
	b.evMu.Unlock()
}

// applyEventLocked is applyEvent's body; callers hold evMu, which
// serializes event apply against resync replay so the two can never
// interleave out of sequence order on any link.
func (b *Broker) applyEventLocked(ev *wire.Message) {
	start := time.Now()
	b.mu.Lock()
	if ev.Seq <= b.lastEventSeq {
		b.mu.Unlock()
		b.ctr.eventsDuplicate.Inc()
		return
	}
	if ev.Seq != b.lastEventSeq+1 && b.lastEventSeq != 0 {
		b.ctr.eventSeqGaps.Inc()
		// The gap may have swallowed a membership event; anti-entropy
		// re-fetches the authoritative view from the root.
		b.startMembershipSync()
	}
	b.lastEventSeq = ev.Seq
	// Membership events are folded while the sequencing lock is held, so
	// every broker applies the same view changes in the same total order.
	if ev.Topic == wire.EventJoin || ev.Topic == wire.EventLeave {
		b.applyMembershipLocked(ev)
	}
	// Every broker applies every event, so the session heartbeat doubles
	// as the log plane's clock: each pulse flushes pending warn+ records
	// one hop upstream (after the lock below is released).
	heartbeat := ev.Topic == wire.EventHeartbeat

	// Snapshot recipients under the lock; deliver outside it.
	var mods []*moduleRunner
	for _, r := range b.modules {
		for _, p := range r.subs {
			if matchTopic(p, ev.Topic) {
				mods = append(mods, r)
				break
			}
		}
	}
	var local []*link
	var down []*link
	frameTargets := 0
	for _, l := range b.links {
		switch l.kind {
		case linkHandle:
			if l.h.wantsEvent(ev.Topic) {
				local = append(local, l)
			}
		case LinkClient:
			for _, p := range l.subs {
				if matchTopic(p, ev.Topic) {
					local = append(local, l)
					break
				}
			}
		case LinkChildEvent:
			if !l.gated {
				down = append(down, l)
				if _, ok := l.conn.(transport.FrameSender); ok {
					frameTargets++
				}
			}
		}
	}
	// Encode once: if any child link can ship raw frames, marshal the
	// event a single time and let every such link (plus future resync
	// replays) share the bytes. Marshal failure just falls back to
	// per-link Send, which will surface the same error.
	var frame *wire.Frame
	if frameTargets > 0 {
		if f, err := wire.NewFrame(ev); err == nil {
			frame = f
		}
	}
	b.eventHist = append(b.eventHist, eventRec{msg: ev, frame: frame})
	var evicted []*wire.Frame
	if over := len(b.eventHist) - b.cfg.EventHistory; over > 0 {
		for i := 0; i < over; i++ {
			if f := b.eventHist[i].frame; f != nil {
				evicted = append(evicted, f)
			}
		}
		b.eventHist = append([]eventRec(nil), b.eventHist[over:]...)
	}
	b.mu.Unlock()
	for _, f := range evicted {
		f.Release()
	}

	b.ctr.eventsApplied.Inc()
	if heartbeat {
		b.maybeForwardLogs()
	}

	// Events are immutable once published: the same message value is
	// shared by every local recipient and forwarded child, and the same
	// encoded frame by every frame-capable child.
	for _, r := range mods {
		r.inbox.PushLane(0, ev)
	}
	for _, l := range local {
		b.send(l, ev)
	}
	for _, l := range down {
		if fs, ok := l.conn.(transport.FrameSender); ok && frame != nil {
			b.sendFrame(l, fs, frame)
		} else {
			b.send(l, ev)
		}
	}
	if frame != nil {
		b.ctr.eventsFanoutEncodes.Inc()
		if frameTargets > 1 {
			b.ctr.eventsFanoutReuse.Add(uint64(frameTargets - 1))
		}
	}

	work := time.Since(start)
	b.hist.applyEvent.Observe(work)
	if ev.TraceID != 0 {
		hop := int(ev.Hops) + b.depth + 1
		if hop > 255 {
			hop = 255
		}
		b.traces.Append(obs.Span{
			Trace: ev.TraceID, Rank: b.cfg.Rank, Hop: uint8(hop), Parent: uint8(hop - 1),
			Kind: "event", Topic: ev.Topic,
			Link:   fmt.Sprintf("down:%d local:%d", len(down), len(mods)+len(local)),
			WorkNS: int64(work), StartNS: start.UnixNano(),
		})
	}
}

// sendFrame ships one reference of the shared event frame down a
// frame-capable link, with the same error accounting as send.
func (b *Broker) sendFrame(l *link, fs transport.FrameSender, f *wire.Frame) {
	if err := fs.SendFrame(f.Retain()); err != nil {
		b.ctr.sendErrors.Inc()
		b.log.Warnf(wire.ServiceCMB, "send frame on %s: %v", l.id, err)
	}
}

// replayEvents sends cached events with sequence > last down one link,
// bringing a newly adopted child up to date after re-parenting, then
// ungates the link. Both steps run under evMu: an event sequenced after
// the backlog snapshot but before the ungate would otherwise miss both
// the replay and the live fan-out — a silent gap the child never learns
// about. Cached frames are reused here too: a resync costs zero marshals
// for events that still hold their encoding.
func (b *Broker) replayEvents(l *link, last uint64) {
	fs, frameOK := l.conn.(transport.FrameSender)
	b.evMu.Lock()
	b.mu.Lock()
	var replay []eventRec
	for _, rec := range b.eventHist {
		if rec.msg.Seq > last {
			if frameOK && rec.frame != nil {
				rec.frame.Retain() // the loop below owns this reference
			} else {
				rec.frame = nil // value copy; the cache keeps its own ref
			}
			replay = append(replay, rec)
		}
	}
	l.gated = false
	b.mu.Unlock()
	var reused uint64
	for _, rec := range replay {
		if rec.frame != nil {
			// The reference taken above is handed to the transport
			// directly (not via sendFrame, which retains again).
			if err := fs.SendFrame(rec.frame); err != nil {
				b.ctr.sendErrors.Inc()
				b.log.Warnf(wire.ServiceCMB, "replay frame on %s: %v", l.id, err)
			}
			reused++
		} else {
			b.send(l, rec.msg)
		}
	}
	b.evMu.Unlock()
	if reused > 0 {
		b.ctr.eventsFanoutReuse.Add(reused)
	}
}

// LastEventSeq returns the sequence number of the most recently applied
// event at this broker.
func (b *Broker) LastEventSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastEventSeq
}
