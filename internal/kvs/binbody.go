package kvs

import "fluxgo/internal/wire"

// Binary-coded (codec v3) forms of the hot kvs wire bodies. Encoding is
// an encoder-side opt-in gated on the broker's negotiated BinaryBodies
// flag; decoding always sniffs, so binary and JSON peers interoperate on
// the same link, and responses follow the encoding of the request that
// produced them.

func (b putBody) bin() wire.RawBody {
	w := wire.NewBinWriter(len(b.Key) + len(b.Ref) + len(b.Data) + 8)
	w.String(b.Key)
	w.String(b.Ref)
	w.Bytes(b.Data)
	return w.Finish()
}

func decodePutBody(m *wire.Message) (body putBody, err error) {
	if r, ok := wire.NewBinReader(m.Payload); ok {
		body.Key = r.String()
		body.Ref = r.String()
		body.Data = r.Bytes()
		return body, r.Err()
	}
	err = m.UnpackJSON(&body)
	return body, err
}

func (b loadBody) bin() wire.RawBody {
	n := len(b.Ref) + 8
	for _, s := range b.Refs {
		n += len(s) + 4
	}
	w := wire.NewBinWriter(n)
	w.String(b.Ref)
	w.StringSlice(b.Refs)
	return w.Finish()
}

func decodeLoadBody(m *wire.Message) (body loadBody, err error) {
	if r, ok := wire.NewBinReader(m.Payload); ok {
		body.Ref = r.String()
		body.Refs = r.StringSlice()
		return body, r.Err()
	}
	err = m.UnpackJSON(&body)
	return body, err
}

func (b loadResp) bin() wire.RawBody {
	n := len(b.Data) + 8
	for k, v := range b.Objects {
		n += len(k) + len(v) + 8
	}
	w := wire.NewBinWriter(n)
	w.Bytes(b.Data)
	w.BytesMap(b.Objects)
	return w.Finish()
}

func decodeLoadResp(m *wire.Message) (body loadResp, err error) {
	if r, ok := wire.NewBinReader(m.Payload); ok {
		body.Data = r.Bytes()
		body.Objects = r.BytesMap()
		return body, r.Err()
	}
	err = m.UnpackJSON(&body)
	return body, err
}
