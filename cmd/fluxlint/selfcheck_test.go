package main

import "testing"

// TestRepoIsFindingFree is the dogfood gate: the full suite over the
// real module must report nothing. Any regression shows up here (and in
// `make lint`) with its exact position.
func TestRepoIsFindingFree(t *testing.T) {
	modPath, modDir, err := findModule(".")
	if err != nil {
		t.Fatalf("findModule: %v", err)
	}
	l := NewLoader(modPath, modDir)
	paths, err := l.Discover()
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if len(paths) < 5 {
		t.Fatalf("discovered only %d packages (%v); loader is missing the tree", len(paths), paths)
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, p)
	}
	for _, f := range runAll(l, pkgs) {
		t.Errorf("finding in repo: %s", f)
	}
}
