// Package fakes supplies the receiver shapes the passes discriminate
// on: Conn is connection-shaped (method set has BOTH Send and Recv),
// Handle carries the RPC family plus a fire-and-forget Send that must
// NOT be treated as connection-shaped.
package fakes

import (
	"context"

	"fixture.example/wire"
)

// Conn is transport-connection-shaped.
type Conn struct{}

func (c *Conn) Send(m *wire.Message) error   { return nil }
func (c *Conn) Recv() (*wire.Message, error) { return nil, nil }

// Handle mimics the broker module handle.
type Handle struct{}

func (h *Handle) RPC(topic string, nodeid uint32, payload []byte) (*wire.Message, error) {
	return nil, nil
}

func (h *Handle) RPCContext(ctx context.Context, topic string, nodeid uint32, payload []byte) (*wire.Message, error) {
	return nil, nil
}

// RPCOptions mirrors the broker's deadline/retry policy struct.
type RPCOptions struct{}

func (h *Handle) RPCWithOptions(ctx context.Context, topic string, nodeid uint32, payload []byte, opts RPCOptions) (*wire.Message, error) {
	return nil, nil
}

func (h *Handle) PublishEvent(topic string, payload []byte) error { return nil }

func (h *Handle) RespondError(m *wire.Message, errnum int32, msg string) error { return nil }

// Send is fire-and-forget: no Recv in the method set, so it is not
// connection-shaped and its result may be ignored.
func (h *Handle) Send(m *wire.Message) {}
