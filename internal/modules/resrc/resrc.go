// Package resrc implements the resource-service comms module of Table I:
// resources are enumerated in the KVS and allocated when the scheduler
// runs an application.
//
// Each instance describes its local (simulated) node and contributes it
// to a collective KVS fence on the first heartbeat, so the full
// inventory appears under resource.rank.<r> exactly once per session.
// The root instance additionally tracks allocations, recording them
// under resource.alloc.<id>.
package resrc

import (
	"fmt"
	"sort"
	"sync"

	"fluxgo/internal/broker"
	"fluxgo/internal/kvs"
	"fluxgo/internal/modules/hb"
	"fluxgo/internal/wire"
)

// NodeInfo describes one simulated node's resources.
type NodeInfo struct {
	Rank    int    `json:"rank"`
	Name    string `json:"name"`
	Cores   int    `json:"cores"`
	MemMB   int    `json:"mem_mb"`
	Sockets int    `json:"sockets"`
}

// Config parameterizes the resrc module.
type Config struct {
	// Describe produces this rank's node description; nil defaults to a
	// 16-core, 32 GB, 2-socket node, matching the paper's testbed nodes.
	Describe func(rank int) NodeInfo
}

// DefaultDescribe models a Zin/Cab compute node: 2 sockets, 16 cores,
// 32 GB of RAM.
func DefaultDescribe(rank int) NodeInfo {
	return NodeInfo{
		Rank:    rank,
		Name:    fmt.Sprintf("node%d", rank),
		Cores:   16,
		MemMB:   32 << 10,
		Sockets: 2,
	}
}

// allocBody is an allocation/release request handled by the root.
type allocBody struct {
	ID    string `json:"id"`
	Ranks []int  `json:"ranks"` // explicit ranks, or
	Nodes int    `json:"nodes"` // a node count to pick freely
}

// Module is one resrc module instance.
type Module struct {
	cfg Config
	h   *broker.Handle
	kc  *kvs.Client

	mu         sync.Mutex
	enumerated bool
	allocated  map[int]string // root only: rank -> allocation id
	left       map[int]bool   // root only: departed ranks, never allocatable
}

// New returns a resrc module instance.
func New(cfg Config) *Module {
	if cfg.Describe == nil {
		cfg.Describe = DefaultDescribe
	}
	return &Module{cfg: cfg, allocated: map[int]string{}, left: map[int]bool{}}
}

// Factory loads resrc at every rank. It requires kvs and hb.
func Factory(cfg Config) func(rank, size int) broker.Module {
	return func(rank, size int) broker.Module { return New(cfg) }
}

// Name implements broker.Module.
func (m *Module) Name() string { return "resrc" }

// Subscriptions implements broker.Module.
func (m *Module) Subscriptions() []string {
	return []string{hb.EventTopic, wire.EventJoin, wire.EventLeave}
}

// Init implements broker.Module.
func (m *Module) Init(h *broker.Handle) error {
	m.h = h
	m.kc = kvs.NewClient(h)
	return nil
}

// Shutdown implements broker.Module.
func (m *Module) Shutdown() {}

// Recv implements broker.Module.
func (m *Module) Recv(msg *wire.Message) {
	if msg.Type == wire.Event && msg.Topic == hb.EventTopic {
		m.maybeEnumerate()
		return
	}
	if msg.Type == wire.Event && (msg.Topic == wire.EventJoin || msg.Topic == wire.EventLeave) {
		m.onMembership(msg, msg.Topic == wire.EventLeave)
		return
	}
	if msg.Type != wire.Request {
		return
	}
	switch msg.Method() {
	case "alloc":
		m.recvAlloc(msg)
	case "free":
		m.recvFree(msg)
	case "avail":
		m.recvAvail(msg)
	default:
		m.h.RespondError(msg, broker.ErrnoNoSys, fmt.Sprintf("resrc: unknown method %q", msg.Method()))
	}
}

// maybeEnumerate contributes the local node description to the
// session-wide enumeration fence, once.
func (m *Module) maybeEnumerate() {
	m.mu.Lock()
	if m.enumerated {
		m.mu.Unlock()
		return
	}
	m.enumerated = true
	m.mu.Unlock()
	info := m.cfg.Describe(m.h.Rank())
	info.Rank = m.h.Rank()
	m.kc.Put(fmt.Sprintf("resource.rank.%d", m.h.Rank()), info)
	if m.h.JoinedLate() {
		// The founding enumeration fence has a fixed participant count;
		// a rank that joined later publishes its inventory with a plain
		// commit instead of disturbing it.
		m.kc.Commit()
		return
	}
	m.kc.Fence("resrc.enumerate", m.h.Size())
}

// onMembership (root) keeps the allocatable pool in step with the
// membership view: a departed rank is never handed out again (its
// last allocation entry is cleaned up when the job frees), a joined
// rank becomes allocatable as soon as the live size covers it.
func (m *Module) onMembership(msg *wire.Message, leave bool) {
	if m.h.Rank() != 0 {
		return
	}
	var body broker.MembershipEvent
	if err := msg.UnpackJSON(&body); err != nil {
		return
	}
	m.mu.Lock()
	if leave {
		m.left[body.Rank] = true
	} else {
		delete(m.left, body.Rank)
	}
	m.mu.Unlock()
}

// recvAlloc (root) claims ranks for an allocation id and records it in
// the KVS. Requests reaching a non-root instance forward upstream.
func (m *Module) recvAlloc(msg *wire.Message) {
	if m.h.Rank() != 0 {
		m.h.ForwardUpstream(msg)
		return
	}
	var body allocBody
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	if body.ID == "" {
		m.h.RespondError(msg, broker.ErrnoInval, "resrc: allocation id required")
		return
	}
	m.mu.Lock()
	ranks := body.Ranks
	if len(ranks) == 0 {
		if body.Nodes <= 0 {
			m.mu.Unlock()
			m.h.RespondError(msg, broker.ErrnoInval, "resrc: ranks or nodes required")
			return
		}
		for r := 0; r < m.h.RankSpace() && len(ranks) < body.Nodes; r++ {
			if _, busy := m.allocated[r]; !busy && !m.left[r] {
				ranks = append(ranks, r)
			}
		}
		if len(ranks) < body.Nodes {
			m.mu.Unlock()
			m.h.RespondError(msg, broker.ErrnoNoEnt,
				fmt.Sprintf("resrc: only %d of %d nodes available", len(ranks), body.Nodes))
			return
		}
	} else {
		for _, r := range ranks {
			if id, busy := m.allocated[r]; busy {
				m.mu.Unlock()
				m.h.RespondError(msg, broker.ErrnoInval,
					fmt.Sprintf("resrc: rank %d already allocated to %s", r, id))
				return
			}
			if r < 0 || r >= m.h.RankSpace() {
				m.mu.Unlock()
				m.h.RespondError(msg, broker.ErrnoInval, fmt.Sprintf("resrc: rank %d out of range", r))
				return
			}
			if m.left[r] {
				m.mu.Unlock()
				m.h.RespondError(msg, broker.ErrnoInval, fmt.Sprintf("resrc: rank %d departed the session", r))
				return
			}
		}
	}
	for _, r := range ranks {
		m.allocated[r] = body.ID
	}
	m.mu.Unlock()
	sort.Ints(ranks)
	m.kc.Put(fmt.Sprintf("resource.alloc.%s", body.ID), ranks)
	version, err := m.kc.Commit()
	if err != nil {
		m.h.RespondError(msg, broker.ErrnoProto, err.Error())
		return
	}
	m.h.Respond(msg, map[string]any{"ranks": ranks, "version": version})
}

// recvFree (root) releases an allocation.
func (m *Module) recvFree(msg *wire.Message) {
	if m.h.Rank() != 0 {
		m.h.ForwardUpstream(msg)
		return
	}
	var body allocBody
	if err := msg.UnpackJSON(&body); err != nil {
		m.h.RespondError(msg, broker.ErrnoInval, err.Error())
		return
	}
	m.mu.Lock()
	freed := 0
	for r, id := range m.allocated {
		if id == body.ID {
			delete(m.allocated, r)
			freed++
		}
	}
	m.mu.Unlock()
	if freed == 0 {
		m.h.RespondError(msg, broker.ErrnoNoEnt, fmt.Sprintf("resrc: no allocation %q", body.ID))
		return
	}
	m.kc.Delete(fmt.Sprintf("resource.alloc.%s", body.ID))
	version, err := m.kc.Commit()
	if err != nil {
		m.h.RespondError(msg, broker.ErrnoProto, err.Error())
		return
	}
	m.h.Respond(msg, map[string]any{"freed": freed, "version": version})
}

// recvAvail (root) reports unallocated ranks.
func (m *Module) recvAvail(msg *wire.Message) {
	if m.h.Rank() != 0 {
		m.h.ForwardUpstream(msg)
		return
	}
	m.mu.Lock()
	var avail []int
	for r := 0; r < m.h.RankSpace(); r++ {
		if _, busy := m.allocated[r]; !busy && !m.left[r] {
			avail = append(avail, r)
		}
	}
	m.mu.Unlock()
	if avail == nil {
		avail = []int{}
	}
	m.h.Respond(msg, map[string][]int{"ranks": avail})
}

// allocResult decodes an alloc/free response and syncs the local KVS to
// the recording commit, so callers immediately observe the bookkeeping
// (causal consistency via the returned version).
func allocResult(h *broker.Handle, resp *wire.Message) ([]int, error) {
	var body struct {
		Ranks   []int  `json:"ranks"`
		Version uint64 `json:"version"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		return nil, err
	}
	if body.Version > 0 {
		if err := kvs.NewClient(h).WaitVersion(body.Version); err != nil {
			return nil, err
		}
	}
	return body.Ranks, nil
}

// Alloc claims nodes (by count) for id and returns the granted ranks.
func Alloc(h *broker.Handle, id string, nodes int) ([]int, error) {
	resp, err := h.RPC("resrc.alloc", wire.NodeidAny, allocBody{ID: id, Nodes: nodes})
	if err != nil {
		return nil, err
	}
	return allocResult(h, resp)
}

// AllocRanks claims the explicit ranks for id.
func AllocRanks(h *broker.Handle, id string, ranks []int) ([]int, error) {
	resp, err := h.RPC("resrc.alloc", wire.NodeidAny, allocBody{ID: id, Ranks: ranks})
	if err != nil {
		return nil, err
	}
	return allocResult(h, resp)
}

// Free releases id's allocation and syncs to the recording commit.
func Free(h *broker.Handle, id string) error {
	resp, err := h.RPC("resrc.free", wire.NodeidAny, allocBody{ID: id})
	if err != nil {
		return err
	}
	_, err = allocResult(h, resp)
	return err
}

// Avail returns currently unallocated ranks.
func Avail(h *broker.Handle) ([]int, error) {
	resp, err := h.RPC("resrc.avail", wire.NodeidAny, nil)
	if err != nil {
		return nil, err
	}
	var body struct {
		Ranks []int `json:"ranks"`
	}
	if err := resp.UnpackJSON(&body); err != nil {
		return nil, err
	}
	return body.Ranks, nil
}
