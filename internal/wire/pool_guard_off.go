//go:build !debuglock

package wire

// Release-guard hooks. In normal builds they compile to nothing; the
// debuglock build (pool_guard_debug.go) turns a double Release into a
// panic with the offending stack, the same policy the lock-order
// checker applies to mutexes.

func (m *Message) guardArm()          {}
func (m *Message) guardMarkReleased() {}
func (m *Message) guardIdleRelease()  {}
