// Command benchdiff compares a fresh benchmark run against a committed
// benchmark archive and fails when the fresh run has regressed past a
// threshold — the perf gate that keeps BENCH_core.json / BENCH_kap.json
// honest (`make benchdiff` wires it up).
//
// Usage:
//
//	benchdiff -old BENCH_core.json -new fresh.json [-threshold 0.15]
//
// Both inputs may be either a raw benchjson/kap dump or a committed
// before/after archive; for an archive the "after" side (the tree's
// current recorded state) is compared. The two formats are detected by
// shape: core files carry "results" (per-benchmark min ns/op), kap
// files carry "records" (per-configuration p50/p95/p99 latencies).
//
// For core files the gated metric is min_ns_per_op per benchmark; for
// kap files the put/fence/get p50_ms and p99_ms per configuration. A
// metric regresses when new > old * (1 + threshold). Benchmarks present
// on only one side are reported but never fail the gate, so adding or
// retiring a benchmark does not break CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// delta is one compared metric.
type delta struct {
	Metric string  // e.g. "internal/wire BenchmarkMarshal min_ns_per_op"
	Old    float64
	New    float64
}

// ratio is the relative change, positive when the new run is slower.
func (d delta) ratio() float64 {
	if d.Old <= 0 {
		return 0
	}
	return d.New/d.Old - 1
}

// coreResult is the slice of a benchjson result the gate cares about.
type coreResult struct {
	Pkg     string  `json:"pkg"`
	Name    string  `json:"name"`
	MinNsOp float64 `json:"min_ns_per_op"`
}

// kapRecord is the slice of a kap sweep record the gate cares about:
// the sweep configuration (the identity of the record) and the
// per-phase latency quantiles.
type kapRecord struct {
	Ranks     int  `json:"ranks"`
	Procs     int  `json:"procs_per_rank"`
	ValueSize int  `json:"value_size"`
	Access    int  `json:"access_count"`
	DirFanout int  `json:"dir_fanout"`
	Redundant bool `json:"redundant"`
	Arity     int  `json:"arity"`

	Put   kapPhase `json:"put"`
	Fence kapPhase `json:"fence"`
	Get   kapPhase `json:"get"`
}

type kapPhase struct {
	P50 float64 `json:"p50_ms"`
	P99 float64 `json:"p99_ms"`
}

func (r kapRecord) key() string {
	return fmt.Sprintf("ranks=%d procs=%d size=%d access=%d fanout=%d redundant=%v arity=%d",
		r.Ranks, r.Procs, r.ValueSize, r.Access, r.DirFanout, r.Redundant, r.Arity)
}

// side is one comparison side after format detection: exactly one of
// Core / Kap is non-nil.
type side struct {
	Core []coreResult
	Kap  []kapRecord
}

// parseSide detects the file format and extracts the comparison side.
// Archives contribute their most recent section — "current" (a
// re-baseline) over "after" — while raw dumps are used as-is.
func parseSide(data []byte) (side, error) {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return side{}, err
	}
	if cur, ok := top["current"]; ok {
		return parseSide(cur)
	}
	if after, ok := top["after"]; ok {
		return parseSide(after)
	}
	if raw, ok := top["results"]; ok {
		var s side
		if err := json.Unmarshal(raw, &s.Core); err != nil {
			return side{}, fmt.Errorf("results: %w", err)
		}
		return s, nil
	}
	if raw, ok := top["records"]; ok {
		var s side
		if err := json.Unmarshal(raw, &s.Kap); err != nil {
			return side{}, fmt.Errorf("records: %w", err)
		}
		return s, nil
	}
	return side{}, fmt.Errorf("neither a core file (results), a kap file (records), nor an archive (after)")
}

// diff pairs up the two sides' metrics. unmatched lists benchmarks
// present on only one side ("old only: ..." / "new only: ...").
func diff(oldS, newS side) (deltas []delta, unmatched []string, err error) {
	switch {
	case oldS.Core != nil && newS.Core != nil:
		d, u := diffCore(oldS.Core, newS.Core)
		return d, u, nil
	case oldS.Kap != nil && newS.Kap != nil:
		d, u := diffKap(oldS.Kap, newS.Kap)
		return d, u, nil
	default:
		return nil, nil, fmt.Errorf("old and new are different formats (core vs kap)")
	}
}

func diffCore(oldR, newR []coreResult) (deltas []delta, unmatched []string) {
	byKey := map[string]coreResult{}
	seen := map[string]bool{}
	for _, r := range oldR {
		byKey[r.Pkg+" "+r.Name] = r
	}
	for _, r := range newR {
		key := r.Pkg + " " + r.Name
		o, ok := byKey[key]
		if !ok {
			unmatched = append(unmatched, "new only: "+key)
			continue
		}
		seen[key] = true
		deltas = append(deltas, delta{Metric: key + " min_ns_per_op", Old: o.MinNsOp, New: r.MinNsOp})
	}
	for _, r := range oldR {
		if key := r.Pkg + " " + r.Name; !seen[key] {
			unmatched = append(unmatched, "old only: "+key)
		}
	}
	return deltas, unmatched
}

func diffKap(oldR, newR []kapRecord) (deltas []delta, unmatched []string) {
	// Keys can legitimately repeat (e.g. the access sweep caps at the
	// consumer count, folding two sweep points onto one configuration),
	// so records sharing a key are paired in occurrence order.
	byKey := map[string][]kapRecord{}
	taken := map[string]int{}
	for _, r := range oldR {
		byKey[r.key()] = append(byKey[r.key()], r)
	}
	for _, r := range newR {
		key := r.key()
		if taken[key] >= len(byKey[key]) {
			unmatched = append(unmatched, "new only: "+key)
			continue
		}
		o := byKey[key][taken[key]]
		taken[key]++
		for _, ph := range []struct {
			name     string
			old, new kapPhase
		}{
			{"put", o.Put, r.Put},
			{"fence", o.Fence, r.Fence},
			{"get", o.Get, r.Get},
		} {
			deltas = append(deltas,
				delta{Metric: key + " " + ph.name + ".p50_ms", Old: ph.old.P50, New: ph.new.P50},
				delta{Metric: key + " " + ph.name + ".p99_ms", Old: ph.old.P99, New: ph.new.P99})
		}
	}
	for key, rs := range byKey {
		for i := taken[key]; i < len(rs); i++ {
			unmatched = append(unmatched, "old only: "+key)
		}
	}
	sort.Strings(unmatched)
	return deltas, unmatched
}

// regressions filters the deltas that worsened past the threshold,
// sorted worst first. Metrics with a zero/absent old value never gate.
func regressions(deltas []delta, threshold float64) []delta {
	var bad []delta
	for _, d := range deltas {
		if d.Old > 0 && d.ratio() > threshold {
			bad = append(bad, d)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].ratio() > bad[j].ratio() })
	return bad
}

func main() {
	oldPath := flag.String("old", "", "committed benchmark JSON (archive or raw dump)")
	newPath := flag.String("new", "", "fresh benchmark JSON to gate")
	threshold := flag.Float64("threshold", 0.15, "max tolerated relative slowdown (0.15 = +15%)")
	verbose := flag.Bool("v", false, "print every compared metric, not just regressions")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: both -old and -new are required")
		os.Exit(2)
	}

	oldS, err := loadSide(*oldPath)
	if err != nil {
		fatal(err)
	}
	newS, err := loadSide(*newPath)
	if err != nil {
		fatal(err)
	}
	deltas, unmatched, err := diff(oldS, newS)
	if err != nil {
		fatal(err)
	}

	if *verbose {
		for _, d := range deltas {
			fmt.Printf("%+7.1f%%  %-60s %12.3f -> %.3f\n", d.ratio()*100, d.Metric, d.Old, d.New)
		}
	}
	for _, u := range unmatched {
		fmt.Printf("benchdiff: unmatched (%s)\n", u)
	}

	bad := regressions(deltas, *threshold)
	if len(bad) == 0 {
		fmt.Printf("benchdiff: %d metrics within +%.0f%% of %s\n",
			len(deltas), *threshold*100, *oldPath)
		return
	}
	fmt.Printf("benchdiff: %d of %d metrics regressed more than +%.0f%% vs %s:\n",
		len(bad), len(deltas), *threshold*100, *oldPath)
	for _, d := range bad {
		fmt.Printf("  %+7.1f%%  %-60s %12.3f -> %.3f\n", d.ratio()*100, d.Metric, d.Old, d.New)
	}
	os.Exit(1)
}

func loadSide(path string) (side, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return side{}, err
	}
	s, err := parseSide(data)
	if err != nil {
		return side{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
