// Command flux-sim runs a whole comms session in a single process and
// walks through the framework's capabilities: session wire-up, KVS
// commits and fences, collective barriers, bulk program execution with
// KVS-captured I/O, liveness detection with self-healing re-parenting,
// and the hierarchical job model with elastic allocations.
//
//	flux-sim -ranks 64 -arity 2
//
// The "storm" scenario instead drives the broker hot path at scale: a
// 10k-rank tree where every published event fans out to every rank
// through the sharded dispatch pipeline and the encode-once frame
// cache, with binary (codec v3) publish bodies on the request path.
// -bench prints the result as a `go test -bench` line so `make bench`
// can archive it in BENCH_core.json:
//
//	flux-sim -scenario storm -ranks 10000 -events 2048 -bench
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"fluxgo"
	"fluxgo/internal/modules/live"
	"fluxgo/internal/modules/wexec"
	"fluxgo/internal/session"
)

var (
	ranksFlag    = flag.Int("ranks", 64, "session size (simulated nodes)")
	arityFlag    = flag.Int("arity", 2, "tree fan-out")
	scenarioFlag = flag.String("scenario", "demo", "scenario to run: demo (capability walkthrough) or storm (event fan-out at scale)")
	eventsFlag   = flag.Int("events", 2048, "storm: events to publish")
	subsFlag     = flag.Int("subs", 64, "storm: subscriber handles spread across the tree")
	benchFlag    = flag.Bool("bench", false, "storm: print a go-test benchmark line for benchjson")
)

func main() {
	flag.Parse()
	var err error
	switch *scenarioFlag {
	case "demo":
		err = run()
	case "storm":
		err = storm()
	default:
		err = fmt.Errorf("unknown scenario %q", *scenarioFlag)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flux-sim:", err)
		os.Exit(1)
	}
}

// storm brings up a large session (arity 16 keeps a 10k-rank tree at
// depth 4) and publishes an event storm from concurrent leaf handles.
// Every event is sequenced at the root and relayed to every rank, so
// the scenario exercises exactly the fan-out machinery this repo's
// broker core optimizes: one encode per event per broker, shared by all
// child links, with replay-capable history caches on the way down.
func storm() error {
	ranks, events, subs := *ranksFlag, *eventsFlag, *subsFlag
	const publishers = 8
	events -= events % publishers
	if subs > ranks {
		subs = ranks
	}
	fmt.Printf("event storm: %d ranks (arity 16), %d events, %d subscribers\n", ranks, events, subs)
	start := time.Now()
	sess, err := session.New(session.Options{
		Size:  ranks,
		Arity: 16,
		// Per-hop codec cost on every link (the honest in-process stand-in
		// for a real wire), membership anti-entropy off so the storm is
		// the only traffic, modest per-broker shard counts to keep 10k
		// brokers' worker pools within reason, and binary publish bodies.
		Codec:        true,
		SyncInterval: -1,
		EventHistory: 16,
		Shards:       2,
		BinaryBodies: true,
		// A pub request sequenced behind thousands of queued fan-out
		// relays can legitimately wait minutes at this scale; the storm
		// measures throughput, so the per-RPC liveness deadline is off.
		RPCTimeout: -1,
	})
	if err != nil {
		return err
	}
	defer sess.Close()
	fmt.Printf("  session up in %v\n", time.Since(start))

	// Subscribers spread across the whole tree, each counting the storm
	// and checking the root's total order (strictly ascending sequence
	// numbers once the storm starts).
	var subWG sync.WaitGroup
	subErrs := make(chan error, subs)
	for i := 0; i < subs; i++ {
		rank := i * ranks / subs
		h := sess.Handle(rank)
		sub, err := h.Subscribe("storm")
		if err != nil {
			h.Close()
			return err
		}
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			defer h.Close()
			var last uint64
			for n := 0; n < events; n++ {
				m, ok := <-sub.Chan()
				if !ok {
					subErrs <- fmt.Errorf("rank %d: subscription closed after %d of %d events", rank, n, events)
					return
				}
				if m.Seq <= last {
					subErrs <- fmt.Errorf("rank %d: seq %d after %d (total order broken)", rank, m.Seq, last)
					return
				}
				last = m.Seq
			}
		}()
	}

	// The storm: concurrent publishers at leaf ranks, so each publish
	// first routes up the request tree, is sequenced at the root, and
	// fans back out to all ranks.
	t0 := time.Now()
	var pubWG sync.WaitGroup
	pubErrs := make(chan error, publishers)
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			h := sess.Handle(ranks - 1 - p)
			defer h.Close()
			for i := 0; i < events/publishers; i++ {
				if _, err := h.PublishEvent("storm.tick", map[string]int{"p": p, "i": i}); err != nil {
					pubErrs <- fmt.Errorf("publisher %d: %w", p, err)
					return
				}
			}
		}(p)
	}
	pubWG.Wait()
	close(pubErrs)
	for err := range pubErrs {
		return err
	}
	subWG.Wait()
	close(subErrs)
	for err := range subErrs {
		return err
	}
	dur := time.Since(t0)

	deliveries := float64(events) * float64(ranks)
	fmt.Printf("  storm done: %d events through %d ranks in %v\n", events, ranks, dur)
	fmt.Printf("  %.0f events/s sequenced at the root, %.2fM rank-deliveries/s\n",
		float64(events)/dur.Seconds(), deliveries/dur.Seconds()/1e6)
	if *benchFlag {
		tag := fmt.Sprint(ranks)
		if ranks%1000 == 0 {
			tag = fmt.Sprintf("%dk", ranks/1000)
		}
		fmt.Printf("pkg: fluxgo/cmd/flux-sim\n")
		fmt.Printf("BenchmarkEventStorm%s \t       1\t%12d ns/op\n", tag, dur.Nanoseconds())
	}
	return nil
}

func run() error {
	ranks := *ranksFlag
	fmt.Printf("bringing up a %d-rank comms session (arity %d)...\n", ranks, *arityFlag)
	start := time.Now()
	sess, err := fluxgo.NewSession(fluxgo.SessionOptions{
		Size: ranks, Arity: *arityFlag, HBInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer sess.Close()
	fmt.Printf("  session up in %v\n\n", time.Since(start))

	// KVS: commit at a leaf, read back at another leaf.
	h := sess.Handle(ranks - 1)
	defer h.Close()
	kv := fluxgo.NewKVS(h)
	t0 := time.Now()
	kv.Put("demo.greeting", "hello from the leaf")
	ver, err := kv.Commit()
	if err != nil {
		return err
	}
	fmt.Printf("KVS: committed demo.greeting as root version %d in %v\n", ver, time.Since(t0))

	h2 := sess.Handle(ranks / 2)
	defer h2.Close()
	kv2 := fluxgo.NewKVS(h2)
	kv2.WaitVersion(ver)
	var greeting string
	if err := kv2.Get("demo.greeting", &greeting); err != nil {
		return err
	}
	fmt.Printf("KVS: rank %d reads %q (causal consistency via wait_version)\n\n", ranks/2, greeting)

	// Collective barrier across every rank.
	t0 = time.Now()
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			hr := sess.Handle(r)
			defer hr.Close()
			fluxgo.Barrier(hr, "demo-barrier", ranks)
		}(r)
	}
	wg.Wait()
	fmt.Printf("barrier: %d ranks synchronized in %v\n\n", ranks, time.Since(t0))

	// Bulk execution with KVS-captured output.
	t0 = time.Now()
	n, err := fluxgo.Run(h, "demo-job", "hostname", nil, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := wexec.Wait(ctx, h, "demo-job")
	if err != nil {
		return err
	}
	stdout, _, _, _ := wexec.Output(h, "demo-job", 0)
	fmt.Printf("wexec: %d tasks -> %s in %v (rank 0 stdout: %q)\n\n",
		n, res.State, time.Since(t0), stdout)

	// Batch jobs through the job service: oversubscribe, watch the queue
	// drain in order.
	t0 = time.Now()
	var jobIDs []string
	for i := 0; i < 3; i++ {
		id, err := fluxgo.SubmitJob(h, fluxgo.JobSpec{
			Program: "echo", Args: []string{fmt.Sprintf("batch-%d", i)},
			Nodes: ranks/2 + 1, // any two of these cannot co-run
		})
		if err != nil {
			return err
		}
		jobIDs = append(jobIDs, id)
	}
	for _, id := range jobIDs {
		info, err := fluxgo.WaitJob(ctx, h, id)
		if err != nil {
			return err
		}
		if info.State != "complete" {
			return fmt.Errorf("job %s ended %s", id, info.State)
		}
	}
	fmt.Printf("job service: 3 oversubscribed batch jobs serialized and completed in %v\n\n", time.Since(t0))

	// Elastic overlay: grow the session by two ranks, commit to the KVS
	// from a rank that did not exist a moment ago, then gracefully drain
	// one of the newcomers — every step fenced by the membership epoch.
	t0 = time.Now()
	first, err := sess.Grow(2)
	if err != nil {
		return err
	}
	fmt.Printf("elastic: grew to %d live ranks (first new rank %d) at epoch %d in %v\n",
		len(sess.LiveRanks()), first, sess.Epoch(), time.Since(t0))
	hj := sess.Handle(first)
	kvj := fluxgo.NewKVS(hj)
	kvj.Put("demo.from-joiner", first)
	if _, err := kvj.Commit(); err != nil {
		hj.Close()
		return err
	}
	hj.Close()
	fmt.Printf("elastic: joined rank %d committed to the KVS through its new parent\n", first)
	t0 = time.Now()
	if err := sess.Shrink([]int{first + 1}); err != nil {
		return err
	}
	fmt.Printf("elastic: drained rank %d in %v; epoch %d, %d ranks live\n\n",
		first+1, time.Since(t0), sess.Epoch(), len(sess.LiveRanks()))

	// Fault injection: kill an interior broker, watch self-healing.
	victim := 1
	fmt.Printf("killing interior broker at rank %d...\n", victim)
	sess.Kill(victim)
	deadline := time.Now().Add(30 * time.Second)
	child := sess.Tree().Children(victim)
	for _, c := range child {
		for sess.Broker(c).ParentRank() == victim {
			if time.Now().After(deadline) {
				return fmt.Errorf("rank %d never re-parented", c)
			}
			time.Sleep(time.Millisecond)
		}
		fmt.Printf("  rank %d re-parented to rank %d\n", c, sess.Broker(c).ParentRank())
	}
	// Liveness eventually reports the dead rank.
	for {
		down, err := live.Down(h)
		if err != nil {
			return err
		}
		if len(down) > 0 {
			fmt.Printf("  live module reports down ranks: %v\n\n", down)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dead rank never detected")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// KVS still works through the healed tree.
	kv.Put("demo.after-failover", true)
	if _, err := kv.Commit(); err != nil {
		return err
	}
	fmt.Println("KVS: commit through the healed tree succeeded")
	fmt.Println("\nflux-sim: all demonstrations completed")
	return nil
}
