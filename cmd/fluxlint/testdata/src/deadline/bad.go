// Package deadline holds fixtures for the deadline-propagation pass.
package deadline

import (
	"context"

	"fixture.example/fakes"
)

func bareRPC(ctx context.Context, h *fakes.Handle) error {
	_, err := h.RPC("kvs.get", 0, nil) // BAD
	return err
}

func freshBackground(ctx context.Context, h *fakes.Handle) error {
	_, err := h.RPCContext(context.Background(), "kvs.get", 0, nil) // BAD
	return err
}

func freshTODO(ctx context.Context, h *fakes.Handle) error {
	_, err := h.RPCWithOptions(context.TODO(), "kvs.get", 0, nil, fakes.RPCOptions{}) // BAD
	return err
}

// The parameter is in scope inside closures, so dropping it there is
// the same leak.
func inClosure(ctx context.Context, h *fakes.Handle) {
	go func() {
		_, _ = h.RPC("kvs.get", 0, nil) // BAD
	}()
}
