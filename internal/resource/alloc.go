package resource

import (
	"fmt"
	"sort"
	"sync"
)

// Request describes what a job needs, across multiple resource
// dimensions — the multidimensional resource bounds of Challenge 1.
type Request struct {
	Nodes        int               `json:"nodes"`
	CoresPerNode int               `json:"cores_per_node,omitempty"` // 0 = whole node
	PowerWPerNod float64           `json:"power_w_per_node,omitempty"`
	MemMBPerNode float64           `json:"mem_mb_per_node,omitempty"`
	FilesystemBW float64           `json:"filesystem_bw,omitempty"` // aggregate MB/s
	Properties   map[string]string `json:"properties,omitempty"`    // node constraints
}

// Allocation is a granted resource set.
type Allocation struct {
	ID    string
	Nodes []*Resource
	Req   Request

	fsPool *Resource // cluster-level bandwidth pool charged, if any
}

// NodeNames returns the sorted names of allocated nodes.
func (a *Allocation) NodeNames() []string {
	names := make([]string, len(a.Nodes))
	for i, n := range a.Nodes {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}

// Pool manages allocations against a resource graph. It is the
// allocation engine used by schedulers; all methods are safe for
// concurrent use.
type Pool struct {
	mu     sync.Mutex
	root   *Resource
	nodes  []*Resource
	allocs map[string]*Allocation
}

// NewPool wraps a resource graph for allocation.
func NewPool(root *Resource) *Pool {
	return &Pool{
		root:   root,
		nodes:  root.FindAll(TypeNode),
		allocs: map[string]*Allocation{},
	}
}

// Root returns the underlying resource graph.
func (p *Pool) Root() *Resource { return p.root }

// Adopt attaches additional node vertices to the pool's root and makes
// them allocatable — how a child instance's pool grows after its parent
// grants a grow request.
func (p *Pool) Adopt(nodes []*Resource) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, n := range nodes {
		p.root.AddChild(n)
		p.nodes = append(p.nodes, n)
	}
}

// Evict removes specific free nodes from the pool (the shrink
// counterpart of Adopt). Allocated nodes are refused.
func (p *Pool) Evict(nodes []*Resource) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	drop := map[*Resource]bool{}
	for _, n := range nodes {
		if n.owner != "" {
			return fmt.Errorf("resource: cannot evict %s: allocated to %s", n.Name, n.owner)
		}
		drop[n] = true
	}
	keep := p.nodes[:0]
	for _, n := range p.nodes {
		if !drop[n] {
			keep = append(keep, n)
		}
	}
	p.nodes = keep
	kids := p.root.Children[:0]
	for _, c := range p.root.Children {
		if !drop[c] {
			kids = append(kids, c)
		}
	}
	p.root.Children = kids
	return nil
}

// TotalNodes returns the number of nodes in the graph.
func (p *Pool) TotalNodes() int { return len(p.nodes) }

// FreeNodes returns the number of currently unallocated nodes.
func (p *Pool) FreeNodes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	free := 0
	for _, n := range p.nodes {
		if n.owner == "" {
			free++
		}
	}
	return free
}

// nodeMatches checks a node against request constraints.
func nodeMatches(n *Resource, req Request) bool {
	if req.CoresPerNode > 0 && n.Count(TypeCore) < req.CoresPerNode {
		return false
	}
	for k, v := range req.Properties {
		if n.Properties[k] != v {
			return false
		}
	}
	if req.MemMBPerNode > 0 {
		mem := n.poolOf(TypeMemory)
		if mem == nil || mem.Available() < req.MemMBPerNode {
			return false
		}
	}
	return true
}

// CanAllocate reports whether the request could be satisfied right now.
func (p *Pool) CanAllocate(req Request) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	nodes, err := p.acquireNodes("", req, req.Nodes)
	if err != nil {
		return false
	}
	p.returnNodes(nodes, req)
	return true
}

// acquireNodes claims count free matching nodes for owner, charging
// per-node power and memory through every ancestor cap as it goes, so a
// node whose rack or cluster pool is exhausted is skipped rather than
// failing the whole request. On failure everything is returned.
// Caller holds mu.
func (p *Pool) acquireNodes(owner string, req Request, count int) ([]*Resource, error) {
	if count < 1 {
		return nil, fmt.Errorf("resource: request for %d nodes", count)
	}
	var picked []*Resource
	for _, n := range p.nodes {
		if n.owner != "" || !nodeMatches(n, req) {
			continue
		}
		if err := reserveAncestry(n, TypePower, req.PowerWPerNod); err != nil {
			continue // capped out somewhere along this node's ancestry
		}
		if err := reserveAncestry(n, TypeMemory, req.MemMBPerNode); err != nil {
			releaseAncestry(n, TypePower, req.PowerWPerNod)
			continue
		}
		n.owner = owner
		picked = append(picked, n)
		if len(picked) == count {
			return picked, nil
		}
	}
	got := len(picked)
	p.returnNodes(picked, req)
	return nil, fmt.Errorf("resource: %d of %d feasible nodes available", got, count)
}

// returnNodes undoes acquireNodes. Caller holds mu.
func (p *Pool) returnNodes(nodes []*Resource, req Request) {
	for _, n := range nodes {
		releaseAncestry(n, TypePower, req.PowerWPerNod)
		releaseAncestry(n, TypeMemory, req.MemMBPerNode)
		n.owner = ""
	}
}

// Allocate grants a request, consuming structural nodes and charging
// consumable pools (power per node through every ancestor cap, aggregate
// file-system bandwidth at the cluster level). It is all-or-nothing.
func (p *Pool) Allocate(id string, req Request) (*Allocation, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.allocs[id]; dup {
		return nil, fmt.Errorf("resource: allocation %q already exists", id)
	}
	nodes, err := p.acquireNodes(id, req, req.Nodes)
	if err != nil {
		return nil, err
	}
	alloc := &Allocation{ID: id, Req: req, Nodes: nodes}

	// Aggregate file-system bandwidth is a site-wide shared pool.
	if req.FilesystemBW > 0 {
		fs := p.findBandwidthPool()
		if fs == nil {
			p.returnNodes(nodes, req)
			return nil, fmt.Errorf("resource: no filesystem bandwidth pool in graph")
		}
		if fs.Available() < req.FilesystemBW {
			p.returnNodes(nodes, req)
			return nil, fmt.Errorf("resource: filesystem bandwidth %0.f of %0.f available",
				fs.Available(), req.FilesystemBW)
		}
		fs.used += req.FilesystemBW
		alloc.fsPool = fs
	}
	p.allocs[id] = alloc
	return alloc, nil
}

func (p *Pool) findBandwidthPool() *Resource {
	var found *Resource
	p.root.Walk(func(r *Resource) bool {
		if found != nil {
			return false
		}
		if r.Type == TypeBandwidth && r.Capacity > 0 {
			found = r
			return false
		}
		return true
	})
	return found
}

// Release frees an allocation, returning all charged capacity.
func (p *Pool) Release(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	alloc, ok := p.allocs[id]
	if !ok {
		return fmt.Errorf("resource: no allocation %q", id)
	}
	p.releaseNodesLocked(alloc, alloc.Nodes)
	if alloc.fsPool != nil {
		alloc.fsPool.used -= alloc.Req.FilesystemBW
		if alloc.fsPool.used < 0 {
			alloc.fsPool.used = 0
		}
	}
	delete(p.allocs, id)
	return nil
}

func (p *Pool) releaseNodesLocked(alloc *Allocation, nodes []*Resource) {
	for _, n := range nodes {
		releaseAncestry(n, TypePower, alloc.Req.PowerWPerNod)
		releaseAncestry(n, TypeMemory, alloc.Req.MemMBPerNode)
		n.owner = ""
	}
}

// Grow extends an allocation by n more nodes under the same per-node
// requirements — the mechanics behind the paper's elasticity model
// (invoked by a parent after a child's grow request is granted).
func (p *Pool) Grow(id string, n int) ([]*Resource, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	alloc, ok := p.allocs[id]
	if !ok {
		return nil, fmt.Errorf("resource: no allocation %q", id)
	}
	nodes, err := p.acquireNodes(id, alloc.Req, n)
	if err != nil {
		return nil, err
	}
	alloc.Nodes = append(alloc.Nodes, nodes...)
	return nodes, nil
}

// Shrink releases n nodes from an allocation (the most recently granted
// first) and returns the released nodes.
func (p *Pool) Shrink(id string, n int) ([]*Resource, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	alloc, ok := p.allocs[id]
	if !ok {
		return nil, fmt.Errorf("resource: no allocation %q", id)
	}
	if n >= len(alloc.Nodes) {
		return nil, fmt.Errorf("resource: shrink of %d would empty allocation of %d nodes",
			n, len(alloc.Nodes))
	}
	cut := alloc.Nodes[len(alloc.Nodes)-n:]
	alloc.Nodes = alloc.Nodes[:len(alloc.Nodes)-n]
	p.releaseNodesLocked(alloc, cut)
	return cut, nil
}

// Allocation returns the live allocation with the given id, or nil.
func (p *Pool) Allocation(id string) *Allocation {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocs[id]
}
