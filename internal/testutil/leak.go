// Package testutil provides shared test helpers, chiefly a
// goroutine-leak asserter in the spirit of go.uber.org/goleak but
// implemented with the standard library only.
//
// A "leak" here is a goroutine whose stack passes through any fluxgo
// package (other than testutil itself) and that is still alive after
// the retry window closes. Runtime-internal goroutines, the test
// driver, and third-party stacks are ignored so that the asserter
// stays quiet in clean runs and points at our own code when it fires.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// modulePrefix identifies goroutines owned by this module. Any stack
// frame mentioning it (outside testutil) marks the goroutine as ours.
const modulePrefix = "fluxgo/"

// testutilMarker excludes the asserter's own frames from the scan.
const testutilMarker = "fluxgo/internal/testutil"

// TB is the subset of testing.TB the asserter needs; taking an
// interface keeps testutil importable from non-test helpers.
type TB interface {
	Helper()
	Errorf(format string, args ...interface{})
}

// allStacks returns one stack-text chunk per live goroutine.
func allStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(string(buf), "\n\n")
}

// leakedStacks returns the full stack text of every live goroutine
// that runs module code. Goroutines blocked in module code forever
// (e.g. a connection reader whose peer was never closed) show up here.
func leakedStacks() []string {
	var leaks []string
	for _, g := range allStacks() {
		if !strings.Contains(g, modulePrefix) {
			continue
		}
		if strings.Contains(g, testutilMarker) {
			continue
		}
		leaks = append(leaks, g)
	}
	return leaks
}

// CheckNoLeaks polls until no module goroutines remain or the window
// expires, then reports every surviving stack through tb.Errorf. The
// retry loop absorbs goroutines that are mid-exit when the test body
// returns (deferred Close calls racing the final scan).
func CheckNoLeaks(tb TB) {
	tb.Helper()
	deadline := time.Now().Add(3 * time.Second)
	delay := 1 * time.Millisecond
	var leaks []string
	for {
		leaks = leakedStacks()
		if len(leaks) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
	tb.Errorf("found %d leaked goroutine(s):\n\n%s",
		len(leaks), strings.Join(leaks, "\n\n"))
}

// exitFunc is swapped out by tests of VerifyTestMain itself.
var exitFunc = os.Exit

// mainRunner matches *testing.M without importing the testing package
// at package scope (so importing testutil from a non-test file does
// not drag testing into a production binary).
type mainRunner interface {
	Run() int
}

// VerifyTestMain runs a package's tests and then fails the run (exit
// code 1) if module goroutines are still alive afterwards. Adopt it
// with:
//
//	func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
//
// The leak scan happens once, after all tests in the package, which
// catches cross-test leaks that per-test checks miss.
func VerifyTestMain(m mainRunner, exit ...func(int)) {
	doExit := exitFunc
	if len(exit) > 0 {
		doExit = exit[0]
	}
	code := m.Run()
	if code == 0 {
		rep := &reporter{}
		CheckNoLeaks(rep)
		if rep.failed {
			fmt.Print(rep.buf.String())
			code = 1
		}
	}
	doExit(code)
}

type reporter struct {
	failed bool
	buf    strings.Builder
}

func (r *reporter) Helper() {}

func (r *reporter) Errorf(format string, args ...interface{}) {
	r.failed = true
	fmt.Fprintf(&r.buf, "goroutine leak check: "+format+"\n", args...)
}
