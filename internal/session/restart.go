package session

// Crash-restart recovery: bringing a killed or crashed rank back.
//
// A restart is a join in disguise. The rank keeps its number (it never
// departed, so it is not tombstoned), but everything else runs the
// growth protocol: a fresh broker is built seeded with the current
// epoch and tombstone set, wired to the nearest live ancestor of its
// tree parent with the parent-side link pending, spliced back into the
// ring, announced with an epoch-tagged live.join event, and admitted
// through the cmb.join handshake. Modules reload last — a KVS instance
// configured with a durable tier cold-loads its CAS cache and (for a
// shard master) its root commit from disk, which is what makes the
// restart lossless for every commit acknowledged before the crash.

import (
	"context"
	"fmt"

	"fluxgo/internal/broker"
	"fluxgo/internal/wire"
)

// Restart brings a previously killed or crashed rank back into the
// session. Serialized against Grow/Shrink; one membership epoch.
func (s *Session) Restart(rank int) error {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	return s.restartLocked(rank)
}

// hookRestart serves cmb.restart; non-blocking like hookGrow, because
// broker membership hooks run on goroutines Shutdown waits for.
func (s *Session) hookRestart(rank int) error {
	if !s.memberMu.TryLock() {
		return fmt.Errorf("session: a membership change is in progress; retry")
	}
	defer s.memberMu.Unlock()
	return s.restartLocked(rank)
}

func (s *Session) restartLocked(r int) error {
	s.mu.Lock()
	var err error
	switch {
	case r == 0:
		err = fmt.Errorf("session: rank 0 cannot be restarted — it cannot die short of session teardown (no root fail-over)")
	case r < 0 || r >= s.view.Size():
		err = fmt.Errorf("session: rank %d outside rank space of size %d", r, s.view.Size())
	case s.view.Left(r):
		err = fmt.Errorf("session: rank %d departed at an earlier epoch and cannot rejoin", r)
	case !s.dead[r]:
		err = fmt.Errorf("session: rank %d is alive, nothing to restart", r)
	case s.dead[0]:
		err = fmt.Errorf("session: cannot restart without the root sequencer")
	}
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.epoch++
	epoch := s.epoch
	tombs := s.view.Tombstones()
	size := s.view.Size()
	p := s.tree.Parent(r)
	for p >= 0 && s.dead[p] {
		p = s.tree.Parent(p)
	}
	prev, next := s.ringNeighborsLocked(r)
	s.mu.Unlock()
	if p < 0 {
		return fmt.Errorf("session: rank %d has no live ancestor to rejoin through", r)
	}

	// Scrub chaos state from the previous incarnation: the old
	// blackholed endpoints leave the registry (new links get fresh
	// injectors) and the rank's crashed storage comes back readable —
	// truncated to its last fsync watermark, exactly what a real
	// machine reboot would find.
	if s.chaos != nil {
		s.chaos.forget(r)
		s.chaos.reviveStorage(r)
	}

	b, err := broker.New(broker.Config{
		Rank:         r,
		Size:         size,
		Arity:        s.opts.Arity,
		Clock:        s.opts.Clock,
		EventHistory: s.opts.EventHistory,
		Log:          s.opts.Log,
		Reparent:     s.reparent,
		RPCTimeout:   s.opts.RPCTimeout,
		SyncInterval: s.opts.SyncInterval,
		SessionID:    s.opts.SessionID,
		LogRecords:   s.opts.LogRecords,
		Shards:       s.opts.Shards,
		BinaryBodies: s.opts.BinaryBodies,
		Epoch:        epoch,
		Tombstones:   tombs,
		Joined:       true,
		Grow:         s.hookGrow,
		Shrink:       s.hookShrink,
		Restart:      s.hookRestart,
	})
	if err != nil {
		return err
	}
	// From here the rank is fair game again: reparenting orphans may
	// pick it as an adopter, so the broker replaces the dead one and the
	// dead mark clears in the same critical section.
	s.mu.Lock()
	s.brokers[r] = b
	delete(s.dead, r)
	s.mu.Unlock()

	// A failure past this point must not leave the rank half-joined
	// (alive but unadmitted, so unreachable and un-restartable): fail
	// re-kills the new incarnation so the restart can simply be retried
	// — e.g. once the link faults that broke the handshake heal.
	fail := func(err error) error {
		s.markDead(r)
		s.spliceRingAround(r)
		b.Shutdown()
		return err
	}

	// Tree planes toward the nearest live ancestor of the computed
	// parent, parent side pending until the join handshake clears.
	adopter := s.Broker(p)
	treeP, treeC := s.pipeRanks(p, r)
	adopter.AttachPendingConn(broker.LinkChildTree, treeP)
	b.AttachConn(broker.LinkParentTree, treeC)
	evP, evC := s.pipeRanks(p, r)
	adopter.AttachConn(broker.LinkChildEvent, evP)
	b.AttachConn(broker.LinkParentEvent, evC)
	if err := evC.Send(&wire.Message{Type: wire.Control, Topic: wire.TopicResync, Seq: 0}); err != nil {
		return fail(fmt.Errorf("session: resync %d -> %d: %w", r, p, err))
	}

	// Ring splice: prev-live -> r -> next-live, undoing the heal that
	// routed around the dead rank.
	if prev >= 0 && prev != r {
		outP, inP := s.pipeRanks(prev, r)
		s.Broker(prev).ReplaceRingOut(outP)
		b.AttachConn(broker.LinkRingIn, inP)
		outN, inN := s.pipeRanks(r, next)
		b.AttachConn(broker.LinkRingOut, outN)
		s.Broker(next).AttachConn(broker.LinkRingIn, inN)
	}

	b.Start()

	// Announce first: the live.join event revives the rank in every
	// membership view (and the live module's down set) before traffic
	// from it clears the fence.
	if err := s.publishMembership(wire.EventJoin, r, epoch); err != nil {
		return fail(fmt.Errorf("session: announce restart of rank %d: %w", r, err))
	}
	jh := b.NewHandle()
	err = jh.JoinSession(context.Background(), joinRetries)
	jh.Close()
	if err != nil {
		return fail(fmt.Errorf("session: rank %d readmission handshake: %w", r, err))
	}

	// Modules last, as in growth — and this is where durable state comes
	// back: a KVS instance with a disk tier replays its pack + WAL into
	// the cache, and a shard master resumes from its persisted root.
	for _, f := range s.opts.Modules {
		if m := f(r, size); m != nil {
			if err := b.LoadModule(m); err != nil {
				return fail(fmt.Errorf("session: load module at rank %d: %w", r, err))
			}
		}
	}
	s.logf("session: rank %d restarted at epoch %d (parent %d)", r, epoch, p)
	return nil
}
