// Package errnocomplete holds fixtures for the errno-completeness
// pass: request-dispatch switches checked against wire.OpErrnos (the
// fixture wire package declares services "cmb" {ping, stats} and
// "echo" {run, stop}).
package errnocomplete

import (
	"fixture.example/fakes"
	"fixture.example/wire"
)

// An error-responding dispatch with no default: unknown methods get
// silence instead of ENOSYS.
func dispatchNoDefault(h *fakes.Handle, msg *wire.Message) {
	switch msg.Method() { // BAD
	case "run":
		h.RespondError(msg, wire.ErrnoInval, "bad request")
	case "stop":
		h.RespondError(msg, wire.ErrnoInval, "bad request")
	}
}

// A clause emitting an errno the table does not declare for its op.
func dispatchUndeclared(h *fakes.Handle, msg *wire.Message) {
	switch msg.Method() {
	case "run":
		h.RespondError(msg, wire.ErrnoProto, "proto violation")
	case "stop":
		h.RespondError(msg, wire.ErrnoStale, "stale epoch") // BAD
	default:
		h.RespondError(msg, wire.ErrnoNoSys, "unknown method")
	}
}

// Undeclared emission through a same-package helper: the summary layer
// charges the clause with the helper's errnos.
func failStop(h *fakes.Handle, msg *wire.Message) {
	h.RespondError(msg, wire.ErrnoProto, "stop failed")
}

func dispatchViaHelper(h *fakes.Handle, msg *wire.Message) {
	switch msg.Method() {
	case "run":
		h.RespondError(msg, wire.ErrnoInval, "bad request")
	case "stop":
		failStop(h, msg) // BAD
	default:
		h.RespondError(msg, wire.ErrnoNoSys, "unknown method")
	}
}

// A method set no declared service covers.
func dispatchUnknownService(h *fakes.Handle, msg *wire.Message) {
	switch msg.Method() { // BAD
	case "launch":
		h.RespondError(msg, wire.ErrnoInval, "bad request")
	default:
		h.RespondError(msg, wire.ErrnoNoSys, "unknown method")
	}
}

// A declared op ("cmb.stats") with no dispatch arm.
func dispatchMissingOp(h *fakes.Handle, msg *wire.Message) {
	switch msg.Method() { // BAD
	case "ping":
		h.RespondError(msg, wire.ErrnoInval, "bad ping")
	default:
		h.RespondError(msg, wire.ErrnoNoSys, "unknown method")
	}
}
