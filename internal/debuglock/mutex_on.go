//go:build debuglock

package debuglock

import (
	"fmt"
	"runtime"
	"sync"
)

// Mutex is the order-checking variant selected by `-tags debuglock`.
type Mutex struct {
	mu    sync.Mutex
	class string // set once at construction, before the lock is shared
}

// SetClass names the lock's order class. Call it at construction time,
// before the mutex is visible to other goroutines.
func (m *Mutex) SetClass(name string) { m.class = name }

func (m *Mutex) className() string {
	if m.class != "" {
		return m.class
	}
	return fmt.Sprintf("anon@%p", m)
}

// heldLock is one acquisition on a goroutine's lock stack.
type heldLock struct {
	m     *Mutex
	class string
}

// reg is the global acquisition-order registry.
var reg = struct {
	mu sync.Mutex
	// edges[a][b] holds an example stack captured the first time class b
	// was acquired while class a was held.
	edges map[string]map[string]string
	held  map[int64][]heldLock
}{
	edges: map[string]map[string]string{},
	held:  map[int64][]heldLock{},
}

// Lock records the acquisition against every lock currently held by the
// calling goroutine, panicking if it closes a cycle in the global lock
// order (or re-acquires the same instance, which would deadlock
// outright), then locks the underlying mutex.
func (m *Mutex) Lock() {
	class := m.className()
	g := gid()

	reg.mu.Lock()
	for _, h := range reg.held[g] {
		if h.m == m {
			reg.mu.Unlock()
			panic(fmt.Sprintf("debuglock: goroutine %d re-acquires %q already held (self-deadlock)\n%s",
				g, class, stack()))
		}
		if h.class == class {
			// Two instances of one class on a single goroutine: no
			// between-class order to learn, and instance-level order is
			// the caller's business (e.g. sharded clients).
			continue
		}
		m.checkEdgeLocked(g, h.class, class)
	}
	reg.mu.Unlock()

	m.mu.Lock()

	reg.mu.Lock()
	reg.held[g] = append(reg.held[g], heldLock{m: m, class: class})
	reg.mu.Unlock()
}

// checkEdgeLocked records the order from -> to, panicking if the
// reverse direction is already reachable. Caller holds reg.mu.
func (m *Mutex) checkEdgeLocked(g int64, from, to string) {
	if pathExistsLocked(to, from) {
		where := reg.edges[to][from]
		if where == "" {
			where = "(reverse order established transitively)"
		}
		reg.mu.Unlock()
		panic(fmt.Sprintf(
			"debuglock: lock-order cycle: goroutine %d acquires %q while holding %q, "+
				"but %q -> %q was established here:\n%s\ncurrent stack:\n%s",
			g, to, from, to, from, where, stack()))
	}
	em := reg.edges[from]
	if em == nil {
		em = map[string]string{}
		reg.edges[from] = em
	}
	if _, ok := em[to]; !ok {
		em[to] = stack()
	}
}

// pathExistsLocked reports whether to is reachable from from in the
// edge graph. Caller holds reg.mu.
func pathExistsLocked(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := range reg.edges[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// Unlock removes the most recent acquisition of m from the goroutine's
// lock stack and unlocks the underlying mutex. Locking and unlocking on
// different goroutines (mutex hand-off) is tolerated: the record is
// simply dropped when the stack does not contain m.
func (m *Mutex) Unlock() {
	g := gid()
	reg.mu.Lock()
	stackOf := reg.held[g]
	for i := len(stackOf) - 1; i >= 0; i-- {
		if stackOf[i].m == m {
			stackOf = append(stackOf[:i], stackOf[i+1:]...)
			break
		}
	}
	if len(stackOf) == 0 {
		delete(reg.held, g)
	} else {
		reg.held[g] = stackOf
	}
	reg.mu.Unlock()
	m.mu.Unlock()
}

// stack returns the current goroutine's stack trace.
func stack() string {
	buf := make([]byte, 16<<10)
	n := runtime.Stack(buf, false)
	return string(buf[:n])
}
