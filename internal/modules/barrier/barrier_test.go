package barrier

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fluxgo/internal/session"
)

func newSession(t *testing.T, size int) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{
		Size:    size,
		Modules: []session.ModuleFactory{Factory},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestBarrierSingleParticipant(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	if err := Enter(h, "b1", 1); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAllRanks(t *testing.T) {
	const size = 15
	s := newSession(t, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := s.Handle(r)
			defer h.Close()
			errs[r] = Enter(h, "all", size)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestBarrierActuallyBlocks(t *testing.T) {
	s := newSession(t, 3)
	var released atomic.Int32
	done := make(chan error, 2)
	for _, r := range []int{0, 1} {
		go func(r int) {
			h := s.Handle(r)
			defer h.Close()
			err := Enter(h, "blocktest", 3)
			released.Add(1)
			done <- err
		}(r)
	}
	time.Sleep(100 * time.Millisecond)
	if released.Load() != 0 {
		t.Fatal("barrier released before all participants entered")
	}
	h := s.Handle(2)
	defer h.Close()
	if err := Enter(h, "blocktest", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("barrier never released")
		}
	}
}

func TestBarrierMultipleProcsPerRank(t *testing.T) {
	const size, per = 7, 3
	s := newSession(t, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		for p := 0; p < per; p++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				h := s.Handle(r)
				defer h.Close()
				if err := Enter(h, "multi", size*per); err != nil {
					t.Error(err)
				}
			}(r)
		}
	}
	wg.Wait()
}

func TestBarrierSequential(t *testing.T) {
	// Distinct names: barriers are independent.
	s := newSession(t, 3)
	for i := 0; i < 5; i++ {
		var wg sync.WaitGroup
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r, i int) {
				defer wg.Done()
				h := s.Handle(r)
				defer h.Close()
				if err := Enter(h, fmt.Sprintf("seq-%d", i), 3); err != nil {
					t.Error(err)
				}
			}(r, i)
		}
		wg.Wait()
	}
}

func TestBarrierNprocsValidation(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	if err := Enter(h, "bad", 0); err == nil {
		t.Fatal("nprocs 0 accepted")
	}
}

func TestBarrierNprocsMismatch(t *testing.T) {
	s := newSession(t, 1)
	h := s.Handle(0)
	defer h.Close()
	go Enter(h, "mismatch", 3)
	time.Sleep(50 * time.Millisecond)
	h2 := s.Handle(0)
	defer h2.Close()
	err := Enter(h2, "mismatch", 4)
	if err == nil {
		t.Fatal("mismatched nprocs accepted")
	}
}

// TestBarrierBinaryBodies runs the all-ranks barrier over codec links
// with binary-coded (codec v3) enter bodies, including the slave
// aggregates retransmitted upstream, and with one rank downgraded to
// JSON so both encodings meet at the same aggregation point.
func TestBarrierBinaryBodies(t *testing.T) {
	const size = 7
	s, err := session.New(session.Options{
		Size:         size,
		Codec:        true,
		BinaryBodies: true,
		Modules:      []session.ModuleFactory{Factory},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Broker(3).SetBinaryBodies(false) // interior rank aggregates in JSON

	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := s.Handle(r)
			defer h.Close()
			errs[r] = Enter(h, "bin", size)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}
